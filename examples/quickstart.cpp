// Quickstart: find a buffer overflow in a driver with symbolic execution.
//
// Builds the default 4-peripheral SoC on the software simulator target,
// loads a small firmware "packet parser" whose length field is attacker-
// controlled, marks the packet bytes symbolic, and lets HardSnap explore
// every path. The out-of-bounds store is found automatically and comes
// with a concrete reproducer (the packet bytes that trigger it).
//
//   $ ./quickstart
#include <cstdio>

#include "core/session.h"
#include "firmware/corpus.h"
#include "vm/memmap.h"

using namespace hardsnap;

int main() {
  core::SessionConfig cfg;  // default corpus, simulator target
  cfg.exec.search = symex::SearchStrategy::kDfs;
  cfg.exec.max_instructions = 500000;

  auto session_or = core::Session::Create(cfg);
  if (!session_or.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  auto session = std::move(session_or).value();

  std::printf("SoC: %u flip-flop bits, %u memory bits, %u expression nodes\n",
              session->hardware_info().soc_stats.num_flop_bits,
              session->hardware_info().soc_stats.num_memory_bits,
              session->hardware_info().soc_stats.num_expr_nodes);

  if (auto s = session->LoadFirmwareAsm(
          firmware::VulnerableParserFirmware());
      !s.ok()) {
    std::fprintf(stderr, "firmware: %s\n", s.ToString().c_str());
    return 1;
  }
  // The first 2 bytes of the packet (length + first payload byte) are
  // attacker-controlled.
  if (auto s = session->MakeSymbolicRegion(vm::kRamBase, 2, "packet");
      !s.ok()) {
    std::fprintf(stderr, "symbolic: %s\n", s.ToString().c_str());
    return 1;
  }

  auto report_or = session->Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "run: %s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const symex::Report& report = report_or.value();

  std::printf("analysis: %s\n", report.Summary().c_str());
  for (const auto& bug : report.bugs) {
    std::printf("BUG %-22s pc=0x%04x  %s\n", bug.kind.c_str(), bug.pc,
                bug.detail.c_str());
    for (const auto& [name, value] : bug.test_case.inputs) {
      std::printf("  reproducer: %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  return report.bugs.empty() ? 1 : 0;  // expect to find the bug
}
