// HW/SW co-testing of a crypto driver: symbolic software test vectors
// exercising real RTL (paper: "HardSnap can be used to generate software
// test vectors to test hardware").
//
// Firmware: a command dispatcher that drives the AES accelerator when the
// (symbolic) command byte selects encryption and the SHA-256 accelerator
// when it selects hashing, with a user assertion verifying a hardware
// invariant on every state: the AES core must never report done and busy
// simultaneously. Symbolic execution covers all dispatcher paths while
// each path talks to its own consistent snapshot of the peripherals.
//
//   $ ./driver_cotest
#include <cstdio>

#include "core/session.h"
#include "firmware/corpus.h"

using namespace hardsnap;

namespace {

// Dispatcher firmware: cmd in a0, 0 -> AES self-test, 1 -> SHA self-test,
// others -> exit 2.
std::string DispatcherFirmware() {
  std::string aes = firmware::AesSelfTestFirmware();
  std::string sha = firmware::ShaSelfTestFirmware();
  // Rename entry labels so the programs can be concatenated.
  auto rename = [](std::string s, const std::string& from,
                   const std::string& to) {
    for (size_t pos = 0; (pos = s.find(from, pos)) != std::string::npos;
         pos += to.size()) {
      s.replace(pos, from.size(), to);
    }
    return s;
  };
  aes = rename(aes, "_start", "aes_entry");
  aes = rename(aes, "busy", "aes_busy");
  aes = rename(aes, "ok_", "aes_ok_");
  aes = rename(aes, "finish", "aes_finish_unused");
  sha = rename(sha, "_start", "sha_entry");
  sha = rename(sha, "busy", "sha_busy");
  sha = rename(sha, "ok_", "sha_ok_");
  sha = rename(sha, "finish", "sha_finish_unused");
  // Their exit sequences both define a label; strip by renaming above and
  // giving each a unique finish label in the concatenated program.
  std::string src;
  src += "_start:\n";
  src += "  andi a0, a0, 3\n";
  src += "  beqz a0, aes_entry\n";
  src += "  li t0, 1\n";
  src += "  beq a0, t0, sha_entry\n";
  src += "  li a0, 2\n";
  src += "  li t0, 0x50000004\n";
  src += "  sw a0, 0(t0)\n";
  src += aes + "\n" + sha + "\n";
  return src;
}

}  // namespace

int main() {
  core::SessionConfig cfg;
  cfg.exec.max_instructions = 1000000;
  auto session_or = core::Session::Create(cfg);
  if (!session_or.ok()) return 1;
  auto session = std::move(session_or).value();

  if (auto s = session->LoadFirmwareAsm(DispatcherFirmware()); !s.ok()) {
    std::fprintf(stderr, "firmware: %s\n", s.ToString().c_str());
    return 1;
  }
  session->MakeSymbolicRegister(10, "cmd");

  // Hardware invariants checked on every state of every path, written in
  // the high-level property language over hierarchical signal names
  // (full visibility of the simulator target).
  if (auto s = session->AddHardwareInvariant("!(u_aes.busy && u_aes.done)");
      !s.ok()) {
    std::fprintf(stderr, "invariant: %s\n", s.ToString().c_str());
    return 1;
  }
  if (auto s = session->AddHardwareInvariant(
          "u_sha.busy -> u_sha.round <= 63");
      !s.ok()) {
    std::fprintf(stderr, "invariant: %s\n", s.ToString().c_str());
    return 1;
  }

  auto report_or = session->Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "run: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const auto& report = report_or.value();
  std::printf("co-test: %s\n", report.Summary().c_str());
  std::printf("paths: %llu  (expected 3: AES cmd, SHA cmd, reject)\n",
              static_cast<unsigned long long>(report.paths_completed));
  for (const auto& tc : report.test_cases) {
    std::printf("test vector [%s]:", tc.origin.c_str());
    for (const auto& [name, value] : tc.inputs)
      std::printf(" %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(value));
    std::printf("\n");
  }
  for (const auto& bug : report.bugs)
    std::printf("BUG: %s at pc=0x%04x (%s)\n", bug.kind.c_str(), bug.pc,
                bug.detail.c_str());
  // All drivers verified against the golden models: any mismatch would
  // have trapped (ebreak). Success = 0 bugs and >=3 paths.
  return (report.bugs.empty() && report.paths_completed >= 3) ? 0 : 1;
}
