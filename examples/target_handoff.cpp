// Multi-target orchestration: fast-forward on the FPGA, trace on the
// simulator (paper Sec. III-B: "start the analysis on the FPGA target and
// once a particular point is reached the FPGA state is transferred to the
// Verilator target").
//
// The timer peripheral runs a long countdown. The FPGA target burns
// through the boring prefix at fabric speed; right before the interesting
// event (expiry), the live hardware state is migrated into the simulator
// target, which records a full VCD trace of the final cycles — something
// the FPGA could never produce.
//
//   $ ./target_handoff           # writes handoff.vcd
#include <cstdio>

#include "core/session.h"
#include "periph/periph.h"
#include "sim/vcd.h"

using namespace hardsnap;

int main() {
  core::SessionConfig cfg;
  cfg.target = core::SessionConfig::Target::kBoth;  // FPGA active first
  auto session_or = core::Session::Create(cfg);
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  auto session = std::move(session_or).value();
  auto& hw = session->hardware();
  std::printf("phase 1: running on %s target\n", hw.name().c_str());

  // Program a long countdown and let the FPGA chew through most of it.
  const uint32_t kLoad = 0x0004, kCtrl = 0x0000, kValue = 0x0010;
  if (!hw.Write32(kLoad, 100000).ok()) return 1;
  if (!hw.Write32(kCtrl, 0b011).ok()) return 1;  // enable + irq
  if (!hw.Run(99950).ok()) return 1;
  const uint32_t remaining = hw.Read32(kValue).value_or(0);
  std::printf("phase 1 done: counter at %u after %s of fabric time\n",
              remaining, hw.clock().now().ToString().c_str());

  // Migrate the live state into the simulator.
  if (auto s = session->MoveToTarget(bus::TargetKind::kSimulator); !s.ok()) {
    std::fprintf(stderr, "migration failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("phase 2: state transferred to %s target\n",
              session->hardware().name().c_str());

  // Full-visibility tracing of the last cycles, including the irq edge.
  sim::Simulator* simulator = session->simulator_target()->simulator();
  sim::VcdWriter vcd(*simulator, 10);
  bool irq_seen = false;
  for (int cycle = 0; cycle < 120; ++cycle) {
    vcd.Sample(simulator->cycle_count());
    if (!session->hardware().Run(1).ok()) return 1;
    if (session->hardware().IrqVector() & 1u) irq_seen = true;
  }
  if (auto s = vcd.WriteFile("handoff.vcd"); !s.ok()) {
    std::fprintf(stderr, "vcd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("phase 2 done: %zu-sample full trace in handoff.vcd, irq %s\n",
              vcd.num_samples(), irq_seen ? "captured" : "NOT seen");
  std::printf("value now: %u, expired: %u\n",
              session->hardware().Read32(kValue).value_or(~0u),
              session->hardware().Read32(0x000c).value_or(~0u));
  return irq_seen ? 0 : 1;
}
