// Parallel fuzzing campaign with deterministic single-threaded replay.
//
// Four workers shard a campaign against the vulnerable packet parser:
// each owns a full simulated device and a seed derived from the campaign
// seed, and they only meet in the shared coverage map / crash log. The
// payoff of that isolation is the determinism contract: when a worker
// finds the overflow, the finding names the worker seed and exec count
// that reproduce it in a plain single-threaded Fuzzer — which this
// example then does, proving the crash is real without re-running the
// campaign.
//
//   $ ./parallel_fuzz
#include <cstdio>

#include "campaign/campaign.h"
#include "firmware/corpus.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "vm/assembler.h"

using namespace hardsnap;

int main() {
  auto soc = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
  if (!soc.ok()) return 1;
  auto image = vm::Assemble(firmware::VulnerableParserFirmware());
  if (!image.ok()) return 1;

  campaign::FuzzCampaignOptions opts;
  opts.workers = 4;
  opts.total_execs = 2000;
  opts.seed = 2026;
  opts.fuzz.input_size = 2;  // [length, payload]

  campaign::FuzzCampaign campaign(soc.value(), image.value(), opts);
  auto report = campaign.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "campaign: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.value().Summary().c_str());
  if (report.value().findings.empty()) {
    std::fprintf(stderr, "no crash found\n");
    return 1;
  }

  // Replay every finding single-threaded from its derived worker seed.
  for (const auto& finding : report.value().findings) {
    std::printf(
        "finding: pc=0x%04x %s (worker %u, seed %llu, %llu execs)\n",
        finding.crash.pc, finding.crash.reason.c_str(), finding.worker,
        static_cast<unsigned long long>(finding.worker_seed),
        static_cast<unsigned long long>(finding.execs_at_find));
    auto replay =
        campaign::ReplayFinding(soc.value(), image.value(), opts, finding);
    if (!replay.ok()) {
      std::fprintf(stderr, "  replay FAILED: %s\n",
                   replay.status().ToString().c_str());
      return 1;
    }
    std::printf("  replayed single-threaded: pc=0x%04x %s\n",
                replay.value().pc, replay.value().reason.c_str());
  }
  return 0;
}
