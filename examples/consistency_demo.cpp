// Consistency demo: the paper's Fig. 1 scenario, run three ways.
//
// Two firmware paths (REQ A / REQ B) share one AES accelerator. Path A
// checks its ciphertext and traps on a WRONG result; path B contains a
// planted bug that fires on a CORRECT result. A sound analysis must report
// exactly {B}. This program runs the same firmware under:
//   naive-and-consistent   (reboot + re-execute on every state switch)
//   naive-and-inconsistent (hardware-in-the-loop, shared live device)
//   hardsnap               (hardware/software co-snapshotting)
// and prints each verdict plus the cost columns the paper compares.
//
//   $ ./consistency_demo
#include <cstdio>

#include "core/session.h"
#include "firmware/corpus.h"
#include "vm/assembler.h"

using namespace hardsnap;

int main() {
  const std::string fw_asm = firmware::Fig1ConsistencyFirmware();
  auto img = vm::Assemble(fw_asm);
  if (!img.ok()) {
    std::fprintf(stderr, "asm: %s\n", img.status().ToString().c_str());
    return 1;
  }
  const uint32_t fp_pc = img.value().symbols.at("bug_false_positive");
  const uint32_t real_pc = img.value().symbols.at("bug_real");

  std::printf(
      "%-20s %8s %8s %10s %10s %12s %s\n", "mode", "realbug", "falsepos",
      "reboots", "replayed", "hw-time", "verdict");

  bool ok = true;
  for (auto mode : {symex::ConsistencyMode::kNaiveConsistent,
                    symex::ConsistencyMode::kNaiveInconsistent,
                    symex::ConsistencyMode::kHardSnap}) {
    core::SessionConfig cfg;
    cfg.exec.mode = mode;
    cfg.exec.search = symex::SearchStrategy::kBfs;
    cfg.exec.max_instructions = 2000000;
    auto session = core::Session::Create(cfg);
    if (!session.ok()) return 1;
    if (!session.value()->LoadFirmware(img.value()).ok()) return 1;
    session.value()->MakeSymbolicRegister(10, "req");
    auto report = session.value()->Run();
    if (!report.ok()) {
      std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
      return 1;
    }
    bool real = false, fp = false;
    for (const auto& bug : report.value().bugs) {
      if (bug.pc == real_pc) real = true;
      if (bug.pc == fp_pc) fp = true;
    }
    const bool sound = real && !fp;
    std::printf("%-20s %8s %8s %10llu %10llu %12s %s\n",
                symex::ConsistencyModeName(mode), real ? "found" : "MISSED",
                fp ? "YES" : "no",
                static_cast<unsigned long long>(report.value().reboots),
                static_cast<unsigned long long>(
                    report.value().replayed_instructions),
                report.value().analysis_hw_time.ToString().c_str(),
                sound ? "correct" : "WRONG");
    if (mode != symex::ConsistencyMode::kNaiveInconsistent && !sound)
      ok = false;
  }
  return ok ? 0 : 1;
}
