# The synthetic "vulnerable parser" firmware from src/firmware/corpus.cc
# (firmware::VulnerableParserFirmware), checked in as assembly so the
# hardsnap CLI can be driven without building a dump helper — CI's
# multi-process remote soak fuzzes this via `hardsnap fuzz`.
# Bug: the copy loop trusts the attacker-controlled length byte at
# 0x10000000 and writes past the 16-byte buffer at 0x1003fff0.
_start:
  li t0, 0x10000000
  lbu t1, 0(t0)
  li t2, 0x1003fff0
  li t3, 0
copy:
  beq t3, t1, done
  add t4, t0, t3
  lbu t5, 1(t4)
  add t6, t2, t3
  sb t5, 0(t6)
  addi t3, t3, 1
  j copy
done:
  li a0, 0

finish:
  li t0, 0x50000004
  sw a0, 0(t0)
