// Secure-boot audit: synthesize a signature-check bypass through real RTL.
//
// The boot ROM hashes the firmware "image" on the SHA-256 accelerator and
// compares the digest against an expected value — which the designers left
// in unprotected RAM. HardSnap treats both the image and the expected
// digest as attacker-controlled symbolic inputs, executes the REAL
// accelerator RTL for the hash, and emits the complete exploit: a tampered
// image plus the forged expected-digest words that make the check pass.
//
//   $ ./secure_boot_audit
#include <cstdio>

#include "core/session.h"
#include "firmware/corpus.h"
#include "periph/ref_models.h"
#include "vm/memmap.h"

using namespace hardsnap;

int main() {
  core::SessionConfig cfg;
  cfg.exec.max_instructions = 500000;
  auto session_or = core::Session::Create(cfg);
  if (!session_or.ok()) return 1;
  auto session = std::move(session_or).value();

  if (auto s = session->LoadFirmwareAsm(firmware::SecureBootFirmware());
      !s.ok()) {
    std::fprintf(stderr, "firmware: %s\n", s.ToString().c_str());
    return 1;
  }
  // Attacker controls the image and the "expected digest" config area.
  if (!session->MakeSymbolicRegion(vm::kRamBase, 1, "image").ok()) return 1;
  if (!session->MakeSymbolicRegion(vm::kRamBase + 0x10, 8, "expected").ok())
    return 1;

  auto report_or = session->Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "run: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const auto& report = report_or.value();
  std::printf("audit: %s\n", report.Summary().c_str());

  for (const auto& bug : report.bugs) {
    if (bug.kind != "ebreak") continue;
    std::printf("BOOT BYPASS FOUND (pc=0x%04x). Exploit:\n", bug.pc);
    const auto& in = bug.test_case.inputs;
    const uint8_t image =
        static_cast<uint8_t>(in.count("image[0]") ? in.at("image[0]") : 0);
    std::printf("  tampered image byte: 0x%02x\n", image);
    uint32_t exp0 = 0, exp1 = 0;
    for (int i = 0; i < 4; ++i) {
      auto k0 = "expected[" + std::to_string(i) + "]";
      auto k4 = "expected[" + std::to_string(4 + i) + "]";
      if (in.count(k0)) exp0 |= static_cast<uint32_t>(in.at(k0)) << (8 * i);
      if (in.count(k4)) exp1 |= static_cast<uint32_t>(in.at(k4)) << (8 * i);
    }
    std::printf("  forged expected digest words: %08x %08x\n", exp0, exp1);

    // Cross-check the exploit against the golden SHA-256 model.
    auto digest = periph::ref::Sha256({image});
    std::printf("  golden digest words:          %08x %08x  -> %s\n",
                digest[0], digest[1],
                (digest[0] == exp0 && digest[1] == exp1)
                    ? "exploit verified"
                    : "MISMATCH");
    return (digest[0] == exp0 && digest[1] == exp1 && image != 0x42) ? 0 : 1;
  }
  std::printf("no bypass found (unexpected)\n");
  return 1;
}
