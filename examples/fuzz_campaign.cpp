// Snapshot-based fuzzing campaign against the vulnerable packet parser.
//
// The classic embedded-fuzzing problem (paper Sec. II): each input needs a
// clean device state, and a real device only offers a slow reboot.
// HardSnap snapshots the software AND hardware state once, at the harness
// point, then restores per input — the campaign below finds the buffer
// overflow in a few hundred executions.
//
//   $ ./fuzz_campaign
#include <cstdio>

#include "bus/sim_target.h"
#include "firmware/corpus.h"
#include "fuzz/fuzzer.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "vm/assembler.h"

using namespace hardsnap;

int main() {
  auto soc = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
  if (!soc.ok()) return 1;
  auto target = bus::SimulatorTarget::Create(soc.value());
  if (!target.ok()) return 1;
  auto image = vm::Assemble(firmware::VulnerableParserFirmware());
  if (!image.ok()) return 1;

  fuzz::FuzzOptions opts;
  opts.reset = fuzz::ResetStrategy::kSnapshotReset;
  opts.input_size = 2;  // [length, payload]
  opts.seed = 2026;

  fuzz::Fuzzer fuzzer(target.value().get(), image.value(), opts);
  for (int round = 1; round <= 5; ++round) {
    auto stats = fuzzer.Run(100);
    if (!stats.ok()) {
      std::fprintf(stderr, "fuzz: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "round %d: execs=%llu corpus=%llu edges=%llu crashes=%llu "
        "(reset overhead %s)\n",
        round, static_cast<unsigned long long>(stats.value().execs),
        static_cast<unsigned long long>(stats.value().corpus_size),
        static_cast<unsigned long long>(stats.value().edges_covered),
        static_cast<unsigned long long>(stats.value().crashes),
        stats.value().reset_overhead.ToString().c_str());
    if (!fuzzer.crashes().empty()) break;
  }

  for (const auto& crash : fuzzer.crashes()) {
    std::printf("CRASH at pc=0x%04x: %s  input = [", crash.pc,
                crash.reason.c_str());
    for (size_t i = 0; i < crash.input.size(); ++i)
      std::printf("%s0x%02x", i ? ", " : "", crash.input[i]);
    std::printf("]\n");
  }
  return fuzzer.crashes().empty() ? 1 : 0;
}
