// Crash reproduction and root-cause analysis (paper Sec. I: "VM snapshots
// also save testing time by facilitating crash reproduction, performing
// root cause analysis").
//
// Stage 1: symbolic execution finds the parser overflow and emits a
//          concrete reproducer.
// Stage 2: the reproducer is replayed on the concrete CPU with full
//          hardware visibility — single-stepping the last instructions
//          before the fault and dumping a VCD trace of the peripherals —
//          the workflow a developer uses to diagnose the finding.
//
//   $ ./crash_replay          # writes crash_replay.vcd
#include <cstdio>

#include "bus/sim_target.h"
#include "core/session.h"
#include "firmware/corpus.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "sim/vcd.h"
#include "vm/cpu.h"
#include "vm/isa.h"
#include "vm/memmap.h"

using namespace hardsnap;

int main() {
  // ---- stage 1: find the bug symbolically -------------------------------
  core::SessionConfig cfg;
  cfg.exec.search = symex::SearchStrategy::kDfs;
  cfg.exec.max_instructions = 500000;
  auto session = core::Session::Create(cfg);
  if (!session.ok()) return 1;
  if (!session.value()
           ->LoadFirmwareAsm(firmware::VulnerableParserFirmware())
           .ok())
    return 1;
  if (!session.value()->MakeSymbolicRegion(vm::kRamBase, 2, "packet").ok())
    return 1;
  auto report = session.value()->Run();
  if (!report.ok() || report.value().bugs.empty()) {
    std::fprintf(stderr, "no bug found\n");
    return 1;
  }
  const auto& bug = report.value().bugs[0];
  std::printf("stage 1: %s at pc=0x%04x, reproducer:", bug.kind.c_str(),
              bug.pc);
  std::vector<uint8_t> packet(2, 0);
  for (const auto& [name, value] : bug.test_case.inputs) {
    std::printf(" %s=%llu", name.c_str(),
                static_cast<unsigned long long>(value));
    if (name == "packet[0]") packet[0] = static_cast<uint8_t>(value);
    if (name == "packet[1]") packet[1] = static_cast<uint8_t>(value);
  }
  std::printf("\n");

  // ---- stage 2: concrete replay with full visibility ---------------------
  auto soc = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
  if (!soc.ok()) return 1;
  auto target = bus::SimulatorTarget::Create(soc.value());
  if (!target.ok()) return 1;
  auto image = vm::Assemble(firmware::VulnerableParserFirmware());
  if (!image.ok()) return 1;

  vm::Cpu cpu(target.value().get());
  if (!cpu.LoadFirmware(image.value()).ok()) return 1;
  if (!cpu.WriteRam(vm::kRamBase, packet).ok()) return 1;

  sim::VcdWriter vcd(*target.value()->simulator(), 10);
  std::printf("stage 2: replaying; last instructions before the fault:\n");
  std::vector<std::pair<uint32_t, std::string>> window;
  vm::RunOutcome out;
  for (;;) {
    // Disassemble the instruction about to execute.
    const uint32_t pc = cpu.pc();
    uint32_t word = 0;
    const auto& b = image.value().bytes;
    for (uint32_t i = 0; i < 4; ++i) {
      const uint8_t byte = pc + i < b.size() ? b[pc + i] : uint8_t{0};
      word |= uint32_t{byte} << (8 * i);
    }
    std::string dis = "?";
    if (auto d = vm::Decode(word); d.ok()) dis = vm::Disassemble(d.value());
    window.emplace_back(pc, dis);
    if (window.size() > 8) window.erase(window.begin());

    vcd.Sample(target.value()->simulator()->cycle_count());
    out = cpu.Step();
    if (out.status != vm::RunStatus::kRunning) break;
    if (cpu.state().icount > 100000) break;
  }

  for (const auto& [pc, dis] : window)
    std::printf("  0x%04x: %s\n", pc, dis.c_str());
  if (out.status == vm::RunStatus::kBug) {
    std::printf("fault reproduced: %s at pc=0x%04x after %llu instructions\n",
                out.reason.c_str(), out.fault_pc,
                static_cast<unsigned long long>(cpu.state().icount));
  } else {
    std::printf("fault did NOT reproduce (status %d)\n",
                static_cast<int>(out.status));
    return 1;
  }
  if (!vcd.WriteFile("crash_replay.vcd").ok()) return 1;
  std::printf("full peripheral trace written to crash_replay.vcd "
              "(%zu samples)\n", vcd.num_samples());
  return 0;
}
