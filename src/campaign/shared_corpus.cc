#include "campaign/shared_corpus.h"

namespace hardsnap::campaign {

size_t SharedCorpus::MergeEdges(const std::set<uint64_t>& edges,
                                std::vector<uint64_t>* fresh) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (uint64_t e : edges) {
    if (!edges_.insert(e).second) continue;
    ++count;
    if (fresh != nullptr) fresh->push_back(e);
  }
  return count;
}

void SharedCorpus::OfferInput(unsigned worker,
                              const std::vector<uint8_t>& input) {
  if (input.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!seen_inputs_.insert(input).second) return;
  offers_.push_back({worker, input});
}

bool SharedCorpus::ReportCrash(CampaignFinding finding) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!crash_pcs_.insert(finding.crash.pc).second) return false;
  findings_.push_back(std::move(finding));
  return true;
}

std::vector<std::vector<uint8_t>> SharedCorpus::TakeNewInputs(
    unsigned worker, size_t* cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<uint8_t>> fresh;
  for (; *cursor < offers_.size(); ++*cursor)
    if (offers_[*cursor].worker != worker)
      fresh.push_back(offers_[*cursor].input);
  return fresh;
}

size_t SharedCorpus::edges_covered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.size();
}

size_t SharedCorpus::corpus_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_inputs_.size();
}

std::vector<CampaignFinding> SharedCorpus::findings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return findings_;
}

void SharedCorpus::Restore(
    const std::set<uint64_t>& edges,
    const std::vector<std::pair<unsigned, std::vector<uint8_t>>>& offers,
    const std::vector<CampaignFinding>& findings) {
  std::lock_guard<std::mutex> lock(mu_);
  edges_ = edges;
  seen_inputs_.clear();
  offers_.clear();
  for (const auto& [worker, input] : offers) {
    if (input.empty()) continue;
    if (!seen_inputs_.insert(input).second) continue;
    offers_.push_back({worker, input});
  }
  crash_pcs_.clear();
  findings_.clear();
  for (const CampaignFinding& f : findings) {
    if (!crash_pcs_.insert(f.crash.pc).second) continue;
    findings_.push_back(f);
  }
}

}  // namespace hardsnap::campaign
