#include "campaign/shared_corpus.h"

namespace hardsnap::campaign {

size_t SharedCorpus::MergeEdges(const std::set<uint64_t>& edges) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t fresh = 0;
  for (uint64_t e : edges)
    if (edges_.insert(e).second) ++fresh;
  return fresh;
}

void SharedCorpus::OfferInput(unsigned worker,
                              const std::vector<uint8_t>& input) {
  if (input.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!seen_inputs_.insert(input).second) return;
  offers_.push_back({worker, input});
}

bool SharedCorpus::ReportCrash(CampaignFinding finding) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!crash_pcs_.insert(finding.crash.pc).second) return false;
  findings_.push_back(std::move(finding));
  return true;
}

std::vector<std::vector<uint8_t>> SharedCorpus::TakeNewInputs(
    unsigned worker, size_t* cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<uint8_t>> fresh;
  for (; *cursor < offers_.size(); ++*cursor)
    if (offers_[*cursor].worker != worker)
      fresh.push_back(offers_[*cursor].input);
  return fresh;
}

size_t SharedCorpus::edges_covered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.size();
}

size_t SharedCorpus::corpus_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_inputs_.size();
}

std::vector<CampaignFinding> SharedCorpus::findings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return findings_;
}

}  // namespace hardsnap::campaign
