#include "campaign/campaign.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>

#include "common/rng.h"

namespace hardsnap::campaign {

Status ValidateFuzzCampaignOptions(const FuzzCampaignOptions& options) {
  if (options.workers == 0)
    return InvalidArgument("campaign workers must be >= 1");
  if (options.batch_execs == 0)
    return InvalidArgument("campaign batch_execs must be >= 1");
  if (!options.persist.dir.empty()) {
    if (options.persist.checkpoint_every == 0)
      return InvalidArgument("persist.checkpoint_every must be >= 1");
    if (options.share_corpus)
      return InvalidArgument(
          "durable persistence requires share_corpus=false: exact resume "
          "relies on the pure-function seed replay, which "
          "cross-pollination is defined to break");
  }
  return fuzz::ValidateFuzzOptions(options.fuzz);
}

uint64_t FuzzCampaignFingerprint(const FuzzCampaignOptions& o,
                                 const vm::FirmwareImage& image) {
  persist::Fingerprint fp;
  fp.Mix(persist::kCampaignKindFuzz);
  fp.Mix(o.seed);
  fp.Mix(o.workers);
  fp.Mix(o.batch_execs);
  fp.Mix(o.share_corpus ? 1 : 0);
  fp.Mix(static_cast<uint64_t>(o.fuzz.reset));
  fp.Mix(o.fuzz.input_addr);
  fp.Mix(o.fuzz.input_size);
  fp.Mix(o.fuzz.max_instructions_per_exec);
  fp.Mix(o.fuzz.init_instructions);
  fp.Mix(o.fuzz.cycles_per_instruction);
  fp.Mix(o.fuzz.use_delta_snapshots ? 1 : 0);
  // The firmware is part of the campaign's identity: resuming a directory
  // with a different image would replay seeds against a different program
  // and silently mix two campaigns' findings. (The harness-snapshot hash
  // cannot catch this alone — firmware lives in the host VM, and a code
  // change that alters no MMIO traffic leaves the hardware state
  // identical.)
  fp.Mix(image.base);
  fp.Mix(image.bytes.size());
  for (uint8_t b : image.bytes) fp.Mix(b);
  return fp.digest();
}

std::string CampaignReport::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "campaign: %u workers, %llu execs, %llu edges, %llu unique crashes, "
      "corpus %llu | modeled %s (serial %s, speedup %.2fx) | wall %.2fs",
      static_cast<unsigned>(per_worker.size()),
      static_cast<unsigned long long>(execs),
      static_cast<unsigned long long>(edges_covered),
      static_cast<unsigned long long>(unique_crashes),
      static_cast<unsigned long long>(corpus_size),
      modeled_campaign_time.ToString().c_str(),
      modeled_serial_time.ToString().c_str(), modeled_speedup, wall_seconds);
  std::string out = buf;
  if (link.retransmits > 0 || reprovisions > 0) {
    std::snprintf(buf, sizeof buf,
                  " | link: %llu retransmits, %llu drops, %llu crc rejects, "
                  "%llu reprovisions",
                  static_cast<unsigned long long>(link.retransmits),
                  static_cast<unsigned long long>(link.drops),
                  static_cast<unsigned long long>(link.crc_rejects),
                  static_cast<unsigned long long>(reprovisions));
    out += buf;
  }
  return out;
}

FuzzCampaign::FuzzCampaign(const rtl::Design& soc, vm::FirmwareImage image,
                           FuzzCampaignOptions options)
    : soc_(soc), image_(std::move(image)), options_(std::move(options)) {}

namespace {

// Worker i's share of the campaign budget (even split, remainder to the
// low-numbered workers).
uint64_t WorkerQuota(const FuzzCampaignOptions& o, unsigned worker) {
  const uint64_t base = o.total_execs / o.workers;
  return base + (worker < o.total_execs % o.workers ? 1 : 0);
}

Duration ModeledWorkerTime(const fuzz::FuzzStats& stats,
                           const FuzzCampaignOptions& o) {
  // Target clock time plus the off-device reboot cost the baseline
  // strategy charges on its own clock.
  return stats.hw_time +
         o.fuzz.reboot_cost * static_cast<int64_t>(stats.reboots);
}

}  // namespace

Status FuzzCampaign::RunWorker(unsigned worker) {
  const uint64_t worker_seed = DeriveWorkerSeed(options_.seed, worker);
  const uint64_t quota = WorkerQuota(options_, worker);

  // Resume: start from the recovered acknowledgment frontier. provision()
  // below replays these execs on the fresh slice (the same pure-function
  // catch-up a link failover uses), reconstructing corpus, coverage and
  // RNG position exactly.
  uint64_t done = persist_ ? resume_done_[worker] : 0;
  size_t offer_cursor = 0;   // into the shared offer log
  size_t offered = 0;        // local corpus entries already shared
  size_t crashes_seen = 0;

  uint64_t reprovisions = 0;
  uint64_t replayed_execs = 0;
  Duration dead_device_time;   // device clocks of incarnations that died
  Duration catchup_time;       // survivors' time spent replaying old execs
  bus::LinkStats dead_links;   // counters from incarnations that died
  fuzz::FuzzStats dead_stats;  // reboot/restore work from dead incarnations

  std::unique_ptr<bus::HardwareTarget> target;
  std::optional<fuzz::Fuzzer> fuzzer;

  // Builds a fresh vertical slice — locally by default, or wherever the
  // target factory puts it (a remote hardsnapd session in --connect
  // mode). Each local incarnation re-derives the link's fault seed so a
  // replacement device does not replay the exact fault schedule that
  // killed its predecessor.
  auto provision = [&]() -> Status {
    if (options_.target_factory) {
      auto t = options_.target_factory(worker, reprovisions);
      if (!t.ok()) return t.status();
      target = std::move(t).value();
    } else {
      bus::SimulatorTargetOptions topts = options_.simulator_options;
      if (topts.link.faults.enabled())
        topts.link.faults.seed = DeriveWorkerSeed(
            topts.link.faults.seed + reprovisions, worker);
      auto t = bus::SimulatorTarget::Create(soc_, topts);
      if (!t.ok()) return t.status();
      target = std::move(t).value();
    }
    fuzz::FuzzOptions fopts = options_.fuzz;
    fopts.seed = worker_seed;
    fuzzer.emplace(target.get(), image_, fopts);
    // Catch up: with no cross-pollination the fuzzer is a pure function
    // of its seed, so replaying the credited execs reconstructs the
    // corpus, RNG position and coverage exactly. (With share_corpus the
    // original import timing is gone — the replacement simply fuzzes on
    // from scratch, which that mode's input-level replay contract
    // already allows.)
    if (done > 0 && !options_.share_corpus) {
      auto s = fuzzer->Run(done);
      if (!s.ok()) return s.status();
      replayed_execs += done;
      catchup_time += target->clock().now();
    }
    if (persist_) {
      // Exact-resume proof: the replayed worker must have reached the
      // recorded RNG stream position. A mismatch means the replay did not
      // reproduce the original run (changed firmware, changed mutator) —
      // continuing would silently corrupt the findings' provenance.
      if (done == resume_done_[worker] && done > 0 &&
          resume_rng_digest_[worker] != 0 &&
          fuzzer->RngDigest() != resume_rng_digest_[worker])
        return DataLoss(
            "resume replay diverged from the checkpointed RNG stream "
            "position (worker " + std::to_string(worker) + ")");
      // Harness drift check: the recovered snapshot store holds the
      // harness-point hardware state of the original run; the recomputed
      // harness must match it (same SoC, same firmware, same init).
      HS_RETURN_IF_ERROR(fuzzer->EnsureSnapshotReady());
      if (persist_->resumed() && persist_->HasHarnessSnapshots() &&
          !persist_->HarnessHashKnown(fuzzer->harness_hash()))
        return DataLoss(
            "resume harness drift: the recomputed harness snapshot does "
            "not match any checkpointed one (firmware or SoC changed?)");
      HS_RETURN_IF_ERROR(persist_->RecordHarnessSnapshot(
          fuzzer->harness_state(), "harness"));
    }
    return Status::Ok();
  };

  // A dead slice costs us its device: record what it spent, drop it, and
  // let the next loop iteration provision a replacement.
  auto abandon_slice = [&] {
    if (target) {
      dead_links += target->stats().link;
      dead_device_time += target->clock().now();
    }
    if (fuzzer) {
      dead_stats.reboots += fuzzer->stats().reboots;
      dead_stats.snapshot_restores += fuzzer->stats().snapshot_restores;
      dead_stats.delta_restores += fuzzer->stats().delta_restores;
      dead_stats.total_instructions += fuzzer->stats().total_instructions;
    }
    fuzzer.reset();
    target.reset();
    // Re-publishing after catch-up is idempotent (SharedCorpus dedups
    // inputs by content and crashes by pc), so just rewind the cursors.
    offered = 0;
    crashes_seen = 0;
  };

  auto externally_stopped = [&] {
    return options_.external_stop != nullptr &&
           options_.external_stop->load(std::memory_order_relaxed);
  };

  while (done < quota && !stop_.load(std::memory_order_relaxed) &&
         !externally_stopped()) {
    if (!fuzzer) {
      Status s = provision();
      if (!s.ok()) {
        if (!IsInfrastructureFailure(s.code())) return s;
        if (reprovisions >= options_.max_reprovisions) return s;
        ++reprovisions;
        live_reprovisions_.fetch_add(1, std::memory_order_relaxed);
        abandon_slice();
        continue;  // catch-up itself hit a dead link: try a fresh slice
      }
    }

    if (options_.share_corpus)
      fuzzer->ImportCorpus(shared_.TakeNewInputs(worker, &offer_cursor));

    const uint64_t batch = std::min(options_.batch_execs, quota - done);
    auto stats = fuzzer->Run(batch);
    if (!stats.ok()) {
      if (!IsInfrastructureFailure(stats.status().code()))
        return stats.status();
      // The target's link died mid-batch. Re-provision the slice and
      // replay up to the last credited exec instead of failing the
      // campaign; give up only after max_reprovisions replacements.
      if (reprovisions >= options_.max_reprovisions) return stats.status();
      ++reprovisions;
      live_reprovisions_.fetch_add(1, std::memory_order_relaxed);
      abandon_slice();
      continue;
    }
    done += batch;
    live_execs_.fetch_add(batch, std::memory_order_relaxed);

    // Sync point: publish coverage, inputs and crashes. Aggregation only
    // (unless share_corpus) — nothing here changes the fuzzer's future.
    persist::FuzzBatchAck ack;  // filled only when persisting
    shared_.MergeEdges(fuzzer->edges(),
                       persist_ ? &ack.fresh_edges : nullptr);
    for (; offered < fuzzer->corpus().size(); ++offered) {
      shared_.OfferInput(worker, fuzzer->corpus()[offered]);
      if (persist_) ack.new_inputs.push_back(fuzzer->corpus()[offered]);
    }
    for (; crashes_seen < fuzzer->crashes().size(); ++crashes_seen) {
      CampaignFinding finding;
      finding.crash = fuzzer->crashes()[crashes_seen];
      finding.worker = worker;
      finding.worker_seed = worker_seed;
      finding.execs_at_find = done;
      if (persist_) ack.new_findings.push_back(finding);
      const bool fresh = shared_.ReportCrash(std::move(finding));
      if (fresh && options_.stop_on_first_crash)
        stop_.store(true, std::memory_order_relaxed);
    }
    if (persist_) {
      // Acknowledgment point: the batch only counts once the journal
      // fsync returns. A crash anywhere before this line loses nothing —
      // the batch simply replays identically on resume (same seed, same
      // stream position, same findings with the same execs_at_find).
      ack.worker = worker;
      ack.done = done;
      ack.rng_digest = fuzzer->RngDigest();
      HS_RETURN_IF_ERROR(persist_->AckFuzzBatch(ack));
    }
  }

  WorkerResult& res = results_[worker];
  res.worker = worker;
  res.worker_seed = worker_seed;
  if (fuzzer) {
    res.stats = fuzzer->stats();
    res.modeled_time = ModeledWorkerTime(fuzzer->stats(), options_);
  }
  // Fold in what the dead incarnations spent: their device time, reset
  // work and off-device reboot costs all happened even though their
  // progress had to be replayed on a replacement. The survivor's own
  // clock already contains its catch-up time, so only dead-incarnation
  // time is added here.
  res.stats.execs = done;  // quota-credited, excludes catch-up replays
  res.stats.link += dead_links;
  res.stats.reboots += dead_stats.reboots;
  res.stats.snapshot_restores += dead_stats.snapshot_restores;
  res.stats.delta_restores += dead_stats.delta_restores;
  res.stats.total_instructions += dead_stats.total_instructions;
  res.modeled_time +=
      dead_device_time +
      options_.fuzz.reboot_cost * static_cast<int64_t>(dead_stats.reboots);
  res.reprovisions = reprovisions;
  res.replayed_execs = replayed_execs;
  res.lost_device_time = dead_device_time + catchup_time;
  return Status::Ok();
}

Result<CampaignReport> FuzzCampaign::Run() {
  HS_RETURN_IF_ERROR(ValidateFuzzCampaignOptions(options_));
  if (!results_.empty())
    return FailedPrecondition("FuzzCampaign::Run is one-shot");
  results_.resize(options_.workers);
  worker_status_.assign(options_.workers, Status::Ok());

  if (!options_.persist.dir.empty()) {
    HS_ASSIGN_OR_RETURN(
        persist_, persist::CampaignPersistence::Open(
                      options_.persist, persist::kCampaignKindFuzz,
                      FuzzCampaignFingerprint(options_, image_),
                      options_.workers));
    const persist::CampaignDurableState recovered = persist_->state();
    resume_done_ = recovered.worker_done;
    resume_rng_digest_ = recovered.worker_rng_digest;
    // Seed the shared corpus with everything already acknowledged, in
    // the original order, so a resumed campaign's findings list is the
    // uninterrupted run's list.
    std::vector<std::pair<unsigned, std::vector<uint8_t>>> offers;
    offers.reserve(recovered.offers.size());
    for (const persist::DurableOffer& o : recovered.offers)
      offers.emplace_back(o.worker, o.input);
    shared_.Restore(recovered.edges, offers, recovered.findings);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options_.workers);
  for (unsigned w = 0; w < options_.workers; ++w)
    threads.emplace_back([this, w] {
      live_workers_.fetch_add(1, std::memory_order_relaxed);
      worker_status_[w] = RunWorker(w);
      live_workers_.fetch_sub(1, std::memory_order_relaxed);
    });

  // Observability sidecar: one line per interval, rate computed over the
  // interval just ended. Reads only relaxed atomics — display, not truth.
  std::atomic<bool> monitor_stop{false};
  std::thread monitor;
  if (options_.stats_interval_seconds > 0) {
    monitor = std::thread([this, &monitor_stop] {
      uint64_t last_execs = 0;
      auto last = std::chrono::steady_clock::now();
      while (!monitor_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const auto now = std::chrono::steady_clock::now();
        if (now - last <
            std::chrono::seconds(options_.stats_interval_seconds))
          continue;
        const double dt = std::chrono::duration<double>(now - last).count();
        const uint64_t execs = live_execs_.load(std::memory_order_relaxed);
        char buf[256];
        std::snprintf(
            buf, sizeof buf,
            "[campaign] execs %llu/%llu (%.1f/s), workers %u, "
            "reprovisions %llu",
            static_cast<unsigned long long>(execs),
            static_cast<unsigned long long>(options_.total_execs),
            static_cast<double>(execs - last_execs) / dt,
            live_workers_.load(std::memory_order_relaxed),
            static_cast<unsigned long long>(
                live_reprovisions_.load(std::memory_order_relaxed)));
        std::string line = buf;
        if (options_.stats_extra) line += ", " + options_.stats_extra();
        std::fprintf(stderr, "%s\n", line.c_str());
        last = now;
        last_execs = execs;
      }
    });
  }

  for (auto& t : threads) t.join();
  monitor_stop.store(true, std::memory_order_relaxed);
  if (monitor.joinable()) monitor.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Final flush before error propagation: whatever the workers managed to
  // acknowledge is compacted into a checkpoint even if one of them failed.
  Status final_flush = Status::Ok();
  if (persist_) final_flush = persist_->Checkpoint();

  for (const Status& s : worker_status_)
    if (!s.ok()) return s;
  HS_RETURN_IF_ERROR(final_flush);

  CampaignReport report;
  report.per_worker = results_;
  report.findings = shared_.findings();
  report.edges_covered = shared_.edges_covered();
  report.unique_crashes = report.findings.size();
  report.corpus_size = shared_.corpus_size();
  report.wall_seconds = wall_seconds;
  if (persist_) {
    report.resumed = persist_->resumed();
    report.persist_stats = persist_->stats();
  }
  report.interrupted = options_.external_stop != nullptr &&
                       options_.external_stop->load(std::memory_order_relaxed);
  for (const WorkerResult& r : results_) {
    report.execs += r.stats.execs;
    report.reprovisions += r.reprovisions;
    report.link += r.stats.link;
    report.modeled_serial_time += r.modeled_time;
    report.modeled_campaign_time =
        std::max(report.modeled_campaign_time, r.modeled_time);
  }
  if (report.modeled_campaign_time > Duration()) {
    report.modeled_speedup = report.modeled_serial_time.seconds() /
                             report.modeled_campaign_time.seconds();
    report.modeled_execs_per_sec =
        static_cast<double>(report.execs) /
        report.modeled_campaign_time.seconds();
  }
  return report;
}

Result<fuzz::Crash> ReplayFinding(const rtl::Design& soc,
                                  const vm::FirmwareImage& image,
                                  const FuzzCampaignOptions& options,
                                  const CampaignFinding& finding) {
  if (options.share_corpus)
    return FailedPrecondition(
        "seed-level replay needs share_corpus=false (cross-pollinated "
        "campaigns replay findings at the input level: re-inject "
        "finding.crash.input at the harness point)");
  HS_RETURN_IF_ERROR(ValidateFuzzCampaignOptions(options));

  auto target = bus::SimulatorTarget::Create(soc, options.simulator_options);
  if (!target.ok()) return target.status();
  fuzz::FuzzOptions fopts = options.fuzz;
  fopts.seed = finding.worker_seed;
  fuzz::Fuzzer fuzzer(target.value().get(), image, fopts);
  // The worker ran in batches, but with no external perturbation the RNG
  // stream and corpus evolve identically however the execs are sliced.
  auto stats = fuzzer.Run(finding.execs_at_find);
  if (!stats.ok()) return stats.status();
  for (const fuzz::Crash& crash : fuzzer.crashes())
    if (crash.pc == finding.crash.pc) return crash;
  return NotFound("replay did not reproduce the crash at pc=" +
                  std::to_string(finding.crash.pc));
}

}  // namespace hardsnap::campaign
