#include "campaign/symex_campaign.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "symex/searcher.h"

namespace hardsnap::campaign {

std::string SymexCampaignReport::Summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "symex portfolio: %u workers, %llu paths, %llu bugs | modeled %s "
      "(serial %s) | wall %.2fs",
      static_cast<unsigned>(per_worker.size()),
      static_cast<unsigned long long>(paths_completed),
      static_cast<unsigned long long>(bugs.size()),
      modeled_campaign_time.ToString().c_str(),
      modeled_serial_time.ToString().c_str(), wall_seconds);
  return buf;
}

Result<SymexCampaignReport> RunSymexCampaign(
    const core::Session& base, const SymexCampaignOptions& opts) {
  if (opts.workers == 0)
    return InvalidArgument("symex campaign workers must be >= 1");

  // Worker-granularity persistence: completed reports are journaled; a
  // resumed portfolio recovers them and re-runs only the pending workers
  // (each is deterministic in its derived seed and strategy).
  std::unique_ptr<persist::CampaignPersistence> persistence;
  std::map<uint32_t, symex::Report> recovered;
  if (!opts.persist.dir.empty()) {
    persist::Fingerprint fp;
    fp.Mix(persist::kCampaignKindSymex);
    fp.Mix(opts.seed);
    fp.Mix(opts.workers);
    fp.Mix(opts.vary_search ? 1 : 0);
    // The firmware is part of the portfolio's identity (see
    // FuzzCampaignFingerprint): recovered reports describe THIS program.
    fp.Mix(base.firmware().base);
    fp.Mix(base.firmware().bytes.size());
    for (uint8_t b : base.firmware().bytes) fp.Mix(b);
    HS_ASSIGN_OR_RETURN(
        persistence, persist::CampaignPersistence::Open(
                         opts.persist, persist::kCampaignKindSymex,
                         fp.digest(), opts.workers));
    recovered = persistence->state().symex_reports;
  }

  static constexpr symex::SearchStrategy kRotation[] = {
      symex::SearchStrategy::kBfs, symex::SearchStrategy::kDfs,
      symex::SearchStrategy::kRandom, symex::SearchStrategy::kCoverage};

  // Clone serially: compilation and solver setup are not thread-safe
  // against each other by contract, and this keeps worker threads pure
  // compute. Recovered workers get no clone — nothing to run.
  std::vector<std::unique_ptr<core::Session>> clones(opts.workers);
  for (unsigned w = 0; w < opts.workers; ++w) {
    if (recovered.count(w)) continue;
    symex::ExecOptions exec = base.exec_options();
    exec.seed = DeriveWorkerSeed(opts.seed, w);
    if (opts.vary_search)
      exec.search = kRotation[w % (sizeof kRotation / sizeof kRotation[0])];
    auto clone = base.Clone(exec);
    if (!clone.ok()) return clone.status();
    clones[w] = std::move(clone).value();
  }

  std::vector<Result<symex::Report>> reports;
  reports.reserve(opts.workers);
  for (unsigned w = 0; w < opts.workers; ++w)
    reports.emplace_back(Internal("worker did not run"));
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opts.workers);
  for (unsigned w = 0; w < opts.workers; ++w) {
    if (recovered.count(w)) {
      reports[w] = recovered.at(w);
      continue;
    }
    threads.emplace_back([&, w] {
      reports[w] = clones[w]->Run();
      if (reports[w].ok() && persistence) {
        // Acknowledgment point: the worker's result only counts once its
        // report record is durably journaled.
        Status acked = persistence->AckSymexReport(w, reports[w].value());
        if (!acked.ok()) reports[w] = acked;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  if (persistence) HS_RETURN_IF_ERROR(persistence->Checkpoint());

  SymexCampaignReport out;
  out.wall_seconds = wall_seconds;
  if (persistence) {
    out.resumed = persistence->resumed();
    out.resumed_workers = recovered.size();
    out.persist_stats = persistence->stats();
  }
  std::set<std::pair<uint32_t, std::string>> seen;
  for (unsigned w = 0; w < opts.workers; ++w) {
    if (!reports[w].ok()) return reports[w].status();
    const symex::Report& r = reports[w].value();
    out.paths_completed += r.paths_completed;
    out.instructions += r.instructions;
    out.solver_queries += r.solver_queries;
    out.modeled_serial_time += r.analysis_hw_time;
    out.modeled_campaign_time =
        std::max(out.modeled_campaign_time, r.analysis_hw_time);
    for (const symex::Bug& bug : r.bugs)
      if (seen.insert({bug.pc, bug.kind}).second) out.bugs.push_back(bug);
    out.per_worker.push_back(r);
  }
  return out;
}

}  // namespace hardsnap::campaign
