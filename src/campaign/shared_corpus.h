// Thread-safe shared state for parallel fuzzing campaigns.
//
// Each campaign worker runs its own Fuzzer on its own hardware target;
// the SharedCorpus is the single point where their results meet:
//
//   - a global edge-coverage map (union of every worker's edges),
//   - crash de-duplication by faulting pc ACROSS workers (two workers
//     hitting the same bug yield one finding),
//   - an append-only log of interesting inputs that workers may adopt
//     as mutation parents when the campaign cross-pollinates.
//
// Everything here is aggregation-only by default: merging edges or
// reporting a crash never feeds anything back into a worker, so a
// worker's execution sequence stays a pure function of its derived seed
// and every finding replays single-threaded (see
// docs/parallel_campaigns.md for the determinism contract). Only
// TakeNewInputs — used when FuzzCampaignOptions::share_corpus is on —
// perturbs workers, and doing so deliberately trades seed-level replay
// for input-level replay.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "fuzz/fuzzer.h"

namespace hardsnap::campaign {

// A crash with enough provenance to reproduce it without the campaign:
// re-run a single-threaded Fuzzer with `worker_seed` for `execs_at_find`
// executions (ReplayFinding does exactly that).
struct CampaignFinding {
  fuzz::Crash crash;
  unsigned worker = 0;
  uint64_t worker_seed = 0;
  // Worker-local executions completed at the end of the batch in which
  // the crash surfaced (batch granularity: the crash happened at or
  // before this count).
  uint64_t execs_at_find = 0;
};

class SharedCorpus {
 public:
  // Union `edges` into the global coverage map; returns how many were
  // globally new. When `fresh` is non-null it receives exactly the edges
  // that were new (campaign persistence journals these instead of the
  // worker's whole edge set).
  size_t MergeEdges(const std::set<uint64_t>& edges,
                    std::vector<uint64_t>* fresh = nullptr);

  // Offer an input that earned its keep locally (new coverage). Deduped
  // by content; the offering worker never gets its own inputs back from
  // TakeNewInputs.
  void OfferInput(unsigned worker, const std::vector<uint8_t>& input);

  // Record a crash; returns true iff its faulting pc was globally new
  // (the finding was appended).
  bool ReportCrash(CampaignFinding finding);

  // Inputs offered by OTHER workers since this worker's last call.
  // `cursor` is the caller-owned position into the offer log (start at 0).
  std::vector<std::vector<uint8_t>> TakeNewInputs(unsigned worker,
                                                  size_t* cursor) const;

  size_t edges_covered() const;
  size_t corpus_size() const;
  std::vector<CampaignFinding> findings() const;

  // Seed the corpus from a recovered durable image (campaign resume).
  // Replaces the current contents; must be called before workers start.
  // Offer/finding order is preserved so a resumed campaign reports
  // findings in the same order as an uninterrupted one.
  void Restore(
      const std::set<uint64_t>& edges,
      const std::vector<std::pair<unsigned, std::vector<uint8_t>>>& offers,
      const std::vector<CampaignFinding>& findings);

 private:
  struct Offer {
    unsigned worker;
    std::vector<uint8_t> input;
  };

  mutable std::mutex mu_;
  std::set<uint64_t> edges_;
  std::set<std::vector<uint8_t>> seen_inputs_;
  std::vector<Offer> offers_;
  std::set<uint32_t> crash_pcs_;
  std::vector<CampaignFinding> findings_;
};

}  // namespace hardsnap::campaign
