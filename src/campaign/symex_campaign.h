// Portfolio symbolic execution: N cloned sessions explore the same
// firmware concurrently with different search strategies and seeds.
//
// Symbolic execution parallelizes poorly by state-splitting (the solver
// context is shared), but well as a PORTFOLIO: each worker is a full
// Session::Clone — its own compiled SoC, hardware target, solver and
// executor — so workers share nothing mutable and the only coordination
// is merging reports at the end. Workers differ in seed
// (DeriveWorkerSeed) and, when vary_search is on, in search strategy
// (BFS / DFS / random / coverage round-robin), so the portfolio covers
// the state space from several directions at once.
//
// Bugs are de-duplicated across workers by (pc, kind); each surviving
// bug carries its test case, which reproduces single-threaded on any
// session with the same configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/virtual_clock.h"
#include "core/session.h"
#include "persist/campaign_persistence.h"

namespace hardsnap::campaign {

struct SymexCampaignOptions {
  unsigned workers = 1;
  uint64_t seed = 1;        // worker i runs with DeriveWorkerSeed(seed, i)
  bool vary_search = true;  // round-robin search strategies across workers

  // Durable persistence at WORKER granularity (persist.dir non-empty
  // enables it): each completed worker report is journaled; a resumed
  // portfolio skips recovered workers and re-runs only the pending ones
  // (which are deterministic in their derived seed, so the merged report
  // matches an uninterrupted run).
  persist::PersistOptions persist;
};

struct SymexCampaignReport {
  std::vector<symex::Bug> bugs;  // de-duplicated across workers (pc, kind)
  uint64_t paths_completed = 0;
  uint64_t instructions = 0;
  uint64_t solver_queries = 0;
  std::vector<symex::Report> per_worker;
  Duration modeled_campaign_time;  // max over worker analysis_hw_time
  Duration modeled_serial_time;    // sum over worker analysis_hw_time
  double wall_seconds = 0.0;

  // Persistence provenance (campaigns with persist.dir set).
  bool resumed = false;
  uint64_t resumed_workers = 0;  // reports recovered instead of re-run
  persist::PersistStats persist_stats;

  std::string Summary() const;
};

// Clones `base` once per worker (serially, on the calling thread), then
// runs the clones' executors on worker threads and merges the reports.
// `base` itself is never run and stays reusable.
Result<SymexCampaignReport> RunSymexCampaign(const core::Session& base,
                                             const SymexCampaignOptions& opts);

}  // namespace hardsnap::campaign
