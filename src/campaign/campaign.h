// Parallel fuzzing campaigns: shard one campaign across N worker
// threads, each driving its own hardware target.
//
// The paper evaluates HardSnap's snapshot-reset fuzzing on a single
// target; a real deployment amortizes the (slow) device by running many
// in parallel — N FPGA boards, or N simulator processes. This module
// models that: every worker owns a full vertical slice (SimulatorTarget
// built from the shared compiled design, concrete CPU, Fuzzer) and only
// meets the others in the SharedCorpus between batches.
//
// Determinism contract (docs/parallel_campaigns.md):
//   - worker i fuzzes with seed DeriveWorkerSeed(options.seed, i) — a
//     splitmix-derived stream, statistically independent per worker;
//   - with share_corpus=false (default) nothing flows back into a
//     worker, so its executions are a pure function of its seed and
//     every finding replays single-threaded (ReplayFinding);
//   - with share_corpus=true workers adopt each other's discoveries as
//     mutation parents; schedule-dependent, so findings replay at the
//     input level (crash.input) rather than by seed.
//
// Wall-clock speedup depends on host cores; the modeled speedup
// (modeled_serial_time / modeled_campaign_time) is the paper-style
// metric: N devices run concurrently, so campaign time is the max over
// worker device clocks instead of their sum.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "bus/sim_target.h"
#include "campaign/shared_corpus.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "fuzz/fuzzer.h"
#include "persist/campaign_persistence.h"
#include "rtl/ir.h"
#include "vm/assembler.h"

namespace hardsnap::campaign {

// Builds the hardware target for one worker slice. `incarnation` counts
// (re-)provisions of that worker — 0 on first provision, increasing after
// each link failover — so a factory fronting a pool of remote servers can
// rotate to a different server when one dies. Called on the worker's
// thread; must be safe to call concurrently for different workers.
using CampaignTargetFactory =
    std::function<Result<std::unique_ptr<bus::HardwareTarget>>(
        unsigned worker, uint64_t incarnation)>;

struct FuzzCampaignOptions {
  unsigned workers = 1;
  uint64_t total_execs = 1000;  // across all workers (sharded evenly)
  uint64_t batch_execs = 64;    // execs between SharedCorpus sync points
  uint64_t seed = 1;            // campaign seed; workers derive from it
  bool share_corpus = false;    // cross-pollinate (input-level replay only)
  bool stop_on_first_crash = false;

  // How many times a worker may re-provision its slice (fresh target +
  // fuzzer) after its target's link dies before giving up and failing the
  // campaign. With share_corpus=false the replacement catches up by
  // replaying the credited execs from the worker seed (pure-function
  // contract), so findings are unchanged by a mid-campaign failover.
  unsigned max_reprovisions = 4;

  // Per-worker fuzzer template. `fuzz.seed` is ignored — each worker
  // uses DeriveWorkerSeed(seed, worker).
  fuzz::FuzzOptions fuzz;
  bus::SimulatorTargetOptions simulator_options;

  // When set, worker slices get their target from this factory instead of
  // building a local SimulatorTarget — the hook the CLI's --connect mode
  // uses to put each worker on a remote::RemoteTarget session. A factory
  // failure with an infrastructure code (kUnavailable/kDeadlineExceeded)
  // consumes a re-provision attempt like a mid-batch link death, so a
  // briefly unreachable server is survived, not fatal. Findings are
  // unaffected by WHERE the target runs: with share_corpus=false they are
  // a pure function of seed + firmware.
  CampaignTargetFactory target_factory;

  // Periodic progress line to stderr every this many wall seconds while
  // the campaign runs (0 = off): credited execs, execs/s, workers still
  // running, slice re-provisions, plus whatever `stats_extra` appends
  // (the CLI wires remote connection counters through it).
  unsigned stats_interval_seconds = 0;
  std::function<std::string()> stats_extra;

  // Durable checkpointing (persist.dir non-empty enables it): every batch
  // acknowledgment is journaled before it counts, so a killed campaign
  // resumes from the same directory with findings identical to an
  // uninterrupted run. Requires share_corpus=false (the exact-resume
  // contract is the pure-function seed replay; cross-pollination is
  // schedule-dependent). See docs/checkpoint_resume.md.
  persist::PersistOptions persist;

  // Cooperative shutdown: when non-null and set, workers finish their
  // current batch (acknowledging it durably when persisting) and stop.
  // The CLI's SIGINT/SIGTERM handler sets this.
  std::atomic<bool>* external_stop = nullptr;
};

Status ValidateFuzzCampaignOptions(const FuzzCampaignOptions& options);

struct WorkerResult {
  unsigned worker = 0;
  uint64_t worker_seed = 0;
  fuzz::FuzzStats stats;
  // Modeled device time this worker consumed (its target clock plus
  // reboot costs). N devices run concurrently, so the campaign's modeled
  // duration is the max of these, not the sum.
  Duration modeled_time;
  // Link-resilience accounting: slice re-provisions after a dead target,
  // catch-up execs replayed on replacements (not quota-credited), and
  // modeled device time that produced no credited progress.
  uint64_t reprovisions = 0;
  uint64_t replayed_execs = 0;
  Duration lost_device_time;
};

struct CampaignReport {
  uint64_t execs = 0;
  uint64_t edges_covered = 0;   // global coverage map
  uint64_t unique_crashes = 0;  // de-duplicated across workers by pc
  uint64_t corpus_size = 0;     // distinct interesting inputs, all workers
  std::vector<CampaignFinding> findings;
  std::vector<WorkerResult> per_worker;
  uint64_t reprovisions = 0;     // slice failovers across all workers
  bus::LinkStats link;           // transport counters summed over workers
  Duration modeled_campaign_time;  // max over worker modeled times
  Duration modeled_serial_time;    // sum over worker modeled times
  double modeled_speedup = 0.0;    // serial / campaign
  double wall_seconds = 0.0;       // host wall-clock of Run()
  double modeled_execs_per_sec = 0.0;

  // Persistence provenance (campaigns with persist.dir set).
  bool resumed = false;       // started from recovered durable state
  bool interrupted = false;   // stopped by external_stop before the budget
  persist::PersistStats persist_stats;

  std::string Summary() const;
};

class FuzzCampaign {
 public:
  // `soc` must outlive the campaign. It is shared by all workers —
  // SimulatorTarget::Create copies the design, so concurrent workers
  // only ever read it.
  FuzzCampaign(const rtl::Design& soc, vm::FirmwareImage image,
               FuzzCampaignOptions options);

  // Runs the whole campaign (spawns workers, joins them). One-shot.
  Result<CampaignReport> Run();

 private:
  Status RunWorker(unsigned worker);

  const rtl::Design& soc_;
  vm::FirmwareImage image_;
  FuzzCampaignOptions options_;
  SharedCorpus shared_;
  std::atomic<bool> stop_{false};
  // Live progress for the stats monitor (relaxed; display only).
  std::atomic<uint64_t> live_execs_{0};
  std::atomic<uint64_t> live_reprovisions_{0};
  std::atomic<unsigned> live_workers_{0};
  std::vector<WorkerResult> results_;   // slot per worker, disjoint writes
  std::vector<Status> worker_status_;   // slot per worker

  // Durable persistence (null when options_.persist.dir is empty).
  std::unique_ptr<persist::CampaignPersistence> persist_;
  std::vector<uint64_t> resume_done_;        // recovered credited execs
  std::vector<uint64_t> resume_rng_digest_;  // recovered RNG positions
};

// Fingerprint of everything that determines WHAT a fuzz campaign finds
// (seed, workers, batching, fuzzer config, firmware image). Deliberately
// excludes total_execs (extending the budget on resume is a feature),
// modeled-cost knobs and link fault profiles (they change
// timing/accounting, never findings). Open() refuses a directory whose
// fingerprint differs.
uint64_t FuzzCampaignFingerprint(const FuzzCampaignOptions& options,
                                 const vm::FirmwareImage& image);

// Reproduce a campaign finding WITHOUT the campaign: run a
// single-threaded Fuzzer with the finding's derived worker seed for
// execs_at_find executions and return the matching crash. Only valid
// for campaigns with share_corpus=false (the seed-replay guarantee);
// returns FailedPrecondition otherwise.
Result<fuzz::Crash> ReplayFinding(const rtl::Design& soc,
                                  const vm::FirmwareImage& image,
                                  const FuzzCampaignOptions& options,
                                  const CampaignFinding& finding);

}  // namespace hardsnap::campaign
