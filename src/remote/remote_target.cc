#include "remote/remote_target.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "snapshot/snapshot.h"

namespace hardsnap::remote {

RemoteTarget::RemoteTarget(net::FrameStream stream, HelloInfo hello,
                           RemoteTargetOptions options)
    : stream_(std::move(stream)),
      hello_(std::move(hello)),
      options_(std::move(options)),
      name_("remote-" + hello_.target_name),
      kind_(static_cast<bus::TargetKind>(hello_.target_kind)) {}

Result<std::unique_ptr<RemoteTarget>> RemoteTarget::Connect(
    const net::Address& addr, RemoteTargetOptions options) {
  Status last = Unavailable("no connect attempt made");
  int backoff = std::max(1, options.connect_backoff_ms);
  for (unsigned attempt = 0; attempt < options.connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, options.connect_backoff_cap_ms);
    }

    auto socket = net::Socket::Connect(addr, options.connect_timeout_ms);
    if (!socket.ok()) {
      last = socket.status();
      if (IsTransientFailure(last.code())) continue;
      return last;
    }
    net::FrameStream stream(std::move(socket).value());

    Request hello;
    hello.op = Op::kHello;
    hello.client_name = options.client_name;
    const Status sent =
        stream.Send(bus::Frame::kCommand, 1,
                    static_cast<uint32_t>(Op::kHello), EncodeRequest(hello));
    if (!sent.ok()) {
      last = sent;
      continue;
    }
    auto msg = stream.Recv(options.rpc_timeout_ms);
    if (!msg.ok()) {
      last = msg.status();
      if (IsTransientFailure(last.code())) continue;
      return last;
    }
    auto reply = DecodeReply(msg.value().payload);
    if (!reply.ok()) {
      last = reply.status();
      continue;
    }
    if (reply.value().code != StatusCode::kOk) {
      // A draining or full server refuses with kUnavailable — transient,
      // worth the backoff (the restart window). A version mismatch is
      // permanent and fails immediately.
      const Status refused{reply.value().code, reply.value().message};
      if (IsTransientFailure(refused.code())) {
        last = refused;
        continue;
      }
      return refused;
    }
    auto info = DecodeHelloInfo(reply.value().blob);
    if (!info.ok()) {
      last = info.status();
      continue;
    }
    if (info.value().state_format_version != snapshot::kStateFormatVersion)
      return FailedPrecondition(
          "server speaks state format " +
          std::to_string(info.value().state_format_version) + ", client " +
          std::to_string(snapshot::kStateFormatVersion));

    const uint32_t caps = info.value().capabilities;
    std::unique_ptr<RemoteTarget> target;
    if ((caps & kCapSlots) && (caps & kCapDeltaSnapshots))
      target.reset(new RemoteSlotTarget(std::move(stream),
                                        std::move(info).value(), options));
    else if (caps & kCapDeltaSnapshots)
      target.reset(new RemoteDeltaTarget(std::move(stream),
                                         std::move(info).value(), options));
    else
      target.reset(new RemoteTarget(std::move(stream),
                                    std::move(info).value(), options));
    target->irq_ = reply.value().irq_vector;
    return target;
  }
  return Unavailable("connect to " + addr.ToString() + " failed after " +
                     std::to_string(options.connect_attempts) +
                     " attempts; last error: " + last.ToString());
}

void RemoteTarget::MarkDead(const Status& why) {
  if (!alive_) return;
  alive_ = false;
  LogWarn("remote target '" + name_ + "' connection lost: " + why.ToString());
  stream_.socket().Close();
}

Result<Reply> RemoteTarget::Call(Request request) {
  if (!alive_)
    return Unavailable("remote target '" + name_ + "' connection lost");

  ++seq_;
  const Op op = request.op;
  const Status sent = stream_.Send(bus::Frame::kCommand, seq_,
                                   static_cast<uint32_t>(op),
                                   EncodeRequest(request));
  if (!sent.ok()) {
    MarkDead(sent);
    return sent;
  }
  auto msg = stream_.Recv(options_.rpc_timeout_ms);
  if (!msg.ok()) {
    MarkDead(msg.status());
    return msg.status();
  }
  if (msg.value().kind != bus::Frame::kReplyOk &&
      msg.value().kind != bus::Frame::kReplyErr) {
    const Status bad = DataLoss("expected a reply frame, got kind " +
                                std::to_string(msg.value().kind));
    MarkDead(bad);
    return bad;
  }
  if (msg.value().seq != seq_) {
    const Status bad = DataLoss(
        "reply out of sequence: expected " + std::to_string(seq_) + ", got " +
        std::to_string(msg.value().seq));
    MarkDead(bad);
    return bad;
  }
  auto reply = DecodeReply(msg.value().payload);
  if (!reply.ok()) {
    MarkDead(reply.status());
    return reply.status();
  }

  // Mirror the side-band state the reply piggybacks (header comment: the
  // target only moves in response to our ops, so this stays exact).
  irq_ = reply.value().irq_vector;
  const Duration elapsed =
      Duration::Picos(static_cast<int64_t>(reply.value().elapsed_ps));
  const Duration run =
      Duration::Picos(static_cast<int64_t>(reply.value().run_ps));
  clock_.Advance(elapsed);
  switch (op) {
    case Op::kBatch:
      stats_.run_time += run;
      stats_.io_time += elapsed - run;
      break;
    case Op::kSaveState:
    case Op::kRestoreState:
    case Op::kStateHash:
    case Op::kSaveDelta:
    case Op::kRestoreDelta:
    case Op::kSlotSave:
    case Op::kSlotRestore:
      stats_.snapshot_time += elapsed;
      break;
    default:
      stats_.io_time += elapsed;
      break;
  }
  ++counters_.rpcs;
  counters_.bytes_sent = stream_.bytes_sent();
  counters_.bytes_received = stream_.bytes_received();

  if (reply.value().code != StatusCode::kOk)
    return Status{reply.value().code, reply.value().message};
  return std::move(reply).value();
}

Result<std::vector<uint32_t>> RemoteTarget::FlushCollect() {
  if (pending_.empty()) return std::vector<uint32_t>{};
  Request request;
  request.op = Op::kBatch;
  request.ops = std::move(pending_);
  pending_.clear();
  counters_.ops_shipped += request.ops.size();
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  return std::move(reply).value().read_values;
}

Status RemoteTarget::Flush() { return FlushCollect().status(); }

Result<uint32_t> RemoteTarget::Read32(uint32_t addr) {
  if (!alive_)
    return Unavailable("remote target '" + name_ + "' connection lost");
  pending_.push_back(bus::MmioOp::Read(addr));
  ++stats_.mmio_reads;
  auto reads = FlushCollect();
  if (!reads.ok()) return reads.status();
  if (reads.value().empty())
    return DataLoss("batch reply carried no value for the read");
  return reads.value().back();
}

Status RemoteTarget::Write32(uint32_t addr, uint32_t value) {
  if (!alive_)
    return Unavailable("remote target '" + name_ + "' connection lost");
  pending_.push_back(bus::MmioOp::Write(addr, value));
  ++stats_.mmio_writes;
  if (!options_.coalesce_ops || pending_.size() >= options_.max_pending_ops)
    return Flush();
  return Status::Ok();
}

Status RemoteTarget::Run(uint64_t cycles) {
  if (!alive_)
    return Unavailable("remote target '" + name_ + "' connection lost");
  stats_.cycles_run += cycles;
  if (options_.coalesce_ops && !pending_.empty() &&
      pending_.back().kind == bus::MmioOp::kRun)
    pending_.back().value += cycles;
  else
    pending_.push_back(bus::MmioOp::Run(cycles));
  if (!options_.coalesce_ops) return Flush();
  return Status::Ok();
}

uint32_t RemoteTarget::IrqVector() {
  // The mirror goes stale only while ops sit unflushed; ship them so the
  // answer reflects every operation issued so far. A flush failure leaves
  // the last known vector — the error resurfaces on the next fallible op.
  if (alive_ && !pending_.empty()) (void)Flush();
  return irq_;
}

Status RemoteTarget::ResetHardware() {
  HS_RETURN_IF_ERROR(Flush());
  Request request;
  request.op = Op::kReset;
  return Call(std::move(request)).status();
}

Result<sim::HardwareState> RemoteTarget::SaveState() {
  HS_RETURN_IF_ERROR(Flush());
  Request request;
  request.op = Op::kSaveState;
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  ++stats_.snapshots_saved;
  stats_.snapshot_bytes_copied += reply.value().blob.size();
  return snapshot::DeserializeState(reply.value().blob);
}

Status RemoteTarget::RestoreState(const sim::HardwareState& state) {
  HS_RETURN_IF_ERROR(Flush());
  Request request;
  request.op = Op::kRestoreState;
  request.blob = snapshot::SerializeState(state);
  const size_t shipped = request.blob.size();
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  ++stats_.snapshots_restored;
  stats_.snapshot_bytes_copied += shipped;
  return Status::Ok();
}

Result<uint64_t> RemoteTarget::StateHash() {
  HS_RETURN_IF_ERROR(Flush());
  Request request;
  request.op = Op::kStateHash;
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  return reply.value().value64;
}

Result<std::vector<uint32_t>> RemoteTarget::ExecuteMmio(
    const std::vector<bus::MmioOp>& ops) {
  if (!alive_)
    return Unavailable("remote target '" + name_ + "' connection lost");
  // Ship anything already queued first so program order is preserved,
  // then the caller's batch as its own RPC (its reads map 1:1).
  HS_RETURN_IF_ERROR(Flush());
  for (const bus::MmioOp& op : ops) {
    switch (op.kind) {
      case bus::MmioOp::kRead: ++stats_.mmio_reads; break;
      case bus::MmioOp::kWrite: ++stats_.mmio_writes; break;
      case bus::MmioOp::kRun: stats_.cycles_run += op.value; break;
      default: break;
    }
  }
  Request request;
  request.op = Op::kBatch;
  request.ops = ops;
  counters_.ops_shipped += ops.size();
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  return std::move(reply).value().read_values;
}

Result<ServerStats> RemoteTarget::FetchServerStats() {
  HS_RETURN_IF_ERROR(Flush());
  Request request;
  request.op = Op::kStats;
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  return DecodeServerStats(reply.value().blob);
}

Result<sim::StateDelta> RemoteTarget::DoSaveDelta() {
  HS_RETURN_IF_ERROR(Flush());
  Request request;
  request.op = Op::kSaveDelta;
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  ++stats_.snapshots_saved;
  stats_.snapshot_bytes_copied += reply.value().blob.size();
  return snapshot::DeserializeStateDelta(reply.value().blob);
}

Status RemoteTarget::DoRestoreDelta(const sim::StateDelta& delta) {
  HS_RETURN_IF_ERROR(Flush());
  Request request;
  request.op = Op::kRestoreDelta;
  request.blob = snapshot::SerializeStateDelta(delta);
  const size_t shipped = request.blob.size();
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  ++stats_.snapshots_restored;
  stats_.snapshot_bytes_copied += shipped;
  return Status::Ok();
}

Status RemoteTarget::DoSlotSave(unsigned slot) {
  HS_RETURN_IF_ERROR(Flush());
  Request request;
  request.op = Op::kSlotSave;
  request.slot = slot;
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  ++stats_.snapshots_saved;
  return Status::Ok();
}

Status RemoteTarget::DoSlotRestore(unsigned slot) {
  HS_RETURN_IF_ERROR(Flush());
  Request request;
  request.op = Op::kSlotRestore;
  request.slot = slot;
  auto reply = Call(std::move(request));
  if (!reply.ok()) return reply.status();
  ++stats_.snapshots_restored;
  return Status::Ok();
}

}  // namespace hardsnap::remote
