// RemoteTarget: a bus::HardwareTarget whose hardware lives behind a
// hardsnapd server.
//
// The whole point of this client is to make a NETWORKED target usable by
// code written for in-process ones — the VM calls Run(1) per firmware
// instruction, and a naive one-RPC-per-call client would pay a socket
// round trip for each. Two mechanisms close the gap:
//
//   * Op coalescing (on by default): Write32 and Run enqueue locally and
//     return immediately; consecutive Runs merge into one op. The queue
//     flushes as a single kBatch RPC the moment something needs an
//     answer — a Read32 (whose value rides the same round trip), a
//     snapshot operation, or an explicit Flush(). Firmware that polls a
//     device register costs ~1 round trip per poll instead of one per
//     instruction. Semantics caveat: a device-level error from a
//     deferred Write/Run surfaces at the operation that triggered the
//     flush, not at the call that enqueued it (set coalesce_ops=false
//     for per-op attribution at per-op round-trip cost).
//   * Mirrored side-band state: every reply carries the target's irq
//     vector and the virtual time the operation advanced. The target's
//     state only moves in response to THIS client's operations (sessions
//     are isolated), so the local mirror is exact between RPCs and
//     IrqVector()/clock() never cost a round trip.
//
// Failure model: any transport-level failure (send, recv, CRC, deadline)
// marks the target dead — responsive() turns false and every subsequent
// operation fails fast with kUnavailable. That is precisely what the
// campaign layer's IsInfrastructureFailure fail-over path expects: the
// worker abandons its slice, Connect()s a fresh session (bounded
// retry/backoff rides out a server restart) and catches up by seed
// replay. There is no transparent mid-session reconnect — a new session
// means a fresh server-side target, so hiding the loss would silently
// reset hardware state under the caller.
//
// Capability mapping: Connect returns the subtype matching the hello's
// capability bits, so the dynamic_cast discovery used everywhere
// (DeltaSnapshotter, SlotSnapshotter, MmioBatcher) works unchanged
// across the wire.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bus/batch_support.h"
#include "bus/delta_support.h"
#include "bus/slot_support.h"
#include "bus/target.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "net/address.h"
#include "net/frame_stream.h"
#include "remote/protocol.h"
#include "sim/simulator.h"

namespace hardsnap::remote {

struct RemoteTargetOptions {
  std::string client_name = "hardsnap";

  int connect_timeout_ms = 2000;
  // Bounded retry/backoff around the whole connect+hello exchange, sized
  // to ride out a server restart (~attempts * backoff_cap of patience).
  unsigned connect_attempts = 20;
  int connect_backoff_ms = 50;     // doubles per attempt, capped below
  int connect_backoff_cap_ms = 500;

  // Deadline for one RPC round trip (applies per message segment).
  int rpc_timeout_ms = 30000;

  // Defer writes/runs and ship them with the next read (header comment).
  bool coalesce_ops = true;

  // Flush backstop so pathological write-only firmware cannot grow the
  // queue without bound.
  size_t max_pending_ops = 4096;
};

// Client-side transport counters (cumulative per connection).
struct ClientCounters {
  uint64_t rpcs = 0;
  uint64_t ops_shipped = 0;   // MmioOps carried in kBatch RPCs
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

class RemoteTarget : public bus::HardwareTarget, public bus::MmioBatcher {
 public:
  // Dials `addr`, performs the hello handshake and returns the subtype
  // matching the server target's capabilities. Retries transient connect
  // failures with bounded backoff; permanent rejections (version or
  // state-format mismatch) fail immediately.
  static Result<std::unique_ptr<RemoteTarget>> Connect(
      const net::Address& addr, RemoteTargetOptions options = {});

  bus::TargetKind kind() const override { return kind_; }
  const std::string& name() const override { return name_; }

  Result<uint32_t> Read32(uint32_t addr) override;
  Status Write32(uint32_t addr, uint32_t value) override;
  Status Run(uint64_t cycles) override;
  uint32_t IrqVector() override;
  Status ResetHardware() override;

  Result<sim::HardwareState> SaveState() override;
  Status RestoreState(const sim::HardwareState& state) override;
  Result<uint64_t> StateHash() override;

  bool responsive() const override { return alive_; }

  const VirtualClock& clock() const override { return clock_; }
  const bus::TargetStats& stats() const override { return stats_; }

  // bus::MmioBatcher: `ops` (after any pending coalesced ops) as one RPC.
  Result<std::vector<uint32_t>> ExecuteMmio(
      const std::vector<bus::MmioOp>& ops) override;

  // Ship any coalesced ops now. No-op on an empty queue.
  Status Flush();

  // The server's kStats RPC (flushes first).
  Result<ServerStats> FetchServerStats();

  const HelloInfo& hello() const { return hello_; }
  const ClientCounters& counters() const { return counters_; }
  const RemoteTargetOptions& options() const { return options_; }

 protected:
  RemoteTarget(net::FrameStream stream, HelloInfo hello,
               RemoteTargetOptions options);

  // RPC bodies for the capability subtypes.
  Result<sim::StateDelta> DoSaveDelta();
  Status DoRestoreDelta(const sim::StateDelta& delta);
  unsigned SlotCount() const { return hello_.num_slots; }
  Status DoSlotSave(unsigned slot);
  Status DoSlotRestore(unsigned slot);

 private:
  // One request/reply exchange. Transport failures mark the target dead;
  // a device-level error comes back as that operation's Status with the
  // connection intact.
  Result<Reply> Call(Request request);

  Result<std::vector<uint32_t>> FlushCollect();
  void MarkDead(const Status& why);

  net::FrameStream stream_;
  HelloInfo hello_;
  RemoteTargetOptions options_;
  std::string name_;
  bus::TargetKind kind_ = bus::TargetKind::kSimulator;

  bool alive_ = true;
  uint32_t seq_ = 0;
  uint32_t irq_ = 0;  // mirror: last reply's piggybacked vector
  std::vector<bus::MmioOp> pending_;

  VirtualClock clock_;  // mirror of the server target's clock
  bus::TargetStats stats_;
  ClientCounters counters_;
};

// Server target with incremental snapshots (hosted SimulatorTarget).
class RemoteDeltaTarget : public RemoteTarget, public bus::DeltaSnapshotter {
 public:
  Result<sim::StateDelta> SaveStateDelta() override { return DoSaveDelta(); }
  Status RestoreStateDelta(const sim::StateDelta& delta) override {
    return DoRestoreDelta(delta);
  }

 protected:
  using RemoteTarget::RemoteTarget;
  friend class RemoteTarget;
};

// Server target with delta snapshots AND device slots (hosted FpgaTarget).
class RemoteSlotTarget final : public RemoteDeltaTarget,
                               public bus::SlotSnapshotter {
 public:
  unsigned NumSlots() const override { return SlotCount(); }
  Status SaveLiveToSlot(unsigned slot) override { return DoSlotSave(slot); }
  Status RestoreLiveFromSlot(unsigned slot) override {
    return DoSlotRestore(slot);
  }

 private:
  using RemoteDeltaTarget::RemoteDeltaTarget;
  friend class RemoteTarget;
};

}  // namespace hardsnap::remote
