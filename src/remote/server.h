// TargetServer: the hardsnapd daemon core.
//
// Hosts hardware targets behind a listening socket. Every accepted
// connection becomes a SESSION: a dedicated thread owning a dedicated
// target instance built by the configured factory — per-session isolation,
// so one client's firmware run can never perturb another's hardware state
// and a client that dies mid-run costs nothing but its own target.
//
// Request handling is strictly sequential per session (one target, one
// thread), but clients may PIPELINE: the session reads the next request
// only after replying to the previous one, so requests queue in the
// kernel socket buffer and a client never has to stall between send and
// send. Replies echo the request's sequence number for matching.
//
// Robustness contract (serde_robustness tests): a malformed, truncated or
// forged-length frame closes THAT session with a logged error — the
// server itself and every other session keep running, and nothing is
// allocated for a forged length.
//
// Lifecycle: Drain() makes the server refuse new sessions (refusals get a
// well-formed kUnavailable error reply, which clients map to the
// campaign fail-over path) and tells every session to close once its
// in-flight request has been served. Stop() drains and joins everything.
// hardsnapd wires SIGINT/SIGTERM to exactly this sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bus/target.h"
#include "common/status.h"
#include "net/frame_stream.h"
#include "net/socket.h"
#include "remote/protocol.h"

namespace hardsnap::remote {

// Builds one fresh target per session. Called on the session thread.
using TargetFactory =
    std::function<Result<std::unique_ptr<bus::HardwareTarget>>()>;

struct TargetServerOptions {
  // Maximum concurrently live sessions (the daemon's configured target
  // count); further connections are refused like a draining server.
  unsigned max_sessions = 8;

  // snapshot::StateShapeDigest of the hosted design, advertised in the
  // hello so clients can reject a daemon serving a different SoC.
  uint64_t shape_digest = 0;

  // How often blocked waits re-check the stop/drain flags.
  int accept_poll_ms = 100;
  int idle_poll_ms = 200;

  // Deadline for the remainder of a message once its header arrived.
  int io_timeout_ms = 30000;

  std::string name = "hardsnapd";
};

class TargetServer {
 public:
  // Binds `listen` and starts the accept loop. The bound address (with
  // the kernel-resolved port for TCP port 0) is available via bound().
  static Result<std::unique_ptr<TargetServer>> Start(
      const net::Address& listen, TargetFactory factory,
      TargetServerOptions options = {});

  ~TargetServer();  // Stop()

  const net::Address& bound() const { return bound_; }

  // Refuse new sessions; let each session finish its in-flight request,
  // then close it. Returns immediately.
  void Drain();

  // Drain, close the listener and join every thread. Idempotent.
  void Stop();

  bool draining() const { return draining_.load(); }
  unsigned active_sessions() const { return active_sessions_.load(); }
  ServerStats stats() const;

 private:
  TargetServer(net::Listener listener, TargetFactory factory,
               TargetServerOptions options);

  void AcceptLoop();
  void RunSession(net::Socket socket, uint64_t session_id);
  // Serves one decoded request. Fills `reply`; returns false when the
  // session must end (protocol violation already logged).
  void Serve(bus::HardwareTarget* target, const Request& request,
             Reply* reply);
  void Refuse(net::Socket socket, const std::string& why);

  net::Listener listener_;
  net::Address bound_;
  TargetFactory factory_;
  TargetServerOptions options_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<unsigned> active_sessions_{0};

  mutable std::mutex mu_;  // guards sessions_, stats_, stopped_
  std::vector<std::thread> sessions_;
  ServerStats stats_;
  bool stopped_ = false;
  uint64_t next_session_id_ = 1;

  std::thread accept_thread_;
};

}  // namespace hardsnap::remote
