// hardsnapd RPC protocol: request/reply payloads carried inside the
// net::FrameStream message framing.
//
// A request is one framed message: kind = bus::Frame::kCommand, the
// opcode in the frame's addr field, and the op-specific payload encoded
// here. Every request produces exactly one reply frame (kReplyOk or
// kReplyErr) echoing the request's sequence number, so clients may
// pipeline requests and match replies by seq.
//
// Every reply — including errors — carries the target's current irq
// vector and the virtual time that elapsed on the target during the
// operation. The client mirrors both locally, which is what lets it
// answer IrqVector()/clock() without a round trip: target state only
// advances in response to client operations, so the mirror is exact
// between RPCs.
//
// Decoding is defensive (the serde_robustness tests fuzz it): every
// declared length is validated against the bytes actually present before
// anything is allocated, unknown enum values are rejected, and trailing
// bytes fail the decode. A malformed request must never crash the server
// or oversize an allocation — the session is closed with a logged error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bus/batch_support.h"
#include "common/status.h"

namespace hardsnap::remote {

// "HSRP" — rejected hellos fail loudly when something that is not a
// hardsnapd client dials the port.
inline constexpr uint32_t kProtocolMagic = 0x48535250;
inline constexpr uint8_t kProtocolVersion = 1;

enum class Op : uint32_t {
  kHello = 1,         // handshake; reply blob = HelloInfo
  kBatch = 2,         // vector of MmioOps; reply carries read values
  kReset = 3,         // ResetHardware
  kSaveState = 4,     // reply blob = HSSS state
  kRestoreState = 5,  // request blob = HSSS state
  kStateHash = 6,     // reply value64 = content hash
  kSaveDelta = 7,     // reply blob = HSSD delta
  kRestoreDelta = 8,  // request blob = HSSD delta
  kSlotSave = 9,      // SaveLiveToSlot(slot)
  kSlotRestore = 10,  // RestoreLiveFromSlot(slot)
  kStats = 11,        // reply blob = ServerStats
};

const char* OpName(Op op);

// HelloInfo::capabilities bits — which optional bus interfaces the
// session's target implements (discovered server-side via dynamic_cast,
// re-materialized client-side as the RemoteTarget subtype).
inline constexpr uint32_t kCapDeltaSnapshots = 1u << 0;
inline constexpr uint32_t kCapSlots = 1u << 1;

struct Request {
  Op op = Op::kHello;
  uint32_t magic = kProtocolMagic;   // kHello
  uint8_t version = kProtocolVersion;  // kHello
  std::string client_name;           // kHello
  std::vector<bus::MmioOp> ops;      // kBatch
  uint32_t slot = 0;                 // kSlotSave / kSlotRestore
  std::vector<uint8_t> blob;         // kRestoreState / kRestoreDelta
};

std::vector<uint8_t> EncodeRequest(const Request& req);
Result<Request> DecodeRequest(Op op, const std::vector<uint8_t>& payload);

// What a session's target looks like, sent in the hello reply blob.
struct HelloInfo {
  std::string target_name;
  uint8_t target_kind = 0;       // bus::TargetKind
  uint32_t capabilities = 0;     // kCap* bits
  uint32_t num_slots = 0;        // 0 unless kCapSlots
  uint8_t state_format_version = 0;  // snapshot::kStateFormatVersion
  uint64_t shape_digest = 0;     // snapshot::StateShapeDigest of the design
};

std::vector<uint8_t> EncodeHelloInfo(const HelloInfo& info);
Result<HelloInfo> DecodeHelloInfo(const std::vector<uint8_t>& payload);

struct Reply {
  // Device-level status of the operation. Transport-level failures never
  // appear here — they surface as socket/framing errors.
  StatusCode code = StatusCode::kOk;
  std::string message;

  uint32_t irq_vector = 0;  // target irq wires after the operation
  uint64_t elapsed_ps = 0;  // virtual time the operation advanced
  uint64_t run_ps = 0;      // portion of elapsed_ps charged by Run ops

  uint64_t value64 = 0;               // kStateHash
  std::vector<uint32_t> read_values;  // kBatch
  std::vector<uint8_t> blob;          // kSaveState / kSaveDelta / kStats
};

std::vector<uint8_t> EncodeReply(const Reply& reply);
Result<Reply> DecodeReply(const std::vector<uint8_t>& payload);

// Per-server counters, served by the kStats RPC.
struct ServerStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_refused = 0;   // refused while draining
  uint64_t sessions_closed = 0;
  uint64_t protocol_errors = 0;    // malformed frames / requests
  uint64_t rpcs = 0;
  uint64_t batched_ops = 0;        // MmioOps carried inside kBatch RPCs
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t rpc_wall_micros = 0;    // summed serve latency (host wall time)
};

std::vector<uint8_t> EncodeServerStats(const ServerStats& stats);
Result<ServerStats> DecodeServerStats(const std::vector<uint8_t>& payload);

}  // namespace hardsnap::remote
