#include "remote/server.h"

#include <chrono>
#include <utility>

#include "bus/delta_support.h"
#include "bus/slot_support.h"
#include "common/logging.h"
#include "snapshot/snapshot.h"

namespace hardsnap::remote {

namespace {

void SetStatus(Reply* reply, const Status& status) {
  reply->code = status.code();
  reply->message = status.message();
}

uint64_t WallMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TargetServer::TargetServer(net::Listener listener, TargetFactory factory,
                           TargetServerOptions options)
    : listener_(std::move(listener)),
      bound_(listener_.bound()),
      factory_(std::move(factory)),
      options_(std::move(options)) {}

Result<std::unique_ptr<TargetServer>> TargetServer::Start(
    const net::Address& listen, TargetFactory factory,
    TargetServerOptions options) {
  if (!factory) return InvalidArgument("target server needs a factory");
  auto listener = net::Listener::Bind(listen);
  if (!listener.ok()) return listener.status();
  std::unique_ptr<TargetServer> server(new TargetServer(
      std::move(listener).value(), std::move(factory), std::move(options)));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  LogInfo(server->options_.name + ": serving on " +
          server->bound_.ToString());
  return server;
}

TargetServer::~TargetServer() { Stop(); }

void TargetServer::Drain() {
  if (!draining_.exchange(true))
    LogInfo(options_.name + ": draining — refusing new sessions");
}

void TargetServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  Drain();
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
  }
  for (std::thread& t : sessions)
    if (t.joinable()) t.join();
  LogInfo(options_.name + ": stopped");
}

ServerStats TargetServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TargetServer::Refuse(net::Socket socket, const std::string& why) {
  Reply reply;
  SetStatus(&reply, Unavailable(why));
  net::FrameStream stream(std::move(socket));
  // Best-effort: the client maps either this reply or a bare close to
  // kUnavailable and takes the fail-over path.
  (void)stream.Send(bus::Frame::kReplyErr, 0,
                    static_cast<uint32_t>(Op::kHello), EncodeReply(reply));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sessions_refused;
}

void TargetServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto socket = listener_.Accept(options_.accept_poll_ms);
    if (!socket.ok()) {
      if (socket.status().code() == StatusCode::kDeadlineExceeded) continue;
      if (stopping_.load()) break;
      LogWarn(options_.name + ": accept failed: " +
              socket.status().ToString());
      if (socket.status().code() == StatusCode::kUnavailable) break;
      continue;
    }
    if (draining_.load()) {
      Refuse(std::move(socket).value(), "server draining");
      continue;
    }
    if (active_sessions_.load() >= options_.max_sessions) {
      Refuse(std::move(socket).value(),
             "server full (" + std::to_string(options_.max_sessions) +
                 " sessions)");
      continue;
    }
    active_sessions_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t id = next_session_id_++;
    ++stats_.sessions_accepted;
    sessions_.emplace_back(
        [this, id, sock = std::make_shared<net::Socket>(
                       std::move(socket).value())]() mutable {
          RunSession(std::move(*sock), id);
        });
  }
}

void TargetServer::RunSession(net::Socket socket, uint64_t session_id) {
  const std::string tag =
      options_.name + " session " + std::to_string(session_id);
  net::FrameStream stream(std::move(socket));

  auto target_or = factory_();
  if (!target_or.ok()) {
    LogError(tag + ": target creation failed: " +
             target_or.status().ToString());
    Reply reply;
    SetStatus(&reply, target_or.status());
    (void)stream.Send(bus::Frame::kReplyErr, 0,
                      static_cast<uint32_t>(Op::kHello), EncodeReply(reply));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_closed;
    active_sessions_.fetch_sub(1);
    return;
  }
  std::unique_ptr<bus::HardwareTarget> target = std::move(target_or).value();
  LogInfo(tag + ": open (target " + target->name() + ")");

  std::string close_reason = "drained";
  uint64_t prev_sent = 0, prev_received = 0;
  while (!draining_.load()) {
    auto msg = stream.Recv(options_.idle_poll_ms, options_.io_timeout_ms);
    if (!msg.ok()) {
      const StatusCode code = msg.status().code();
      if (code == StatusCode::kDeadlineExceeded) continue;  // idle poll
      if (code == StatusCode::kUnavailable) {
        close_reason = "peer closed";
      } else {
        // Malformed traffic (bad CRC, forged length, stalled stream):
        // log it and end THIS session only.
        close_reason = "protocol error: " + msg.status().ToString();
        LogError(tag + ": " + close_reason);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.protocol_errors;
      }
      break;
    }
    if (msg.value().kind != bus::Frame::kCommand) {
      close_reason = "protocol error: unexpected frame kind " +
                     std::to_string(msg.value().kind);
      LogError(tag + ": " + close_reason);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
      break;
    }

    const uint64_t serve_start = WallMicros();
    const Op op = static_cast<Op>(msg.value().op);
    Reply reply;
    uint64_t batched = 0;
    auto request = DecodeRequest(op, msg.value().payload);
    if (!request.ok()) {
      close_reason = "malformed " + std::string(OpName(op)) +
                     " request: " + request.status().ToString();
      LogError(tag + ": " + close_reason);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
      break;
    }
    batched = request.value().ops.size();
    Serve(target.get(), request.value(), &reply);

    const uint8_t kind = reply.code == StatusCode::kOk
                             ? bus::Frame::kReplyOk
                             : bus::Frame::kReplyErr;
    const Status sent =
        stream.Send(kind, msg.value().seq, msg.value().op,
                    EncodeReply(reply));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rpcs;
      stats_.batched_ops += batched;
      stats_.rpc_wall_micros += WallMicros() - serve_start;
      stats_.bytes_received += stream.bytes_received() - prev_received;
      stats_.bytes_sent += stream.bytes_sent() - prev_sent;
      prev_received = stream.bytes_received();
      prev_sent = stream.bytes_sent();
    }
    if (!sent.ok()) {
      close_reason = "send failed: " + sent.ToString();
      break;
    }
  }

  LogInfo(tag + ": closed (" + close_reason + ")");
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sessions_closed;
  active_sessions_.fetch_sub(1);
}

void TargetServer::Serve(bus::HardwareTarget* target, const Request& request,
                         Reply* reply) {
  const Duration clock_before = target->clock().now();
  const Duration run_before = target->stats().run_time;

  switch (request.op) {
    case Op::kHello: {
      if (request.version != kProtocolVersion) {
        SetStatus(reply,
                  FailedPrecondition(
                      "protocol version mismatch: client " +
                      std::to_string(request.version) + ", server " +
                      std::to_string(kProtocolVersion)));
        break;
      }
      HelloInfo info;
      info.target_name = target->name();
      info.target_kind = static_cast<uint8_t>(target->kind());
      if (dynamic_cast<bus::DeltaSnapshotter*>(target))
        info.capabilities |= kCapDeltaSnapshots;
      if (auto* slots = dynamic_cast<bus::SlotSnapshotter*>(target)) {
        info.capabilities |= kCapSlots;
        info.num_slots = slots->NumSlots();
      }
      info.state_format_version = snapshot::kStateFormatVersion;
      info.shape_digest = options_.shape_digest;
      reply->blob = EncodeHelloInfo(info);
      break;
    }
    case Op::kBatch: {
      auto reads = bus::ExecuteMmioOps(target, request.ops);
      if (!reads.ok())
        SetStatus(reply, reads.status());
      else
        reply->read_values = std::move(reads).value();
      break;
    }
    case Op::kReset:
      SetStatus(reply, target->ResetHardware());
      break;
    case Op::kSaveState: {
      auto state = target->SaveState();
      if (!state.ok())
        SetStatus(reply, state.status());
      else
        reply->blob = snapshot::SerializeState(state.value());
      break;
    }
    case Op::kRestoreState: {
      auto state = snapshot::DeserializeState(request.blob);
      if (!state.ok())
        SetStatus(reply, state.status());
      else
        SetStatus(reply, target->RestoreState(state.value()));
      break;
    }
    case Op::kStateHash: {
      auto hash = target->StateHash();
      if (!hash.ok())
        SetStatus(reply, hash.status());
      else
        reply->value64 = hash.value();
      break;
    }
    case Op::kSaveDelta: {
      auto* delta = dynamic_cast<bus::DeltaSnapshotter*>(target);
      if (!delta) {
        SetStatus(reply, Unimplemented("target has no delta snapshots"));
        break;
      }
      auto d = delta->SaveStateDelta();
      if (!d.ok())
        SetStatus(reply, d.status());
      else
        reply->blob = snapshot::SerializeStateDelta(d.value());
      break;
    }
    case Op::kRestoreDelta: {
      auto* delta = dynamic_cast<bus::DeltaSnapshotter*>(target);
      if (!delta) {
        SetStatus(reply, Unimplemented("target has no delta snapshots"));
        break;
      }
      auto d = snapshot::DeserializeStateDelta(request.blob);
      if (!d.ok())
        SetStatus(reply, d.status());
      else
        SetStatus(reply, delta->RestoreStateDelta(d.value()));
      break;
    }
    case Op::kSlotSave:
    case Op::kSlotRestore: {
      auto* slots = dynamic_cast<bus::SlotSnapshotter*>(target);
      if (!slots) {
        SetStatus(reply, Unimplemented("target has no snapshot slots"));
        break;
      }
      SetStatus(reply, request.op == Op::kSlotSave
                           ? slots->SaveLiveToSlot(request.slot)
                           : slots->RestoreLiveFromSlot(request.slot));
      break;
    }
    case Op::kStats:
      reply->blob = EncodeServerStats(stats());
      break;
    default:
      SetStatus(reply, Unimplemented("unknown opcode"));
      break;
  }

  reply->elapsed_ps =
      static_cast<uint64_t>((target->clock().now() - clock_before).picos());
  reply->run_ps = static_cast<uint64_t>(
      (target->stats().run_time - run_before).picos());
  reply->irq_vector = target->IrqVector();
}

}  // namespace hardsnap::remote
