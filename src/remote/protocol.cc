#include "remote/protocol.h"

#include "common/serde.h"

namespace hardsnap::remote {

namespace {

// Bytes one MmioOp occupies on the wire: kind(1) + addr(4) + value(8).
constexpr size_t kMmioOpWireBytes = 13;

// Highest StatusCode value the wire may carry (common/status.h).
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kDataLoss);

Status WantAtEnd(const ByteReader& reader, const char* what) {
  if (!reader.AtEnd())
    return InvalidArgument(std::string(what) + ": " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes");
  return Status::Ok();
}

// Length-prefixed raw byte blob. The declared length is validated against
// the bytes present BEFORE the vector is sized — a forged length must
// fail as malformed, not as a giant allocation.
void PutBlob(ByteWriter* w, const std::vector<uint8_t>& blob) {
  w->PutU32(static_cast<uint32_t>(blob.size()));
  w->PutBytes(blob.data(), blob.size());
}

Result<std::vector<uint8_t>> GetBlob(ByteReader* r, const char* what) {
  auto n = r->GetU32();
  if (!n.ok()) return n.status();
  if (r->remaining() < n.value())
    return InvalidArgument(std::string(what) + " blob declares " +
                           std::to_string(n.value()) + " bytes, " +
                           std::to_string(r->remaining()) + " present");
  std::vector<uint8_t> blob(n.value());
  HS_RETURN_IF_ERROR(r->GetBytes(blob.data(), blob.size()));
  return blob;
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kHello: return "hello";
    case Op::kBatch: return "batch";
    case Op::kReset: return "reset";
    case Op::kSaveState: return "save-state";
    case Op::kRestoreState: return "restore-state";
    case Op::kStateHash: return "state-hash";
    case Op::kSaveDelta: return "save-delta";
    case Op::kRestoreDelta: return "restore-delta";
    case Op::kSlotSave: return "slot-save";
    case Op::kSlotRestore: return "slot-restore";
    case Op::kStats: return "stats";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeRequest(const Request& req) {
  ByteWriter w;
  switch (req.op) {
    case Op::kHello:
      w.PutU32(req.magic);
      w.PutU8(req.version);
      w.PutString(req.client_name);
      break;
    case Op::kBatch:
      w.PutU32(static_cast<uint32_t>(req.ops.size()));
      for (const bus::MmioOp& op : req.ops) {
        w.PutU8(op.kind);
        w.PutU32(op.addr);
        w.PutU64(op.value);
      }
      break;
    case Op::kSlotSave:
    case Op::kSlotRestore:
      w.PutU32(req.slot);
      break;
    case Op::kRestoreState:
    case Op::kRestoreDelta:
      PutBlob(&w, req.blob);
      break;
    case Op::kReset:
    case Op::kSaveState:
    case Op::kStateHash:
    case Op::kSaveDelta:
    case Op::kStats:
      break;  // no payload
  }
  return w.Take();
}

Result<Request> DecodeRequest(Op op, const std::vector<uint8_t>& payload) {
  Request req;
  req.op = op;
  ByteReader r(payload);
  switch (op) {
    case Op::kHello: {
      HS_ASSIGN_OR_RETURN(req.magic, r.GetU32());
      HS_ASSIGN_OR_RETURN(req.version, r.GetU8());
      HS_ASSIGN_OR_RETURN(req.client_name, r.GetString());
      if (req.magic != kProtocolMagic)
        return InvalidArgument("bad hello magic");
      break;
    }
    case Op::kBatch: {
      auto count = r.GetU32();
      if (!count.ok()) return count.status();
      if (r.remaining() < size_t{count.value()} * kMmioOpWireBytes)
        return InvalidArgument(
            "batch declares " + std::to_string(count.value()) + " ops, " +
            std::to_string(r.remaining()) + " bytes present");
      req.ops.reserve(count.value());
      for (uint32_t i = 0; i < count.value(); ++i) {
        bus::MmioOp op_i;
        HS_ASSIGN_OR_RETURN(op_i.kind, r.GetU8());
        HS_ASSIGN_OR_RETURN(op_i.addr, r.GetU32());
        HS_ASSIGN_OR_RETURN(op_i.value, r.GetU64());
        if (op_i.kind < bus::MmioOp::kRead || op_i.kind > bus::MmioOp::kRun)
          return InvalidArgument("bad MmioOp kind " +
                                 std::to_string(op_i.kind));
        req.ops.push_back(op_i);
      }
      break;
    }
    case Op::kSlotSave:
    case Op::kSlotRestore: {
      HS_ASSIGN_OR_RETURN(req.slot, r.GetU32());
      break;
    }
    case Op::kRestoreState:
    case Op::kRestoreDelta: {
      HS_ASSIGN_OR_RETURN(req.blob, GetBlob(&r, OpName(op)));
      break;
    }
    case Op::kReset:
    case Op::kSaveState:
    case Op::kStateHash:
    case Op::kSaveDelta:
    case Op::kStats:
      break;
    default:
      return InvalidArgument("unknown request opcode " +
                             std::to_string(static_cast<uint32_t>(op)));
  }
  HS_RETURN_IF_ERROR(WantAtEnd(r, OpName(op)));
  return req;
}

std::vector<uint8_t> EncodeHelloInfo(const HelloInfo& info) {
  ByteWriter w;
  w.PutString(info.target_name);
  w.PutU8(info.target_kind);
  w.PutU32(info.capabilities);
  w.PutU32(info.num_slots);
  w.PutU8(info.state_format_version);
  w.PutU64(info.shape_digest);
  return w.Take();
}

Result<HelloInfo> DecodeHelloInfo(const std::vector<uint8_t>& payload) {
  HelloInfo info;
  ByteReader r(payload);
  HS_ASSIGN_OR_RETURN(info.target_name, r.GetString());
  HS_ASSIGN_OR_RETURN(info.target_kind, r.GetU8());
  HS_ASSIGN_OR_RETURN(info.capabilities, r.GetU32());
  HS_ASSIGN_OR_RETURN(info.num_slots, r.GetU32());
  HS_ASSIGN_OR_RETURN(info.state_format_version, r.GetU8());
  HS_ASSIGN_OR_RETURN(info.shape_digest, r.GetU64());
  HS_RETURN_IF_ERROR(WantAtEnd(r, "hello-info"));
  return info;
}

std::vector<uint8_t> EncodeReply(const Reply& reply) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(reply.code));
  w.PutString(reply.message);
  w.PutU32(reply.irq_vector);
  w.PutU64(reply.elapsed_ps);
  w.PutU64(reply.run_ps);
  w.PutU64(reply.value64);
  w.PutU32(static_cast<uint32_t>(reply.read_values.size()));
  for (uint32_t v : reply.read_values) w.PutU32(v);
  PutBlob(&w, reply.blob);
  return w.Take();
}

Result<Reply> DecodeReply(const std::vector<uint8_t>& payload) {
  Reply reply;
  ByteReader r(payload);
  auto code = r.GetU8();
  if (!code.ok()) return code.status();
  if (code.value() > kMaxStatusCode)
    return InvalidArgument("bad status code " + std::to_string(code.value()));
  reply.code = static_cast<StatusCode>(code.value());
  HS_ASSIGN_OR_RETURN(reply.message, r.GetString());
  HS_ASSIGN_OR_RETURN(reply.irq_vector, r.GetU32());
  HS_ASSIGN_OR_RETURN(reply.elapsed_ps, r.GetU64());
  HS_ASSIGN_OR_RETURN(reply.run_ps, r.GetU64());
  HS_ASSIGN_OR_RETURN(reply.value64, r.GetU64());
  auto count = r.GetU32();
  if (!count.ok()) return count.status();
  if (r.remaining() < size_t{count.value()} * 4)
    return InvalidArgument("reply declares " + std::to_string(count.value()) +
                           " read values, " + std::to_string(r.remaining()) +
                           " bytes present");
  reply.read_values.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto v = r.GetU32();
    if (!v.ok()) return v.status();
    reply.read_values.push_back(v.value());
  }
  HS_ASSIGN_OR_RETURN(reply.blob, GetBlob(&r, "reply"));
  HS_RETURN_IF_ERROR(WantAtEnd(r, "reply"));
  return reply;
}

std::vector<uint8_t> EncodeServerStats(const ServerStats& stats) {
  ByteWriter w;
  w.PutU64(stats.sessions_accepted);
  w.PutU64(stats.sessions_refused);
  w.PutU64(stats.sessions_closed);
  w.PutU64(stats.protocol_errors);
  w.PutU64(stats.rpcs);
  w.PutU64(stats.batched_ops);
  w.PutU64(stats.bytes_received);
  w.PutU64(stats.bytes_sent);
  w.PutU64(stats.rpc_wall_micros);
  return w.Take();
}

Result<ServerStats> DecodeServerStats(const std::vector<uint8_t>& payload) {
  ServerStats stats;
  ByteReader r(payload);
  HS_ASSIGN_OR_RETURN(stats.sessions_accepted, r.GetU64());
  HS_ASSIGN_OR_RETURN(stats.sessions_refused, r.GetU64());
  HS_ASSIGN_OR_RETURN(stats.sessions_closed, r.GetU64());
  HS_ASSIGN_OR_RETURN(stats.protocol_errors, r.GetU64());
  HS_ASSIGN_OR_RETURN(stats.rpcs, r.GetU64());
  HS_ASSIGN_OR_RETURN(stats.batched_ops, r.GetU64());
  HS_ASSIGN_OR_RETURN(stats.bytes_received, r.GetU64());
  HS_ASSIGN_OR_RETURN(stats.bytes_sent, r.GetU64());
  HS_ASSIGN_OR_RETURN(stats.rpc_wall_micros, r.GetU64());
  HS_RETURN_IF_ERROR(WantAtEnd(r, "server-stats"));
  return stats;
}

}  // namespace hardsnap::remote
