// Message framing over a byte stream, reusing the 17-byte CRC32 frame
// from bus/link.h as the header.
//
// One message on the wire:
//
//   bus::Frame header (17 bytes, own CRC32):
//     kind  = kCommand (request) | kReplyOk | kReplyErr
//     seq   = request sequence number (echoed by the reply)
//     addr  = opcode (remote::Op) or, for kReplyErr, the opcode echoed
//     value = payload length in bytes
//   payload[value]                      (absent when value == 0)
//   payload CRC32 (4 bytes, little-endian; absent when value == 0)
//
// Decoding is defensive in the HSSS/HSSD spirit: a short read, a header
// whose CRC fails, a payload length beyond max_payload (forged-length
// guard: nothing is allocated for it), or a payload CRC mismatch all
// surface as errors — the server closes the offending session, the
// client treats the link as gone. kDataLoss marks integrity rejections,
// kUnavailable a peer that went away, kDeadlineExceeded a deadline.
#pragma once

#include <cstdint>
#include <vector>

#include "bus/link.h"
#include "common/status.h"
#include "net/socket.h"

namespace hardsnap::net {

// Hard ceiling on a declared payload length. Generously above the largest
// legitimate blob (a serialized SoC state is a few hundred KB) while
// keeping a forged 32-bit length from triggering a 4 GB allocation.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

struct Message {
  uint8_t kind = 0;     // bus::Frame::Kind
  uint32_t seq = 0;
  uint32_t op = 0;      // remote::Op (or echoed opcode on error replies)
  std::vector<uint8_t> payload;
};

class FrameStream {
 public:
  explicit FrameStream(Socket socket) : socket_(std::move(socket)) {}
  FrameStream() = default;

  Status Send(uint8_t kind, uint32_t seq, uint32_t op,
              const std::vector<uint8_t>& payload);

  // Receives one whole message within `timeout_ms` (< 0 = no deadline).
  Result<Message> Recv(int timeout_ms) { return Recv(timeout_ms, timeout_ms); }

  // Server form: wait up to `header_timeout_ms` for a message to START
  // (kDeadlineExceeded when the peer is simply idle — the accept/serve
  // loops use this to poll their stop flags), then up to `body_timeout_ms`
  // for each remaining segment. A deadline that strikes after part of the
  // header already arrived is NOT idleness — the stream is desynchronized
  // and the error says so (kDataLoss).
  Result<Message> Recv(int header_timeout_ms, int body_timeout_ms);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  Socket& socket() { return socket_; }
  bool valid() const { return socket_.valid(); }

 private:
  Socket socket_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace hardsnap::net
