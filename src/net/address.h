// Transport endpoint addressing for the remote-target subsystem.
//
// Two families, one textual form:
//   "unix:/run/hardsnapd.sock"   Unix-domain stream socket (loopback
//                                multi-process campaigns, CI soaks)
//   "tcp:host:port"              TCP (many machines sharing a target pool)
//   "host:port"                  shorthand for tcp:
//
// A TCP port of 0 asks the kernel for an ephemeral port; Listener::Bind
// reports the resolved port back so tests and benches can serve on
// "127.0.0.1:0" without racing for port numbers.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace hardsnap::net {

struct Address {
  enum class Family { kTcp, kUnix };

  Family family = Family::kTcp;
  std::string host;     // kTcp
  uint16_t port = 0;    // kTcp
  std::string path;     // kUnix

  static Result<Address> Parse(const std::string& spec);
  std::string ToString() const;
};

}  // namespace hardsnap::net
