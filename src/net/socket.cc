#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>

namespace hardsnap::net {

namespace {

Status Errno(const std::string& what) {
  const int e = errno;
  const std::string msg = what + ": " + std::strerror(e);
  switch (e) {
    case ECONNREFUSED:
    case ECONNRESET:
    case EPIPE:
    case ENOTCONN:
    case ENOENT:  // unix path not there (server not up yet)
      return Unavailable(msg);
    case ETIMEDOUT:
      return DeadlineExceeded(msg);
    default:
      return Internal(msg);
  }
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Waits for `events` on `fd` within the remaining budget. Returns 1 when
// ready, 0 on timeout, -1 on error (errno set).
int PollFor(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r >= 0) return r;
    if (errno != EINTR) return -1;
  }
}

Status FillSockaddr(const Address& addr, struct sockaddr_storage* ss,
                    socklen_t* len) {
  std::memset(ss, 0, sizeof(*ss));
  if (addr.family == Address::Family::kUnix) {
    auto* un = reinterpret_cast<struct sockaddr_un*>(ss);
    un->sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(un->sun_path))
      return InvalidArgument("unix socket path too long: " + addr.path);
    std::memcpy(un->sun_path, addr.path.c_str(), addr.path.size() + 1);
    *len = static_cast<socklen_t>(sizeof(*un));
    return Status::Ok();
  }
  auto* in4 = reinterpret_cast<struct sockaddr_in*>(ss);
  in4->sin_family = AF_INET;
  in4->sin_port = htons(addr.port);
  const std::string host = addr.host == "localhost" ? "127.0.0.1" : addr.host;
  if (::inet_pton(AF_INET, host.c_str(), &in4->sin_addr) != 1) {
    // Fall back to resolver for names. IPv4 only — the analysis hosts and
    // device servers this links live on lab networks.
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof hints);
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || !res)
      return Unavailable("cannot resolve host '" + addr.host + "'");
    in4->sin_addr =
        reinterpret_cast<struct sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  *len = static_cast<socklen_t>(sizeof(*in4));
  return Status::Ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const Address& addr, int timeout_ms) {
  struct sockaddr_storage ss;
  socklen_t len = 0;
  HS_RETURN_IF_ERROR(FillSockaddr(addr, &ss, &len));
  const int domain =
      addr.family == Address::Family::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);

  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&ss), len);
  if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN)
    return Errno("connect " + addr.ToString());
  if (rc != 0) {
    const int ready = PollFor(fd, POLLOUT, timeout_ms);
    if (ready < 0) return Errno("connect poll");
    if (ready == 0)
      return DeadlineExceeded("connect to " + addr.ToString() + " timed out");

    int err = 0;
    socklen_t errlen = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
    if (err != 0) {
      errno = err;
      return Errno("connect " + addr.ToString());
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; deadlines use poll
  if (addr.family == Address::Family::kTcp) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return sock;
}

Status Socket::SendAll(const void* data, size_t n) {
  if (fd_ < 0) return Unavailable("send on closed socket");
  const auto* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::Ok();
}

Status Socket::RecvAll(void* data, size_t n, int timeout_ms,
                       size_t* received) {
  if (received) *received = 0;
  if (fd_ < 0) return Unavailable("recv on closed socket");
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  const int64_t deadline = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  while (got < n) {
    int wait = -1;
    if (deadline >= 0) {
      const int64_t left = deadline - NowMs();
      if (left <= 0) return DeadlineExceeded("recv deadline expired");
      wait = static_cast<int>(left);
    }
    const int ready = PollFor(fd_, POLLIN, wait);
    if (ready < 0) return Errno("recv poll");
    if (ready == 0) return DeadlineExceeded("recv deadline expired");
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      if (received) *received = got;
      continue;
    }
    if (r == 0) return Unavailable("connection closed by peer");
    if (errno == EINTR || errno == EAGAIN) continue;
    return Errno("recv");
  }
  return Status::Ok();
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(Listener&& o) noexcept : fd_(o.fd_), bound_(o.bound_) {
  o.fd_ = -1;
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    bound_ = o.bound_;
    o.fd_ = -1;
  }
  return *this;
}

Result<Listener> Listener::Bind(const Address& addr, int backlog) {
  struct sockaddr_storage ss;
  socklen_t len = 0;
  if (addr.family == Address::Family::kUnix)
    ::unlink(addr.path.c_str());  // a stale socket file blocks bind
  HS_RETURN_IF_ERROR(FillSockaddr(addr, &ss, &len));
  const int domain =
      addr.family == Address::Family::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Listener listener;
  listener.fd_ = fd;
  listener.bound_ = addr;
  if (domain == AF_INET) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&ss), len) != 0)
    return Errno("bind " + addr.ToString());
  if (::listen(fd, backlog) != 0) return Errno("listen " + addr.ToString());
  if (domain == AF_INET) {
    // Report the kernel-resolved port so callers may bind port 0.
    struct sockaddr_in bound;
    socklen_t blen = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &blen) == 0)
      listener.bound_.port = ntohs(bound.sin_port);
  }
  return listener;
}

Result<Socket> Listener::Accept(int timeout_ms) {
  if (fd_ < 0) return Unavailable("accept on closed listener");
  const int ready = PollFor(fd_, POLLIN, timeout_ms);
  if (ready < 0) return Errno("accept poll");
  if (ready == 0) return DeadlineExceeded("no connection within wait");
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  return Socket(fd);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (bound_.family == Address::Family::kUnix && !bound_.path.empty())
      ::unlink(bound_.path.c_str());
  }
}

}  // namespace hardsnap::net
