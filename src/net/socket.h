// Blocking stream sockets with wall-clock deadlines.
//
// The modeled links under the analysis (bus/channel.h, bus/link.h) charge
// VIRTUAL time; this layer is the real transport underneath a remote
// target, so its deadlines are real milliseconds enforced with poll().
// Both families (TCP and Unix-domain) present the same byte-stream
// interface; everything above (net/frame_stream.h, src/remote) is
// family-agnostic.
//
// Error mapping, chosen so the remote target plugs straight into the
// existing transient-failure machinery (IsTransientFailure /
// IsInfrastructureFailure in common/status.h):
//   * connection refused / reset / EOF  -> kUnavailable
//   * deadline expired                  -> kDeadlineExceeded
// Both make the campaign layer re-provision the worker's slice instead of
// failing the campaign.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "net/address.h"

namespace hardsnap::net {

// A connected byte stream. Movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // Connect with a bounded wait (non-blocking connect + poll).
  static Result<Socket> Connect(const Address& addr, int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Write exactly `n` bytes (handles partial writes and EINTR). A peer
  // that went away surfaces as kUnavailable, never SIGPIPE.
  Status SendAll(const void* data, size_t n);

  // Read exactly `n` bytes, waiting at most `timeout_ms` in total.
  // timeout_ms < 0 waits forever. A clean EOF before the first byte and a
  // mid-read EOF both return kUnavailable (the stream protocol never
  // legitimately ends inside a message). `received`, when given, reports
  // how many bytes actually arrived — on a deadline it distinguishes an
  // idle peer (0) from a stream stalled mid-message (> 0).
  Status RecvAll(void* data, size_t n, int timeout_ms,
                 size_t* received = nullptr);

  // Unblocks any thread parked in RecvAll on this socket (server
  // shutdown path); subsequent operations fail with kUnavailable.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

// A bound, listening socket. Unix listeners unlink their path on Close.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& o) noexcept;
  Listener& operator=(Listener&& o) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static Result<Listener> Bind(const Address& addr, int backlog = 16);

  // Waits up to `timeout_ms` for a connection; kDeadlineExceeded on
  // timeout so accept loops can poll a stop flag between waits.
  Result<Socket> Accept(int timeout_ms);

  // The bound address with the kernel-resolved port (TCP port 0 binds).
  const Address& bound() const { return bound_; }
  bool valid() const { return fd_ >= 0; }

  void Close();

 private:
  int fd_ = -1;
  Address bound_;
};

}  // namespace hardsnap::net
