#include "net/frame_stream.h"

#include <cstring>

#include "common/crc32.h"

namespace hardsnap::net {

Status FrameStream::Send(uint8_t kind, uint32_t seq, uint32_t op,
                         const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxPayloadBytes)
    return InvalidArgument("payload too large to frame: " +
                           std::to_string(payload.size()) + " bytes");

  bus::Frame header;
  header.kind = kind;
  header.seq = seq;
  header.addr = op;
  header.value = static_cast<uint32_t>(payload.size());
  std::vector<uint8_t> wire = header.Encode();
  if (!payload.empty()) {
    wire.insert(wire.end(), payload.begin(), payload.end());
    const uint32_t crc = Crc32(payload);
    for (int i = 0; i < 4; ++i)
      wire.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  HS_RETURN_IF_ERROR(socket_.SendAll(wire.data(), wire.size()));
  bytes_sent_ += wire.size();
  return Status::Ok();
}

Result<Message> FrameStream::Recv(int header_timeout_ms,
                                  int body_timeout_ms) {
  std::vector<uint8_t> header_bytes(bus::Frame::kWireBytes);
  size_t header_got = 0;
  const Status header_status = socket_.RecvAll(
      header_bytes.data(), header_bytes.size(), header_timeout_ms,
      &header_got);
  if (!header_status.ok()) {
    if (header_status.code() == StatusCode::kDeadlineExceeded &&
        header_got > 0)
      return DataLoss("stream stalled mid-header (" +
                      std::to_string(header_got) + " of " +
                      std::to_string(bus::Frame::kWireBytes) + " bytes)");
    return header_status;
  }
  const int timeout_ms = body_timeout_ms;
  bytes_received_ += header_bytes.size();
  auto header = bus::Frame::Decode(header_bytes);
  if (!header.ok()) return header.status();

  Message msg;
  msg.kind = header.value().kind;
  msg.seq = header.value().seq;
  msg.op = header.value().addr;
  const uint32_t payload_len = header.value().value;
  if (payload_len == 0) return msg;

  // Forged-length guard: reject before allocating anything. The header CRC
  // already passed, so this is a hostile or incompatible peer, not noise.
  if (payload_len > kMaxPayloadBytes)
    return DataLoss("declared payload of " + std::to_string(payload_len) +
                    " bytes exceeds limit of " +
                    std::to_string(kMaxPayloadBytes));

  // From here on the peer committed to a message: a deadline is no longer
  // an idle poll but a stream stalled mid-message — report it as kDataLoss
  // so session loops that treat kDeadlineExceeded as "no traffic yet"
  // close the desynchronized connection instead of spinning.
  const auto stalled = [payload_len](const Status& s) {
    if (s.code() != StatusCode::kDeadlineExceeded) return s;
    return DataLoss("stream stalled mid-message (" +
                    std::to_string(payload_len) + "-byte payload)");
  };
  msg.payload.resize(payload_len);
  HS_RETURN_IF_ERROR(stalled(
      socket_.RecvAll(msg.payload.data(), msg.payload.size(), timeout_ms)));
  uint8_t crc_bytes[4];
  HS_RETURN_IF_ERROR(
      stalled(socket_.RecvAll(crc_bytes, sizeof crc_bytes, timeout_ms)));
  bytes_received_ += payload_len + sizeof crc_bytes;
  uint32_t want = 0;
  for (int i = 0; i < 4; ++i)
    want |= static_cast<uint32_t>(crc_bytes[i]) << (8 * i);
  if (Crc32(msg.payload) != want)
    return DataLoss("payload CRC mismatch on " +
                    std::to_string(payload_len) + "-byte message");

  return msg;
}

}  // namespace hardsnap::net
