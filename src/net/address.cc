#include "net/address.h"

namespace hardsnap::net {

Result<Address> Address::Parse(const std::string& spec) {
  if (spec.empty()) return InvalidArgument("empty address");
  Address addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.family = Family::kUnix;
    addr.path = spec.substr(5);
    if (addr.path.empty())
      return InvalidArgument("unix address needs a path: '" + spec + "'");

    // sockaddr_un::sun_path is 108 bytes including the terminator.
    if (addr.path.size() > 107)
      return InvalidArgument("unix socket path too long (>107 bytes): '" +
                             addr.path + "'");

    return addr;
  }
  std::string rest = spec;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size())
    return InvalidArgument("expected 'host:port' or 'unix:/path', got '" +
                           spec + "'");

  addr.family = Family::kTcp;
  addr.host = rest.substr(0, colon);
  const std::string port_str = rest.substr(colon + 1);
  uint32_t port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9')
      return InvalidArgument("bad port '" + port_str + "' in '" + spec + "'");

    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535)
      return InvalidArgument("port out of range in '" + spec + "'");
  }
  addr.port = static_cast<uint16_t>(port);
  return addr;
}

std::string Address::ToString() const {
  if (family == Family::kUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

}  // namespace hardsnap::net
