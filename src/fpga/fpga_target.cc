#include "fpga/fpga_target.h"

namespace hardsnap::fpga {

using sim::HardwareState;

FpgaTarget::FpgaTarget(std::unique_ptr<scanchain::InstrumentedDesign> inst,
                       FpgaTargetOptions options)
    : options_(options), inst_(std::move(inst)) {
  sram_.resize(options_.sram_slots);
}

Result<std::unique_ptr<FpgaTarget>> FpgaTarget::Create(
    const rtl::Design& soc_design, FpgaTargetOptions options) {
  auto inst = scanchain::InsertScanChain(soc_design, options.scan);
  if (!inst.ok()) return inst.status();
  auto fabric = sim::Simulator::Create(inst.value().design);
  if (!fabric.ok()) return fabric.status();

  auto target = std::unique_ptr<FpgaTarget>(new FpgaTarget(
      std::make_unique<scanchain::InstrumentedDesign>(std::move(inst).value()),
      options));
  target->fabric_ =
      std::make_unique<sim::Simulator>(std::move(fabric).value());
  target->driver_ = std::make_unique<bus::SocBusDriver>(target->fabric_.get());
  target->scan_ = std::make_unique<scanchain::ScanController>(
      target->fabric_.get(), target->inst_->map);
  HS_RETURN_IF_ERROR(target->fabric_->PokeInput("scan_enable", 0));
  HS_RETURN_IF_ERROR(target->fabric_->PokeInput("scan_in", 0));
  HS_RETURN_IF_ERROR(target->fabric_->PokeInput("scan_hold", 0));
  if (target->fabric_->design().FindSignal("uart_rx") != rtl::kInvalidId) {
    HS_RETURN_IF_ERROR(target->fabric_->PokeInput("uart_rx", 1));
  }
  return target;
}

void FpgaTarget::ChargeIo(unsigned transactions) {
  const Duration cost = options_.channel.CostOf(transactions) +
                        FabricCycles(transactions);
  clock_.Advance(cost);
  stats_.io_time += cost;
}

Result<uint32_t> FpgaTarget::Read32(uint32_t addr) {
  auto v = driver_->Read32(addr);
  if (!v.ok()) return v.status();
  ++stats_.mmio_reads;
  ChargeIo(1);
  return v;
}

Status FpgaTarget::Write32(uint32_t addr, uint32_t value) {
  HS_RETURN_IF_ERROR(driver_->Write32(addr, value));
  ++stats_.mmio_writes;
  ChargeIo(1);
  return Status::Ok();
}

Status FpgaTarget::Run(uint64_t cycles) {
  fabric_->Tick(static_cast<unsigned>(cycles));
  stats_.cycles_run += cycles;
  const Duration cost = FabricCycles(cycles);
  clock_.Advance(cost);
  stats_.run_time += cost;
  return Status::Ok();
}

Status FpgaTarget::ResetHardware() {
  HS_RETURN_IF_ERROR(fabric_->Reset());
  mirror_valid_ = false;  // live state moved without crossing the host link
  clock_.Advance(FabricCycles(2));
  return Status::Ok();
}

Duration FpgaTarget::ScanPassCost() const {
  // One full scan pass at fabric speed, plus the controller command
  // exchange over USB3 (start + completion poll).
  return FabricCycles(scan_->PassCycles()) + options_.channel.CostOf(2);
}

Duration FpgaTarget::BulkTransferCost() const {
  const uint64_t bytes =
      (inst_->map.total_bits + 7) / 8 +
      8ull * inst_->map.total_mem_words;  // words stream as 64-bit beats
  const double seconds =
      static_cast<double>(bytes) / options_.bulk_bytes_per_sec;
  return Duration::Seconds(seconds) + options_.channel.per_transaction;
}

Duration FpgaTarget::BulkDeltaCost(size_t payload_bytes) const {
  const double seconds =
      static_cast<double>(payload_bytes) / options_.bulk_bytes_per_sec;
  return Duration::Seconds(seconds) + options_.channel.per_transaction;
}

Duration FpgaTarget::ReadbackCost() const {
  const double seconds = static_cast<double>(options_.fabric_config_bits / 8) /
                         options_.readback_bytes_per_sec;
  return options_.readback_setup + Duration::Seconds(seconds);
}

Status FpgaTarget::SaveToSlot(unsigned slot) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  auto state = scan_->Save();
  if (!state.ok()) return state.status();
  sram_[slot] = std::make_unique<HardwareState>(std::move(state).value());
  ++stats_.snapshots_saved;
  const Duration cost = ScanPassCost();
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return Status::Ok();
}

Status FpgaTarget::RestoreFromSlot(unsigned slot) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  if (!sram_[slot]) return FailedPrecondition("SRAM slot is empty");
  HS_RETURN_IF_ERROR(scan_->Restore(*sram_[slot]));
  mirror_valid_ = false;  // on-fabric load: the host never saw these bits
  ++stats_.snapshots_restored;
  const Duration cost = ScanPassCost();
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return Status::Ok();
}

Status FpgaTarget::SwapWithSlot(unsigned slot) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  if (!sram_[slot]) return FailedPrecondition("SRAM slot is empty");
  auto old = scan_->SaveRestore(*sram_[slot]);
  if (!old.ok()) return old.status();
  *sram_[slot] = std::move(old).value();
  mirror_valid_ = false;  // on-fabric swap: the host never saw these bits
  ++stats_.snapshots_saved;
  ++stats_.snapshots_restored;
  const Duration cost = ScanPassCost();
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return Status::Ok();
}

bool FpgaTarget::SlotOccupied(unsigned slot) const {
  return slot < sram_.size() && sram_[slot] != nullptr;
}

Result<HardwareState> FpgaTarget::DownloadSlot(unsigned slot) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  if (!sram_[slot]) return FailedPrecondition("SRAM slot is empty");
  const Duration cost = BulkTransferCost();
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  stats_.snapshot_bytes_copied += sim::StateWords(*sram_[slot]) * 8;
  return *sram_[slot];
}

Status FpgaTarget::UploadSlot(unsigned slot, const HardwareState& state) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  sram_[slot] = std::make_unique<HardwareState>(state);
  const Duration cost = BulkTransferCost();
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  stats_.snapshot_bytes_copied += sim::StateWords(state) * 8;
  return Status::Ok();
}

Result<HardwareState> FpgaTarget::SaveState() {
  HS_RETURN_IF_ERROR(SaveToSlot(0));
  auto state = DownloadSlot(0);
  if (state.ok()) {
    mirror_ = state.value();
    mirror_valid_ = true;  // full download is a sync point for the delta path
  }
  return state;
}

Status FpgaTarget::RestoreState(const HardwareState& state) {
  HS_RETURN_IF_ERROR(UploadSlot(0, state));
  HS_RETURN_IF_ERROR(RestoreFromSlot(0));
  mirror_ = state;  // full upload is a sync point for the delta path
  mirror_valid_ = true;
  return Status::Ok();
}

Result<uint64_t> FpgaTarget::StateHash() {
  // Device-local integrity probe: the snapshot controller hashes the
  // state bits on-fabric (a non-destructive scan loop), so only the
  // 8-byte digest would cross the link — modeled as free.
  auto state = scan_->Save();
  if (!state.ok()) return state.status();
  return sim::HashState(state.value());
}

Result<sim::StateDelta> FpgaTarget::SaveStateDelta() {
  // The scan chain has no random access: extracting ANY state costs one
  // full pass at fabric speed (E1's linear-in-bits shape). The saving is
  // on the host link — only chunks that differ from the mirror cross it.
  auto state = scan_->Save();
  if (!state.ok()) return state.status();
  sim::StateDelta delta;
  if (mirror_valid_) {
    auto diff = sim::DiffStates(mirror_, state.value());
    if (!diff.ok()) return diff.status();
    delta = std::move(diff).value();
  } else {
    delta = sim::FullDelta(state.value());  // no base: ship everything
  }
  mirror_ = std::move(state).value();
  mirror_valid_ = true;
  ++stats_.snapshots_saved;
  stats_.snapshot_bytes_copied += delta.PayloadBytes();
  const Duration cost = ScanPassCost() + BulkDeltaCost(delta.PayloadBytes());
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return delta;
}

Status FpgaTarget::RestoreStateDelta(const sim::StateDelta& delta) {
  if (!mirror_valid_)
    return FailedPrecondition(
        "fpga delta restore needs a sync point; do a full transfer first");
  HardwareState next = mirror_;
  HS_RETURN_IF_ERROR(sim::ApplyDeltaToState(&next, delta));
  // Writing the chain is still a full pass; the delta only shrank the
  // host->fabric upload.
  HS_RETURN_IF_ERROR(scan_->Restore(next));
  mirror_ = std::move(next);
  ++stats_.snapshots_restored;
  stats_.snapshot_bytes_copied += delta.PayloadBytes();
  const Duration cost = ScanPassCost() + BulkDeltaCost(delta.PayloadBytes());
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return Status::Ok();
}

Result<HardwareState> FpgaTarget::Readback() {
  if (!options_.readback_supported)
    return Unimplemented("this FPGA has no readback capability");
  // Readback captures the fabric flop/BRAM contents; functionally the
  // same bits the scan chain extracts, at full-device cost. The fabric
  // must be quiescent during the dump (the real feature freezes clocks).
  auto state = fabric_->DumpState();
  ++stats_.snapshots_saved;
  const Duration cost = ReadbackCost();
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return state;
}

}  // namespace hardsnap::fpga
