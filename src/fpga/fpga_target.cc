#include "fpga/fpga_target.h"

namespace hardsnap::fpga {

using sim::HardwareState;

FpgaTarget::FpgaTarget(std::unique_ptr<scanchain::InstrumentedDesign> inst,
                       FpgaTargetOptions options)
    : options_(options),
      inst_(std::move(inst)),
      link_(options.channel, options.link) {
  sram_.resize(options_.sram_slots);
}

Result<std::unique_ptr<FpgaTarget>> FpgaTarget::Create(
    const rtl::Design& soc_design, FpgaTargetOptions options) {
  auto inst = scanchain::InsertScanChain(soc_design, options.scan);
  if (!inst.ok()) return inst.status();
  auto fabric = sim::Simulator::Create(inst.value().design);
  if (!fabric.ok()) return fabric.status();

  auto target = std::unique_ptr<FpgaTarget>(new FpgaTarget(
      std::make_unique<scanchain::InstrumentedDesign>(std::move(inst).value()),
      options));
  target->fabric_ =
      std::make_unique<sim::Simulator>(std::move(fabric).value());
  target->driver_ = std::make_unique<bus::SocBusDriver>(target->fabric_.get());
  target->scan_ = std::make_unique<scanchain::ScanController>(
      target->fabric_.get(), target->inst_->map);
  HS_RETURN_IF_ERROR(target->fabric_->PokeInput("scan_enable", 0));
  HS_RETURN_IF_ERROR(target->fabric_->PokeInput("scan_in", 0));
  HS_RETURN_IF_ERROR(target->fabric_->PokeInput("scan_hold", 0));
  if (target->fabric_->design().FindSignal("uart_rx") != rtl::kInvalidId) {
    HS_RETURN_IF_ERROR(target->fabric_->PokeInput("uart_rx", 1));
  }
  return target;
}

Result<uint32_t> FpgaTarget::Read32(uint32_t addr) {
  // The USB3 round trip goes through the framed link (paying per attempt
  // under faults); the AXI bus cycle on the fabric is charged only once
  // the transaction actually lands.
  Duration link_cost;
  auto v = link_.Read(
      addr, [&] { return driver_->Read32(addr); }, &link_cost);
  clock_.Advance(link_cost);
  stats_.io_time += link_cost;
  SyncLinkStats();
  if (!v.ok()) return v.status();
  ++stats_.mmio_reads;
  const Duration dev = FabricCycles(1);
  clock_.Advance(dev);
  stats_.io_time += dev;
  return v;
}

Status FpgaTarget::Write32(uint32_t addr, uint32_t value) {
  Duration link_cost;
  Status s = link_.Write(
      addr, value, [&] { return driver_->Write32(addr, value); }, &link_cost);
  clock_.Advance(link_cost);
  stats_.io_time += link_cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  ++stats_.mmio_writes;
  const Duration dev = FabricCycles(1);
  clock_.Advance(dev);
  stats_.io_time += dev;
  return Status::Ok();
}

Status FpgaTarget::Run(uint64_t cycles) {
  Duration cost;
  Status s = link_.Bulk(
      FabricCycles(cycles),
      [&] {
        fabric_->Tick(static_cast<unsigned>(cycles));
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  stats_.run_time += cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  stats_.cycles_run += cycles;
  return Status::Ok();
}

Status FpgaTarget::ResetHardware() {
  Duration cost;
  Status s = link_.Bulk(
      FabricCycles(2),
      [&] {
        HS_RETURN_IF_ERROR(fabric_->Reset());
        mirror_valid_ = false;  // live state moved without crossing the link
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  SyncLinkStats();
  return s;
}

Duration FpgaTarget::ScanPassCost() const {
  // One full scan pass at fabric speed, plus the controller command
  // exchange over USB3 (start + completion poll).
  return FabricCycles(scan_->PassCycles()) + options_.channel.CostOf(2);
}

Duration FpgaTarget::BulkTransferCost() const {
  const uint64_t bytes =
      (inst_->map.total_bits + 7) / 8 +
      8ull * inst_->map.total_mem_words;  // words stream as 64-bit beats
  const double seconds =
      static_cast<double>(bytes) / options_.bulk_bytes_per_sec;
  return Duration::Seconds(seconds) + options_.channel.per_transaction;
}

Duration FpgaTarget::BulkDeltaCost(size_t payload_bytes) const {
  const double seconds =
      static_cast<double>(payload_bytes) / options_.bulk_bytes_per_sec;
  return Duration::Seconds(seconds) + options_.channel.per_transaction;
}

Duration FpgaTarget::ReadbackCost() const {
  const double seconds = static_cast<double>(options_.fabric_config_bits / 8) /
                         options_.readback_bytes_per_sec;
  return options_.readback_setup + Duration::Seconds(seconds);
}

Status FpgaTarget::SaveToSlot(unsigned slot) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  // The scan pass itself is on-fabric; what crosses the link is the
  // controller command exchange. The pass (and the SRAM write) only
  // happens if the command actually reaches the device.
  Duration cost;
  Status s = link_.Bulk(
      ScanPassCost(),
      [&]() -> Status {
        auto state = scan_->Save();
        if (!state.ok()) return state.status();
        sram_[slot] =
            std::make_unique<HardwareState>(std::move(state).value());
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  ++stats_.snapshots_saved;
  return Status::Ok();
}

Status FpgaTarget::RestoreFromSlot(unsigned slot) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  if (!sram_[slot]) return FailedPrecondition("SRAM slot is empty");
  Duration cost;
  Status s = link_.Bulk(
      ScanPassCost(),
      [&]() -> Status {
        HS_RETURN_IF_ERROR(scan_->Restore(*sram_[slot]));
        mirror_valid_ = false;  // on-fabric load: host never saw these bits
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  ++stats_.snapshots_restored;
  return Status::Ok();
}

Status FpgaTarget::SwapWithSlot(unsigned slot) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  if (!sram_[slot]) return FailedPrecondition("SRAM slot is empty");
  Duration cost;
  Status s = link_.Bulk(
      ScanPassCost(),
      [&]() -> Status {
        auto old = scan_->SaveRestore(*sram_[slot]);
        if (!old.ok()) return old.status();
        *sram_[slot] = std::move(old).value();
        mirror_valid_ = false;  // on-fabric swap: host never saw these bits
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  ++stats_.snapshots_saved;
  ++stats_.snapshots_restored;
  return Status::Ok();
}

bool FpgaTarget::SlotOccupied(unsigned slot) const {
  return slot < sram_.size() && sram_[slot] != nullptr;
}

Result<HardwareState> FpgaTarget::DownloadSlot(unsigned slot) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  if (!sram_[slot]) return FailedPrecondition("SRAM slot is empty");
  Duration cost;
  Status s =
      link_.Bulk(BulkTransferCost(), [] { return Status::Ok(); }, &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  if (!s.ok()) return s;
  stats_.snapshot_bytes_copied += sim::StateWords(*sram_[slot]) * 8;
  return *sram_[slot];
}

Status FpgaTarget::UploadSlot(unsigned slot, const HardwareState& state) {
  if (slot >= sram_.size()) return OutOfRange("no such SRAM slot");
  // The slot only takes the new content once the upload survives the link.
  Duration cost;
  Status s = link_.Bulk(
      BulkTransferCost(),
      [&] {
        sram_[slot] = std::make_unique<HardwareState>(state);
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  stats_.snapshot_bytes_copied += sim::StateWords(state) * 8;
  return Status::Ok();
}

Result<HardwareState> FpgaTarget::SaveState() {
  HS_RETURN_IF_ERROR(SaveToSlot(0));
  auto state = DownloadSlot(0);
  if (state.ok()) {
    mirror_ = state.value();
    mirror_valid_ = true;  // full download is a sync point for the delta path
  }
  return state;
}

Status FpgaTarget::RestoreState(const HardwareState& state) {
  HS_RETURN_IF_ERROR(UploadSlot(0, state));
  HS_RETURN_IF_ERROR(RestoreFromSlot(0));
  mirror_ = state;  // full upload is a sync point for the delta path
  mirror_valid_ = true;
  return Status::Ok();
}

Result<uint64_t> FpgaTarget::StateHash() {
  // Device-local integrity probe: the snapshot controller hashes the
  // state bits on-fabric (a non-destructive scan loop), so only the
  // 8-byte digest would cross the link — modeled as free.
  auto state = scan_->Save();
  if (!state.ok()) return state.status();
  return sim::HashState(state.value());
}

Result<sim::StateDelta> FpgaTarget::SaveStateDelta() {
  // The scan chain has no random access: extracting ANY state costs one
  // full pass at fabric speed (E1's linear-in-bits shape). The saving is
  // on the host link — only chunks that differ from the mirror cross it.
  auto state = scan_->Save();
  if (!state.ok()) return state.status();
  sim::StateDelta delta;
  if (mirror_valid_) {
    auto diff = sim::DiffStates(mirror_, state.value());
    if (!diff.ok()) return diff.status();
    delta = std::move(diff).value();
  } else {
    delta = sim::FullDelta(state.value());  // no base: ship everything
  }
  // The mirror (the host's view of the sync point) only advances once the
  // delta payload survives the link — a failed ship must not desync it.
  Duration cost;
  Status s = link_.Bulk(
      ScanPassCost() + BulkDeltaCost(delta.PayloadBytes()),
      [&] {
        mirror_ = std::move(state).value();
        mirror_valid_ = true;
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  if (!s.ok()) return s;
  ++stats_.snapshots_saved;
  stats_.snapshot_bytes_copied += delta.PayloadBytes();
  return delta;
}

Status FpgaTarget::RestoreStateDelta(const sim::StateDelta& delta) {
  if (!mirror_valid_)
    return FailedPrecondition(
        "fpga delta restore needs a sync point; do a full transfer first");
  HardwareState next = mirror_;
  HS_RETURN_IF_ERROR(sim::ApplyDeltaToState(&next, delta));
  // Writing the chain is still a full pass; the delta only shrank the
  // host->fabric upload.
  Duration cost;
  Status s = link_.Bulk(
      ScanPassCost() + BulkDeltaCost(delta.PayloadBytes()),
      [&]() -> Status {
        HS_RETURN_IF_ERROR(scan_->Restore(next));
        mirror_ = std::move(next);
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  ++stats_.snapshots_restored;
  stats_.snapshot_bytes_copied += delta.PayloadBytes();
  return Status::Ok();
}

Result<HardwareState> FpgaTarget::Readback() {
  if (!options_.readback_supported)
    return Unimplemented("this FPGA has no readback capability");
  // Readback captures the fabric flop/BRAM contents; functionally the
  // same bits the scan chain extracts, at full-device cost. The fabric
  // must be quiescent during the dump (the real feature freezes clocks).
  auto state = fabric_->DumpState();
  ++stats_.snapshots_saved;
  const Duration cost = ReadbackCost();
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return state;
}

}  // namespace hardsnap::fpga
