// FpgaTarget: the paper's FPGA emulation target, modeled faithfully.
//
// Construction runs the real HardSnap toolchain path B (Fig. 3): the SoC
// RTL is instrumented with the scan chain (B.1), then "synthesized" — here,
// compiled into a netlist executed by the cycle-accurate engine, standing
// in for the bitstream (B.2). The crucial property is preserved by
// interface discipline: this class exposes ONLY what a real FPGA exposes —
//   * MMIO through the USB3 debugger (AXI master),
//   * the irq wires,
//   * the snapshot controller IP: scan-chain save/restore to on-fabric
//     SRAM slots, host upload/download of slots,
//   * optional vendor readback (full-fabric configuration dump).
// There is no Peek/Poke of internal signals and no tracing — to get those,
// transfer the state to the simulator target (experiment E6).
//
// Timing model: the fabric runs at `fabric_hz` (default 100 MHz). A scan
// save/restore is PassCycles() fabric cycles plus a USB3 command. Readback
// dumps the WHOLE fabric configuration (size-independent of the design),
// so it is slow regardless of peripheral complexity — matching the paper's
// scan-vs-readback comparison.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bus/channel.h"
#include "bus/delta_support.h"
#include "bus/link.h"
#include "bus/slot_support.h"
#include "bus/soc_driver.h"
#include "bus/target.h"
#include "common/status.h"
#include "rtl/ir.h"
#include "scanchain/scan_controller.h"
#include "scanchain/scan_pass.h"

namespace hardsnap::fpga {

struct FpgaTargetOptions {
  double fabric_hz = 100e6;
  unsigned sram_slots = 32;  // snapshot SRAM capacity (in snapshots)
  bus::ChannelModel channel = bus::Usb3Channel();

  // Host<->fabric bulk transfer bandwidth for snapshot upload/download.
  double bulk_bytes_per_sec = 200e6;

  // Vendor readback: dump of the full fabric configuration.
  bool readback_supported = true;
  uint64_t fabric_config_bits = 80ull << 20;  // whole-device bitstream
  double readback_bytes_per_sec = 100e6;
  Duration readback_setup = Duration::Millis(5);

  scanchain::ScanOptions scan;  // scope restriction, if any

  // Framed-transport configuration for the USB3 debugger link (fault
  // injection, retry policy, health monitor). Clean by default; the
  // framing layer then charges exactly the raw channel costs.
  bus::LinkConfig link;
};

class FpgaTarget : public bus::HardwareTarget,
                   public bus::SlotSnapshotter,
                   public bus::DeltaSnapshotter {
 public:
  // Instruments `soc_design` and loads it onto the emulated fabric.
  static Result<std::unique_ptr<FpgaTarget>> Create(
      const rtl::Design& soc_design, FpgaTargetOptions options = {});

  bus::TargetKind kind() const override { return bus::TargetKind::kFpga; }
  const std::string& name() const override { return name_; }

  Result<uint32_t> Read32(uint32_t addr) override;
  Status Write32(uint32_t addr, uint32_t value) override;
  Status Run(uint64_t cycles) override;
  uint32_t IrqVector() override { return driver_->IrqVector(); }
  Status ResetHardware() override;

  // Full host transfer: scan pass + USB3 bulk download/upload.
  Result<sim::HardwareState> SaveState() override;
  Status RestoreState(const sim::HardwareState& state) override;
  Result<uint64_t> StateHash() override;

  // bus::DeltaSnapshotter: the scan pass itself still reads/writes EVERY
  // state bit (a chain has no random access — E1's linear-in-bits latency
  // shape is a property of the mechanism and is preserved), but the host
  // keeps a mirror of the state at the last sync point, so only the
  // chunks that differ cross the USB3 link. Slot restores and hardware
  // resets bypass the mirror and invalidate it; the next SaveStateDelta
  // then degrades to a full-payload delta and RestoreStateDelta requires
  // a full operation first.
  Result<sim::StateDelta> SaveStateDelta() override;
  Status RestoreStateDelta(const sim::StateDelta& delta) override;

  bool responsive() const override { return link_.alive(); }

  const VirtualClock& clock() const override { return clock_; }
  const bus::TargetStats& stats() const override { return stats_; }

  bus::FramedLink* link() { return &link_; }

  // --- snapshot controller IP (on-fabric, fast path) ---------------------
  // Scan the live state into SRAM slot `slot` (previous content replaced).
  Status SaveToSlot(unsigned slot);
  // Load SRAM slot `slot` into the live registers/memories.
  Status RestoreFromSlot(unsigned slot);
  // Swap: load `slot` while capturing the outgoing state into it — a
  // single scan pass, the cheapest possible hardware context switch.
  Status SwapWithSlot(unsigned slot);
  unsigned num_slots() const { return options_.sram_slots; }
  bool SlotOccupied(unsigned slot) const;

  // bus::SlotSnapshotter (device-resident snapshots for the executor).
  unsigned NumSlots() const override { return options_.sram_slots; }
  Status SaveLiveToSlot(unsigned slot) override { return SaveToSlot(slot); }
  Status RestoreLiveFromSlot(unsigned slot) override {
    return RestoreFromSlot(slot);
  }

  // Download / upload a slot over USB3 (bulk cost).
  Result<sim::HardwareState> DownloadSlot(unsigned slot);
  Status UploadSlot(unsigned slot, const sim::HardwareState& state);

  // --- vendor readback -----------------------------------------------------
  // Full-fabric configuration dump; recovers the architectural state but
  // costs the whole-device readback time regardless of design size.
  Result<sim::HardwareState> Readback();

  // --- introspection metadata (not state access) --------------------------
  const scanchain::ScanChainMap& scan_map() const { return inst_->map; }
  Duration ScanPassCost() const;
  Duration ReadbackCost() const;
  Duration BulkTransferCost() const;
  // Bulk USB3 cost of moving just `payload_bytes` of delta chunks.
  Duration BulkDeltaCost(size_t payload_bytes) const;

 private:
  FpgaTarget(std::unique_ptr<scanchain::InstrumentedDesign> inst,
             FpgaTargetOptions options);

  Duration FabricCycles(uint64_t cycles) const {
    return PeriodOfHz(options_.fabric_hz) * static_cast<int64_t>(cycles);
  }
  void SyncLinkStats() { stats_.link = link_.stats(); }

  std::string name_ = "fpga";
  FpgaTargetOptions options_;
  std::unique_ptr<scanchain::InstrumentedDesign> inst_;
  std::unique_ptr<sim::Simulator> fabric_;  // private: bitstream execution
  std::unique_ptr<bus::SocBusDriver> driver_;
  std::unique_ptr<scanchain::ScanController> scan_;
  bus::FramedLink link_;
  std::vector<std::unique_ptr<sim::HardwareState>> sram_;
  // Host-side mirror of the architectural state at the last full-transfer
  // sync point (what the delta path diffs against). Invalidated whenever
  // the live state moves without crossing the host link.
  sim::HardwareState mirror_;
  bool mirror_valid_ = false;
  VirtualClock clock_;
  bus::TargetStats stats_;
};

}  // namespace hardsnap::fpga
