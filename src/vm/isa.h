// RV32IM instruction set: decoding and encoding.
//
// The paper's VM executes ARM firmware through Inception/KLEE; this repo
// uses RV32IM as the firmware ISA (open, compact, and sufficient for the
// synthetic firmware corpus). The decoder is shared by the symbolic
// executor (which interprets instructions over solver terms) and the
// assembler's round-trip tests.
//
// Supported: the full RV32I base (minus FENCE, which decodes to a no-op)
// plus the M extension, the CSR instructions needed for machine-mode
// interrupt handling (csrrw/csrrs on mstatus/mtvec/mepc/mcause), mret,
// ecall and ebreak.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace hardsnap::vm {

enum class Opcode : uint8_t {
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kCsrrw, kCsrrs, kCsrrc,
  kEcall, kEbreak, kMret, kWfi, kFence,
};

const char* OpcodeName(Opcode op);

// CSR addresses (machine mode subset).
inline constexpr uint32_t kCsrMstatus = 0x300;
inline constexpr uint32_t kCsrMtvec = 0x305;
inline constexpr uint32_t kCsrMepc = 0x341;
inline constexpr uint32_t kCsrMcause = 0x342;
inline constexpr uint32_t kMstatusMie = 1u << 3;
inline constexpr uint32_t kMstatusMpie = 1u << 7;

struct Instruction {
  Opcode op = Opcode::kAddi;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;     // sign-extended immediate (B/J offsets included)
  uint32_t csr = 0;    // CSR address for csr ops
};

// Decode a 32-bit instruction word. Unknown encodings are an error with
// the offending word in the message.
Result<Instruction> Decode(uint32_t word);

// Encode an instruction back to its 32-bit word (assembler back-end).
Result<uint32_t> Encode(const Instruction& instr);

// Disassemble for diagnostics ("addi a0, a0, 1").
std::string Disassemble(const Instruction& instr);

// ABI register names x0..x31 -> "zero", "ra", "sp", ...
const char* RegName(unsigned reg);

}  // namespace hardsnap::vm
