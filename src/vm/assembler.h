// Two-pass assembler for the firmware corpus.
//
// Accepts a practical subset of RISC-V assembly:
//   * all RV32IM mnemonics from isa.h with standard operand forms
//     ("addi a0, a1, -4", "lw a0, 8(sp)", "beq a0, a1, label");
//   * labels ("loop:") and label operands in branches/jumps/li/la/.word;
//   * pseudo-instructions: nop, mv, li (32-bit, expands to lui+addi),
//     la, j, jr, call, ret, beqz, bnez, csrr, csrw;
//   * directives: .org <addr> (forward only), .word <v>{,<v>},
//     .space <bytes>;
//   * comments: '#' or '//' to end of line.
//
// The output image is a flat byte vector based at `base` (default 0,
// i.e. ROM) with a symbol table for tests and loaders.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace hardsnap::vm {

struct FirmwareImage {
  uint32_t base = 0;
  std::vector<uint8_t> bytes;
  std::map<std::string, uint32_t> symbols;

  uint32_t SymbolOr(const std::string& name, uint32_t fallback) const {
    auto it = symbols.find(name);
    return it == symbols.end() ? fallback : it->second;
  }
};

Result<FirmwareImage> Assemble(const std::string& source, uint32_t base = 0);

}  // namespace hardsnap::vm
