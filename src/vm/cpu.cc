#include "vm/cpu.h"

#include <cstdio>

namespace hardsnap::vm {

namespace {

int32_t AsSigned(uint32_t v) { return static_cast<int32_t>(v); }

}  // namespace

Cpu::Cpu(bus::HardwareTarget* target, unsigned cycles_per_instruction)
    : target_(target), cycles_per_instruction_(cycles_per_instruction) {
  state_.ram.assign(kRamSize, 0);
  state_.regs[2] = kStackTop - 16;
}

Status Cpu::LoadFirmware(const FirmwareImage& image) {
  if (image.base != kRomBase)
    return InvalidArgument("firmware must be based at ROM");
  if (image.bytes.size() > kRomSize)
    return InvalidArgument("firmware larger than ROM");
  image_ = image;
  state_.pc = image.SymbolOr("_start", kRomBase);
  return Status::Ok();
}

Status Cpu::WriteRam(uint32_t addr, const std::vector<uint8_t>& bytes) {
  if (!InRam(addr) || !InRam(addr + static_cast<uint32_t>(bytes.size()) - 1))
    return OutOfRange("WriteRam outside RAM");
  for (size_t i = 0; i < bytes.size(); ++i)
    state_.ram[addr - kRamBase + i] = bytes[i];
  return Status::Ok();
}

Result<uint8_t> Cpu::ReadRam(uint32_t addr) const {
  if (!InRam(addr)) return OutOfRange("ReadRam outside RAM");
  return state_.ram[addr - kRamBase];
}

Result<uint32_t> Cpu::Load(uint32_t addr, unsigned bytes) {
  uint32_t v = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    uint8_t byte;
    const uint32_t a = addr + i;
    if (InRam(a)) {
      byte = state_.ram[a - kRamBase];
    } else if (InRom(a)) {
      const uint32_t off = a - image_.base;
      byte = off < image_.bytes.size() ? image_.bytes[off] : 0;
    } else {
      return OutOfRange("load outside mapped memory");
    }
    v |= uint32_t{byte} << (8 * i);
  }
  return v;
}

Status Cpu::Store(uint32_t addr, uint32_t value, unsigned bytes,
                  RunOutcome* outcome) {
  (void)outcome;
  for (unsigned i = 0; i < bytes; ++i) {
    const uint32_t a = addr + i;
    if (!InRam(a)) return OutOfRange("store outside RAM");
    state_.ram[a - kRamBase] = static_cast<uint8_t>(value >> (8 * i));
  }
  return Status::Ok();
}

void Cpu::ServeInterrupt() {
  if (state_.in_interrupt || (state_.mstatus & kMstatusMie) == 0) return;
  if (!target_) return;
  const uint32_t pending = target_->IrqVector();
  if (pending == 0) return;
  unsigned line = 0;
  while (((pending >> line) & 1) == 0) ++line;
  state_.mepc = state_.pc;
  state_.mcause = 0x80000000u | line;
  state_.pc = state_.mtvec;
  state_.mstatus |= kMstatusMpie;
  state_.mstatus &= ~kMstatusMie;
  state_.in_interrupt = true;
  NoteEdge(state_.pc);
}

RunOutcome Cpu::Step() {
  RunOutcome out;
  ServeInterrupt();

  if (!InRom(state_.pc) || (state_.pc & 3) != 0) {
    out.status = RunStatus::kBug;
    out.fault_pc = state_.pc;
    out.reason = "instruction fetch outside ROM";
    return out;
  }
  auto word = Load(state_.pc, 4);
  HS_CHECK(word.ok());
  auto decoded = Decode(word.value());
  if (!decoded.ok()) {
    out.status = RunStatus::kBug;
    out.fault_pc = state_.pc;
    out.reason = "illegal instruction";
    return out;
  }
  const Instruction& in = decoded.value();
  const uint32_t next_pc = state_.pc + 4;
  ++state_.icount;

  auto& regs = state_.regs;
  auto rs1 = regs[in.rs1];
  auto rs2 = regs[in.rs2];
  auto set_rd = [&](uint32_t v) {
    if (in.rd != 0) regs[in.rd] = v;
  };
  const uint32_t imm = static_cast<uint32_t>(in.imm);

  auto bug = [&](const char* why, uint32_t at) {
    out.status = RunStatus::kBug;
    out.fault_pc = at;
    out.reason = why;
  };

  switch (in.op) {
    case Opcode::kLui: set_rd(imm); state_.pc = next_pc; break;
    case Opcode::kAuipc: set_rd(state_.pc + imm); state_.pc = next_pc; break;
    case Opcode::kJal:
      set_rd(next_pc);
      state_.pc = state_.pc + imm;
      NoteEdge(state_.pc);
      break;
    case Opcode::kJalr: {
      const uint32_t t = (rs1 + imm) & ~1u;
      set_rd(next_pc);
      state_.pc = t;
      NoteEdge(state_.pc);
      break;
    }
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
      bool taken = false;
      switch (in.op) {
        case Opcode::kBeq: taken = rs1 == rs2; break;
        case Opcode::kBne: taken = rs1 != rs2; break;
        case Opcode::kBlt: taken = AsSigned(rs1) < AsSigned(rs2); break;
        case Opcode::kBge: taken = AsSigned(rs1) >= AsSigned(rs2); break;
        case Opcode::kBltu: taken = rs1 < rs2; break;
        default: taken = rs1 >= rs2; break;
      }
      state_.pc = taken ? state_.pc + imm : next_pc;
      if (taken) NoteEdge(state_.pc);
      break;
    }
    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw:
    case Opcode::kLbu: case Opcode::kLhu: {
      const uint32_t addr = rs1 + imm;
      unsigned bytes = in.op == Opcode::kLw ? 4
                       : (in.op == Opcode::kLh || in.op == Opcode::kLhu) ? 2
                                                                         : 1;
      uint32_t v;
      if (InMmio(addr)) {
        if (!target_) { bug("MMIO access without hardware", state_.pc); return out; }
        auto r = target_->Read32(addr & 0xffff);
        if (!r.ok()) {
          // A dead/timed-out link is the host's problem, not firmware's:
          // report it as a hardware error so analyses can re-provision
          // instead of logging a bogus crash finding.
          if (IsInfrastructureFailure(r.status().code())) {
            out.status = RunStatus::kHardwareError;
            out.fault_pc = state_.pc;
            out.reason = "MMIO read failed: " + r.status().ToString();
            return out;
          }
          bug("MMIO read failed", state_.pc);
          return out;
        }
        v = r.value();
      } else {
        auto r = Load(addr, bytes);
        if (!r.ok()) { bug("out-of-bounds load", state_.pc); return out; }
        v = r.value();
      }
      switch (in.op) {
        case Opcode::kLb: v = static_cast<uint32_t>(static_cast<int8_t>(v)); break;
        case Opcode::kLh: v = static_cast<uint32_t>(static_cast<int16_t>(v)); break;
        case Opcode::kLbu: v &= 0xff; break;
        case Opcode::kLhu: v &= 0xffff; break;
        default: break;
      }
      set_rd(v);
      state_.pc = next_pc;
      break;
    }
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw: {
      const uint32_t addr = rs1 + imm;
      unsigned bytes = in.op == Opcode::kSw ? 4
                       : in.op == Opcode::kSh ? 2 : 1;
      if (addr == kHostPutchar) {
        console_.push_back(static_cast<char>(rs2 & 0xff));
        state_.pc = next_pc;
        break;
      }
      if (addr == kHostExit) {
        out.status = RunStatus::kExited;
        out.exit_code = rs2;
        return out;
      }
      if (InMmio(addr)) {
        if (!target_) { bug("MMIO access without hardware", state_.pc); return out; }
        if (Status ws = target_->Write32(addr & 0xffff, rs2); !ws.ok()) {
          if (IsInfrastructureFailure(ws.code())) {
            out.status = RunStatus::kHardwareError;
            out.fault_pc = state_.pc;
            out.reason = "MMIO write failed: " + ws.ToString();
            return out;
          }
          bug("MMIO write failed", state_.pc);
          return out;
        }
      } else if (!Store(addr, rs2, bytes, &out).ok()) {
        bug("out-of-bounds store", state_.pc);
        return out;
      }
      state_.pc = next_pc;
      break;
    }
    case Opcode::kAddi: set_rd(rs1 + imm); state_.pc = next_pc; break;
    case Opcode::kSlti: set_rd(AsSigned(rs1) < AsSigned(imm) ? 1 : 0); state_.pc = next_pc; break;
    case Opcode::kSltiu: set_rd(rs1 < imm ? 1 : 0); state_.pc = next_pc; break;
    case Opcode::kXori: set_rd(rs1 ^ imm); state_.pc = next_pc; break;
    case Opcode::kOri: set_rd(rs1 | imm); state_.pc = next_pc; break;
    case Opcode::kAndi: set_rd(rs1 & imm); state_.pc = next_pc; break;
    case Opcode::kSlli: set_rd(rs1 << (imm & 31)); state_.pc = next_pc; break;
    case Opcode::kSrli: set_rd(rs1 >> (imm & 31)); state_.pc = next_pc; break;
    case Opcode::kSrai: set_rd(static_cast<uint32_t>(AsSigned(rs1) >> (imm & 31))); state_.pc = next_pc; break;
    case Opcode::kAdd: set_rd(rs1 + rs2); state_.pc = next_pc; break;
    case Opcode::kSub: set_rd(rs1 - rs2); state_.pc = next_pc; break;
    case Opcode::kSll: set_rd(rs1 << (rs2 & 31)); state_.pc = next_pc; break;
    case Opcode::kSlt: set_rd(AsSigned(rs1) < AsSigned(rs2) ? 1 : 0); state_.pc = next_pc; break;
    case Opcode::kSltu: set_rd(rs1 < rs2 ? 1 : 0); state_.pc = next_pc; break;
    case Opcode::kXor: set_rd(rs1 ^ rs2); state_.pc = next_pc; break;
    case Opcode::kSrl: set_rd(rs1 >> (rs2 & 31)); state_.pc = next_pc; break;
    case Opcode::kSra: set_rd(static_cast<uint32_t>(AsSigned(rs1) >> (rs2 & 31))); state_.pc = next_pc; break;
    case Opcode::kOr: set_rd(rs1 | rs2); state_.pc = next_pc; break;
    case Opcode::kAnd: set_rd(rs1 & rs2); state_.pc = next_pc; break;
    case Opcode::kMul: set_rd(rs1 * rs2); state_.pc = next_pc; break;
    case Opcode::kMulh:
      set_rd(static_cast<uint32_t>(
          (static_cast<int64_t>(AsSigned(rs1)) *
           static_cast<int64_t>(AsSigned(rs2))) >> 32));
      state_.pc = next_pc;
      break;
    case Opcode::kMulhu:
      set_rd(static_cast<uint32_t>(
          (static_cast<uint64_t>(rs1) * static_cast<uint64_t>(rs2)) >> 32));
      state_.pc = next_pc;
      break;
    case Opcode::kMulhsu:
      set_rd(static_cast<uint32_t>(
          (static_cast<int64_t>(AsSigned(rs1)) *
           static_cast<int64_t>(static_cast<uint64_t>(rs2))) >> 32));
      state_.pc = next_pc;
      break;
    case Opcode::kDiv:
      if (rs2 == 0) set_rd(~0u);
      else if (rs1 == 0x80000000u && rs2 == ~0u) set_rd(0x80000000u);
      else set_rd(static_cast<uint32_t>(AsSigned(rs1) / AsSigned(rs2)));
      state_.pc = next_pc;
      break;
    case Opcode::kDivu:
      set_rd(rs2 == 0 ? ~0u : rs1 / rs2);
      state_.pc = next_pc;
      break;
    case Opcode::kRem:
      if (rs2 == 0) set_rd(rs1);
      else if (rs1 == 0x80000000u && rs2 == ~0u) set_rd(0);
      else set_rd(static_cast<uint32_t>(AsSigned(rs1) % AsSigned(rs2)));
      state_.pc = next_pc;
      break;
    case Opcode::kRemu:
      set_rd(rs2 == 0 ? rs1 : rs1 % rs2);
      state_.pc = next_pc;
      break;
    case Opcode::kCsrrw: case Opcode::kCsrrs: case Opcode::kCsrrc: {
      uint32_t* csr = nullptr;
      switch (in.csr) {
        case kCsrMstatus: csr = &state_.mstatus; break;
        case kCsrMtvec: csr = &state_.mtvec; break;
        case kCsrMepc: csr = &state_.mepc; break;
        case kCsrMcause: csr = &state_.mcause; break;
        default:
          bug("unknown CSR", state_.pc);
          return out;
      }
      const uint32_t old = *csr;
      switch (in.op) {
        case Opcode::kCsrrw: *csr = rs1; break;
        case Opcode::kCsrrs: if (in.rs1 != 0) *csr = old | rs1; break;
        default: if (in.rs1 != 0) *csr = old & ~rs1; break;
      }
      set_rd(old);
      state_.pc = next_pc;
      break;
    }
    case Opcode::kEcall: state_.pc = next_pc; break;
    case Opcode::kEbreak:
      bug("ebreak", state_.pc);
      return out;
    case Opcode::kMret:
      state_.pc = state_.mepc;
      if (state_.mstatus & kMstatusMpie) state_.mstatus |= kMstatusMie;
      state_.in_interrupt = false;
      NoteEdge(state_.pc);
      break;
    case Opcode::kWfi:
      if (target_ && target_->IrqVector() == 0) {
        if (Status rs = target_->Run(16); !rs.ok()) {
          out.status = RunStatus::kHardwareError;
          out.fault_pc = state_.pc;
          out.reason = "hardware run failed: " + rs.ToString();
          return out;
        }
        if (target_->IrqVector() == 0) {
          if ((state_.mstatus & kMstatusMie) == 0) {
            out.status = RunStatus::kWaiting;
            out.reason = "wfi with interrupts masked";
            return out;
          }
          return out;  // keep waiting at the same pc
        }
      }
      state_.pc = next_pc;
      break;
    case Opcode::kFence:
      state_.pc = next_pc;
      break;
  }

  if (target_) {
    if (Status rs = target_->Run(cycles_per_instruction_); !rs.ok()) {
      // Losing the target mid-instruction is an infrastructure event, not
      // a firmware bug and not a VM invariant violation: surface it so
      // the analysis layer can fail over / re-provision.
      out.status = RunStatus::kHardwareError;
      out.fault_pc = state_.pc;
      out.reason = "hardware run failed: " + rs.ToString();
    }
  }
  return out;
}

RunOutcome Cpu::Run(uint64_t max_instructions) {
  RunOutcome out;
  for (uint64_t i = 0; i < max_instructions; ++i) {
    out = Step();
    if (out.status != RunStatus::kRunning) return out;
  }
  out.status = RunStatus::kRunning;
  return out;
}

}  // namespace hardsnap::vm
