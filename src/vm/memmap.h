// Physical memory map of the HardSnap virtual machine.
//
//   0x0000_0000 .. 0x0000_ffff   ROM   (firmware image, read-only)
//   0x1000_0000 .. 0x1003_ffff   RAM   (data, stack)
//   0x4000_0000 .. 0x4000_ffff   MMIO  -> forwarded to the hardware target
//                                (low 16 bits form the SoC bus address:
//                                 addr[15:8] selects the peripheral region)
//   0x5000_0000                  host console: SW writes a character
//   0x5000_0004                  host exit:    SW writes the exit code
//
// The MMIO window is the virtual machine boundary of the paper: every
// access that lands in it leaves the symbolic domain and is forwarded to
// the active hardware target (after concretization if the address or data
// is symbolic).
#pragma once

#include <cstdint>

namespace hardsnap::vm {

inline constexpr uint32_t kRomBase = 0x00000000;
inline constexpr uint32_t kRomSize = 0x00010000;
inline constexpr uint32_t kRamBase = 0x10000000;
inline constexpr uint32_t kRamSize = 0x00040000;
inline constexpr uint32_t kMmioBase = 0x40000000;
inline constexpr uint32_t kMmioSize = 0x00010000;
inline constexpr uint32_t kHostPutchar = 0x50000000;
inline constexpr uint32_t kHostExit = 0x50000004;

inline constexpr uint32_t kStackTop = kRamBase + kRamSize;  // grows down

inline bool InRom(uint32_t addr) {
  return addr >= kRomBase && addr < kRomBase + kRomSize;
}
inline bool InRam(uint32_t addr) {
  return addr >= kRamBase && addr < kRamBase + kRamSize;
}
inline bool InMmio(uint32_t addr) {
  return addr >= kMmioBase && addr < kMmioBase + kMmioSize;
}

// SoC peripheral addressing helpers (region index = SoC addr bits 15:8).
inline constexpr uint32_t PeripheralAddr(uint32_t region, uint32_t reg) {
  return kMmioBase | (region << 8) | reg;
}

}  // namespace hardsnap::vm
