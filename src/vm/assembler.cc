#include "vm/assembler.h"

#include <cctype>
#include <optional>

#include "vm/isa.h"

namespace hardsnap::vm {

namespace {

struct Operand {
  enum Kind { kReg, kImm, kSymbol, kMem } kind;
  uint8_t reg = 0;       // kReg / kMem base
  int64_t imm = 0;       // kImm / kMem offset
  std::string symbol;    // kSymbol
};

struct ParsedLine {
  int number = 0;
  std::string label;     // without ':'
  std::string mnemonic;  // lower-case, may be a directive (".word")
  std::vector<Operand> operands;
};

Status ErrAt(int line, const std::string& msg) {
  return ParseError("asm line " + std::to_string(line) + ": " + msg);
}

std::optional<uint8_t> ParseReg(const std::string& tok) {
  static const std::map<std::string, uint8_t> abi = [] {
    std::map<std::string, uint8_t> m;
    for (unsigned i = 0; i < 32; ++i) {
      m[RegName(i)] = static_cast<uint8_t>(i);
      m["x" + std::to_string(i)] = static_cast<uint8_t>(i);
    }
    m["fp"] = 8;
    return m;
  }();
  auto it = abi.find(tok);
  if (it == abi.end()) return std::nullopt;
  return it->second;
}

std::optional<int64_t> ParseNumber(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  size_t i = 0;
  bool neg = false;
  if (tok[0] == '-') { neg = true; i = 1; }
  if (i >= tok.size()) return std::nullopt;
  int64_t value = 0;
  if (tok.size() > i + 1 && tok[i] == '0' &&
      (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
    for (size_t j = i + 2; j < tok.size(); ++j) {
      char c = static_cast<char>(std::tolower(tok[j]));
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c == '_') continue;
      else return std::nullopt;
      value = value * 16 + d;
    }
  } else {
    for (size_t j = i; j < tok.size(); ++j) {
      if (tok[j] == '_') continue;
      if (!std::isdigit(static_cast<unsigned char>(tok[j]))) return std::nullopt;
      value = value * 10 + (tok[j] - '0');
    }
  }
  return neg ? -value : value;
}

// Split "lw a0, 8(sp)" operands on commas (parens kept together).
std::vector<std::string> SplitOperands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  for (auto& tok : out) {
    size_t b = tok.find_first_not_of(" \t");
    size_t e = tok.find_last_not_of(" \t");
    tok = b == std::string::npos ? "" : tok.substr(b, e - b + 1);
  }
  return out;
}

Result<Operand> ParseOperand(const std::string& tok, int line) {
  Operand op;
  // mem form: imm(reg)
  size_t lp = tok.find('(');
  if (lp != std::string::npos && tok.back() == ')') {
    const std::string off = tok.substr(0, lp);
    const std::string base = tok.substr(lp + 1, tok.size() - lp - 2);
    auto reg = ParseReg(base);
    if (!reg) return ErrAt(line, "bad base register '" + base + "'");
    auto imm = off.empty() ? std::optional<int64_t>(0) : ParseNumber(off);
    if (!imm) return ErrAt(line, "bad memory offset '" + off + "'");
    op.kind = Operand::kMem;
    op.reg = *reg;
    op.imm = *imm;
    return op;
  }
  if (auto reg = ParseReg(tok)) {
    op.kind = Operand::kReg;
    op.reg = *reg;
    return op;
  }
  if (auto imm = ParseNumber(tok)) {
    op.kind = Operand::kImm;
    op.imm = *imm;
    return op;
  }
  // symbol (label or CSR name)
  op.kind = Operand::kSymbol;
  op.symbol = tok;
  return op;
}

std::optional<uint32_t> CsrByName(const std::string& name) {
  if (name == "mstatus") return kCsrMstatus;
  if (name == "mtvec") return kCsrMtvec;
  if (name == "mepc") return kCsrMepc;
  if (name == "mcause") return kCsrMcause;
  return std::nullopt;
}

class Assembler {
 public:
  explicit Assembler(uint32_t base) : base_(base) {}

  Result<FirmwareImage> Run(const std::string& source) {
    HS_RETURN_IF_ERROR(ParseLines(source));
    HS_RETURN_IF_ERROR(Layout());   // pass 1: sizes + symbols
    HS_RETURN_IF_ERROR(EmitAll());  // pass 2: encode
    FirmwareImage img;
    img.base = base_;
    img.bytes = std::move(image_);
    img.symbols = std::move(symbols_);
    return img;
  }

 private:
  // Size in bytes each mnemonic occupies (pseudo-expansion aware).
  Result<uint32_t> SizeOf(const ParsedLine& l) {
    const std::string& m = l.mnemonic;
    if (m == ".org" || m.empty()) return 0u;
    if (m == ".word") return static_cast<uint32_t>(4 * l.operands.size());
    if (m == ".space") {
      if (l.operands.size() != 1 || l.operands[0].kind != Operand::kImm)
        return ErrAt(l.number, ".space needs a byte count");
      return static_cast<uint32_t>(l.operands[0].imm);
    }
    if (m == "li" || m == "la") return 8;  // worst case lui+addi
    return 4;
  }

  Status ParseLines(const std::string& source) {
    std::string line;
    int number = 0;
    size_t pos = 0;
    while (pos <= source.size()) {
      size_t nl = source.find('\n', pos);
      if (nl == std::string::npos) nl = source.size();
      line = source.substr(pos, nl - pos);
      pos = nl + 1;
      ++number;

      // strip comments
      for (const char* marker : {"#", "//"}) {
        size_t c = line.find(marker);
        if (c != std::string::npos) line = line.substr(0, c);
      }
      // trim
      size_t b = line.find_first_not_of(" \t\r");
      if (b == std::string::npos) continue;
      size_t e = line.find_last_not_of(" \t\r");
      line = line.substr(b, e - b + 1);

      ParsedLine pl;
      pl.number = number;
      // label?
      size_t colon = line.find(':');
      if (colon != std::string::npos &&
          line.find_first_of(" \t\"") > colon) {
        pl.label = line.substr(0, colon);
        line = line.substr(colon + 1);
        size_t b2 = line.find_first_not_of(" \t");
        line = b2 == std::string::npos ? "" : line.substr(b2);
      }
      if (!line.empty()) {
        size_t sp = line.find_first_of(" \t");
        pl.mnemonic = line.substr(0, sp);
        for (auto& c : pl.mnemonic) c = static_cast<char>(std::tolower(c));
        if (sp != std::string::npos) {
          for (const std::string& tok : SplitOperands(line.substr(sp + 1))) {
            if (tok.empty()) return ErrAt(number, "empty operand");
            auto op = ParseOperand(tok, number);
            if (!op.ok()) return op.status();
            pl.operands.push_back(std::move(op).value());
          }
        }
      }
      lines_.push_back(std::move(pl));
    }
    return Status::Ok();
  }

  Status Layout() {
    uint32_t pc = base_;
    for (const auto& l : lines_) {
      if (!l.label.empty()) {
        if (symbols_.count(l.label))
          return ErrAt(l.number, "duplicate label '" + l.label + "'");
        symbols_[l.label] = pc;
      }
      if (l.mnemonic == ".org") {
        if (l.operands.size() != 1 || l.operands[0].kind != Operand::kImm)
          return ErrAt(l.number, ".org needs an address");
        const uint32_t target = static_cast<uint32_t>(l.operands[0].imm);
        if (target < pc) return ErrAt(l.number, ".org cannot move backward");
        pc = target;
        if (!l.label.empty()) symbols_[l.label] = pc;
        continue;
      }
      auto size = SizeOf(l);
      if (!size.ok()) return size.status();
      pc += size.value();
    }
    return Status::Ok();
  }

  Result<int64_t> ImmOrSymbol(const Operand& op, int line) {
    if (op.kind == Operand::kImm) return op.imm;
    if (op.kind == Operand::kSymbol) {
      auto it = symbols_.find(op.symbol);
      if (it == symbols_.end())
        return ErrAt(line, "unknown symbol '" + op.symbol + "'");
      return static_cast<int64_t>(it->second);
    }
    return ErrAt(line, "expected immediate or symbol");
  }

  Status EmitWord(uint32_t word) {
    const uint32_t off = pc_ - base_;
    if (image_.size() < off + 4) image_.resize(off + 4, 0);
    for (int i = 0; i < 4; ++i)
      image_[off + i] = static_cast<uint8_t>(word >> (8 * i));
    pc_ += 4;
    return Status::Ok();
  }

  Status EmitInstr(const Instruction& in, int line) {
    auto word = Encode(in);
    if (!word.ok())
      return ErrAt(line, "encode failed: " + word.status().ToString());
    return EmitWord(word.value());
  }

  // Branch/jump displacement to a target operand.
  Result<int32_t> Displacement(const Operand& op, int line) {
    auto target = ImmOrSymbol(op, line);
    if (!target.ok()) return target.status();
    return static_cast<int32_t>(target.value() - static_cast<int64_t>(pc_));
  }

  Status EmitLi(uint8_t rd, int64_t value, int line) {
    const int32_t v = static_cast<int32_t>(value);
    if (v >= -2048 && v < 2048) {
      HS_RETURN_IF_ERROR(
          EmitInstr({Opcode::kAddi, rd, 0, 0, v, 0}, line));
      return EmitInstr({Opcode::kAddi, rd, rd, 0, 0, 0}, line);  // pad (nop-like)
    }
    const uint32_t uv = static_cast<uint32_t>(v);
    const uint32_t hi = (uv + 0x800) & 0xfffff000u;
    const int32_t lo = static_cast<int32_t>(uv - hi);
    HS_RETURN_IF_ERROR(EmitInstr(
        {Opcode::kLui, rd, 0, 0, static_cast<int32_t>(hi), 0}, line));
    return EmitInstr({Opcode::kAddi, rd, rd, 0, lo, 0}, line);
  }

  Status EmitAll() {
    pc_ = base_;
    for (const auto& l : lines_) {
      if (l.mnemonic == ".org") {
        pc_ = static_cast<uint32_t>(l.operands[0].imm);
        const uint32_t off = pc_ - base_;
        if (image_.size() < off) image_.resize(off, 0);
        continue;
      }
      if (l.mnemonic.empty()) continue;
      HS_RETURN_IF_ERROR(EmitOne(l));
    }
    return Status::Ok();
  }

  Status EmitOne(const ParsedLine& l) {
    const std::string& m = l.mnemonic;
    const int line = l.number;
    const auto& ops = l.operands;
    auto need = [&](size_t n) -> Status {
      if (ops.size() != n)
        return ErrAt(line, m + " expects " + std::to_string(n) + " operands");
      return Status::Ok();
    };
    auto reg = [&](size_t i) { return ops[i].reg; };

    // --- directives ---------------------------------------------------
    if (m == ".word") {
      for (const auto& op : ops) {
        auto v = ImmOrSymbol(op, line);
        if (!v.ok()) return v.status();
        HS_RETURN_IF_ERROR(EmitWord(static_cast<uint32_t>(v.value())));
      }
      return Status::Ok();
    }
    if (m == ".space") {
      const uint32_t n = static_cast<uint32_t>(ops[0].imm);
      const uint32_t off = pc_ - base_;
      if (image_.size() < off + n) image_.resize(off + n, 0);
      pc_ += n;
      return Status::Ok();
    }

    // --- pseudo-instructions -------------------------------------------
    if (m == "nop") return EmitInstr({Opcode::kAddi, 0, 0, 0, 0, 0}, line);
    if (m == "mv") {
      HS_RETURN_IF_ERROR(need(2));
      return EmitInstr({Opcode::kAddi, reg(0), reg(1), 0, 0, 0}, line);
    }
    if (m == "li" || m == "la") {
      HS_RETURN_IF_ERROR(need(2));
      auto v = ImmOrSymbol(ops[1], line);
      if (!v.ok()) return v.status();
      return EmitLi(reg(0), v.value(), line);
    }
    if (m == "j") {
      HS_RETURN_IF_ERROR(need(1));
      auto d = Displacement(ops[0], line);
      if (!d.ok()) return d.status();
      return EmitInstr({Opcode::kJal, 0, 0, 0, d.value(), 0}, line);
    }
    if (m == "call") {
      HS_RETURN_IF_ERROR(need(1));
      auto d = Displacement(ops[0], line);
      if (!d.ok()) return d.status();
      return EmitInstr({Opcode::kJal, 1, 0, 0, d.value(), 0}, line);
    }
    if (m == "jr") {
      HS_RETURN_IF_ERROR(need(1));
      return EmitInstr({Opcode::kJalr, 0, reg(0), 0, 0, 0}, line);
    }
    if (m == "ret") return EmitInstr({Opcode::kJalr, 0, 1, 0, 0, 0}, line);
    if (m == "beqz" || m == "bnez") {
      HS_RETURN_IF_ERROR(need(2));
      auto d = Displacement(ops[1], line);
      if (!d.ok()) return d.status();
      return EmitInstr({m == "beqz" ? Opcode::kBeq : Opcode::kBne, 0, reg(0),
                        0, d.value(), 0},
                       line);
    }
    if (m == "csrr") {  // csrr rd, csr
      HS_RETURN_IF_ERROR(need(2));
      auto csr = CsrByName(ops[1].symbol);
      if (!csr) return ErrAt(line, "unknown CSR");
      Instruction in{Opcode::kCsrrs, reg(0), 0, 0, 0, *csr};
      return EmitInstr(in, line);
    }
    if (m == "csrw") {  // csrw csr, rs
      HS_RETURN_IF_ERROR(need(2));
      auto csr = CsrByName(ops[0].symbol);
      if (!csr) return ErrAt(line, "unknown CSR");
      Instruction in{Opcode::kCsrrw, 0, reg(1), 0, 0, *csr};
      return EmitInstr(in, line);
    }

    // --- simple no-operand instructions -------------------------------
    if (m == "ecall") return EmitInstr({Opcode::kEcall, 0, 0, 0, 0, 0}, line);
    if (m == "ebreak") return EmitInstr({Opcode::kEbreak, 0, 0, 0, 0, 0}, line);
    if (m == "mret") return EmitInstr({Opcode::kMret, 0, 0, 0, 0, 0}, line);
    if (m == "wfi") return EmitInstr({Opcode::kWfi, 0, 0, 0, 0, 0}, line);

    // --- real instructions by operand pattern ---------------------------
    static const std::map<std::string, Opcode> r_type = {
        {"add", Opcode::kAdd}, {"sub", Opcode::kSub}, {"sll", Opcode::kSll},
        {"slt", Opcode::kSlt}, {"sltu", Opcode::kSltu}, {"xor", Opcode::kXor},
        {"srl", Opcode::kSrl}, {"sra", Opcode::kSra}, {"or", Opcode::kOr},
        {"and", Opcode::kAnd}, {"mul", Opcode::kMul}, {"mulh", Opcode::kMulh},
        {"mulhsu", Opcode::kMulhsu}, {"mulhu", Opcode::kMulhu},
        {"div", Opcode::kDiv}, {"divu", Opcode::kDivu},
        {"rem", Opcode::kRem}, {"remu", Opcode::kRemu}};
    static const std::map<std::string, Opcode> i_type = {
        {"addi", Opcode::kAddi}, {"slti", Opcode::kSlti},
        {"sltiu", Opcode::kSltiu}, {"xori", Opcode::kXori},
        {"ori", Opcode::kOri}, {"andi", Opcode::kAndi},
        {"slli", Opcode::kSlli}, {"srli", Opcode::kSrli},
        {"srai", Opcode::kSrai}};
    static const std::map<std::string, Opcode> load_type = {
        {"lb", Opcode::kLb}, {"lh", Opcode::kLh}, {"lw", Opcode::kLw},
        {"lbu", Opcode::kLbu}, {"lhu", Opcode::kLhu}};
    static const std::map<std::string, Opcode> store_type = {
        {"sb", Opcode::kSb}, {"sh", Opcode::kSh}, {"sw", Opcode::kSw}};
    static const std::map<std::string, Opcode> branch_type = {
        {"beq", Opcode::kBeq}, {"bne", Opcode::kBne}, {"blt", Opcode::kBlt},
        {"bge", Opcode::kBge}, {"bltu", Opcode::kBltu},
        {"bgeu", Opcode::kBgeu}};

    if (auto it = r_type.find(m); it != r_type.end()) {
      HS_RETURN_IF_ERROR(need(3));
      return EmitInstr({it->second, reg(0), reg(1), reg(2), 0, 0}, line);
    }
    if (auto it = i_type.find(m); it != i_type.end()) {
      HS_RETURN_IF_ERROR(need(3));
      auto v = ImmOrSymbol(ops[2], line);
      if (!v.ok()) return v.status();
      return EmitInstr(
          {it->second, reg(0), reg(1), 0, static_cast<int32_t>(v.value()), 0},
          line);
    }
    if (auto it = load_type.find(m); it != load_type.end()) {
      HS_RETURN_IF_ERROR(need(2));
      if (ops[1].kind != Operand::kMem)
        return ErrAt(line, "load needs offset(base) operand");
      return EmitInstr({it->second, reg(0), ops[1].reg, 0,
                        static_cast<int32_t>(ops[1].imm), 0},
                       line);
    }
    if (auto it = store_type.find(m); it != store_type.end()) {
      HS_RETURN_IF_ERROR(need(2));
      if (ops[1].kind != Operand::kMem)
        return ErrAt(line, "store needs offset(base) operand");
      return EmitInstr({it->second, 0, ops[1].reg, reg(0),
                        static_cast<int32_t>(ops[1].imm), 0},
                       line);
    }
    if (auto it = branch_type.find(m); it != branch_type.end()) {
      HS_RETURN_IF_ERROR(need(3));
      auto d = Displacement(ops[2], line);
      if (!d.ok()) return d.status();
      return EmitInstr({it->second, 0, reg(0), reg(1), d.value(), 0}, line);
    }
    if (m == "jal") {  // jal rd, target
      HS_RETURN_IF_ERROR(need(2));
      auto d = Displacement(ops[1], line);
      if (!d.ok()) return d.status();
      return EmitInstr({Opcode::kJal, reg(0), 0, 0, d.value(), 0}, line);
    }
    if (m == "jalr") {  // jalr rd, offset(rs1)
      HS_RETURN_IF_ERROR(need(2));
      if (ops[1].kind != Operand::kMem)
        return ErrAt(line, "jalr needs offset(base) operand");
      return EmitInstr({Opcode::kJalr, reg(0), ops[1].reg, 0,
                        static_cast<int32_t>(ops[1].imm), 0},
                       line);
    }
    return ErrAt(line, "unknown mnemonic '" + m + "'");
  }

  uint32_t base_;
  uint32_t pc_ = 0;
  std::vector<ParsedLine> lines_;
  std::map<std::string, uint32_t> symbols_;
  std::vector<uint8_t> image_;
};

}  // namespace

Result<FirmwareImage> Assemble(const std::string& source, uint32_t base) {
  Assembler as(base);
  return as.Run(source);
}

}  // namespace hardsnap::vm
