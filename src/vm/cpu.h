// Concrete RV32IM CPU model.
//
// The fast path for concrete workloads (fuzzing, firmware bring-up,
// differential testing of the symbolic executor). Shares the decoder and
// memory map with the symbolic VM but executes over plain uint32_t.
//
// Like the symbolic executor, MMIO-window accesses are forwarded to a
// HardwareTarget and the hardware advances `cycles_per_instruction` per
// retired instruction. CpuState is a plain value: copy it out for a
// software snapshot, assign it back to restore — pair it with
// HardwareTarget::SaveState() for a full HardSnap-style SW+HW snapshot.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bus/target.h"
#include "common/status.h"
#include "vm/assembler.h"
#include "vm/isa.h"
#include "vm/memmap.h"

namespace hardsnap::vm {

struct CpuState {
  std::array<uint32_t, 32> regs{};
  uint32_t pc = 0;
  uint32_t mstatus = 0, mtvec = 0, mepc = 0, mcause = 0;
  bool in_interrupt = false;
  std::vector<uint8_t> ram;  // kRamSize bytes
  uint64_t icount = 0;
};

enum class RunStatus : uint8_t {
  kRunning,        // budget exhausted, resumable
  kExited,         // firmware wrote kHostExit
  kBug,            // memory violation / ebreak / illegal instruction
  kWaiting,        // wfi with interrupts disabled: cannot make progress
  kHardwareError,  // the hardware target's link failed (kUnavailable /
                   // kDeadlineExceeded): an infrastructure fault, NOT a
                   // firmware bug — fuzzers must not report it as a finding
};

struct RunOutcome {
  RunStatus status = RunStatus::kRunning;
  uint32_t exit_code = 0;
  uint32_t fault_pc = 0;
  std::string reason;
};

class Cpu {
 public:
  // `target` may be null for hardware-free firmware (MMIO then faults).
  Cpu(bus::HardwareTarget* target, unsigned cycles_per_instruction = 1);

  Status LoadFirmware(const FirmwareImage& image);

  // Execute up to `max_instructions`; returns early on exit/bug/wait.
  RunOutcome Run(uint64_t max_instructions);

  // Single step (exposed for tracing tools and tests).
  RunOutcome Step();

  // --- snapshotting -----------------------------------------------------
  const CpuState& state() const { return state_; }
  CpuState SnapshotSoftware() const { return state_; }
  void RestoreSoftware(const CpuState& snapshot) { state_ = snapshot; }

  // --- direct access ---------------------------------------------------
  uint32_t reg(unsigned i) const { return state_.regs[i]; }
  void set_reg(unsigned i, uint32_t v) {
    if (i != 0) state_.regs[i] = v;
  }
  uint32_t pc() const { return state_.pc; }
  void set_pc(uint32_t pc) { state_.pc = pc; }
  Status WriteRam(uint32_t addr, const std::vector<uint8_t>& bytes);
  Result<uint8_t> ReadRam(uint32_t addr) const;
  const std::string& console() const { return console_; }
  void ClearConsole() { console_.clear(); }

  // Basic-block-entry coverage observed since construction (for the
  // coverage-guided fuzzer): PCs that were targets of taken control flow.
  const std::vector<uint32_t>& coverage_log() const { return coverage_log_; }
  void ClearCoverageLog() { coverage_log_.clear(); }

 private:
  Result<uint32_t> Load(uint32_t addr, unsigned bytes);
  Status Store(uint32_t addr, uint32_t value, unsigned bytes,
               RunOutcome* outcome);
  void ServeInterrupt();
  void NoteEdge(uint32_t target_pc) { coverage_log_.push_back(target_pc); }

  bus::HardwareTarget* target_;
  unsigned cycles_per_instruction_;
  FirmwareImage image_;
  CpuState state_;
  std::string console_;
  std::vector<uint32_t> coverage_log_;
};

}  // namespace hardsnap::vm
