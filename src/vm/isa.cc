#include "vm/isa.h"

#include <cstdio>

namespace hardsnap::vm {

namespace {

uint32_t Bits(uint32_t w, int hi, int lo) {
  return (w >> lo) & ((1u << (hi - lo + 1)) - 1);
}

int32_t SignExt(uint32_t v, int bits) {
  const uint32_t sign = 1u << (bits - 1);
  return static_cast<int32_t>((v ^ sign) - sign);
}

}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kLui: return "lui";
    case Opcode::kAuipc: return "auipc";
    case Opcode::kJal: return "jal";
    case Opcode::kJalr: return "jalr";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kBltu: return "bltu";
    case Opcode::kBgeu: return "bgeu";
    case Opcode::kLb: return "lb";
    case Opcode::kLh: return "lh";
    case Opcode::kLw: return "lw";
    case Opcode::kLbu: return "lbu";
    case Opcode::kLhu: return "lhu";
    case Opcode::kSb: return "sb";
    case Opcode::kSh: return "sh";
    case Opcode::kSw: return "sw";
    case Opcode::kAddi: return "addi";
    case Opcode::kSlti: return "slti";
    case Opcode::kSltiu: return "sltiu";
    case Opcode::kXori: return "xori";
    case Opcode::kOri: return "ori";
    case Opcode::kAndi: return "andi";
    case Opcode::kSlli: return "slli";
    case Opcode::kSrli: return "srli";
    case Opcode::kSrai: return "srai";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kSll: return "sll";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kXor: return "xor";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kOr: return "or";
    case Opcode::kAnd: return "and";
    case Opcode::kMul: return "mul";
    case Opcode::kMulh: return "mulh";
    case Opcode::kMulhsu: return "mulhsu";
    case Opcode::kMulhu: return "mulhu";
    case Opcode::kDiv: return "div";
    case Opcode::kDivu: return "divu";
    case Opcode::kRem: return "rem";
    case Opcode::kRemu: return "remu";
    case Opcode::kCsrrw: return "csrrw";
    case Opcode::kCsrrs: return "csrrs";
    case Opcode::kCsrrc: return "csrrc";
    case Opcode::kEcall: return "ecall";
    case Opcode::kEbreak: return "ebreak";
    case Opcode::kMret: return "mret";
    case Opcode::kWfi: return "wfi";
    case Opcode::kFence: return "fence";
  }
  return "?";
}

const char* RegName(unsigned reg) {
  static const char* names[32] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  return reg < 32 ? names[reg] : "??";
}

Result<Instruction> Decode(uint32_t w) {
  Instruction in;
  const uint32_t opcode = Bits(w, 6, 0);
  const uint32_t rd = Bits(w, 11, 7);
  const uint32_t funct3 = Bits(w, 14, 12);
  const uint32_t rs1 = Bits(w, 19, 15);
  const uint32_t rs2 = Bits(w, 24, 20);
  const uint32_t funct7 = Bits(w, 31, 25);
  in.rd = static_cast<uint8_t>(rd);
  in.rs1 = static_cast<uint8_t>(rs1);
  in.rs2 = static_cast<uint8_t>(rs2);

  auto bad = [&]() -> Result<Instruction> {
    char buf[64];
    std::snprintf(buf, sizeof buf, "cannot decode instruction word 0x%08x", w);
    return InvalidArgument(buf);
  };

  switch (opcode) {
    case 0x37:
      in.op = Opcode::kLui;
      in.imm = static_cast<int32_t>(w & 0xfffff000u);
      return in;
    case 0x17:
      in.op = Opcode::kAuipc;
      in.imm = static_cast<int32_t>(w & 0xfffff000u);
      return in;
    case 0x6f: {
      in.op = Opcode::kJal;
      const uint32_t imm = (Bits(w, 31, 31) << 20) | (Bits(w, 19, 12) << 12) |
                           (Bits(w, 20, 20) << 11) | (Bits(w, 30, 21) << 1);
      in.imm = SignExt(imm, 21);
      return in;
    }
    case 0x67:
      if (funct3 != 0) return bad();
      in.op = Opcode::kJalr;
      in.imm = SignExt(Bits(w, 31, 20), 12);
      return in;
    case 0x63: {
      const uint32_t imm = (Bits(w, 31, 31) << 12) | (Bits(w, 7, 7) << 11) |
                           (Bits(w, 30, 25) << 5) | (Bits(w, 11, 8) << 1);
      in.imm = SignExt(imm, 13);
      switch (funct3) {
        case 0: in.op = Opcode::kBeq; return in;
        case 1: in.op = Opcode::kBne; return in;
        case 4: in.op = Opcode::kBlt; return in;
        case 5: in.op = Opcode::kBge; return in;
        case 6: in.op = Opcode::kBltu; return in;
        case 7: in.op = Opcode::kBgeu; return in;
        default: return bad();
      }
    }
    case 0x03:
      in.imm = SignExt(Bits(w, 31, 20), 12);
      switch (funct3) {
        case 0: in.op = Opcode::kLb; return in;
        case 1: in.op = Opcode::kLh; return in;
        case 2: in.op = Opcode::kLw; return in;
        case 4: in.op = Opcode::kLbu; return in;
        case 5: in.op = Opcode::kLhu; return in;
        default: return bad();
      }
    case 0x23: {
      const uint32_t imm = (Bits(w, 31, 25) << 5) | Bits(w, 11, 7);
      in.imm = SignExt(imm, 12);
      switch (funct3) {
        case 0: in.op = Opcode::kSb; return in;
        case 1: in.op = Opcode::kSh; return in;
        case 2: in.op = Opcode::kSw; return in;
        default: return bad();
      }
    }
    case 0x13:
      in.imm = SignExt(Bits(w, 31, 20), 12);
      switch (funct3) {
        case 0: in.op = Opcode::kAddi; return in;
        case 2: in.op = Opcode::kSlti; return in;
        case 3: in.op = Opcode::kSltiu; return in;
        case 4: in.op = Opcode::kXori; return in;
        case 6: in.op = Opcode::kOri; return in;
        case 7: in.op = Opcode::kAndi; return in;
        case 1:
          if (funct7 != 0) return bad();
          in.op = Opcode::kSlli;
          in.imm = static_cast<int32_t>(rs2);
          return in;
        case 5:
          in.imm = static_cast<int32_t>(rs2);
          if (funct7 == 0x00) { in.op = Opcode::kSrli; return in; }
          if (funct7 == 0x20) { in.op = Opcode::kSrai; return in; }
          return bad();
        default: return bad();
      }
    case 0x33:
      if (funct7 == 0x01) {
        switch (funct3) {
          case 0: in.op = Opcode::kMul; return in;
          case 1: in.op = Opcode::kMulh; return in;
          case 2: in.op = Opcode::kMulhsu; return in;
          case 3: in.op = Opcode::kMulhu; return in;
          case 4: in.op = Opcode::kDiv; return in;
          case 5: in.op = Opcode::kDivu; return in;
          case 6: in.op = Opcode::kRem; return in;
          case 7: in.op = Opcode::kRemu; return in;
        }
        return bad();
      }
      switch (funct3) {
        case 0:
          if (funct7 == 0x00) { in.op = Opcode::kAdd; return in; }
          if (funct7 == 0x20) { in.op = Opcode::kSub; return in; }
          return bad();
        case 1: if (funct7) return bad(); in.op = Opcode::kSll; return in;
        case 2: if (funct7) return bad(); in.op = Opcode::kSlt; return in;
        case 3: if (funct7) return bad(); in.op = Opcode::kSltu; return in;
        case 4: if (funct7) return bad(); in.op = Opcode::kXor; return in;
        case 5:
          if (funct7 == 0x00) { in.op = Opcode::kSrl; return in; }
          if (funct7 == 0x20) { in.op = Opcode::kSra; return in; }
          return bad();
        case 6: if (funct7) return bad(); in.op = Opcode::kOr; return in;
        case 7: if (funct7) return bad(); in.op = Opcode::kAnd; return in;
      }
      return bad();
    case 0x73:
      if (funct3 == 0) {
        if (w == 0x00000073) { in.op = Opcode::kEcall; return in; }
        if (w == 0x00100073) { in.op = Opcode::kEbreak; return in; }
        if (w == 0x30200073) { in.op = Opcode::kMret; return in; }
        if (w == 0x10500073) { in.op = Opcode::kWfi; return in; }
        return bad();
      }
      in.csr = Bits(w, 31, 20);
      switch (funct3) {
        case 1: in.op = Opcode::kCsrrw; return in;
        case 2: in.op = Opcode::kCsrrs; return in;
        case 3: in.op = Opcode::kCsrrc; return in;
        default: return bad();
      }
    case 0x0f:
      in.op = Opcode::kFence;
      return in;
    default:
      return bad();
  }
}

namespace {

uint32_t EncodeR(uint32_t funct7, uint8_t rs2, uint8_t rs1, uint32_t funct3,
                 uint8_t rd, uint32_t opcode) {
  return (funct7 << 25) | (uint32_t{rs2} << 20) | (uint32_t{rs1} << 15) |
         (funct3 << 12) | (uint32_t{rd} << 7) | opcode;
}

uint32_t EncodeI(int32_t imm, uint8_t rs1, uint32_t funct3, uint8_t rd,
                 uint32_t opcode) {
  return (static_cast<uint32_t>(imm & 0xfff) << 20) | (uint32_t{rs1} << 15) |
         (funct3 << 12) | (uint32_t{rd} << 7) | opcode;
}

uint32_t EncodeS(int32_t imm, uint8_t rs2, uint8_t rs1, uint32_t funct3,
                 uint32_t opcode) {
  const uint32_t i = static_cast<uint32_t>(imm);
  return (((i >> 5) & 0x7f) << 25) | (uint32_t{rs2} << 20) |
         (uint32_t{rs1} << 15) | (funct3 << 12) | ((i & 0x1f) << 7) | opcode;
}

uint32_t EncodeB(int32_t imm, uint8_t rs2, uint8_t rs1, uint32_t funct3) {
  const uint32_t i = static_cast<uint32_t>(imm);
  return (((i >> 12) & 1) << 31) | (((i >> 5) & 0x3f) << 25) |
         (uint32_t{rs2} << 20) | (uint32_t{rs1} << 15) | (funct3 << 12) |
         (((i >> 1) & 0xf) << 8) | (((i >> 11) & 1) << 7) | 0x63;
}

uint32_t EncodeJ(int32_t imm, uint8_t rd) {
  const uint32_t i = static_cast<uint32_t>(imm);
  return (((i >> 20) & 1) << 31) | (((i >> 1) & 0x3ff) << 21) |
         (((i >> 11) & 1) << 20) | (((i >> 12) & 0xff) << 12) |
         (uint32_t{rd} << 7) | 0x6f;
}

}  // namespace

Result<uint32_t> Encode(const Instruction& in) {
  switch (in.op) {
    case Opcode::kLui:
      return (static_cast<uint32_t>(in.imm) & 0xfffff000u) |
             (uint32_t{in.rd} << 7) | 0x37;
    case Opcode::kAuipc:
      return (static_cast<uint32_t>(in.imm) & 0xfffff000u) |
             (uint32_t{in.rd} << 7) | 0x17;
    case Opcode::kJal: return EncodeJ(in.imm, in.rd);
    case Opcode::kJalr: return EncodeI(in.imm, in.rs1, 0, in.rd, 0x67);
    case Opcode::kBeq: return EncodeB(in.imm, in.rs2, in.rs1, 0);
    case Opcode::kBne: return EncodeB(in.imm, in.rs2, in.rs1, 1);
    case Opcode::kBlt: return EncodeB(in.imm, in.rs2, in.rs1, 4);
    case Opcode::kBge: return EncodeB(in.imm, in.rs2, in.rs1, 5);
    case Opcode::kBltu: return EncodeB(in.imm, in.rs2, in.rs1, 6);
    case Opcode::kBgeu: return EncodeB(in.imm, in.rs2, in.rs1, 7);
    case Opcode::kLb: return EncodeI(in.imm, in.rs1, 0, in.rd, 0x03);
    case Opcode::kLh: return EncodeI(in.imm, in.rs1, 1, in.rd, 0x03);
    case Opcode::kLw: return EncodeI(in.imm, in.rs1, 2, in.rd, 0x03);
    case Opcode::kLbu: return EncodeI(in.imm, in.rs1, 4, in.rd, 0x03);
    case Opcode::kLhu: return EncodeI(in.imm, in.rs1, 5, in.rd, 0x03);
    case Opcode::kSb: return EncodeS(in.imm, in.rs2, in.rs1, 0, 0x23);
    case Opcode::kSh: return EncodeS(in.imm, in.rs2, in.rs1, 1, 0x23);
    case Opcode::kSw: return EncodeS(in.imm, in.rs2, in.rs1, 2, 0x23);
    case Opcode::kAddi: return EncodeI(in.imm, in.rs1, 0, in.rd, 0x13);
    case Opcode::kSlti: return EncodeI(in.imm, in.rs1, 2, in.rd, 0x13);
    case Opcode::kSltiu: return EncodeI(in.imm, in.rs1, 3, in.rd, 0x13);
    case Opcode::kXori: return EncodeI(in.imm, in.rs1, 4, in.rd, 0x13);
    case Opcode::kOri: return EncodeI(in.imm, in.rs1, 6, in.rd, 0x13);
    case Opcode::kAndi: return EncodeI(in.imm, in.rs1, 7, in.rd, 0x13);
    case Opcode::kSlli:
      return EncodeR(0x00, static_cast<uint8_t>(in.imm & 31), in.rs1, 1,
                     in.rd, 0x13);
    case Opcode::kSrli:
      return EncodeR(0x00, static_cast<uint8_t>(in.imm & 31), in.rs1, 5,
                     in.rd, 0x13);
    case Opcode::kSrai:
      return EncodeR(0x20, static_cast<uint8_t>(in.imm & 31), in.rs1, 5,
                     in.rd, 0x13);
    case Opcode::kAdd: return EncodeR(0x00, in.rs2, in.rs1, 0, in.rd, 0x33);
    case Opcode::kSub: return EncodeR(0x20, in.rs2, in.rs1, 0, in.rd, 0x33);
    case Opcode::kSll: return EncodeR(0x00, in.rs2, in.rs1, 1, in.rd, 0x33);
    case Opcode::kSlt: return EncodeR(0x00, in.rs2, in.rs1, 2, in.rd, 0x33);
    case Opcode::kSltu: return EncodeR(0x00, in.rs2, in.rs1, 3, in.rd, 0x33);
    case Opcode::kXor: return EncodeR(0x00, in.rs2, in.rs1, 4, in.rd, 0x33);
    case Opcode::kSrl: return EncodeR(0x00, in.rs2, in.rs1, 5, in.rd, 0x33);
    case Opcode::kSra: return EncodeR(0x20, in.rs2, in.rs1, 5, in.rd, 0x33);
    case Opcode::kOr: return EncodeR(0x00, in.rs2, in.rs1, 6, in.rd, 0x33);
    case Opcode::kAnd: return EncodeR(0x00, in.rs2, in.rs1, 7, in.rd, 0x33);
    case Opcode::kMul: return EncodeR(0x01, in.rs2, in.rs1, 0, in.rd, 0x33);
    case Opcode::kMulh: return EncodeR(0x01, in.rs2, in.rs1, 1, in.rd, 0x33);
    case Opcode::kMulhsu: return EncodeR(0x01, in.rs2, in.rs1, 2, in.rd, 0x33);
    case Opcode::kMulhu: return EncodeR(0x01, in.rs2, in.rs1, 3, in.rd, 0x33);
    case Opcode::kDiv: return EncodeR(0x01, in.rs2, in.rs1, 4, in.rd, 0x33);
    case Opcode::kDivu: return EncodeR(0x01, in.rs2, in.rs1, 5, in.rd, 0x33);
    case Opcode::kRem: return EncodeR(0x01, in.rs2, in.rs1, 6, in.rd, 0x33);
    case Opcode::kRemu: return EncodeR(0x01, in.rs2, in.rs1, 7, in.rd, 0x33);
    case Opcode::kCsrrw:
      return (in.csr << 20) | (uint32_t{in.rs1} << 15) | (1u << 12) |
             (uint32_t{in.rd} << 7) | 0x73;
    case Opcode::kCsrrs:
      return (in.csr << 20) | (uint32_t{in.rs1} << 15) | (2u << 12) |
             (uint32_t{in.rd} << 7) | 0x73;
    case Opcode::kCsrrc:
      return (in.csr << 20) | (uint32_t{in.rs1} << 15) | (3u << 12) |
             (uint32_t{in.rd} << 7) | 0x73;
    case Opcode::kEcall: return 0x00000073u;
    case Opcode::kEbreak: return 0x00100073u;
    case Opcode::kMret: return 0x30200073u;
    case Opcode::kWfi: return 0x10500073u;
    case Opcode::kFence: return 0x0000000fu;
  }
  return InvalidArgument("cannot encode instruction");
}

std::string Disassemble(const Instruction& in) {
  char buf[96];
  switch (in.op) {
    case Opcode::kLui:
    case Opcode::kAuipc:
      std::snprintf(buf, sizeof buf, "%s %s, 0x%x", OpcodeName(in.op),
                    RegName(in.rd), static_cast<uint32_t>(in.imm) >> 12);
      break;
    case Opcode::kJal:
      std::snprintf(buf, sizeof buf, "jal %s, %d", RegName(in.rd), in.imm);
      break;
    case Opcode::kJalr:
      std::snprintf(buf, sizeof buf, "jalr %s, %d(%s)", RegName(in.rd),
                    in.imm, RegName(in.rs1));
      break;
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %d", OpcodeName(in.op),
                    RegName(in.rs1), RegName(in.rs2), in.imm);
      break;
    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw:
    case Opcode::kLbu: case Opcode::kLhu:
      std::snprintf(buf, sizeof buf, "%s %s, %d(%s)", OpcodeName(in.op),
                    RegName(in.rd), in.imm, RegName(in.rs1));
      break;
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw:
      std::snprintf(buf, sizeof buf, "%s %s, %d(%s)", OpcodeName(in.op),
                    RegName(in.rs2), in.imm, RegName(in.rs1));
      break;
    case Opcode::kEcall: case Opcode::kEbreak: case Opcode::kMret:
    case Opcode::kWfi: case Opcode::kFence:
      std::snprintf(buf, sizeof buf, "%s", OpcodeName(in.op));
      break;
    case Opcode::kCsrrw: case Opcode::kCsrrs: case Opcode::kCsrrc:
      std::snprintf(buf, sizeof buf, "%s %s, 0x%x, %s", OpcodeName(in.op),
                    RegName(in.rd), in.csr, RegName(in.rs1));
      break;
    case Opcode::kAddi: case Opcode::kSlti: case Opcode::kSltiu:
    case Opcode::kXori: case Opcode::kOri: case Opcode::kAndi:
    case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %d", OpcodeName(in.op),
                    RegName(in.rd), RegName(in.rs1), in.imm);
      break;
    default:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %s", OpcodeName(in.op),
                    RegName(in.rd), RegName(in.rs1), RegName(in.rs2));
      break;
  }
  return buf;
}

}  // namespace hardsnap::vm
