// Snapshot-based coverage-guided fuzzing.
//
// The paper's motivation (Sec. II, citing Muench et al.): "fuzzing
// embedded systems requires to restart the target under test after each
// fuzzing input to reset a clean state ... restarting the embedded
// systems requires a complete reboot of the device which is extremely
// slow." HardSnap's snapshots remove the reboot: capture SW+HW state once
// after initialization, then restore per input.
//
// This module implements both disciplines over the concrete CPU so their
// cost can be compared (bench_fuzzing):
//   kSnapshotReset — one combined software+hardware snapshot taken at the
//                    harness point; restore per test case (HardSnap).
//   kRebootReset   — power-cycle the hardware and re-execute firmware from
//                    the entry point for every test case (the baseline).
//
// The fuzzer itself is a minimal but real coverage-guided loop: a corpus
// seeded with one input, per-input mutation (bit flips, byte sets,
// interesting constants, length-preserving), new-control-flow-edge
// tracking, and crash de-duplication by faulting pc.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bus/delta_support.h"
#include "bus/target.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "vm/cpu.h"

namespace hardsnap::fuzz {

enum class ResetStrategy : uint8_t { kSnapshotReset, kRebootReset };
const char* ResetStrategyName(ResetStrategy s);

struct FuzzOptions {
  ResetStrategy reset = ResetStrategy::kSnapshotReset;
  uint64_t seed = 1;
  uint32_t input_addr = 0x10000000;   // where inputs are injected (RAM)
  unsigned input_size = 8;
  uint64_t max_instructions_per_exec = 20000;
  // Instructions to execute from _start before the harness point where
  // the snapshot is taken (inputs must not be read before this point).
  uint64_t init_instructions = 0;     // 0 = snapshot immediately at entry
  // Modeled cost of one device reboot for the baseline strategy.
  Duration reboot_cost = Duration::Millis(250);
  unsigned cycles_per_instruction = 1;
  // Snapshot resets through the target's incremental interface when it
  // has one: the harness snapshot is the sync point, so each reset only
  // rewrites the chunks the execution dirtied (O(dirty), not O(state)).
  bool use_delta_snapshots = true;
};

// Rejects unusable option combinations (an input_size of 0 would make
// every mutation an empty-range draw — previously undefined behaviour in
// Rng::Below). Checked by Fuzzer::Run and by campaign front-ends, so a
// bad config is a reported error, not an abort.
Status ValidateFuzzOptions(const FuzzOptions& options);

struct Crash {
  uint32_t pc = 0;
  std::string reason;
  std::vector<uint8_t> input;
};

struct FuzzStats {
  uint64_t execs = 0;
  uint64_t total_instructions = 0;
  uint64_t corpus_size = 0;
  uint64_t edges_covered = 0;
  uint64_t crashes = 0;            // unique by faulting pc
  uint64_t reboots = 0;
  uint64_t snapshot_restores = 0;
  uint64_t delta_restores = 0;     // resets served by the delta fast path
  // Snapshot payload bytes moved over the target's snapshot path (full
  // restores count the whole state, delta resets only changed chunks).
  uint64_t snapshot_bytes_copied = 0;
  Duration reset_overhead;         // modeled time spent resetting state
  Duration hw_time;                // total modeled hardware time
  // Transport retry/fault counters from the target's framed link. Under
  // fault injection these grow while findings stay identical to a clean
  // run (retries draw from the link's own RNG stream, never this
  // fuzzer's mutation stream).
  bus::LinkStats link;
};

class Fuzzer {
 public:
  // `target` provides the peripherals; `image` is the firmware.
  Fuzzer(bus::HardwareTarget* target, const vm::FirmwareImage& image,
         FuzzOptions options);

  // Run `execs` test cases. Callable repeatedly; corpus persists.
  Result<FuzzStats> Run(uint64_t execs);

  const std::vector<Crash>& crashes() const { return crashes_; }
  const std::vector<std::vector<uint8_t>>& corpus() const { return corpus_; }
  const FuzzStats& stats() const { return stats_; }
  const FuzzOptions& options() const { return options_; }
  // Control-flow edges covered so far (hashed (from, to) pairs). Campaign
  // workers merge these into the global coverage map between batches.
  const std::set<uint64_t>& edges() const { return edges_; }

  // Position digest of the mutation RNG stream (Rng::StateDigest). Equal
  // digests after equal exec counts prove an exact resume replay.
  uint64_t RngDigest() const { return rng_.StateDigest(); }

  // Takes the harness-point snapshot now (validating options) if it has
  // not been taken yet; Run() does this lazily, but persistence wants the
  // harness state before the first batch to detect firmware/SoC drift
  // across a resume.
  Status EnsureSnapshotReady();
  bool snapshot_ready() const { return snapshot_ready_; }
  // Harness-point hardware state and its content hash (valid only once
  // snapshot_ready(); kSnapshotReset strategy).
  const sim::HardwareState& harness_state() const { return hw_snapshot_; }
  uint64_t harness_hash() const { return hw_snapshot_hash_; }

  // Adopt inputs found by other campaign workers as mutation parents.
  // Empty inputs are skipped. NOTE: imports change which parents the local
  // RNG stream selects, so a campaign that cross-pollinates trades the
  // replay-by-seed guarantee for input-level replay (see
  // docs/parallel_campaigns.md).
  void ImportCorpus(const std::vector<std::vector<uint8_t>>& inputs);

 private:
  Status PrepareSnapshot();
  Status ResetForNextExec();
  std::vector<uint8_t> Mutate(const std::vector<uint8_t>& parent);

  bus::HardwareTarget* target_;
  bus::DeltaSnapshotter* delta_ = nullptr;  // non-null if the target does
                                            // incremental snapshots
  vm::FirmwareImage image_;
  FuzzOptions options_;
  Rng rng_;

  vm::Cpu cpu_;
  bool snapshot_ready_ = false;
  vm::CpuState sw_snapshot_;
  sim::HardwareState hw_snapshot_;
  uint64_t hw_snapshot_hash_ = 0;  // delta reset base-hash check

  std::vector<std::vector<uint8_t>> corpus_;
  std::set<uint64_t> edges_;          // hashed (from, to) control-flow edges
  std::set<uint32_t> crash_pcs_;
  std::vector<Crash> crashes_;
  FuzzStats stats_;
  VirtualClock reset_clock_;
};

}  // namespace hardsnap::fuzz
