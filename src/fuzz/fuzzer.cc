#include "fuzz/fuzzer.h"

namespace hardsnap::fuzz {

const char* ResetStrategyName(ResetStrategy s) {
  switch (s) {
    case ResetStrategy::kSnapshotReset: return "snapshot";
    case ResetStrategy::kRebootReset: return "reboot";
  }
  return "?";
}

Status ValidateFuzzOptions(const FuzzOptions& options) {
  if (options.input_size == 0)
    return InvalidArgument("fuzz input_size must be >= 1");
  if (options.max_instructions_per_exec == 0)
    return InvalidArgument("fuzz max_instructions_per_exec must be >= 1");
  if (options.cycles_per_instruction == 0)
    return InvalidArgument("fuzz cycles_per_instruction must be >= 1");
  return Status::Ok();
}

Fuzzer::Fuzzer(bus::HardwareTarget* target, const vm::FirmwareImage& image,
               FuzzOptions options)
    : target_(target),
      image_(image),
      options_(options),
      rng_(options.seed),
      cpu_(target, options.cycles_per_instruction) {
  HS_CHECK(cpu_.LoadFirmware(image_).ok());
  corpus_.push_back(std::vector<uint8_t>(options_.input_size, 0));
  if (options_.use_delta_snapshots)
    delta_ = dynamic_cast<bus::DeltaSnapshotter*>(target);
}

void Fuzzer::ImportCorpus(const std::vector<std::vector<uint8_t>>& inputs) {
  for (const auto& input : inputs)
    if (!input.empty()) corpus_.push_back(input);
}

Status Fuzzer::PrepareSnapshot() {
  HS_RETURN_IF_ERROR(target_->ResetHardware());
  cpu_ = vm::Cpu(target_, options_.cycles_per_instruction);
  HS_RETURN_IF_ERROR(cpu_.LoadFirmware(image_));
  if (options_.init_instructions > 0) {
    auto out = cpu_.Run(options_.init_instructions);
    if (out.status == vm::RunStatus::kHardwareError)
      return Unavailable("target failed during init: " + out.reason);
    if (out.status != vm::RunStatus::kRunning)
      return FailedPrecondition(
          "firmware terminated during init (before the harness point): " +
          out.reason);
  }
  sw_snapshot_ = cpu_.SnapshotSoftware();
  auto hw = target_->SaveState();  // sync point: base for delta resets
  if (!hw.ok()) return hw.status();
  hw_snapshot_ = std::move(hw).value();
  hw_snapshot_hash_ = sim::HashState(hw_snapshot_);
  snapshot_ready_ = true;
  return Status::Ok();
}

Status Fuzzer::EnsureSnapshotReady() {
  HS_RETURN_IF_ERROR(ValidateFuzzOptions(options_));
  if (!snapshot_ready_) HS_RETURN_IF_ERROR(PrepareSnapshot());
  return Status::Ok();
}

Status Fuzzer::ResetForNextExec() {
  const Duration before = target_->clock().now();
  if (options_.reset == ResetStrategy::kSnapshotReset) {
    cpu_.RestoreSoftware(sw_snapshot_);
    bool restored = false;
    if (delta_) {
      // The harness snapshot IS the sync point, so an empty delta means
      // "revert whatever the execution dirtied" — O(dirty) on targets
      // with change tracking.
      sim::StateDelta revert = sim::EmptyDeltaFor(hw_snapshot_);
      revert.base_hash = hw_snapshot_hash_;
      if (delta_->RestoreStateDelta(revert).ok()) {
        ++stats_.delta_restores;
        restored = true;
      }
    }
    if (!restored) HS_RETURN_IF_ERROR(target_->RestoreState(hw_snapshot_));
    ++stats_.snapshot_restores;
  } else {
    // Full reboot: power-cycle the device, re-run firmware init.
    HS_RETURN_IF_ERROR(target_->ResetHardware());
    reset_clock_.Advance(options_.reboot_cost);
    cpu_ = vm::Cpu(target_, options_.cycles_per_instruction);
    HS_RETURN_IF_ERROR(cpu_.LoadFirmware(image_));
    if (options_.init_instructions > 0) {
      auto out = cpu_.Run(options_.init_instructions);
      if (out.status != vm::RunStatus::kRunning)
        return FailedPrecondition("firmware died during reboot init");
      stats_.total_instructions += options_.init_instructions;
    }
    ++stats_.reboots;
  }
  stats_.reset_overhead += (target_->clock().now() - before) +
                           (reset_clock_.now() - Duration());
  reset_clock_.Reset();
  return Status::Ok();
}

std::vector<uint8_t> Fuzzer::Mutate(const std::vector<uint8_t>& parent) {
  std::vector<uint8_t> input = parent;
  if (input.empty()) input.assign(options_.input_size, 0);
  const unsigned kind = static_cast<unsigned>(rng_.Below(4));
  const size_t pos = rng_.Below(input.size());
  switch (kind) {
    case 0:  // bit flip
      input[pos] ^= static_cast<uint8_t>(1u << rng_.Below(8));
      break;
    case 1:  // random byte
      input[pos] = static_cast<uint8_t>(rng_.Bits(8));
      break;
    case 2: {  // interesting constants
      static const uint8_t kInteresting[] = {0,    1,    0x10, 0x20, 0x40,
                                             0x7f, 0x80, 0xff, 0xfe, 16};
      input[pos] = kInteresting[rng_.Below(sizeof kInteresting)];
      break;
    }
    default: {  // arithmetic nudge
      input[pos] = static_cast<uint8_t>(input[pos] +
                                        static_cast<int>(rng_.Range(1, 8)) -
                                        4);
      break;
    }
  }
  return input;
}

Result<FuzzStats> Fuzzer::Run(uint64_t execs) {
  HS_RETURN_IF_ERROR(ValidateFuzzOptions(options_));
  if (!snapshot_ready_) HS_RETURN_IF_ERROR(PrepareSnapshot());

  for (uint64_t e = 0; e < execs; ++e) {
    HS_RETURN_IF_ERROR(ResetForNextExec());

    const auto& parent = corpus_[rng_.Below(corpus_.size())];
    std::vector<uint8_t> input = Mutate(parent);
    HS_RETURN_IF_ERROR(cpu_.WriteRam(options_.input_addr, input));

    cpu_.ClearCoverageLog();
    const uint64_t icount_before = cpu_.state().icount;
    auto out = cpu_.Run(options_.max_instructions_per_exec);
    if (out.status == vm::RunStatus::kHardwareError) {
      // Infrastructure failure, NOT a finding: the input did nothing
      // wrong, the link to the target died. Surface it so the campaign
      // layer can fail over / re-provision. The interrupted exec is not
      // counted and its partial coverage is not recorded — a fresh
      // Fuzzer with the same seed replays the credited prefix exactly.
      stats_.link = target_->stats().link;
      return Unavailable("target failed mid-execution: " + out.reason);
    }
    stats_.total_instructions += cpu_.state().icount - icount_before;
    ++stats_.execs;

    // Edge coverage: hash consecutive control-flow targets.
    bool new_coverage = false;
    uint32_t prev = 0;
    for (uint32_t pc : cpu_.coverage_log()) {
      const uint64_t edge = (uint64_t{prev} << 32) | pc;
      if (edges_.insert(edge).second) new_coverage = true;
      prev = pc;
    }
    if (new_coverage) corpus_.push_back(input);

    if (out.status == vm::RunStatus::kBug &&
        crash_pcs_.insert(out.fault_pc).second) {
      Crash crash;
      crash.pc = out.fault_pc;
      crash.reason = out.reason;
      crash.input = input;
      crashes_.push_back(std::move(crash));
    }
  }

  stats_.corpus_size = corpus_.size();
  stats_.edges_covered = edges_.size();
  stats_.crashes = crashes_.size();
  stats_.hw_time = target_->clock().now();
  stats_.snapshot_bytes_copied = target_->stats().snapshot_bytes_copied;
  stats_.link = target_->stats().link;
  return stats_;
}

}  // namespace hardsnap::fuzz
