// Synthetic firmware corpus (paper Sec. V: "we demonstrate the capability
// of our tool on a synthetic design composed of open-source hardware
// peripherals and firmware").
//
// Each function returns RV32 assembly for the SoC built by
// periph::BuildSoc(periph::DefaultCorpus()):
//   region 0 timer, region 1 uart, region 2 aes, region 3 sha
// mapped at the VM's MMIO window (0x4000_0000 | region<<8 | reg).
//
// Expected crypto values embedded in the firmware are computed from the
// golden reference models at generation time, never hardcoded.
#pragma once

#include <string>

namespace hardsnap::firmware {

// Fig. 1 scenario: one symbolic input selects REQ A or REQ B; both paths
// drive the shared AES accelerator and check the result.
//   * Path A traps (ebreak) if its ciphertext is WRONG  — a check that
//     never fires on consistent hardware (inconsistent co-testing turns it
//     into a false positive).
//   * Path B traps if its ciphertext is RIGHT — a planted "real bug" that
//     consistent analysis must find (inconsistent co-testing misses it:
//     false negative).
// MakeSymbolicRegister(10, ...) must be called to make a0 symbolic.
std::string Fig1ConsistencyFirmware();

// Branchy driver for the snapshot-speedup experiment (E4): an expensive
// init sequence (init_loops x ~6 instructions of UART configuration),
// then `branches` sequential symbolic branches each doing peripheral work
// — 2^branches paths sharing the init prefix. Symbolic input: a0.
std::string BranchTreeFirmware(unsigned branches, unsigned init_loops);

// Vulnerable driver for bug-finding demos: parses a "packet" from a
// symbolic 8-byte region at RAM base (MakeSymbolicRegion) where byte 0 is
// a length field copied into a 16-byte buffer at the top of RAM without
// bounds checking: lengths > 16 write beyond RAM (out-of-bounds store).
std::string VulnerableParserFirmware();

// Timer-interrupt blinky: programs the timer, enables machine interrupts,
// counts expirations in the handler, exits after `ticks` interrupts.
std::string TimerInterruptFirmware(unsigned ticks);

// AES driver smoke test: encrypts a fixed vector, compares all four output
// words against the reference model, exits 0 on success / traps on
// mismatch. Fully concrete (no symbolic input needed).
std::string AesSelfTestFirmware();

// SHA-256 driver: hashes "abc" (pre-padded block) on the accelerator and
// verifies the first two digest words. Fully concrete.
std::string ShaSelfTestFirmware();

// UART loopback echo: pushes `count` bytes through the UART in loopback
// mode using the RX interrupt, verifies the received sequence, exit 0.
std::string UartIrqEchoFirmware(unsigned count);

// Secure-boot bypass scenario: the boot ROM hashes a 1-byte "image"
// (RAM+0) on the SHA-256 accelerator and compares the first two digest
// words against an expected value stored in UNPROTECTED RAM (+0x10).
// Only image byte 0x42 is genuine; booting anything else is the planted
// vulnerability (ebreak at label `bug_boot_bypass`). Because both the
// image and the expected digest are attacker-controlled, symbolic
// execution synthesizes the full exploit: a tampered image plus the
// matching forged digest, computed through the real accelerator RTL.
// Mark RAM+0 (1 byte) and RAM+0x10 (8 bytes) symbolic.
std::string SecureBootFirmware();

}  // namespace hardsnap::firmware
