#include "firmware/corpus.h"

#include <array>
#include <cstdio>

#include "periph/ref_models.h"

namespace hardsnap::firmware {

namespace {

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

// First ciphertext word for AES-128 with key word0 = kw0 and plaintext
// word0 = pw0 (all other words zero), matching the peripheral's register
// layout (big-endian words).
uint32_t AesOutWord0(uint32_t kw0, uint32_t pw0) {
  std::array<uint8_t, 16> key{}, pt{};
  for (int b = 0; b < 4; ++b) {
    key[b] = static_cast<uint8_t>(kw0 >> (24 - 8 * b));
    pt[b] = static_cast<uint8_t>(pw0 >> (24 - 8 * b));
  }
  auto ct = periph::ref::Aes128Encrypt(key, pt);
  return (uint32_t{ct[0]} << 24) | (uint32_t{ct[1]} << 16) |
         (uint32_t{ct[2]} << 8) | uint32_t{ct[3]};
}

constexpr uint32_t kTimerBase = 0x40000000;
constexpr uint32_t kUartBase = 0x40000100;
constexpr uint32_t kAesBase = 0x40000200;
constexpr uint32_t kShaBase = 0x40000300;
constexpr uint32_t kExitAddr = 0x50000004;

const char* kExitSeq = R"(
finish:
  li t0, 0x50000004
  sw a0, 0(t0)
)";

}  // namespace

std::string Fig1ConsistencyFirmware() {
  const uint32_t key_a = 0x11111111, in_a = 0xa0a0a0a0;
  const uint32_t key_b = 0x22222222, in_b = 0xb5b5b5b5;
  const uint32_t exp_a = AesOutWord0(key_a, in_a);
  const uint32_t exp_b = AesOutWord0(key_b, in_b);

  std::string src;
  src += "_start:\n";
  src += "  andi a0, a0, 1\n";
  src += "  bnez a0, path_b\n";
  // ---- REQ A ----
  src += "path_a:\n";
  src += "  li t1, " + Hex(kAesBase) + "\n";
  src += "  li t2, " + Hex(key_a) + "\n";
  src += "  sw t2, 0x10(t1)\n";
  src += "  li t2, " + Hex(in_a) + "\n";
  src += "  sw t2, 0x20(t1)\n";
  src += "  li t2, 1\n";
  src += "  sw t2, 0(t1)\n";
  src += "wait_a:\n";
  src += "  lw t3, 4(t1)\n";
  src += "  andi t3, t3, 2\n";
  src += "  beqz t3, wait_a\n";
  src += "  lw t4, 0x30(t1)\n";
  src += "  li t5, " + Hex(exp_a) + "\n";
  src += "  beq t4, t5, good_a\n";
  src += "bug_false_positive:\n";
  src += "  ebreak            # unreachable on consistent hardware\n";
  src += "good_a:\n";
  src += "  li a0, 0\n";
  src += "  j finish\n";
  // ---- REQ B ----
  src += "path_b:\n";
  src += "  li t1, " + Hex(kAesBase) + "\n";
  src += "  li t2, " + Hex(key_b) + "\n";
  src += "  sw t2, 0x10(t1)\n";
  src += "  li t2, " + Hex(in_b) + "\n";
  src += "  sw t2, 0x20(t1)\n";
  src += "  li t2, 1\n";
  src += "  sw t2, 0(t1)\n";
  src += "wait_b:\n";
  src += "  lw t3, 4(t1)\n";
  src += "  andi t3, t3, 2\n";
  src += "  beqz t3, wait_b\n";
  src += "  lw t4, 0x30(t1)\n";
  src += "  li t5, " + Hex(exp_b) + "\n";
  src += "  bne t4, t5, miss_b\n";
  src += "bug_real:\n";
  src += "  ebreak            # the planted bug: fires on CORRECT hardware\n";
  src += "miss_b:\n";
  src += "  li a0, 1\n";
  src += kExitSeq;
  return src;
}

std::string BranchTreeFirmware(unsigned branches, unsigned init_loops) {
  std::string src;
  src += "_start:\n";
  // Expensive init prefix (UART configuration churn).
  src += "  li t0, " + Hex(kUartBase) + "\n";
  src += "  li t1, " + std::to_string(init_loops) + "\n";
  src += "init_loop:\n";
  src += "  li t2, 0x10007\n";
  src += "  sw t2, 0(t0)\n";
  src += "  addi t1, t1, -1\n";
  src += "  bnez t1, init_loop\n";
  // Branch tree over the bits of a0 with per-branch peripheral work.
  src += "  li s0, " + Hex(kTimerBase) + "\n";
  src += "  mv s1, a0\n";
  for (unsigned i = 0; i < branches; ++i) {
    const std::string n = std::to_string(i);
    src += "branch_" + n + ":\n";
    src += "  andi t3, s1, 1\n";
    src += "  srli s1, s1, 1\n";
    src += "  beqz t3, skip_" + n + "\n";
    src += "  li t4, " + std::to_string(i + 1) + "\n";
    src += "  sw t4, 8(s0)\n";    // program the prescaler
    src += "  j next_" + n + "\n";
    src += "skip_" + n + ":\n";
    src += "  lw t4, 0xc(s0)\n";  // poke the status register instead
    src += "next_" + n + ":\n";
    src += "  nop\n";
  }
  src += "  li a0, 0\n";
  src += kExitSeq;
  return src;
}

std::string VulnerableParserFirmware() {
  std::string src;
  src += "_start:\n";
  src += "  li t0, 0x10000000\n";   // symbolic packet: [len, payload...]
  src += "  lbu t1, 0(t0)\n";
  src += "  li t2, 0x1003fff0\n";   // 16-byte buffer at the top of RAM
  src += "  li t3, 0\n";
  src += "copy:\n";
  src += "  beq t3, t1, done\n";
  src += "  add t4, t0, t3\n";
  src += "  lbu t5, 1(t4)\n";
  src += "  add t6, t2, t3\n";
  src += "  sb t5, 0(t6)\n";        // out of RAM once t3 >= 16
  src += "  addi t3, t3, 1\n";
  src += "  j copy\n";
  src += "done:\n";
  src += "  li a0, 0\n";
  src += kExitSeq;
  return src;
}

std::string TimerInterruptFirmware(unsigned ticks) {
  std::string src;
  src += "_start:\n";
  src += "  j main\n";
  src += "  .org 0x40\n";
  src += "isr:\n";
  src += "  li s10, " + Hex(kTimerBase) + "\n";
  src += "  sw zero, 0xc(s10)\n";   // acknowledge: clear expired
  src += "  addi s9, s9, 1\n";
  src += "  mret\n";
  src += "main:\n";
  src += "  la t0, isr\n";
  src += "  csrw mtvec, t0\n";
  src += "  li t1, " + Hex(kTimerBase) + "\n";
  src += "  li t2, 5\n";
  src += "  sw t2, 4(t1)\n";        // LOAD = 5
  src += "  li t2, 7\n";
  src += "  sw t2, 0(t1)\n";        // enable | irq_en | auto-reload
  src += "  li t3, 8\n";
  src += "  csrw mstatus, t3\n";    // MIE
  src += "wait:\n";
  src += "  li t4, " + std::to_string(ticks) + "\n";
  src += "  blt s9, t4, wait\n";
  src += "  mv a0, zero\n";
  src += kExitSeq;
  return src;
}

std::string AesSelfTestFirmware() {
  // FIPS-197 style vector: key = 000102...0f, pt = 00112233..ff.
  std::array<uint8_t, 16> key{}, pt{};
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<uint8_t>(i);
    pt[i] = static_cast<uint8_t>(0x11 * i);
  }
  auto ct = periph::ref::Aes128Encrypt(key, pt);
  auto word = [](const std::array<uint8_t, 16>& b, int w) {
    return (uint32_t{b[4 * w]} << 24) | (uint32_t{b[4 * w + 1]} << 16) |
           (uint32_t{b[4 * w + 2]} << 8) | uint32_t{b[4 * w + 3]};
  };

  std::string src;
  src += "_start:\n";
  src += "  li t1, " + Hex(kAesBase) + "\n";
  for (int w = 0; w < 4; ++w) {
    src += "  li t2, " + Hex(word(key, w)) + "\n";
    src += "  sw t2, " + std::to_string(0x10 + 4 * w) + "(t1)\n";
    src += "  li t2, " + Hex(word(pt, w)) + "\n";
    src += "  sw t2, " + std::to_string(0x20 + 4 * w) + "(t1)\n";
  }
  src += "  li t2, 1\n";
  src += "  sw t2, 0(t1)\n";
  src += "busy:\n";
  src += "  lw t3, 4(t1)\n";
  src += "  andi t3, t3, 2\n";
  src += "  beqz t3, busy\n";
  for (int w = 0; w < 4; ++w) {
    src += "  lw t4, " + std::to_string(0x30 + 4 * w) + "(t1)\n";
    src += "  li t5, " + Hex(word(ct, w)) + "\n";
    src += "  beq t4, t5, ok_" + std::to_string(w) + "\n";
    src += "  ebreak\n";
    src += "ok_" + std::to_string(w) + ":\n";
    src += "  nop\n";
  }
  src += "  li a0, 0\n";
  src += kExitSeq;
  return src;
}

std::string ShaSelfTestFirmware() {
  // Single padded block for "abc".
  std::array<uint32_t, 16> block{};
  block[0] = 0x61626380;
  block[15] = 24;
  auto state = periph::ref::Sha256H0();
  periph::ref::Sha256Compress(&state, block);

  std::string src;
  src += "_start:\n";
  src += "  li t1, " + Hex(kShaBase) + "\n";
  src += "  li t2, 4\n";
  src += "  sw t2, 0(t1)\n";  // CTRL.init
  for (int i = 0; i < 16; ++i) {
    src += "  li t2, " + Hex(block[i]) + "\n";
    src += "  sw t2, " + std::to_string(0x40 + 4 * i) + "(t1)\n";
  }
  src += "  li t2, 1\n";
  src += "  sw t2, 0(t1)\n";  // CTRL.start
  src += "busy:\n";
  src += "  lw t3, 4(t1)\n";
  src += "  andi t3, t3, 2\n";
  src += "  beqz t3, busy\n";
  for (int i = 0; i < 2; ++i) {
    src += "  lw t4, " + std::to_string(0x80 + 4 * i) + "(t1)\n";
    src += "  li t5, " + Hex(state[i]) + "\n";
    src += "  beq t4, t5, ok_" + std::to_string(i) + "\n";
    src += "  ebreak\n";
    src += "ok_" + std::to_string(i) + ":\n";
    src += "  nop\n";
  }
  src += "  li a0, 0\n";
  src += kExitSeq;
  return src;
}

std::string UartIrqEchoFirmware(unsigned count) {
  std::string src;
  src += "_start:\n";
  src += "  j main\n";
  src += "  .org 0x40\n";
  src += "isr:\n";
  src += "  li s10, " + Hex(kUartBase) + "\n";
  src += "  lw s11, 0xc(s10)\n";   // pop RX byte
  src += "  li s10, 0x10000100\n";
  src += "  add s10, s10, s9\n";
  src += "  sb s11, 0(s10)\n";
  src += "  addi s9, s9, 1\n";
  src += "  mret\n";
  src += "main:\n";
  src += "  la t0, isr\n";
  src += "  csrw mtvec, t0\n";
  src += "  li t1, " + Hex(kUartBase) + "\n";
  // divisor 7 | loopback | irq_en_rx
  src += "  li t2, 0x30007\n";
  src += "  sw t2, 0(t1)\n";
  src += "  li t3, 8\n";
  src += "  csrw mstatus, t3\n";
  // push the pattern (i*7+1)
  src += "  li t4, 0\n";
  src += "  li t5, 1\n";
  src += "push:\n";
  src += "  sw t5, 8(t1)\n";
  src += "  addi t5, t5, 7\n";
  src += "  andi t5, t5, 0xff\n";
  src += "  addi t4, t4, 1\n";
  src += "  li t6, " + std::to_string(count) + "\n";
  src += "  blt t4, t6, push\n";
  // wait for all bytes to arrive via the ISR
  src += "wait:\n";
  src += "  li t6, " + std::to_string(count) + "\n";
  src += "  blt s9, t6, wait\n";
  // verify
  src += "  li t0, 0x10000100\n";
  src += "  li t4, 0\n";
  src += "  li t5, 1\n";
  src += "check:\n";
  src += "  add t1, t0, t4\n";
  src += "  lbu t2, 0(t1)\n";
  src += "  beq t2, t5, match\n";
  src += "  ebreak\n";
  src += "match:\n";
  src += "  addi t5, t5, 7\n";
  src += "  andi t5, t5, 0xff\n";
  src += "  addi t4, t4, 1\n";
  src += "  li t6, " + std::to_string(count) + "\n";
  src += "  blt t4, t6, check\n";
  src += "  li a0, 0\n";
  src += kExitSeq;
  return src;
}

std::string SecureBootFirmware() {
  std::string src;
  src += "_start:\n";
  // Load the image byte and build the padded single-byte SHA block:
  // block word 0 = {image, 0x80, 0, 0}; word 15 = bit length (8).
  src += "  li s0, 0x10000000\n";     // image byte (symbolic)
  src += "  lbu s1, 0(s0)\n";
  src += "  li t1, " + Hex(kShaBase) + "\n";
  src += "  li t2, 4\n";
  src += "  sw t2, 0(t1)\n";           // CTRL.init (load H0)
  src += "  slli t3, s1, 24\n";        // image in the top byte
  src += "  li t4, 0x00800000\n";      // 0x80 padding marker
  src += "  or t3, t3, t4\n";
  src += "  sw t3, 0x40(t1)\n";        // block word 0
  src += "  li t3, 8\n";
  src += "  sw t3, 0x7c(t1)\n";        // block word 15: bit length
  src += "  li t2, 1\n";
  src += "  sw t2, 0(t1)\n";           // CTRL.start
  src += "hash_wait:\n";
  src += "  lw t3, 4(t1)\n";
  src += "  andi t3, t3, 2\n";
  src += "  beqz t3, hash_wait\n";
  // Compare digest words 0 and 1 against the expected value in
  // unprotected RAM (+0x10) — the planted design flaw.
  src += "  li s2, 0x10000010\n";
  src += "  lw t4, 0x80(t1)\n";
  src += "  lw t5, 0(s2)\n";
  src += "  bne t4, t5, reject\n";
  src += "  lw t4, 0x84(t1)\n";
  src += "  lw t5, 4(s2)\n";
  src += "  bne t4, t5, reject\n";
  // Signature accepted: boot. Only image 0x42 is genuine.
  src += "  li t6, 0x42\n";
  src += "  beq s1, t6, genuine\n";
  src += "bug_boot_bypass:\n";
  src += "  ebreak              # booted a tampered image\n";
  src += "genuine:\n";
  src += "  li a0, 0\n";
  src += "  j finish\n";
  src += "reject:\n";
  src += "  li a0, 1\n";
  src += kExitSeq;
  return src;
}

}  // namespace hardsnap::firmware
