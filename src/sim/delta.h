// Chunked copy-on-write snapshot deltas (the hot-path layer under the
// snapshot store).
//
// A HardwareState is viewed as a set of fixed-size "chunks" of 64-bit
// words: the flop vector is chunk space 0, memory m is chunk space 1+m.
// A StateDelta carries only the chunks that differ from some base state —
// the unit of dirty tracking in the Simulator, of structural sharing in
// snapshot::SnapshotStore, and of wire transfer in SerializeStateDelta.
//
// kChunkWords trades tracking precision against per-chunk overhead. The
// peripheral corpus here has O(100) flops and small FIFOs, so chunks are
// deliberately small; blksnap-style block trackers use the same scheme at
// disk-page granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace hardsnap::sim {

struct HardwareState;

inline constexpr uint32_t kChunkWords = 4;

// Number of chunks covering `words` words (the last chunk may be short).
inline uint32_t NumChunks(size_t words) {
  return static_cast<uint32_t>((words + kChunkWords - 1) / kChunkWords);
}

// One changed chunk: `space` 0 addresses the flop vector, 1+m memory m.
struct DeltaChunk {
  uint32_t space = 0;
  uint32_t index = 0;             // chunk index within the space
  std::vector<uint64_t> words;    // full chunk payload (tail chunks short)

  bool operator==(const DeltaChunk&) const = default;
};

// The chunks by which a state differs from a base state, plus the shape
// the delta applies to (so mismatched applications fail loudly).
struct StateDelta {
  uint64_t base_hash = 0;      // HashState() of the base; 0 = unchecked
  uint32_t chunk_words = kChunkWords;
  uint32_t num_flops = 0;
  std::vector<uint32_t> mem_depths;
  std::vector<DeltaChunk> chunks;

  size_t PayloadWords() const;
  size_t PayloadBytes() const { return PayloadWords() * 8; }
  bool ShapeMatches(const HardwareState& st) const;

  bool operator==(const StateDelta&) const = default;
};

// Content hash of a full state (FNV-1a over flop and memory words).
uint64_t HashState(const HardwareState& state);

// Total 64-bit words in a state (flops + all memory words).
size_t StateWords(const HardwareState& state);

// Shape-only delta: no chunks (applying it to its base is a no-op). Used
// to express "revert to the sync point" to a DeltaSnapshotter target.
StateDelta EmptyDeltaFor(const HardwareState& shape);

// Every chunk of `state` (a delta against an unknown/absent base).
StateDelta FullDelta(const HardwareState& state);

// All chunks of `next` that differ from `base`. Shapes must match; the
// result's base_hash binds it to `base`.
Result<StateDelta> DiffStates(const HardwareState& base,
                              const HardwareState& next);

// Overwrite the delta's chunks in `state`. Rejects shape mismatches and,
// when delta.base_hash is set, a `state` that is not the delta's base.
Status ApplyDeltaToState(HardwareState* state, const StateDelta& delta);

// Per-chunk dirty bitmap (one bit per chunk of one space).
class ChunkBitmap {
 public:
  void Resize(size_t words) {
    num_chunks_ = NumChunks(words);
    bits_.assign((num_chunks_ + 63) / 64, 0);
  }
  void MarkWord(size_t word) { Mark(word / kChunkWords); }
  void Mark(size_t chunk) { bits_[chunk >> 6] |= uint64_t{1} << (chunk & 63); }
  bool Test(size_t chunk) const {
    return (bits_[chunk >> 6] >> (chunk & 63)) & 1;
  }
  void ClearAll() { bits_.assign(bits_.size(), 0); }
  void MarkAll() {
    bits_.assign(bits_.size(), ~uint64_t{0});  // stray high bits are ignored
  }
  bool Any() const {
    for (uint64_t w : bits_)
      if (w != 0) return true;
    return false;
  }
  size_t num_chunks() const { return num_chunks_; }

 private:
  std::vector<uint64_t> bits_;
  size_t num_chunks_ = 0;
};

// Cumulative accounting of delta capture/restore work (per Simulator).
struct DeltaStats {
  uint64_t captures = 0;
  uint64_t restores = 0;
  uint64_t words_captured = 0;  // delta payload words emitted
  uint64_t words_restored = 0;  // words actually written into live state
  uint64_t full_words = 0;      // words a full copy would have moved
};

}  // namespace hardsnap::sim
