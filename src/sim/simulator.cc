#include "sim/simulator.h"

#include <algorithm>
#include <set>

#include "common/bitops.h"

namespace hardsnap::sim {

using rtl::Design;
using rtl::Expr;
using rtl::ExprId;
using rtl::Op;
using rtl::SignalId;
using rtl::SignalKind;

size_t HardwareState::CountBits(const rtl::Design& d) const {
  size_t bits = 0;
  for (size_t i = 0; i < flops.size(); ++i)
    bits += d.signal(d.flops()[i].q).width;
  for (size_t m = 0; m < memories.size(); ++m)
    bits += memories[m].size() * d.memory(static_cast<rtl::MemoryId>(m)).width;
  return bits;
}

Simulator::Simulator(const Design& design) : design_(design) {
  values_.assign(design.signals().size(), 0);
  memories_.resize(design.memories().size());
  for (size_t m = 0; m < memories_.size(); ++m)
    memories_[m].assign(design.memories()[m].depth, 0);
  flop_next_.assign(design.flops().size(), 0);

  flop_of_signal_.assign(design.signals().size(), -1);
  for (size_t i = 0; i < design.flops().size(); ++i)
    flop_of_signal_[design.flops()[i].q] = static_cast<int32_t>(i);
  shadow_.flops.assign(design.flops().size(), 0);
  shadow_.memories = memories_;
  flop_dirty_.Resize(design.flops().size());
  mem_dirty_.resize(memories_.size());
  for (size_t m = 0; m < memories_.size(); ++m)
    mem_dirty_[m].Resize(memories_[m].size());
  // The shadow (all zeros) matches the initial live state, but mark
  // everything dirty so the first capture is a full, base-free baseline.
  flop_dirty_.MarkAll();
  for (auto& bm : mem_dirty_) bm.MarkAll();
}

Result<Simulator> Simulator::Create(const Design& design) {
  HS_RETURN_IF_ERROR(design.Validate());
  Simulator sim(design);
  HS_RETURN_IF_ERROR(sim.Levelize());
  sim.Eval();
  return sim;
}

namespace {

// Collect the signals an expression reads (for levelization).
void CollectReads(const Design& d, ExprId id, std::set<SignalId>* out) {
  const Expr& e = d.expr(id);
  if (e.op == Op::kSignal) out->insert(e.signal);
  for (ExprId a : e.args) CollectReads(d, a, out);
}

}  // namespace

Status Simulator::Levelize() {
  const auto& comb = design_.comb();
  const size_t n = comb.size();

  // driver-of-signal -> comb index
  std::vector<int32_t> driver(design_.signals().size(), -1);
  for (size_t i = 0; i < n; ++i) driver[comb[i].target] = static_cast<int32_t>(i);

  // edges: assignment j must run before i if i reads j's target
  std::vector<std::vector<uint32_t>> succs(n);
  std::vector<uint32_t> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    std::set<SignalId> reads;
    CollectReads(design_, comb[i].value, &reads);
    for (SignalId r : reads) {
      int32_t j = driver[r];
      if (j >= 0 && static_cast<size_t>(j) != i) {
        succs[static_cast<size_t>(j)].push_back(static_cast<uint32_t>(i));
        ++indegree[i];
      } else if (j >= 0 && static_cast<size_t>(j) == i) {
        return Internal("combinational cycle: '" +
                        design_.signal(comb[i].target).name +
                        "' depends on itself");
      }
    }
  }

  comb_order_.clear();
  comb_order_.reserve(n);
  std::vector<uint32_t> ready;
  for (size_t i = 0; i < n; ++i)
    if (indegree[i] == 0) ready.push_back(static_cast<uint32_t>(i));
  while (!ready.empty()) {
    uint32_t i = ready.back();
    ready.pop_back();
    comb_order_.push_back(i);
    for (uint32_t s : succs[i])
      if (--indegree[s] == 0) ready.push_back(s);
  }
  if (comb_order_.size() != n) {
    // Name one signal on the cycle for the diagnostic.
    for (size_t i = 0; i < n; ++i) {
      if (indegree[i] != 0)
        return Internal("combinational cycle through '" +
                        design_.signal(comb[i].target).name + "'");
    }
    return Internal("combinational cycle detected");
  }
  return Status::Ok();
}

uint64_t Simulator::EvalExpr(ExprId id) const {
  const Expr& e = design_.expr(id);
  switch (e.op) {
    case Op::kConst: return e.imm;
    case Op::kSignal: return values_[e.signal];
    case Op::kMemRead: {
      uint64_t addr = EvalExpr(e.args[0]);
      const auto& mem = memories_[e.memory];
      return addr < mem.size() ? mem[addr] : 0;  // OOB reads return 0
    }
    default: break;
  }
  const unsigned w = e.width;
  auto aw = [&](int i) { return design_.expr(e.args[i]).width; };
  switch (e.op) {
    case Op::kNot: return TruncBits(~EvalExpr(e.args[0]), w);
    case Op::kNeg: return TruncBits(~EvalExpr(e.args[0]) + 1, w);
    case Op::kRedAnd: return EvalExpr(e.args[0]) == LowMask(aw(0)) ? 1u : 0u;
    case Op::kRedOr: return EvalExpr(e.args[0]) != 0 ? 1u : 0u;
    case Op::kRedXor: return XorReduce(EvalExpr(e.args[0]), aw(0));
    case Op::kLogicNot: return EvalExpr(e.args[0]) == 0 ? 1u : 0u;
    case Op::kAnd: return EvalExpr(e.args[0]) & EvalExpr(e.args[1]);
    case Op::kOr: return EvalExpr(e.args[0]) | EvalExpr(e.args[1]);
    case Op::kXor: return EvalExpr(e.args[0]) ^ EvalExpr(e.args[1]);
    case Op::kAdd: return TruncBits(EvalExpr(e.args[0]) + EvalExpr(e.args[1]), w);
    case Op::kSub: return TruncBits(EvalExpr(e.args[0]) - EvalExpr(e.args[1]), w);
    case Op::kMul: return TruncBits(EvalExpr(e.args[0]) * EvalExpr(e.args[1]), w);
    case Op::kDiv: {
      uint64_t b = EvalExpr(e.args[1]);
      return b == 0 ? LowMask(w) : TruncBits(EvalExpr(e.args[0]) / b, w);
    }
    case Op::kMod: {
      uint64_t b = EvalExpr(e.args[1]);
      uint64_t a = EvalExpr(e.args[0]);
      return b == 0 ? TruncBits(a, w) : TruncBits(a % b, w);
    }
    case Op::kEq: return EvalExpr(e.args[0]) == EvalExpr(e.args[1]) ? 1u : 0u;
    case Op::kNe: return EvalExpr(e.args[0]) != EvalExpr(e.args[1]) ? 1u : 0u;
    case Op::kLtU: return EvalExpr(e.args[0]) < EvalExpr(e.args[1]) ? 1u : 0u;
    case Op::kLeU: return EvalExpr(e.args[0]) <= EvalExpr(e.args[1]) ? 1u : 0u;
    case Op::kGtU: return EvalExpr(e.args[0]) > EvalExpr(e.args[1]) ? 1u : 0u;
    case Op::kGeU: return EvalExpr(e.args[0]) >= EvalExpr(e.args[1]) ? 1u : 0u;
    case Op::kLtS:
      return SignExtend(EvalExpr(e.args[0]), aw(0)) <
                     SignExtend(EvalExpr(e.args[1]), aw(1))
                 ? 1u : 0u;
    case Op::kLeS:
      return SignExtend(EvalExpr(e.args[0]), aw(0)) <=
                     SignExtend(EvalExpr(e.args[1]), aw(1))
                 ? 1u : 0u;
    case Op::kGtS:
      return SignExtend(EvalExpr(e.args[0]), aw(0)) >
                     SignExtend(EvalExpr(e.args[1]), aw(1))
                 ? 1u : 0u;
    case Op::kGeS:
      return SignExtend(EvalExpr(e.args[0]), aw(0)) >=
                     SignExtend(EvalExpr(e.args[1]), aw(1))
                 ? 1u : 0u;
    case Op::kShl: {
      uint64_t sh = EvalExpr(e.args[1]);
      return sh >= w ? 0 : TruncBits(EvalExpr(e.args[0]) << sh, w);
    }
    case Op::kShrL: {
      uint64_t sh = EvalExpr(e.args[1]);
      return sh >= 64 ? 0 : EvalExpr(e.args[0]) >> sh;
    }
    case Op::kShrA: {
      int64_t s = SignExtend(EvalExpr(e.args[0]), aw(0));
      uint64_t sh = EvalExpr(e.args[1]);
      if (sh > 63) sh = 63;
      return TruncBits(static_cast<uint64_t>(s >> sh), w);
    }
    case Op::kLogicAnd:
      return (EvalExpr(e.args[0]) != 0 && EvalExpr(e.args[1]) != 0) ? 1u : 0u;
    case Op::kLogicOr:
      return (EvalExpr(e.args[0]) != 0 || EvalExpr(e.args[1]) != 0) ? 1u : 0u;
    case Op::kMux:
      return EvalExpr(e.args[0]) != 0 ? TruncBits(EvalExpr(e.args[1]), w)
                                      : TruncBits(EvalExpr(e.args[2]), w);
    case Op::kConcat: {
      uint64_t acc = 0;
      for (size_t i = 0; i < e.args.size(); ++i) {
        unsigned pw = design_.expr(e.args[i]).width;
        acc = (acc << pw) | TruncBits(EvalExpr(e.args[i]), pw);
      }
      return acc;
    }
    case Op::kSlice: return ExtractBits(EvalExpr(e.args[0]), e.hi, e.lo);
    case Op::kZext: return EvalExpr(e.args[0]);
    case Op::kSext:
      return TruncBits(
          static_cast<uint64_t>(SignExtend(EvalExpr(e.args[0]), aw(0))), w);
    case Op::kConst:
    case Op::kSignal:
    case Op::kMemRead:
      break;
  }
  HS_CHECK_MSG(false, "unhandled op in Simulator::EvalExpr");
  return 0;
}

void Simulator::Eval() const {
  if (!dirty_) return;
  const auto& comb = design_.comb();
  for (uint32_t i : comb_order_) {
    const auto& ca = comb[i];
    values_[ca.target] =
        TruncBits(EvalExpr(ca.value), design_.signal(ca.target).width);
  }
  dirty_ = false;
}

void Simulator::CommitEdge() {
  const auto& flops = design_.flops();
  for (size_t i = 0; i < flops.size(); ++i)
    flop_next_[i] = EvalExpr(flops[i].next);

  // Memory writes read pre-edge values too; evaluate before committing
  // flops. Writes commit in declaration order (last write wins).
  struct PendingWrite { rtl::MemoryId mem; uint64_t addr, data; };
  std::vector<PendingWrite> pending;
  for (const auto& mw : design_.mem_writes()) {
    if (EvalExpr(mw.enable) != 0) {
      pending.push_back({mw.memory, EvalExpr(mw.addr),
                         TruncBits(EvalExpr(mw.data),
                                   design_.memory(mw.memory).width)});
    }
  }

  for (size_t i = 0; i < flops.size(); ++i) {
    const uint64_t next =
        TruncBits(flop_next_[i], design_.signal(flops[i].q).width);
    if (values_[flops[i].q] != next) {
      values_[flops[i].q] = next;
      flop_dirty_.MarkWord(i);
    }
  }
  for (const auto& pw : pending) {
    auto& mem = memories_[pw.mem];
    if (pw.addr < mem.size() && mem[pw.addr] != pw.data) {  // OOB dropped
      mem[pw.addr] = pw.data;
      mem_dirty_[pw.mem].MarkWord(pw.addr);
    }
  }
}

void Simulator::Tick(unsigned cycles) {
  for (unsigned c = 0; c < cycles; ++c) {
    Eval();
    CommitEdge();
    dirty_ = true;
    ++cycle_count_;
  }
  Eval();
}

Status Simulator::Reset(unsigned cycles) {
  const SignalId rst = design_.reset();
  if (rst == rtl::kInvalidId)
    return FailedPrecondition("design has no reset input");
  HS_RETURN_IF_ERROR(PokeInput(rst, 1));
  Tick(cycles);
  HS_RETURN_IF_ERROR(PokeInput(rst, 0));
  Eval();
  return Status::Ok();
}

Status Simulator::PokeInput(const std::string& name, uint64_t value) {
  SignalId id = design_.FindSignal(name);
  if (id == rtl::kInvalidId) return NotFound("no signal '" + name + "'");
  return PokeInput(id, value);
}

Status Simulator::PokeInput(SignalId id, uint64_t value) {
  const auto& s = design_.signal(id);
  if (s.kind != SignalKind::kInput)
    return InvalidArgument("'" + s.name + "' is not an input");
  values_[id] = TruncBits(value, s.width);
  dirty_ = true;
  return Status::Ok();
}

Result<uint64_t> Simulator::Peek(const std::string& name) const {
  SignalId id = design_.FindSignal(name);
  if (id == rtl::kInvalidId) return NotFound("no signal '" + name + "'");
  Eval();
  return values_[id];
}

Result<uint64_t> Simulator::PeekMemory(const std::string& name,
                                       unsigned index) const {
  rtl::MemoryId id = design_.FindMemory(name);
  if (id == rtl::kInvalidId) return NotFound("no memory '" + name + "'");
  if (index >= memories_[id].size())
    return OutOfRange("memory index out of range");
  return memories_[id][index];
}

Status Simulator::PokeRegister(const std::string& name, uint64_t value) {
  SignalId id = design_.FindSignal(name);
  if (id == rtl::kInvalidId) return NotFound("no signal '" + name + "'");
  const auto& s = design_.signal(id);
  const int32_t flop_index = flop_of_signal_[id];
  if (flop_index < 0)
    return InvalidArgument("'" + s.name + "' is not a register");
  const uint64_t v = TruncBits(value, s.width);
  if (values_[id] != v) {
    values_[id] = v;
    flop_dirty_.MarkWord(static_cast<size_t>(flop_index));
  }
  dirty_ = true;
  return Status::Ok();
}

Status Simulator::PokeMemory(const std::string& name, unsigned index,
                             uint64_t value) {
  rtl::MemoryId id = design_.FindMemory(name);
  if (id == rtl::kInvalidId) return NotFound("no memory '" + name + "'");
  if (index >= memories_[id].size())
    return OutOfRange("memory index out of range");
  const uint64_t v = TruncBits(value, design_.memory(id).width);
  if (memories_[id][index] != v) {
    memories_[id][index] = v;
    mem_dirty_[id].MarkWord(index);
  }
  dirty_ = true;
  return Status::Ok();
}

HardwareState Simulator::DumpState() const {
  Eval();
  HardwareState st;
  st.flops.reserve(design_.flops().size());
  for (const auto& ff : design_.flops()) st.flops.push_back(values_[ff.q]);
  st.memories = memories_;
  return st;
}

Status Simulator::RestoreState(const HardwareState& st) {
  if (st.flops.size() != design_.flops().size())
    return InvalidArgument("snapshot flop count mismatch");
  if (st.memories.size() != memories_.size())
    return InvalidArgument("snapshot memory count mismatch");
  for (size_t m = 0; m < memories_.size(); ++m) {
    if (st.memories[m].size() != memories_[m].size())
      return InvalidArgument("snapshot memory depth mismatch");
  }
  const auto& flops = design_.flops();
  uint64_t written = 0;
  for (size_t i = 0; i < flops.size(); ++i) {
    const uint64_t v = TruncBits(st.flops[i], design_.signal(flops[i].q).width);
    if (values_[flops[i].q] != v) {
      values_[flops[i].q] = v;
      ++written;
    }
    shadow_.flops[i] = v;
  }
  for (size_t m = 0; m < memories_.size(); ++m) {
    auto& mem = memories_[m];
    const auto& src = st.memories[m];
    for (size_t w = 0; w < mem.size(); ++w) {
      if (mem[w] != src[w]) {
        mem[w] = src[w];
        ++written;
      }
    }
    shadow_.memories[m] = src;
  }
  flop_dirty_.ClearAll();
  for (auto& bm : mem_dirty_) bm.ClearAll();
  ++delta_stats_.restores;
  delta_stats_.words_restored += written;
  delta_stats_.full_words += StateWords(st);
  dirty_ = true;
  return Status::Ok();
}

StateDelta Simulator::CaptureDelta() {
  Eval();
  const auto& flops = design_.flops();
  StateDelta d = EmptyDeltaFor(shadow_);
  d.base_hash = HashState(shadow_);

  // Flop space: walk dirty chunks, compare against the shadow, emit the
  // chunks that really changed and fold them into the shadow.
  const uint32_t nfc = flop_dirty_.num_chunks();
  for (uint32_t c = 0; c < nfc; ++c) {
    if (!flop_dirty_.Test(c)) continue;
    const size_t start = size_t{c} * kChunkWords;
    const size_t len = std::min<size_t>(kChunkWords, flops.size() - start);
    bool changed = false;
    for (size_t i = start; i < start + len; ++i)
      if (values_[flops[i].q] != shadow_.flops[i]) { changed = true; break; }
    if (!changed) continue;
    DeltaChunk chunk{0, c, {}};
    chunk.words.reserve(len);
    for (size_t i = start; i < start + len; ++i) {
      shadow_.flops[i] = values_[flops[i].q];
      chunk.words.push_back(shadow_.flops[i]);
    }
    d.chunks.push_back(std::move(chunk));
  }
  flop_dirty_.ClearAll();

  for (size_t m = 0; m < memories_.size(); ++m) {
    const auto& mem = memories_[m];
    auto& shadow_mem = shadow_.memories[m];
    const uint32_t nc = mem_dirty_[m].num_chunks();
    for (uint32_t c = 0; c < nc; ++c) {
      if (!mem_dirty_[m].Test(c)) continue;
      const size_t start = size_t{c} * kChunkWords;
      const size_t len = std::min<size_t>(kChunkWords, mem.size() - start);
      if (std::equal(mem.begin() + start, mem.begin() + start + len,
                     shadow_mem.begin() + start))
        continue;
      std::copy(mem.begin() + start, mem.begin() + start + len,
                shadow_mem.begin() + start);
      d.chunks.push_back({static_cast<uint32_t>(1 + m), c,
                          {mem.begin() + start, mem.begin() + start + len}});
    }
    mem_dirty_[m].ClearAll();
  }

  ++delta_stats_.captures;
  delta_stats_.words_captured += d.PayloadWords();
  delta_stats_.full_words += StateWords(shadow_);
  return d;
}

Status Simulator::RestoreDelta(const StateDelta& delta) {
  if (!delta.ShapeMatches(shadow_))
    return InvalidArgument("delta does not match simulator state shape");
  if (delta.base_hash != 0 && HashState(shadow_) != delta.base_hash)
    return InvalidArgument("delta base is not the simulator's sync point");

  const auto& flops = design_.flops();
  uint64_t written = 0;

  // Pass 1: revert any chunk dirtied since the sync point back to the
  // shadow — the delta is expressed against the sync point, not against
  // whatever the live state drifted to.
  const uint32_t nfc = flop_dirty_.num_chunks();
  for (uint32_t c = 0; c < nfc; ++c) {
    if (!flop_dirty_.Test(c)) continue;
    const size_t start = size_t{c} * kChunkWords;
    const size_t len = std::min<size_t>(kChunkWords, flops.size() - start);
    for (size_t i = start; i < start + len; ++i) {
      if (values_[flops[i].q] != shadow_.flops[i]) {
        values_[flops[i].q] = shadow_.flops[i];
        ++written;
      }
    }
  }
  flop_dirty_.ClearAll();
  for (size_t m = 0; m < memories_.size(); ++m) {
    auto& mem = memories_[m];
    const auto& shadow_mem = shadow_.memories[m];
    const uint32_t nc = mem_dirty_[m].num_chunks();
    for (uint32_t c = 0; c < nc; ++c) {
      if (!mem_dirty_[m].Test(c)) continue;
      const size_t start = size_t{c} * kChunkWords;
      const size_t len = std::min<size_t>(kChunkWords, mem.size() - start);
      for (size_t w = start; w < start + len; ++w) {
        if (mem[w] != shadow_mem[w]) {
          mem[w] = shadow_mem[w];
          ++written;
        }
      }
    }
    mem_dirty_[m].ClearAll();
  }

  // Pass 2: apply the delta's chunks to both live and shadow state.
  for (const auto& c : delta.chunks) {
    const size_t start = size_t{c.index} * kChunkWords;
    if (c.space == 0) {
      if (start >= flops.size())
        return InvalidArgument("delta chunk index out of range");
      if (c.words.size() !=
          std::min<size_t>(kChunkWords, flops.size() - start))
        return InvalidArgument("delta chunk payload size mismatch");
      for (size_t i = 0; i < c.words.size(); ++i) {
        const uint64_t v = TruncBits(
            c.words[i], design_.signal(flops[start + i].q).width);
        if (values_[flops[start + i].q] != v) {
          values_[flops[start + i].q] = v;
          ++written;
        }
        shadow_.flops[start + i] = v;
      }
    } else {
      if (c.space > memories_.size())
        return InvalidArgument("delta chunk space out of range");
      auto& mem = memories_[c.space - 1];
      if (start >= mem.size())
        return InvalidArgument("delta chunk index out of range");
      if (c.words.size() != std::min<size_t>(kChunkWords, mem.size() - start))
        return InvalidArgument("delta chunk payload size mismatch");
      for (size_t i = 0; i < c.words.size(); ++i) {
        if (mem[start + i] != c.words[i]) {
          mem[start + i] = c.words[i];
          ++written;
        }
        shadow_.memories[c.space - 1][start + i] = c.words[i];
      }
    }
  }

  ++delta_stats_.restores;
  delta_stats_.words_restored += written;
  delta_stats_.full_words += StateWords(shadow_);
  dirty_ = true;
  return Status::Ok();
}

void Simulator::MarkSynced() {
  Eval();
  const auto& flops = design_.flops();
  for (size_t i = 0; i < flops.size(); ++i)
    shadow_.flops[i] = values_[flops[i].q];
  shadow_.memories = memories_;
  flop_dirty_.ClearAll();
  for (auto& bm : mem_dirty_) bm.ClearAll();
}

}  // namespace hardsnap::sim
