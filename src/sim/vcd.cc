#include "sim/vcd.h"

#include <cstdio>

namespace hardsnap::sim {

namespace {

// VCD identifier codes: printable ASCII starting at '!'.
std::string VcdId(size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

std::string BinaryString(uint64_t v, unsigned width) {
  std::string s;
  s.reserve(width);
  for (unsigned i = width; i-- > 0;) s.push_back((v >> i) & 1 ? '1' : '0');
  return s;
}

}  // namespace

VcdWriter::VcdWriter(const Simulator& sim, unsigned timescale_ns)
    : sim_(&sim), timescale_ns_(timescale_ns) {}

void VcdWriter::Sample(uint64_t cycle) {
  std::vector<uint64_t> vals;
  const auto& signals = sim_->design().signals();
  vals.reserve(signals.size());
  for (size_t i = 0; i < signals.size(); ++i)
    vals.push_back(sim_->PeekId(static_cast<rtl::SignalId>(i)));
  samples_.emplace_back(cycle, std::move(vals));
}

std::string VcdWriter::Render() const {
  const auto& signals = sim_->design().signals();
  std::string out;
  out += "$timescale " + std::to_string(timescale_ns_) + "ns $end\n";
  out += "$scope module " + sim_->design().name() + " $end\n";
  for (size_t i = 0; i < signals.size(); ++i) {
    out += "$var wire " + std::to_string(signals[i].width) + " " + VcdId(i) +
           " " + signals[i].name + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  std::vector<uint64_t> last(signals.size(), ~uint64_t{0});
  bool first = true;
  for (const auto& [cycle, vals] : samples_) {
    out += "#" + std::to_string(cycle * timescale_ns_) + "\n";
    for (size_t i = 0; i < signals.size(); ++i) {
      if (!first && vals[i] == last[i]) continue;
      if (signals[i].width == 1) {
        out += (vals[i] ? "1" : "0") + VcdId(i) + "\n";
      } else {
        out += "b" + BinaryString(vals[i], signals[i].width) + " " + VcdId(i) +
               "\n";
      }
      last[i] = vals[i];
    }
    first = false;
  }
  return out;
}

Status VcdWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return Internal("cannot open " + path);
  std::string text = Render();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::Ok();
}

}  // namespace hardsnap::sim
