// VCD (Value Change Dump) trace writer.
//
// The simulator target's headline advantage over the FPGA target is "full
// traces" (paper Sec. III-B): every signal, every cycle. VcdWriter captures
// that into the standard VCD format readable by GTKWave.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"

namespace hardsnap::sim {

class VcdWriter {
 public:
  // Traces all signals of the simulator's design. `timescale_ns` is the
  // nominal clock period used for timestamps.
  VcdWriter(const Simulator& sim, unsigned timescale_ns = 10);

  // Record the current values at the given cycle. Call once per cycle.
  void Sample(uint64_t cycle);

  // Render the accumulated trace as VCD text.
  std::string Render() const;

  Status WriteFile(const std::string& path) const;

  size_t num_samples() const { return samples_.size(); }

 private:
  const Simulator* sim_;
  unsigned timescale_ns_;
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> samples_;
};

}  // namespace hardsnap::sim
