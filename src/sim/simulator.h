// Cycle-accurate netlist simulator (the repo's Verilator stand-in).
//
// A Simulator owns the full state of one elaborated Design:
//   * one 64-bit lane per signal (inputs, wires, regs),
//   * one word vector per memory.
//
// Execution model (two-phase, single clock domain):
//   Eval()  — settle combinational logic: evaluate comb assignments in
//             topological order. Idempotent; called automatically by the
//             public API whenever inputs changed.
//   Tick(n) — run n clock cycles: for each cycle, Eval(), then compute all
//             flip-flop next-values and memory writes against the settled
//             pre-edge state, then commit them atomically (non-blocking
//             assignment semantics), then Eval() again so outputs reflect
//             the post-edge state.
//
// Full visibility/controllability (the property the paper's simulator
// target provides): any signal or memory word can be peeked or poked by
// name at any time, and DumpState()/RestoreState() capture exactly the
// architectural state (flip-flops + memories) — the same bits the scan
// chain extracts on the FPGA target.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rtl/ir.h"
#include "sim/delta.h"

namespace hardsnap::sim {

// Architectural state of a design: flip-flop values (indexed by flop order
// in the Design) and memory contents (indexed by memory id). This is the
// canonical "hardware snapshot" payload; the scan chain and the simulator
// both produce/consume it, which is what makes cross-target state transfer
// possible (paper Sec. III-B "multi-target orchestration").
struct HardwareState {
  std::vector<uint64_t> flops;                // one entry per FlipFlop
  std::vector<std::vector<uint64_t>> memories;  // [memory id][word]

  bool operator==(const HardwareState&) const = default;

  // Total architectural bits (matches DesignStats::state_bits()).
  size_t CountBits(const rtl::Design& d) const;
};

class Simulator {
 public:
  // Compiles the design: levelizes combinational assignments and builds a
  // linear evaluation schedule. Fails on combinational cycles. The
  // simulator keeps its own copy of the design, so the argument may be a
  // temporary.
  static Result<Simulator> Create(const rtl::Design& design);

  const rtl::Design& design() const { return design_; }

  // --- stimulus ------------------------------------------------------------
  Status PokeInput(const std::string& name, uint64_t value);
  Status PokeInput(rtl::SignalId id, uint64_t value);

  // Advance one or more clock cycles. Reset is just an input: drive it
  // with PokeInput and Tick.
  void Tick(unsigned cycles = 1);

  // Settle combinational logic without a clock edge (e.g. to observe a
  // combinational output after changing an input mid-cycle). Evaluation is
  // lazy: pokes only mark the netlist dirty and the next observation or
  // clock edge settles it, so bursts of pokes cost one evaluation.
  void Eval() const;

  // Convenience: assert the design's reset input for `cycles` cycles.
  Status Reset(unsigned cycles = 2);

  // --- full visibility -----------------------------------------------------
  Result<uint64_t> Peek(const std::string& name) const;
  uint64_t PeekId(rtl::SignalId id) const {
    Eval();
    return values_[id];
  }
  Result<uint64_t> PeekMemory(const std::string& name, unsigned index) const;

  // Full controllability: overwrite a register or memory word. Poking a
  // wire is rejected (it would be overwritten by Eval and indicates a
  // test bug).
  Status PokeRegister(const std::string& name, uint64_t value);
  Status PokeMemory(const std::string& name, unsigned index, uint64_t value);

  // --- snapshotting --------------------------------------------------------
  HardwareState DumpState() const;
  // Overwrites the architectural state. Only words that actually differ
  // from the live state are written (restoring a sibling of the current
  // state touches O(diff) words), and the call establishes a new dirty-
  // tracking sync point (see below).
  Status RestoreState(const HardwareState& state);

  // --- delta snapshotting --------------------------------------------------
  // The simulator tracks which kChunkWords-sized chunks of architectural
  // state changed since the last *sync point*. Sync points are:
  // construction, CaptureDelta(), RestoreDelta(), RestoreState(), and
  // MarkSynced(). Flop commits, memory writes, and register/memory pokes
  // mark chunks dirty only when a value actually changes.
  //
  // Captures the chunks dirtied since the last sync point as a delta
  // against that point's state, then starts a new sync point. Cost is
  // O(dirty chunks), not O(design). At construction everything is dirty,
  // so the first capture is a full baseline.
  StateDelta CaptureDelta();
  // Restores the state `delta` away from the last sync point: applies the
  // delta's chunks and reverts any other chunks dirtied since the sync
  // point. When delta.base_hash is set it is checked against the sync
  // point's state. Starts a new sync point at the restored state.
  Status RestoreDelta(const StateDelta& delta);
  // Declares the current live state a sync point without capturing.
  void MarkSynced();
  const DeltaStats& delta_stats() const { return delta_stats_; }

  // Cycles executed since construction (not part of architectural state).
  uint64_t cycle_count() const { return cycle_count_; }

  // Expression evaluation against current values (shared with testbenches).
  uint64_t EvalExpr(rtl::ExprId e) const;

 private:
  explicit Simulator(const rtl::Design& design);

  Status Levelize();
  void CommitEdge();

  rtl::Design design_;
  // Lazily settled: `dirty_` marks pending input/state pokes; Eval() is
  // conceptually const (it completes the observable state).
  mutable std::vector<uint64_t> values_;         // per signal
  mutable bool dirty_ = true;
  std::vector<std::vector<uint64_t>> memories_;  // per memory
  std::vector<uint32_t> comb_order_;             // comb() indices, topo order
  // staging for the two-phase edge commit
  std::vector<uint64_t> flop_next_;
  uint64_t cycle_count_ = 0;

  // --- dirty-state change tracking --------------------------------------
  // Shadow copy of the architectural state at the last sync point, plus
  // per-chunk dirty bitmaps (flop space + one per memory).
  std::vector<int32_t> flop_of_signal_;  // SignalId -> flop index, -1 none
  HardwareState shadow_;
  ChunkBitmap flop_dirty_;
  std::vector<ChunkBitmap> mem_dirty_;
  DeltaStats delta_stats_;
};

}  // namespace hardsnap::sim
