#include "sim/delta.h"

#include <algorithm>

#include "sim/simulator.h"

namespace hardsnap::sim {

namespace {

// Word count of one chunk space; chunk `index` of a space holding `words`
// words spans [index * kChunkWords, index * kChunkWords + ChunkLen).
size_t ChunkLen(size_t words, uint32_t index) {
  const size_t start = size_t{index} * kChunkWords;
  return std::min<size_t>(kChunkWords, words - start);
}

// The words of one chunk space (flops or one memory).
const std::vector<uint64_t>& Space(const HardwareState& st, uint32_t space) {
  return space == 0 ? st.flops : st.memories[space - 1];
}

std::vector<uint64_t>& Space(HardwareState& st, uint32_t space) {
  return space == 0 ? st.flops : st.memories[space - 1];
}

}  // namespace

size_t StateDelta::PayloadWords() const {
  size_t words = 0;
  for (const auto& c : chunks) words += c.words.size();
  return words;
}

bool StateDelta::ShapeMatches(const HardwareState& st) const {
  if (chunk_words != kChunkWords) return false;
  if (num_flops != st.flops.size()) return false;
  if (mem_depths.size() != st.memories.size()) return false;
  for (size_t m = 0; m < mem_depths.size(); ++m)
    if (mem_depths[m] != st.memories[m].size()) return false;
  return true;
}

uint64_t HashState(const HardwareState& state) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(state.flops.size());
  for (uint64_t w : state.flops) mix(w);
  mix(state.memories.size());
  for (const auto& mem : state.memories) {
    mix(mem.size());
    for (uint64_t w : mem) mix(w);
  }
  return h;
}

size_t StateWords(const HardwareState& state) {
  size_t words = state.flops.size();
  for (const auto& mem : state.memories) words += mem.size();
  return words;
}

StateDelta EmptyDeltaFor(const HardwareState& shape) {
  StateDelta d;
  d.num_flops = static_cast<uint32_t>(shape.flops.size());
  d.mem_depths.reserve(shape.memories.size());
  for (const auto& mem : shape.memories)
    d.mem_depths.push_back(static_cast<uint32_t>(mem.size()));
  return d;
}

StateDelta FullDelta(const HardwareState& state) {
  StateDelta d = EmptyDeltaFor(state);
  const uint32_t spaces = static_cast<uint32_t>(1 + state.memories.size());
  for (uint32_t s = 0; s < spaces; ++s) {
    const auto& words = Space(state, s);
    for (uint32_t c = 0; c < NumChunks(words.size()); ++c) {
      const size_t start = size_t{c} * kChunkWords;
      const size_t len = ChunkLen(words.size(), c);
      d.chunks.push_back(
          {s, c, {words.begin() + start, words.begin() + start + len}});
    }
  }
  return d;
}

Result<StateDelta> DiffStates(const HardwareState& base,
                              const HardwareState& next) {
  if (base.flops.size() != next.flops.size())
    return InvalidArgument("delta diff: flop count mismatch");
  if (base.memories.size() != next.memories.size())
    return InvalidArgument("delta diff: memory count mismatch");
  for (size_t m = 0; m < base.memories.size(); ++m)
    if (base.memories[m].size() != next.memories[m].size())
      return InvalidArgument("delta diff: memory depth mismatch");

  StateDelta d = EmptyDeltaFor(next);
  d.base_hash = HashState(base);
  const uint32_t spaces = static_cast<uint32_t>(1 + next.memories.size());
  for (uint32_t s = 0; s < spaces; ++s) {
    const auto& bw = Space(base, s);
    const auto& nw = Space(next, s);
    for (uint32_t c = 0; c < NumChunks(nw.size()); ++c) {
      const size_t start = size_t{c} * kChunkWords;
      const size_t len = ChunkLen(nw.size(), c);
      if (!std::equal(nw.begin() + start, nw.begin() + start + len,
                      bw.begin() + start)) {
        d.chunks.push_back(
            {s, c, {nw.begin() + start, nw.begin() + start + len}});
      }
    }
  }
  return d;
}

Status ApplyDeltaToState(HardwareState* state, const StateDelta& delta) {
  if (!delta.ShapeMatches(*state))
    return InvalidArgument("delta does not match state shape");
  if (delta.base_hash != 0 && HashState(*state) != delta.base_hash)
    return InvalidArgument("delta applied to a state that is not its base");
  for (const auto& c : delta.chunks) {
    if (c.space > state->memories.size())
      return InvalidArgument("delta chunk space out of range");
    auto& words = Space(*state, c.space);
    const size_t start = size_t{c.index} * kChunkWords;
    if (start >= words.size())
      return InvalidArgument("delta chunk index out of range");
    if (c.words.size() != ChunkLen(words.size(), c.index))
      return InvalidArgument("delta chunk payload size mismatch");
    std::copy(c.words.begin(), c.words.end(), words.begin() + start);
  }
  return Status::Ok();
}

}  // namespace hardsnap::sim
