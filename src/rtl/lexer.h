// Tokenizer for the HardSnap Verilog subset (see parser.h for the grammar).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hardsnap::rtl {

enum class Tok : uint8_t {
  kEnd,
  kIdent,      // identifiers and keywords (parser distinguishes)
  kNumber,     // sized or unsized literal; value + width in token
  kSystemId,   // $signed etc.
  // punctuation / operators
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kComma, kSemicolon, kColon, kDot, kHash, kAt, kQuestion,
  kAssign,        // =
  kNonBlocking,   // <=  (also unsigned less-equal; parser disambiguates)
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kAndAnd, kOrOr, kEqEq, kNotEq,
  kLt, kGt, kGe,
  kShl, kShr, kShrA,  // << >> >>>
  kStar2,             // ** (power; only for constant expressions)
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;      // identifier text
  uint64_t value = 0;    // number value
  int number_width = -1; // -1 when unsized
  int line = 0;
};

// Tokenize source. Strips // and /* */ comments. Numbers support
// [width]'[bdh]digits with underscores, and plain decimals.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace hardsnap::rtl
