// Abstract syntax tree for the HardSnap Verilog subset.
//
// The AST is a faithful, unelaborated representation of the source: widths
// are expressions (they may reference parameters), instances are not
// flattened, and always-blocks keep their statement structure. The
// elaborator (elaborate.h) lowers this to the flat rtl::Design IR.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hardsnap::rtl::ast {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  kNumber,       // value, width (-1 = unsized)
  kIdent,        // name
  kIndex,        // base[index]       (bit-select or memory word select)
  kRange,        // base[msb:lsb]     (constant part-select)
  kUnary,        // op arg0
  kBinary,       // arg0 op arg1
  kTernary,      // arg0 ? arg1 : arg2
  kConcat,       // {arg0, arg1, ...}
  kReplicate,    // {count{arg0}}
  kSigned,       // $signed(arg0) — marks operand signed for compares/shifts
};

// Operator spellings reused from the token text for diagnostics.
enum class UnOp : uint8_t { kNot, kNeg, kRedAnd, kRedOr, kRedXor, kLogicNot, kPlus };
enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kPow,
  kAnd, kOr, kXor,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kShl, kShr, kShrA,
  kLogicAnd, kLogicOr,
};

struct Expr {
  ExprKind kind;
  int line = 0;
  // kNumber
  uint64_t value = 0;
  int number_width = -1;
  // kIdent / kIndex / kRange base name
  std::string name;
  // operators
  UnOp un_op = UnOp::kNot;
  BinOp bin_op = BinOp::kAdd;
  // children: kIndex -> {index}; kRange -> {msb, lsb}; kReplicate ->
  // {count, body}; others positional.
  std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t {
  kBlock,       // begin ... end
  kIf,          // if (cond) then_stmt [else else_stmt]
  kCase,        // case (subject) items... [default] endcase
  kAssign,      // lvalue (= | <=) rhs
};

// An lvalue: identifier with optional single index or constant range.
struct LValue {
  std::string name;
  ExprPtr index;       // non-null for name[index]
  ExprPtr range_msb;   // non-null (with range_lsb) for name[msb:lsb]
  ExprPtr range_lsb;
  int line = 0;
};

struct CaseItem {
  std::vector<ExprPtr> labels;  // empty = default
  StmtPtr body;
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  // kBlock
  std::vector<StmtPtr> body;
  // kIf
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;
  // kCase
  ExprPtr subject;
  std::vector<CaseItem> items;
  // kAssign
  LValue lhs;
  ExprPtr rhs;
  bool non_blocking = false;
};

enum class NetKind : uint8_t { kWire, kReg };
enum class PortDir : uint8_t { kInput, kOutput };

struct NetDecl {
  NetKind net = NetKind::kWire;
  bool is_port = false;
  PortDir dir = PortDir::kInput;
  std::string name;
  ExprPtr msb, lsb;          // null = 1-bit
  ExprPtr mem_msb, mem_lsb;  // non-null = memory (reg [..] name [msb:lsb])
  ExprPtr init;              // optional `wire x = expr` shorthand
  int line = 0;
};

struct ParamDecl {
  std::string name;
  ExprPtr value;
  int line = 0;
};

struct ContAssign {
  LValue lhs;
  ExprPtr rhs;
  int line = 0;
};

enum class SensKind : uint8_t { kPosedgeClock, kCombinational };

struct AlwaysBlock {
  SensKind sens = SensKind::kCombinational;
  std::string clock_name;  // for kPosedgeClock
  StmtPtr body;
  int line = 0;
};

struct PortConn {
  std::string port;
  ExprPtr expr;  // null = unconnected
};

struct Instance {
  std::string module_name;
  std::string instance_name;
  std::vector<ParamDecl> param_overrides;  // #(.P(expr), ...)
  std::vector<PortConn> conns;
  int line = 0;
};

struct Module {
  std::string name;
  std::vector<ParamDecl> params;     // header + body parameters
  std::vector<NetDecl> nets;         // ports first, in declaration order
  std::vector<ContAssign> assigns;
  std::vector<AlwaysBlock> always;
  std::vector<Instance> instances;
  int line = 0;
};

struct SourceUnit {
  std::vector<Module> modules;
};

}  // namespace hardsnap::rtl::ast
