#include "rtl/parser.h"

#include <set>

#include "rtl/lexer.h"

namespace hardsnap::rtl {
namespace {

using namespace ast;

const std::set<std::string> kKeywords = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "begin", "end", "if", "else", "case", "endcase", "default",
    "posedge", "negedge", "parameter", "localparam", "or", "initial",
};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<SourceUnit> Parse() {
    SourceUnit unit;
    while (!At(Tok::kEnd)) {
      auto m = ParseModule();
      if (!m.ok()) return m.status();
      unit.modules.push_back(std::move(m).value());
    }
    if (unit.modules.empty()) return Err("no modules in source");
    return unit;
  }

 private:
  // --- token helpers -------------------------------------------------------
  const Token& Cur() const { return toks_[pos_]; }
  const Token& Peek(int k = 1) const {
    size_t idx = pos_ + static_cast<size_t>(k);
    return idx < toks_.size() ? toks_[idx] : toks_.back();
  }
  bool At(Tok k) const { return Cur().kind == k; }
  bool AtKw(const char* kw) const {
    return Cur().kind == Tok::kIdent && Cur().text == kw;
  }
  void Advance() { if (pos_ + 1 < toks_.size()) ++pos_; }
  bool Eat(Tok k) {
    if (!At(k)) return false;
    Advance();
    return true;
  }
  bool EatKw(const char* kw) {
    if (!AtKw(kw)) return false;
    Advance();
    return true;
  }

  Status Err(const std::string& msg) const {
    return ParseError("line " + std::to_string(Cur().line) + ": " + msg);
  }
  Status Expect(Tok k, const char* what) {
    if (Eat(k)) return Status::Ok();
    return Err(std::string("expected ") + what);
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Cur().kind != Tok::kIdent || kKeywords.count(Cur().text))
      return Err(std::string("expected ") + what);
    std::string name = Cur().text;
    Advance();
    return name;
  }

  // --- module --------------------------------------------------------------
  Result<Module> ParseModule() {
    Module mod;
    mod.line = Cur().line;
    if (!EatKw("module")) return Err("expected 'module'");
    HS_ASSIGN_OR_RETURN(mod.name, ExpectIdent("module name"));

    if (Eat(Tok::kHash)) {
      HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after '#'"));
      do {
        // optional leading 'parameter' keyword
        EatKw("parameter");
        ParamDecl p;
        p.line = Cur().line;
        HS_ASSIGN_OR_RETURN(p.name, ExpectIdent("parameter name"));
        HS_RETURN_IF_ERROR(Expect(Tok::kAssign, "'=' in parameter"));
        HS_ASSIGN_OR_RETURN(p.value, ParseExpr());
        mod.params.push_back(std::move(p));
      } while (Eat(Tok::kComma));
      HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after parameters"));
    }

    HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' for port list"));
    if (!At(Tok::kRParen)) {
      do {
        HS_RETURN_IF_ERROR(ParseAnsiPort(&mod));
      } while (Eat(Tok::kComma));
    }
    HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after ports"));
    HS_RETURN_IF_ERROR(Expect(Tok::kSemicolon, "';' after module header"));

    while (!EatKw("endmodule")) {
      if (At(Tok::kEnd)) return Err("unexpected end of file inside module");
      HS_RETURN_IF_ERROR(ParseItem(&mod));
    }
    return mod;
  }

  Status ParseAnsiPort(Module* mod) {
    NetDecl d;
    d.line = Cur().line;
    d.is_port = true;
    if (EatKw("input")) {
      d.dir = PortDir::kInput;
    } else if (EatKw("output")) {
      d.dir = PortDir::kOutput;
    } else {
      return Err("expected 'input' or 'output' (ANSI port style required)");
    }
    if (EatKw("reg")) d.net = NetKind::kReg;
    else { EatKw("wire"); d.net = NetKind::kWire; }
    HS_RETURN_IF_ERROR(ParseOptionalRange(&d.msb, &d.lsb));
    HS_ASSIGN_OR_RETURN(d.name, ExpectIdent("port name"));
    mod->nets.push_back(std::move(d));
    return Status::Ok();
  }

  Status ParseOptionalRange(ExprPtr* msb, ExprPtr* lsb) {
    if (!Eat(Tok::kLBracket)) return Status::Ok();
    HS_ASSIGN_OR_RETURN(*msb, ParseExpr());
    HS_RETURN_IF_ERROR(Expect(Tok::kColon, "':' in range"));
    HS_ASSIGN_OR_RETURN(*lsb, ParseExpr());
    HS_RETURN_IF_ERROR(Expect(Tok::kRBracket, "']' after range"));
    return Status::Ok();
  }

  // --- module items --------------------------------------------------------
  Status ParseItem(Module* mod) {
    if (AtKw("wire") || AtKw("reg")) return ParseNetDecl(mod);
    if (AtKw("parameter") || AtKw("localparam")) return ParseParamDecl(mod);
    if (AtKw("assign")) return ParseContAssign(mod);
    if (AtKw("always")) return ParseAlways(mod);
    if (AtKw("initial"))
      return Err("'initial' blocks are not synthesizable in this subset");
    if (Cur().kind == Tok::kIdent && !kKeywords.count(Cur().text))
      return ParseInstance(mod);
    return Err("unexpected token in module body");
  }

  Status ParseNetDecl(Module* mod) {
    NetKind net = EatKw("reg") ? NetKind::kReg : (EatKw("wire"), NetKind::kWire);
    ExprPtr msb, lsb;
    HS_RETURN_IF_ERROR(ParseOptionalRange(&msb, &lsb));
    bool first = true;
    do {
      NetDecl d;
      d.line = Cur().line;
      d.net = net;
      if (msb) {
        d.msb = CloneExpr(*msb);
        d.lsb = CloneExpr(*lsb);
      }
      HS_ASSIGN_OR_RETURN(d.name, ExpectIdent("net name"));
      // optional memory dimension: reg [7:0] mem [0:255];
      if (At(Tok::kLBracket)) {
        if (net != NetKind::kReg)
          return Err("memory dimension only allowed on 'reg'");
        HS_RETURN_IF_ERROR(ParseOptionalRange(&d.mem_msb, &d.mem_lsb));
      } else if (Eat(Tok::kAssign)) {
        if (net != NetKind::kWire)
          return Err("initializer shorthand only allowed on 'wire'");
        HS_ASSIGN_OR_RETURN(d.init, ParseExpr());
      }
      mod->nets.push_back(std::move(d));
      first = false;
    } while (Eat(Tok::kComma));
    (void)first;
    return Expect(Tok::kSemicolon, "';' after declaration");
  }

  Status ParseParamDecl(Module* mod) {
    Advance();  // parameter | localparam
    do {
      ParamDecl p;
      p.line = Cur().line;
      HS_ASSIGN_OR_RETURN(p.name, ExpectIdent("parameter name"));
      HS_RETURN_IF_ERROR(Expect(Tok::kAssign, "'=' in parameter"));
      HS_ASSIGN_OR_RETURN(p.value, ParseExpr());
      mod->params.push_back(std::move(p));
    } while (Eat(Tok::kComma));
    return Expect(Tok::kSemicolon, "';' after parameter");
  }

  Status ParseContAssign(Module* mod) {
    Advance();  // assign
    ContAssign ca;
    ca.line = Cur().line;
    HS_ASSIGN_OR_RETURN(ca.lhs, ParseLValue());
    HS_RETURN_IF_ERROR(Expect(Tok::kAssign, "'=' in assign"));
    HS_ASSIGN_OR_RETURN(ca.rhs, ParseExpr());
    HS_RETURN_IF_ERROR(Expect(Tok::kSemicolon, "';' after assign"));
    mod->assigns.push_back(std::move(ca));
    return Status::Ok();
  }

  Status ParseAlways(Module* mod) {
    AlwaysBlock ab;
    ab.line = Cur().line;
    Advance();  // always
    HS_RETURN_IF_ERROR(Expect(Tok::kAt, "'@' after always"));
    HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after '@'"));
    if (Eat(Tok::kStar)) {
      ab.sens = SensKind::kCombinational;
    } else if (EatKw("posedge")) {
      ab.sens = SensKind::kPosedgeClock;
      HS_ASSIGN_OR_RETURN(ab.clock_name, ExpectIdent("clock signal"));
      if (AtKw("or"))
        return Err("async resets are unsupported; use synchronous reset");
    } else if (AtKw("negedge")) {
      return Err("negedge sensitivity is unsupported");
    } else {
      return Err("sensitivity list must be '*' or 'posedge <clk>'");
    }
    HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after sensitivity"));
    HS_ASSIGN_OR_RETURN(ab.body, ParseStmt());
    mod->always.push_back(std::move(ab));
    return Status::Ok();
  }

  Status ParseInstance(Module* mod) {
    Instance inst;
    inst.line = Cur().line;
    HS_ASSIGN_OR_RETURN(inst.module_name, ExpectIdent("module name"));
    if (Eat(Tok::kHash)) {
      HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after '#'"));
      do {
        HS_RETURN_IF_ERROR(Expect(Tok::kDot, "'.' in parameter override"));
        ParamDecl p;
        p.line = Cur().line;
        HS_ASSIGN_OR_RETURN(p.name, ExpectIdent("parameter name"));
        HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' in parameter override"));
        HS_ASSIGN_OR_RETURN(p.value, ParseExpr());
        HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' in parameter override"));
        inst.param_overrides.push_back(std::move(p));
      } while (Eat(Tok::kComma));
      HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after overrides"));
    }
    HS_ASSIGN_OR_RETURN(inst.instance_name, ExpectIdent("instance name"));
    HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' for port connections"));
    if (!At(Tok::kRParen)) {
      do {
        HS_RETURN_IF_ERROR(Expect(Tok::kDot, "'.' in port connection"));
        PortConn pc;
        HS_ASSIGN_OR_RETURN(pc.port, ExpectIdent("port name"));
        HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' in port connection"));
        if (!At(Tok::kRParen)) {
          HS_ASSIGN_OR_RETURN(pc.expr, ParseExpr());
        }
        HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' in port connection"));
        inst.conns.push_back(std::move(pc));
      } while (Eat(Tok::kComma));
    }
    HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after connections"));
    HS_RETURN_IF_ERROR(Expect(Tok::kSemicolon, "';' after instance"));
    mod->instances.push_back(std::move(inst));
    return Status::Ok();
  }

  // --- statements ----------------------------------------------------------
  Result<StmtPtr> ParseStmt() {
    auto s = std::make_unique<Stmt>();
    s->line = Cur().line;
    if (EatKw("begin")) {
      s->kind = StmtKind::kBlock;
      while (!EatKw("end")) {
        if (At(Tok::kEnd)) return Err("unexpected EOF inside begin/end");
        HS_ASSIGN_OR_RETURN(StmtPtr sub, ParseStmt());
        s->body.push_back(std::move(sub));
      }
      return s;
    }
    if (EatKw("if")) {
      s->kind = StmtKind::kIf;
      HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after if"));
      HS_ASSIGN_OR_RETURN(s->cond, ParseExpr());
      HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after if condition"));
      HS_ASSIGN_OR_RETURN(s->then_stmt, ParseStmt());
      if (EatKw("else")) {
        HS_ASSIGN_OR_RETURN(s->else_stmt, ParseStmt());
      }
      return s;
    }
    if (EatKw("case")) {
      s->kind = StmtKind::kCase;
      HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after case"));
      HS_ASSIGN_OR_RETURN(s->subject, ParseExpr());
      HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after case subject"));
      while (!EatKw("endcase")) {
        if (At(Tok::kEnd)) return Err("unexpected EOF inside case");
        CaseItem item;
        if (EatKw("default")) {
          Eat(Tok::kColon);
        } else {
          do {
            HS_ASSIGN_OR_RETURN(ExprPtr label, ParseExpr());
            item.labels.push_back(std::move(label));
          } while (Eat(Tok::kComma));
          HS_RETURN_IF_ERROR(Expect(Tok::kColon, "':' after case label"));
        }
        HS_ASSIGN_OR_RETURN(item.body, ParseStmt());
        s->items.push_back(std::move(item));
      }
      return s;
    }
    // assignment
    s->kind = StmtKind::kAssign;
    HS_ASSIGN_OR_RETURN(s->lhs, ParseLValue());
    if (Eat(Tok::kNonBlocking)) {
      s->non_blocking = true;
    } else if (Eat(Tok::kAssign)) {
      s->non_blocking = false;
    } else {
      return Err("expected '=' or '<=' in assignment");
    }
    HS_ASSIGN_OR_RETURN(s->rhs, ParseExpr());
    HS_RETURN_IF_ERROR(Expect(Tok::kSemicolon, "';' after assignment"));
    return s;
  }

  Result<LValue> ParseLValue() {
    LValue lv;
    lv.line = Cur().line;
    HS_ASSIGN_OR_RETURN(lv.name, ExpectIdent("lvalue"));
    if (Eat(Tok::kLBracket)) {
      HS_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
      if (Eat(Tok::kColon)) {
        lv.range_msb = std::move(first);
        HS_ASSIGN_OR_RETURN(lv.range_lsb, ParseExpr());
      } else {
        lv.index = std::move(first);
      }
      HS_RETURN_IF_ERROR(Expect(Tok::kRBracket, "']' in lvalue"));
    }
    return lv;
  }

  // --- expressions (precedence climbing) -----------------------------------
  // Levels, lowest first: ?: || && | ^ & (== !=) (< <= > >=)
  //                       (<< >> >>>) (+ -) (* / % **) unary primary
  Result<ExprPtr> ParseExpr() { return ParseTernary(); }

  Result<ExprPtr> ParseTernary() {
    HS_ASSIGN_OR_RETURN(ExprPtr cond, ParseBin(0));
    if (!Eat(Tok::kQuestion)) return cond;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kTernary;
    e->line = cond->line;
    HS_ASSIGN_OR_RETURN(ExprPtr then_e, ParseTernary());
    HS_RETURN_IF_ERROR(Expect(Tok::kColon, "':' in ternary"));
    HS_ASSIGN_OR_RETURN(ExprPtr else_e, ParseTernary());
    e->args.push_back(std::move(cond));
    e->args.push_back(std::move(then_e));
    e->args.push_back(std::move(else_e));
    return e;
  }

  // Binary-operator table indexed by precedence level.
  struct BinOpInfo { Tok tok; BinOp op; };
  static constexpr int kNumLevels = 9;
  const std::vector<BinOpInfo>& LevelOps(int level) {
    static const std::vector<BinOpInfo> table[kNumLevels] = {
        {{Tok::kOrOr, BinOp::kLogicOr}},
        {{Tok::kAndAnd, BinOp::kLogicAnd}},
        {{Tok::kPipe, BinOp::kOr}},
        {{Tok::kCaret, BinOp::kXor}},
        {{Tok::kAmp, BinOp::kAnd}},
        {{Tok::kEqEq, BinOp::kEq}, {Tok::kNotEq, BinOp::kNe}},
        {{Tok::kLt, BinOp::kLt}, {Tok::kNonBlocking, BinOp::kLe},
         {Tok::kGt, BinOp::kGt}, {Tok::kGe, BinOp::kGe}},
        {{Tok::kShl, BinOp::kShl}, {Tok::kShr, BinOp::kShr},
         {Tok::kShrA, BinOp::kShrA}},
        {{Tok::kPlus, BinOp::kAdd}, {Tok::kMinus, BinOp::kSub}},
    };
    return table[level];
  }

  Result<ExprPtr> ParseBin(int level) {
    if (level >= kNumLevels) return ParseMulLevel();
    HS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBin(level + 1));
    for (;;) {
      bool matched = false;
      for (const auto& info : LevelOps(level)) {
        if (At(info.tok)) {
          Advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kBinary;
          e->bin_op = info.op;
          e->line = lhs->line;
          HS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBin(level + 1));
          e->args.push_back(std::move(lhs));
          e->args.push_back(std::move(rhs));
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  Result<ExprPtr> ParseMulLevel() {
    HS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinOp op;
      if (At(Tok::kStar)) op = BinOp::kMul;
      else if (At(Tok::kSlash)) op = BinOp::kDiv;
      else if (At(Tok::kPercent)) op = BinOp::kMod;
      else if (At(Tok::kStar2)) op = BinOp::kPow;
      else return lhs;
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->bin_op = op;
      e->line = lhs->line;
      HS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  Result<ExprPtr> ParseUnary() {
    UnOp op;
    if (At(Tok::kTilde)) op = UnOp::kNot;
    else if (At(Tok::kBang)) op = UnOp::kLogicNot;
    else if (At(Tok::kMinus)) op = UnOp::kNeg;
    else if (At(Tok::kPlus)) op = UnOp::kPlus;
    else if (At(Tok::kAmp)) op = UnOp::kRedAnd;
    else if (At(Tok::kPipe)) op = UnOp::kRedOr;
    else if (At(Tok::kCaret)) op = UnOp::kRedXor;
    else return ParsePrimary();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kUnary;
    e->un_op = op;
    e->line = Cur().line;
    Advance();
    HS_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnary());
    e->args.push_back(std::move(arg));
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    auto e = std::make_unique<Expr>();
    e->line = Cur().line;
    if (Cur().kind == Tok::kNumber) {
      e->kind = ExprKind::kNumber;
      e->value = Cur().value;
      e->number_width = Cur().number_width;
      Advance();
      return e;
    }
    if (Cur().kind == Tok::kSystemId) {
      if (Cur().text != "$signed")
        return Err("unsupported system function '" + Cur().text + "'");
      Advance();
      e->kind = ExprKind::kSigned;
      HS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after $signed"));
      HS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after $signed"));
      e->args.push_back(std::move(arg));
      return e;
    }
    if (Eat(Tok::kLParen)) {
      HS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      HS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return inner;
    }
    if (Eat(Tok::kLBrace)) {
      // concat or replication
      HS_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
      if (At(Tok::kLBrace)) {
        // {count{body}}
        Advance();
        e->kind = ExprKind::kReplicate;
        HS_ASSIGN_OR_RETURN(ExprPtr body, ParseExpr());
        HS_RETURN_IF_ERROR(Expect(Tok::kRBrace, "'}' in replication"));
        HS_RETURN_IF_ERROR(Expect(Tok::kRBrace, "'}' closing replication"));
        e->args.push_back(std::move(first));  // count
        e->args.push_back(std::move(body));
        return e;
      }
      e->kind = ExprKind::kConcat;
      e->args.push_back(std::move(first));
      while (Eat(Tok::kComma)) {
        HS_ASSIGN_OR_RETURN(ExprPtr part, ParseExpr());
        e->args.push_back(std::move(part));
      }
      HS_RETURN_IF_ERROR(Expect(Tok::kRBrace, "'}' closing concat"));
      return e;
    }
    if (Cur().kind == Tok::kIdent && !kKeywords.count(Cur().text)) {
      e->name = Cur().text;
      Advance();
      if (Eat(Tok::kLBracket)) {
        HS_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
        if (Eat(Tok::kColon)) {
          e->kind = ExprKind::kRange;
          HS_ASSIGN_OR_RETURN(ExprPtr lsb, ParseExpr());
          e->args.push_back(std::move(first));
          e->args.push_back(std::move(lsb));
        } else {
          e->kind = ExprKind::kIndex;
          e->args.push_back(std::move(first));
        }
        HS_RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
        return e;
      }
      e->kind = ExprKind::kIdent;
      return e;
    }
    return Err("expected expression");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;

 public:
  // Deep-copy an AST expression (used when one declared range applies to
  // several nets in a comma-separated declaration).
  static ExprPtr CloneExpr(const Expr& src) {
    auto e = std::make_unique<Expr>();
    e->kind = src.kind;
    e->line = src.line;
    e->value = src.value;
    e->number_width = src.number_width;
    e->name = src.name;
    e->un_op = src.un_op;
    e->bin_op = src.bin_op;
    for (const auto& a : src.args) e->args.push_back(CloneExpr(*a));
    return e;
  }
};

}  // namespace

Result<ast::SourceUnit> ParseVerilog(const std::string& source) {
  auto toks = Tokenize(source);
  if (!toks.ok()) return toks.status();
  Parser parser(std::move(toks).value());
  return parser.Parse();
}

}  // namespace hardsnap::rtl
