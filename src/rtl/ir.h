// Register-transfer-level intermediate representation.
//
// A Design is a *flattened* synchronous netlist: one clock domain, one
// optional synchronous reset, signals of up to 64 bits, word-addressed
// memories, combinational assignments and flip-flops. The Verilog front-end
// (parser + elaborator) produces this IR; the cycle-accurate simulator
// (src/sim) executes it; the scan-chain pass (src/scanchain) rewrites it.
//
// Design decisions mirroring the paper:
//  * State = flip-flops + memories. These are exactly the elements a
//    hardware snapshot must capture and exactly what the scan chain
//    threads through (Sec. III-A / IV-A of the paper).
//  * Combinational logic is pure and derivable from state + inputs, so a
//    snapshot never needs to store it ("Knowing the value of hardware
//    registers enables us to infer the value of combinatorial elements").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hardsnap::rtl {

using SignalId = int32_t;
using MemoryId = int32_t;
using ExprId = int32_t;
inline constexpr int32_t kInvalidId = -1;

enum class SignalKind : uint8_t {
  kInput,   // driven from outside the design (testbench / bus)
  kOutput,  // driven by the design, visible outside
  kWire,    // internal combinational net
  kReg,     // flip-flop output (state element)
};

struct Signal {
  std::string name;   // flattened hierarchical name, e.g. "u_core.count"
  unsigned width = 1; // 1..64
  SignalKind kind = SignalKind::kWire;
};

struct Memory {
  std::string name;
  unsigned width = 1;   // word width, 1..64
  unsigned depth = 1;   // number of words
};

// Expression opcodes. All arithmetic is unsigned modulo 2^width unless the
// op name says otherwise; widths are fixed at construction time.
enum class Op : uint8_t {
  kConst,    // imm, width
  kSignal,   // signal (current value)
  kMemRead,  // memory word read: arg0 = address (asynchronous read port)
  // unary
  kNot,      // bitwise complement
  kNeg,      // two's complement negate
  kRedAnd,   // &x  -> 1 bit
  kRedOr,    // |x  -> 1 bit
  kRedXor,   // ^x  -> 1 bit
  kLogicNot, // !x  -> 1 bit
  // binary
  kAnd, kOr, kXor,
  kAdd, kSub, kMul,
  kDiv, kMod,           // unsigned; divide-by-zero yields all-ones / lhs
  kEq, kNe,
  kLtU, kLeU, kGtU, kGeU,
  kLtS, kLeS, kGtS, kGeS,   // signed comparisons ($signed operands)
  kShl, kShrL, kShrA,
  kLogicAnd, kLogicOr,      // 1-bit results, non-short-circuit (hardware)
  // other
  kMux,      // arg0 ? arg1 : arg2
  kConcat,   // {arg0, arg1, ...}  arg0 is most significant
  kSlice,    // arg0[hi:lo]
  kZext,     // zero-extend arg0 to width
  kSext,     // sign-extend arg0 to width
};

const char* OpName(Op op);
bool IsUnary(Op op);
bool IsBinary(Op op);

// Expression node in a per-Design arena. Nodes are immutable after
// creation; sharing is allowed and encouraged (the elaborator CSEs
// constants and signal reads).
struct Expr {
  Op op = Op::kConst;
  unsigned width = 1;          // result width in bits
  uint64_t imm = 0;            // kConst value
  SignalId signal = kInvalidId;  // kSignal
  MemoryId memory = kInvalidId;  // kMemRead
  unsigned hi = 0, lo = 0;       // kSlice bounds
  std::vector<ExprId> args;
};

// wire = expr (continuous assignment / lowered always@* block).
struct CombAssign {
  SignalId target = kInvalidId;
  ExprId value = kInvalidId;
};

// Flip-flop: on posedge clk, q <= reset ? reset_value : next.
// Reset is synchronous and optional (reset_value < 0 means no reset term;
// the elaborator folds `if (rst) q <= K; else ...` into this form).
struct FlipFlop {
  SignalId q = kInvalidId;
  ExprId next = kInvalidId;     // includes any enable muxing (q as default)
  bool has_reset = false;
  uint64_t reset_value = 0;
};

// Synchronous memory write port: on posedge clk,
//   if (enable) mem[addr] <= data.
struct MemWrite {
  MemoryId memory = kInvalidId;
  ExprId enable = kInvalidId;
  ExprId addr = kInvalidId;
  ExprId data = kInvalidId;
};

// Summary statistics used by the scan-chain overhead bench (E3).
struct DesignStats {
  unsigned num_signals = 0;
  unsigned num_flops = 0;          // flip-flop instances (multi-bit count 1)
  unsigned num_flop_bits = 0;      // total register state bits
  unsigned num_memories = 0;
  unsigned num_memory_bits = 0;    // total memory state bits
  unsigned num_comb_assigns = 0;
  unsigned num_expr_nodes = 0;     // gate-count proxy
  unsigned state_bits() const { return num_flop_bits + num_memory_bits; }
};

class Design {
 public:
  explicit Design(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction -------------------------------------------------------
  SignalId AddSignal(std::string name, unsigned width, SignalKind kind);
  MemoryId AddMemory(std::string name, unsigned width, unsigned depth);

  ExprId Const(uint64_t value, unsigned width);
  ExprId Sig(SignalId s);
  ExprId MemRead(MemoryId m, ExprId addr);
  ExprId Unary(Op op, ExprId a);
  ExprId Binary(Op op, ExprId a, ExprId b);
  ExprId Mux(ExprId sel, ExprId then_e, ExprId else_e);
  ExprId Concat(std::vector<ExprId> parts);
  ExprId Slice(ExprId a, unsigned hi, unsigned lo);
  ExprId Extend(Op op, ExprId a, unsigned width);  // kZext / kSext

  void AddComb(SignalId target, ExprId value);
  void AddFlop(FlipFlop ff);
  void AddMemWrite(MemWrite mw);

  void SetClock(SignalId clk) { clock_ = clk; }
  void SetReset(SignalId rst) { reset_ = rst; }

  // --- access --------------------------------------------------------------
  const std::vector<Signal>& signals() const { return signals_; }
  const std::vector<Memory>& memories() const { return memories_; }
  const std::vector<Expr>& exprs() const { return exprs_; }
  const std::vector<CombAssign>& comb() const { return comb_; }
  const std::vector<FlipFlop>& flops() const { return flops_; }
  const std::vector<MemWrite>& mem_writes() const { return mem_writes_; }

  const Signal& signal(SignalId id) const { return signals_[id]; }
  const Memory& memory(MemoryId id) const { return memories_[id]; }
  const Expr& expr(ExprId id) const { return exprs_[id]; }

  SignalId clock() const { return clock_; }
  SignalId reset() const { return reset_; }

  // Name lookup (linear scan cached in a map; designs are built once).
  SignalId FindSignal(const std::string& name) const;
  MemoryId FindMemory(const std::string& name) const;

  DesignStats Stats() const;

  // Structural sanity: every wire/output driven at most once, every reg
  // driven by exactly one flip-flop, widths consistent, no dangling ids.
  Status Validate() const;

  // Mutable access for instrumentation passes (scan chain insertion).
  std::vector<FlipFlop>& mutable_flops() { return flops_; }
  std::vector<CombAssign>& mutable_comb() { return comb_; }
  std::vector<MemWrite>& mutable_mem_writes() { return mem_writes_; }

 private:
  unsigned WidthOf(ExprId e) const { return exprs_[e].width; }

  std::string name_;
  std::vector<Signal> signals_;
  std::vector<Memory> memories_;
  std::vector<Expr> exprs_;
  std::vector<CombAssign> comb_;
  std::vector<FlipFlop> flops_;
  std::vector<MemWrite> mem_writes_;
  SignalId clock_ = kInvalidId;
  SignalId reset_ = kInvalidId;
};

// Evaluate a pure-constant expression tree (elaboration-time folding).
// Returns error if the tree references signals or memories.
Result<uint64_t> EvalConstExpr(const Design& d, ExprId e);

}  // namespace hardsnap::rtl
