// Recursive-descent parser for the HardSnap Verilog subset.
//
// Supported grammar (synthesizable, single clock domain, sync reset):
//
//   source      := module*
//   module      := 'module' ID ['#(' param {',' param} ')']
//                  '(' ansi_port {',' ansi_port} ')' ';' item* 'endmodule'
//   ansi_port   := ('input'|'output') ['wire'|'reg'] [range] ID
//   item        := net_decl | param_decl | cont_assign | always | instance
//   net_decl    := ('wire'|'reg') [range] ID [mem_range] ['=' expr]
//                  {',' ID [mem_range]} ';'
//   param_decl  := ('parameter'|'localparam') ID '=' expr {',' ID '=' expr} ';'
//   range       := '[' const_expr ':' const_expr ']'
//   cont_assign := 'assign' lvalue '=' expr ';'
//   always      := 'always' '@' '(' ('*' | 'posedge' ID) ')' stmt
//   stmt        := 'begin' stmt* 'end' | 'if' '(' expr ')' stmt ['else' stmt]
//                | 'case' '(' expr ')' case_item* 'endcase'
//                | lvalue ('='|'<=') expr ';'
//   case_item   := (expr {',' expr} | 'default' [':']) ':' stmt
//   lvalue      := ID | ID '[' expr ']' | ID '[' const ':' const ']'
//   instance    := ID ['#(' '.'ID'('expr')' {...} ')'] ID
//                  '(' '.'ID'(' [expr] ')' {...} ')' ';'
//   expr        := ternary over {|| && | ^ & == != < <= > >= << >> >>>
//                  + - * / % **} with Verilog precedence; primaries are
//                  numbers, identifiers, bit/part-selects, concatenations,
//                  replications, parenthesized exprs, unary ~ ! & | ^ + -,
//                  and $signed(...).
//
// Intentionally unsupported (rejected with a diagnostic): async resets,
// negedge, initial blocks, tasks/functions, generate, tri-state, real,
// strings, delays, multi-dimensional arrays beyond one memory dimension.
#pragma once

#include "common/status.h"
#include "rtl/ast.h"

namespace hardsnap::rtl {

Result<ast::SourceUnit> ParseVerilog(const std::string& source);

}  // namespace hardsnap::rtl
