#include "rtl/lexer.h"

#include <cctype>

namespace hardsnap::rtl {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$'; }

Status LexError(int line, const std::string& msg) {
  return ParseError("line " + std::to_string(line) + ": " + msg);
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  const size_t n = src.size();

  auto push = [&](Tok k) {
    Token t;
    t.kind = k;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') { ++line; ++i; continue; }
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }
    // comments
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) return LexError(line, "unterminated block comment");
      i += 2;
      continue;
    }
    // identifiers / keywords / system ids
    if (IsIdentStart(c) || c == '$') {
      size_t start = i;
      ++i;
      while (i < n && IsIdentChar(src[i])) ++i;
      Token t;
      t.kind = c == '$' ? Tok::kSystemId : Tok::kIdent;
      t.text = src.substr(start, i - start);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    // numbers: [size]'base digits  or plain decimal
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
      uint64_t size_part = 0;
      bool have_size = false;
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(src[i])) || src[i] == '_')) {
        if (src[i] != '_') {
          size_part = size_part * 10 + static_cast<uint64_t>(src[i] - '0');
          have_size = true;
        }
        ++i;
      }
      if (i < n && src[i] == '\'') {
        ++i;
        if (i >= n) return LexError(line, "truncated based literal");
        char base = static_cast<char>(std::tolower(src[i]));
        ++i;
        int radix;
        switch (base) {
          case 'b': radix = 2; break;
          case 'o': radix = 8; break;
          case 'd': radix = 10; break;
          case 'h': radix = 16; break;
          default:
            return LexError(line, std::string("bad number base '") + base + "'");
        }
        uint64_t value = 0;
        bool any = false;
        while (i < n) {
          char d = src[i];
          if (d == '_') { ++i; continue; }
          int dv;
          if (d >= '0' && d <= '9') dv = d - '0';
          else if (d >= 'a' && d <= 'f') dv = d - 'a' + 10;
          else if (d >= 'A' && d <= 'F') dv = d - 'A' + 10;
          else break;
          if (dv >= radix) break;
          value = value * radix + static_cast<uint64_t>(dv);
          any = true;
          ++i;
        }
        if (!any) return LexError(line, "based literal with no digits");
        Token t;
        t.kind = Tok::kNumber;
        t.value = value;
        t.number_width = have_size ? static_cast<int>(size_part) : -1;
        t.line = line;
        if (have_size && (size_part < 1 || size_part > 64))
          return LexError(line, "literal width must be 1..64");
        out.push_back(std::move(t));
        continue;
      }
      // plain decimal
      if (!have_size) return LexError(line, "malformed number");
      (void)start;
      Token t;
      t.kind = Tok::kNumber;
      t.value = size_part;
      t.number_width = -1;
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    // operators / punctuation
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && src[i + 1] == b;
    };
    if (two('<', '=')) { push(Tok::kNonBlocking); i += 2; continue; }
    if (c == '<' && i + 1 < n && src[i + 1] == '<') { push(Tok::kShl); i += 2; continue; }
    if (c == '>' && i + 2 < n && src[i + 1] == '>' && src[i + 2] == '>') { push(Tok::kShrA); i += 3; continue; }
    if (two('>', '>')) { push(Tok::kShr); i += 2; continue; }
    if (two('>', '=')) { push(Tok::kGe); i += 2; continue; }
    if (two('=', '=')) { push(Tok::kEqEq); i += 2; continue; }
    if (two('!', '=')) { push(Tok::kNotEq); i += 2; continue; }
    if (two('&', '&')) { push(Tok::kAndAnd); i += 2; continue; }
    if (two('|', '|')) { push(Tok::kOrOr); i += 2; continue; }
    if (two('*', '*')) { push(Tok::kStar2); i += 2; continue; }
    switch (c) {
      case '(': push(Tok::kLParen); break;
      case ')': push(Tok::kRParen); break;
      case '[': push(Tok::kLBracket); break;
      case ']': push(Tok::kRBracket); break;
      case '{': push(Tok::kLBrace); break;
      case '}': push(Tok::kRBrace); break;
      case ',': push(Tok::kComma); break;
      case ';': push(Tok::kSemicolon); break;
      case ':': push(Tok::kColon); break;
      case '.': push(Tok::kDot); break;
      case '#': push(Tok::kHash); break;
      case '@': push(Tok::kAt); break;
      case '?': push(Tok::kQuestion); break;
      case '=': push(Tok::kAssign); break;
      case '+': push(Tok::kPlus); break;
      case '-': push(Tok::kMinus); break;
      case '*': push(Tok::kStar); break;
      case '/': push(Tok::kSlash); break;
      case '%': push(Tok::kPercent); break;
      case '&': push(Tok::kAmp); break;
      case '|': push(Tok::kPipe); break;
      case '^': push(Tok::kCaret); break;
      case '~': push(Tok::kTilde); break;
      case '!': push(Tok::kBang); break;
      case '<': push(Tok::kLt); break;
      case '>': push(Tok::kGt); break;
      default:
        return LexError(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  push(Tok::kEnd);
  return out;
}

}  // namespace hardsnap::rtl
