#include "rtl/ir.h"

#include <algorithm>

#include "common/bitops.h"

namespace hardsnap::rtl {

const char* OpName(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kSignal: return "signal";
    case Op::kMemRead: return "memread";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kRedAnd: return "redand";
    case Op::kRedOr: return "redor";
    case Op::kRedXor: return "redxor";
    case Op::kLogicNot: return "lnot";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLtU: return "ltu";
    case Op::kLeU: return "leu";
    case Op::kGtU: return "gtu";
    case Op::kGeU: return "geu";
    case Op::kLtS: return "lts";
    case Op::kLeS: return "les";
    case Op::kGtS: return "gts";
    case Op::kGeS: return "ges";
    case Op::kShl: return "shl";
    case Op::kShrL: return "shrl";
    case Op::kShrA: return "shra";
    case Op::kLogicAnd: return "land";
    case Op::kLogicOr: return "lor";
    case Op::kMux: return "mux";
    case Op::kConcat: return "concat";
    case Op::kSlice: return "slice";
    case Op::kZext: return "zext";
    case Op::kSext: return "sext";
  }
  return "?";
}

bool IsUnary(Op op) {
  switch (op) {
    case Op::kNot:
    case Op::kNeg:
    case Op::kRedAnd:
    case Op::kRedOr:
    case Op::kRedXor:
    case Op::kLogicNot:
      return true;
    default:
      return false;
  }
}

bool IsBinary(Op op) {
  switch (op) {
    case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kAdd: case Op::kSub: case Op::kMul:
    case Op::kDiv: case Op::kMod:
    case Op::kEq: case Op::kNe:
    case Op::kLtU: case Op::kLeU: case Op::kGtU: case Op::kGeU:
    case Op::kLtS: case Op::kLeS: case Op::kGtS: case Op::kGeS:
    case Op::kShl: case Op::kShrL: case Op::kShrA:
    case Op::kLogicAnd: case Op::kLogicOr:
      return true;
    default:
      return false;
  }
}

SignalId Design::AddSignal(std::string name, unsigned width, SignalKind kind) {
  HS_CHECK_MSG(width >= 1 && width <= 64, "signal width must be 1..64");
  signals_.push_back(Signal{std::move(name), width, kind});
  return static_cast<SignalId>(signals_.size() - 1);
}

MemoryId Design::AddMemory(std::string name, unsigned width, unsigned depth) {
  HS_CHECK_MSG(width >= 1 && width <= 64, "memory width must be 1..64");
  HS_CHECK_MSG(depth >= 1, "memory depth must be >= 1");
  memories_.push_back(Memory{std::move(name), width, depth});
  return static_cast<MemoryId>(memories_.size() - 1);
}

ExprId Design::Const(uint64_t value, unsigned width) {
  HS_CHECK(width >= 1 && width <= 64);
  Expr e;
  e.op = Op::kConst;
  e.width = width;
  e.imm = TruncBits(value, width);
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

ExprId Design::Sig(SignalId s) {
  HS_CHECK(s >= 0 && s < static_cast<SignalId>(signals_.size()));
  Expr e;
  e.op = Op::kSignal;
  e.width = signals_[s].width;
  e.signal = s;
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

ExprId Design::MemRead(MemoryId m, ExprId addr) {
  HS_CHECK(m >= 0 && m < static_cast<MemoryId>(memories_.size()));
  Expr e;
  e.op = Op::kMemRead;
  e.width = memories_[m].width;
  e.memory = m;
  e.args = {addr};
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

ExprId Design::Unary(Op op, ExprId a) {
  HS_CHECK_MSG(IsUnary(op), "Unary() with non-unary op");
  Expr e;
  e.op = op;
  switch (op) {
    case Op::kRedAnd:
    case Op::kRedOr:
    case Op::kRedXor:
    case Op::kLogicNot:
      e.width = 1;
      break;
    default:
      e.width = exprs_[a].width;
  }
  e.args = {a};
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

ExprId Design::Binary(Op op, ExprId a, ExprId b) {
  HS_CHECK_MSG(IsBinary(op), "Binary() with non-binary op");
  Expr e;
  e.op = op;
  switch (op) {
    case Op::kEq: case Op::kNe:
    case Op::kLtU: case Op::kLeU: case Op::kGtU: case Op::kGeU:
    case Op::kLtS: case Op::kLeS: case Op::kGtS: case Op::kGeS:
    case Op::kLogicAnd: case Op::kLogicOr:
      e.width = 1;
      break;
    case Op::kShl: case Op::kShrL: case Op::kShrA:
      e.width = exprs_[a].width;  // shift amount does not widen the result
      break;
    default:
      e.width = std::max(exprs_[a].width, exprs_[b].width);
  }
  e.args = {a, b};
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

ExprId Design::Mux(ExprId sel, ExprId then_e, ExprId else_e) {
  Expr e;
  e.op = Op::kMux;
  e.width = std::max(exprs_[then_e].width, exprs_[else_e].width);
  e.args = {sel, then_e, else_e};
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

ExprId Design::Concat(std::vector<ExprId> parts) {
  HS_CHECK_MSG(!parts.empty(), "empty concat");
  unsigned total = 0;
  for (ExprId p : parts) total += exprs_[p].width;
  HS_CHECK_MSG(total <= 64, "concat wider than 64 bits");
  Expr e;
  e.op = Op::kConcat;
  e.width = total;
  e.args = std::move(parts);
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

ExprId Design::Slice(ExprId a, unsigned hi, unsigned lo) {
  HS_CHECK_MSG(hi >= lo && hi < exprs_[a].width, "bad slice bounds");
  Expr e;
  e.op = Op::kSlice;
  e.width = hi - lo + 1;
  e.hi = hi;
  e.lo = lo;
  e.args = {a};
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

ExprId Design::Extend(Op op, ExprId a, unsigned width) {
  HS_CHECK(op == Op::kZext || op == Op::kSext);
  HS_CHECK_MSG(width >= exprs_[a].width && width <= 64, "bad extend width");
  if (width == exprs_[a].width) return a;
  Expr e;
  e.op = op;
  e.width = width;
  e.args = {a};
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

void Design::AddComb(SignalId target, ExprId value) {
  comb_.push_back(CombAssign{target, value});
}

void Design::AddFlop(FlipFlop ff) { flops_.push_back(ff); }

void Design::AddMemWrite(MemWrite mw) { mem_writes_.push_back(mw); }

SignalId Design::FindSignal(const std::string& name) const {
  for (size_t i = 0; i < signals_.size(); ++i) {
    if (signals_[i].name == name) return static_cast<SignalId>(i);
  }
  return kInvalidId;
}

MemoryId Design::FindMemory(const std::string& name) const {
  for (size_t i = 0; i < memories_.size(); ++i) {
    if (memories_[i].name == name) return static_cast<MemoryId>(i);
  }
  return kInvalidId;
}

DesignStats Design::Stats() const {
  DesignStats s;
  s.num_signals = static_cast<unsigned>(signals_.size());
  s.num_flops = static_cast<unsigned>(flops_.size());
  for (const auto& ff : flops_) s.num_flop_bits += signals_[ff.q].width;
  s.num_memories = static_cast<unsigned>(memories_.size());
  for (const auto& m : memories_) s.num_memory_bits += m.width * m.depth;
  s.num_comb_assigns = static_cast<unsigned>(comb_.size());
  s.num_expr_nodes = static_cast<unsigned>(exprs_.size());
  return s;
}

Status Design::Validate() const {
  std::vector<int> drivers(signals_.size(), 0);
  auto check_expr = [&](ExprId id) -> Status {
    if (id < 0 || id >= static_cast<ExprId>(exprs_.size()))
      return Internal("dangling expr id");
    return Status::Ok();
  };
  for (const auto& ca : comb_) {
    if (ca.target < 0 || ca.target >= static_cast<SignalId>(signals_.size()))
      return Internal("comb assign to dangling signal");
    HS_RETURN_IF_ERROR(check_expr(ca.value));
    const Signal& t = signals_[ca.target];
    if (t.kind == SignalKind::kInput)
      return Internal("comb assign drives input '" + t.name + "'");
    if (t.kind == SignalKind::kReg)
      return Internal("comb assign drives reg '" + t.name + "'");
    if (exprs_[ca.value].width > t.width)
      return Internal("comb assign wider than target '" + t.name + "'");
    drivers[ca.target]++;
  }
  for (const auto& ff : flops_) {
    if (ff.q < 0 || ff.q >= static_cast<SignalId>(signals_.size()))
      return Internal("flop drives dangling signal");
    HS_RETURN_IF_ERROR(check_expr(ff.next));
    const Signal& t = signals_[ff.q];
    if (t.kind != SignalKind::kReg && t.kind != SignalKind::kOutput)
      return Internal("flop drives non-reg '" + t.name + "'");
    drivers[ff.q]++;
  }
  for (size_t i = 0; i < signals_.size(); ++i) {
    if (drivers[i] > 1)
      return Internal("signal '" + signals_[i].name + "' has multiple drivers");
  }
  for (const auto& mw : mem_writes_) {
    if (mw.memory < 0 || mw.memory >= static_cast<MemoryId>(memories_.size()))
      return Internal("mem write to dangling memory");
    HS_RETURN_IF_ERROR(check_expr(mw.enable));
    HS_RETURN_IF_ERROR(check_expr(mw.addr));
    HS_RETURN_IF_ERROR(check_expr(mw.data));
  }
  for (const auto& e : exprs_) {
    for (ExprId a : e.args) HS_RETURN_IF_ERROR(check_expr(a));
    if (e.op == Op::kSignal &&
        (e.signal < 0 || e.signal >= static_cast<SignalId>(signals_.size())))
      return Internal("expr references dangling signal");
    if (e.op == Op::kMemRead &&
        (e.memory < 0 || e.memory >= static_cast<MemoryId>(memories_.size())))
      return Internal("expr references dangling memory");
  }
  return Status::Ok();
}

Result<uint64_t> EvalConstExpr(const Design& d, ExprId id) {
  const Expr& e = d.expr(id);
  auto arg = [&](int i) -> Result<uint64_t> {
    return EvalConstExpr(d, e.args[i]);
  };
  switch (e.op) {
    case Op::kConst:
      return e.imm;
    case Op::kSignal:
    case Op::kMemRead:
      return InvalidArgument("expression is not constant");
    default:
      break;
  }
  // Unary / binary / other: evaluate children then fold.
  std::vector<uint64_t> vals;
  vals.reserve(e.args.size());
  for (size_t i = 0; i < e.args.size(); ++i) {
    auto r = arg(static_cast<int>(i));
    if (!r.ok()) return r.status();
    vals.push_back(r.value());
  }
  const unsigned w = e.width;
  auto aw = [&](int i) { return d.expr(e.args[i]).width; };
  switch (e.op) {
    case Op::kNot: return TruncBits(~vals[0], w);
    case Op::kNeg: return TruncBits(~vals[0] + 1, w);
    case Op::kRedAnd: return vals[0] == LowMask(aw(0)) ? 1u : 0u;
    case Op::kRedOr: return vals[0] != 0 ? 1u : 0u;
    case Op::kRedXor: return XorReduce(vals[0], aw(0));
    case Op::kLogicNot: return vals[0] == 0 ? 1u : 0u;
    case Op::kAnd: return vals[0] & vals[1];
    case Op::kOr: return vals[0] | vals[1];
    case Op::kXor: return vals[0] ^ vals[1];
    case Op::kAdd: return TruncBits(vals[0] + vals[1], w);
    case Op::kSub: return TruncBits(vals[0] - vals[1], w);
    case Op::kMul: return TruncBits(vals[0] * vals[1], w);
    case Op::kDiv: return vals[1] == 0 ? LowMask(w) : TruncBits(vals[0] / vals[1], w);
    case Op::kMod: return vals[1] == 0 ? TruncBits(vals[0], w) : TruncBits(vals[0] % vals[1], w);
    case Op::kEq: return vals[0] == vals[1] ? 1u : 0u;
    case Op::kNe: return vals[0] != vals[1] ? 1u : 0u;
    case Op::kLtU: return vals[0] < vals[1] ? 1u : 0u;
    case Op::kLeU: return vals[0] <= vals[1] ? 1u : 0u;
    case Op::kGtU: return vals[0] > vals[1] ? 1u : 0u;
    case Op::kGeU: return vals[0] >= vals[1] ? 1u : 0u;
    case Op::kLtS: return SignExtend(vals[0], aw(0)) < SignExtend(vals[1], aw(1)) ? 1u : 0u;
    case Op::kLeS: return SignExtend(vals[0], aw(0)) <= SignExtend(vals[1], aw(1)) ? 1u : 0u;
    case Op::kGtS: return SignExtend(vals[0], aw(0)) > SignExtend(vals[1], aw(1)) ? 1u : 0u;
    case Op::kGeS: return SignExtend(vals[0], aw(0)) >= SignExtend(vals[1], aw(1)) ? 1u : 0u;
    case Op::kShl: return vals[1] >= w ? 0 : TruncBits(vals[0] << vals[1], w);
    case Op::kShrL: return vals[1] >= 64 ? 0 : TruncBits(vals[0], aw(0)) >> vals[1];
    case Op::kShrA: {
      int64_t s = SignExtend(vals[0], aw(0));
      uint64_t sh = vals[1] >= 63 ? 63 : vals[1];
      return TruncBits(static_cast<uint64_t>(s >> sh), w);
    }
    case Op::kLogicAnd: return (vals[0] != 0 && vals[1] != 0) ? 1u : 0u;
    case Op::kLogicOr: return (vals[0] != 0 || vals[1] != 0) ? 1u : 0u;
    case Op::kMux: return vals[0] != 0 ? TruncBits(vals[1], w) : TruncBits(vals[2], w);
    case Op::kConcat: {
      uint64_t acc = 0;
      for (size_t i = 0; i < vals.size(); ++i) {
        acc = (acc << aw(static_cast<int>(i))) | TruncBits(vals[i], aw(static_cast<int>(i)));
      }
      return acc;
    }
    case Op::kSlice: return ExtractBits(vals[0], e.hi, e.lo);
    case Op::kZext: return vals[0];
    case Op::kSext: return TruncBits(static_cast<uint64_t>(SignExtend(vals[0], aw(0))), w);
    case Op::kConst:
    case Op::kSignal:
    case Op::kMemRead:
      break;
  }
  return Internal("unhandled op in EvalConstExpr");
}

}  // namespace hardsnap::rtl
