// Elaboration: AST -> flat rtl::Design.
//
// Responsibilities:
//  * resolve parameters / localparams (including instance overrides);
//  * evaluate ranges to concrete widths and memory depths;
//  * flatten the instance hierarchy (child signals get "inst." prefixes);
//  * lower always@(posedge clk) blocks into per-register next-state
//    expressions (FlipFlop) and guarded memory write ports, implementing
//    non-blocking-assignment semantics (RHS reads pre-edge values, the
//    last assignment to a register in a block wins, partial-bit updates
//    merge);
//  * lower always@* blocks with blocking assignments into combinational
//    assignments, rejecting latch inference (every target must be assigned
//    on every path);
//  * identify the clock ("clk") and reset ("rst"/"reset"/"rst_n" is not
//    supported — reset is active-high synchronous) inputs of the top.
//
// Width rules (simplified but consistent Verilog-style semantics, see
// README "HDL subset" for details): values are carried zero-extended in
// 64-bit lanes; arithmetic results take max(operand widths) and wrap;
// unsized literals are 32 bits wide; assignment truncates or zero-extends
// to the target width; comparisons are unsigned unless an operand is
// wrapped in $signed(); >>> is an arithmetic shift of its left operand.
#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "rtl/ast.h"
#include "rtl/ir.h"

namespace hardsnap::rtl {

struct ElaborateOptions {
  std::string top;  // empty = last module in the source unit
  std::map<std::string, uint64_t> param_overrides;
};

Result<Design> Elaborate(const ast::SourceUnit& unit,
                         const ElaborateOptions& options = {});

// Parse + elaborate in one step. `top` empty selects the last module.
Result<Design> CompileVerilog(const std::string& source,
                              const std::string& top = "",
                              const std::map<std::string, uint64_t>&
                                  param_overrides = {});

}  // namespace hardsnap::rtl
