#include "rtl/elaborate.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bitops.h"
#include "rtl/parser.h"

namespace hardsnap::rtl {
namespace {

using ast::BinOp;
using ast::ExprKind;
using ast::StmtKind;
using ast::UnOp;

Status ErrAt(int line, const std::string& msg) {
  return ParseError("line " + std::to_string(line) + ": " + msg);
}

// Per-module-instance elaboration scope: local name -> flat design object.
struct Scope {
  std::string prefix;  // "" for top, "u_core." for children
  std::map<std::string, uint64_t> params;
  std::map<std::string, SignalId> signals;
  std::map<std::string, MemoryId> memories;
};

class Elaborator {
 public:
  Elaborator(const ast::SourceUnit& unit, Design* design)
      : unit_(unit), design_(design) {}

  Status Run(const ast::Module& top,
             const std::map<std::string, uint64_t>& overrides) {
    Scope scope;
    scope.prefix = "";
    return ElaborateModule(top, overrides, /*is_top=*/true, &scope,
                           /*port_conns=*/nullptr, /*parent=*/nullptr);
  }

 private:
  // Environment for statement lowering: target signal -> pending value.
  using Env = std::map<SignalId, ExprId>;

  const ast::Module* FindModule(const std::string& name) {
    for (const auto& m : unit_.modules)
      if (m.name == name) return &m;
    return nullptr;
  }

  // ---------------------------------------------------------------------
  // Constant expression evaluation over the AST (parameters, widths).
  Result<uint64_t> EvalConst(const ast::Expr& e, const Scope& scope) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return e.number_width > 0 ? TruncBits(e.value, e.number_width)
                                  : e.value;
      case ExprKind::kIdent: {
        auto it = scope.params.find(e.name);
        if (it != scope.params.end()) return it->second;
        return ErrAt(e.line, "'" + e.name + "' is not a constant parameter");
      }
      case ExprKind::kUnary: {
        auto a = EvalConst(*e.args[0], scope);
        if (!a.ok()) return a.status();
        switch (e.un_op) {
          case UnOp::kNot: return ~a.value();
          case UnOp::kNeg: return ~a.value() + 1;
          case UnOp::kLogicNot: return a.value() == 0 ? 1u : 0u;
          case UnOp::kPlus: return a.value();
          default: return ErrAt(e.line, "reduction op in constant expr");
        }
      }
      case ExprKind::kBinary: {
        auto a = EvalConst(*e.args[0], scope);
        if (!a.ok()) return a.status();
        auto b = EvalConst(*e.args[1], scope);
        if (!b.ok()) return b.status();
        uint64_t x = a.value(), y = b.value();
        switch (e.bin_op) {
          case BinOp::kAdd: return x + y;
          case BinOp::kSub: return x - y;
          case BinOp::kMul: return x * y;
          case BinOp::kDiv:
            if (y == 0) return ErrAt(e.line, "constant divide by zero");
            return x / y;
          case BinOp::kMod:
            if (y == 0) return ErrAt(e.line, "constant modulo by zero");
            return x % y;
          case BinOp::kPow: {
            uint64_t r = 1;
            for (uint64_t i = 0; i < y; ++i) r *= x;
            return r;
          }
          case BinOp::kAnd: return x & y;
          case BinOp::kOr: return x | y;
          case BinOp::kXor: return x ^ y;
          case BinOp::kShl: return y >= 64 ? 0 : x << y;
          case BinOp::kShr: return y >= 64 ? 0 : x >> y;
          case BinOp::kEq: return x == y ? 1u : 0u;
          case BinOp::kNe: return x != y ? 1u : 0u;
          case BinOp::kLt: return x < y ? 1u : 0u;
          case BinOp::kLe: return x <= y ? 1u : 0u;
          case BinOp::kGt: return x > y ? 1u : 0u;
          case BinOp::kGe: return x >= y ? 1u : 0u;
          default:
            return ErrAt(e.line, "operator not allowed in constant expr");
        }
      }
      case ExprKind::kTernary: {
        auto c = EvalConst(*e.args[0], scope);
        if (!c.ok()) return c.status();
        return EvalConst(c.value() ? *e.args[1] : *e.args[2], scope);
      }
      default:
        return ErrAt(e.line, "expression is not constant");
    }
  }

  Result<unsigned> EvalWidth(const ast::ExprPtr& msb, const ast::ExprPtr& lsb,
                             const Scope& scope, int line) {
    if (!msb) return 1u;
    auto hi = EvalConst(*msb, scope);
    if (!hi.ok()) return hi.status();
    auto lo = EvalConst(*lsb, scope);
    if (!lo.ok()) return lo.status();
    if (lo.value() != 0)
      return ErrAt(line, "ranges must be of the form [N:0]");
    if (hi.value() >= 64) return ErrAt(line, "signals wider than 64 bits");
    return static_cast<unsigned>(hi.value()) + 1;
  }

  // ---------------------------------------------------------------------
  // RHS expression lowering. `env` is non-null inside always@* blocks
  // (blocking-assignment reads see prior writes from the same block).
  struct Lowered {
    ExprId id = kInvalidId;
    bool is_signed = false;
  };

  Result<Lowered> LowerExpr(const ast::Expr& e, const Scope& scope,
                            const Env* env) {
    switch (e.kind) {
      case ExprKind::kNumber: {
        unsigned w = e.number_width > 0 ? static_cast<unsigned>(e.number_width)
                                        : 32;
        return Lowered{design_->Const(e.value, w), false};
      }
      case ExprKind::kIdent: {
        // parameter?
        auto pit = scope.params.find(e.name);
        if (pit != scope.params.end())
          return Lowered{design_->Const(pit->second, 32), false};
        auto sit = scope.signals.find(e.name);
        if (sit == scope.signals.end())
          return ErrAt(e.line, "unknown identifier '" + e.name + "'");
        SignalId s = sit->second;
        if (env) {
          auto eit = env->find(s);
          if (eit != env->end()) return Lowered{eit->second, false};
        }
        return Lowered{design_->Sig(s), false};
      }
      case ExprKind::kIndex: {
        // memory word read or signal bit-select
        auto mit = scope.memories.find(e.name);
        if (mit != scope.memories.end()) {
          auto addr = LowerExpr(*e.args[0], scope, env);
          if (!addr.ok()) return addr.status();
          return Lowered{design_->MemRead(mit->second, addr.value().id), false};
        }
        auto base = LowerIdent(e.name, scope, env, e.line);
        if (!base.ok()) return base.status();
        // constant index -> slice; dynamic -> shift+slice
        auto cidx = EvalConst(*e.args[0], scope);
        if (cidx.ok()) {
          unsigned w = design_->expr(base.value()).width;
          if (cidx.value() >= w)
            return ErrAt(e.line, "bit index out of range");
          unsigned i = static_cast<unsigned>(cidx.value());
          return Lowered{design_->Slice(base.value(), i, i), false};
        }
        auto idx = LowerExpr(*e.args[0], scope, env);
        if (!idx.ok()) return idx.status();
        ExprId shifted =
            design_->Binary(Op::kShrL, base.value(), idx.value().id);
        return Lowered{design_->Slice(shifted, 0, 0), false};
      }
      case ExprKind::kRange: {
        auto base = LowerIdent(e.name, scope, env, e.line);
        if (!base.ok()) return base.status();
        auto hi = EvalConst(*e.args[0], scope);
        if (!hi.ok()) return hi.status();
        auto lo = EvalConst(*e.args[1], scope);
        if (!lo.ok()) return lo.status();
        unsigned w = design_->expr(base.value()).width;
        if (hi.value() < lo.value() || hi.value() >= w)
          return ErrAt(e.line, "part-select out of range");
        return Lowered{design_->Slice(base.value(),
                                      static_cast<unsigned>(hi.value()),
                                      static_cast<unsigned>(lo.value())),
                       false};
      }
      case ExprKind::kUnary: {
        auto a = LowerExpr(*e.args[0], scope, env);
        if (!a.ok()) return a.status();
        Op op = Op::kAdd;
        switch (e.un_op) {
          case UnOp::kNot: op = Op::kNot; break;
          case UnOp::kNeg: op = Op::kNeg; break;
          case UnOp::kRedAnd: op = Op::kRedAnd; break;
          case UnOp::kRedOr: op = Op::kRedOr; break;
          case UnOp::kRedXor: op = Op::kRedXor; break;
          case UnOp::kLogicNot: op = Op::kLogicNot; break;
          case UnOp::kPlus: return a;
        }
        return Lowered{design_->Unary(op, a.value().id), a.value().is_signed};
      }
      case ExprKind::kBinary: {
        auto a = LowerExpr(*e.args[0], scope, env);
        if (!a.ok()) return a.status();
        auto b = LowerExpr(*e.args[1], scope, env);
        if (!b.ok()) return b.status();
        const bool sgn = a.value().is_signed || b.value().is_signed;
        Op op = Op::kAdd;
        switch (e.bin_op) {
          case BinOp::kAdd: op = Op::kAdd; break;
          case BinOp::kSub: op = Op::kSub; break;
          case BinOp::kMul: op = Op::kMul; break;
          case BinOp::kDiv: op = Op::kDiv; break;
          case BinOp::kMod: op = Op::kMod; break;
          case BinOp::kPow:
            return ErrAt(e.line, "'**' only allowed in constant expressions");
          case BinOp::kAnd: op = Op::kAnd; break;
          case BinOp::kOr: op = Op::kOr; break;
          case BinOp::kXor: op = Op::kXor; break;
          case BinOp::kEq: op = Op::kEq; break;
          case BinOp::kNe: op = Op::kNe; break;
          case BinOp::kLt: op = sgn ? Op::kLtS : Op::kLtU; break;
          case BinOp::kLe: op = sgn ? Op::kLeS : Op::kLeU; break;
          case BinOp::kGt: op = sgn ? Op::kGtS : Op::kGtU; break;
          case BinOp::kGe: op = sgn ? Op::kGeS : Op::kGeU; break;
          case BinOp::kShl: op = Op::kShl; break;
          case BinOp::kShr: op = Op::kShrL; break;
          case BinOp::kShrA: op = Op::kShrA; break;
          case BinOp::kLogicAnd: op = Op::kLogicAnd; break;
          case BinOp::kLogicOr: op = Op::kLogicOr; break;
        }
        return Lowered{design_->Binary(op, a.value().id, b.value().id), sgn};
      }
      case ExprKind::kTernary: {
        auto c = LowerExpr(*e.args[0], scope, env);
        if (!c.ok()) return c.status();
        auto t = LowerExpr(*e.args[1], scope, env);
        if (!t.ok()) return t.status();
        auto f = LowerExpr(*e.args[2], scope, env);
        if (!f.ok()) return f.status();
        ExprId cond1 = ToBool(c.value().id);
        return Lowered{design_->Mux(cond1, t.value().id, f.value().id), false};
      }
      case ExprKind::kConcat: {
        std::vector<ExprId> parts;
        for (const auto& p : e.args) {
          auto pe = LowerExpr(*p, scope, env);
          if (!pe.ok()) return pe.status();
          parts.push_back(pe.value().id);
        }
        return Lowered{design_->Concat(std::move(parts)), false};
      }
      case ExprKind::kReplicate: {
        auto count = EvalConst(*e.args[0], scope);
        if (!count.ok()) return count.status();
        if (count.value() == 0 || count.value() > 64)
          return ErrAt(e.line, "bad replication count");
        auto body = LowerExpr(*e.args[1], scope, env);
        if (!body.ok()) return body.status();
        std::vector<ExprId> parts(static_cast<size_t>(count.value()),
                                  body.value().id);
        return Lowered{design_->Concat(std::move(parts)), false};
      }
      case ExprKind::kSigned: {
        auto a = LowerExpr(*e.args[0], scope, env);
        if (!a.ok()) return a.status();
        return Lowered{a.value().id, true};
      }
    }
    return ErrAt(e.line, "unhandled expression kind");
  }

  Result<ExprId> LowerIdent(const std::string& name, const Scope& scope,
                            const Env* env, int line) {
    auto sit = scope.signals.find(name);
    if (sit == scope.signals.end())
      return ErrAt(line, "unknown identifier '" + name + "'");
    if (env) {
      auto eit = env->find(sit->second);
      if (eit != env->end()) return eit->second;
    }
    return design_->Sig(sit->second);
  }

  // Reduce an expression to a 1-bit boolean (|x) unless already 1 bit.
  ExprId ToBool(ExprId e) {
    if (design_->expr(e).width == 1) return e;
    return design_->Unary(Op::kRedOr, e);
  }

  // Adapt `value` to exactly `width` bits (truncate; zero-extension is
  // implicit in the value representation, but comb assigns require the
  // expression width to not exceed the target's).
  ExprId FitWidth(ExprId value, unsigned width) {
    unsigned w = design_->expr(value).width;
    if (w > width) return design_->Slice(value, width - 1, 0);
    if (w < width) return design_->Extend(Op::kZext, value, width);
    return value;
  }

  // ---------------------------------------------------------------------
  // Statement lowering.
  struct WalkCtx {
    bool sequential = false;  // posedge block (NBA) vs @* (blocking)
    Env env;
    std::vector<MemWrite> writes;
    ExprId guard = kInvalidId;  // path condition for memory writes
  };

  Status WalkStmt(const ast::Stmt& s, const Scope& scope, WalkCtx* ctx) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& sub : s.body)
          HS_RETURN_IF_ERROR(WalkStmt(*sub, scope, ctx));
        return Status::Ok();
      case StmtKind::kAssign:
        return WalkAssign(s, scope, ctx);
      case StmtKind::kIf: {
        auto c = LowerExpr(*s.cond, scope, ctx->sequential ? nullptr : &ctx->env);
        if (!c.ok()) return c.status();
        ExprId cond = ToBool(c.value().id);
        return WalkBranch(cond, s.then_stmt.get(), s.else_stmt.get(), scope,
                          ctx, s.line);
      }
      case StmtKind::kCase:
        return WalkCase(s, 0, scope, ctx);
    }
    return Internal("unhandled statement kind");
  }

  // Lower if(cond) then else: walk both arms on copies of the env and merge
  // with muxes; memory writes get the path condition folded into enables.
  Status WalkBranch(ExprId cond, const ast::Stmt* then_s,
                    const ast::Stmt* else_s, const Scope& scope, WalkCtx* ctx,
                    int line) {
    WalkCtx then_ctx{ctx->sequential, ctx->env, {},
                     AndGuard(ctx->guard, cond)};
    if (then_s) HS_RETURN_IF_ERROR(WalkStmt(*then_s, scope, &then_ctx));
    WalkCtx else_ctx{ctx->sequential, ctx->env, {},
                     AndGuard(ctx->guard, design_->Unary(Op::kLogicNot, cond))};
    if (else_s) HS_RETURN_IF_ERROR(WalkStmt(*else_s, scope, &else_ctx));

    // Merge register/wire environments.
    std::set<SignalId> keys;
    for (const auto& [k, v] : then_ctx.env) keys.insert(k);
    for (const auto& [k, v] : else_ctx.env) keys.insert(k);
    for (SignalId k : keys) {
      auto t = then_ctx.env.find(k);
      auto f = else_ctx.env.find(k);
      ExprId tv, fv;
      auto base = ctx->env.find(k);
      if (t != then_ctx.env.end()) tv = t->second;
      else if (base != ctx->env.end()) tv = base->second;
      else if (ctx->sequential) tv = design_->Sig(k);
      else
        return ErrAt(line, "latch inferred: '" + design_->signal(k).name +
                               "' not assigned on all paths of always@*");
      if (f != else_ctx.env.end()) fv = f->second;
      else if (base != ctx->env.end()) fv = base->second;
      else if (ctx->sequential) fv = design_->Sig(k);
      else
        return ErrAt(line, "latch inferred: '" + design_->signal(k).name +
                               "' not assigned on all paths of always@*");
      ctx->env[k] = tv == fv ? tv : design_->Mux(cond, tv, fv);
    }
    // Memory writes from both arms carry their own guards already.
    for (auto& w : then_ctx.writes) ctx->writes.push_back(w);
    for (auto& w : else_ctx.writes) ctx->writes.push_back(w);
    return Status::Ok();
  }

  // case(subject) lowered as an if/else-if chain (priority semantics).
  Status WalkCase(const ast::Stmt& s, size_t item_idx, const Scope& scope,
                  WalkCtx* ctx) {
    // find default item (may appear anywhere; applies last)
    if (item_idx >= s.items.size()) return Status::Ok();
    const ast::CaseItem& item = s.items[item_idx];
    if (item.labels.empty()) {
      // default: executes only if no remaining labeled item matches. Since
      // we lower in order, place default last.
      if (item_idx + 1 == s.items.size())
        return WalkStmt(*item.body, scope, ctx);
      // move default to the end by recursing over the rest first
      // (simple approach: treat default as the else of the chain below).
    }
    // Build the chain from this position.
    return WalkCaseChain(s, item_idx, scope, ctx);
  }

  Status WalkCaseChain(const ast::Stmt& s, size_t idx, const Scope& scope,
                       WalkCtx* ctx) {
    // Collect default body (if any) to use as final else.
    const ast::Stmt* default_body = nullptr;
    for (const auto& item : s.items)
      if (item.labels.empty()) default_body = item.body.get();

    return WalkCaseItems(s, 0, default_body, scope, ctx);
    (void)idx;
  }

  Status WalkCaseItems(const ast::Stmt& s, size_t idx,
                       const ast::Stmt* default_body, const Scope& scope,
                       WalkCtx* ctx) {
    // Skip default items in the positional chain.
    while (idx < s.items.size() && s.items[idx].labels.empty()) ++idx;
    if (idx >= s.items.size()) {
      if (default_body) return WalkStmt(*default_body, scope, ctx);
      return Status::Ok();
    }
    const ast::CaseItem& item = s.items[idx];
    const Env* env_for_expr = ctx->sequential ? nullptr : &ctx->env;
    auto subj = LowerExpr(*s.subject, scope, env_for_expr);
    if (!subj.ok()) return subj.status();
    ExprId match = kInvalidId;
    for (const auto& label : item.labels) {
      auto l = LowerExpr(*label, scope, env_for_expr);
      if (!l.ok()) return l.status();
      ExprId eq = design_->Binary(Op::kEq, subj.value().id, l.value().id);
      match = match == kInvalidId ? eq : design_->Binary(Op::kOr, match, eq);
    }
    // then = item body; else = rest of chain. Reuse WalkBranch by packing
    // the "rest of the chain" walk into a manual else context.
    WalkCtx then_ctx{ctx->sequential, ctx->env, {}, AndGuard(ctx->guard, match)};
    HS_RETURN_IF_ERROR(WalkStmt(*item.body, scope, &then_ctx));
    WalkCtx else_ctx{ctx->sequential, ctx->env, {},
                     AndGuard(ctx->guard, design_->Unary(Op::kLogicNot, match))};
    HS_RETURN_IF_ERROR(
        WalkCaseItems(s, idx + 1, default_body, scope, &else_ctx));

    std::set<SignalId> keys;
    for (const auto& [k, v] : then_ctx.env) keys.insert(k);
    for (const auto& [k, v] : else_ctx.env) keys.insert(k);
    for (SignalId k : keys) {
      ExprId tv, fv;
      auto base = ctx->env.find(k);
      auto t = then_ctx.env.find(k);
      auto f = else_ctx.env.find(k);
      if (t != then_ctx.env.end()) tv = t->second;
      else if (base != ctx->env.end()) tv = base->second;
      else if (ctx->sequential) tv = design_->Sig(k);
      else
        return ErrAt(s.line, "latch inferred in case: '" +
                                 design_->signal(k).name + "'");
      if (f != else_ctx.env.end()) fv = f->second;
      else if (base != ctx->env.end()) fv = base->second;
      else if (ctx->sequential) fv = design_->Sig(k);
      else
        return ErrAt(s.line, "latch inferred in case: '" +
                                 design_->signal(k).name + "'");
      ctx->env[k] = tv == fv ? tv : design_->Mux(match, tv, fv);
    }
    for (auto& w : then_ctx.writes) ctx->writes.push_back(w);
    for (auto& w : else_ctx.writes) ctx->writes.push_back(w);
    return Status::Ok();
  }

  ExprId AndGuard(ExprId guard, ExprId cond) {
    if (guard == kInvalidId) return cond;
    return design_->Binary(Op::kLogicAnd, guard, cond);
  }

  Status WalkAssign(const ast::Stmt& s, const Scope& scope, WalkCtx* ctx) {
    if (ctx->sequential && !s.non_blocking)
      return ErrAt(s.line,
                   "blocking '=' in always@(posedge): use '<=' "
                   "(this subset enforces NBA in sequential blocks)");
    if (!ctx->sequential && s.non_blocking)
      return ErrAt(s.line, "non-blocking '<=' in always@*: use '='");

    const Env* env_for_expr = ctx->sequential ? nullptr : &ctx->env;

    // Memory word write: mem[addr] <= data
    auto mit = scope.memories.find(s.lhs.name);
    if (mit != scope.memories.end()) {
      if (!ctx->sequential)
        return ErrAt(s.line, "memory writes only allowed in posedge blocks");
      if (!s.lhs.index)
        return ErrAt(s.line, "memory assignment requires an index");
      auto addr = LowerExpr(*s.lhs.index, scope, env_for_expr);
      if (!addr.ok()) return addr.status();
      auto data = LowerExpr(*s.rhs, scope, env_for_expr);
      if (!data.ok()) return data.status();
      MemWrite mw;
      mw.memory = mit->second;
      mw.addr = addr.value().id;
      mw.data = FitWidth(data.value().id, design_->memory(mit->second).width);
      mw.enable = ctx->guard == kInvalidId ? design_->Const(1, 1) : ctx->guard;
      ctx->writes.push_back(mw);
      return Status::Ok();
    }

    auto sit = scope.signals.find(s.lhs.name);
    if (sit == scope.signals.end())
      return ErrAt(s.line, "unknown assignment target '" + s.lhs.name + "'");
    SignalId target = sit->second;
    unsigned tw = design_->signal(target).width;

    auto rhs = LowerExpr(*s.rhs, scope, env_for_expr);
    if (!rhs.ok()) return rhs.status();
    ExprId value = rhs.value().id;

    // Current value of the target for read-modify-write (bit/part select).
    auto current = [&]() -> ExprId {
      auto eit = ctx->env.find(target);
      if (eit != ctx->env.end()) return eit->second;
      return design_->Sig(target);
    };

    if (s.lhs.range_msb) {
      auto hi = EvalConst(*s.lhs.range_msb, scope);
      if (!hi.ok()) return hi.status();
      auto lo = EvalConst(*s.lhs.range_lsb, scope);
      if (!lo.ok()) return lo.status();
      if (hi.value() < lo.value() || hi.value() >= tw)
        return ErrAt(s.line, "part-select target out of range");
      unsigned h = static_cast<unsigned>(hi.value());
      unsigned l = static_cast<unsigned>(lo.value());
      ExprId cur = FitWidth(current(), tw);
      std::vector<ExprId> parts;
      if (h + 1 < tw) parts.push_back(design_->Slice(cur, tw - 1, h + 1));
      parts.push_back(FitWidth(value, h - l + 1));
      if (l > 0) parts.push_back(design_->Slice(cur, l - 1, 0));
      ctx->env[target] = design_->Concat(std::move(parts));
      return Status::Ok();
    }
    if (s.lhs.index) {
      // Single-bit write, possibly with a dynamic index:
      //   t = (t & ~(1 << idx)) | ((value&1) << idx)
      auto idx = LowerExpr(*s.lhs.index, scope, env_for_expr);
      if (!idx.ok()) return idx.status();
      ExprId cur = FitWidth(current(), tw);
      ExprId one = design_->Const(1, tw);
      ExprId mask = design_->Binary(Op::kShl, one, idx.value().id);
      ExprId cleared = design_->Binary(Op::kAnd, cur,
                                       design_->Unary(Op::kNot, mask));
      ExprId bit = FitWidth(design_->Slice(FitWidth(value, tw), 0, 0), tw);
      ExprId placed = design_->Binary(Op::kShl, bit, idx.value().id);
      ctx->env[target] = design_->Binary(Op::kOr, cleared, placed);
      return Status::Ok();
    }
    ctx->env[target] = FitWidth(value, tw);
    return Status::Ok();
  }

  // ---------------------------------------------------------------------
  // Module elaboration.
  Status ElaborateModule(const ast::Module& mod,
                         const std::map<std::string, uint64_t>& param_overrides,
                         bool is_top, Scope* scope,
                         const std::vector<ast::PortConn>* port_conns,
                         const Scope* parent) {
    // 1. Parameters.
    for (const auto& p : mod.params) {
      auto it = param_overrides.find(p.name);
      if (it != param_overrides.end()) {
        scope->params[p.name] = it->second;
      } else {
        auto v = EvalConst(*p.value, *scope);
        if (!v.ok()) return v.status();
        scope->params[p.name] = v.value();
      }
    }

    // 2. Which declared regs are sequential state? (assigned in posedge)
    std::set<std::string> seq_targets, comb_targets;
    for (const auto& ab : mod.always) {
      std::set<std::string>* sink = ab.sens == ast::SensKind::kPosedgeClock
                                        ? &seq_targets
                                        : &comb_targets;
      CollectAssignTargets(*ab.body, sink);
    }

    // 3. Declare signals and memories.
    for (const auto& d : mod.nets) {
      if (d.mem_msb) {
        auto hi = EvalConst(*d.mem_msb, *scope);
        if (!hi.ok()) return hi.status();
        auto lo = EvalConst(*d.mem_lsb, *scope);
        if (!lo.ok()) return lo.status();
        uint64_t a = hi.value(), b = lo.value();
        if (a > b) std::swap(a, b);
        if (a != 0)
          return ErrAt(d.line, "memory ranges must start at 0");
        auto width = EvalWidth(d.msb, d.lsb, *scope, d.line);
        if (!width.ok()) return width.status();
        MemoryId m = design_->AddMemory(scope->prefix + d.name, width.value(),
                                        static_cast<unsigned>(b) + 1);
        scope->memories[d.name] = m;
        continue;
      }
      auto width = EvalWidth(d.msb, d.lsb, *scope, d.line);
      if (!width.ok()) return width.status();
      SignalKind kind;
      if (is_top && d.is_port) {
        kind = d.dir == ast::PortDir::kInput ? SignalKind::kInput
                                             : SignalKind::kOutput;
        if (d.dir == ast::PortDir::kOutput && seq_targets.count(d.name))
          kind = SignalKind::kOutput;  // output reg driven by a flop
      } else if (seq_targets.count(d.name)) {
        kind = SignalKind::kReg;
      } else {
        kind = SignalKind::kWire;  // wires + @*-assigned "reg" + child ports
      }
      SignalId s = design_->AddSignal(scope->prefix + d.name, width.value(), kind);
      scope->signals[d.name] = s;
      if (d.init) {
        auto v = LowerExpr(*d.init, *scope, nullptr);
        if (!v.ok()) return v.status();
        design_->AddComb(s, FitWidth(v.value().id, width.value()));
      }
    }

    // 4. Clock / reset conventions at top level.
    if (is_top) {
      SignalId clk = design_->FindSignal("clk");
      if (clk == kInvalidId)
        return ParseError("top module must have an input named 'clk'");
      design_->SetClock(clk);
      SignalId rst = design_->FindSignal("rst");
      if (rst == kInvalidId) rst = design_->FindSignal("reset");
      if (rst != kInvalidId) design_->SetReset(rst);
    }

    // 5. Port connections from the parent (child instances only).
    if (port_conns) {
      std::set<std::string> connected;
      for (const auto& pc : *port_conns) {
        const ast::NetDecl* port = nullptr;
        for (const auto& d : mod.nets)
          if (d.is_port && d.name == pc.port) { port = &d; break; }
        if (!port)
          return ParseError("no port '" + pc.port + "' on module " + mod.name);
        connected.insert(pc.port);
        if (!pc.expr) continue;  // explicitly unconnected
        SignalId child_sig = scope->signals.at(pc.port);
        unsigned cw = design_->signal(child_sig).width;
        if (port->dir == ast::PortDir::kInput) {
          auto v = LowerExpr(*pc.expr, *parent, nullptr);
          if (!v.ok()) return v.status();
          design_->AddComb(child_sig, FitWidth(v.value().id, cw));
        } else {
          // output: connection must be a plain identifier in the parent
          if (pc.expr->kind != ExprKind::kIdent)
            return ErrAt(pc.expr->line,
                         "output port connections must be plain wires");
          auto sit = parent->signals.find(pc.expr->name);
          if (sit == parent->signals.end())
            return ErrAt(pc.expr->line,
                         "unknown wire '" + pc.expr->name + "'");
          unsigned pw = design_->signal(sit->second).width;
          design_->AddComb(sit->second,
                           FitWidth(design_->Sig(child_sig), pw));
        }
      }
      // Unconnected inputs are an error (they would float).
      for (const auto& d : mod.nets) {
        if (d.is_port && d.dir == ast::PortDir::kInput &&
            !connected.count(d.name))
          return ParseError("input port '" + d.name + "' of instance " +
                            scope->prefix + " is unconnected");
      }
    }

    // 6. Continuous assigns.
    for (const auto& ca : mod.assigns) {
      if (ca.lhs.index || ca.lhs.range_msb)
        return ErrAt(ca.line, "assign to bit/part select is unsupported");
      auto sit = scope->signals.find(ca.lhs.name);
      if (sit == scope->signals.end())
        return ErrAt(ca.line, "unknown assign target '" + ca.lhs.name + "'");
      auto v = LowerExpr(*ca.rhs, *scope, nullptr);
      if (!v.ok()) return v.status();
      design_->AddComb(sit->second,
                       FitWidth(v.value().id, design_->signal(sit->second).width));
    }

    // 7. Always blocks.
    for (const auto& ab : mod.always) {
      WalkCtx ctx;
      ctx.sequential = ab.sens == ast::SensKind::kPosedgeClock;
      ctx.guard = kInvalidId;
      HS_RETURN_IF_ERROR(WalkStmt(*ab.body, *scope, &ctx));
      if (ctx.sequential) {
        for (const auto& [target, next] : ctx.env) {
          FlipFlop ff;
          ff.q = target;
          ff.next = FitWidth(next, design_->signal(target).width);
          design_->AddFlop(ff);
        }
        for (const auto& w : ctx.writes) design_->AddMemWrite(w);
      } else {
        if (!ctx.writes.empty())
          return ErrAt(ab.line, "memory writes not allowed in always@*");
        for (const auto& [target, value] : ctx.env) {
          design_->AddComb(target,
                           FitWidth(value, design_->signal(target).width));
        }
      }
    }

    // 8. Instances.
    for (const auto& inst : mod.instances) {
      const ast::Module* child = FindModule(inst.module_name);
      if (!child)
        return ErrAt(inst.line, "unknown module '" + inst.module_name + "'");
      std::map<std::string, uint64_t> child_overrides;
      for (const auto& po : inst.param_overrides) {
        auto v = EvalConst(*po.value, *scope);
        if (!v.ok()) return v.status();
        child_overrides[po.name] = v.value();
      }
      Scope child_scope;
      child_scope.prefix = scope->prefix + inst.instance_name + ".";
      HS_RETURN_IF_ERROR(ElaborateModule(*child, child_overrides,
                                         /*is_top=*/false, &child_scope,
                                         &inst.conns, scope));
    }
    return Status::Ok();
  }

  static void CollectAssignTargets(const ast::Stmt& s,
                                   std::set<std::string>* out) {
    switch (s.kind) {
      case StmtKind::kAssign:
        out->insert(s.lhs.name);
        return;
      case StmtKind::kBlock:
        for (const auto& sub : s.body) CollectAssignTargets(*sub, out);
        return;
      case StmtKind::kIf:
        if (s.then_stmt) CollectAssignTargets(*s.then_stmt, out);
        if (s.else_stmt) CollectAssignTargets(*s.else_stmt, out);
        return;
      case StmtKind::kCase:
        for (const auto& item : s.items) CollectAssignTargets(*item.body, out);
        return;
    }
  }

  const ast::SourceUnit& unit_;
  Design* design_;
};

}  // namespace

Result<Design> Elaborate(const ast::SourceUnit& unit,
                         const ElaborateOptions& options) {
  const ast::Module* top = nullptr;
  if (options.top.empty()) {
    top = &unit.modules.back();
  } else {
    for (const auto& m : unit.modules)
      if (m.name == options.top) top = &m;
    if (!top) return NotFound("top module '" + options.top + "' not found");
  }
  Design design(top->name);
  Elaborator el(unit, &design);
  HS_RETURN_IF_ERROR(el.Run(*top, options.param_overrides));
  HS_RETURN_IF_ERROR(design.Validate());
  return design;
}

Result<Design> CompileVerilog(const std::string& source, const std::string& top,
                              const std::map<std::string, uint64_t>&
                                  param_overrides) {
  auto unit = ParseVerilog(source);
  if (!unit.ok()) return unit.status();
  ElaborateOptions opts;
  opts.top = top;
  opts.param_overrides = param_overrides;
  return Elaborate(unit.value(), opts);
}

}  // namespace hardsnap::rtl
