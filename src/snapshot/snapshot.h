// Snapshot store and serialization (paper Sec. III-C, "Snapshotting
// Controller ... in charge of saving/restoring snapshots that are
// identified by a unique identifier").
//
// A Snapshot couples the hardware architectural state with bookkeeping:
// which design it belongs to (shape digest, so restoring into the wrong
// design fails loudly), when it was taken, and an optional label. The
// store hands out monotonically increasing SnapshotIds; id 0 is reserved
// as "no snapshot" (the paper's initial state has "no corresponding
// hardware snapshot").
//
// Internally the store is a content-addressed block store (blksnap-style):
// every state is held as a vector of refcounted immutable chunks
// (sim::kChunkWords words each), interned by content hash, so sibling
// snapshots that differ in a few chunks share the rest. The legacy
// full-state API (Put/Get/Update) is preserved — Get materializes lazily
// and caches — and the delta API (PutDelta/UpdateDelta/DeltaBetween)
// creates and extracts snapshots in O(changed chunks).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/serde.h"
#include "common/status.h"
#include "rtl/ir.h"
#include "sim/delta.h"
#include "sim/simulator.h"

namespace hardsnap::snapshot {

using SnapshotId = uint64_t;
inline constexpr SnapshotId kNoSnapshot = 0;

// Stable digest of a design's state shape (flop widths + memory geometry).
// Two designs with the same digest have interchangeable HardwareStates.
uint64_t StateShapeDigest(const rtl::Design& design);

struct Snapshot {
  SnapshotId id = kNoSnapshot;
  uint64_t shape_digest = 0;
  std::string label;
  sim::HardwareState state;
};

// Flat binary encoding (for persistence and for modeling transfer sizes).
std::vector<uint8_t> SerializeState(const sim::HardwareState& state);
Result<sim::HardwareState> DeserializeState(const std::vector<uint8_t>& bytes);

// Exact byte count SerializeState(state) would produce, computed
// arithmetically from the state geometry (magic, length-prefixed flop
// vector, memory count, length-prefixed memory vectors) — so hot paths
// can account "what a full ship would cost" without serializing.
size_t SerializedStateBytes(const sim::HardwareState& state);

// Delta encoding: only the chunks by which a state differs from a base
// the receiver already holds (E6 multi-target transfer ships this instead
// of the full state). Deserialization validates the chunk geometry; apply
// with sim::ApplyDeltaToState against the receiver's copy of the base.
std::vector<uint8_t> SerializeStateDelta(const sim::StateDelta& delta);
Result<sim::StateDelta> DeserializeStateDelta(const std::vector<uint8_t>& bytes);

// Refcounted immutable chunk payload (the store's unit of sharing).
using ChunkPtr = std::shared_ptr<const std::vector<uint64_t>>;

// In-memory snapshot store. Snapshots are immutable once taken (Update /
// UpdateDelta rebind the id to new content, they never mutate chunks that
// another snapshot may share).
//
// Thread safety: every public operation holds an internal mutex, so one
// store may be shared by parallel campaign workers. The chunk payloads
// themselves are immutable (`shared_ptr<const vector>`), so a pointer
// returned by Get stays valid and readable while other threads Put/Drop
// OTHER ids — but Update/UpdateDelta/Drop of the SAME id must not race a
// reader of that id (the id-to-owner discipline is the caller's; each
// campaign worker owns its own id range).
class SnapshotStore {
 public:
  // Cumulative accounting of chunk ingestion (monotonic; the dedup ratio
  // of a workload is bytes_shared / (bytes_copied + bytes_shared)).
  struct Stats {
    uint64_t chunks_stored = 0;   // chunks that had to be copied in
    uint64_t chunks_shared = 0;   // chunks satisfied by an existing copy
    uint64_t bytes_copied = 0;
    uint64_t bytes_shared = 0;
  };

  explicit SnapshotStore(uint64_t shape_digest) : shape_(shape_digest) {
    snapshots_.reserve(64);
  }

  SnapshotId Put(sim::HardwareState state, std::string label = "");

  Result<const Snapshot*> Get(SnapshotId id) const;

  // Replace the state of an existing snapshot (the paper's UpdateState
  // overrides the snapshot associated with S_previous).
  Status Update(SnapshotId id, sim::HardwareState state);

  Status Drop(SnapshotId id);

  // --- delta API (O(changed chunks)) -------------------------------------
  // New snapshot whose content is `base`'s content with `delta` applied;
  // unchanged chunks are shared with the base. delta.base_hash, when set,
  // must match the base's content hash.
  Result<SnapshotId> PutDelta(SnapshotId base, const sim::StateDelta& delta,
                              std::string label = "");
  // Rebind `id` to `base`'s content with `delta` applied (the delta-aware
  // UpdateState: the hardware reported how the state moved since `base`).
  Status UpdateDelta(SnapshotId id, SnapshotId base,
                     const sim::StateDelta& delta);
  // The chunks by which `next` differs from `base`. Chunks the two
  // snapshots share structurally are skipped by pointer comparison.
  Result<sim::StateDelta> DeltaBetween(SnapshotId base, SnapshotId next) const;
  // Content hash of a stored snapshot (HashState of its materialization).
  Result<uint64_t> ContentHash(SnapshotId id) const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshots_.size();
  }
  uint64_t shape_digest() const { return shape_; }

  // Total stored architectural bytes as the flat representation would
  // occupy (logical capacity accounting; O(1) running counter).
  size_t TotalBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }
  // Bytes actually resident after structural sharing (walks the store).
  size_t ResidentBytes() const;

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct Stored {
    mutable Snapshot snap;  // snap.state doubles as materialization cache
    mutable bool materialized = false;
    uint32_t num_flops = 0;
    std::vector<uint32_t> mem_depths;
    std::vector<ChunkPtr> chunks;  // flop chunks, then each memory's chunks
    uint64_t content_hash = 0;
    size_t logical_words = 0;
  };

  ChunkPtr Intern(std::vector<uint64_t> words);
  Stored MakeStored(SnapshotId id, const sim::HardwareState& state,
                    std::string label);
  // Applies `delta` to a copy of `base`'s chunk vector; validates
  // geometry and base_hash. On success fills `out`.
  Status ApplyDelta(const Stored& base, const sim::StateDelta& delta,
                    SnapshotId id, std::string label, Stored* out);
  void Materialize(const Stored& s) const;

  // Serializes all public operations (private helpers run under it).
  mutable std::mutex mu_;
  uint64_t shape_;
  SnapshotId next_id_ = 1;
  std::unordered_map<SnapshotId, Stored> snapshots_;
  // Content-hash interning: hash -> live chunks with that hash (weak, so
  // dropping the last snapshot using a chunk frees it).
  std::unordered_map<uint64_t,
                     std::vector<std::weak_ptr<const std::vector<uint64_t>>>>
      intern_;
  size_t total_bytes_ = 0;
  Stats stats_;
};

}  // namespace hardsnap::snapshot
