// Snapshot store and serialization (paper Sec. III-C, "Snapshotting
// Controller ... in charge of saving/restoring snapshots that are
// identified by a unique identifier").
//
// A Snapshot couples the hardware architectural state with bookkeeping:
// which design it belongs to (shape digest, so restoring into the wrong
// design fails loudly), when it was taken, and an optional label. The
// store hands out monotonically increasing SnapshotIds; id 0 is reserved
// as "no snapshot" (the paper's initial state has "no corresponding
// hardware snapshot").
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/serde.h"
#include "common/status.h"
#include "rtl/ir.h"
#include "sim/simulator.h"

namespace hardsnap::snapshot {

using SnapshotId = uint64_t;
inline constexpr SnapshotId kNoSnapshot = 0;

// Stable digest of a design's state shape (flop widths + memory geometry).
// Two designs with the same digest have interchangeable HardwareStates.
uint64_t StateShapeDigest(const rtl::Design& design);

struct Snapshot {
  SnapshotId id = kNoSnapshot;
  uint64_t shape_digest = 0;
  std::string label;
  sim::HardwareState state;
};

// Flat binary encoding (for persistence and for modeling transfer sizes).
std::vector<uint8_t> SerializeState(const sim::HardwareState& state);
Result<sim::HardwareState> DeserializeState(const std::vector<uint8_t>& bytes);

// In-memory snapshot store with copy-on-write-free semantics: snapshots
// are immutable once taken.
class SnapshotStore {
 public:
  explicit SnapshotStore(uint64_t shape_digest) : shape_(shape_digest) {}

  SnapshotId Put(sim::HardwareState state, std::string label = "");

  Result<const Snapshot*> Get(SnapshotId id) const;

  // Replace the state of an existing snapshot (the paper's UpdateState
  // overrides the snapshot associated with S_previous).
  Status Update(SnapshotId id, sim::HardwareState state);

  Status Drop(SnapshotId id);

  size_t size() const { return snapshots_.size(); }
  uint64_t shape_digest() const { return shape_; }

  // Total stored architectural bytes (for capacity accounting).
  size_t TotalBytes() const;

 private:
  uint64_t shape_;
  SnapshotId next_id_ = 1;
  std::map<SnapshotId, Snapshot> snapshots_;
};

}  // namespace hardsnap::snapshot
