// Snapshot store and serialization (paper Sec. III-C, "Snapshotting
// Controller ... in charge of saving/restoring snapshots that are
// identified by a unique identifier").
//
// A Snapshot couples the hardware architectural state with bookkeeping:
// which design it belongs to (shape digest, so restoring into the wrong
// design fails loudly), when it was taken, and an optional label. The
// store hands out monotonically increasing SnapshotIds; id 0 is reserved
// as "no snapshot" (the paper's initial state has "no corresponding
// hardware snapshot").
//
// Internally the store is a content-addressed block store (blksnap-style):
// every state is held as a vector of refcounted immutable chunks
// (sim::kChunkWords words each), interned by content hash, so sibling
// snapshots that differ in a few chunks share the rest. The legacy
// full-state API (Put/Get/Update) is preserved — Get materializes lazily
// and caches — and the delta API (PutDelta/UpdateDelta/DeltaBetween)
// creates and extracts snapshots in O(changed chunks).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/serde.h"
#include "common/status.h"
#include "rtl/ir.h"
#include "sim/delta.h"
#include "sim/simulator.h"

namespace hardsnap::snapshot {

using SnapshotId = uint64_t;
inline constexpr SnapshotId kNoSnapshot = 0;

// Wire-format version shared by the HSSS (full state), HSSD (delta) and
// HSST (whole-store) containers. Bumped on any layout change; the
// deserializers reject unknown versions with kInvalidArgument instead of
// misparsing a future layout.
inline constexpr uint8_t kStateFormatVersion = 1;

// Stable digest of a design's state shape (flop widths + memory geometry).
// Two designs with the same digest have interchangeable HardwareStates.
uint64_t StateShapeDigest(const rtl::Design& design);

struct Snapshot {
  SnapshotId id = kNoSnapshot;
  uint64_t shape_digest = 0;
  std::string label;
  sim::HardwareState state;
};

// Flat binary encoding (for persistence and for modeling transfer sizes).
std::vector<uint8_t> SerializeState(const sim::HardwareState& state);
Result<sim::HardwareState> DeserializeState(const std::vector<uint8_t>& bytes);

// Exact byte count SerializeState(state) would produce, computed
// arithmetically from the state geometry (magic, length-prefixed flop
// vector, memory count, length-prefixed memory vectors) — so hot paths
// can account "what a full ship would cost" without serializing.
size_t SerializedStateBytes(const sim::HardwareState& state);

// Delta encoding: only the chunks by which a state differs from a base
// the receiver already holds (E6 multi-target transfer ships this instead
// of the full state). Deserialization validates the chunk geometry; apply
// with sim::ApplyDeltaToState against the receiver's copy of the base.
std::vector<uint8_t> SerializeStateDelta(const sim::StateDelta& delta);
Result<sim::StateDelta> DeserializeStateDelta(const std::vector<uint8_t>& bytes);

// Refcounted immutable chunk payload (the store's unit of sharing).
using ChunkPtr = std::shared_ptr<const std::vector<uint64_t>>;

// In-memory snapshot store. Snapshots are immutable once taken (Update /
// UpdateDelta rebind the id to new content, they never mutate chunks that
// another snapshot may share).
//
// Thread safety: every public operation holds an internal mutex, so one
// store may be shared by parallel campaign workers. The chunk payloads
// themselves are immutable (`shared_ptr<const vector>`), so a pointer
// returned by Get stays valid and readable while other threads Put/Drop
// OTHER ids — but Update/UpdateDelta/Drop of the SAME id must not race a
// reader of that id (the id-to-owner discipline is the caller's; each
// campaign worker owns its own id range).
class SnapshotStore {
 public:
  // Cumulative accounting of chunk ingestion (monotonic; the dedup ratio
  // of a workload is bytes_shared / (bytes_copied + bytes_shared)).
  struct Stats {
    uint64_t chunks_stored = 0;   // chunks that had to be copied in
    uint64_t chunks_shared = 0;   // chunks satisfied by an existing copy
    uint64_t bytes_copied = 0;
    uint64_t bytes_shared = 0;
    // Live-memory accounting (point-in-time, not cumulative):
    uint64_t live_bytes = 0;      // resident chunk bytes + cache bytes
    uint64_t cache_bytes = 0;     // materialization caches currently held
    uint64_t cache_evictions = 0; // caches dropped by the byte cap
  };

  explicit SnapshotStore(uint64_t shape_digest) : shape_(shape_digest) {
    snapshots_.reserve(64);
  }

  SnapshotId Put(sim::HardwareState state, std::string label = "");

  // Cap-aware Put: like Put, but when a byte cap is set (SetMaxBytes) and
  // storing `state` would push LiveBytes past it even after evicting every
  // cold materialization cache, fails with kResourceExhausted instead of
  // growing without bound. Put itself never fails (legacy contract).
  Result<SnapshotId> TryPut(sim::HardwareState state, std::string label = "");

  Result<const Snapshot*> Get(SnapshotId id) const;

  // Replace the state of an existing snapshot (the paper's UpdateState
  // overrides the snapshot associated with S_previous).
  Status Update(SnapshotId id, sim::HardwareState state);

  Status Drop(SnapshotId id);

  // --- delta API (O(changed chunks)) -------------------------------------
  // New snapshot whose content is `base`'s content with `delta` applied;
  // unchanged chunks are shared with the base. delta.base_hash, when set,
  // must match the base's content hash.
  Result<SnapshotId> PutDelta(SnapshotId base, const sim::StateDelta& delta,
                              std::string label = "");
  // Rebind `id` to `base`'s content with `delta` applied (the delta-aware
  // UpdateState: the hardware reported how the state moved since `base`).
  Status UpdateDelta(SnapshotId id, SnapshotId base,
                     const sim::StateDelta& delta);
  // The chunks by which `next` differs from `base`. Chunks the two
  // snapshots share structurally are skipped by pointer comparison.
  Result<sim::StateDelta> DeltaBetween(SnapshotId base, SnapshotId next) const;
  // Content hash of a stored snapshot (HashState of its materialization).
  Result<uint64_t> ContentHash(SnapshotId id) const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshots_.size();
  }
  uint64_t shape_digest() const { return shape_; }

  // Live snapshot ids, ascending.
  std::vector<SnapshotId> Ids() const;

  // --- whole-store serde (HSST container) --------------------------------
  // Every snapshot with its id and label, first one as a full HSSS blob,
  // later ones as HSSD deltas against their predecessor where shapes
  // allow. Restore replaces this store's entire contents (including
  // shape digest and the id counter) with the serialized image; on any
  // error the store is left empty rather than half-loaded.
  Result<std::vector<uint8_t>> Serialize() const;
  Status Restore(const std::vector<uint8_t>& bytes);

  // --- memory cap --------------------------------------------------------
  // Caps LiveBytes (resident chunks + materialization caches). When an
  // ingest would exceed it, least-recently-used materialization caches are
  // evicted first; if the chunks alone still do not fit, the ingest fails
  // with kResourceExhausted (TryPut / PutDelta / Update / UpdateDelta)
  // instead of OOMing. 0 = unlimited. NOTE: under a cap, a `Snapshot*`
  // returned by Get may have its cached `state` evicted (and re-filled on
  // the next Get) by a later store operation — cap users must not hold
  // materialized pointers across ingests.
  void SetMaxBytes(size_t max_bytes);
  size_t max_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_bytes_;
  }
  // Resident chunk bytes plus materialization-cache bytes (the number the
  // cap is enforced against).
  size_t LiveBytes() const;

  // Total stored architectural bytes as the flat representation would
  // occupy (logical capacity accounting; O(1) running counter).
  size_t TotalBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }
  // Bytes actually resident after structural sharing (walks the store).
  size_t ResidentBytes() const;

  // Cumulative ingestion counters plus point-in-time live/cache bytes.
  Stats stats() const;

 private:
  struct Stored {
    mutable Snapshot snap;  // snap.state doubles as materialization cache
    mutable bool materialized = false;
    mutable uint64_t last_access = 0;  // eviction recency (cap mode)
    uint32_t num_flops = 0;
    std::vector<uint32_t> mem_depths;
    std::vector<ChunkPtr> chunks;  // flop chunks, then each memory's chunks
    uint64_t content_hash = 0;
    size_t logical_words = 0;
  };

  ChunkPtr Intern(std::vector<uint64_t> words);
  Stored MakeStored(SnapshotId id, const sim::HardwareState& state,
                    std::string label);
  // Applies `delta` to a copy of `base`'s chunk vector; validates
  // geometry and base_hash. On success fills `out`.
  Status ApplyDelta(const Stored& base, const sim::StateDelta& delta,
                    SnapshotId id, std::string label, Stored* out);
  void Materialize(const Stored& s) const;
  // DeltaBetween's body without the lock (Serialize runs under it).
  sim::StateDelta DiffLocked(const Stored& b, const Stored& n) const;
  size_t ResidentBytesLocked() const;
  size_t LiveBytesLocked() const {
    return ResidentBytesLocked() + cache_bytes_;
  }
  void DropCacheLocked(const Stored& s) const;
  // Evicts LRU materialization caches until LiveBytes <= max_bytes_ or
  // nothing evictable remains; `keep` (may be null) is never evicted.
  void EvictCachesLocked(const Stored* keep) const;
  // Cap check for an ingest that grew the store: evict caches, then fail
  // if the resident set alone still exceeds the cap.
  Status EnforceCapLocked(const Stored* keep, const char* op) const;

  // Serializes all public operations (private helpers run under it).
  mutable std::mutex mu_;
  uint64_t shape_;
  SnapshotId next_id_ = 1;
  std::unordered_map<SnapshotId, Stored> snapshots_;
  // Content-hash interning: hash -> live chunks with that hash (weak, so
  // dropping the last snapshot using a chunk frees it).
  std::unordered_map<uint64_t,
                     std::vector<std::weak_ptr<const std::vector<uint64_t>>>>
      intern_;
  size_t total_bytes_ = 0;
  size_t max_bytes_ = 0;             // 0 = unlimited
  mutable size_t cache_bytes_ = 0;   // sum of materialized snap.state bytes
  mutable uint64_t access_tick_ = 0;
  mutable uint64_t cache_evictions_ = 0;
  Stats stats_;
};

}  // namespace hardsnap::snapshot
