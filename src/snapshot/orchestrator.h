// Target orchestration (paper Sec. III-B): one logical hardware device,
// potentially backed by several physical targets, with live state transfer
// between them at any point of the analysis.
//
// The orchestrator owns the "active target" notion: MMIO and Run() go to
// the active target; MoveTo(other) captures the live state on the current
// target, loads it into the destination, and switches routing. The classic
// use (paper): fast-forward long executions on the FPGA, then move to the
// simulator target when full traces are needed.
#pragma once

#include <memory>
#include <vector>

#include "bus/target.h"
#include "common/status.h"
#include "sim/delta.h"

namespace hardsnap::snapshot {

class TargetOrchestrator {
 public:
  // Host-link traffic accounting for migrations (experiment E6): when the
  // destination already holds a previously shipped state, only the delta
  // blob (SerializeStateDelta) crosses the link instead of the full state.
  struct TransferStats {
    uint64_t transfers = 0;
    uint64_t full_bytes = 0;     // what full-state blobs would have cost
    uint64_t shipped_bytes = 0;  // what actually crossed the link
  };

  // The orchestrator does not own the targets; they must outlive it.
  // All targets must execute the same SoC design (interchangeable state).
  explicit TargetOrchestrator(std::vector<bus::HardwareTarget*> targets);

  bus::HardwareTarget& active() { return *targets_[active_]; }
  const bus::HardwareTarget& active() const { return *targets_[active_]; }
  size_t active_index() const { return active_; }
  size_t num_targets() const { return targets_.size(); }
  bus::HardwareTarget& target(size_t i) { return *targets_[i]; }

  // Live state migration. No-op if `index` is already active.
  //
  // Repeat migrations ship a delta against the state the destination last
  // held — but only after probing (HardwareTarget::StateHash) that the
  // destination still holds it. A destination driven behind the
  // orchestrator's back (direct target(i) access, a hardware reset) has
  // a diverged base; applying a delta to it would silently produce wrong
  // state, so such migrations fall back to a full-state ship.
  Status MoveTo(size_t index);

  // Forget the state last shipped to `index` (the delta base). Callers
  // that move a target's live state without going through MoveTo — e.g.
  // OrchestratedTarget::ResetHardware — invalidate the mirror so the next
  // migration does not even need the probe to know a full ship is due.
  void InvalidateMirror(size_t index);

  // Find a target by kind (first match).
  Result<size_t> IndexOf(bus::TargetKind kind) const;

  // Total virtual time across all targets (they represent one device; the
  // device's timeline is the sum of whoever was executing it).
  Duration TotalTime() const;

  const TransferStats& transfer_stats() const { return transfer_stats_; }

 private:
  std::vector<bus::HardwareTarget*> targets_;
  size_t active_ = 0;
  // Per target: the architectural state it last held when the orchestrator
  // left it (the base a delta blob can be expressed against), plus its
  // cached content hash (compared against the destination's live hash
  // before a delta ship).
  std::vector<sim::HardwareState> last_shipped_;
  std::vector<uint64_t> last_shipped_hash_;
  std::vector<bool> has_shipped_;
  TransferStats transfer_stats_;
};

}  // namespace hardsnap::snapshot
