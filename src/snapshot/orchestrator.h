// Target orchestration (paper Sec. III-B): one logical hardware device,
// potentially backed by several physical targets, with live state transfer
// between them at any point of the analysis.
//
// The orchestrator owns the "active target" notion: MMIO and Run() go to
// the active target; MoveTo(other) captures the live state on the current
// target, loads it into the destination, and switches routing. The classic
// use (paper): fast-forward long executions on the FPGA, then move to the
// simulator target when full traces are needed.
#pragma once

#include <memory>
#include <vector>

#include "bus/target.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/delta.h"

namespace hardsnap::snapshot {

class TargetOrchestrator {
 public:
  // Host-link traffic accounting for migrations (experiment E6): when the
  // destination already holds a previously shipped state, only the delta
  // blob (SerializeStateDelta) crosses the link instead of the full state.
  struct TransferStats {
    uint64_t transfers = 0;
    uint64_t full_bytes = 0;     // what full-state blobs would have cost
    uint64_t shipped_bytes = 0;  // what actually crossed the link
    uint64_t corrupt_blobs = 0;    // injected blob corruptions
    uint64_t blob_retries = 0;     // re-ships after a CRC quarantine
    uint64_t delta_fallbacks = 0;  // delta ships abandoned for a full ship
    uint64_t failovers = 0;        // FailOver() switches completed
  };

  // Deterministic fault injection on the serialized blobs a migration
  // ships (the snapshot-integrity soak). Every corruption is caught by
  // the blob CRC: the corrupt copy is quarantined and the ship retried
  // from the intact source state, up to max_ship_attempts; a delta ship
  // that keeps failing falls back to a full-state ship.
  struct MigrationFaults {
    double blob_corrupt_rate = 0.0;  // per-blob probability of one bit flip
    uint64_t seed = 0x6d696772ull;   // dedicated stream, like bus faults
    uint32_t max_ship_attempts = 3;
  };

  // The orchestrator does not own the targets; they must outlive it.
  // All targets must execute the same SoC design (interchangeable state).
  explicit TargetOrchestrator(std::vector<bus::HardwareTarget*> targets);

  bus::HardwareTarget& active() { return *targets_[active_]; }
  const bus::HardwareTarget& active() const { return *targets_[active_]; }
  size_t active_index() const { return active_; }
  size_t num_targets() const { return targets_.size(); }
  bus::HardwareTarget& target(size_t i) { return *targets_[i]; }

  // Live state migration. No-op if `index` is already active.
  //
  // Repeat migrations ship a delta against the state the destination last
  // held — but only after probing (HardwareTarget::StateHash) that the
  // destination still holds it. A destination driven behind the
  // orchestrator's back (direct target(i) access, a hardware reset) has
  // a diverged base; applying a delta to it would silently produce wrong
  // state, so such migrations fall back to a full-state ship.
  Status MoveTo(size_t index);

  // Forget the state last shipped to `index` (the delta base). Callers
  // that move a target's live state without going through MoveTo — e.g.
  // OrchestratedTarget::ResetHardware — invalidate the mirror so the next
  // migration does not even need the probe to know a full ship is due.
  void InvalidateMirror(size_t index);

  void SetMigrationFaults(const MigrationFaults& faults) {
    migration_ = faults;
    fault_rng_ = Rng(faults.seed);
  }

  // Target failover: abandon the active target (its link has been declared
  // dead by the health monitor) and switch to the first responsive standby,
  // re-provisioning it with the nearest intact state this orchestrator
  // holds for the dead target — the mirror from the last orchestrated
  // transfer — or, with no mirror, a power-on reset (the analysis then
  // re-runs its init path and re-captures fresh snapshots). Returns the
  // new active index; kUnavailable when no standby is responsive.
  Result<size_t> FailOver();

  // Find a target by kind (first match).
  Result<size_t> IndexOf(bus::TargetKind kind) const;

  // Total virtual time across all targets (they represent one device; the
  // device's timeline is the sum of whoever was executing it).
  Duration TotalTime() const;

  const TransferStats& transfer_stats() const { return transfer_stats_; }

 private:
  // One bounded-retry ship of `state` (or a delta against the
  // destination's mirror) to target `index`: serialize, run the injector,
  // deserialize (CRC verification), restore, update the destination
  // mirror. Corrupt blobs are quarantined and re-shipped.
  Status ShipFull(size_t index, const sim::HardwareState& state,
                  uint64_t state_hash);
  Status ShipDelta(size_t index, const sim::StateDelta& delta,
                   uint64_t state_hash);
  std::vector<uint8_t> MaybeCorrupt(std::vector<uint8_t> blob);

  std::vector<bus::HardwareTarget*> targets_;
  size_t active_ = 0;
  // Per target: the architectural state it last held when the orchestrator
  // left it (the base a delta blob can be expressed against), plus its
  // cached content hash (compared against the destination's live hash
  // before a delta ship).
  std::vector<sim::HardwareState> last_shipped_;
  std::vector<uint64_t> last_shipped_hash_;
  std::vector<bool> has_shipped_;
  TransferStats transfer_stats_;
  MigrationFaults migration_;
  Rng fault_rng_{migration_.seed};
};

}  // namespace hardsnap::snapshot
