#include "snapshot/orchestrator.h"

namespace hardsnap::snapshot {

TargetOrchestrator::TargetOrchestrator(
    std::vector<bus::HardwareTarget*> targets)
    : targets_(std::move(targets)) {
  HS_CHECK_MSG(!targets_.empty(), "orchestrator needs at least one target");
}

Status TargetOrchestrator::MoveTo(size_t index) {
  if (index >= targets_.size()) return OutOfRange("no such target");
  if (index == active_) return Status::Ok();
  auto state = targets_[active_]->SaveState();
  if (!state.ok()) return state.status();
  HS_RETURN_IF_ERROR(targets_[index]->RestoreState(state.value()));
  active_ = index;
  return Status::Ok();
}

Result<size_t> TargetOrchestrator::IndexOf(bus::TargetKind kind) const {
  for (size_t i = 0; i < targets_.size(); ++i)
    if (targets_[i]->kind() == kind) return i;
  return NotFound("no target of requested kind");
}

Duration TargetOrchestrator::TotalTime() const {
  Duration total;
  for (const auto* t : targets_) total += t->clock().now();
  return total;
}

}  // namespace hardsnap::snapshot
