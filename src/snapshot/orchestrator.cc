#include "snapshot/orchestrator.h"

#include "snapshot/snapshot.h"

namespace hardsnap::snapshot {

TargetOrchestrator::TargetOrchestrator(
    std::vector<bus::HardwareTarget*> targets)
    : targets_(std::move(targets)) {
  HS_CHECK_MSG(!targets_.empty(), "orchestrator needs at least one target");
  last_shipped_.resize(targets_.size());
  has_shipped_.assign(targets_.size(), false);
}

Status TargetOrchestrator::MoveTo(size_t index) {
  if (index >= targets_.size()) return OutOfRange("no such target");
  if (index == active_) return Status::Ok();
  auto state = targets_[active_]->SaveState();
  if (!state.ok()) return state.status();

  ++transfer_stats_.transfers;
  transfer_stats_.full_bytes += SerializeState(state.value()).size();
  if (has_shipped_[index] &&
      sim::StateWords(last_shipped_[index]) ==
          sim::StateWords(state.value())) {
    // The destination still holds the state we last left it with: ship
    // only the chunks that changed since, through the real wire format.
    auto delta = sim::DiffStates(last_shipped_[index], state.value());
    if (delta.ok()) {
      const std::vector<uint8_t> blob = SerializeStateDelta(delta.value());
      transfer_stats_.shipped_bytes += blob.size();
      auto decoded = DeserializeStateDelta(blob);
      if (!decoded.ok()) return decoded.status();
      HS_RETURN_IF_ERROR(
          sim::ApplyDeltaToState(&last_shipped_[index], decoded.value()));
      HS_RETURN_IF_ERROR(
          targets_[index]->RestoreState(last_shipped_[index]));
      last_shipped_[active_] = std::move(state).value();
      has_shipped_[active_] = true;
      active_ = index;
      return Status::Ok();
    }
  }
  const std::vector<uint8_t> blob = SerializeState(state.value());
  transfer_stats_.shipped_bytes += blob.size();
  auto decoded = DeserializeState(blob);
  if (!decoded.ok()) return decoded.status();
  HS_RETURN_IF_ERROR(targets_[index]->RestoreState(decoded.value()));
  last_shipped_[index] = decoded.value();
  has_shipped_[index] = true;
  last_shipped_[active_] = std::move(state).value();
  has_shipped_[active_] = true;
  active_ = index;
  return Status::Ok();
}

Result<size_t> TargetOrchestrator::IndexOf(bus::TargetKind kind) const {
  for (size_t i = 0; i < targets_.size(); ++i)
    if (targets_[i]->kind() == kind) return i;
  return NotFound("no target of requested kind");
}

Duration TargetOrchestrator::TotalTime() const {
  Duration total;
  for (const auto* t : targets_) total += t->clock().now();
  return total;
}

}  // namespace hardsnap::snapshot
