#include "snapshot/orchestrator.h"

#include "snapshot/snapshot.h"

namespace hardsnap::snapshot {

TargetOrchestrator::TargetOrchestrator(
    std::vector<bus::HardwareTarget*> targets)
    : targets_(std::move(targets)) {
  HS_CHECK_MSG(!targets_.empty(), "orchestrator needs at least one target");
  last_shipped_.resize(targets_.size());
  last_shipped_hash_.assign(targets_.size(), 0);
  has_shipped_.assign(targets_.size(), false);
}

std::vector<uint8_t> TargetOrchestrator::MaybeCorrupt(
    std::vector<uint8_t> blob) {
  if (migration_.blob_corrupt_rate > 0 && !blob.empty() &&
      fault_rng_.Chance(migration_.blob_corrupt_rate)) {
    ++transfer_stats_.corrupt_blobs;
    const uint64_t bit = fault_rng_.Below(blob.size() * 8);
    blob[bit / 8] ^= static_cast<uint8_t>(uint8_t{1} << (bit % 8));
  }
  return blob;
}

Status TargetOrchestrator::ShipFull(size_t index,
                                    const sim::HardwareState& state,
                                    uint64_t state_hash) {
  Status last = Internal("ShipFull: no attempt ran");
  for (uint32_t attempt = 0; attempt < migration_.max_ship_attempts;
       ++attempt) {
    if (attempt > 0) ++transfer_stats_.blob_retries;
    const std::vector<uint8_t> blob = MaybeCorrupt(SerializeState(state));
    transfer_stats_.shipped_bytes += blob.size();
    auto decoded = DeserializeState(blob);
    if (!decoded.ok()) {
      // CRC (or structural validation) rejected the received copy: the
      // corrupt blob is quarantined, never restored. The source still
      // holds the intact state — re-serialize and re-send.
      last = decoded.status();
      if (IsTransientFailure(last.code())) continue;
      return last;
    }
    Status restored = targets_[index]->RestoreState(decoded.value());
    if (!restored.ok()) {
      // The destination may hold anything now; drop its delta base.
      InvalidateMirror(index);
      return restored;
    }
    last_shipped_[index] = std::move(decoded).value();
    last_shipped_hash_[index] = state_hash;
    has_shipped_[index] = true;
    return Status::Ok();
  }
  return last;
}

Status TargetOrchestrator::ShipDelta(size_t index,
                                     const sim::StateDelta& delta,
                                     uint64_t state_hash) {
  Status last = Internal("ShipDelta: no attempt ran");
  for (uint32_t attempt = 0; attempt < migration_.max_ship_attempts;
       ++attempt) {
    if (attempt > 0) ++transfer_stats_.blob_retries;
    const std::vector<uint8_t> blob =
        MaybeCorrupt(SerializeStateDelta(delta));
    transfer_stats_.shipped_bytes += blob.size();
    auto decoded = DeserializeStateDelta(blob);
    if (!decoded.ok()) {
      last = decoded.status();
      if (IsTransientFailure(last.code())) continue;
      return last;
    }
    HS_RETURN_IF_ERROR(
        sim::ApplyDeltaToState(&last_shipped_[index], decoded.value()));
    Status restored = targets_[index]->RestoreState(last_shipped_[index]);
    if (!restored.ok()) {
      InvalidateMirror(index);
      return restored;
    }
    last_shipped_hash_[index] = state_hash;
    return Status::Ok();
  }
  return last;
}

Status TargetOrchestrator::MoveTo(size_t index) {
  if (index >= targets_.size()) return OutOfRange("no such target");
  if (index == active_) return Status::Ok();
  if (!targets_[index]->responsive())
    return Unavailable("migration destination target is unresponsive");
  auto state = targets_[active_]->SaveState();
  if (!state.ok()) return state.status();
  const uint64_t state_hash = sim::HashState(state.value());

  ++transfer_stats_.transfers;
  // What a full-state blob would cost, computed from the geometry — no
  // point serializing O(state) bytes just to take their size.
  transfer_stats_.full_bytes += SerializedStateBytes(state.value());
  if (has_shipped_[index] &&
      sim::StateWords(last_shipped_[index]) ==
          sim::StateWords(state.value())) {
    // The mirror says the destination holds the state we last left it
    // with — but the destination may have been driven directly (via
    // target(i) or a hardware reset) since. Probe its live state hash;
    // only ship a delta when it provably still sits on the delta's base.
    auto dest_hash = targets_[index]->StateHash();
    if (dest_hash.ok() && dest_hash.value() == last_shipped_hash_[index]) {
      auto delta = sim::DiffStates(last_shipped_[index], state.value());
      if (delta.ok()) {
        Status shipped = ShipDelta(index, delta.value(), state_hash);
        if (shipped.ok()) {
          last_shipped_[active_] = std::move(state).value();
          last_shipped_hash_[active_] = state_hash;
          has_shipped_[active_] = true;
          active_ = index;
          return Status::Ok();
        }
        if (!IsTransientFailure(shipped.code())) return shipped;
        // Every delta copy arrived corrupt: abandon the delta path and
        // fall back to shipping the (intact) full state below.
        ++transfer_stats_.delta_fallbacks;
      }
    }
  }
  HS_RETURN_IF_ERROR(ShipFull(index, state.value(), state_hash));
  last_shipped_[active_] = std::move(state).value();
  last_shipped_hash_[active_] = state_hash;
  has_shipped_[active_] = true;
  active_ = index;
  return Status::Ok();
}

Result<size_t> TargetOrchestrator::FailOver() {
  const size_t dead = active_;
  size_t next = targets_.size();
  for (size_t i = 0; i < targets_.size(); ++i) {
    if (i == dead) continue;
    if (targets_[i]->responsive()) {
      next = i;
      break;
    }
  }
  if (next == targets_.size())
    return Unavailable("failover: no responsive standby target");
  // Re-provision the standby with the nearest intact state we hold for
  // the dead target: the mirror from the last orchestrated transfer. The
  // standby cannot be refreshed from the dead target itself (its link is
  // gone), so work since that transfer is lost — the analysis layer
  // replays it. With no mirror at all, power-on reset and start fresh.
  if (has_shipped_[dead]) {
    HS_RETURN_IF_ERROR(
        ShipFull(next, last_shipped_[dead], last_shipped_hash_[dead]));
  } else {
    HS_RETURN_IF_ERROR(targets_[next]->ResetHardware());
    InvalidateMirror(next);
  }
  InvalidateMirror(dead);
  ++transfer_stats_.failovers;
  active_ = next;
  return next;
}

void TargetOrchestrator::InvalidateMirror(size_t index) {
  if (index >= targets_.size()) return;
  has_shipped_[index] = false;
  last_shipped_hash_[index] = 0;
}

Result<size_t> TargetOrchestrator::IndexOf(bus::TargetKind kind) const {
  for (size_t i = 0; i < targets_.size(); ++i)
    if (targets_[i]->kind() == kind) return i;
  return NotFound("no target of requested kind");
}

Duration TargetOrchestrator::TotalTime() const {
  Duration total;
  for (const auto* t : targets_) total += t->clock().now();
  return total;
}

}  // namespace hardsnap::snapshot
