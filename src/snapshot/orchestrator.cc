#include "snapshot/orchestrator.h"

#include "snapshot/snapshot.h"

namespace hardsnap::snapshot {

TargetOrchestrator::TargetOrchestrator(
    std::vector<bus::HardwareTarget*> targets)
    : targets_(std::move(targets)) {
  HS_CHECK_MSG(!targets_.empty(), "orchestrator needs at least one target");
  last_shipped_.resize(targets_.size());
  last_shipped_hash_.assign(targets_.size(), 0);
  has_shipped_.assign(targets_.size(), false);
}

Status TargetOrchestrator::MoveTo(size_t index) {
  if (index >= targets_.size()) return OutOfRange("no such target");
  if (index == active_) return Status::Ok();
  auto state = targets_[active_]->SaveState();
  if (!state.ok()) return state.status();
  const uint64_t state_hash = sim::HashState(state.value());

  ++transfer_stats_.transfers;
  // What a full-state blob would cost, computed from the geometry — no
  // point serializing O(state) bytes just to take their size.
  transfer_stats_.full_bytes += SerializedStateBytes(state.value());
  if (has_shipped_[index] &&
      sim::StateWords(last_shipped_[index]) ==
          sim::StateWords(state.value())) {
    // The mirror says the destination holds the state we last left it
    // with — but the destination may have been driven directly (via
    // target(i) or a hardware reset) since. Probe its live state hash;
    // only ship a delta when it provably still sits on the delta's base.
    auto dest_hash = targets_[index]->StateHash();
    if (dest_hash.ok() && dest_hash.value() == last_shipped_hash_[index]) {
      auto delta = sim::DiffStates(last_shipped_[index], state.value());
      if (delta.ok()) {
        const std::vector<uint8_t> blob = SerializeStateDelta(delta.value());
        transfer_stats_.shipped_bytes += blob.size();
        auto decoded = DeserializeStateDelta(blob);
        if (!decoded.ok()) return decoded.status();
        HS_RETURN_IF_ERROR(
            sim::ApplyDeltaToState(&last_shipped_[index], decoded.value()));
        HS_RETURN_IF_ERROR(
            targets_[index]->RestoreState(last_shipped_[index]));
        last_shipped_hash_[index] = state_hash;
        last_shipped_[active_] = std::move(state).value();
        last_shipped_hash_[active_] = state_hash;
        has_shipped_[active_] = true;
        active_ = index;
        return Status::Ok();
      }
    }
  }
  const std::vector<uint8_t> blob = SerializeState(state.value());
  transfer_stats_.shipped_bytes += blob.size();
  auto decoded = DeserializeState(blob);
  if (!decoded.ok()) return decoded.status();
  HS_RETURN_IF_ERROR(targets_[index]->RestoreState(decoded.value()));
  last_shipped_[index] = decoded.value();
  last_shipped_hash_[index] = state_hash;
  has_shipped_[index] = true;
  last_shipped_[active_] = std::move(state).value();
  last_shipped_hash_[active_] = state_hash;
  has_shipped_[active_] = true;
  active_ = index;
  return Status::Ok();
}

void TargetOrchestrator::InvalidateMirror(size_t index) {
  if (index >= targets_.size()) return;
  has_shipped_[index] = false;
  last_shipped_hash_[index] = 0;
}

Result<size_t> TargetOrchestrator::IndexOf(bus::TargetKind kind) const {
  for (size_t i = 0; i < targets_.size(); ++i)
    if (targets_[i]->kind() == kind) return i;
  return NotFound("no target of requested kind");
}

Duration TargetOrchestrator::TotalTime() const {
  Duration total;
  for (const auto* t : targets_) total += t->clock().now();
  return total;
}

}  // namespace hardsnap::snapshot
