#include "snapshot/snapshot.h"

namespace hardsnap::snapshot {

uint64_t StateShapeDigest(const rtl::Design& design) {
  // FNV-1a over the flop widths and memory geometry.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(design.flops().size());
  for (const auto& ff : design.flops()) mix(design.signal(ff.q).width);
  mix(design.memories().size());
  for (const auto& m : design.memories()) {
    mix(m.width);
    mix(m.depth);
  }
  return h;
}

std::vector<uint8_t> SerializeState(const sim::HardwareState& state) {
  ByteWriter w;
  w.PutU32(0x48535353);  // "HSSS"
  w.PutU64Vector(state.flops);
  w.PutU32(static_cast<uint32_t>(state.memories.size()));
  for (const auto& mem : state.memories) w.PutU64Vector(mem);
  return w.Take();
}

Result<sim::HardwareState> DeserializeState(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  auto magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != 0x48535353)
    return InvalidArgument("not a HardSnap state blob");
  sim::HardwareState st;
  auto flops = r.GetU64Vector();
  if (!flops.ok()) return flops.status();
  st.flops = std::move(flops).value();
  auto nmem = r.GetU32();
  if (!nmem.ok()) return nmem.status();
  st.memories.reserve(nmem.value());
  for (uint32_t i = 0; i < nmem.value(); ++i) {
    auto mem = r.GetU64Vector();
    if (!mem.ok()) return mem.status();
    st.memories.push_back(std::move(mem).value());
  }
  if (!r.AtEnd()) return InvalidArgument("trailing bytes in state blob");
  return st;
}

SnapshotId SnapshotStore::Put(sim::HardwareState state, std::string label) {
  const SnapshotId id = next_id_++;
  Snapshot snap;
  snap.id = id;
  snap.shape_digest = shape_;
  snap.label = std::move(label);
  snap.state = std::move(state);
  snapshots_.emplace(id, std::move(snap));
  return id;
}

Result<const Snapshot*> SnapshotStore::Get(SnapshotId id) const {
  auto it = snapshots_.find(id);
  if (it == snapshots_.end())
    return NotFound("snapshot " + std::to_string(id) + " does not exist");
  return &it->second;
}

Status SnapshotStore::Update(SnapshotId id, sim::HardwareState state) {
  auto it = snapshots_.find(id);
  if (it == snapshots_.end())
    return NotFound("snapshot " + std::to_string(id) + " does not exist");
  it->second.state = std::move(state);
  return Status::Ok();
}

Status SnapshotStore::Drop(SnapshotId id) {
  if (snapshots_.erase(id) == 0)
    return NotFound("snapshot " + std::to_string(id) + " does not exist");
  return Status::Ok();
}

size_t SnapshotStore::TotalBytes() const {
  size_t bytes = 0;
  for (const auto& [id, snap] : snapshots_) {
    bytes += snap.state.flops.size() * 8;
    for (const auto& mem : snap.state.memories) bytes += mem.size() * 8;
  }
  return bytes;
}

}  // namespace hardsnap::snapshot
