#include "snapshot/snapshot.h"

#include <algorithm>

#include "common/crc32.h"

namespace hardsnap::snapshot {

using sim::kChunkWords;
using sim::NumChunks;

namespace {

// End-to-end integrity: every serialized blob carries a trailing CRC32
// over everything before it. Computed once at serialization, verified
// FIRST at deserialization — a bit flipped anywhere in transit (lossy
// link, bad storage) fails as kDataLoss before any field is trusted.
void AppendCrc(ByteWriter* w) {
  w->PutU32(Crc32(w->bytes().data(), w->bytes().size()));
}

Status VerifyCrc(const std::vector<uint8_t>& bytes, const char* what) {
  if (bytes.size() < 4)
    return DataLoss(std::string(what) + ": too short for a CRC trailer");
  const size_t body = bytes.size() - 4;
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) stored |= uint32_t{bytes[body + i]} << (8 * i);
  if (stored != Crc32(bytes.data(), body))
    return DataLoss(std::string(what) + ": CRC mismatch (corrupt blob)");
  return Status::Ok();
}

}  // namespace

uint64_t StateShapeDigest(const rtl::Design& design) {
  // FNV-1a over the flop widths and memory geometry.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(design.flops().size());
  for (const auto& ff : design.flops()) mix(design.signal(ff.q).width);
  mix(design.memories().size());
  for (const auto& m : design.memories()) {
    mix(m.width);
    mix(m.depth);
  }
  return h;
}

namespace {

// Shared version-byte check for the HSSS/HSSD/HSST containers.
Status CheckFormatVersion(ByteReader* r, const char* what) {
  auto version = r->GetU8();
  if (!version.ok()) return version.status();
  if (version.value() != kStateFormatVersion)
    return InvalidArgument(std::string(what) + ": unsupported format version " +
                           std::to_string(version.value()) + " (expected " +
                           std::to_string(kStateFormatVersion) + ")");
  return Status::Ok();
}

}  // namespace

std::vector<uint8_t> SerializeState(const sim::HardwareState& state) {
  ByteWriter w;
  w.PutU32(0x48535353);  // "HSSS"
  w.PutU8(kStateFormatVersion);
  w.PutU64Vector(state.flops);
  w.PutU32(static_cast<uint32_t>(state.memories.size()));
  for (const auto& mem : state.memories) w.PutU64Vector(mem);
  AppendCrc(&w);
  return w.Take();
}

size_t SerializedStateBytes(const sim::HardwareState& state) {
  // magic u32 + version u8 + flop-vector length u32 + memory-count u32 +
  // CRC32 trailer, one length u32 per memory, 8 bytes per word everywhere.
  return 17 + state.memories.size() * 4 + sim::StateWords(state) * 8;
}

Result<sim::HardwareState> DeserializeState(
    const std::vector<uint8_t>& bytes) {
  HS_RETURN_IF_ERROR(VerifyCrc(bytes, "state blob"));
  ByteReader r(bytes);
  auto magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != 0x48535353)
    return InvalidArgument("not a HardSnap state blob");
  HS_RETURN_IF_ERROR(CheckFormatVersion(&r, "state blob"));
  sim::HardwareState st;
  auto flops = r.GetU64Vector();
  if (!flops.ok()) return flops.status();
  st.flops = std::move(flops).value();
  auto nmem = r.GetU32();
  if (!nmem.ok()) return nmem.status();
  st.memories.reserve(nmem.value());
  for (uint32_t i = 0; i < nmem.value(); ++i) {
    auto mem = r.GetU64Vector();
    if (!mem.ok()) return mem.status();
    st.memories.push_back(std::move(mem).value());
  }
  if (r.remaining() != 4)  // exactly the CRC trailer must remain
    return InvalidArgument("trailing bytes in state blob");
  return st;
}

std::vector<uint8_t> SerializeStateDelta(const sim::StateDelta& delta) {
  ByteWriter w;
  w.PutU32(0x48535344);  // "HSSD"
  w.PutU8(kStateFormatVersion);
  w.PutU64(delta.base_hash);
  w.PutU32(delta.chunk_words);
  w.PutU32(delta.num_flops);
  w.PutU32(static_cast<uint32_t>(delta.mem_depths.size()));
  for (uint32_t d : delta.mem_depths) w.PutU32(d);
  w.PutU32(static_cast<uint32_t>(delta.chunks.size()));
  for (const auto& c : delta.chunks) {
    w.PutU32(c.space);
    w.PutU32(c.index);
    w.PutU64Vector(c.words);
  }
  AppendCrc(&w);
  return w.Take();
}

Result<sim::StateDelta> DeserializeStateDelta(
    const std::vector<uint8_t>& bytes) {
  HS_RETURN_IF_ERROR(VerifyCrc(bytes, "delta blob"));
  ByteReader r(bytes);
  auto magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != 0x48535344)
    return InvalidArgument("not a HardSnap delta blob");
  HS_RETURN_IF_ERROR(CheckFormatVersion(&r, "delta blob"));
  sim::StateDelta d;
  auto base = r.GetU64();
  if (!base.ok()) return base.status();
  d.base_hash = base.value();
  auto cw = r.GetU32();
  if (!cw.ok()) return cw.status();
  d.chunk_words = cw.value();
  if (d.chunk_words != kChunkWords)
    return InvalidArgument("delta blob chunk size mismatch");
  auto nf = r.GetU32();
  if (!nf.ok()) return nf.status();
  d.num_flops = nf.value();
  auto nmem = r.GetU32();
  if (!nmem.ok()) return nmem.status();
  d.mem_depths.reserve(nmem.value());
  for (uint32_t i = 0; i < nmem.value(); ++i) {
    auto depth = r.GetU32();
    if (!depth.ok()) return depth.status();
    d.mem_depths.push_back(depth.value());
  }
  auto nchunks = r.GetU32();
  if (!nchunks.ok()) return nchunks.status();
  d.chunks.reserve(nchunks.value());
  for (uint32_t i = 0; i < nchunks.value(); ++i) {
    sim::DeltaChunk c;
    auto space = r.GetU32();
    if (!space.ok()) return space.status();
    c.space = space.value();
    auto index = r.GetU32();
    if (!index.ok()) return index.status();
    c.index = index.value();
    auto words = r.GetU64Vector();
    if (!words.ok()) return words.status();
    c.words = std::move(words).value();
    // Validate chunk geometry against the declared shape so a corrupt
    // blob fails here rather than scribbling on a target later.
    if (c.space > d.mem_depths.size())
      return InvalidArgument("delta blob chunk space out of range");
    const size_t space_words =
        c.space == 0 ? d.num_flops : d.mem_depths[c.space - 1];
    const size_t start = size_t{c.index} * kChunkWords;
    if (start >= space_words)
      return InvalidArgument("delta blob chunk index out of range");
    if (c.words.size() != std::min<size_t>(kChunkWords, space_words - start))
      return InvalidArgument("delta blob chunk payload size mismatch");
    d.chunks.push_back(std::move(c));
  }
  if (r.remaining() != 4)  // exactly the CRC trailer must remain
    return InvalidArgument("trailing bytes in delta blob");
  return d;
}

namespace {

uint64_t HashChunk(const std::vector<uint64_t>& words) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t w : words) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

// Chunk layout of one stored snapshot: flop chunks first, then each
// memory's chunks. Returns the linear chunk index of (space, index).
size_t LinearChunk(uint32_t num_flops, const std::vector<uint32_t>& depths,
                   uint32_t space, uint32_t index) {
  size_t base = 0;
  if (space > 0) {
    base = NumChunks(num_flops);
    for (uint32_t m = 0; m + 1 < space; ++m) base += NumChunks(depths[m]);
  }
  return base + index;
}

}  // namespace

ChunkPtr SnapshotStore::Intern(std::vector<uint64_t> words) {
  const uint64_t h = HashChunk(words);
  auto& bucket = intern_[h];
  for (auto it = bucket.begin(); it != bucket.end();) {
    if (ChunkPtr live = it->lock()) {
      if (*live == words) {
        ++stats_.chunks_shared;
        stats_.bytes_shared += words.size() * 8;
        return live;
      }
      ++it;
    } else {
      it = bucket.erase(it);  // last owner dropped; prune the entry
    }
  }
  ++stats_.chunks_stored;
  stats_.bytes_copied += words.size() * 8;
  auto chunk = std::make_shared<const std::vector<uint64_t>>(std::move(words));
  bucket.push_back(chunk);
  return chunk;
}

SnapshotStore::Stored SnapshotStore::MakeStored(SnapshotId id,
                                                const sim::HardwareState& state,
                                                std::string label) {
  Stored s;
  s.snap.id = id;
  s.snap.shape_digest = shape_;
  s.snap.label = std::move(label);
  s.num_flops = static_cast<uint32_t>(state.flops.size());
  s.mem_depths.reserve(state.memories.size());
  for (const auto& mem : state.memories)
    s.mem_depths.push_back(static_cast<uint32_t>(mem.size()));
  s.logical_words = sim::StateWords(state);
  s.content_hash = sim::HashState(state);

  auto chunk_space = [&](const std::vector<uint64_t>& words) {
    for (uint32_t c = 0; c < NumChunks(words.size()); ++c) {
      const size_t start = size_t{c} * kChunkWords;
      const size_t len = std::min<size_t>(kChunkWords, words.size() - start);
      s.chunks.push_back(Intern(
          {words.begin() + start, words.begin() + start + len}));
    }
  };
  chunk_space(state.flops);
  for (const auto& mem : state.memories) chunk_space(mem);
  return s;
}

void SnapshotStore::DropCacheLocked(const Stored& s) const {
  if (!s.materialized) return;
  s.snap.state = sim::HardwareState{};
  s.materialized = false;
  cache_bytes_ -= s.logical_words * 8;
}

void SnapshotStore::EvictCachesLocked(const Stored* keep) const {
  if (max_bytes_ == 0) return;
  while (LiveBytesLocked() > max_bytes_) {
    const Stored* victim = nullptr;
    for (const auto& [id, s] : snapshots_) {
      if (!s.materialized || &s == keep) continue;
      if (victim == nullptr || s.last_access < victim->last_access)
        victim = &s;
    }
    if (victim == nullptr) return;  // nothing left to evict
    DropCacheLocked(*victim);
    ++cache_evictions_;
  }
}

Status SnapshotStore::EnforceCapLocked(const Stored* keep,
                                       const char* op) const {
  if (max_bytes_ == 0) return Status::Ok();
  EvictCachesLocked(keep);
  if (LiveBytesLocked() > max_bytes_)
    return ResourceExhausted(
        std::string(op) + " would exceed the snapshot store byte cap (" +
        std::to_string(LiveBytesLocked()) + " > " +
        std::to_string(max_bytes_) + " bytes after cache eviction)");
  return Status::Ok();
}

void SnapshotStore::Materialize(const Stored& s) const {
  s.last_access = ++access_tick_;
  if (s.materialized) return;
  sim::HardwareState st;
  st.flops.reserve(s.num_flops);
  st.memories.resize(s.mem_depths.size());
  size_t ci = 0;
  for (uint32_t c = 0; c < NumChunks(s.num_flops); ++c, ++ci)
    st.flops.insert(st.flops.end(), s.chunks[ci]->begin(),
                    s.chunks[ci]->end());
  for (size_t m = 0; m < s.mem_depths.size(); ++m) {
    st.memories[m].reserve(s.mem_depths[m]);
    for (uint32_t c = 0; c < NumChunks(s.mem_depths[m]); ++c, ++ci)
      st.memories[m].insert(st.memories[m].end(), s.chunks[ci]->begin(),
                            s.chunks[ci]->end());
  }
  s.snap.state = std::move(st);
  s.materialized = true;
  cache_bytes_ += s.logical_words * 8;
}

SnapshotId SnapshotStore::Put(sim::HardwareState state, std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  const SnapshotId id = next_id_++;
  Stored s = MakeStored(id, state, std::move(label));
  total_bytes_ += s.logical_words * 8;
  cache_bytes_ += s.logical_words * 8;
  s.snap.state = std::move(state);  // caller's copy doubles as the cache
  s.materialized = true;
  s.last_access = ++access_tick_;
  snapshots_.emplace(id, std::move(s));
  if (max_bytes_ != 0) EvictCachesLocked(nullptr);  // best effort, never fails
  return id;
}

Result<SnapshotId> SnapshotStore::TryPut(sim::HardwareState state,
                                         std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  const SnapshotId id = next_id_++;
  Stored s = MakeStored(id, state, std::move(label));
  total_bytes_ += s.logical_words * 8;
  cache_bytes_ += s.logical_words * 8;
  s.snap.state = std::move(state);
  s.materialized = true;
  s.last_access = ++access_tick_;
  auto [it, inserted] = snapshots_.emplace(id, std::move(s));
  (void)inserted;
  Status cap = EnforceCapLocked(nullptr, "TryPut");
  if (!cap.ok()) {
    // Roll back: the chunks we interned drop to refcount zero and free.
    total_bytes_ -= it->second.logical_words * 8;
    DropCacheLocked(it->second);
    snapshots_.erase(it);
    return cap;
  }
  return id;
}

Result<const Snapshot*> SnapshotStore::Get(SnapshotId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(id);
  if (it == snapshots_.end())
    return NotFound("snapshot " + std::to_string(id) + " does not exist");
  Materialize(it->second);
  return &it->second.snap;
}

Status SnapshotStore::Update(SnapshotId id, sim::HardwareState state) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(id);
  if (it == snapshots_.end())
    return NotFound("snapshot " + std::to_string(id) + " does not exist");
  Stored s = MakeStored(id, state, std::move(it->second.snap.label));
  total_bytes_ += s.logical_words * 8;
  total_bytes_ -= it->second.logical_words * 8;
  s.snap.state = std::move(state);
  s.materialized = true;
  s.last_access = ++access_tick_;
  cache_bytes_ += s.logical_words * 8;
  DropCacheLocked(it->second);
  Stored old = std::move(it->second);
  it->second = std::move(s);
  Status cap = EnforceCapLocked(nullptr, "Update");
  if (!cap.ok()) {  // revert to the old content
    total_bytes_ += old.logical_words * 8;
    total_bytes_ -= it->second.logical_words * 8;
    DropCacheLocked(it->second);
    it->second = std::move(old);
    return cap;
  }
  return Status::Ok();
}

Status SnapshotStore::Drop(SnapshotId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(id);
  if (it == snapshots_.end())
    return NotFound("snapshot " + std::to_string(id) + " does not exist");
  total_bytes_ -= it->second.logical_words * 8;
  DropCacheLocked(it->second);
  snapshots_.erase(it);
  return Status::Ok();
}

Status SnapshotStore::ApplyDelta(const Stored& base,
                                 const sim::StateDelta& delta, SnapshotId id,
                                 std::string label, Stored* out) {
  if (delta.chunk_words != kChunkWords)
    return InvalidArgument("delta chunk size mismatch");
  if (delta.num_flops != base.num_flops ||
      delta.mem_depths != base.mem_depths)
    return InvalidArgument("delta shape does not match base snapshot");
  if (delta.base_hash != 0 && delta.base_hash != base.content_hash)
    return InvalidArgument("delta base is not this snapshot's content");

  Stored s;
  s.snap.id = id;
  s.snap.shape_digest = shape_;
  s.snap.label = std::move(label);
  s.num_flops = base.num_flops;
  s.mem_depths = base.mem_depths;
  s.logical_words = base.logical_words;
  s.chunks = base.chunks;  // structural sharing: O(chunks) pointer copies
  for (const auto& c : delta.chunks) {
    if (c.space > s.mem_depths.size())
      return InvalidArgument("delta chunk space out of range");
    const size_t space_words =
        c.space == 0 ? s.num_flops : s.mem_depths[c.space - 1];
    const size_t start = size_t{c.index} * kChunkWords;
    if (start >= space_words)
      return InvalidArgument("delta chunk index out of range");
    if (c.words.size() != std::min<size_t>(kChunkWords, space_words - start))
      return InvalidArgument("delta chunk payload size mismatch");
    s.chunks[LinearChunk(s.num_flops, s.mem_depths, c.space, c.index)] =
        Intern(c.words);
  }

  // Content hash over the chunk walk (no materialization; same function
  // as sim::HashState so delta base hashes keep chaining).
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  size_t ci = 0;
  mix(s.num_flops);
  for (uint32_t c = 0; c < NumChunks(s.num_flops); ++c, ++ci)
    for (uint64_t w : *s.chunks[ci]) mix(w);
  mix(s.mem_depths.size());
  for (uint32_t depth : s.mem_depths) {
    mix(depth);
    for (uint32_t c = 0; c < NumChunks(depth); ++c, ++ci)
      for (uint64_t w : *s.chunks[ci]) mix(w);
  }
  s.content_hash = h;
  *out = std::move(s);
  return Status::Ok();
}

Result<SnapshotId> SnapshotStore::PutDelta(SnapshotId base,
                                           const sim::StateDelta& delta,
                                           std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(base);
  if (it == snapshots_.end())
    return NotFound("base snapshot " + std::to_string(base) +
                    " does not exist");
  const SnapshotId id = next_id_++;
  Stored s;
  HS_RETURN_IF_ERROR(
      ApplyDelta(it->second, delta, id, std::move(label), &s));
  total_bytes_ += s.logical_words * 8;
  auto [sit, inserted] = snapshots_.emplace(id, std::move(s));
  (void)inserted;
  Status cap = EnforceCapLocked(nullptr, "PutDelta");
  if (!cap.ok()) {
    total_bytes_ -= sit->second.logical_words * 8;
    snapshots_.erase(sit);
    return cap;
  }
  return id;
}

Status SnapshotStore::UpdateDelta(SnapshotId id, SnapshotId base,
                                  const sim::StateDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto base_it = snapshots_.find(base);
  if (base_it == snapshots_.end())
    return NotFound("base snapshot " + std::to_string(base) +
                    " does not exist");
  auto it = snapshots_.find(id);
  if (it == snapshots_.end())
    return NotFound("snapshot " + std::to_string(id) + " does not exist");
  Stored s;
  HS_RETURN_IF_ERROR(ApplyDelta(base_it->second, delta, id,
                                std::move(it->second.snap.label), &s));
  total_bytes_ += s.logical_words * 8;
  total_bytes_ -= it->second.logical_words * 8;
  DropCacheLocked(it->second);
  Stored old = std::move(it->second);
  it->second = std::move(s);
  Status cap = EnforceCapLocked(nullptr, "UpdateDelta");
  if (!cap.ok()) {
    total_bytes_ += old.logical_words * 8;
    total_bytes_ -= it->second.logical_words * 8;
    it->second = std::move(old);
    return cap;
  }
  return Status::Ok();
}

Result<sim::StateDelta> SnapshotStore::DeltaBetween(SnapshotId base,
                                                    SnapshotId next) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto bit = snapshots_.find(base);
  if (bit == snapshots_.end())
    return NotFound("base snapshot " + std::to_string(base) +
                    " does not exist");
  auto nit = snapshots_.find(next);
  if (nit == snapshots_.end())
    return NotFound("snapshot " + std::to_string(next) + " does not exist");
  const Stored& b = bit->second;
  const Stored& n = nit->second;
  if (b.num_flops != n.num_flops || b.mem_depths != n.mem_depths)
    return InvalidArgument("snapshots have different shapes");

  return DiffLocked(b, n);
}

sim::StateDelta SnapshotStore::DiffLocked(const Stored& b,
                                          const Stored& n) const {
  sim::StateDelta d;
  d.base_hash = b.content_hash;
  d.num_flops = n.num_flops;
  d.mem_depths = n.mem_depths;
  size_t ci = 0;
  auto diff_space = [&](uint32_t space, uint32_t words) {
    for (uint32_t c = 0; c < NumChunks(words); ++c, ++ci) {
      if (b.chunks[ci] == n.chunks[ci]) continue;  // structurally shared
      if (*b.chunks[ci] == *n.chunks[ci]) continue;
      d.chunks.push_back({space, c, *n.chunks[ci]});
    }
  };
  diff_space(0, n.num_flops);
  for (size_t m = 0; m < n.mem_depths.size(); ++m)
    diff_space(static_cast<uint32_t>(1 + m), n.mem_depths[m]);
  return d;
}

Result<uint64_t> SnapshotStore::ContentHash(SnapshotId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(id);
  if (it == snapshots_.end())
    return NotFound("snapshot " + std::to_string(id) + " does not exist");
  return it->second.content_hash;
}

size_t SnapshotStore::ResidentBytesLocked() const {
  size_t bytes = 0;
  std::unordered_map<const void*, bool> seen;
  seen.reserve(snapshots_.size() * 8);
  for (const auto& [id, s] : snapshots_) {
    for (const auto& chunk : s.chunks) {
      if (seen.emplace(chunk.get(), true).second) bytes += chunk->size() * 8;
    }
  }
  return bytes;
}

size_t SnapshotStore::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ResidentBytesLocked();
}

size_t SnapshotStore::LiveBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return LiveBytesLocked();
}

void SnapshotStore::SetMaxBytes(size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_bytes_ = max_bytes;
  if (max_bytes_ != 0) EvictCachesLocked(nullptr);
}

SnapshotStore::Stats SnapshotStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.cache_bytes = cache_bytes_;
  s.live_bytes = LiveBytesLocked();
  s.cache_evictions = cache_evictions_;
  return s;
}

std::vector<SnapshotId> SnapshotStore::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotId> ids;
  ids.reserve(snapshots_.size());
  for (const auto& [id, s] : snapshots_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<std::vector<uint8_t>> SnapshotStore::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotId> ids;
  ids.reserve(snapshots_.size());
  for (const auto& [id, s] : snapshots_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  ByteWriter w;
  w.PutU32(0x48535354);  // "HSST"
  w.PutU8(kStateFormatVersion);
  w.PutU64(shape_);
  w.PutU64(next_id_);
  w.PutU32(static_cast<uint32_t>(ids.size()));
  const Stored* prev = nullptr;
  for (SnapshotId id : ids) {
    const Stored& s = snapshots_.at(id);
    w.PutU64(id);
    w.PutString(s.snap.label);
    // Delta against the previous snapshot when shapes allow; the first
    // snapshot (and any shape change) ships full. The delta's base_hash
    // chains each snapshot to its predecessor, so a corrupt link fails at
    // Restore instead of silently reconstructing the wrong content.
    if (prev != nullptr && prev->num_flops == s.num_flops &&
        prev->mem_depths == s.mem_depths) {
      w.PutU8(1);
      std::vector<uint8_t> blob = SerializeStateDelta(DiffLocked(*prev, s));
      w.PutU32(static_cast<uint32_t>(blob.size()));
      w.PutBytes(blob.data(), blob.size());
    } else {
      Materialize(s);
      w.PutU8(0);
      std::vector<uint8_t> blob = SerializeState(s.snap.state);
      w.PutU32(static_cast<uint32_t>(blob.size()));
      w.PutBytes(blob.data(), blob.size());
    }
    prev = &s;
  }
  AppendCrc(&w);
  return w.Take();
}

Status SnapshotStore::Restore(const std::vector<uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.clear();
  intern_.clear();
  total_bytes_ = 0;
  cache_bytes_ = 0;

  Status st = [&]() -> Status {
    HS_RETURN_IF_ERROR(VerifyCrc(bytes, "store blob"));
  ByteReader r(bytes);
  auto magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != 0x48535354)
    return InvalidArgument("not a HardSnap store blob");
  HS_RETURN_IF_ERROR(CheckFormatVersion(&r, "store blob"));
  auto shape = r.GetU64();
  if (!shape.ok()) return shape.status();
  // A store bound to a concrete design (nonzero digest) must not ingest
  // snapshots captured from a different one; digest 0 means "unspecified"
  // and adopts the blob's shape (the persistence layer's stores).
  if (shape_ != 0 && shape.value() != 0 && shape.value() != shape_)
    return InvalidArgument("store blob: shape digest mismatch");
  auto next_id = r.GetU64();
  if (!next_id.ok()) return next_id.status();
  auto count = r.GetU32();
  if (!count.ok()) return count.status();

  shape_ = shape.value();
  sim::HardwareState prev_state;
  bool have_prev = false;
  SnapshotId max_id = 0;
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto id = r.GetU64();
    if (!id.ok()) return id.status();
    auto label = r.GetString();
    if (!label.ok()) return label.status();
    auto encoding = r.GetU8();
    if (!encoding.ok()) return encoding.status();
    auto blob_len = r.GetU32();
    if (!blob_len.ok()) return blob_len.status();
    if (r.remaining() < blob_len.value())
      return OutOfRange("store blob: snapshot payload truncated");
    std::vector<uint8_t> blob(blob_len.value());
    HS_RETURN_IF_ERROR(r.GetBytes(blob.data(), blob.size()));

    sim::HardwareState state;
    if (encoding.value() == 0) {
      HS_ASSIGN_OR_RETURN(state, DeserializeState(blob));
    } else if (encoding.value() == 1) {
      if (!have_prev)
        return InvalidArgument("store blob: delta with no predecessor");
      HS_ASSIGN_OR_RETURN(sim::StateDelta delta, DeserializeStateDelta(blob));
      state = prev_state;
      HS_RETURN_IF_ERROR(sim::ApplyDeltaToState(&state, delta));
    } else {
      return InvalidArgument("store blob: unknown snapshot encoding");
    }

    if (snapshots_.count(id.value()))
      return InvalidArgument("store blob: duplicate snapshot id");
    Stored s = MakeStored(id.value(), state, std::move(label).value());
    total_bytes_ += s.logical_words * 8;
    snapshots_.emplace(id.value(), std::move(s));
    max_id = std::max(max_id, id.value());
    prev_state = std::move(state);
    have_prev = true;
  }
  if (r.remaining() != 4)
    return InvalidArgument("trailing bytes in store blob");
  if (next_id.value() <= max_id && count.value() > 0)
    return InvalidArgument("store blob: id counter behind live snapshots");
  next_id_ = std::max<SnapshotId>(next_id.value(), 1);
  return Status::Ok();
  }();

  if (!st.ok()) {  // never leave a half-loaded store behind
    snapshots_.clear();
    intern_.clear();
    total_bytes_ = 0;
    cache_bytes_ = 0;
    next_id_ = 1;
  }
  return st;
}

}  // namespace hardsnap::snapshot
