#include "symex/executor.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/logging.h"
#include "vm/memmap.h"

namespace hardsnap::symex {

using solver::BvModel;
using solver::BvResult;
using solver::TermId;
using vm::Instruction;
using vm::Opcode;

const char* ConsistencyModeName(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kHardSnap: return "hardsnap";
    case ConsistencyMode::kNaiveConsistent: return "naive-consistent";
    case ConsistencyMode::kNaiveInconsistent: return "naive-inconsistent";
  }
  return "?";
}

std::string Report::Summary() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "paths=%llu (exited %llu) forks=%llu instr=%llu bugs=%zu "
                "ctx-switches=%llu reboots=%llu replayed=%llu irqs=%llu "
                "hw-time=%s replay-overhead=%s snap-bytes=%llu dedup=%.2f",
                static_cast<unsigned long long>(paths_completed),
                static_cast<unsigned long long>(paths_exited),
                static_cast<unsigned long long>(forks),
                static_cast<unsigned long long>(instructions), bugs.size(),
                static_cast<unsigned long long>(hw_context_switches),
                static_cast<unsigned long long>(reboots),
                static_cast<unsigned long long>(replayed_instructions),
                static_cast<unsigned long long>(interrupts_served),
                analysis_hw_time.ToString().c_str(),
                replay_overhead.ToString().c_str(),
                static_cast<unsigned long long>(snapshot_bytes_copied),
                snapshot_dedup_ratio);
  return buf;
}

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Report::ToJson() const {
  std::string j = "{";
  auto num = [&j](const char* key, uint64_t v, bool comma = true) {
    j += std::string("\"") + key + "\":" + std::to_string(v);
    if (comma) j += ",";
  };
  num("paths_completed", paths_completed);
  num("paths_exited", paths_exited);
  num("forks", forks);
  num("instructions", instructions);
  num("interrupts_served", interrupts_served);
  num("hw_context_switches", hw_context_switches);
  num("replayed_instructions", replayed_instructions);
  num("reboots", reboots);
  num("concretizations", concretizations);
  num("solver_queries", solver_queries);
  num("analysis_hw_time_ps", static_cast<uint64_t>(analysis_hw_time.picos()));
  num("covered_pcs", covered_pcs);
  num("snapshot_bytes_copied", snapshot_bytes_copied);
  num("snapshot_bytes_shared", snapshot_bytes_shared);
  num("link_retransmits", link.retransmits);
  num("link_crc_rejects", link.crc_rejects);
  num("link_deadline_breaches", link.deadline_breaches);
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", snapshot_dedup_ratio);
    j += std::string("\"snapshot_dedup_ratio\":") + buf + ",";
  }
  j += "\"bugs\":[";
  for (size_t i = 0; i < bugs.size(); ++i) {
    if (i) j += ",";
    j += "{\"pc\":" + std::to_string(bugs[i].pc) + ",\"kind\":\"" +
         JsonEscape(bugs[i].kind) + "\",\"detail\":\"" +
         JsonEscape(bugs[i].detail) + "\",\"inputs\":{";
    bool first = true;
    for (const auto& [name, value] : bugs[i].test_case.inputs) {
      if (!first) j += ",";
      first = false;
      j += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
    }
    j += "}}";
  }
  j += "],\"test_cases\":" + std::to_string(test_cases.size());
  j += "}";
  return j;
}

Executor::Executor(bus::HardwareTarget* target, ExecOptions options)
    : target_(target), options_(options), solver_(&ctx_) {
  if (options_.use_device_slots) {
    slots_ = dynamic_cast<bus::SlotSnapshotter*>(target);
    if (slots_) slot_in_use_.assign(slots_->NumSlots(), false);
  }
  if (options_.use_delta_snapshots)
    delta_ = dynamic_cast<bus::DeltaSnapshotter*>(target);
  store_.SetMaxBytes(options_.max_store_bytes);
  searcher_ = MakeSearcher(options_.search, options_.seed);
  initial_ = std::make_unique<State>();
  initial_->id = next_state_id_++;
  for (auto& r : initial_->regs) r = ctx_.Const(0, 32);
  initial_->regs[2] = ctx_.Const(vm::kStackTop - 16, 32);  // sp
}

Status Executor::LoadFirmware(const vm::FirmwareImage& image) {
  if (image.base != vm::kRomBase)
    return InvalidArgument("firmware must be based at ROM");
  if (image.bytes.size() > vm::kRomSize)
    return InvalidArgument("firmware larger than ROM");
  image_ = image;
  initial_->pc = image.SymbolOr("_start", vm::kRomBase);
  return Status::Ok();
}

TermId Executor::MakeSymbolicRegister(unsigned reg, const std::string& name) {
  HS_CHECK(reg >= 1 && reg < 32);
  TermId var = ctx_.Var(name, 32);
  initial_->regs[reg] = var;
  initial_->inputs.push_back(SymbolicInput{name, var, 4});
  return var;
}

Status Executor::MakeSymbolicRegion(uint32_t addr, unsigned bytes,
                                    const std::string& name) {
  for (unsigned i = 0; i < bytes; ++i) {
    if (!vm::InRam(addr + i) && !vm::InRom(addr + i))
      return OutOfRange("symbolic region outside RAM/ROM");
    TermId var = ctx_.Var(name + "[" + std::to_string(i) + "]", 8);
    initial_->mem[addr + i] = var;
    initial_->inputs.push_back(
        SymbolicInput{name + "[" + std::to_string(i) + "]", var, 1});
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Memory.

TermId Executor::LoadByte(State& s, uint32_t addr) {
  auto it = s.mem.find(addr);
  if (it != s.mem.end()) return it->second;
  if (vm::InRom(addr)) {
    const uint32_t off = addr - image_.base;
    const uint8_t byte = off < image_.bytes.size() ? image_.bytes[off] : 0;
    return ctx_.Const(byte, 8);
  }
  return ctx_.Const(0, 8);  // RAM is zero-initialized
}

void Executor::StoreByte(State& s, uint32_t addr, TermId value) {
  s.mem[addr] = value;
}

Result<TermId> Executor::LoadWidth(State& s, uint32_t addr, unsigned bytes) {
  TermId acc = LoadByte(s, addr);
  for (unsigned i = 1; i < bytes; ++i)
    acc = ctx_.Concat(LoadByte(s, addr + i), acc);  // little endian
  return acc;
}

Result<uint32_t> Executor::FetchWord(State& s) {
  if (!vm::InRom(s.pc) || (s.pc & 3) != 0)
    return OutOfRange("instruction fetch outside ROM");
  // Instructions are immutable concrete bytes unless firmware self-
  // modifies (overlay would make them symbolic; reject that).
  auto word = LoadWidth(s, s.pc, 4);
  if (!word.ok()) return word.status();
  if (!ctx_.IsConst(word.value()))
    return FailedPrecondition("symbolic instruction fetch");
  return static_cast<uint32_t>(ctx_.term(word.value()).value);
}

// ---------------------------------------------------------------------------
// Solver plumbing.

Result<bool> Executor::Feasible(State& s, TermId extra) {
  std::vector<TermId> as = s.constraints;
  as.push_back(extra);
  auto r = solver_.Check(as);
  if (!r.ok()) return r.status();
  return r.value() == BvResult::kSat;
}

Result<uint64_t> Executor::SolveForValue(State& s, TermId value) {
  // Bind a fresh variable to the value and read it from the model.
  TermId probe = ctx_.Var("__probe", ctx_.WidthOf(value));
  std::vector<TermId> as = s.constraints;
  as.push_back(ctx_.Eq(probe, value));
  BvModel model;
  auto r = solver_.Check(as, &model);
  if (!r.ok()) return r.status();
  if (r.value() == BvResult::kUnsat)
    return Internal("path condition became unsatisfiable");
  return model.values.count(probe) ? model.values[probe] : 0;
}

TestCase Executor::SolveTestCase(State& s, const std::string& origin) {
  TestCase tc;
  tc.origin = origin;
  BvModel model;
  auto r = solver_.Check(s.constraints, &model);
  if (!r.ok() || r.value() == BvResult::kUnsat) return tc;
  for (const auto& input : s.inputs) {
    auto it = model.values.find(input.var);
    tc.inputs[input.name] = it == model.values.end() ? 0 : it->second;
  }
  return tc;
}

// ---------------------------------------------------------------------------
// Hardware context switch (Algorithm 1).

int Executor::AllocSlot() {
  if (!slots_) return -1;
  for (size_t i = 0; i < slot_in_use_.size(); ++i) {
    if (!slot_in_use_[i]) {
      slot_in_use_[i] = true;
      return static_cast<int>(i);
    }
  }
  return -1;  // SRAM exhausted: host storage takes over
}

void Executor::FreeSlot(int slot) {
  if (slot >= 0 && slot < static_cast<int>(slot_in_use_.size()))
    slot_in_use_[slot] = false;
}

void Executor::SetLiveBase(snapshot::SnapshotId id) {
  if (retained_base_ != snapshot::kNoSnapshot && retained_base_ != id) {
    (void)store_.Drop(retained_base_);
    retained_base_ = snapshot::kNoSnapshot;
  }
  live_base_ = id;
}

Status Executor::UpdateState(State& s) {
  // Fast path: device-resident SRAM slot (paper's on-fabric snapshots).
  // The scan into SRAM is non-destructive, so the delta base stays valid.
  if (slots_) {
    if (s.hw_slot < 0) s.hw_slot = AllocSlot();
    if (s.hw_slot >= 0)
      return slots_->SaveLiveToSlot(static_cast<unsigned>(s.hw_slot));
  }
  // Delta path: ship only the chunks dirtied since the sync point and
  // apply them to the base snapshot in the store (unchanged chunks are
  // shared structurally).
  if (delta_ && live_base_ != snapshot::kNoSnapshot) {
    auto d = delta_->SaveStateDelta();
    if (!d.ok()) return d.status();
    if (s.hw_snapshot == snapshot::kNoSnapshot) {
      auto id = store_.PutDelta(live_base_, d.value(),
                                "state-" + std::to_string(s.id));
      if (id.ok()) {
        s.hw_snapshot = id.value();
        SetLiveBase(id.value());
        return Status::Ok();
      }
      // The byte cap is a hard limit, not a mismatch to route around.
      if (id.status().code() == StatusCode::kResourceExhausted)
        return id.status();
    } else {
      Status st = store_.UpdateDelta(s.hw_snapshot, live_base_, d.value());
      if (st.ok()) {
        SetLiveBase(s.hw_snapshot);
        return Status::Ok();
      }
      if (st.code() == StatusCode::kResourceExhausted) return st;
    }
    // Base/delta mismatch (shouldn't happen when the invariant holds):
    // fall through to a full transfer, which re-establishes coherence.
  }
  auto live = target_->SaveState();
  if (!live.ok()) return live.status();
  if (s.hw_snapshot == snapshot::kNoSnapshot) {
    HS_ASSIGN_OR_RETURN(
        s.hw_snapshot,
        store_.TryPut(std::move(live).value(),
                      "state-" + std::to_string(s.id)));
    SetLiveBase(s.hw_snapshot);
    return Status::Ok();
  }
  HS_RETURN_IF_ERROR(store_.Update(s.hw_snapshot, std::move(live).value()));
  SetLiveBase(s.hw_snapshot);
  return Status::Ok();
}

Status Executor::RestoreState(State& s, Report* report) {
  if (s.hw_slot >= 0) {
    // On-fabric load: the live state moves without crossing the host
    // link, so the host-side delta base is gone.
    SetLiveBase(snapshot::kNoSnapshot);
    return slots_->RestoreLiveFromSlot(static_cast<unsigned>(s.hw_slot));
  }
  if (s.hw_snapshot == snapshot::kNoSnapshot) {
    // No snapshot yet: the state starts from power-on hardware.
    ++report->reboots;
    SetLiveBase(snapshot::kNoSnapshot);
    return target_->ResetHardware();
  }
  // Delta path: restoring a sibling only writes the chunks by which the
  // two snapshots differ.
  if (delta_ && live_base_ != snapshot::kNoSnapshot &&
      live_base_ != s.hw_snapshot) {
    auto d = store_.DeltaBetween(live_base_, s.hw_snapshot);
    if (d.ok()) {
      Status st = delta_->RestoreStateDelta(d.value());
      if (st.ok()) {
        SetLiveBase(s.hw_snapshot);
        return Status::Ok();
      }
    }
    // fall through to a full restore
  } else if (delta_ && live_base_ == s.hw_snapshot) {
    // Restoring the sync point itself: an empty delta reverts whatever
    // the hardware dirtied since (O(dirty) on the simulator target).
    auto snap_hash = store_.ContentHash(s.hw_snapshot);
    if (snap_hash.ok()) {
      auto base = store_.Get(s.hw_snapshot);
      if (base.ok()) {
        sim::StateDelta empty = sim::EmptyDeltaFor(base.value()->state);
        empty.base_hash = snap_hash.value();
        Status st = delta_->RestoreStateDelta(empty);
        if (st.ok()) return Status::Ok();
      }
    }
    // fall through to a full restore
  }
  auto snap = store_.Get(s.hw_snapshot);
  if (!snap.ok()) return snap.status();
  HS_RETURN_IF_ERROR(target_->RestoreState(snap.value()->state));
  SetLiveBase(s.hw_snapshot);
  return Status::Ok();
}

Status Executor::CaptureForFork(State* forked) {
  if (slots_) {
    forked->hw_slot = AllocSlot();
    if (forked->hw_slot >= 0)
      return slots_->SaveLiveToSlot(static_cast<unsigned>(forked->hw_slot));
  }
  if (delta_ && live_base_ != snapshot::kNoSnapshot) {
    auto d = delta_->SaveStateDelta();
    if (!d.ok()) return d.status();
    auto id = store_.PutDelta(live_base_, d.value(),
                              "state-" + std::to_string(forked->id));
    if (id.ok()) {
      forked->hw_snapshot = id.value();
      SetLiveBase(id.value());
      return Status::Ok();
    }
    if (id.status().code() == StatusCode::kResourceExhausted)
      return id.status();
    // fall through to a full capture
  }
  auto live = target_->SaveState();
  if (!live.ok()) return live.status();
  HS_ASSIGN_OR_RETURN(
      forked->hw_snapshot,
      store_.TryPut(std::move(live).value(),
                    "state-" + std::to_string(forked->id)));
  SetLiveBase(forked->hw_snapshot);
  return Status::Ok();
}

Status Executor::HwContextSwitch(State* previous, State& next,
                                 Report* report) {
  switch (options_.mode) {
    case ConsistencyMode::kHardSnap:
      ++report->hw_context_switches;
      if (previous && previous->status == StateStatus::kRunning) {
        HS_RETURN_IF_ERROR(UpdateState(*previous));
      }
      return RestoreState(next, report);
    case ConsistencyMode::kNaiveConsistent: {
      // Reboot + re-execute the whole prefix of `next`. Correct hardware
      // content is obtained from the snapshot; the virtual-time cost of
      // the reboot and replay is charged explicitly (see header).
      ++report->reboots;
      report->replayed_instructions += next.icount;
      const Duration replay =
          options_.reboot_cost +
          options_.replay_cost_per_instruction *
              static_cast<int64_t>(next.icount);
      replay_clock_.Advance(replay);
      if (previous && previous->status == StateStatus::kRunning) {
        HS_RETURN_IF_ERROR(UpdateState(*previous));
      }
      return RestoreState(next, report);
    }
    case ConsistencyMode::kNaiveInconsistent:
      // Hardware-in-the-loop: nothing saved, nothing restored. All states
      // mutate the same live device.
      return Status::Ok();
  }
  return Internal("bad mode");
}

// ---------------------------------------------------------------------------
// State management.

State* Executor::AddState(std::unique_ptr<State> state) {
  State* raw = state.get();
  states_.push_back(std::move(state));
  searcher_->Add(raw);
  return raw;
}

void Executor::RemoveState(State* state, Report* report) {
  searcher_->Remove(state);
  if (state->hw_snapshot != snapshot::kNoSnapshot) {
    if (state->hw_snapshot == live_base_) {
      // The live base's path is done, but its chunks still describe the
      // target's sync point — retain the snapshot so the next restore can
      // ship a sibling delta instead of the full state.
      if (retained_base_ != snapshot::kNoSnapshot &&
          retained_base_ != state->hw_snapshot)
        (void)store_.Drop(retained_base_);
      retained_base_ = state->hw_snapshot;
    } else {
      (void)store_.Drop(state->hw_snapshot);
    }
    state->hw_snapshot = snapshot::kNoSnapshot;
  }
  FreeSlot(state->hw_slot);
  state->hw_slot = -1;
  (void)report;
}

void Executor::FlagBug(State& s, const std::string& kind,
                       const std::string& detail, Report* report) {
  Bug bug;
  bug.pc = s.pc;
  bug.kind = kind;
  bug.detail = detail;
  bug.test_case = SolveTestCase(s, "bug: " + kind);
  report->bugs.push_back(std::move(bug));
  s.status = StateStatus::kBug;
  s.stop_reason = kind + (detail.empty() ? "" : (": " + detail));
}

void Executor::FinishPath(State& s, Report* report) {
  ++report->paths_completed;
  if (s.status == StateStatus::kExited) {
    ++report->paths_exited;
    report->exit_codes.push_back(s.exit_code);
  }
  report->console += s.console;
  if (!s.inputs.empty()) {
    report->test_cases.push_back(SolveTestCase(
        s, s.status == StateStatus::kExited
               ? "exit(" + std::to_string(s.exit_code) + ")"
               : s.stop_reason));
  }
}

// ---------------------------------------------------------------------------
// Forking and concretization.

Status Executor::ForkOnCondition(State& s, TermId cond, uint32_t taken_pc,
                                 uint32_t fallthrough_pc, Report* report) {
  if (ctx_.IsConst(cond)) {
    s.pc = ctx_.term(cond).value ? taken_pc : fallthrough_pc;
    return Status::Ok();
  }
  auto taken_ok = Feasible(s, cond);
  if (!taken_ok.ok()) return taken_ok.status();
  auto fall_ok = Feasible(s, ctx_.BoolNot(cond));
  if (!fall_ok.ok()) return fall_ok.status();
  report->solver_queries += 2;

  if (taken_ok.value() && !fall_ok.value()) {
    s.constraints.push_back(cond);
    s.pc = taken_pc;
    return Status::Ok();
  }
  if (!taken_ok.value() && fall_ok.value()) {
    s.constraints.push_back(ctx_.BoolNot(cond));
    s.pc = fallthrough_pc;
    return Status::Ok();
  }
  if (!taken_ok.value() && !fall_ok.value())
    return Internal("both branch directions infeasible");

  // Real fork. The new state takes the branch; the current state falls
  // through (so the searcher's notion of "previous" stays coherent).
  if (states_.size() >= options_.max_states) {
    // State cap: drop the taken side, keep going.
    s.constraints.push_back(ctx_.BoolNot(cond));
    s.pc = fallthrough_pc;
    return Status::Ok();
  }
  ++report->forks;
  auto forked = s.Fork();
  forked->id = next_state_id_++;
  forked->depth = s.depth + 1;
  forked->constraints.push_back(cond);
  forked->pc = taken_pc;

  // Paper: "resulting state flows with a unique and non-shared hardware
  // snapshot" — capture the live hardware for the forked state.
  forked->hw_slot = -1;  // never share the parent's slot
  if (options_.mode != ConsistencyMode::kNaiveInconsistent) {
    HS_RETURN_IF_ERROR(CaptureForFork(forked.get()));
  }
  AddState(std::move(forked));

  s.constraints.push_back(ctx_.BoolNot(cond));
  s.pc = fallthrough_pc;
  return Status::Ok();
}

Result<uint32_t> Executor::Concretize(State& s, TermId value,
                                      const char* what, Report* report) {
  if (ctx_.IsConst(value))
    return static_cast<uint32_t>(ctx_.term(value).value);
  ++report->concretizations;
  auto v = SolveForValue(s, value);
  if (!v.ok()) return v.status();
  ++report->solver_queries;
  const uint32_t chosen = static_cast<uint32_t>(v.value());

  if (options_.concretization == ConcretizationPolicy::kAllValues) {
    // Fork alternatives: for each OTHER satisfying value (bounded), spawn
    // a state constrained to it.
    unsigned spawned = 0;
    TermId exclude = ctx_.Ne(value, ctx_.Const(chosen, ctx_.WidthOf(value)));
    std::vector<TermId> as = s.constraints;
    as.push_back(exclude);
    while (spawned + 1 < options_.max_concretization_fanout &&
           states_.size() < options_.max_states) {
      BvModel model;
      auto r = solver_.Check(as, &model);
      if (!r.ok()) return r.status();
      ++report->solver_queries;
      if (r.value() == BvResult::kUnsat) break;
      // Evaluate the boundary value under this model.
      std::map<TermId, uint64_t> env = model.values;
      const uint32_t alt =
          static_cast<uint32_t>(solver::EvalTerm(ctx_, value, env));
      auto forked = s.Fork();
      forked->id = next_state_id_++;
      forked->depth = s.depth + 1;
      forked->constraints.push_back(
          ctx_.Eq(value, ctx_.Const(alt, ctx_.WidthOf(value))));
      forked->hw_slot = -1;  // never share the parent's slot
      if (options_.mode != ConsistencyMode::kNaiveInconsistent) {
        HS_RETURN_IF_ERROR(CaptureForFork(forked.get()));
      }
      ++report->forks;
      AddState(std::move(forked));
      ++spawned;
      as.push_back(ctx_.Ne(value, ctx_.Const(alt, ctx_.WidthOf(value))));
    }
  }

  LogDebug(std::string("concretized ") + what + " to " +
           std::to_string(chosen));
  s.constraints.push_back(
      ctx_.Eq(value, ctx_.Const(chosen, ctx_.WidthOf(value))));
  return chosen;
}

// ---------------------------------------------------------------------------
// Interrupts.

void Executor::ServePendingInterrupt(State& s, Report* report) {
  if (s.in_interrupt || (s.mstatus & vm::kMstatusMie) == 0) return;
  const uint32_t pending = target_->IrqVector();
  if (pending == 0) return;
  unsigned line = 0;
  while (((pending >> line) & 1) == 0) ++line;
  s.mepc = s.pc;
  s.mcause = 0x80000000u | line;
  s.pc = s.mtvec;
  if (s.mstatus & vm::kMstatusMie) s.mstatus |= vm::kMstatusMpie;
  s.mstatus &= ~vm::kMstatusMie;
  s.in_interrupt = true;
  ++report->interrupts_served;
}

// ---------------------------------------------------------------------------
// Instruction execution.

Status Executor::ExecuteInstruction(State& s, Report* report) {
  auto word = FetchWord(s);
  if (!word.ok()) {
    FlagBug(s, "bad instruction fetch", word.status().message(), report);
    return Status::Ok();
  }
  auto decoded = vm::Decode(word.value());
  if (!decoded.ok()) {
    FlagBug(s, "illegal instruction", decoded.status().message(), report);
    return Status::Ok();
  }
  const Instruction& in = decoded.value();
  const uint32_t next_pc = s.pc + 4;
  covered_pcs_.insert(s.pc);
  ++s.icount;
  ++report->instructions;

  auto rs1 = [&] { return s.regs[in.rs1]; };
  auto rs2 = [&] { return s.regs[in.rs2]; };
  auto set_rd = [&](TermId v) {
    if (in.rd != 0) s.regs[in.rd] = v;
  };
  auto imm32 = [&] {
    return ctx_.Const(static_cast<uint32_t>(in.imm), 32);
  };
  auto shamt = [&](TermId amount) {
    return ctx_.And(amount, ctx_.Const(31, 32));
  };

  switch (in.op) {
    case Opcode::kLui:
      set_rd(imm32());
      s.pc = next_pc;
      break;
    case Opcode::kAuipc:
      set_rd(ctx_.Const(s.pc + static_cast<uint32_t>(in.imm), 32));
      s.pc = next_pc;
      break;
    case Opcode::kJal:
      set_rd(ctx_.Const(next_pc, 32));
      s.pc = s.pc + static_cast<uint32_t>(in.imm);
      break;
    case Opcode::kJalr: {
      TermId t = ctx_.And(ctx_.Add(rs1(), imm32()),
                          ctx_.Const(~uint32_t{1}, 32));
      auto target_pc = Concretize(s, t, "jalr target", report);
      if (!target_pc.ok()) return target_pc.status();
      set_rd(ctx_.Const(next_pc, 32));
      s.pc = target_pc.value();
      break;
    }
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
      TermId cond;
      switch (in.op) {
        case Opcode::kBeq: cond = ctx_.Eq(rs1(), rs2()); break;
        case Opcode::kBne: cond = ctx_.Ne(rs1(), rs2()); break;
        case Opcode::kBlt: cond = ctx_.Slt(rs1(), rs2()); break;
        case Opcode::kBge: cond = ctx_.Sge(rs1(), rs2()); break;
        case Opcode::kBltu: cond = ctx_.Ult(rs1(), rs2()); break;
        default: cond = ctx_.Uge(rs1(), rs2()); break;
      }
      return ForkOnCondition(s, cond, s.pc + static_cast<uint32_t>(in.imm),
                             next_pc, report);
    }
    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw:
    case Opcode::kLbu: case Opcode::kLhu:
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw:
      return ExecMemOp(s, in, report);
    case Opcode::kAddi: set_rd(ctx_.Add(rs1(), imm32())); s.pc = next_pc; break;
    case Opcode::kSlti:
      set_rd(ctx_.Zext(ctx_.Slt(rs1(), imm32()), 32));
      s.pc = next_pc;
      break;
    case Opcode::kSltiu:
      set_rd(ctx_.Zext(ctx_.Ult(rs1(), imm32()), 32));
      s.pc = next_pc;
      break;
    case Opcode::kXori: set_rd(ctx_.Xor(rs1(), imm32())); s.pc = next_pc; break;
    case Opcode::kOri: set_rd(ctx_.Or(rs1(), imm32())); s.pc = next_pc; break;
    case Opcode::kAndi: set_rd(ctx_.And(rs1(), imm32())); s.pc = next_pc; break;
    case Opcode::kSlli:
      set_rd(ctx_.Shl(rs1(), ctx_.Const(in.imm & 31, 32)));
      s.pc = next_pc;
      break;
    case Opcode::kSrli:
      set_rd(ctx_.Lshr(rs1(), ctx_.Const(in.imm & 31, 32)));
      s.pc = next_pc;
      break;
    case Opcode::kSrai:
      set_rd(ctx_.Ashr(rs1(), ctx_.Const(in.imm & 31, 32)));
      s.pc = next_pc;
      break;
    case Opcode::kAdd: set_rd(ctx_.Add(rs1(), rs2())); s.pc = next_pc; break;
    case Opcode::kSub: set_rd(ctx_.Sub(rs1(), rs2())); s.pc = next_pc; break;
    case Opcode::kSll: set_rd(ctx_.Shl(rs1(), shamt(rs2()))); s.pc = next_pc; break;
    case Opcode::kSlt:
      set_rd(ctx_.Zext(ctx_.Slt(rs1(), rs2()), 32));
      s.pc = next_pc;
      break;
    case Opcode::kSltu:
      set_rd(ctx_.Zext(ctx_.Ult(rs1(), rs2()), 32));
      s.pc = next_pc;
      break;
    case Opcode::kXor: set_rd(ctx_.Xor(rs1(), rs2())); s.pc = next_pc; break;
    case Opcode::kSrl: set_rd(ctx_.Lshr(rs1(), shamt(rs2()))); s.pc = next_pc; break;
    case Opcode::kSra: set_rd(ctx_.Ashr(rs1(), shamt(rs2()))); s.pc = next_pc; break;
    case Opcode::kOr: set_rd(ctx_.Or(rs1(), rs2())); s.pc = next_pc; break;
    case Opcode::kAnd: set_rd(ctx_.And(rs1(), rs2())); s.pc = next_pc; break;
    case Opcode::kMul: set_rd(ctx_.Mul(rs1(), rs2())); s.pc = next_pc; break;
    case Opcode::kMulh: {
      TermId a = ctx_.Sext(rs1(), 64), b = ctx_.Sext(rs2(), 64);
      set_rd(ctx_.Extract(ctx_.Mul(a, b), 63, 32));
      s.pc = next_pc;
      break;
    }
    case Opcode::kMulhu: {
      TermId a = ctx_.Zext(rs1(), 64), b = ctx_.Zext(rs2(), 64);
      set_rd(ctx_.Extract(ctx_.Mul(a, b), 63, 32));
      s.pc = next_pc;
      break;
    }
    case Opcode::kMulhsu: {
      TermId a = ctx_.Sext(rs1(), 64), b = ctx_.Zext(rs2(), 64);
      set_rd(ctx_.Extract(ctx_.Mul(a, b), 63, 32));
      s.pc = next_pc;
      break;
    }
    case Opcode::kDivu: set_rd(ctx_.Udiv(rs1(), rs2())); s.pc = next_pc; break;
    case Opcode::kRemu: set_rd(ctx_.Urem(rs1(), rs2())); s.pc = next_pc; break;
    case Opcode::kDiv: {
      // Signed division via magnitudes (RISC-V: overflow x8000.../-1 wraps,
      // division by zero yields -1).
      TermId a = rs1(), b = rs2();
      TermId zero = ctx_.Const(0, 32);
      TermId a_neg = ctx_.Slt(a, zero), b_neg = ctx_.Slt(b, zero);
      TermId abs_a = ctx_.Ite(a_neg, ctx_.Neg(a), a);
      TermId abs_b = ctx_.Ite(b_neg, ctx_.Neg(b), b);
      TermId q = ctx_.Udiv(abs_a, abs_b);
      TermId q_neg = ctx_.Xor(a_neg, b_neg);
      TermId signed_q = ctx_.Ite(q_neg, ctx_.Neg(q), q);
      set_rd(ctx_.Ite(ctx_.Eq(b, zero), ctx_.Const(~0u, 32), signed_q));
      s.pc = next_pc;
      break;
    }
    case Opcode::kRem: {
      TermId a = rs1(), b = rs2();
      TermId zero = ctx_.Const(0, 32);
      TermId a_neg = ctx_.Slt(a, zero), b_neg = ctx_.Slt(b, zero);
      TermId abs_a = ctx_.Ite(a_neg, ctx_.Neg(a), a);
      TermId abs_b = ctx_.Ite(b_neg, ctx_.Neg(b), b);
      TermId r = ctx_.Urem(abs_a, abs_b);
      TermId signed_r = ctx_.Ite(a_neg, ctx_.Neg(r), r);
      set_rd(ctx_.Ite(ctx_.Eq(b, zero), a, signed_r));
      s.pc = next_pc;
      break;
    }
    case Opcode::kCsrrw: case Opcode::kCsrrs: case Opcode::kCsrrc: {
      uint32_t* csr = nullptr;
      switch (in.csr) {
        case vm::kCsrMstatus: csr = &s.mstatus; break;
        case vm::kCsrMtvec: csr = &s.mtvec; break;
        case vm::kCsrMepc: csr = &s.mepc; break;
        case vm::kCsrMcause: csr = &s.mcause; break;
        default:
          FlagBug(s, "unknown CSR", std::to_string(in.csr), report);
          return Status::Ok();
      }
      const uint32_t old = *csr;
      auto wv = Concretize(s, s.regs[in.rs1], "CSR write value", report);
      if (!wv.ok()) return wv.status();
      switch (in.op) {
        case Opcode::kCsrrw: *csr = wv.value(); break;
        case Opcode::kCsrrs: if (in.rs1 != 0) *csr = old | wv.value(); break;
        default: if (in.rs1 != 0) *csr = old & ~wv.value(); break;
      }
      set_rd(ctx_.Const(old, 32));
      s.pc = next_pc;
      break;
    }
    case Opcode::kEcall:
      // Benign environment call: treated as a no-op trap (firmware corpus
      // uses MMIO hypercalls instead).
      s.pc = next_pc;
      break;
    case Opcode::kEbreak:
      FlagBug(s, "ebreak", "firmware assertion failure (ebreak)", report);
      return Status::Ok();
    case Opcode::kMret:
      s.pc = s.mepc;
      if (s.mstatus & vm::kMstatusMpie) s.mstatus |= vm::kMstatusMie;
      s.in_interrupt = false;
      break;
    case Opcode::kWfi:
      // Wait for interrupt: advance hardware until an irq is pending (with
      // a liveness bound), then loop on the same pc until served.
      if (target_->IrqVector() == 0) {
        HS_RETURN_IF_ERROR(target_->Run(16));
        if (target_->IrqVector() == 0) return Status::Ok();  // keep waiting
      }
      s.pc = next_pc;
      break;
    case Opcode::kFence:
      s.pc = next_pc;
      break;
  }
  return Status::Ok();
}

Status Executor::ExecMemOp(State& s, const Instruction& in, Report* report) {
  const uint32_t next_pc = s.pc + 4;
  TermId addr_term =
      ctx_.Add(s.regs[in.rs1], ctx_.Const(static_cast<uint32_t>(in.imm), 32));
  auto addr_or = Concretize(s, addr_term, "memory address", report);
  if (!addr_or.ok()) return addr_or.status();
  const uint32_t addr = addr_or.value();

  const bool is_store = in.op == Opcode::kSb || in.op == Opcode::kSh ||
                        in.op == Opcode::kSw;
  unsigned bytes = 1;
  if (in.op == Opcode::kLh || in.op == Opcode::kLhu || in.op == Opcode::kSh)
    bytes = 2;
  if (in.op == Opcode::kLw || in.op == Opcode::kSw) bytes = 4;

  // --- host windows ----------------------------------------------------
  if (is_store && addr == vm::kHostPutchar) {
    auto ch = Concretize(s, s.regs[in.rs2], "console byte", report);
    if (!ch.ok()) return ch.status();
    s.console.push_back(static_cast<char>(ch.value() & 0xff));
    s.pc = next_pc;
    return Status::Ok();
  }
  if (is_store && addr == vm::kHostExit) {
    auto code = Concretize(s, s.regs[in.rs2], "exit code", report);
    if (!code.ok()) return code.status();
    s.status = StateStatus::kExited;
    s.exit_code = code.value();
    s.stop_reason = "exit";
    return Status::Ok();
  }

  // --- MMIO window: the VM boundary -----------------------------------
  if (vm::InMmio(addr)) {
    const uint32_t bus_addr = addr & 0xffff;
    if (is_store) {
      auto value = Concretize(s, s.regs[in.rs2], "MMIO store data", report);
      if (!value.ok()) return value.status();
      HS_RETURN_IF_ERROR(target_->Write32(bus_addr, value.value()));
    } else {
      auto value = target_->Read32(bus_addr);
      if (!value.ok()) return value.status();
      TermId v = ctx_.Const(value.value(), 32);
      switch (in.op) {
        case Opcode::kLb: v = ctx_.Sext(ctx_.Extract(v, 7, 0), 32); break;
        case Opcode::kLbu: v = ctx_.Zext(ctx_.Extract(v, 7, 0), 32); break;
        case Opcode::kLh: v = ctx_.Sext(ctx_.Extract(v, 15, 0), 32); break;
        case Opcode::kLhu: v = ctx_.Zext(ctx_.Extract(v, 15, 0), 32); break;
        default: break;
      }
      if (in.rd != 0) s.regs[in.rd] = v;
    }
    s.pc = next_pc;
    return Status::Ok();
  }

  // --- ordinary memory ---------------------------------------------------
  if (is_store) {
    if (!vm::InRam(addr) || !vm::InRam(addr + bytes - 1)) {
      char detail[64];
      std::snprintf(detail, sizeof detail, "store of %u bytes to 0x%08x",
                    bytes, addr);
      FlagBug(s, "out-of-bounds store", detail, report);
      return Status::Ok();
    }
    TermId value = s.regs[in.rs2];
    for (unsigned i = 0; i < bytes; ++i)
      StoreByte(s, addr + i, ctx_.Extract(value, 8 * i + 7, 8 * i));
    s.pc = next_pc;
    return Status::Ok();
  }

  if (!vm::InRam(addr) && !vm::InRom(addr)) {
    char detail[64];
    std::snprintf(detail, sizeof detail, "load of %u bytes from 0x%08x",
                  bytes, addr);
    FlagBug(s, "out-of-bounds load", detail, report);
    return Status::Ok();
  }
  auto raw = LoadWidth(s, addr, bytes);
  if (!raw.ok()) return raw.status();
  TermId v = raw.value();
  switch (in.op) {
    case Opcode::kLb: case Opcode::kLh: v = ctx_.Sext(v, 32); break;
    case Opcode::kLbu: case Opcode::kLhu: v = ctx_.Zext(v, 32); break;
    default: break;  // lw is already 32 bits
  }
  if (in.rd != 0) s.regs[in.rd] = v;
  s.pc = next_pc;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Main loop (Algorithm 1).

Result<Report> Executor::Run() {
  Report report;
  if (image_.bytes.empty())
    return FailedPrecondition("no firmware loaded");

  HS_RETURN_IF_ERROR(target_->ResetHardware());

  AddState(std::move(initial_));
  initial_ = nullptr;

  State* previous = nullptr;
  unsigned slice_left = 0;
  while (!searcher_->Empty() &&
         report.instructions < options_.max_instructions &&
         report.paths_completed < options_.max_paths) {
    State* s;
    if (slice_left > 0 && previous != nullptr &&
        previous->status == StateStatus::kRunning) {
      s = previous;  // current state still owns its scheduler slice
    } else {
      s = searcher_->SelectNext(previous);
      slice_left = options_.instructions_per_slice;
    }
    if (s != previous) {
      HS_RETURN_IF_ERROR(HwContextSwitch(previous, *s, &report));
    }
    previous = s;
    if (slice_left > 0) --slice_left;

    // Reclaim dead states (their memory maps and constraint vectors can
    // be large). `previous` now points at the live state `s`, so every
    // non-running state is safe to free.
    if (++iterations_since_sweep_ >= 256) {
      iterations_since_sweep_ = 0;
      states_.erase(
          std::remove_if(states_.begin(), states_.end(),
                         [s](const std::unique_ptr<State>& st) {
                           return st.get() != s &&
                                  st->status != StateStatus::kRunning;
                         }),
          states_.end());
    }

    ServePendingInterrupt(*s, &report);
    HS_RETURN_IF_ERROR(ExecuteInstruction(*s, &report));
    HS_RETURN_IF_ERROR(target_->Run(options_.cycles_per_instruction));
    if (options_.step_hook) options_.step_hook(*s);

    if (s->status == StateStatus::kRunning) {
      for (const auto& assertion : assertions_) {
        std::string failure = assertion(*s);
        if (!failure.empty()) {
          FlagBug(*s, "assertion", failure, &report);
          break;
        }
      }
    }

    if (s->status != StateStatus::kRunning) {
      FinishPath(*s, &report);
      RemoveState(s, &report);
      // previous stays pointing at the dead state; the next SelectNext
      // sees a terminated previous and switches freely.
    }
  }

  // Budget exhausted: close out the remaining states.
  while (!searcher_->Empty()) {
    State* s = searcher_->SelectNext(nullptr);
    s->status = StateStatus::kTerminated;
    s->stop_reason = "budget exhausted";
    FinishPath(*s, &report);
    RemoveState(s, &report);
  }

  report.analysis_hw_time = target_->clock().now() + replay_clock_.now();
  report.replay_overhead = replay_clock_.now();
  report.solver_queries += solver_.stats().queries;
  report.covered_pcs = covered_pcs_.size();
  report.snapshot_bytes_copied = target_->stats().snapshot_bytes_copied;
  report.link = target_->stats().link;
  const auto& ss = store_.stats();
  report.snapshot_bytes_shared = ss.bytes_shared;
  if (ss.bytes_copied + ss.bytes_shared > 0) {
    report.snapshot_dedup_ratio =
        static_cast<double>(ss.bytes_shared) /
        static_cast<double>(ss.bytes_copied + ss.bytes_shared);
  }
  return report;
}

}  // namespace hardsnap::symex
