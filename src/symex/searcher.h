// State-selection heuristics (KLEE "searchers").
//
// SelectNextState implements the paper's scheduler contract: it must keep
// returning the previous state while that state is inside an interrupt
// handler (Inception makes interrupts atomic "to reduce timing
// violations"), and otherwise picks per strategy. Minimizing gratuitous
// state switches also minimizes hardware context switches, which is why
// the executor reports switch counts per strategy (ablation bench).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "symex/state.h"

namespace hardsnap::symex {

enum class SearchStrategy : uint8_t { kDfs, kBfs, kRandom, kCoverage };

const char* SearchStrategyName(SearchStrategy s);

class Searcher {
 public:
  virtual ~Searcher() = default;

  virtual void Add(State* state) = 0;
  virtual void Remove(State* state) = 0;
  virtual bool Empty() const = 0;
  // `previous` may be null (first pick) or an already-terminated state.
  virtual State* SelectNext(const State* previous) = 0;
};

std::unique_ptr<Searcher> MakeSearcher(SearchStrategy strategy, uint64_t seed);

}  // namespace hardsnap::symex
