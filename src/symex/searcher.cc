#include "symex/searcher.h"

#include <map>

#include <algorithm>

namespace hardsnap::symex {

const char* SearchStrategyName(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kDfs: return "dfs";
    case SearchStrategy::kBfs: return "bfs";
    case SearchStrategy::kRandom: return "random";
    case SearchStrategy::kCoverage: return "coverage";
  }
  return "?";
}

namespace {

// Common interrupt-atomicity guard: while the previous state is live and
// inside an interrupt handler, stick with it.
bool MustKeepPrevious(const State* previous) {
  return previous != nullptr && previous->status == StateStatus::kRunning &&
         previous->in_interrupt;
}

class DfsSearcher : public Searcher {
 public:
  void Add(State* s) override { stack_.push_back(s); }
  void Remove(State* s) override {
    stack_.erase(std::remove(stack_.begin(), stack_.end(), s), stack_.end());
  }
  bool Empty() const override { return stack_.empty(); }
  State* SelectNext(const State* previous) override {
    if (MustKeepPrevious(previous)) return const_cast<State*>(previous);
    return stack_.back();
  }

 private:
  std::vector<State*> stack_;
};

class BfsSearcher : public Searcher {
 public:
  void Add(State* s) override { queue_.push_back(s); }
  void Remove(State* s) override {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), s), queue_.end());
  }
  bool Empty() const override { return queue_.empty(); }
  State* SelectNext(const State* previous) override {
    if (MustKeepPrevious(previous)) return const_cast<State*>(previous);
    // Rotate: take the front, move it to the back so siblings interleave.
    State* s = queue_.front();
    queue_.pop_front();
    queue_.push_back(s);
    return s;
  }

 private:
  std::deque<State*> queue_;
};

class RandomSearcher : public Searcher {
 public:
  explicit RandomSearcher(uint64_t seed) : rng_(seed) {}
  void Add(State* s) override { states_.push_back(s); }
  void Remove(State* s) override {
    states_.erase(std::remove(states_.begin(), states_.end(), s),
                  states_.end());
  }
  bool Empty() const override { return states_.empty(); }
  State* SelectNext(const State* previous) override {
    if (MustKeepPrevious(previous)) return const_cast<State*>(previous);
    return states_[rng_.Below(states_.size())];
  }

 private:
  Rng rng_;
  std::vector<State*> states_;
};

// Coverage-greedy: prefer the state whose pc has been selected least
// often — a simple new-code-first heuristic (KLEE's coverage searchers'
// spirit). Ties break towards the shallowest state to keep path depth
// balanced.
class CoverageSearcher : public Searcher {
 public:
  void Add(State* s) override { states_.push_back(s); }
  void Remove(State* s) override {
    states_.erase(std::remove(states_.begin(), states_.end(), s),
                  states_.end());
  }
  bool Empty() const override { return states_.empty(); }
  State* SelectNext(const State* previous) override {
    if (MustKeepPrevious(previous)) return const_cast<State*>(previous);
    State* best = states_.front();
    uint64_t best_count = pc_count_[best->pc];
    for (State* s : states_) {
      const uint64_t count = pc_count_[s->pc];
      if (count < best_count ||
          (count == best_count && s->depth < best->depth)) {
        best = s;
        best_count = count;
      }
    }
    ++pc_count_[best->pc];
    return best;
  }

 private:
  std::vector<State*> states_;
  std::map<uint32_t, uint64_t> pc_count_;
};

}  // namespace

std::unique_ptr<Searcher> MakeSearcher(SearchStrategy strategy,
                                       uint64_t seed) {
  switch (strategy) {
    case SearchStrategy::kDfs: return std::make_unique<DfsSearcher>();
    case SearchStrategy::kBfs: return std::make_unique<BfsSearcher>();
    case SearchStrategy::kRandom:
      return std::make_unique<RandomSearcher>(seed);
    case SearchStrategy::kCoverage:
      return std::make_unique<CoverageSearcher>();
  }
  return nullptr;
}

}  // namespace hardsnap::symex
