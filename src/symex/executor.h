// The selective symbolic virtual machine (paper Sec. III-B / IV-B).
//
// Interprets RV32IM firmware over solver terms, forwarding MMIO-window
// accesses to a hardware target, forking on symbolic branch conditions,
// and — the paper's contribution — keeping every software state paired
// with its own hardware snapshot via the hardware context switch of
// Algorithm 1:
//
//     S = SelectNextState(AS, S_previous)
//     if S_previous != ∅ and S != S_previous:
//         UpdateState(S_previous)   // live hardware -> S_previous's snapshot
//         RestoreState(S)           // S's snapshot  -> live hardware
//     ServePendingInterrupt(S)
//     ExecuteInstruction(S)
//
// Three consistency modes reproduce the paper's Fig. 1 comparison:
//   kHardSnap          — Algorithm 1 (consistent AND fast).
//   kNaiveConsistent   — semantically the re-execution flow: every state
//                        switch costs a device reboot plus re-running the
//                        state's whole instruction prefix. (Implementation
//                        note: correctness is obtained by restoring the
//                        snapshot; the *cost* of the reboot + replay is
//                        charged to the virtual clock and reported, which
//                        is the measurable quantity of experiment E4.)
//   kNaiveInconsistent — hardware-in-the-loop style: all states share the
//                        live hardware with no snapshotting; fast but
//                        wrong, producing the false negatives/positives of
//                        experiment E5.
#pragma once

#include <functional>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "bus/delta_support.h"
#include "bus/slot_support.h"
#include "bus/target.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "snapshot/snapshot.h"
#include "solver/bitblast.h"
#include "solver/term.h"
#include "symex/searcher.h"
#include "symex/state.h"
#include "vm/assembler.h"
#include "vm/isa.h"

namespace hardsnap::symex {

enum class ConsistencyMode : uint8_t {
  kHardSnap,
  kNaiveConsistent,
  kNaiveInconsistent,
};
const char* ConsistencyModeName(ConsistencyMode mode);

// What to do when a symbolic value crosses the VM boundary into the
// concrete hardware domain (paper Sec. III-B "Concretization policy").
enum class ConcretizationPolicy : uint8_t {
  kSingleValue,  // performance: pick one satisfying value, constrain to it
  kAllValues,    // completeness: fork one state per satisfying value
                 // (bounded by ExecOptions::max_concretization_fanout)
};

struct ExecOptions {
  ConsistencyMode mode = ConsistencyMode::kHardSnap;

  // Called after every executed instruction with the state that ran it
  // (tracing, progress reporting, external invariant monitors). Keep it
  // cheap: it sits on the hot path.
  std::function<void(const State&)> step_hook;
  ConcretizationPolicy concretization = ConcretizationPolicy::kSingleValue;
  SearchStrategy search = SearchStrategy::kBfs;
  uint64_t seed = 1;

  uint64_t max_instructions = 2'000'000;  // global budget
  uint64_t max_states = 4096;             // live state cap
  uint64_t max_paths = 100000;            // completed path cap
  unsigned max_concretization_fanout = 8;

  // Hardware cycles per executed firmware instruction (peripherals run
  // concurrently with the CPU).
  unsigned cycles_per_instruction = 1;

  // Scheduler time slice: how many instructions a state executes before
  // the searcher may pick a different state (KLEE-style batching). Larger
  // slices amortize hardware context switches; 1 = switch-per-instruction.
  unsigned instructions_per_slice = 32;

  // Keep per-state hardware snapshots in the target's on-device SRAM
  // slots when the target supports them (paper: the FPGA snapshot
  // controller's SRAM): a context switch then costs two scan passes and
  // never crosses the host link. Falls back to host storage when slots
  // run out or the target has none.
  bool use_device_slots = true;

  // Route host-side snapshot traffic through the target's incremental
  // interface (bus::DeltaSnapshotter) when it has one: UpdateState ships
  // only the chunks dirtied since the last sync point, RestoreState of a
  // sibling ships only the chunks by which the two snapshots differ, and
  // the store shares unchanged chunks structurally. Falls back to full
  // transfers whenever no usable base exists (first capture, after a
  // reboot or an on-device slot restore).
  bool use_delta_snapshots = true;

  // Byte cap on the host-side snapshot store (0 = unlimited). When the
  // live snapshot set would exceed it even after evicting cold
  // materialization caches, snapshot ingestion fails with
  // kResourceExhausted instead of growing without bound (CLI:
  // --max-store-bytes).
  uint64_t max_store_bytes = 0;

  // Modeled cost of a full device reboot (naive-consistent mode).
  Duration reboot_cost = Duration::Millis(250);
  // Modeled per-instruction cost of re-executing a prefix after a reboot.
  Duration replay_cost_per_instruction = Duration::Micros(2);
};

struct TestCase {
  std::string origin;  // "exit", "bug: ...", state id
  std::map<std::string, uint64_t> inputs;
};

struct Bug {
  uint32_t pc = 0;
  std::string kind;    // "out-of-bounds store", "ebreak", ...
  std::string detail;
  TestCase test_case;
};

struct Report {
  std::vector<Bug> bugs;
  std::vector<TestCase> test_cases;
  uint64_t paths_completed = 0;
  uint64_t paths_exited = 0;
  std::vector<uint32_t> exit_codes;  // one per exited path, in finish order
  uint64_t forks = 0;
  uint64_t instructions = 0;
  uint64_t interrupts_served = 0;
  uint64_t hw_context_switches = 0;
  uint64_t replayed_instructions = 0;  // naive-consistent re-execution work
  uint64_t reboots = 0;
  uint64_t concretizations = 0;
  uint64_t solver_queries = 0;
  uint64_t covered_pcs = 0;  // unique instruction addresses executed
  // Snapshot traffic accounting (experiment: delta vs full transfers).
  uint64_t snapshot_bytes_copied = 0;  // bytes that crossed the host link
  uint64_t snapshot_bytes_shared = 0;  // store chunk bytes satisfied by dedup
  double snapshot_dedup_ratio = 0.0;   // shared / (copied+shared) in the store
  Duration analysis_hw_time;   // target virtual time at end
  Duration replay_overhead;    // extra virtual time charged for replays
  // Transport retry/fault counters from the target's framed link: how
  // hard the host had to work to keep the analysis running on an
  // unreliable channel (zero on a clean link).
  bus::LinkStats link;
  std::string console;         // concatenated console output of all paths

  std::string Summary() const;
  // Machine-readable rendering (stable keys; for CI pipelines / the CLI).
  std::string ToJson() const;
};

class Executor {
 public:
  // `target` must be reset and outlive the executor.
  Executor(bus::HardwareTarget* target, ExecOptions options);

  Status LoadFirmware(const vm::FirmwareImage& image);

  // Mark architectural inputs symbolic before Run().
  solver::TermId MakeSymbolicRegister(unsigned reg, const std::string& name);
  Status MakeSymbolicRegion(uint32_t addr, unsigned bytes,
                            const std::string& name);

  // User assertion: called after every instruction of every state; return
  // a non-empty string to flag a bug with that description.
  using AssertionFn = std::function<std::string(const State&)>;
  void AddAssertion(AssertionFn fn) { assertions_.push_back(std::move(fn)); }

  Result<Report> Run();

  solver::BvContext& ctx() { return ctx_; }
  const ExecOptions& options() const { return options_; }

 private:
  using TermId = solver::TermId;

  // --- memory ---------------------------------------------------------
  TermId LoadByte(State& s, uint32_t addr);
  void StoreByte(State& s, uint32_t addr, TermId value);
  Result<TermId> LoadWidth(State& s, uint32_t addr, unsigned bytes);
  Result<uint32_t> FetchWord(State& s);

  // --- execution -------------------------------------------------------
  Status ExecuteInstruction(State& s, Report* report);
  Status ExecMemOp(State& s, const vm::Instruction& in, Report* report);
  void ServePendingInterrupt(State& s, Report* report);
  void FlagBug(State& s, const std::string& kind, const std::string& detail,
               Report* report);
  void FinishPath(State& s, Report* report);

  // Branch forking: returns the state to continue with (possibly s).
  Status ForkOnCondition(State& s, TermId cond, uint32_t taken_pc,
                         uint32_t fallthrough_pc, Report* report);

  // Concretize a symbolic value at the VM boundary per policy; may fork.
  Result<uint32_t> Concretize(State& s, TermId value, const char* what,
                              Report* report);

  // Evaluate a term under the current path condition, returning a model.
  Result<uint64_t> SolveForValue(State& s, TermId value);
  // Is the path condition plus `extra` satisfiable?
  Result<bool> Feasible(State& s, TermId extra);

  // --- hardware context switch (Algorithm 1) -----------------------------
  Status UpdateState(State& s);
  Status RestoreState(State& s, Report* report);
  Status HwContextSwitch(State* previous, State& next, Report* report);

  // Device-slot helpers (no-ops when the target has no slots).
  int AllocSlot();
  void FreeSlot(int slot);
  // Capture the live hardware for a freshly forked state (slot if
  // available, host store otherwise).
  Status CaptureForFork(State* forked);

  // --- state management -------------------------------------------------
  State* AddState(std::unique_ptr<State> state);
  void RemoveState(State* state, Report* report);
  TestCase SolveTestCase(State& s, const std::string& origin);

  bus::HardwareTarget* target_;
  bus::SlotSnapshotter* slots_ = nullptr;  // non-null if the target has
                                           // device-resident slots
  bus::DeltaSnapshotter* delta_ = nullptr;  // non-null if the target does
                                            // incremental snapshots
  // Snapshot whose stored content equals the target's last sync point —
  // the base every delta is expressed against. kNoSnapshot whenever the
  // live state moved without the host seeing it (reboot, slot restore);
  // the next operation then does a full transfer.
  snapshot::SnapshotId live_base_ = snapshot::kNoSnapshot;
  // When the live base's state is removed (its path completed), its
  // snapshot is kept alive here so the next sibling restore can still be
  // expressed as a delta — otherwise every BFS leaf wave would pay a full
  // restore. Dropped as soon as the live base moves elsewhere; the chunks
  // are refcounted, so retention shares rather than copies.
  snapshot::SnapshotId retained_base_ = snapshot::kNoSnapshot;
  // Reassign live_base_, releasing any retained base it leaves behind.
  void SetLiveBase(snapshot::SnapshotId id);
  std::vector<bool> slot_in_use_;
  ExecOptions options_;
  solver::BvContext ctx_;
  solver::BvSolver solver_;
  snapshot::SnapshotStore store_{0};

  vm::FirmwareImage image_;
  std::unique_ptr<State> initial_;
  std::vector<std::unique_ptr<State>> states_;
  std::unique_ptr<Searcher> searcher_;
  std::vector<AssertionFn> assertions_;
  StateId next_state_id_ = 1;
  unsigned iterations_since_sweep_ = 0;
  std::set<uint32_t> covered_pcs_;
  VirtualClock replay_clock_;  // naive-consistent overhead accounting
};

}  // namespace hardsnap::symex
