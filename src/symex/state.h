// Execution state of the selective symbolic virtual machine.
//
// Paper Sec. IV-B: a software state is S_sw = {PC, F, G}; HardSnap extends
// it with a hardware snapshot id so that S = S_sw ∪ S_hw. Here the
// software state is the RV32 architectural state (registers + memory +
// machine CSRs) with solver terms as values, plus the path condition; the
// hardware half is a SnapshotId into the snapshot store.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "snapshot/snapshot.h"
#include "solver/term.h"

namespace hardsnap::symex {

using StateId = uint64_t;

enum class StateStatus : uint8_t {
  kRunning,
  kExited,       // firmware wrote kHostExit
  kBug,          // memory error / ebreak / failed assertion
  kTerminated,   // budget or user stop
};

// A named symbolic input created in this state's history (for test-case
// generation: solving the path condition gives each input a value).
struct SymbolicInput {
  std::string name;
  solver::TermId var = solver::kNoTerm;
  unsigned bytes = 0;
};

struct State {
  StateId id = 0;

  // --- software state -------------------------------------------------
  uint32_t pc = 0;
  std::array<solver::TermId, 32> regs{};  // regs[0] stays the zero const
  // Byte-granular overlay memory: RAM and ROM writes land here; reads fall
  // back to the firmware image / zero. 8-bit terms.
  std::map<uint32_t, solver::TermId> mem;

  // Machine-mode CSRs (concrete; interrupt plumbing only).
  uint32_t mstatus = 0;
  uint32_t mtvec = 0;
  uint32_t mepc = 0;
  uint32_t mcause = 0;
  bool in_interrupt = false;  // Inception-style atomic interrupt handling

  // Path condition: conjunction of 1-bit terms.
  std::vector<solver::TermId> constraints;

  // Symbolic inputs created so far (inherited across forks).
  std::vector<SymbolicInput> inputs;

  // --- hardware state ---------------------------------------------------
  snapshot::SnapshotId hw_snapshot = snapshot::kNoSnapshot;
  int hw_slot = -1;  // device-resident SRAM slot, when the target has one

  // --- bookkeeping -----------------------------------------------------
  StateStatus status = StateStatus::kRunning;
  uint32_t exit_code = 0;
  std::string stop_reason;
  uint64_t icount = 0;           // instructions executed on this path
  uint64_t depth = 0;            // forks since the initial state
  std::string console;           // bytes written to the host console

  // States are copied on fork; everything above is value-semantic.
  std::unique_ptr<State> Fork() const { return std::make_unique<State>(*this); }
  State() = default;
  State(const State&) = default;
  State& operator=(const State&) = default;
};

}  // namespace hardsnap::symex
