#include <cstdio>
#include <string>

#include "periph/periph.h"
#include "periph/ref_models.h"

namespace hardsnap::periph {

namespace {

std::string S(int i) { return "s" + std::to_string(i); }
std::string K(int i) { return "k" + std::to_string(i); }

std::string Hex8(uint8_t v) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "8'h%02x", v);
  return buf;
}

std::string HexAddr(uint32_t a) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "8'h%02x", a);
  return buf;
}

}  // namespace

// Byte-serial AES-128 encryption core: a single shared S-box (one lookup
// per cycle) services both SubBytes (16 cycles per round) and the on-the-
// fly key schedule (4 cycles per round). ShiftRows, MixColumns and
// AddRoundKey are single-cycle parallel steps. A block takes ~230 cycles —
// the area-optimized design point common in microcontroller crypto IP.
//
// Phases: IDLE(0) -> ARK0(1) -> SUB(2) -> SHIFT(3) -> MIX(4) -> KS(5) ->
// KSX(6) -> ARK(7; loops to SUB or finishes) -> DONE(outputs latched,
// STATUS.done set, irq raised if enabled).
//
// State bytes follow FIPS-197 order: s[i] is state element row i%4,
// column i/4; word registers are big-endian.
std::string Aes128Verilog() {
  const auto& sbox = ref::AesSbox();
  std::string src;
  src += R"(
module hs_aes128(
  input clk, input rst,
  input sel, input wr, input rd,
  input [7:0] addr, input [31:0] wdata,
  output [31:0] rdata, output irq
);
  reg busy;
  reg done;
  reg irq_en;
  reg [2:0] phase;
  reg [3:0] round;
  reg [3:0] bytecnt;
  reg [7:0] rcon;
)";
  for (int i = 0; i < 16; ++i) src += "  reg [7:0] " + S(i) + ";\n";
  for (int i = 0; i < 16; ++i) src += "  reg [7:0] " + K(i) + ";\n";
  for (int i = 0; i < 4; ++i) src += "  reg [7:0] t" + std::to_string(i) + ";\n";
  for (int i = 0; i < 4; ++i) {
    src += "  reg [31:0] key_buf" + std::to_string(i) + ";\n";
    src += "  reg [31:0] din" + std::to_string(i) + ";\n";
  }

  // Shared S-box input mux: SubBytes reads state bytes, the key schedule
  // reads the rotated last key word (k13, k14, k15, k12).
  src += "\n  reg [7:0] sbox_in;\n  always @(*) begin\n"
         "    if (phase == 3'd2) begin\n      case (bytecnt)\n";
  for (int i = 0; i < 16; ++i)
    src += "        4'd" + std::to_string(i) + ": sbox_in = " + S(i) + ";\n";
  src += "        default: sbox_in = 8'h0;\n      endcase\n"
         "    end else begin\n      case (bytecnt)\n"
         "        4'd0: sbox_in = k13;\n"
         "        4'd1: sbox_in = k14;\n"
         "        4'd2: sbox_in = k15;\n"
         "        default: sbox_in = k12;\n      endcase\n    end\n  end\n";

  // The S-box ROM (combinational case; generated from the golden model).
  src += "\n  reg [7:0] sbox_out;\n  always @(*) begin\n    case (sbox_in)\n";
  for (int i = 0; i < 256; ++i)
    src += "      " + Hex8(static_cast<uint8_t>(i)) + ": sbox_out = " +
           Hex8(sbox[i]) + ";\n";
  src += "      default: sbox_out = 8'h0;\n    endcase\n  end\n";

  // xtime() of every state byte for MixColumns, and of rcon.
  for (int i = 0; i < 16; ++i) {
    src += "  wire [7:0] xt" + std::to_string(i) + " = {" + S(i) +
           "[6:0], 1'b0} ^ (" + S(i) + "[7] ? 8'h1b : 8'h00);\n";
  }
  src += "  wire [7:0] rcon_next = {rcon[6:0], 1'b0} ^ "
         "(rcon[7] ? 8'h1b : 8'h00);\n";

  // Next round key bytes (KSX step): word 0 = old word 0 ^ SubWord(RotWord
  // (word 3)) ^ rcon; words 1..3 chain.
  src += "  wire [7:0] nk0 = k0 ^ t0 ^ rcon;\n";
  for (int i = 1; i < 4; ++i)
    src += "  wire [7:0] nk" + std::to_string(i) + " = k" + std::to_string(i) +
           " ^ t" + std::to_string(i) + ";\n";
  for (int i = 4; i < 16; ++i)
    src += "  wire [7:0] nk" + std::to_string(i) + " = k" + std::to_string(i) +
           " ^ nk" + std::to_string(i - 4) + ";\n";

  src += R"(
  always @(posedge clk) begin
    if (rst) begin
      busy <= 1'b0;
      done <= 1'b0;
      irq_en <= 1'b0;
      phase <= 3'd0;
      round <= 4'h0;
      bytecnt <= 4'h0;
      rcon <= 8'h01;
    end else begin
      case (phase)
        3'd1: begin  // ARK0: initial AddRoundKey
)";
  for (int i = 0; i < 16; ++i)
    src += "          " + S(i) + " <= " + S(i) + " ^ " + K(i) + ";\n";
  src += R"(
          round <= 4'h1;
          phase <= 3'd2;
          bytecnt <= 4'h0;
        end
        3'd2: begin  // SUB: one S-box lookup per cycle
          case (bytecnt)
)";
  for (int i = 0; i < 16; ++i)
    src += "            4'd" + std::to_string(i) + ": " + S(i) +
           " <= sbox_out;\n";
  src += R"(
          endcase
          if (bytecnt == 4'd15) begin
            phase <= 3'd3;
            bytecnt <= 4'h0;
          end else begin
            bytecnt <= bytecnt + 4'h1;
          end
        end
        3'd3: begin  // SHIFT: ShiftRows permutation
)";
  // new s[r + 4c] = old s[r + 4*((c + r) % 4)]
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      src += "          " + S(r + 4 * c) + " <= " + S(r + 4 * ((c + r) % 4)) +
             ";\n";
  src += R"(
          phase <= (round == 4'd10) ? 3'd5 : 3'd4;
        end
        3'd4: begin  // MIX: MixColumns on all four columns
)";
  for (int c = 0; c < 4; ++c) {
    const int b = 4 * c;
    auto sb = [&](int r) { return S(b + (r % 4)); };
    auto xb = [&](int r) { return "xt" + std::to_string(b + (r % 4)); };
    for (int r = 0; r < 4; ++r) {
      // b_r = 2*a_r ^ 3*a_{r+1} ^ a_{r+2} ^ a_{r+3}
      src += "          " + S(b + r) + " <= " + xb(r) + " ^ (" + xb(r + 1) +
             " ^ " + sb(r + 1) + ") ^ " + sb(r + 2) + " ^ " + sb(r + 3) +
             ";\n";
    }
  }
  src += R"(
          phase <= 3'd5;
        end
        3'd5: begin  // KS: four S-box lookups for the key schedule
          case (bytecnt)
            4'd0: t0 <= sbox_out;
            4'd1: t1 <= sbox_out;
            4'd2: t2 <= sbox_out;
            default: t3 <= sbox_out;
          endcase
          if (bytecnt == 4'd3) begin
            phase <= 3'd6;
            bytecnt <= 4'h0;
          end else begin
            bytecnt <= bytecnt + 4'h1;
          end
        end
        3'd6: begin  // KSX: commit the next round key
)";
  for (int i = 0; i < 16; ++i)
    src += "          " + K(i) + " <= nk" + std::to_string(i) + ";\n";
  src += R"(
          rcon <= rcon_next;
          phase <= 3'd7;
        end
        3'd7: begin  // ARK: AddRoundKey (key regs committed last cycle)
)";
  for (int i = 0; i < 16; ++i)
    src += "          " + S(i) + " <= " + S(i) + " ^ " + K(i) + ";\n";
  src += R"(
          if (round == 4'd10) begin
            phase <= 3'd0;
            busy <= 1'b0;
            done <= 1'b1;
          end else begin
            round <= round + 4'h1;
            phase <= 3'd2;
            bytecnt <= 4'h0;
          end
        end
      endcase

      if (sel && wr) begin
        case (addr)
          8'h00: begin
            irq_en <= wdata[1];
            if (wdata[0] && !busy) begin
              busy <= 1'b1;
              done <= 1'b0;
              phase <= 3'd1;
              round <= 4'h0;
              rcon <= 8'h01;
)";
  // Load state and key bytes from the word buffers (big-endian words).
  for (int i = 0; i < 16; ++i) {
    const int word = i / 4, byte = i % 4, hi = 31 - 8 * byte;
    src += "              " + S(i) + " <= din" + std::to_string(word) + "[" +
           std::to_string(hi) + ":" + std::to_string(hi - 7) + "];\n";
    src += "              " + K(i) + " <= key_buf" + std::to_string(word) +
           "[" + std::to_string(hi) + ":" + std::to_string(hi - 7) + "];\n";
  }
  src += R"(
            end
          end
          8'h04: done <= 1'b0;
)";
  for (int i = 0; i < 4; ++i) {
    src += "          " + HexAddr(0x10 + 4 * i) + ": key_buf" +
           std::to_string(i) + " <= wdata;\n";
    src += "          " + HexAddr(0x20 + 4 * i) + ": din" + std::to_string(i) +
           " <= wdata;\n";
  }
  src += R"(
        endcase
      end
    end
  end

  // Result is observed directly from the state registers once done.
)";
  for (int w = 0; w < 4; ++w) {
    src += "  wire [31:0] result" + std::to_string(w) + " = {" + S(4 * w) +
           ", " + S(4 * w + 1) + ", " + S(4 * w + 2) + ", " + S(4 * w + 3) +
           "};\n";
  }
  src += R"(
  reg [31:0] rdata_mux;
  always @(*) begin
    case (addr)
      8'h00: rdata_mux = {30'h0, irq_en, 1'b0};
      8'h04: rdata_mux = {30'h0, done, busy};
)";
  for (int i = 0; i < 4; ++i) {
    src += "      " + HexAddr(0x10 + 4 * i) + ": rdata_mux = key_buf" +
           std::to_string(i) + ";\n";
    src += "      " + HexAddr(0x20 + 4 * i) + ": rdata_mux = din" +
           std::to_string(i) + ";\n";
    src += "      " + HexAddr(0x30 + 4 * i) + ": rdata_mux = result" +
           std::to_string(i) + ";\n";
  }
  src += R"(
      default: rdata_mux = 32'h0;
    endcase
  end
  assign rdata = rdata_mux;
  assign irq = done && irq_en;
endmodule
)";
  return src;
}

PeripheralInfo Aes128Peripheral() {
  return PeripheralInfo{"hs_aes128", "u_aes", Aes128Verilog(), 2, 2};
}

}  // namespace hardsnap::periph
