#include "periph/periph.h"

namespace hardsnap::periph {

// 8N1 serial port with 8-deep TX/RX FIFOs, programmable divisor and a
// line-level loopback mode (rx is driven from tx internally). Bit period
// is divisor+1 clk cycles; the receiver confirms the start bit at half a
// period and samples each data bit mid-eye. Divisors below 4 are not
// supported (the sampler needs headroom).
//
// Interrupt: rx_avail (data waiting) gated by irq_en_rx, or tx FIFO empty
// gated by irq_en_tx.
std::string UartVerilog() {
  return R"(
module hs_uart(
  input clk, input rst,
  input sel, input wr, input rd,
  input [7:0] addr, input [31:0] wdata,
  output [31:0] rdata, output irq,
  input rx, output tx
);
  reg [15:0] divisor;
  reg loopback;
  reg irq_en_rx;
  reg irq_en_tx;
  reg overrun;

  // ---------------- TX ----------------
  reg [7:0] tx_fifo [0:7];
  reg [2:0] tx_rp;
  reg [2:0] tx_wp;
  reg [3:0] tx_cnt;
  reg [9:0] tx_shift;
  reg [3:0] tx_bits;
  reg [15:0] tx_baud;
  reg tx_active;
  reg tx_line;

  wire tx_full = tx_cnt == 4'd8;
  wire tx_push = sel && wr && (addr == 8'h08) && !tx_full;
  wire tx_pop = !tx_active && (tx_cnt != 4'd0);

  always @(posedge clk) begin
    if (rst) begin
      tx_rp <= 3'h0;
      tx_wp <= 3'h0;
      tx_cnt <= 4'h0;
      tx_shift <= 10'h3ff;
      tx_bits <= 4'h0;
      tx_baud <= 16'h0;
      tx_active <= 1'b0;
      tx_line <= 1'b1;
    end else begin
      if (tx_push) begin
        tx_fifo[tx_wp] <= wdata[7:0];
        tx_wp <= tx_wp + 3'h1;
      end
      if (tx_pop) begin
        // frame = stop(1), data[7:0], start(0); shifted out LSB first
        tx_shift <= {1'b1, tx_fifo[tx_rp], 1'b0};
        tx_rp <= tx_rp + 3'h1;
        tx_active <= 1'b1;
        tx_bits <= 4'd10;
        tx_baud <= divisor;  // emit the start bit on the next cycle
      end
      tx_cnt <= tx_cnt + {3'h0, tx_push} - {3'h0, tx_pop};
      if (tx_active) begin
        if (tx_baud == divisor) begin
          tx_baud <= 16'h0;
          if (tx_bits == 4'd0) begin
            tx_active <= 1'b0;
            tx_line <= 1'b1;
          end else begin
            tx_line <= tx_shift[0];
            tx_shift <= {1'b1, tx_shift[9:1]};
            tx_bits <= tx_bits - 4'h1;
          end
        end else begin
          tx_baud <= tx_baud + 16'h1;
        end
      end
    end
  end

  // ---------------- RX ----------------
  wire rx_line = loopback ? tx_line : rx;

  reg [7:0] rx_fifo [0:7];
  reg [2:0] rx_rp;
  reg [2:0] rx_wp;
  reg [3:0] rx_cnt;
  reg [7:0] rx_shift;
  reg [3:0] rx_bits;
  reg [15:0] rx_baud;
  reg [1:0] rx_state;   // 0 idle, 1 start confirm, 2 data, 3 stop

  wire rx_sample = (rx_state == 2'd2) && (rx_baud == divisor);
  wire rx_byte_done = rx_sample && (rx_bits == 4'd7);
  wire [7:0] rx_byte = {rx_line, rx_shift[7:1]};
  wire rx_full = rx_cnt == 4'd8;
  wire rx_push = rx_byte_done && !rx_full;
  wire rx_avail = rx_cnt != 4'd0;
  wire rx_pop = sel && rd && (addr == 8'h0c) && rx_avail;

  always @(posedge clk) begin
    if (rst) begin
      rx_rp <= 3'h0;
      rx_wp <= 3'h0;
      rx_cnt <= 4'h0;
      rx_shift <= 8'h0;
      rx_bits <= 4'h0;
      rx_baud <= 16'h0;
      rx_state <= 2'd0;
      overrun <= 1'b0;
      divisor <= 16'd15;
      loopback <= 1'b0;
      irq_en_rx <= 1'b0;
      irq_en_tx <= 1'b0;
    end else begin
      case (rx_state)
        2'd0: begin
          if (rx_line == 1'b0) begin
            rx_state <= 2'd1;
            rx_baud <= 16'h0;
          end
        end
        2'd1: begin
          if (rx_baud == {1'b0, divisor[15:1]}) begin
            if (rx_line == 1'b0) begin
              rx_state <= 2'd2;
              rx_baud <= 16'h0;
              rx_bits <= 4'h0;
            end else begin
              rx_state <= 2'd0;  // glitch, not a real start bit
            end
          end else begin
            rx_baud <= rx_baud + 16'h1;
          end
        end
        2'd2: begin
          if (rx_baud == divisor) begin
            rx_baud <= 16'h0;
            rx_shift <= {rx_line, rx_shift[7:1]};
            if (rx_bits == 4'd7) begin
              rx_state <= 2'd3;
            end else begin
              rx_bits <= rx_bits + 4'h1;
            end
          end else begin
            rx_baud <= rx_baud + 16'h1;
          end
        end
        2'd3: begin
          if (rx_baud == divisor) begin
            rx_state <= 2'd0;
            rx_baud <= 16'h0;
          end else begin
            rx_baud <= rx_baud + 16'h1;
          end
        end
      endcase
      if (rx_push) begin
        rx_fifo[rx_wp] <= rx_byte;
        rx_wp <= rx_wp + 3'h1;
      end
      if (rx_byte_done && rx_full) begin
        overrun <= 1'b1;
      end
      if (rx_pop) begin
        rx_rp <= rx_rp + 3'h1;
      end
      rx_cnt <= rx_cnt + {3'h0, rx_push} - {3'h0, rx_pop};

      // bus writes
      if (sel && wr) begin
        case (addr)
          8'h00: begin
            divisor <= wdata[15:0];
            loopback <= wdata[16];
            irq_en_rx <= wdata[17];
            irq_en_tx <= wdata[18];
          end
          8'h04: overrun <= 1'b0;
        endcase
      end
    end
  end

  reg [31:0] rdata_mux;
  always @(*) begin
    case (addr)
      8'h00: rdata_mux = {13'h0, irq_en_tx, irq_en_rx, loopback, divisor};
      8'h04: rdata_mux = {20'h0, tx_cnt, rx_cnt, overrun, rx_avail,
                          tx_cnt == 4'd0, tx_full};
      8'h0c: rdata_mux = {24'h0, rx_fifo[rx_rp]};
      default: rdata_mux = 32'h0;
    endcase
  end
  assign rdata = rdata_mux;
  assign irq = (irq_en_rx && rx_avail) || (irq_en_tx && (tx_cnt == 4'd0));
  assign tx = tx_line;
endmodule
)";
}

PeripheralInfo UartPeripheral() {
  return PeripheralInfo{"hs_uart", "u_uart", UartVerilog(), 1, 1};
}

}  // namespace hardsnap::periph
