// Golden software models of the crypto peripherals.
//
// Used three ways: (1) unit tests compare the RTL cores against these,
// (2) the Verilog generators pull their constant tables from here so the
// hardware and the model can never disagree on a constant, and (3) the
// firmware-level examples check accelerator results against them.
//
// All tables are derived programmatically (AES S-box from GF(2^8)
// inversion + affine map; SHA-256 K/H from the fractional parts of cube/
// square roots of the first primes) rather than transcribed, eliminating
// typo risk.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hardsnap::periph::ref {

// --- AES-128 -----------------------------------------------------------------
const std::array<uint8_t, 256>& AesSbox();

// Expand a 16-byte key into 11 round keys (176 bytes).
std::array<uint8_t, 176> AesKeyExpand(const std::array<uint8_t, 16>& key);

// Encrypt one block. Byte order follows FIPS-197: in[i] is state column-
// major element r + 4c with r = i % 4, c = i / 4.
std::array<uint8_t, 16> Aes128Encrypt(const std::array<uint8_t, 16>& key,
                                      const std::array<uint8_t, 16>& pt);

// --- SHA-256 -----------------------------------------------------------------
const std::array<uint32_t, 64>& Sha256K();
const std::array<uint32_t, 8>& Sha256H0();

// Compress one 512-bit block (16 big-endian words) into `state`.
void Sha256Compress(std::array<uint32_t, 8>* state,
                    const std::array<uint32_t, 16>& block);

// Full hash of an arbitrary byte message (padding included).
std::array<uint32_t, 8> Sha256(const std::vector<uint8_t>& msg);

}  // namespace hardsnap::periph::ref
