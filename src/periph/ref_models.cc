#include "periph/ref_models.h"

#include <cmath>

namespace hardsnap::periph::ref {

namespace {

// GF(2^8) multiply, AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b).
uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = a & 0x80;
    a = static_cast<uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

uint8_t GfInverse(uint8_t x) {
  if (x == 0) return 0;
  // x^254 by square-and-multiply (Fermat in GF(2^8)).
  uint8_t result = 1, base = x;
  int e = 254;
  while (e) {
    if (e & 1) result = GfMul(result, base);
    base = GfMul(base, base);
    e >>= 1;
  }
  return result;
}

uint8_t RotL8(uint8_t v, int n) {
  return static_cast<uint8_t>((v << n) | (v >> (8 - n)));
}

uint32_t RotR32(uint32_t v, int n) { return (v >> n) | (v << (32 - n)); }

bool IsPrime(int n) {
  for (int d = 2; d * d <= n; ++d)
    if (n % d == 0) return false;
  return n >= 2;
}

}  // namespace

const std::array<uint8_t, 256>& AesSbox() {
  static const std::array<uint8_t, 256> table = [] {
    std::array<uint8_t, 256> t{};
    for (int x = 0; x < 256; ++x) {
      uint8_t b = GfInverse(static_cast<uint8_t>(x));
      t[x] = static_cast<uint8_t>(b ^ RotL8(b, 1) ^ RotL8(b, 2) ^
                                  RotL8(b, 3) ^ RotL8(b, 4) ^ 0x63);
    }
    return t;
  }();
  return table;
}

std::array<uint8_t, 176> AesKeyExpand(const std::array<uint8_t, 16>& key) {
  std::array<uint8_t, 176> w{};
  const auto& sbox = AesSbox();
  for (int i = 0; i < 16; ++i) w[i] = key[i];
  uint8_t rcon = 1;
  for (int i = 16; i < 176; i += 4) {
    uint8_t t[4] = {w[i - 4], w[i - 3], w[i - 2], w[i - 1]};
    if (i % 16 == 0) {
      // RotWord + SubWord + Rcon.
      uint8_t tmp = t[0];
      t[0] = static_cast<uint8_t>(sbox[t[1]] ^ rcon);
      t[1] = sbox[t[2]];
      t[2] = sbox[t[3]];
      t[3] = sbox[tmp];
      rcon = GfMul(rcon, 2);
    }
    for (int j = 0; j < 4; ++j) w[i + j] = static_cast<uint8_t>(w[i - 16 + j] ^ t[j]);
  }
  return w;
}

std::array<uint8_t, 16> Aes128Encrypt(const std::array<uint8_t, 16>& key,
                                      const std::array<uint8_t, 16>& pt) {
  const auto& sbox = AesSbox();
  const auto rk = AesKeyExpand(key);
  std::array<uint8_t, 16> s = pt;

  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) s[i] ^= rk[16 * round + i];
  };
  auto sub_bytes = [&] {
    for (auto& b : s) b = sbox[b];
  };
  auto shift_rows = [&] {
    std::array<uint8_t, 16> t = s;
    // state[r][c] = s[r + 4c]; row r rotates left by r columns.
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) t[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
    s = t;
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      uint8_t a0 = s[4 * c], a1 = s[4 * c + 1], a2 = s[4 * c + 2],
              a3 = s[4 * c + 3];
      s[4 * c + 0] = static_cast<uint8_t>(GfMul(a0, 2) ^ GfMul(a1, 3) ^ a2 ^ a3);
      s[4 * c + 1] = static_cast<uint8_t>(a0 ^ GfMul(a1, 2) ^ GfMul(a2, 3) ^ a3);
      s[4 * c + 2] = static_cast<uint8_t>(a0 ^ a1 ^ GfMul(a2, 2) ^ GfMul(a3, 3));
      s[4 * c + 3] = static_cast<uint8_t>(GfMul(a0, 3) ^ a1 ^ a2 ^ GfMul(a3, 2));
    }
  };

  add_round_key(0);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
  return s;
}

const std::array<uint32_t, 64>& Sha256K() {
  static const std::array<uint32_t, 64> table = [] {
    std::array<uint32_t, 64> t{};
    int count = 0;
    for (int n = 2; count < 64; ++n) {
      if (!IsPrime(n)) continue;
      const long double root = cbrtl(static_cast<long double>(n));
      const long double frac = root - floorl(root);
      t[count++] = static_cast<uint32_t>(frac * 4294967296.0L);
    }
    return t;
  }();
  return table;
}

const std::array<uint32_t, 8>& Sha256H0() {
  static const std::array<uint32_t, 8> table = [] {
    std::array<uint32_t, 8> t{};
    int count = 0;
    for (int n = 2; count < 8; ++n) {
      if (!IsPrime(n)) continue;
      const long double root = sqrtl(static_cast<long double>(n));
      const long double frac = root - floorl(root);
      t[count++] = static_cast<uint32_t>(frac * 4294967296.0L);
    }
    return t;
  }();
  return table;
}

void Sha256Compress(std::array<uint32_t, 8>* state,
                    const std::array<uint32_t, 16>& block) {
  const auto& k = Sha256K();
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = block[i];
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 =
        RotR32(w[i - 15], 7) ^ RotR32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 =
        RotR32(w[i - 2], 17) ^ RotR32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = (*state)[0], b = (*state)[1], c = (*state)[2], d = (*state)[3];
  uint32_t e = (*state)[4], f = (*state)[5], g = (*state)[6], h = (*state)[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t S1 = RotR32(e, 6) ^ RotR32(e, 11) ^ RotR32(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t t1 = h + S1 + ch + k[i] + w[i];
    const uint32_t S0 = RotR32(a, 2) ^ RotR32(a, 13) ^ RotR32(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t t2 = S0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  (*state)[0] += a; (*state)[1] += b; (*state)[2] += c; (*state)[3] += d;
  (*state)[4] += e; (*state)[5] += f; (*state)[6] += g; (*state)[7] += h;
}

std::array<uint32_t, 8> Sha256(const std::vector<uint8_t>& msg) {
  std::array<uint32_t, 8> state = Sha256H0();
  std::vector<uint8_t> padded = msg;
  const uint64_t bit_len = static_cast<uint64_t>(msg.size()) * 8;
  padded.push_back(0x80);
  while (padded.size() % 64 != 56) padded.push_back(0);
  for (int i = 7; i >= 0; --i)
    padded.push_back(static_cast<uint8_t>(bit_len >> (8 * i)));
  for (size_t off = 0; off < padded.size(); off += 64) {
    std::array<uint32_t, 16> block{};
    for (int i = 0; i < 16; ++i) {
      block[i] = (uint32_t{padded[off + 4 * i]} << 24) |
                 (uint32_t{padded[off + 4 * i + 1]} << 16) |
                 (uint32_t{padded[off + 4 * i + 2]} << 8) |
                 uint32_t{padded[off + 4 * i + 3]};
    }
    Sha256Compress(&state, block);
  }
  return state;
}

}  // namespace hardsnap::periph::ref
