#include "periph/periph.h"

namespace hardsnap::periph {

// Windowed watchdog timer: firmware must kick (write the magic word to
// KICK) no earlier than the window-open threshold and no later than the
// timeout; kicking too early or timing out raises the bark interrupt and
// latches a reset request. A classic safety peripheral whose *statefulness
// across inputs* is exactly what makes snapshot-free fuzzing unsound: one
// test case's missed kick trips the dog for every later test case.
//
// Register map:
//   0x00 CTRL    [0] enable [1] irq_en   (write)
//   0x04 TIMEOUT 32-bit countdown reload  (write)
//   0x08 WINDOW  count below which kicking is allowed (write)
//   0x0c KICK    write 0x5afe to service; anything else = bad kick
//   0x10 STATUS  [0] barked [1] reset_req [2] bad_kick; write clears
//   0x14 COUNT   current countdown (read-only)
std::string WatchdogVerilog() {
  return R"(
module hs_watchdog(
  input clk, input rst,
  input sel, input wr, input rd,
  input [7:0] addr, input [31:0] wdata,
  output [31:0] rdata, output irq
);
  reg enable;
  reg irq_en;
  reg barked;
  reg reset_req;
  reg bad_kick;
  reg [31:0] timeout;
  reg [31:0] count;
  reg [31:0] window;

  wire kick_write = sel && wr && (addr == 8'h0c);
  wire kick_good = kick_write && (wdata == 32'h00005afe) && (count < window);
  wire kick_bad = kick_write && ((wdata != 32'h00005afe) || (count >= window));

  always @(posedge clk) begin
    if (rst) begin
      enable <= 1'b0;
      irq_en <= 1'b0;
      barked <= 1'b0;
      reset_req <= 1'b0;
      bad_kick <= 1'b0;
      timeout <= 32'hffffffff;
      count <= 32'hffffffff;
      window <= 32'h0;
    end else begin
      if (enable) begin
        if (count == 32'h0) begin
          barked <= 1'b1;
          reset_req <= 1'b1;
          count <= timeout;
        end else begin
          count <= count - 32'h1;
        end
      end
      if (kick_good) begin
        count <= timeout;
      end
      if (kick_bad) begin
        bad_kick <= 1'b1;
        barked <= 1'b1;
      end
      if (sel && wr) begin
        case (addr)
          8'h00: begin
            enable <= wdata[0];
            irq_en <= wdata[1];
          end
          8'h04: begin
            timeout <= wdata;
            count <= wdata;
          end
          8'h08: window <= wdata;
          8'h10: begin
            barked <= 1'b0;
            reset_req <= 1'b0;
            bad_kick <= 1'b0;
          end
        endcase
      end
    end
  end

  reg [31:0] rdata_mux;
  always @(*) begin
    case (addr)
      8'h00: rdata_mux = {30'h0, irq_en, enable};
      8'h04: rdata_mux = timeout;
      8'h08: rdata_mux = window;
      8'h10: rdata_mux = {29'h0, bad_kick, reset_req, barked};
      8'h14: rdata_mux = count;
      default: rdata_mux = 32'h0;
    endcase
  end
  assign rdata = rdata_mux;
  assign irq = barked && irq_en;
endmodule
)";
}

PeripheralInfo WatchdogPeripheral() {
  return PeripheralInfo{"hs_watchdog", "u_wdog", WatchdogVerilog(), 4, 4};
}

}  // namespace hardsnap::periph
