#include <cstdio>
#include <string>

#include "periph/periph.h"
#include "periph/ref_models.h"

namespace hardsnap::periph {

namespace {

std::string Hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "32'h%08x", v);
  return buf;
}

// ror(x, n) for a 32-bit signal name.
std::string Ror(const std::string& x, int n) {
  return "{" + x + "[" + std::to_string(n - 1) + ":0], " + x + "[31:" +
         std::to_string(n) + "]}";
}

}  // namespace

// SHA-256 accelerator, one compression round per cycle (the classic
// open-core microarchitecture: 8 working registers, a 16-word sliding
// message-schedule window, a round counter indexing the K ROM).
//
// Usage: write CTRL.init to load the initial hash value, write the 16
// message words (big-endian, pre-padded by software), write CTRL.start;
// 64 cycles later STATUS.done rises (and irq if enabled) and the running
// digest H has absorbed the block. Multi-block messages repeat without
// re-init. The K table and H0 constants are generated from the same
// functions the golden model uses.
std::string Sha256Verilog() {
  const auto& K = ref::Sha256K();
  const auto& H0 = ref::Sha256H0();

  std::string src;
  src += R"(
module hs_sha256(
  input clk, input rst,
  input sel, input wr, input rd,
  input [7:0] addr, input [31:0] wdata,
  output [31:0] rdata, output irq
);
  reg busy;
  reg done;
  reg irq_en;
  reg [5:0] round;
)";
  // Digest registers h0..h7 and working registers wa..wh.
  for (int i = 0; i < 8; ++i)
    src += "  reg [31:0] h" + std::to_string(i) + ";\n";
  for (char c = 'a'; c <= 'h'; ++c)
    src += std::string("  reg [31:0] w") + c + ";\n";
  // Message schedule window.
  for (int i = 0; i < 16; ++i)
    src += "  reg [31:0] m" + std::to_string(i) + ";\n";

  // K ROM as a combinational case on the round counter.
  src += "\n  reg [31:0] k_val;\n  always @(*) begin\n    case (round)\n";
  for (int i = 0; i < 64; ++i)
    src += "      6'd" + std::to_string(i) + ": k_val = " + Hex32(K[i]) +
           ";\n";
  src += "      default: k_val = 32'h0;\n    endcase\n  end\n";

  // Round datapath.
  src += "\n  wire [31:0] big_s1 = " + Ror("we", 6) + " ^ " + Ror("we", 11) +
         " ^ " + Ror("we", 25) + ";\n";
  src += "  wire [31:0] ch_efg = (we & wf) ^ (~we & wg);\n";
  src += "  wire [31:0] t1 = wh + big_s1 + ch_efg + k_val + m0;\n";
  src += "  wire [31:0] big_s0 = " + Ror("wa", 2) + " ^ " + Ror("wa", 13) +
         " ^ " + Ror("wa", 22) + ";\n";
  src += "  wire [31:0] maj_abc = (wa & wb) ^ (wa & wc) ^ (wb & wc);\n";
  src += "  wire [31:0] t2 = big_s0 + maj_abc;\n";
  src += "  wire [31:0] sig0 = " + Ror("m1", 7) + " ^ " + Ror("m1", 18) +
         " ^ (m1 >> 3);\n";
  src += "  wire [31:0] sig1 = " + Ror("m14", 17) + " ^ " + Ror("m14", 19) +
         " ^ (m14 >> 10);\n";
  src += "  wire [31:0] m_next = m0 + sig0 + m9 + sig1;\n";

  src += R"(
  always @(posedge clk) begin
    if (rst) begin
      busy <= 1'b0;
      done <= 1'b0;
      irq_en <= 1'b0;
      round <= 6'h0;
    end else begin
      if (busy) begin
        wh <= wg;
        wg <= wf;
        wf <= we;
        we <= wd + t1;
        wd <= wc;
        wc <= wb;
        wb <= wa;
        wa <= t1 + t2;
)";
  for (int i = 0; i < 15; ++i)
    src += "        m" + std::to_string(i) + " <= m" + std::to_string(i + 1) +
           ";\n";
  src += "        m15 <= m_next;\n";
  src += R"(
        if (round == 6'd63) begin
          busy <= 1'b0;
          done <= 1'b1;
          h0 <= h0 + (t1 + t2);
          h1 <= h1 + wa;
          h2 <= h2 + wb;
          h3 <= h3 + wc;
          h4 <= h4 + (wd + t1);
          h5 <= h5 + we;
          h6 <= h6 + wf;
          h7 <= h7 + wg;
        end else begin
          round <= round + 6'h1;
        end
      end
      if (sel && wr) begin
        case (addr)
          8'h00: begin
            irq_en <= wdata[1];
            if (wdata[2]) begin
)";
  for (int i = 0; i < 8; ++i)
    src += "              h" + std::to_string(i) + " <= " + Hex32(H0[i]) +
           ";\n";
  src += R"(
              done <= 1'b0;
            end
            if (wdata[0] && !busy) begin
              busy <= 1'b1;
              done <= 1'b0;
              round <= 6'h0;
              wa <= h0;
              wb <= h1;
              wc <= h2;
              wd <= h3;
              we <= h4;
              wf <= h5;
              wg <= h6;
              wh <= h7;
            end
          end
          8'h04: done <= 1'b0;
)";
  for (int i = 0; i < 16; ++i) {
    char addr_hex[8];
    std::snprintf(addr_hex, sizeof addr_hex, "8'h%02x", 0x40 + 4 * i);
    src += "          " + std::string(addr_hex) + ": m" + std::to_string(i) +
           " <= wdata;\n";
  }
  src += R"(
        endcase
      end
    end
  end

  reg [31:0] rdata_mux;
  always @(*) begin
    case (addr)
      8'h00: rdata_mux = {30'h0, irq_en, 1'b0};
      8'h04: rdata_mux = {30'h0, done, busy};
)";
  for (int i = 0; i < 8; ++i) {
    char addr_hex[8];
    std::snprintf(addr_hex, sizeof addr_hex, "8'h%02x", 0x80 + 4 * i);
    src += "      " + std::string(addr_hex) + ": rdata_mux = h" +
           std::to_string(i) + ";\n";
  }
  src += R"(
      default: rdata_mux = 32'h0;
    endcase
  end
  assign rdata = rdata_mux;
  assign irq = done && irq_en;
endmodule
)";
  return src;
}

PeripheralInfo Sha256Peripheral() {
  return PeripheralInfo{"hs_sha256", "u_sha", Sha256Verilog(), 3, 3};
}

}  // namespace hardsnap::periph
