#include "periph/periph.h"

namespace hardsnap::periph {

// Programmable down-counter: VALUE decrements once per prescaler rollover;
// on reaching 1 it raises `expired` (sticky until STATUS write) and either
// reloads from LOAD (auto-reload mode) or stops. The smallest corpus
// member — the paper's "simple peripheral" data point.
std::string TimerVerilog() {
  return R"(
module hs_timer(
  input clk, input rst,
  input sel, input wr, input rd,
  input [7:0] addr, input [31:0] wdata,
  output [31:0] rdata, output irq
);
  reg enable;
  reg irq_en;
  reg auto_reload;
  reg expired;
  reg [31:0] load_val;
  reg [31:0] value;
  reg [15:0] prescale;
  reg [15:0] prescale_cnt;

  wire tick_now = enable && (prescale_cnt == prescale);

  always @(posedge clk) begin
    if (rst) begin
      enable <= 1'b0;
      irq_en <= 1'b0;
      auto_reload <= 1'b0;
      expired <= 1'b0;
      load_val <= 32'h0;
      value <= 32'h0;
      prescale <= 16'h0;
      prescale_cnt <= 16'h0;
    end else begin
      if (enable) begin
        if (tick_now) begin
          prescale_cnt <= 16'h0;
          if (value <= 32'h1) begin
            expired <= 1'b1;
            if (auto_reload) begin
              value <= load_val;
            end else begin
              value <= 32'h0;
              enable <= 1'b0;
            end
          end else begin
            value <= value - 32'h1;
          end
        end else begin
          prescale_cnt <= prescale_cnt + 16'h1;
        end
      end
      // Bus writes win over the counting datapath (declared later in the
      // block, so these non-blocking assignments take priority).
      if (sel && wr) begin
        case (addr)
          8'h00: begin
            enable <= wdata[0];
            irq_en <= wdata[1];
            auto_reload <= wdata[2];
          end
          8'h04: begin
            load_val <= wdata;
            value <= wdata;
            prescale_cnt <= 16'h0;
          end
          8'h08: prescale <= wdata[15:0];
          8'h0c: expired <= 1'b0;
        endcase
      end
    end
  end

  reg [31:0] rdata_mux;
  always @(*) begin
    case (addr)
      8'h00: rdata_mux = {29'h0, auto_reload, irq_en, enable};
      8'h04: rdata_mux = load_val;
      8'h08: rdata_mux = {16'h0, prescale};
      8'h0c: rdata_mux = {31'h0, expired};
      8'h10: rdata_mux = value;
      default: rdata_mux = 32'h0;
    endcase
  end
  assign rdata = rdata_mux;
  assign irq = expired && irq_en;
endmodule
)";
}

PeripheralInfo TimerPeripheral() {
  return PeripheralInfo{"hs_timer", "u_timer", TimerVerilog(), 0, 0};
}

}  // namespace hardsnap::periph
