#include <cstdio>
#include <string>

#include "periph/periph.h"

namespace hardsnap::periph {

std::vector<PeripheralInfo> DefaultCorpus() {
  return {TimerPeripheral(), UartPeripheral(), Aes128Peripheral(),
          Sha256Peripheral()};
}

std::vector<PeripheralInfo> ExtendedCorpus() {
  auto corpus = DefaultCorpus();
  corpus.push_back(WatchdogPeripheral());
  return corpus;
}

// Generate the flat SoC: one shared register bus, address decoded by
// addr[15:8] (region index), per-peripheral irq lines collected into a
// vector. UART serial pins are looped to the SoC boundary when present.
std::string BuildSoc(const std::vector<PeripheralInfo>& peripherals) {
  const size_t n = peripherals.size();
  std::string src;
  for (const auto& p : peripherals) src += p.verilog + "\n";

  unsigned max_irq = 0;
  for (const auto& p : peripherals)
    if (p.irq_line > max_irq) max_irq = p.irq_line;
  const unsigned irq_width = max_irq + 1;

  bool has_uart = false;
  for (const auto& p : peripherals)
    if (p.name == "hs_uart") has_uart = true;

  src += "module soc(\n"
         "  input clk, input rst,\n"
         "  input sel, input wr, input rd,\n"
         "  input [15:0] addr, input [31:0] wdata,\n"
         "  output [31:0] rdata,\n"
         "  output [" + std::to_string(irq_width - 1) + ":0] irq";
  if (has_uart) src += ",\n  input uart_rx, output uart_tx";
  src += "\n);\n";

  for (size_t i = 0; i < n; ++i) {
    const auto& p = peripherals[i];
    const std::string idx = std::to_string(i);
    src += "  wire sel_" + idx + " = sel && (addr[15:8] == 8'd" +
           std::to_string(p.region) + ");\n";
    src += "  wire [31:0] rdata_" + idx + ";\n";
    src += "  wire irq_" + idx + ";\n";
    src += "  " + p.name + " " + p.instance + " (.clk(clk), .rst(rst), " +
           ".sel(sel_" + idx + "), .wr(wr), .rd(rd), .addr(addr[7:0]), " +
           ".wdata(wdata), .rdata(rdata_" + idx + "), .irq(irq_" + idx + ")";
    if (p.name == "hs_uart") src += ", .rx(uart_rx), .tx(uart_tx)";
    src += ");\n";
  }

  // Read-data mux: the selected peripheral's readback, else zero.
  src += "  assign rdata = ";
  for (size_t i = 0; i < n; ++i)
    src += "sel_" + std::to_string(i) + " ? rdata_" + std::to_string(i) +
           " : ";
  src += "32'h0;\n";

  // IRQ vector: OR of one-hot terms per peripheral.
  const std::string w = std::to_string(irq_width);
  src += "  assign irq = " + w + "'h0";
  for (size_t i = 0; i < n; ++i) {
    char mask[32];
    std::snprintf(mask, sizeof mask, "%s'h%x", w.c_str(),
                  1u << peripherals[i].irq_line);
    src += " | (irq_" + std::to_string(i) + " ? " + mask + " : " + w +
           "'h0)";
  }
  src += ";\n";
  src += "endmodule\n";
  return src;
}

}  // namespace hardsnap::periph
