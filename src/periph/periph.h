// Peripheral corpus (paper Sec. V: "a corpus of 4 synthetic real world and
// open-source peripherals ... common on embedded systems and [with]
// different design complexities").
//
// Every peripheral is authored in the HardSnap Verilog subset and exposes
// the same simple synchronous register bus, which the bus layer adapts to
// AXI4-Lite:
//
//   input  clk, rst
//   input  sel            address decode hit (owned by the interconnect)
//   input  wr             write strobe   (sel && wr: commit wdata at edge)
//   input  rd             read strobe    (sel && rd: read side effects,
//                                         e.g. FIFO pop, commit at edge)
//   input  [7:0]  addr    byte offset within the peripheral's 256 B region
//   input  [31:0] wdata
//   output [31:0] rdata   combinational readback
//   output irq            level interrupt
//
// The corpus, in increasing state size:
//   hs_timer   down-counter with prescaler and auto-reload   (~100 bits)
//   hs_uart    8N1 serial port, 8-deep TX/RX FIFOs, loopback (~300 bits)
//   hs_aes128  byte-serial AES-128 encryption accelerator    (~700 bits)
//   hs_sha256  SHA-256 accelerator, 1 round/cycle            (~1400 bits)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hardsnap::periph {

// Verilog source of each core (top module name matches the function name).
std::string TimerVerilog();     // module hs_timer
std::string UartVerilog();      // module hs_uart
std::string Sha256Verilog();    // module hs_sha256
std::string Aes128Verilog();    // module hs_aes128
std::string WatchdogVerilog();  // module hs_watchdog (extension IP)

struct PeripheralInfo {
  std::string name;        // module name, e.g. "hs_timer"
  std::string instance;    // instance name in the SoC, e.g. "u_timer"
  std::string verilog;     // module source
  uint32_t region = 0;     // SoC address region index (addr[15:8])
  unsigned irq_line = 0;   // bit index in the SoC irq vector
};

PeripheralInfo TimerPeripheral();
PeripheralInfo UartPeripheral();
PeripheralInfo Sha256Peripheral();
PeripheralInfo Aes128Peripheral();
PeripheralInfo WatchdogPeripheral();  // region 4, irq line 4

// All four, with their default regions (timer=0, uart=1, aes=2, sha=3).
std::vector<PeripheralInfo> DefaultCorpus();

// The four defaults plus the windowed watchdog (region 4).
std::vector<PeripheralInfo> ExtendedCorpus();

// Generate a single flat SoC wrapping the given peripherals behind an
// address decoder:
//   module soc(input clk, input rst, input sel, input wr, input rd,
//              input [15:0] addr, input [31:0] wdata,
//              output [31:0] rdata, output [NIRQ-1:0] irq);
// Region i (addr[15:8] == region) routes to peripheral i. The returned
// string contains all module sources plus the generated top.
std::string BuildSoc(const std::vector<PeripheralInfo>& peripherals);

// --- register maps ----------------------------------------------------------
namespace timer_regs {
inline constexpr uint32_t kCtrl = 0x00;    // [0] enable [1] irq_en [2] reload
inline constexpr uint32_t kLoad = 0x04;    // write: load value + reset count
inline constexpr uint32_t kPrescale = 0x08;
inline constexpr uint32_t kStatus = 0x0c;  // [0] expired; write to clear
inline constexpr uint32_t kValue = 0x10;   // current count (read-only)
}  // namespace timer_regs

namespace uart_regs {
inline constexpr uint32_t kCtrl = 0x00;    // [15:0] divisor [16] loopback
                                           // [17] irq_en_rx [18] irq_en_tx
inline constexpr uint32_t kStatus = 0x04;  // [0] tx_full [1] tx_empty
                                           // [2] rx_avail [3] overrun
                                           // [7:4] rx_cnt [11:8] tx_cnt
inline constexpr uint32_t kTx = 0x08;      // write: push TX FIFO
inline constexpr uint32_t kRx = 0x0c;      // read: pop RX FIFO
}  // namespace uart_regs

namespace aes_regs {
inline constexpr uint32_t kCtrl = 0x00;    // [0] start [1] irq_en
inline constexpr uint32_t kStatus = 0x04;  // [0] busy [1] done; write clears
inline constexpr uint32_t kKey0 = 0x10;    // key words, big-endian word 0..3
inline constexpr uint32_t kIn0 = 0x20;     // plaintext words
inline constexpr uint32_t kOut0 = 0x30;    // ciphertext words (read-only)
}  // namespace aes_regs

namespace sha_regs {
inline constexpr uint32_t kCtrl = 0x00;    // [0] start [1] irq_en [2] init
inline constexpr uint32_t kStatus = 0x04;  // [0] busy [1] done; write clears
inline constexpr uint32_t kWord0 = 0x40;   // 16 message words 0x40..0x7c
inline constexpr uint32_t kDigest0 = 0x80; // 8 digest words (read-only)
}  // namespace sha_regs

namespace wdog_regs {
inline constexpr uint32_t kCtrl = 0x00;     // [0] enable [1] irq_en
inline constexpr uint32_t kTimeout = 0x04;  // countdown reload
inline constexpr uint32_t kWindow = 0x08;   // kick allowed when count < window
inline constexpr uint32_t kKick = 0x0c;     // write 0x5afe inside the window
inline constexpr uint32_t kStatus = 0x10;   // [0] barked [1] reset_req
                                            // [2] bad_kick; write clears
inline constexpr uint32_t kCount = 0x14;    // read-only
inline constexpr uint32_t kKickMagic = 0x5afe;
}  // namespace wdog_regs

}  // namespace hardsnap::periph
