// Optional target capability: incremental (delta) snapshots.
//
// A delta-capable target tracks which chunks of its architectural state
// changed since its last *sync point* and can ship / accept just those
// chunks (sim::StateDelta) instead of the full state. The symbolic
// executor and the fuzzer discover the capability via dynamic_cast (same
// pattern as SlotSnapshotter) and fall back to full SaveState/RestoreState
// when it is absent or when no usable base exists.
//
// Sync-point contract (mirrors sim::Simulator's): SaveStateDelta and
// RestoreStateDelta each end at a sync point, and the FULL SaveState /
// RestoreState calls are sync points too — so callers may mix full and
// delta operations freely as long as every delta they pass in is expressed
// against the state of the immediately preceding sync point. Device-slot
// restores and hardware resets move the live state without going through
// this interface; after those, callers must re-establish a base with a
// full operation (implementations invalidate their tracking as needed and
// may degrade SaveStateDelta to a full-payload delta).
#pragma once

#include "common/status.h"
#include "sim/delta.h"

namespace hardsnap::bus {

class DeltaSnapshotter {
 public:
  virtual ~DeltaSnapshotter() = default;

  // Capture the chunks changed since the last sync point as a delta
  // against that point's state; establishes a new sync point. Charges the
  // mechanism's incremental cost (pre-dump of dirty pages, bulk transfer
  // of the payload) to the virtual clock.
  virtual Result<sim::StateDelta> SaveStateDelta() = 0;

  // Restore the state `delta` away from the last sync point (an empty
  // delta reverts to the sync point itself); establishes a new sync point
  // at the restored state.
  virtual Status RestoreStateDelta(const sim::StateDelta& delta) = 0;
};

}  // namespace hardsnap::bus
