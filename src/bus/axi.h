// AXI4-Lite support (paper Sec. III-A: "We provide support for the
// AXI4-Lite bus interface", Sec. IV-A: the remote interface interconnects
// "a simulated memory bus (i.e., AXI, Wishbone)").
//
// Two pieces:
//  * AxiLiteBridgeVerilog() — an RTL bridge module exposing a full
//    AXI4-Lite slave port (5 channels, valid/ready handshakes) and driving
//    the simple synchronous register bus the peripherals speak. Generated
//    as Verilog so it is itself simulated, instrumented and snapshotted
//    like any other hardware (its in-flight transaction state rides the
//    scan chain).
//  * AxiLiteDriver — a C++ bus master performing handshake-accurate
//    transactions against the bridge's pins on a Simulator: address and
//    data phases may be accepted in either order, responses are awaited
//    with valid/ready semantics, and the driver checks BRESP/RRESP.
//
// WrapSocWithAxi() packages a peripheral SoC behind the bridge, giving a
// design whose only ingress is genuine AXI4-Lite.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "periph/periph.h"
#include "sim/simulator.h"

namespace hardsnap::bus {

// The bridge module source ("hs_axil_bridge"). Ports:
//   AXI4-Lite slave: awvalid/awready/awaddr[15:0], wvalid/wready/wdata[31:0],
//                    bvalid/bready/bresp[1:0], arvalid/arready/araddr[15:0],
//                    rvalid/rready/rdata[31:0]/rresp[1:0]
//   register bus master: m_sel/m_wr/m_rd/m_addr[15:0]/m_wdata -> m_rdata
std::string AxiLiteBridgeVerilog();

// A top module "axi_soc" = hs_axil_bridge + the given peripherals' SoC.
std::string WrapSocWithAxi(const std::vector<periph::PeripheralInfo>& p);

// Wishbone B4 classic bridge ("hs_wb_bridge"): cyc/stb/we/adr/dat_w ->
// ack/dat_r, mapped onto the same register bus. WrapSocWithWishbone()
// packages a SoC behind it (top module "wb_soc").
std::string WishboneBridgeVerilog();
std::string WrapSocWithWishbone(const std::vector<periph::PeripheralInfo>& p);

// Handshake-accurate Wishbone classic master.
class WishboneDriver {
 public:
  explicit WishboneDriver(sim::Simulator* sim);
  Status Write32(uint32_t addr, uint32_t value);
  Result<uint32_t> Read32(uint32_t addr);

 private:
  sim::Simulator* sim_;
};

class AxiLiteDriver {
 public:
  // `sim` must execute a design with the bridge's AXI pins at top level.
  explicit AxiLiteDriver(sim::Simulator* sim);

  // One complete AXI4-Lite write transaction (address+data+response).
  Status Write32(uint32_t addr, uint32_t value);

  // One complete read transaction. Checks RRESP == OKAY.
  Result<uint32_t> Read32(uint32_t addr);

  // Cycles consumed by the last transaction (protocol latency).
  unsigned last_latency_cycles() const { return last_latency_; }

 private:
  Status WaitHigh(const char* signal, unsigned max_cycles);

  sim::Simulator* sim_;
  unsigned last_latency_ = 0;
};

}  // namespace hardsnap::bus
