// Record-and-replay target wrapper — the baseline the paper's introduction
// rules out: "One obvious solution ... would be a record-and-replay
// approach, however, it is extremely slow and error-prone as the number of
// interactions to replay may be considerable. Talebi et al. report 8800
// I/O operations just for the initialization of the camera driver in the
// Nexus 5X."
//
// RecordingTarget wraps any HardwareTarget and logs every MMIO transaction
// and Run() span. A "snapshot" under record-replay is just a log position
// (free to take); a "restore" is a full device reboot followed by
// re-issuing every logged interaction up to that position — paying the
// forwarding latency for each one again. bench_replay compares this against
// real state snapshots as the interaction count grows.
#pragma once

#include <cstdint>
#include <vector>

#include "bus/target.h"
#include "common/status.h"

namespace hardsnap::bus {

struct IoRecord {
  enum class Kind : uint8_t { kRead, kWrite, kRun } kind;
  uint32_t addr = 0;
  uint32_t value = 0;     // written value, or the value a read returned
  uint64_t cycles = 0;    // kRun
};

class RecordingTarget : public HardwareTarget {
 public:
  explicit RecordingTarget(HardwareTarget* inner) : inner_(inner) {}

  TargetKind kind() const override { return inner_->kind(); }
  const std::string& name() const override { return name_; }

  Result<uint32_t> Read32(uint32_t addr) override {
    auto v = inner_->Read32(addr);
    if (v.ok())
      log_.push_back(IoRecord{IoRecord::Kind::kRead, addr, v.value(), 0});
    return v;
  }
  Status Write32(uint32_t addr, uint32_t value) override {
    HS_RETURN_IF_ERROR(inner_->Write32(addr, value));
    log_.push_back(IoRecord{IoRecord::Kind::kWrite, addr, value, 0});
    return Status::Ok();
  }
  Status Run(uint64_t cycles) override {
    HS_RETURN_IF_ERROR(inner_->Run(cycles));
    if (!log_.empty() && log_.back().kind == IoRecord::Kind::kRun) {
      log_.back().cycles += cycles;  // coalesce adjacent run spans
    } else {
      log_.push_back(IoRecord{IoRecord::Kind::kRun, 0, 0, cycles});
    }
    return Status::Ok();
  }
  uint32_t IrqVector() override { return inner_->IrqVector(); }
  Status ResetHardware() override {
    log_.clear();
    return inner_->ResetHardware();
  }
  Result<sim::HardwareState> SaveState() override {
    return inner_->SaveState();
  }
  Status RestoreState(const sim::HardwareState& state) override {
    return inner_->RestoreState(state);
  }
  Result<uint64_t> StateHash() override { return inner_->StateHash(); }
  const VirtualClock& clock() const override { return inner_->clock(); }
  const TargetStats& stats() const override { return inner_->stats(); }

  // --- record/replay API --------------------------------------------------
  // A replay checkpoint: the current log position.
  size_t Mark() const { return log_.size(); }
  const std::vector<IoRecord>& log() const { return log_; }

  // Reboot the device and re-issue the first `mark` interactions. Detects
  // divergence: if a replayed read returns a different value than it did
  // during recording, the replay is inconsistent (the error-prone part the
  // paper warns about) and an error names the offending interaction.
  Status ReplayTo(size_t mark);

 private:
  std::string name_ = "record-replay";
  HardwareTarget* inner_;
  std::vector<IoRecord> log_;
};

}  // namespace hardsnap::bus
