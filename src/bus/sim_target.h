// SimulatorTarget: the paper's Verilator-style software simulation target.
//
// Full visibility and controllability (Peek/Poke of any signal, VCD
// tracing), reached over a shared-memory channel. Snapshots use the
// CRIU process-checkpoint model: freeze the simulator process, flush
// pending I/O, dump the whole process image to storage. That makes the
// snapshot cost LARGE but essentially independent of the design size —
// the opposite trade-off of the FPGA scan chain, which is exactly the
// comparison experiment E1 reproduces.
#pragma once

#include <memory>
#include <string>

#include "bus/channel.h"
#include "bus/delta_support.h"
#include "bus/link.h"
#include "bus/soc_driver.h"
#include "bus/target.h"
#include "common/status.h"
#include "rtl/ir.h"

namespace hardsnap::bus {

struct SimulatorTargetOptions {
  // Effective simulated-clock rate of the HDL simulator (virtual hardware
  // cycles per second of virtual time). Real Verilator-class simulators
  // reach a few MHz on peripheral-sized designs.
  double sim_clock_hz = 2e6;

  // CRIU process-checkpoint cost model: freeze + dump of the whole
  // simulator process. Dominated by the resident image, not the design.
  Duration criu_base = Duration::Millis(60);
  double criu_bytes_per_sec = 400e6;   // page dump bandwidth
  uint64_t process_image_bytes = 24ull << 20;  // simulator RSS baseline

  // Incremental checkpoint (CRIU pre-dump of dirty pages): the freeze is
  // short because only soft-dirty pages are walked, and the dump moves
  // only the delta payload.
  Duration criu_incremental_base = Duration::Millis(8);

  ChannelModel channel = SharedMemoryChannel();

  // Framed-transport configuration (fault injection, retry policy,
  // health monitor). Defaults to a clean link, where the framing layer
  // charges exactly the same virtual time as the raw channel.
  LinkConfig link;
};

class SimulatorTarget : public HardwareTarget, public DeltaSnapshotter {
 public:
  static Result<std::unique_ptr<SimulatorTarget>> Create(
      const rtl::Design& soc_design, SimulatorTargetOptions options = {});

  TargetKind kind() const override { return TargetKind::kSimulator; }
  const std::string& name() const override { return name_; }

  Result<uint32_t> Read32(uint32_t addr) override;
  Status Write32(uint32_t addr, uint32_t value) override;
  Status Run(uint64_t cycles) override;
  uint32_t IrqVector() override { return driver_->IrqVector(); }
  Status ResetHardware() override;

  Result<sim::HardwareState> SaveState() override;
  Status RestoreState(const sim::HardwareState& state) override;
  Result<uint64_t> StateHash() override;

  // DeltaSnapshotter: incremental CRIU (soft-dirty pre-dump). The
  // simulator's own chunk tracker supplies the dirty set, so capture cost
  // is O(dirty chunks) on the host and the modeled checkpoint moves only
  // the delta payload.
  Result<sim::StateDelta> SaveStateDelta() override;
  Status RestoreStateDelta(const sim::StateDelta& delta) override;

  bool responsive() const override { return link_.alive(); }

  const VirtualClock& clock() const override { return clock_; }
  const TargetStats& stats() const override { return stats_; }

  // Full-visibility extras (unique to this target; the paper's motivation
  // for transferring state FPGA -> simulator to obtain traces).
  sim::Simulator* simulator() { return sim_.get(); }
  const SimulatorTargetOptions& options() const { return options_; }
  FramedLink* link() { return &link_; }

  // Modeled duration of one CRIU checkpoint or restore.
  Duration CriuCost() const;
  // Modeled duration of one incremental checkpoint moving `payload_bytes`.
  Duration CriuDeltaCost(size_t payload_bytes) const;

 private:
  SimulatorTarget(std::unique_ptr<sim::Simulator> sim,
                  SimulatorTargetOptions options);

  // Copies the link's counters into stats_ so TargetStats is always a
  // complete picture of this target.
  void SyncLinkStats() { stats_.link = link_.stats(); }

  std::string name_ = "simulator";
  SimulatorTargetOptions options_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<SocBusDriver> driver_;
  FramedLink link_;
  VirtualClock clock_;
  TargetStats stats_;
};

}  // namespace hardsnap::bus
