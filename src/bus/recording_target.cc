#include "bus/recording_target.h"

namespace hardsnap::bus {

Status RecordingTarget::ReplayTo(size_t mark) {
  if (mark > log_.size()) return OutOfRange("replay mark beyond log");
  // Move the log aside: re-issued operations must not re-record.
  std::vector<IoRecord> log = std::move(log_);
  log_.clear();
  HS_RETURN_IF_ERROR(inner_->ResetHardware());
  for (size_t i = 0; i < mark; ++i) {
    const IoRecord& rec = log[i];
    switch (rec.kind) {
      case IoRecord::Kind::kWrite:
        HS_RETURN_IF_ERROR(inner_->Write32(rec.addr, rec.value));
        break;
      case IoRecord::Kind::kRead: {
        auto v = inner_->Read32(rec.addr);
        if (!v.ok()) return v.status();
        if (v.value() != rec.value) {
          log_ = std::move(log);  // keep the log for diagnosis
          return FailedPrecondition(
              "replay diverged at interaction " + std::to_string(i) +
              ": read of 0x" + std::to_string(rec.addr) + " returned " +
              std::to_string(v.value()) + ", recorded " +
              std::to_string(rec.value));
        }
        break;
      }
      case IoRecord::Kind::kRun:
        HS_RETURN_IF_ERROR(inner_->Run(rec.cycles));
        break;
    }
  }
  log.resize(mark);
  log_ = std::move(log);
  return Status::Ok();
}

}  // namespace hardsnap::bus
