// SocBusDriver: drives the generated SoC's register-bus pins on a
// Simulator. Shared by both hardware targets (the simulator target uses it
// directly; the emulated FPGA target uses it as its AXI master model).
//
// Protocol (see periph/periph.h): a transaction asserts sel with wr or rd
// for exactly one clock cycle; read data is combinational while sel && rd
// is high and read side effects (FIFO pops) commit on the edge.
#pragma once

#include "common/status.h"
#include "sim/simulator.h"

namespace hardsnap::bus {

class SocBusDriver {
 public:
  // The simulator must be executing a design with the SoC pinout
  // (sel/wr/rd/addr/wdata/rdata/irq).
  explicit SocBusDriver(sim::Simulator* sim);

  // One write transaction (1 cycle).
  Status Write32(uint32_t addr, uint32_t value);

  // One read transaction (1 cycle, side effects included).
  Result<uint32_t> Read32(uint32_t addr);

  // Current interrupt vector (side-band, no bus cycle).
  uint32_t IrqVector() const;

  sim::Simulator* simulator() { return sim_; }

 private:
  sim::Simulator* sim_;
  rtl::SignalId sel_, wr_, rd_, addr_, wdata_, rdata_, irq_;
};

}  // namespace hardsnap::bus
