#include "bus/sim_target.h"

namespace hardsnap::bus {

const char* TargetKindName(TargetKind kind) {
  switch (kind) {
    case TargetKind::kSimulator: return "simulator";
    case TargetKind::kFpga: return "fpga";
  }
  return "?";
}

SimulatorTarget::SimulatorTarget(std::unique_ptr<sim::Simulator> sim,
                                 SimulatorTargetOptions options)
    : options_(options), sim_(std::move(sim)) {
  driver_ = std::make_unique<SocBusDriver>(sim_.get());
}

Result<std::unique_ptr<SimulatorTarget>> SimulatorTarget::Create(
    const rtl::Design& soc_design, SimulatorTargetOptions options) {
  auto sim = sim::Simulator::Create(soc_design);
  if (!sim.ok()) return sim.status();
  auto target = std::unique_ptr<SimulatorTarget>(new SimulatorTarget(
      std::make_unique<sim::Simulator>(std::move(sim).value()), options));
  // Idle serial lines if present.
  if (soc_design.FindSignal("uart_rx") != rtl::kInvalidId) {
    HS_RETURN_IF_ERROR(target->sim_->PokeInput("uart_rx", 1));
  }
  return target;
}

Duration SimulatorTarget::CriuCost() const {
  const double seconds = static_cast<double>(options_.process_image_bytes) /
                         options_.criu_bytes_per_sec;
  return options_.criu_base + Duration::Seconds(seconds);
}

Duration SimulatorTarget::CriuDeltaCost(size_t payload_bytes) const {
  const double seconds =
      static_cast<double>(payload_bytes) / options_.criu_bytes_per_sec;
  return options_.criu_incremental_base + Duration::Seconds(seconds);
}

Result<uint32_t> SimulatorTarget::Read32(uint32_t addr) {
  auto v = driver_->Read32(addr);
  if (!v.ok()) return v.status();
  ++stats_.mmio_reads;
  const Duration cost =
      options_.channel.per_transaction + PeriodOfHz(options_.sim_clock_hz);
  clock_.Advance(cost);
  stats_.io_time += cost;
  return v;
}

Status SimulatorTarget::Write32(uint32_t addr, uint32_t value) {
  HS_RETURN_IF_ERROR(driver_->Write32(addr, value));
  ++stats_.mmio_writes;
  const Duration cost =
      options_.channel.per_transaction + PeriodOfHz(options_.sim_clock_hz);
  clock_.Advance(cost);
  stats_.io_time += cost;
  return Status::Ok();
}

Status SimulatorTarget::Run(uint64_t cycles) {
  sim_->Tick(static_cast<unsigned>(cycles));
  stats_.cycles_run += cycles;
  const Duration cost =
      PeriodOfHz(options_.sim_clock_hz) * static_cast<int64_t>(cycles);
  clock_.Advance(cost);
  stats_.run_time += cost;
  return Status::Ok();
}

Status SimulatorTarget::ResetHardware() {
  HS_RETURN_IF_ERROR(sim_->Reset());
  // A reboot of the simulated SoC still runs at simulation speed; charge a
  // couple of cycles (the expensive "reboot" in the naive-and-consistent
  // flow is re-running firmware init, which the VM accounts separately).
  clock_.Advance(PeriodOfHz(options_.sim_clock_hz) * 2);
  return Status::Ok();
}

Result<sim::HardwareState> SimulatorTarget::SaveState() {
  // CRIU flow: flush pending I/O (bus is idle between transactions by
  // construction), freeze, dump. The returned architectural state is what
  // other targets can consume; the full process image is modeled by cost.
  ++stats_.snapshots_saved;
  const Duration cost = CriuCost();
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  sim::HardwareState st = sim_->DumpState();
  stats_.snapshot_bytes_copied += sim::StateWords(st) * 8;
  // A full checkpoint is a sync point for the delta tracker: the caller
  // now holds exactly this state as a base for future deltas.
  sim_->MarkSynced();
  return st;
}

Status SimulatorTarget::RestoreState(const sim::HardwareState& state) {
  HS_RETURN_IF_ERROR(sim_->RestoreState(state));  // sync point
  ++stats_.snapshots_restored;
  stats_.snapshot_bytes_copied += sim::StateWords(state) * 8;
  const Duration cost = CriuCost();
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return Status::Ok();
}

Result<uint64_t> SimulatorTarget::StateHash() {
  // Device-local integrity probe: the simulator process hashes its own
  // architectural state. No checkpoint happens, so no CRIU cost.
  return sim::HashState(sim_->DumpState());
}

Result<sim::StateDelta> SimulatorTarget::SaveStateDelta() {
  sim::StateDelta delta = sim_->CaptureDelta();
  ++stats_.snapshots_saved;
  stats_.snapshot_bytes_copied += delta.PayloadBytes();
  const Duration cost = CriuDeltaCost(delta.PayloadBytes());
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return delta;
}

Status SimulatorTarget::RestoreStateDelta(const sim::StateDelta& delta) {
  HS_RETURN_IF_ERROR(sim_->RestoreDelta(delta));
  ++stats_.snapshots_restored;
  stats_.snapshot_bytes_copied += delta.PayloadBytes();
  const Duration cost = CriuDeltaCost(delta.PayloadBytes());
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  return Status::Ok();
}

}  // namespace hardsnap::bus
