#include "bus/sim_target.h"

namespace hardsnap::bus {

const char* TargetKindName(TargetKind kind) {
  switch (kind) {
    case TargetKind::kSimulator: return "simulator";
    case TargetKind::kFpga: return "fpga";
  }
  return "?";
}

SimulatorTarget::SimulatorTarget(std::unique_ptr<sim::Simulator> sim,
                                 SimulatorTargetOptions options)
    : options_(options),
      sim_(std::move(sim)),
      link_(options.channel, options.link) {
  driver_ = std::make_unique<SocBusDriver>(sim_.get());
}

Result<std::unique_ptr<SimulatorTarget>> SimulatorTarget::Create(
    const rtl::Design& soc_design, SimulatorTargetOptions options) {
  auto sim = sim::Simulator::Create(soc_design);
  if (!sim.ok()) return sim.status();
  auto target = std::unique_ptr<SimulatorTarget>(new SimulatorTarget(
      std::make_unique<sim::Simulator>(std::move(sim).value()), options));
  // Idle serial lines if present.
  if (soc_design.FindSignal("uart_rx") != rtl::kInvalidId) {
    HS_RETURN_IF_ERROR(target->sim_->PokeInput("uart_rx", 1));
  }
  return target;
}

Duration SimulatorTarget::CriuCost() const {
  const double seconds = static_cast<double>(options_.process_image_bytes) /
                         options_.criu_bytes_per_sec;
  return options_.criu_base + Duration::Seconds(seconds);
}

Duration SimulatorTarget::CriuDeltaCost(size_t payload_bytes) const {
  const double seconds =
      static_cast<double>(payload_bytes) / options_.criu_bytes_per_sec;
  return options_.criu_incremental_base + Duration::Seconds(seconds);
}

Result<uint32_t> SimulatorTarget::Read32(uint32_t addr) {
  // The link charges the shared-memory round trip (per attempt, if faults
  // force retries); the simulated bus cycle is charged only once the
  // transaction actually reaches the device.
  Duration link_cost;
  auto v = link_.Read(
      addr, [&] { return driver_->Read32(addr); }, &link_cost);
  clock_.Advance(link_cost);
  stats_.io_time += link_cost;
  SyncLinkStats();
  if (!v.ok()) return v.status();
  ++stats_.mmio_reads;
  const Duration dev = PeriodOfHz(options_.sim_clock_hz);
  clock_.Advance(dev);
  stats_.io_time += dev;
  return v;
}

Status SimulatorTarget::Write32(uint32_t addr, uint32_t value) {
  Duration link_cost;
  Status s = link_.Write(
      addr, value, [&] { return driver_->Write32(addr, value); }, &link_cost);
  clock_.Advance(link_cost);
  stats_.io_time += link_cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  ++stats_.mmio_writes;
  const Duration dev = PeriodOfHz(options_.sim_clock_hz);
  clock_.Advance(dev);
  stats_.io_time += dev;
  return Status::Ok();
}

Status SimulatorTarget::Run(uint64_t cycles) {
  // The run command crosses the link too (a dead target cannot be told to
  // run), but its clean cost is purely the simulation time — command
  // latency is hidden behind the multi-cycle execution.
  const Duration run_cost =
      PeriodOfHz(options_.sim_clock_hz) * static_cast<int64_t>(cycles);
  Duration cost;
  Status s = link_.Bulk(
      run_cost,
      [&] {
        sim_->Tick(static_cast<unsigned>(cycles));
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  stats_.run_time += cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  stats_.cycles_run += cycles;
  return Status::Ok();
}

Status SimulatorTarget::ResetHardware() {
  // A reboot of the simulated SoC still runs at simulation speed; charge a
  // couple of cycles (the expensive "reboot" in the naive-and-consistent
  // flow is re-running firmware init, which the VM accounts separately).
  Duration cost;
  Status s = link_.Bulk(
      PeriodOfHz(options_.sim_clock_hz) * 2, [&] { return sim_->Reset(); },
      &cost);
  clock_.Advance(cost);
  SyncLinkStats();
  return s;
}

Result<sim::HardwareState> SimulatorTarget::SaveState() {
  // CRIU flow: flush pending I/O (bus is idle between transactions by
  // construction), freeze, dump. The returned architectural state is what
  // other targets can consume; the full process image is modeled by cost.
  // The checkpoint command + image hand-off crosses the link as one bulk
  // retry unit with the CRIU duration as its clean cost.
  sim::HardwareState st;
  Duration cost;
  Status s = link_.Bulk(
      CriuCost(),
      [&] {
        st = sim_->DumpState();
        // A full checkpoint is a sync point for the delta tracker: the
        // caller now holds exactly this state as a base for future deltas.
        sim_->MarkSynced();
        return Status::Ok();
      },
      &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  if (!s.ok()) return s;
  ++stats_.snapshots_saved;
  stats_.snapshot_bytes_copied += sim::StateWords(st) * 8;
  return st;
}

Status SimulatorTarget::RestoreState(const sim::HardwareState& state) {
  Duration cost;
  Status s = link_.Bulk(
      CriuCost(), [&] { return sim_->RestoreState(state); },  // sync point
      &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  ++stats_.snapshots_restored;
  stats_.snapshot_bytes_copied += sim::StateWords(state) * 8;
  return Status::Ok();
}

Result<uint64_t> SimulatorTarget::StateHash() {
  // Device-local integrity probe: the simulator process hashes its own
  // architectural state. No checkpoint happens, so no CRIU cost.
  return sim::HashState(sim_->DumpState());
}

Result<sim::StateDelta> SimulatorTarget::SaveStateDelta() {
  // The capture (and its sync point) commits device-side before the image
  // crosses the link; a failed hand-off models "device checkpointed but
  // the host lost the reply". RestoreDelta's base-hash check catches any
  // staleness that results, and callers fall back to a full restore.
  sim::StateDelta delta = sim_->CaptureDelta();
  Duration cost;
  Status s = link_.Bulk(CriuDeltaCost(delta.PayloadBytes()),
                        [] { return Status::Ok(); }, &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  if (!s.ok()) return s;
  ++stats_.snapshots_saved;
  stats_.snapshot_bytes_copied += delta.PayloadBytes();
  return delta;
}

Status SimulatorTarget::RestoreStateDelta(const sim::StateDelta& delta) {
  Duration cost;
  Status s = link_.Bulk(CriuDeltaCost(delta.PayloadBytes()),
                        [&] { return sim_->RestoreDelta(delta); }, &cost);
  clock_.Advance(cost);
  stats_.snapshot_time += cost;
  SyncLinkStats();
  HS_RETURN_IF_ERROR(s);
  ++stats_.snapshots_restored;
  stats_.snapshot_bytes_copied += delta.PayloadBytes();
  return Status::Ok();
}

}  // namespace hardsnap::bus
