#include "bus/link.h"

#include <string>

#include "common/crc32.h"
#include "common/serde.h"

namespace hardsnap::bus {

LinkStats& LinkStats::operator+=(const LinkStats& o) {
  frames_sent += o.frames_sent;
  retransmits += o.retransmits;
  drops += o.drops;
  corruptions += o.corruptions;
  crc_rejects += o.crc_rejects;
  stalls += o.stalls;
  outages += o.outages;
  dedup_hits += o.dedup_hits;
  deadline_breaches += o.deadline_breaches;
  failed_ops += o.failed_ops;
  return *this;
}

std::vector<uint8_t> Frame::Encode() const {
  ByteWriter w;
  w.PutU8(kind);
  w.PutU32(seq);
  w.PutU32(addr);
  w.PutU32(value);
  w.PutU32(Crc32(w.bytes().data(), w.bytes().size()));
  return w.Take();
}

Result<Frame> Frame::Decode(const std::vector<uint8_t>& bytes) {
  if (bytes.size() != kWireBytes)
    return DataLoss("frame: expected " + std::to_string(kWireBytes) +
                    " bytes, got " + std::to_string(bytes.size()));
  const uint32_t computed = Crc32(bytes.data(), kWireBytes - 4);
  ByteReader r(bytes);
  Frame f;
  HS_ASSIGN_OR_RETURN(f.kind, r.GetU8());
  HS_ASSIGN_OR_RETURN(f.seq, r.GetU32());
  HS_ASSIGN_OR_RETURN(f.addr, r.GetU32());
  HS_ASSIGN_OR_RETURN(f.value, r.GetU32());
  HS_ASSIGN_OR_RETURN(const uint32_t stored, r.GetU32());
  if (stored != computed) return DataLoss("frame: CRC mismatch");
  return f;
}

FramedLink::FramedLink(ChannelModel channel, LinkConfig config)
    : channel_(std::move(channel)),
      config_(config),
      rng_(config.faults.seed) {}

Result<uint32_t> FramedLink::Read(uint32_t addr, const ReadFn& device,
                                  Duration* cost) {
  uint32_t value = 0;
  Frame req;
  req.kind = Frame::kRead;
  req.addr = addr;
  Status s = Transact(
      req, channel_.per_transaction,
      [&]() -> Status {
        auto r = device();
        if (!r.ok()) return r.status();
        value = r.value();
        return Status::Ok();
      },
      cost);
  if (!s.ok()) return s;
  return value;
}

Status FramedLink::Write(uint32_t addr, uint32_t value, const OpFn& device,
                         Duration* cost) {
  Frame req;
  req.kind = Frame::kWrite;
  req.addr = addr;
  req.value = value;
  return Transact(req, channel_.per_transaction, device, cost);
}

Status FramedLink::Command(unsigned transactions, const OpFn& device,
                           Duration* cost) {
  Frame req;
  req.kind = Frame::kCommand;
  return Transact(req, channel_.CostOf(transactions ? transactions : 1),
                  device, cost);
}

Status FramedLink::Bulk(Duration clean_cost, const OpFn& device,
                        Duration* cost) {
  Frame req;
  req.kind = Frame::kCommand;
  return Transact(req, clean_cost, device, cost);
}

Duration FramedLink::Backoff(uint32_t attempt) {
  const RetryPolicy& p = config_.retry;
  Duration d = p.backoff_base;
  for (uint32_t i = 2; i < attempt && d < p.backoff_cap; ++i)
    d = d * p.backoff_factor;
  if (d > p.backoff_cap) d = p.backoff_cap;
  if (p.jitter > 0) {
    const double u =
        static_cast<double>(rng_.Next() >> 11) * (1.0 / 9007199254740992.0);
    d += Duration::Picos(static_cast<int64_t>(
        static_cast<double>(d.picos()) * p.jitter * u));
  }
  return d;
}

bool FramedLink::DeliverFrame(const Frame& frame, Duration* total) {
  ++stats_.frames_sent;
  std::vector<uint8_t> bytes = frame.Encode();
  const FaultProfile& f = config_.faults;
  if (outage_remaining_ > 0) {
    --outage_remaining_;
    ++stats_.drops;
    return false;
  }
  if (f.enabled()) {
    if (f.outage_rate > 0 && rng_.Chance(f.outage_rate)) {
      ++stats_.outages;
      ++stats_.drops;
      // This frame is the first casualty of the episode.
      outage_remaining_ = f.outage_frames > 0 ? f.outage_frames - 1 : 0;
      return false;
    }
    if (f.stall_rate > 0 && rng_.Chance(f.stall_rate)) {
      ++stats_.stalls;
      *total += f.stall;
    }
    if (f.drop_rate > 0 && rng_.Chance(f.drop_rate)) {
      ++stats_.drops;
      return false;
    }
    if (f.corrupt_rate > 0 && rng_.Chance(f.corrupt_rate)) {
      ++stats_.corruptions;
      const uint64_t bit = rng_.Below(bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<uint8_t>(uint8_t{1} << (bit % 8));
    }
  }
  auto decoded = Frame::Decode(bytes);
  if (!decoded.ok()) {
    // Receiver's CRC check rejected the frame; to the sender this looks
    // like a lost frame (no ACK) and triggers a retransmit.
    ++stats_.crc_rejects;
    return false;
  }
  return true;
}

Status FramedLink::Transact(Frame request, Duration clean_cost,
                            const OpFn& device, Duration* cost) {
  Duration total;
  const auto finish = [&](Status s) {
    if (cost) *cost = total;
    return s;
  };
  if (dead_)
    return finish(Unavailable("link " + channel_.name + " is down"));
  request.seq = ++seq_;
  bool executed = false;
  Status device_status = Status::Ok();
  Status fail;
  for (uint32_t attempt = 1; attempt <= config_.retry.max_attempts;
       ++attempt) {
    if (attempt > 1) {
      total += Backoff(attempt);
      ++stats_.retransmits;
    }
    total += clean_cost;
    // The deadline bounds the OVERHEAD an operation accumulates — stalls
    // and backoffs — not the payload transfers themselves: a retransmit
    // legitimately re-pays clean_cost (a 60 ms snapshot re-ship is still a
    // 60 ms transfer), so each attempt extends the budget by one payload.
    // A clean-link op therefore never breaches, and a retried bulk op only
    // fails when retries stop being useful (max_attempts) or latency
    // spikes eat the deadline.
    const Duration budget =
        clean_cost * static_cast<int64_t>(attempt) + config_.retry.deadline;
    const bool req_delivered = DeliverFrame(request, &total);
    if (total > budget) {
      ++stats_.deadline_breaches;
      fail = DeadlineExceeded("link " + channel_.name + ": seq " +
                              std::to_string(request.seq) +
                              " blew its deadline (attempt " +
                              std::to_string(attempt) + ")");
      break;
    }
    if (!req_delivered) continue;
    if (!executed) {
      device_status = device();
      executed = true;
    } else {
      // Retransmit of an already-executed request: the device replays its
      // cached reply for this sequence number instead of re-running the
      // operation (idempotency — a duplicated write must not apply twice).
      ++stats_.dedup_hits;
    }
    Frame reply;
    reply.kind = device_status.ok() ? Frame::kReplyOk : Frame::kReplyErr;
    reply.seq = request.seq;
    const bool reply_delivered = DeliverFrame(reply, &total);
    if (total > budget) {
      ++stats_.deadline_breaches;
      fail = DeadlineExceeded("link " + channel_.name + ": seq " +
                              std::to_string(request.seq) +
                              " blew its deadline (attempt " +
                              std::to_string(attempt) + ")");
      break;
    }
    if (!reply_delivered) continue;
    // Reply received. A device error in a well-formed reply is permanent
    // for this request — the link did its job; retrying is pointless.
    consecutive_failures_ = 0;
    return finish(device_status);
  }
  if (fail.ok())
    fail = Unavailable("link " + channel_.name + ": seq " +
                       std::to_string(request.seq) + " failed after " +
                       std::to_string(config_.retry.max_attempts) +
                       " attempts");
  ++stats_.failed_ops;
  if (++consecutive_failures_ >= config_.dead_after) dead_ = true;
  return finish(fail);
}

}  // namespace hardsnap::bus
