// I/O forwarding channel models.
//
// The paper's VM reaches hardware through different transports with very
// different per-transaction latencies, and measures them (evaluation RQ1:
// "we complete the performance evaluation by measuring the I/O forwarding
// latency"):
//   * the simulator target is reached through shared memory on the host;
//   * the FPGA target is reached through Inception's USB 3.0 low-latency
//     debugger (modified to emit AXI transactions directly);
//   * the classic hardware-in-the-loop baseline (Avatar/Inception) goes
//     through a JTAG debugger, orders of magnitude slower.
//
// A ChannelModel charges virtual time per MMIO transaction; targets fold
// it into their clocks so experiment E2 can regenerate the latency table.
#pragma once

#include <string>

#include "common/virtual_clock.h"

namespace hardsnap::bus {

struct ChannelModel {
  std::string name;
  Duration per_transaction;  // one 32-bit read or write, round trip

  Duration CostOf(unsigned transactions) const {
    return per_transaction * transactions;
  }
};

// Same-host shared memory ring between the VM and the simulator process.
inline ChannelModel SharedMemoryChannel() {
  return {"shared-memory", Duration::Nanos(250)};
}

// USB 3.0 low-latency debugger bridging to the FPGA's AXI fabric.
inline ChannelModel Usb3Channel() {
  return {"usb3-debugger", Duration::Micros(4)};
}

// JTAG debugger baseline (hardware-in-the-loop tools such as Avatar).
inline ChannelModel JtagChannel() {
  return {"jtag-debugger", Duration::Millis(1)};
}

}  // namespace hardsnap::bus
