// Framed, fault-tolerant host<->target transport (paper Sec. III-B).
//
// channel.h models a link as a pure per-transaction cost — perfect wires.
// Real debugger links (USB3 bridge, JTAG probe) drop frames, flip bits,
// stall, and occasionally go away entirely; a production campaign that
// runs unattended for days must survive all of that. This layer adds:
//
//   * FaultProfile — a deterministic, seeded fault injector: drops,
//     bit-flips (caught by CRC32), latency stalls, and multi-frame link
//     outages. Disabled by default; the injector's Rng stream is derived
//     from its own seed and NEVER shared with analysis streams, so faults
//     do not perturb mutation/search decisions (retry determinism).
//   * Frame — the wire format: kind | seq | addr | value | crc32
//     (17 bytes). CRC32 rejects every single-bit flip; the sequence
//     number makes retransmits idempotent (a re-executed read is
//     replayed from cache, a duplicate write is deduplicated).
//   * RetryPolicy — bounded retries with exponential backoff + jitter
//     and a per-operation virtual-time deadline on the accumulated
//     OVERHEAD (stalls, backoffs). Payload time is excluded: every
//     attempt's budget is `attempts_so_far * clean_cost + deadline`, so
//     an operation that would succeed on a perfect link never breaches
//     and bulk transfers stay retryable however large their payload.
//   * FramedLink — the transactor. Transient transport failures (drop,
//     CRC reject, outage) are retried; permanent errors arrive in a
//     well-formed reply from the device and are returned without retry
//     (see IsTransientFailure in common/status.h). A health monitor
//     counts consecutive failed operations and declares the link dead
//     after LinkConfig::dead_after of them — the orchestrator's failover
//     trigger.
//
// On a clean link the modeled cost of every operation is IDENTICAL to
// the unframed driver (MMIO: one channel transaction; bulk: the caller's
// precomputed cost), so E1/E2/E6 tables are unchanged. What framing adds
// on a clean link is host work (encode + CRC + decode), measured by
// bench_fault_tolerance (E11).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bus/channel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/virtual_clock.h"

namespace hardsnap::bus {

// Deterministic fault injector configuration. All rates are per-frame
// probabilities in [0, 1]; with every rate zero the injector is skipped
// entirely (no Rng draws), keeping the clean path byte-for-byte
// deterministic with pre-fault builds.
struct FaultProfile {
  double drop_rate = 0.0;     // frame vanishes in transit
  double corrupt_rate = 0.0;  // one random bit flips (CRC catches it)
  double stall_rate = 0.0;    // latency spike of `stall` before delivery
  Duration stall = Duration::Micros(500);
  double outage_rate = 0.0;   // link goes down for `outage_frames` frames
  uint32_t outage_frames = 16;
  uint64_t seed = 0x4c494e4bull;  // dedicated stream, never the analysis rng

  bool enabled() const {
    return drop_rate > 0 || corrupt_rate > 0 || stall_rate > 0 ||
           outage_rate > 0;
  }
};

// Bounded-retry policy. Backoff for attempt k (k >= 2) is
//   min(cap, base * factor^(k-2)) * (1 + jitter * U[0,1))
// with U drawn from the link's dedicated Rng stream.
struct RetryPolicy {
  uint32_t max_attempts = 8;
  // Virtual-time overhead (stalls + backoffs) an operation may accumulate
  // before it fails with kDeadlineExceeded. Payload transfers don't count
  // against it: every attempt re-pays the clean transfer cost, so slow
  // bulk operations (snapshot ships) remain retryable and a clean-link
  // operation can never breach.
  Duration deadline = Duration::Millis(4);
  Duration backoff_base = Duration::Micros(1);
  uint32_t backoff_factor = 2;
  Duration backoff_cap = Duration::Millis(1);
  double jitter = 0.5;
};

struct LinkConfig {
  FaultProfile faults;
  RetryPolicy retry;
  // Consecutive failed operations (retries exhausted or deadline blown)
  // after which the health monitor declares the target dead.
  uint32_t dead_after = 3;
};

struct LinkStats {
  uint64_t frames_sent = 0;       // every transmission attempt, both ways
  uint64_t retransmits = 0;       // attempts beyond the first
  uint64_t drops = 0;             // frames lost in transit
  uint64_t corruptions = 0;       // bit-flips injected
  uint64_t crc_rejects = 0;       // corrupt frames caught by CRC32
  uint64_t stalls = 0;            // latency spikes injected
  uint64_t outages = 0;           // link-down episodes entered
  uint64_t dedup_hits = 0;        // retransmits absorbed by seq dedup
  uint64_t deadline_breaches = 0; // operations that blew their deadline
  uint64_t failed_ops = 0;        // operations that gave up entirely

  LinkStats& operator+=(const LinkStats& o);
};

// Wire frame: kind(1) | seq(4) | addr(4) | value(4) | crc32(4) = 17 bytes.
struct Frame {
  enum Kind : uint8_t {
    kRead = 1,
    kWrite = 2,
    kCommand = 3,   // non-MMIO request (scan pass, slot op, bulk header)
    kReplyOk = 4,
    kReplyErr = 5,
  };

  uint8_t kind = 0;
  uint32_t seq = 0;
  uint32_t addr = 0;
  uint32_t value = 0;

  static constexpr size_t kWireBytes = 17;

  std::vector<uint8_t> Encode() const;
  // kDataLoss on CRC mismatch, kOutOfRange on short frame.
  static Result<Frame> Decode(const std::vector<uint8_t>& bytes);
};

// The transactor. Concrete targets own one and route every host<->target
// operation through it, supplying the device-side behaviour as a
// callback; the link decides whether/when that callback runs (at most
// once per sequence number) and how much virtual time the exchange
// costs, including retries.
class FramedLink {
 public:
  using ReadFn = std::function<Result<uint32_t>()>;
  using OpFn = std::function<Status()>;

  FramedLink(ChannelModel channel, LinkConfig config);

  // One framed 32-bit read / write. Clean cost: channel.per_transaction.
  Result<uint32_t> Read(uint32_t addr, const ReadFn& device, Duration* cost);
  Status Write(uint32_t addr, uint32_t value, const OpFn& device,
               Duration* cost);

  // A non-MMIO command exchange of `transactions` channel round trips
  // (scan passes use 2). Clean cost: channel.CostOf(transactions).
  Status Command(unsigned transactions, const OpFn& device, Duration* cost);

  // A bulk payload transfer whose clean-link cost the caller computed
  // (snapshot blob, slot download, delta chunks). The whole payload is
  // one retry unit: a corrupt/dropped transfer is re-sent in full.
  Status Bulk(Duration clean_cost, const OpFn& device, Duration* cost);

  // Health monitor: false once dead_after consecutive operations failed.
  // A dead link fails every subsequent operation with kUnavailable
  // without touching the device — the failover trigger.
  bool alive() const { return !dead_; }

  // Test hook: hard-kill the link (models the debugger cable going away).
  void Sever() { dead_ = true; }

  const ChannelModel& channel() const { return channel_; }
  const LinkConfig& config() const { return config_; }
  const LinkStats& stats() const { return stats_; }

 private:
  // Shared transact loop. `device` runs at most once; its Status (and the
  // read value via `read_out`) is cached across retransmits.
  Status Transact(Frame request, Duration clean_cost, const OpFn& device,
                  Duration* cost);

  Duration Backoff(uint32_t attempt);
  // Rolls the fault dice for one frame hop. Returns false if the frame
  // was lost (drop / outage / CRC reject) and must be retransmitted.
  bool DeliverFrame(const Frame& frame, Duration* total);

  ChannelModel channel_;
  LinkConfig config_;
  Rng rng_;
  LinkStats stats_;
  uint32_t seq_ = 0;
  uint32_t outage_remaining_ = 0;
  uint32_t consecutive_failures_ = 0;
  bool dead_ = false;
};

}  // namespace hardsnap::bus
