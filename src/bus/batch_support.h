// Optional target capability: batched MMIO execution.
//
// A remote target pays a real network round trip per operation; an
// in-process target pays nanoseconds. Batching closes the gap: a client
// hands the target a whole vector of MMIO operations (reads, writes, run
// steps) and gets every read value back in one exchange. Targets that can
// execute a batch as a unit (remote::RemoteTarget ships it as one RPC)
// implement this interface; callers discover it via dynamic_cast — the
// same pattern as DeltaSnapshotter / SlotSnapshotter — and fall back to
// per-operation calls when it is absent.
#pragma once

#include <cstdint>
#include <vector>

#include "bus/target.h"
#include "common/status.h"

namespace hardsnap::bus {

// One element of a batch. 13 bytes on the remote wire.
struct MmioOp {
  enum Kind : uint8_t {
    kRead = 1,   // addr used; produces one read value
    kWrite = 2,  // addr + value (low 32 bits)
    kRun = 3,    // value = cycles
  };

  uint8_t kind = kRead;
  uint32_t addr = 0;
  uint64_t value = 0;

  static MmioOp Read(uint32_t addr) { return {kRead, addr, 0}; }
  static MmioOp Write(uint32_t addr, uint32_t value) {
    return {kWrite, addr, value};
  }
  static MmioOp Run(uint64_t cycles) { return {kRun, 0, cycles}; }

  bool operator==(const MmioOp&) const = default;
};

class MmioBatcher {
 public:
  virtual ~MmioBatcher() = default;

  // Executes `ops` in order as one unit and returns the values produced
  // by the kRead ops, in op order. The first failing op aborts the batch
  // and its status is returned; ops after it do not run, and read values
  // collected before it are discarded.
  virtual Result<std::vector<uint32_t>> ExecuteMmio(
      const std::vector<MmioOp>& ops) = 0;
};

// Reference execution of a batch against any target, one call per op —
// the server's device-side interpreter and the baseline the batching
// benchmark compares against.
inline Result<std::vector<uint32_t>> ExecuteMmioOps(
    HardwareTarget* target, const std::vector<MmioOp>& ops) {
  std::vector<uint32_t> reads;
  for (const MmioOp& op : ops) {
    switch (op.kind) {
      case MmioOp::kRead: {
        auto v = target->Read32(op.addr);
        if (!v.ok()) return v.status();
        reads.push_back(v.value());
        break;
      }
      case MmioOp::kWrite:
        HS_RETURN_IF_ERROR(
            target->Write32(op.addr, static_cast<uint32_t>(op.value)));
        break;
      case MmioOp::kRun:
        HS_RETURN_IF_ERROR(target->Run(op.value));
        break;
      default:
        return InvalidArgument("unknown MmioOp kind " +
                               std::to_string(op.kind));
    }
  }
  return reads;
}

}  // namespace hardsnap::bus
