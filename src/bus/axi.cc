#include "bus/axi.h"

namespace hardsnap::bus {

std::string AxiLiteBridgeVerilog() {
  return R"(
module hs_axil_bridge(
  input clk, input rst,
  // write address channel
  input awvalid, output awready, input [15:0] awaddr,
  // write data channel
  input wvalid, output wready, input [31:0] wdata,
  // write response channel
  output bvalid, input bready, output [1:0] bresp,
  // read address channel
  input arvalid, output arready, input [15:0] araddr,
  // read data channel
  output rvalid, input rready, output [31:0] rdata, output [1:0] rresp,
  // register-bus master
  output m_sel, output m_wr, output m_rd,
  output [15:0] m_addr, output [31:0] m_wdata, input [31:0] m_rdata
);
  reg aw_got;
  reg [15:0] aw_addr_r;
  reg w_got;
  reg [31:0] w_data_r;
  reg b_pending;
  reg ar_got;
  reg [15:0] ar_addr_r;
  reg r_pending;
  reg [31:0] r_data_r;

  // Address and data phases are accepted independently and in any order,
  // as AXI4-Lite requires; a new phase is not accepted while a response
  // is still outstanding.
  assign awready = !aw_got && !b_pending;
  assign wready = !w_got && !b_pending;
  assign arready = !ar_got && !r_pending;

  wire do_write = aw_got && w_got && !b_pending;
  wire do_read = ar_got && !r_pending && !do_write;

  assign m_sel = do_write || do_read;
  assign m_wr = do_write;
  assign m_rd = do_read;
  assign m_addr = do_write ? aw_addr_r : ar_addr_r;
  assign m_wdata = w_data_r;

  always @(posedge clk) begin
    if (rst) begin
      aw_got <= 1'b0;
      aw_addr_r <= 16'h0;
      w_got <= 1'b0;
      w_data_r <= 32'h0;
      b_pending <= 1'b0;
      ar_got <= 1'b0;
      ar_addr_r <= 16'h0;
      r_pending <= 1'b0;
      r_data_r <= 32'h0;
    end else begin
      if (awvalid && awready) begin
        aw_got <= 1'b1;
        aw_addr_r <= awaddr;
      end
      if (wvalid && wready) begin
        w_got <= 1'b1;
        w_data_r <= wdata;
      end
      if (do_write) begin
        aw_got <= 1'b0;
        w_got <= 1'b0;
        b_pending <= 1'b1;
      end
      if (bvalid && bready) begin
        b_pending <= 1'b0;
      end
      if (arvalid && arready) begin
        ar_got <= 1'b1;
        ar_addr_r <= araddr;
      end
      if (do_read) begin
        ar_got <= 1'b0;
        r_pending <= 1'b1;
        r_data_r <= m_rdata;
      end
      if (rvalid && rready) begin
        r_pending <= 1'b0;
      end
    end
  end

  assign bvalid = b_pending;
  assign bresp = 2'b00;
  assign rvalid = r_pending;
  assign rdata = r_data_r;
  assign rresp = 2'b00;
endmodule
)";
}

std::string WrapSocWithAxi(const std::vector<periph::PeripheralInfo>& p) {
  std::string src = periph::BuildSoc(p);
  src += AxiLiteBridgeVerilog();

  unsigned max_irq = 0;
  for (const auto& info : p)
    if (info.irq_line > max_irq) max_irq = info.irq_line;
  const std::string irq_w = std::to_string(max_irq);
  bool has_uart = false;
  for (const auto& info : p)
    if (info.name == "hs_uart") has_uart = true;

  src += "module axi_soc(\n"
         "  input clk, input rst,\n"
         "  input awvalid, output awready, input [15:0] awaddr,\n"
         "  input wvalid, output wready, input [31:0] wdata,\n"
         "  output bvalid, input bready, output [1:0] bresp,\n"
         "  input arvalid, output arready, input [15:0] araddr,\n"
         "  output rvalid, input rready, output [31:0] rdata, "
         "output [1:0] rresp,\n"
         "  output [" + irq_w + ":0] irq";
  if (has_uart) src += ",\n  input uart_rx, output uart_tx";
  src += "\n);\n";
  src += "  wire m_sel, m_wr, m_rd;\n"
         "  wire [15:0] m_addr;\n"
         "  wire [31:0] m_wdata, m_rdata;\n";
  src += "  hs_axil_bridge u_bridge (.clk(clk), .rst(rst),\n"
         "    .awvalid(awvalid), .awready(awready), .awaddr(awaddr),\n"
         "    .wvalid(wvalid), .wready(wready), .wdata(wdata),\n"
         "    .bvalid(bvalid), .bready(bready), .bresp(bresp),\n"
         "    .arvalid(arvalid), .arready(arready), .araddr(araddr),\n"
         "    .rvalid(rvalid), .rready(rready), .rdata(rdata), .rresp(rresp),\n"
         "    .m_sel(m_sel), .m_wr(m_wr), .m_rd(m_rd), .m_addr(m_addr),\n"
         "    .m_wdata(m_wdata), .m_rdata(m_rdata));\n";
  src += "  soc u_soc (.clk(clk), .rst(rst), .sel(m_sel), .wr(m_wr), "
         ".rd(m_rd), .addr(m_addr), .wdata(m_wdata), .rdata(m_rdata), "
         ".irq(irq)";
  if (has_uart) src += ", .uart_rx(uart_rx), .uart_tx(uart_tx)";
  src += ");\n";
  src += "endmodule\n";
  return src;
}

std::string WishboneBridgeVerilog() {
  return R"(
module hs_wb_bridge(
  input clk, input rst,
  // Wishbone B4 classic slave
  input cyc, input stb, input we,
  input [15:0] adr, input [31:0] dat_w,
  output ack, output [31:0] dat_r,
  // register-bus master
  output m_sel, output m_wr, output m_rd,
  output [15:0] m_addr, output [31:0] m_wdata, input [31:0] m_rdata
);
  // Classic single cycle: the bus operation executes on the first strobe
  // cycle; ack is registered so every transaction takes two cycles and the
  // master must drop stb after ack (no block cycles).
  reg ack_r;
  reg [31:0] dat_r_q;

  wire access = cyc && stb && !ack_r;
  assign m_sel = access;
  assign m_wr = access && we;
  assign m_rd = access && !we;
  assign m_addr = adr;
  assign m_wdata = dat_w;

  always @(posedge clk) begin
    if (rst) begin
      ack_r <= 1'b0;
      dat_r_q <= 32'h0;
    end else begin
      ack_r <= access;
      if (access && !we) dat_r_q <= m_rdata;
    end
  end
  assign ack = ack_r;
  assign dat_r = dat_r_q;
endmodule
)";
}

std::string WrapSocWithWishbone(
    const std::vector<periph::PeripheralInfo>& p) {
  std::string src = periph::BuildSoc(p);
  src += WishboneBridgeVerilog();

  unsigned max_irq = 0;
  for (const auto& info : p)
    if (info.irq_line > max_irq) max_irq = info.irq_line;
  const std::string irq_w = std::to_string(max_irq);
  bool has_uart = false;
  for (const auto& info : p)
    if (info.name == "hs_uart") has_uart = true;

  src += "module wb_soc(\n";
  src += "  input clk, input rst,\n";
  src += "  input cyc, input stb, input we,\n";
  src += "  input [15:0] adr, input [31:0] dat_w,\n";
  src += "  output ack, output [31:0] dat_r,\n";
  src += "  output [" + irq_w + ":0] irq";
  if (has_uart) src += ",\n  input uart_rx, output uart_tx";
  src += "\n);\n";
  src += "  wire m_sel, m_wr, m_rd;\n";
  src += "  wire [15:0] m_addr;\n";
  src += "  wire [31:0] m_wdata, m_rdata;\n";
  src += "  hs_wb_bridge u_bridge (.clk(clk), .rst(rst), .cyc(cyc), "
         ".stb(stb), .we(we), .adr(adr), .dat_w(dat_w), .ack(ack), "
         ".dat_r(dat_r), .m_sel(m_sel), .m_wr(m_wr), .m_rd(m_rd), "
         ".m_addr(m_addr), .m_wdata(m_wdata), .m_rdata(m_rdata));\n";
  src += "  soc u_soc (.clk(clk), .rst(rst), .sel(m_sel), .wr(m_wr), "
         ".rd(m_rd), .addr(m_addr), .wdata(m_wdata), .rdata(m_rdata), "
         ".irq(irq)";
  if (has_uart) src += ", .uart_rx(uart_rx), .uart_tx(uart_tx)";
  src += ");\nendmodule\n";
  return src;
}

WishboneDriver::WishboneDriver(sim::Simulator* sim) : sim_(sim) {
  HS_CHECK_MSG(sim->design().FindSignal("cyc") != rtl::kInvalidId,
               "simulator is not executing a Wishbone design");
}

Status WishboneDriver::Write32(uint32_t addr, uint32_t value) {
  HS_RETURN_IF_ERROR(sim_->PokeInput("cyc", 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput("stb", 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput("we", 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput("adr", addr));
  HS_RETURN_IF_ERROR(sim_->PokeInput("dat_w", value));
  for (unsigned cycle = 0; cycle < 16; ++cycle) {
    const bool acked = sim_->Peek("ack").value_or(0) != 0;
    sim_->Tick(1);
    if (acked) {
      HS_RETURN_IF_ERROR(sim_->PokeInput("cyc", 0));
      HS_RETURN_IF_ERROR(sim_->PokeInput("stb", 0));
      return Status::Ok();
    }
  }
  return Internal("Wishbone write timed out");
}

Result<uint32_t> WishboneDriver::Read32(uint32_t addr) {
  HS_RETURN_IF_ERROR(sim_->PokeInput("cyc", 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput("stb", 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput("we", 0));
  HS_RETURN_IF_ERROR(sim_->PokeInput("adr", addr));
  for (unsigned cycle = 0; cycle < 16; ++cycle) {
    const bool acked = sim_->Peek("ack").value_or(0) != 0;
    const uint64_t data = sim_->Peek("dat_r").value_or(0);
    sim_->Tick(1);
    if (acked) {
      HS_RETURN_IF_ERROR(sim_->PokeInput("cyc", 0));
      HS_RETURN_IF_ERROR(sim_->PokeInput("stb", 0));
      return static_cast<uint32_t>(data);
    }
  }
  return Internal("Wishbone read timed out");
}

AxiLiteDriver::AxiLiteDriver(sim::Simulator* sim) : sim_(sim) {
  HS_CHECK_MSG(sim->design().FindSignal("awvalid") != rtl::kInvalidId,
               "simulator is not executing an AXI4-Lite design");
}

Status AxiLiteDriver::Write32(uint32_t addr, uint32_t value) {
  HS_RETURN_IF_ERROR(sim_->PokeInput("awvalid", 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput("awaddr", addr));
  HS_RETURN_IF_ERROR(sim_->PokeInput("wvalid", 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput("wdata", value));
  HS_RETURN_IF_ERROR(sim_->PokeInput("bready", 1));

  bool aw_done = false, w_done = false;
  last_latency_ = 0;
  for (unsigned cycle = 0; cycle < 100; ++cycle) {
    const bool aw_h = !aw_done && sim_->Peek("awready").value_or(0) != 0;
    const bool w_h = !w_done && sim_->Peek("wready").value_or(0) != 0;
    const bool b_h = sim_->Peek("bvalid").value_or(0) != 0;
    const uint64_t bresp = sim_->Peek("bresp").value_or(0);
    sim_->Tick(1);
    ++last_latency_;
    if (aw_h) {
      aw_done = true;
      HS_RETURN_IF_ERROR(sim_->PokeInput("awvalid", 0));
    }
    if (w_h) {
      w_done = true;
      HS_RETURN_IF_ERROR(sim_->PokeInput("wvalid", 0));
    }
    if (b_h) {
      HS_RETURN_IF_ERROR(sim_->PokeInput("bready", 0));
      if (bresp != 0) return Internal("AXI write response error (BRESP)");
      return Status::Ok();
    }
  }
  return Internal("AXI write transaction timed out");
}

Result<uint32_t> AxiLiteDriver::Read32(uint32_t addr) {
  HS_RETURN_IF_ERROR(sim_->PokeInput("arvalid", 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput("araddr", addr));
  HS_RETURN_IF_ERROR(sim_->PokeInput("rready", 1));

  bool ar_done = false;
  last_latency_ = 0;
  for (unsigned cycle = 0; cycle < 100; ++cycle) {
    const bool ar_h = !ar_done && sim_->Peek("arready").value_or(0) != 0;
    const bool r_h = sim_->Peek("rvalid").value_or(0) != 0;
    const uint64_t rresp = sim_->Peek("rresp").value_or(0);
    const uint64_t rdata = sim_->Peek("rdata").value_or(0);
    sim_->Tick(1);
    ++last_latency_;
    if (ar_h) {
      ar_done = true;
      HS_RETURN_IF_ERROR(sim_->PokeInput("arvalid", 0));
    }
    if (r_h) {
      HS_RETURN_IF_ERROR(sim_->PokeInput("rready", 0));
      if (rresp != 0) return Internal("AXI read response error (RRESP)");
      return static_cast<uint32_t>(rdata);
    }
  }
  return Internal("AXI read transaction timed out");
}

}  // namespace hardsnap::bus
