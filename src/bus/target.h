// HardwareTarget: the interface the symbolic virtual machine uses to reach
// a hardware back-end (paper Sec. III-B "multi-target orchestration").
//
// Both back-ends execute the same peripheral RTL; they differ in speed,
// introspection and snapshot mechanism:
//
//                      SimulatorTarget            FpgaTarget
//   execution speed    slow (host interprets)     fabric clock (modeled)
//   MMIO transport     shared memory              USB3 debugger
//   visibility         every signal, every cycle  bus + scan chain only
//   snapshot           CRIU process checkpoint    scan chain / readback
//
// All targets account virtual time on their own VirtualClock; the VM and
// the benchmarks read it to regenerate the paper's tables. Wall-clock
// costs (how long OUR host takes) are measured by the benchmarks
// separately where relevant.
#pragma once

#include <cstdint>
#include <string>

#include "bus/link.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "sim/simulator.h"

namespace hardsnap::bus {

enum class TargetKind { kSimulator, kFpga };

const char* TargetKindName(TargetKind kind);

struct TargetStats {
  uint64_t mmio_reads = 0;
  uint64_t mmio_writes = 0;
  uint64_t cycles_run = 0;
  uint64_t snapshots_saved = 0;
  uint64_t snapshots_restored = 0;
  // Snapshot payload bytes moved between host and target: full operations
  // count the whole architectural state, delta operations only the changed
  // chunks. The delta benchmarks compare exactly this.
  uint64_t snapshot_bytes_copied = 0;
  Duration io_time;        // virtual time spent forwarding MMIO
  Duration run_time;       // virtual time spent executing
  Duration snapshot_time;  // virtual time spent saving/restoring state
  // Transport health: retry/fault counters from the framed link this
  // target talks through (bus/link.h). All zeros on a clean link.
  LinkStats link;
};

class HardwareTarget {
 public:
  virtual ~HardwareTarget() = default;

  virtual TargetKind kind() const = 0;
  virtual const std::string& name() const = 0;

  // --- MMIO forwarding -------------------------------------------------
  // 32-bit single-beat transactions into the SoC register space. Each
  // costs one bus cycle at the target plus the channel round trip.
  virtual Result<uint32_t> Read32(uint32_t addr) = 0;
  virtual Status Write32(uint32_t addr, uint32_t value) = 0;

  // --- execution ---------------------------------------------------------
  // Let the hardware run for `cycles` clock cycles (peripherals make
  // progress; the VM calls this as firmware time advances).
  virtual Status Run(uint64_t cycles) = 0;

  // Current level-sensitive interrupt vector (side-band wires, free).
  virtual uint32_t IrqVector() = 0;

  // Drive the SoC reset for a full power-on reset.
  virtual Status ResetHardware() = 0;

  // --- snapshotting --------------------------------------------------------
  // Capture / load the full architectural hardware state. Implementations
  // charge their mechanism's cost (CRIU, scan chain) to the virtual clock.
  virtual Result<sim::HardwareState> SaveState() = 0;
  virtual Status RestoreState(const sim::HardwareState& state) = 0;

  // Content hash (sim::HashState) of the live architectural state — the
  // integrity probe the orchestrator uses to verify that a migration
  // destination still holds the delta base it is about to receive a delta
  // against. Modeled as a device-local computation (the snapshot
  // controller hashing its own bits): nothing crosses the host link, so
  // concrete targets charge no transfer cost and record no snapshot
  // stats. This default derives the hash from SaveState() and therefore
  // DOES pay that mechanism's cost; both built-in targets override it.
  virtual Result<uint64_t> StateHash() {
    auto st = SaveState();
    if (!st.ok()) return st.status();
    return sim::HashState(st.value());
  }

  // Health probe: false once this target's link has been declared dead by
  // the health monitor (consecutive deadline breaches / exhausted
  // retries). The orchestrator consults this when picking a failover
  // destination; a dead target fails every operation with kUnavailable.
  virtual bool responsive() const { return true; }

  // --- accounting ----------------------------------------------------------
  virtual const VirtualClock& clock() const = 0;
  virtual const TargetStats& stats() const = 0;
};

}  // namespace hardsnap::bus
