// Optional target capability: on-device snapshot slots.
//
// The paper's FPGA snapshot controller stores snapshots in on-fabric SRAM
// "for performance reasons": a hardware context switch then never crosses
// the host link. Targets that can hold snapshots device-side implement
// this interface; the symbolic executor discovers it via dynamic_cast and
// keeps per-state snapshots resident (ExecOptions::use_device_slots),
// falling back to host-side storage when slots run out.
#pragma once

#include "common/status.h"

namespace hardsnap::bus {

class SlotSnapshotter {
 public:
  virtual ~SlotSnapshotter() = default;

  // Number of device-resident snapshot slots.
  virtual unsigned NumSlots() const = 0;

  // Capture the live hardware state into `slot` (non-destructive).
  virtual Status SaveLiveToSlot(unsigned slot) = 0;

  // Load `slot` into the live hardware.
  virtual Status RestoreLiveFromSlot(unsigned slot) = 0;
};

}  // namespace hardsnap::bus
