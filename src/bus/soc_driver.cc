#include "bus/soc_driver.h"

namespace hardsnap::bus {

SocBusDriver::SocBusDriver(sim::Simulator* sim) : sim_(sim) {
  const auto& d = sim->design();
  sel_ = d.FindSignal("sel");
  wr_ = d.FindSignal("wr");
  rd_ = d.FindSignal("rd");
  addr_ = d.FindSignal("addr");
  wdata_ = d.FindSignal("wdata");
  rdata_ = d.FindSignal("rdata");
  irq_ = d.FindSignal("irq");
  HS_CHECK_MSG(sel_ != rtl::kInvalidId && wr_ != rtl::kInvalidId &&
                   rd_ != rtl::kInvalidId && addr_ != rtl::kInvalidId &&
                   wdata_ != rtl::kInvalidId && rdata_ != rtl::kInvalidId,
               "simulator is not executing a SoC-pinout design");
}

Status SocBusDriver::Write32(uint32_t addr, uint32_t value) {
  HS_RETURN_IF_ERROR(sim_->PokeInput(sel_, 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput(wr_, 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput(rd_, 0));
  HS_RETURN_IF_ERROR(sim_->PokeInput(addr_, addr));
  HS_RETURN_IF_ERROR(sim_->PokeInput(wdata_, value));
  sim_->Tick(1);
  HS_RETURN_IF_ERROR(sim_->PokeInput(sel_, 0));
  HS_RETURN_IF_ERROR(sim_->PokeInput(wr_, 0));
  return Status::Ok();
}

Result<uint32_t> SocBusDriver::Read32(uint32_t addr) {
  HS_RETURN_IF_ERROR(sim_->PokeInput(sel_, 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput(rd_, 1));
  HS_RETURN_IF_ERROR(sim_->PokeInput(wr_, 0));
  HS_RETURN_IF_ERROR(sim_->PokeInput(addr_, addr));
  const uint32_t value = static_cast<uint32_t>(sim_->PeekId(rdata_));
  sim_->Tick(1);
  HS_RETURN_IF_ERROR(sim_->PokeInput(sel_, 0));
  HS_RETURN_IF_ERROR(sim_->PokeInput(rd_, 0));
  return value;
}

uint32_t SocBusDriver::IrqVector() const {
  return irq_ == rtl::kInvalidId ? 0
                                 : static_cast<uint32_t>(sim_->PeekId(irq_));
}

}  // namespace hardsnap::bus
