// Binary serialization buffers used by the snapshot subsystem.
//
// Snapshots (CRIU-style process images, scan-chain dumps, VM state) are
// flat byte blobs with a small tag/length discipline so that mismatched
// restores fail loudly instead of silently corrupting state.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace hardsnap {

// Append-only byte sink.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void PutBytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }
  void PutU64Vector(const std::vector<uint64_t>& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    for (uint64_t x : v) PutU64(x);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

// Sequential byte source with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > buf_.size()) return Truncated("u8").status();
    return buf_[pos_++];
  }
  Result<uint32_t> GetU32() {
    if (pos_ + 4 > buf_.size()) return Truncated("u32").status();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{buf_[pos_++]} << (8 * i);
    return v;
  }
  Result<uint64_t> GetU64() {
    if (pos_ + 8 > buf_.size()) return Truncated("u64").status();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{buf_[pos_++]} << (8 * i);
    return v;
  }
  Result<std::string> GetString() {
    auto n = GetU32();
    if (!n.ok()) return n.status();
    if (pos_ + n.value() > buf_.size()) return Truncated("string body").status();
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  n.value());
    pos_ += n.value();
    return s;
  }
  Result<std::vector<uint64_t>> GetU64Vector() {
    auto n = GetU32();
    if (!n.ok()) return n.status();
    // Validate the declared element count against the bytes actually
    // present BEFORE reserving: a corrupt blob advertising 2^32-1 elements
    // must fail as truncated, not OOM the host trying to allocate 32 GB.
    if (remaining() < size_t{n.value()} * 8)
      return Truncated("u64 vector body").status();
    std::vector<uint64_t> v;
    v.reserve(n.value());
    for (uint32_t i = 0; i < n.value(); ++i) {
      auto x = GetU64();
      if (!x.ok()) return x.status();
      v.push_back(x.value());
    }
    return v;
  }
  Status GetBytes(void* out, size_t n) {
    if (pos_ + n > buf_.size()) return Truncated("bytes").status();
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  Result<uint64_t> Truncated(const char* what) {
    return Status{StatusCode::kOutOfRange,
                  std::string("snapshot truncated while reading ") + what};
  }

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

}  // namespace hardsnap
