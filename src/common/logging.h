// Minimal leveled logging. Quiet by default (benchmarks), verbose on demand
// (examples, debugging). Emission is serialized by a process-wide mutex so
// parallel campaign workers never interleave partial lines; the threshold
// is configured once at startup (before threads spawn) and only read after.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace hardsnap {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static LogLevel& Threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  static void Log(LogLevel level, const std::string& msg) {
    if (level < Threshold()) return;
    const char* tag = "?";
    switch (level) {
      case LogLevel::kDebug: tag = "D"; break;
      case LogLevel::kInfo: tag = "I"; break;
      case LogLevel::kWarn: tag = "W"; break;
      case LogLevel::kError: tag = "E"; break;
      case LogLevel::kOff: return;
    }
    std::lock_guard<std::mutex> lock(Mutex());
    std::fprintf(stderr, "[hardsnap %s] %s\n", tag, msg.c_str());
  }

 private:
  static std::mutex& Mutex() {
    static std::mutex mu;
    return mu;
  }
};

inline void LogDebug(const std::string& m) { Logger::Log(LogLevel::kDebug, m); }
inline void LogInfo(const std::string& m) { Logger::Log(LogLevel::kInfo, m); }
inline void LogWarn(const std::string& m) { Logger::Log(LogLevel::kWarn, m); }
inline void LogError(const std::string& m) { Logger::Log(LogLevel::kError, m); }

}  // namespace hardsnap
