// Minimal leveled logging. Quiet by default (benchmarks), verbose on demand
// (examples, debugging). Not thread-safe by design: HardSnap's pipeline is
// single-threaded per session, matching the determinism requirement.
#pragma once

#include <cstdio>
#include <string>

namespace hardsnap {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static LogLevel& Threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  static void Log(LogLevel level, const std::string& msg) {
    if (level < Threshold()) return;
    const char* tag = "?";
    switch (level) {
      case LogLevel::kDebug: tag = "D"; break;
      case LogLevel::kInfo: tag = "I"; break;
      case LogLevel::kWarn: tag = "W"; break;
      case LogLevel::kError: tag = "E"; break;
      case LogLevel::kOff: return;
    }
    std::fprintf(stderr, "[hardsnap %s] %s\n", tag, msg.c_str());
  }
};

inline void LogDebug(const std::string& m) { Logger::Log(LogLevel::kDebug, m); }
inline void LogInfo(const std::string& m) { Logger::Log(LogLevel::kInfo, m); }
inline void LogWarn(const std::string& m) { Logger::Log(LogLevel::kWarn, m); }
inline void LogError(const std::string& m) { Logger::Log(LogLevel::kError, m); }

}  // namespace hardsnap
