// Virtual time accounting.
//
// HardSnap's evaluation compares *modeled hardware time* across targets
// (FPGA fabric cycles, USB3 transaction latency, CRIU checkpoint time),
// not host wall-clock. A VirtualClock accumulates picoseconds; every
// component that consumes modeled time (bus channels, scan controller,
// fabric clock) charges it here. Wall time is measured separately by the
// benchmarks where relevant.
#pragma once

#include <cstdint>
#include <string>

namespace hardsnap {

// A span of virtual time. Stored in picoseconds so that a 1 GHz clock edge
// (1000 ps) is exactly representable and a femto-level unit is unnecessary.
class Duration {
 public:
  constexpr Duration() : ps_(0) {}

  static constexpr Duration Picos(int64_t ps) { return Duration{ps}; }
  static constexpr Duration Nanos(int64_t ns) { return Duration{ns * 1000}; }
  static constexpr Duration Micros(int64_t us) {
    return Duration{us * 1000000};
  }
  static constexpr Duration Millis(int64_t ms) {
    return Duration{ms * 1000000000};
  }
  static constexpr Duration Seconds(double s) {
    return Duration{static_cast<int64_t>(s * 1e12)};
  }

  constexpr int64_t picos() const { return ps_; }
  constexpr double nanos() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double micros() const { return static_cast<double>(ps_) / 1e6; }
  constexpr double millis() const { return static_cast<double>(ps_) / 1e9; }
  constexpr double seconds() const { return static_cast<double>(ps_) / 1e12; }

  constexpr Duration operator+(Duration o) const {
    return Duration{ps_ + o.ps_};
  }
  constexpr Duration operator-(Duration o) const {
    return Duration{ps_ - o.ps_};
  }
  constexpr Duration operator*(int64_t k) const { return Duration{ps_ * k}; }
  Duration& operator+=(Duration o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  // "12.5 us" style rendering for reports.
  std::string ToString() const;

 private:
  constexpr explicit Duration(int64_t ps) : ps_(ps) {}
  int64_t ps_;
};

// Monotonic virtual clock. Components advance it; benchmarks snapshot it.
class VirtualClock {
 public:
  Duration now() const { return now_; }
  void Advance(Duration d) { now_ += d; }
  void Reset() { now_ = Duration{}; }

 private:
  Duration now_;
};

// Frequency helper: period of a clock in virtual time.
constexpr Duration PeriodOfHz(double hz) {
  return Duration::Picos(static_cast<int64_t>(1e12 / hz));
}

}  // namespace hardsnap
