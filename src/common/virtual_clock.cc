#include "common/virtual_clock.h"

#include <cstdio>

namespace hardsnap {

std::string Duration::ToString() const {
  char buf[64];
  const double ps = static_cast<double>(ps_);
  if (ps_ < 1000) {
    std::snprintf(buf, sizeof buf, "%ld ps", static_cast<long>(ps_));
  } else if (ps_ < 1000000) {
    std::snprintf(buf, sizeof buf, "%.2f ns", ps / 1e3);
  } else if (ps_ < 1000000000) {
    std::snprintf(buf, sizeof buf, "%.2f us", ps / 1e6);
  } else if (ps_ < 1000000000000) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ps / 1e9);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ps / 1e12);
  }
  return buf;
}

}  // namespace hardsnap
