// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used as the end-to-end integrity check on everything that crosses an
// unreliable host<->target link: framed MMIO transactions (bus/link.h)
// and serialized snapshot blobs (snapshot/snapshot.cc). CRC32 detects all
// single-bit errors and all burst errors up to 32 bits, which covers the
// fault model of bus::FaultProfile exactly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hardsnap {

inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Streamable: pass the previous return value as `seed` to continue.
inline uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& table = Crc32Table();
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace hardsnap
