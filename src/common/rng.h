// Deterministic pseudo-random number generation.
//
// HardSnap analyses must be reproducible: a snapshot restored and re-run
// must behave identically, and CI failures must replay. All randomized
// components (searchers, workload generators, property tests) take an
// explicit Rng seeded by the caller — never a global generator.
#pragma once

#include <cstdint>

namespace hardsnap {

// xoshiro256** — small, fast, high-quality; seeded via splitmix64 so that
// consecutive integer seeds give unrelated streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    uint64_t x = seed;
    for (auto& lane : s_) lane = SplitMix64(&x);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for the bounds we use (<< 2^64).
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform `width`-bit value.
  uint64_t Bits(unsigned width) {
    return width >= 64 ? Next() : (Next() & ((uint64_t{1} << width) - 1));
  }

  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s_[4];
};

}  // namespace hardsnap
