// Deterministic pseudo-random number generation.
//
// HardSnap analyses must be reproducible: a snapshot restored and re-run
// must behave identically, and CI failures must replay. All randomized
// components (searchers, workload generators, property tests) take an
// explicit Rng seeded by the caller — never a global generator.
//
// Parallel campaigns extend the contract to N workers: every worker owns
// its own Rng seeded with DeriveWorkerSeed(campaign_seed, worker_id), so
// a worker's decision sequence is independent of thread scheduling and
// any finding replays under a single-threaded run with the derived seed.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace hardsnap {

// splitmix64 step: advances `*state` and returns the next output. Used to
// expand one user seed into unrelated generator lanes / worker streams.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Seed for campaign worker `worker_id` derived from the campaign seed.
// Distinct workers get unrelated streams; worker 0 does NOT collapse to
// the plain seed (all workers are treated identically).
inline uint64_t DeriveWorkerSeed(uint64_t seed, uint64_t worker_id) {
  uint64_t x = seed;
  (void)SplitMix64(&x);  // decorrelate from the raw seed
  x ^= SplitMix64(&x) + 0x9e3779b97f4a7c15ull * (worker_id + 1);
  return SplitMix64(&x);
}

// xoshiro256** — small, fast, high-quality; seeded via splitmix64 so that
// consecutive integer seeds give unrelated streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    uint64_t x = seed;
    for (auto& lane : s_) lane = SplitMix64(&x);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0 (bound == 0 would be a modulo
  // by zero — undefined behaviour — so it is a checked invariant).
  uint64_t Below(uint64_t bound) {
    HS_CHECK_MSG(bound > 0, "Rng::Below(0): empty range");
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for the bounds we use (<< 2^64).
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi (a reversed range
  // would silently wrap hi - lo + 1 and sample garbage).
  uint64_t Range(uint64_t lo, uint64_t hi) {
    HS_CHECK_MSG(lo <= hi, "Rng::Range: lo > hi");
    const uint64_t span = hi - lo + 1;
    if (span == 0) return Next();  // full 64-bit range: hi-lo+1 wrapped
    return lo + Next() % span;
  }

  // Uniform `width`-bit value.
  uint64_t Bits(unsigned width) {
    return width >= 64 ? Next() : (Next() & ((uint64_t{1} << width) - 1));
  }

  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  // Digest of the generator's current position in its stream (FNV-1a over
  // the xoshiro lanes). Two Rngs with equal digests produce identical
  // futures; campaign checkpoints store this so an exact resume can prove
  // the replayed worker reached the same stream position.
  uint64_t StateDigest() const {
    uint64_t h = 1469598103934665603ull;
    for (uint64_t lane : s_) {
      h ^= lane;
      h *= 1099511628211ull;
    }
    return h;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace hardsnap
