// Lightweight error-handling primitives used across HardSnap.
//
// We deliberately avoid exceptions on hot simulation paths; fallible
// operations return Status or Result<T>. Fatal invariant violations use
// HS_CHECK which aborts with a diagnostic (these indicate bugs in HardSnap
// itself, never user input errors).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace hardsnap {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup failed (signal, snapshot id, symbol, ...)
  kFailedPrecondition,// operation not legal in current state
  kOutOfRange,        // address / index outside mapped range
  kUnimplemented,     // feature intentionally unsupported
  kParseError,        // Verilog / assembly front-end rejection
  kInternal,          // invariant broken inside HardSnap
  kResourceExhausted, // budget / capacity exceeded
  kUnavailable,       // link/target down; the operation itself was fine
  kDeadlineExceeded,  // operation blew its modeled deadline
  kDataLoss,          // integrity check (CRC) rejected a payload
};

const char* StatusCodeName(StatusCode code);

// Transient-vs-permanent classifier for the retry layer (bus/link.h): a
// transient failure is a property of the transport, not of the request —
// retransmitting the same frames (or re-fetching the same blob) may well
// succeed. Permanent errors arrived in a well-formed reply from the far
// side; retrying them verbatim is pointless.
inline bool IsTransientFailure(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kDataLoss;
}

// The subset of transient failures that indicate the *target* (not one
// payload) is in trouble — what the health monitor counts and what makes
// the orchestrator fail over to a standby target. A kDataLoss is excluded:
// a corrupt blob quarantines that payload, it does not condemn the device.
inline bool IsInfrastructureFailure(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

// Status: result of an operation that produces no value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status{}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status{StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return Status{StatusCode::kNotFound, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return Status{StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return Status{StatusCode::kOutOfRange, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return Status{StatusCode::kUnimplemented, std::move(msg)};
}
inline Status ParseError(std::string msg) {
  return Status{StatusCode::kParseError, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return Status{StatusCode::kInternal, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return Status{StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return Status{StatusCode::kUnavailable, std::move(msg)};
}
inline Status DeadlineExceeded(std::string msg) {
  return Status{StatusCode::kDeadlineExceeded, std::move(msg)};
}
inline Status DataLoss(std::string msg) {
  return Status{StatusCode::kDataLoss, std::move(msg)};
}

// Result<T>: either a value or a Status explaining why there is none.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT: implicit
  Result(Status status) : data_(std::move(status)) {}   // NOLINT: implicit

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk{};
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& detail);

}  // namespace hardsnap

// Fatal assertion for internal invariants.
#define HS_CHECK(expr)                                                  \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::hardsnap::CheckFailed(__FILE__, __LINE__, #expr, "");           \
    }                                                                   \
  } while (0)

#define HS_CHECK_MSG(expr, detail)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::hardsnap::CheckFailed(__FILE__, __LINE__, #expr, (detail));     \
    }                                                                   \
  } while (0)

// Propagate a non-ok Status from the current function.
#define HS_RETURN_IF_ERROR(expr)                                        \
  do {                                                                  \
    ::hardsnap::Status hs_status__ = (expr);                            \
    if (!hs_status__.ok()) return hs_status__;                          \
  } while (0)

// Evaluate a Result<T> expression; on error propagate, else bind value.
#define HS_ASSIGN_OR_RETURN(lhs, expr)                                  \
  HS_ASSIGN_OR_RETURN_IMPL(HS_CONCAT_(hs_result__, __LINE__), lhs, expr)
#define HS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)                        \
  auto tmp = (expr);                                                    \
  if (!tmp.ok()) return tmp.status();                                   \
  lhs = std::move(tmp).value()
#define HS_CONCAT_(a, b) HS_CONCAT_IMPL_(a, b)
#define HS_CONCAT_IMPL_(a, b) a##b
