#include "common/status.h"

namespace hardsnap {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& detail) {
  std::fprintf(stderr, "HS_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               detail.empty() ? "" : " — ", detail.c_str());
  std::abort();
}

}  // namespace hardsnap
