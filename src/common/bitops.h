// Bit-manipulation helpers shared by the RTL simulator, scan-chain pass,
// solver and CPU model. All HardSnap signal values are carried in uint64_t
// lanes; signals wider than 64 bits are represented as multiple lanes by
// higher layers.
#pragma once

#include <cstdint>

namespace hardsnap {

// Mask with the low `width` bits set. width must be in [0, 64].
constexpr uint64_t LowMask(unsigned width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

// Truncate v to `width` bits.
constexpr uint64_t TruncBits(uint64_t v, unsigned width) {
  return v & LowMask(width);
}

// Sign-extend the low `width` bits of v to 64 bits.
constexpr int64_t SignExtend(uint64_t v, unsigned width) {
  if (width == 0 || width >= 64) return static_cast<int64_t>(v);
  const uint64_t sign = uint64_t{1} << (width - 1);
  return static_cast<int64_t>((v ^ sign) - sign);
}

// Extract bits [hi:lo] of v (Verilog part-select semantics).
constexpr uint64_t ExtractBits(uint64_t v, unsigned hi, unsigned lo) {
  return TruncBits(v >> lo, hi - lo + 1);
}

// Number of bits needed to represent values 0..n-1 (>=1).
constexpr unsigned BitsFor(uint64_t n) {
  unsigned bits = 1;
  while ((uint64_t{1} << bits) < n && bits < 64) ++bits;
  return bits;
}

constexpr unsigned PopCount(uint64_t v) {
  unsigned c = 0;
  while (v) { v &= v - 1; ++c; }
  return c;
}

// Parity (XOR-reduce) of the low `width` bits.
constexpr uint64_t XorReduce(uint64_t v, unsigned width) {
  return PopCount(TruncBits(v, width)) & 1u;
}

}  // namespace hardsnap
