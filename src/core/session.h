// hardsnap::Session — the framework's public entry point (paper Fig. 2).
//
// A session compiles a set of Verilog peripherals into one SoC, boots it
// on the requested hardware target(s) (software simulator, emulated FPGA,
// or both with live state transfer), and runs firmware under the selective
// symbolic virtual machine with hardware/software co-snapshotting.
//
// Typical use:
//
//   hardsnap::core::SessionConfig cfg;            // default corpus, sim
//   auto session = hardsnap::core::Session::Create(cfg);
//   session->LoadFirmwareAsm(my_driver_asm);
//   session->MakeSymbolicRegister(10, "input");   // a0 is attacker data
//   auto report = session->Run();
//   // report.bugs[i].test_case reproduces each finding
//
// For hardware-only testing (software testbench, no firmware), use
// hardware() to drive the register bus directly, and the snapshotting
// calls to save/restore device state around experiments.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/sim_target.h"
#include "common/status.h"
#include "fpga/fpga_target.h"
#include "periph/periph.h"
#include "rtl/ir.h"
#include "core/property.h"
#include "snapshot/orchestrator.h"
#include "symex/executor.h"
#include "vm/assembler.h"

namespace hardsnap::core {

// HardwareTarget proxy that always forwards to the orchestrator's active
// target, so the executor transparently follows MoveToTarget() calls.
// Forwards the DeltaSnapshotter capability too — without this the
// executor's dynamic_cast sees only the proxy and every context switch
// silently pays the full-copy price.
//
// The proxy is also where mid-analysis failover happens: when an operation
// fails because the active target's link died (IsInfrastructureFailure),
// the proxy asks the orchestrator to FailOver() to a responsive standby
// and retries the operation once there. Analysis code above sees either a
// successful operation on the survivor or the original failure when no
// standby exists — never a crash.
class OrchestratedTarget : public bus::HardwareTarget,
                           public bus::DeltaSnapshotter {
 public:
  explicit OrchestratedTarget(snapshot::TargetOrchestrator* orch)
      : orch_(orch) {}
  bus::TargetKind kind() const override { return orch_->active().kind(); }
  const std::string& name() const override { return orch_->active().name(); }
  Result<uint32_t> Read32(uint32_t addr) override {
    auto r = orch_->active().Read32(addr);
    if (!ShouldFailOver(r.status())) return r;
    return orch_->active().Read32(addr);
  }
  Status Write32(uint32_t addr, uint32_t value) override {
    Status s = orch_->active().Write32(addr, value);
    if (!ShouldFailOver(s)) return s;
    return orch_->active().Write32(addr, value);
  }
  Status Run(uint64_t cycles) override {
    Status s = orch_->active().Run(cycles);
    if (!ShouldFailOver(s)) return s;
    return orch_->active().Run(cycles);
  }
  uint32_t IrqVector() override { return orch_->active().IrqVector(); }
  Status ResetHardware() override {
    // The reset moves the live state without a migration: the state the
    // orchestrator last shipped here is gone, so the delta base must not
    // be trusted for the next MoveTo.
    orch_->InvalidateMirror(orch_->active_index());
    Status s = orch_->active().ResetHardware();
    if (!ShouldFailOver(s)) return s;
    orch_->InvalidateMirror(orch_->active_index());
    return orch_->active().ResetHardware();
  }
  Result<sim::HardwareState> SaveState() override {
    auto r = orch_->active().SaveState();
    if (!ShouldFailOver(r.status())) return r;
    return orch_->active().SaveState();
  }
  Status RestoreState(const sim::HardwareState& state) override {
    Status s = orch_->active().RestoreState(state);
    if (!ShouldFailOver(s)) return s;
    return orch_->active().RestoreState(state);
  }
  Result<uint64_t> StateHash() override { return orch_->active().StateHash(); }
  bool responsive() const override { return orch_->active().responsive(); }
  const VirtualClock& clock() const override {
    return orch_->active().clock();
  }
  const bus::TargetStats& stats() const override {
    return orch_->active().stats();
  }
  Result<sim::StateDelta> SaveStateDelta() override {
    auto* d = dynamic_cast<bus::DeltaSnapshotter*>(&orch_->active());
    if (!d) {
      // Degrade to a full capture expressed as a self-contained delta.
      auto st = orch_->active().SaveState();
      if (!st.ok()) return st.status();
      return sim::FullDelta(st.value());
    }
    return d->SaveStateDelta();
  }
  Status RestoreStateDelta(const sim::StateDelta& delta) override {
    auto* d = dynamic_cast<bus::DeltaSnapshotter*>(&orch_->active());
    if (!d)
      return FailedPrecondition("active target has no incremental restore");
    return d->RestoreStateDelta(delta);
  }

 private:
  // True when `s` says the active target's link is gone AND failover to a
  // responsive standby succeeded — i.e. the caller should retry the
  // operation once on the new active target. Delta ops deliberately do
  // NOT fail over here: after a failover the survivor's delta sync point
  // is gone, and their callers (fuzzer, executor) already carry a
  // full-restore fallback that re-establishes one.
  bool ShouldFailOver(const Status& s) {
    if (s.ok() || !IsInfrastructureFailure(s.code())) return false;
    return orch_->FailOver().ok();
  }

  snapshot::TargetOrchestrator* orch_;
};

struct SessionConfig {
  // Peripherals to build into the SoC (default: the paper's 4-IP corpus).
  std::vector<periph::PeripheralInfo> peripherals;

  // Which target executes the hardware. kBoth builds simulator + FPGA and
  // starts on the FPGA (fast), allowing MoveToTarget() at any time.
  enum class Target { kSimulator, kFpga, kBoth };
  Target target = Target::kSimulator;

  bus::SimulatorTargetOptions simulator_options;
  fpga::FpgaTargetOptions fpga_options;
  symex::ExecOptions exec;
};

struct HardwareInfo {
  rtl::DesignStats soc_stats;
  unsigned scan_chain_bits = 0;   // 0 when no FPGA target present
  unsigned scan_mem_words = 0;
};

class Session {
 public:
  static Result<std::unique_ptr<Session>> Create(SessionConfig config);

  // Independent session with the same configuration, firmware, symbolic
  // declarations and properties — but its own compiled SoC, targets,
  // solver context and executor, so clones may run on separate threads
  // (campaign workers). `exec_override` lets each worker vary the search
  // strategy / seed. Hardware invariants are recompiled from source
  // against the clone's design; raw AddAssertion callbacks are copied
  // as-is and therefore must be self-contained (capture no state of the
  // session they were first added to).
  Result<std::unique_ptr<Session>> Clone(
      std::optional<symex::ExecOptions> exec_override = {}) const;

  // --- firmware ------------------------------------------------------
  Status LoadFirmwareAsm(const std::string& assembly);
  Status LoadFirmware(const vm::FirmwareImage& image);
  const vm::FirmwareImage& firmware() const { return image_; }

  // --- symbolic inputs & properties ----------------------------------
  solver::TermId MakeSymbolicRegister(unsigned reg, const std::string& name);
  Status MakeSymbolicRegion(uint32_t addr, unsigned bytes,
                            const std::string& name);
  void AddAssertion(symex::Executor::AssertionFn fn);

  // High-level hardware invariant over hierarchical signal names, e.g.
  // "!(u_aes.busy && u_aes.done)". Checked after every instruction of
  // every state via the full-visibility simulator target; requires one
  // (this is precisely what the FPGA target cannot offer — move the state
  // over when you need invariants).
  Status AddHardwareInvariant(const std::string& property);

  // --- analysis ---------------------------------------------------------
  // Runs the symbolic VM on the active target. May be called once per
  // session (states and solver context live in the executor).
  Result<symex::Report> Run();

  // --- direct hardware access (software testbench mode) -----------------
  bus::HardwareTarget& hardware() { return orchestrator_->active(); }
  snapshot::TargetOrchestrator& orchestrator() { return *orchestrator_; }
  Status MoveToTarget(bus::TargetKind kind);

  // The compiled SoC (for inspection / custom simulators).
  const rtl::Design& soc() const { return *soc_; }
  // Executor options the session was created with (Clone callers start
  // from these when overriding seed / search strategy per worker).
  const symex::ExecOptions& exec_options() const { return config_.exec; }
  HardwareInfo hardware_info() const;

  // Full-visibility handle when a simulator target exists (tracing).
  bus::SimulatorTarget* simulator_target() { return sim_target_.get(); }
  fpga::FpgaTarget* fpga_target() { return fpga_target_.get(); }

 private:
  Session() = default;

  // Declarations recorded so Clone can replay them into a fresh session.
  struct SymRegDecl {
    unsigned reg;
    std::string name;
  };
  struct SymRegionDecl {
    uint32_t addr;
    unsigned bytes;
    std::string name;
  };

  SessionConfig config_;
  bool firmware_loaded_ = false;
  std::vector<SymRegDecl> sym_regs_;
  std::vector<SymRegionDecl> sym_regions_;
  std::vector<std::string> invariant_sources_;
  std::vector<symex::Executor::AssertionFn> raw_assertions_;
  std::unique_ptr<rtl::Design> soc_;
  std::unique_ptr<bus::SimulatorTarget> sim_target_;
  std::unique_ptr<fpga::FpgaTarget> fpga_target_;
  std::unique_ptr<snapshot::TargetOrchestrator> orchestrator_;
  std::unique_ptr<OrchestratedTarget> proxy_target_;
  std::unique_ptr<symex::Executor> executor_;
  vm::FirmwareImage image_;
};

}  // namespace hardsnap::core
