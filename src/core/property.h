// Hardware property language (paper Sec. III: HardSnap "enables analysts
// to ... express security properties using a high level of abstraction").
//
// A SignalProperty is a boolean expression over the SoC's hierarchical
// signal names, written in Verilog-expression syntax:
//
//     "!(u_aes.busy && u_aes.done)"          // never both
//     "u_timer.value <= u_timer.load_val"    // counter bounded
//     "(u_wdog.barked -> u_wdog.reset_req)"  // implication
//
// Properties are parsed once and evaluated against the live simulator on
// every executed instruction of every state (the full-visibility target;
// on the FPGA such invariants are exactly what you CANNOT check, which is
// the paper's motivation for target hand-off). A property that evaluates
// false flags a bug with its source text.
//
// Grammar (C/Verilog precedence):
//   expr   := implies
//   implies:= or ('->' or)*                  right-assoc implication
//   or     := and ('||' and)*
//   and    := bor ('&&' bor)*
//   bor    := bxor ('|' bxor)*
//   bxor   := band ('^' band)*
//   band   := eq ('&' eq)*
//   eq     := rel (('=='|'!=') rel)*
//   rel    := add (('<'|'<='|'>'|'>=') add)*
//   add    := unary (('+'|'-') unary)*
//   unary  := ('!'|'~'|'-')* primary
//   primary:= number | signal | '(' expr ')'
//   signal := ident ('.' ident)*             hierarchical name
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"

namespace hardsnap::core {

class SignalProperty {
 public:
  // Parses `source` and resolves every signal name against `design`.
  // Unknown signals are a compile-time error (with the name in the
  // message), not a runtime surprise.
  static Result<SignalProperty> Compile(const std::string& source,
                                        const rtl::Design& design);

  // True iff the property holds under the simulator's current values.
  bool Holds(const sim::Simulator& sim) const;

  const std::string& source() const { return source_; }

  // Implementation detail exposed for the parser translation unit.
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

 private:
  SignalProperty() = default;
  friend class PropertyParser;

  std::string source_;
  std::shared_ptr<const Node> root_;  // shared: properties are copyable
};

}  // namespace hardsnap::core
