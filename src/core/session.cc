#include "core/session.h"

#include "rtl/elaborate.h"

namespace hardsnap::core {

Result<std::unique_ptr<Session>> Session::Create(SessionConfig config) {
  auto session = std::unique_ptr<Session>(new Session());
  if (config.peripherals.empty())
    config.peripherals = periph::DefaultCorpus();
  session->config_ = config;

  auto design =
      rtl::CompileVerilog(periph::BuildSoc(config.peripherals), "soc");
  if (!design.ok()) return design.status();
  session->soc_ = std::make_unique<rtl::Design>(std::move(design).value());

  std::vector<bus::HardwareTarget*> targets;
  const bool want_sim = config.target != SessionConfig::Target::kFpga;
  const bool want_fpga = config.target != SessionConfig::Target::kSimulator;
  if (want_sim) {
    auto t = bus::SimulatorTarget::Create(*session->soc_,
                                          config.simulator_options);
    if (!t.ok()) return t.status();
    session->sim_target_ = std::move(t).value();
  }
  if (want_fpga) {
    auto t = fpga::FpgaTarget::Create(*session->soc_, config.fpga_options);
    if (!t.ok()) return t.status();
    session->fpga_target_ = std::move(t).value();
  }
  // kBoth starts on the FPGA (the fast target); MoveToTarget switches.
  if (session->fpga_target_) targets.push_back(session->fpga_target_.get());
  if (session->sim_target_) targets.push_back(session->sim_target_.get());
  session->orchestrator_ =
      std::make_unique<snapshot::TargetOrchestrator>(std::move(targets));
  HS_RETURN_IF_ERROR(session->orchestrator_->active().ResetHardware());

  session->proxy_target_ =
      std::make_unique<OrchestratedTarget>(session->orchestrator_.get());
  session->executor_ = std::make_unique<symex::Executor>(
      session->proxy_target_.get(), config.exec);
  return session;
}

Status Session::LoadFirmwareAsm(const std::string& assembly) {
  auto img = vm::Assemble(assembly);
  if (!img.ok()) return img.status();
  return LoadFirmware(img.value());
}

Status Session::LoadFirmware(const vm::FirmwareImage& image) {
  image_ = image;
  firmware_loaded_ = true;
  return executor_->LoadFirmware(image_);
}

solver::TermId Session::MakeSymbolicRegister(unsigned reg,
                                             const std::string& name) {
  sym_regs_.push_back({reg, name});
  return executor_->MakeSymbolicRegister(reg, name);
}

Status Session::MakeSymbolicRegion(uint32_t addr, unsigned bytes,
                                   const std::string& name) {
  HS_RETURN_IF_ERROR(executor_->MakeSymbolicRegion(addr, bytes, name));
  sym_regions_.push_back({addr, bytes, name});
  return Status::Ok();
}

void Session::AddAssertion(symex::Executor::AssertionFn fn) {
  raw_assertions_.push_back(fn);
  executor_->AddAssertion(std::move(fn));
}

Status Session::AddHardwareInvariant(const std::string& property) {
  if (!sim_target_)
    return FailedPrecondition(
        "hardware invariants need the full-visibility simulator target "
        "(the FPGA exposes no internal signals — the paper's Sec. III-A "
        "trade-off); create the session with Target::kSimulator or kBoth");
  auto compiled = SignalProperty::Compile(property, *soc_);
  if (!compiled.ok()) return compiled.status();
  invariant_sources_.push_back(property);
  sim::Simulator* simulator = sim_target_->simulator();
  executor_->AddAssertion(
      [prop = std::move(compiled).value(), simulator,
       this](const symex::State&) -> std::string {
        // Only meaningful while the simulator holds the live state.
        if (orchestrator_->active().kind() != bus::TargetKind::kSimulator)
          return "";
        if (!prop.Holds(*simulator))
          return "hardware invariant violated: " + prop.source();
        return "";
      });
  return Status::Ok();
}

Result<symex::Report> Session::Run() { return executor_->Run(); }

Result<std::unique_ptr<Session>> Session::Clone(
    std::optional<symex::ExecOptions> exec_override) const {
  SessionConfig cfg = config_;
  if (exec_override) cfg.exec = *exec_override;
  auto clone = Create(cfg);
  if (!clone.ok()) return clone.status();
  Session& s = *clone.value();
  if (firmware_loaded_) HS_RETURN_IF_ERROR(s.LoadFirmware(image_));
  for (const auto& r : sym_regs_) s.MakeSymbolicRegister(r.reg, r.name);
  for (const auto& r : sym_regions_)
    HS_RETURN_IF_ERROR(s.MakeSymbolicRegion(r.addr, r.bytes, r.name));
  for (const auto& src : invariant_sources_)
    HS_RETURN_IF_ERROR(s.AddHardwareInvariant(src));
  for (const auto& fn : raw_assertions_) s.AddAssertion(fn);
  return clone;
}

Status Session::MoveToTarget(bus::TargetKind kind) {
  auto idx = orchestrator_->IndexOf(kind);
  if (!idx.ok()) return idx.status();
  return orchestrator_->MoveTo(idx.value());
}

HardwareInfo Session::hardware_info() const {
  HardwareInfo info;
  info.soc_stats = soc_->Stats();
  if (fpga_target_) {
    info.scan_chain_bits = fpga_target_->scan_map().total_bits;
    info.scan_mem_words = fpga_target_->scan_map().total_mem_words;
  }
  return info;
}

}  // namespace hardsnap::core
