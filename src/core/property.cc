#include "core/property.h"

#include <cctype>
#include <cstring>

#include "common/bitops.h"

namespace hardsnap::core {

struct SignalProperty::Node {
  enum class Op {
    kConst, kSignal,
    kNot, kBitNot, kNeg,
    kOr, kAnd, kBitOr, kBitXor, kBitAnd,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAdd, kSub,
    kImplies,
  };
  Op op = Op::kConst;
  uint64_t value = 0;
  rtl::SignalId signal = rtl::kInvalidId;
  unsigned width = 64;
  NodePtr lhs, rhs;
};

// The parser lives inside the class's implementation to reach Node.
class PropertyParser {
 public:
  PropertyParser(const std::string& src, const rtl::Design& design)
      : src_(src), design_(design) {}

  using Node = SignalProperty::Node;
  using NodePtr = SignalProperty::NodePtr;
  using Op = Node::Op;

  Result<NodePtr> Parse() {
    auto e = ParseImplies();
    if (!e.ok()) return e.status();
    SkipSpace();
    if (pos_ != src_.size())
      return Err("trailing characters after expression");
    return e;
  }

 private:
  Status Err(const std::string& msg) const {
    return ParseError("property '" + src_ + "': " + msg);
  }

  void SkipSpace() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
  }

  bool Eat(const char* tok) {
    SkipSpace();
    const size_t n = std::strlen(tok);
    if (src_.compare(pos_, n, tok) != 0) return false;
    // Avoid eating "<" of "<=" etc.: if tok is a single-char operator that
    // prefixes a longer operator at this position, reject.
    if (n == 1 && pos_ + 1 < src_.size()) {
      const char c = tok[0], next = src_[pos_ + 1];
      if ((c == '<' || c == '>' || c == '!' || c == '=') && next == '=')
        return false;
      if (c == '&' && next == '&') return false;
      if (c == '|' && next == '|') return false;
      if (c == '-' && next == '>') return false;
    }
    pos_ += n;
    return true;
  }

  NodePtr MakeBin(Op op, NodePtr l, NodePtr r) {
    auto n = std::make_unique<Node>();
    n->op = op;
    n->lhs = std::move(l);
    n->rhs = std::move(r);
    return n;
  }

  template <typename Sub>
  Result<NodePtr> LeftChain(Sub sub,
                            std::initializer_list<std::pair<const char*, Op>>
                                ops) {
    auto lhs = sub();
    if (!lhs.ok()) return lhs.status();
    NodePtr node = std::move(lhs).value();
    for (;;) {
      bool matched = false;
      for (const auto& [tok, op] : ops) {
        if (Eat(tok)) {
          auto rhs = sub();
          if (!rhs.ok()) return rhs.status();
          node = MakeBin(op, std::move(node), std::move(rhs).value());
          matched = true;
          break;
        }
      }
      if (!matched) return node;
    }
  }

  Result<NodePtr> ParseImplies() {
    auto lhs = ParseOr();
    if (!lhs.ok()) return lhs.status();
    if (Eat("->")) {
      auto rhs = ParseImplies();  // right associative
      if (!rhs.ok()) return rhs.status();
      return MakeBin(Op::kImplies, std::move(lhs).value(),
                     std::move(rhs).value());
    }
    return lhs;
  }

  Result<NodePtr> ParseOr() {
    return LeftChain([this] { return ParseAnd(); }, {{"||", Op::kOr}});
  }
  Result<NodePtr> ParseAnd() {
    return LeftChain([this] { return ParseBitOr(); }, {{"&&", Op::kAnd}});
  }
  Result<NodePtr> ParseBitOr() {
    return LeftChain([this] { return ParseBitXor(); }, {{"|", Op::kBitOr}});
  }
  Result<NodePtr> ParseBitXor() {
    return LeftChain([this] { return ParseBitAnd(); }, {{"^", Op::kBitXor}});
  }
  Result<NodePtr> ParseBitAnd() {
    return LeftChain([this] { return ParseEq(); }, {{"&", Op::kBitAnd}});
  }
  Result<NodePtr> ParseEq() {
    return LeftChain([this] { return ParseRel(); },
                     {{"==", Op::kEq}, {"!=", Op::kNe}});
  }
  Result<NodePtr> ParseRel() {
    return LeftChain([this] { return ParseAdd(); },
                     {{"<=", Op::kLe}, {">=", Op::kGe},
                      {"<", Op::kLt}, {">", Op::kGt}});
  }
  Result<NodePtr> ParseAdd() {
    return LeftChain([this] { return ParseUnary(); },
                     {{"+", Op::kAdd}, {"-", Op::kSub}});
  }

  Result<NodePtr> ParseUnary() {
    if (Eat("!")) {
      auto sub = ParseUnary();
      if (!sub.ok()) return sub.status();
      auto n = std::make_unique<Node>();
      n->op = Op::kNot;
      n->lhs = std::move(sub).value();
      return n;
    }
    if (Eat("~")) {
      auto sub = ParseUnary();
      if (!sub.ok()) return sub.status();
      auto n = std::make_unique<Node>();
      n->op = Op::kBitNot;
      n->lhs = std::move(sub).value();
      return n;
    }
    if (Eat("-")) {
      auto sub = ParseUnary();
      if (!sub.ok()) return sub.status();
      auto n = std::make_unique<Node>();
      n->op = Op::kNeg;
      n->lhs = std::move(sub).value();
      return n;
    }
    return ParsePrimary();
  }

  Result<NodePtr> ParsePrimary() {
    SkipSpace();
    if (Eat("(")) {
      auto e = ParseImplies();
      if (!e.ok()) return e.status();
      if (!Eat(")")) return Err("expected ')'");
      return e;
    }
    if (pos_ >= src_.size()) return Err("unexpected end of property");
    const char c = src_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      uint64_t value = 0;
      if (pos_ + 1 < src_.size() && c == '0' &&
          (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
        pos_ += 2;
        while (pos_ < src_.size() &&
               std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
          const char d = static_cast<char>(std::tolower(src_[pos_]));
          value = value * 16 +
                  static_cast<uint64_t>(d <= '9' ? d - '0' : d - 'a' + 10);
          ++pos_;
        }
      } else {
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          value = value * 10 + static_cast<uint64_t>(src_[pos_] - '0');
          ++pos_;
        }
      }
      auto n = std::make_unique<Node>();
      n->op = Op::kConst;
      n->value = value;
      return n;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_' || src_[pos_] == '.')) {
        name += src_[pos_++];
      }
      const rtl::SignalId id = design_.FindSignal(name);
      if (id == rtl::kInvalidId)
        return Err("unknown signal '" + name + "'");
      auto n = std::make_unique<Node>();
      n->op = Op::kSignal;
      n->signal = id;
      n->width = design_.signal(id).width;
      return n;
    }
    return Err(std::string("unexpected character '") + c + "'");
  }

  const std::string& src_;
  const rtl::Design& design_;
  size_t pos_ = 0;
};

namespace {

uint64_t EvalNode(const SignalProperty::Node& n, const sim::Simulator& sim) {
  using Op = SignalProperty::Node::Op;
  auto l = [&] { return EvalNode(*n.lhs, sim); };
  auto r = [&] { return EvalNode(*n.rhs, sim); };
  switch (n.op) {
    case Op::kConst: return n.value;
    case Op::kSignal: return sim.PeekId(n.signal);
    case Op::kNot: return l() == 0 ? 1 : 0;
    case Op::kBitNot: return TruncBits(~l(), n.lhs->width);
    case Op::kNeg: return ~l() + 1;
    case Op::kOr: return (l() != 0 || r() != 0) ? 1 : 0;
    case Op::kAnd: return (l() != 0 && r() != 0) ? 1 : 0;
    case Op::kBitOr: return l() | r();
    case Op::kBitXor: return l() ^ r();
    case Op::kBitAnd: return l() & r();
    case Op::kEq: return l() == r() ? 1 : 0;
    case Op::kNe: return l() != r() ? 1 : 0;
    case Op::kLt: return l() < r() ? 1 : 0;
    case Op::kLe: return l() <= r() ? 1 : 0;
    case Op::kGt: return l() > r() ? 1 : 0;
    case Op::kGe: return l() >= r() ? 1 : 0;
    case Op::kAdd: return l() + r();
    case Op::kSub: return l() - r();
    case Op::kImplies: return (l() == 0 || r() != 0) ? 1 : 0;
  }
  return 0;
}

}  // namespace

Result<SignalProperty> SignalProperty::Compile(const std::string& source,
                                               const rtl::Design& design) {
  PropertyParser parser(source, design);
  auto root = parser.Parse();
  if (!root.ok()) return root.status();
  SignalProperty prop;
  prop.source_ = source;
  prop.root_ = std::shared_ptr<const Node>(std::move(root).value().release());
  return prop;
}

bool SignalProperty::Holds(const sim::Simulator& sim) const {
  return EvalNode(*root_, sim) != 0;
}

}  // namespace hardsnap::core
