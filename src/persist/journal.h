// CRC-framed write-ahead journal.
//
// An append-only file of self-delimiting records:
//
//   +----------+----------------+------------------+
//   | u32 len  | u32 crc32(pay) |  payload (len B) |
//   +----------+----------------+------------------+
//
// Append discipline: frame bytes are appended, then the file is fsynced;
// only after the fsync returns is the record "acknowledged" (the caller
// may tell anyone the data is durable). A crash at ANY byte boundary
// leaves a file whose longest valid prefix is exactly the acknowledged
// records — Replay() finds that prefix, hands the records to the caller,
// and truncates the torn tail so the next append starts clean.
//
// The journal knows nothing about record contents; the checkpoint layer
// defines the payload schema (persist/checkpoint.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hardsnap::persist {

// Upper bound on one record. A torn/corrupt length field that happens to
// decode huge must be treated as tail garbage, not as an allocation size.
inline constexpr uint32_t kMaxJournalRecordBytes = 64u << 20;

struct JournalReplay {
  std::vector<std::vector<uint8_t>> records;  // valid prefix, in order
  uint64_t valid_bytes = 0;       // file offset of the first torn byte
  uint64_t truncated_bytes = 0;   // torn tail amputated by recovery
};

class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}

  // Reads every valid record; truncates any torn tail in place. Safe to
  // call on a missing file (no records, nothing truncated).
  Result<JournalReplay> Replay();

  // Appends one framed record and fsyncs. On return the record is durable.
  // `sync=false` skips the fsync (benchmarks only — the durability
  // contract requires it).
  Status Append(const std::vector<uint8_t>& payload, bool sync = true);

  // Truncates the journal to empty (after its contents were compacted
  // into a checkpoint) and makes the truncation durable.
  Status Reset();

  const std::string& path() const { return path_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t appended_records() const { return appended_records_; }

 private:
  std::string path_;
  uint64_t appended_bytes_ = 0;
  uint64_t appended_records_ = 0;
};

}  // namespace hardsnap::persist
