// HSCP checkpoint container + journal record schema.
//
// A checkpoint is the compacted durable image of a running campaign: the
// per-worker progress frontier (credited execs + RNG stream digest — with
// the pure-function replay contract these two values ARE the fuzzer's
// resume point), the shared corpus (edges, offered inputs, acknowledged
// findings), the refcounted SnapshotStore holding each worker's harness
// snapshot (serialized via the existing HSSS/HSSD wire formats: first
// snapshot full, later ones as deltas against the previous), and — for
// symbolic-execution portfolios — the completed per-worker reports.
//
// Layout (every integer little-endian, container CRC32 trailer):
//
//   u32 magic 'HSCP' | u8 version | u8 kind | u64 fingerprint
//   u32 workers | u64vec worker_done | u64vec worker_rng_digest
//   u64vec edges | offers | findings | store blob | symex reports | crc32
//
// The journal (persist/journal.h) carries incremental records with the
// same field encodings; ApplyRecord folds one into a CampaignDurableState
// idempotently, so replaying a journal over a checkpoint that already
// contains some of its records cannot double-count anything.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "campaign/shared_corpus.h"
#include "common/serde.h"
#include "common/status.h"
#include "symex/executor.h"

namespace hardsnap::persist {

inline constexpr uint32_t kCheckpointMagic = 0x48534350;  // "HSCP"
inline constexpr uint8_t kCheckpointFormatVersion = 1;

inline constexpr uint8_t kCampaignKindFuzz = 1;
inline constexpr uint8_t kCampaignKindSymex = 2;

// An input offered to the shared corpus, with the worker that found it.
struct DurableOffer {
  unsigned worker = 0;
  std::vector<uint8_t> input;
};

// In-memory mirror of everything durable. Recovery produces one (last
// valid checkpoint + journal replay); compaction serializes one.
struct CampaignDurableState {
  uint8_t kind = kCampaignKindFuzz;
  uint64_t fingerprint = 0;
  std::vector<uint64_t> worker_done;        // credited execs per worker
  std::vector<uint64_t> worker_rng_digest;  // RNG lane digest at `done`
  std::set<uint64_t> edges;
  std::vector<DurableOffer> offers;
  std::set<std::vector<uint8_t>> seen_inputs;     // offer dedup (derived)
  std::vector<campaign::CampaignFinding> findings;
  std::set<uint32_t> finding_pcs;                 // finding dedup (derived)
  std::vector<uint8_t> store_blob;          // serialized SnapshotStore
  std::map<uint32_t, symex::Report> symex_reports;  // completed workers
};

// One acknowledgment-point record: everything worker `worker` learned in
// the batch that ended at `done` credited execs.
struct FuzzBatchAck {
  uint32_t worker = 0;
  uint64_t done = 0;
  uint64_t rng_digest = 0;
  std::vector<uint64_t> fresh_edges;
  std::vector<std::vector<uint8_t>> new_inputs;
  std::vector<campaign::CampaignFinding> new_findings;
};

// --- container serde -------------------------------------------------------

std::vector<uint8_t> SerializeCheckpoint(const CampaignDurableState& state);
Result<CampaignDurableState> DeserializeCheckpoint(
    const std::vector<uint8_t>& bytes);

// --- journal record serde --------------------------------------------------

std::vector<uint8_t> SerializeFuzzAckRecord(const FuzzBatchAck& ack);
std::vector<uint8_t> SerializeSymexReportRecord(uint32_t worker,
                                                const symex::Report& report);

// Folds one journal record into `state`, idempotently: replaying a record
// the state already contains changes nothing. Records for workers outside
// [0, worker_done.size()) are rejected (a valid CRC does not make a
// record meaningful for this campaign).
Status ApplyRecord(const std::vector<uint8_t>& record,
                   CampaignDurableState* state);

// Field-level serde shared by both layers (exposed for tests).
void PutFinding(ByteWriter* w, const campaign::CampaignFinding& finding);
Result<campaign::CampaignFinding> GetFinding(ByteReader* r);
void PutSymexReport(ByteWriter* w, const symex::Report& report);
Result<symex::Report> GetSymexReport(ByteReader* r);

// FNV-1a accumulator for campaign option fingerprints: a resume against a
// directory written under different options must fail loudly instead of
// silently mixing two incompatible campaigns.
class Fingerprint {
 public:
  void Mix(uint64_t v) {
    h_ ^= v;
    h_ *= 1099511628211ull;
  }
  void MixString(const std::string& s) {
    Mix(s.size());
    for (char c : s) Mix(static_cast<uint8_t>(c));
  }
  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ull;
};

}  // namespace hardsnap::persist
