// Small POSIX filesystem layer under the durability discipline the
// persistence subsystem depends on (docs/checkpoint_resume.md):
//
//   - AtomicWriteFile: write to `<path>.tmp`, fsync the file, rename(2)
//     over `<path>`, fsync the directory. A reader never observes a
//     half-written file at `path` — it sees the old content, the new
//     content, or (before the first write) nothing.
//   - SyncFile / SyncDir: explicit fsync barriers. A journal append is
//     only "acknowledged" once SyncFile returned.
//   - TruncateFile: recovery uses it to amputate a torn journal tail.
//
// Everything returns Status; callers decide whether a failed fsync is
// fatal (for the write-ahead journal it is: no sync, no acknowledgment).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hardsnap::persist {

// Creates `dir` (single level) if it does not exist.
Status EnsureDir(const std::string& dir);

bool FileExists(const std::string& path);

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

// Durable atomic replace: tmp write + fsync + rename + directory fsync.
// On any error the destination is untouched (a stale tmp file may remain;
// recovery ignores and removes `*.tmp`).
Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes);

// Appends `bytes` to `path` (creating it if needed). No implicit sync.
Status AppendToFile(const std::string& path, const std::vector<uint8_t>& bytes);

// fsync barrier on an existing file / directory.
Status SyncFile(const std::string& path);
Status SyncDir(const std::string& dir);

Status TruncateFile(const std::string& path, uint64_t size);

Status RemoveFile(const std::string& path);

Status RenameFile(const std::string& from, const std::string& to);

// Names (not paths) of directory entries, sorted; "." and ".." excluded.
Result<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace hardsnap::persist
