#include "persist/fs_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace hardsnap::persist {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Unavailable(op + " " + path + ": " + std::strerror(errno));
}

// RAII fd so every early return closes.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

Status WriteAll(int fd, const uint8_t* data, size_t n,
                const std::string& path) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    off += static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0) return Status::Ok();
  if (errno == EEXIST) {
    struct stat st{};
    if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
      return Status::Ok();
    return InvalidArgument(dir + " exists and is not a directory");
  }
  return Errno("mkdir", dir);
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  Fd f{::open(path.c_str(), O_RDONLY)};
  if (f.fd < 0) {
    if (errno == ENOENT) return NotFound(path + " does not exist");
    return Errno("open", path);
  }
  std::vector<uint8_t> out;
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(f.fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("read", path);
    }
    if (r == 0) break;
    out.insert(out.end(), buf, buf + r);
  }
  return out;
}

Status SyncFile(const std::string& path) {
  Fd f{::open(path.c_str(), O_RDONLY)};
  if (f.fd < 0) return Errno("open for fsync", path);
  if (::fsync(f.fd) != 0) return Errno("fsync", path);
  return Status::Ok();
}

Status SyncDir(const std::string& dir) {
  Fd f{::open(dir.c_str(), O_RDONLY | O_DIRECTORY)};
  if (f.fd < 0) return Errno("open dir for fsync", dir);
  if (::fsync(f.fd) != 0) return Errno("fsync dir", dir);
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    Fd f{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666)};
    if (f.fd < 0) return Errno("open", tmp);
    HS_RETURN_IF_ERROR(WriteAll(f.fd, bytes.data(), bytes.size(), tmp));
    if (::fsync(f.fd) != 0) return Errno("fsync", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) return Errno("rename", tmp);
  // The rename itself must be durable: fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  return SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

Status AppendToFile(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  Fd f{::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666)};
  if (f.fd < 0) return Errno("open", path);
  return WriteAll(f.fd, bytes.data(), bytes.size(), path);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
    return Errno("truncate", path);
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    return Errno("unlink", path);
  return Status::Ok();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return Status::Ok();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (!d) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace hardsnap::persist
