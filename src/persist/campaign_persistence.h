// Durable campaign state: recovery, acknowledgment, compaction.
//
// On-disk layout of a persistence directory:
//
//   journal.wal              CRC-framed write-ahead journal (journal.h)
//   checkpoint-<seq>.hscp    compacted checkpoints, newest seq wins
//   checkpoint-*.hscp.quarantined   corrupt checkpoints set aside by
//                                   recovery (kept for post-mortem, never
//                                   read again)
//
// Lifecycle:
//
//   Open()      pick the newest checkpoint that deserializes cleanly
//               (quarantining any that do not), replay the journal over
//               it (truncating a torn tail), remove stale *.tmp files.
//   Ack*()      fold the event into the in-memory mirror, then append the
//               journal record and fsync — only after the fsync returns
//               has the campaign "acknowledged" the batch. Every
//               checkpoint_every records the journal is compacted into a
//               fresh checkpoint (atomic tmp+rename+dir-fsync) and reset.
//   Checkpoint() force a compaction (final flush, graceful shutdown).
//
// Thread safety: one mutex serializes all mutating calls; campaign
// workers ack concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/checkpoint.h"
#include "persist/journal.h"
#include "snapshot/snapshot.h"

namespace hardsnap::persist {

struct PersistOptions {
  std::string dir;  // empty = persistence disabled
  // Journal records between compactions (1 = checkpoint on every ack).
  uint64_t checkpoint_every = 16;
  // fsync on every journal append. Turning this off voids the durability
  // contract; it exists so bench_checkpoint can price the fsync itself.
  bool sync = true;
  // --resume semantics: fail if the directory holds no prior state.
  bool resume_required = false;
};

struct PersistStats {
  uint64_t checkpoints_written = 0;
  uint64_t journal_records = 0;     // appended this run
  uint64_t journal_bytes = 0;
  uint64_t recovered_records = 0;   // replayed at Open
  uint64_t truncated_tail_bytes = 0;
  uint64_t quarantined_checkpoints = 0;
  // Wall time spent in the durability path: record serialization, the
  // mirror fold, journal append+fsync, and checkpoint
  // serialize+write+rename+fsync. With persistence off none of this work
  // runs, so this is exactly the time checkpointing steals from
  // fuzzing — the number bench_checkpoint prices.
  double durability_seconds = 0.0;
};

class CampaignPersistence {
 public:
  // Recovers (or initializes) the durable state for a campaign of
  // `workers` workers with the given options fingerprint. Fails with
  // kInvalidArgument when the directory holds a campaign of a different
  // kind/fingerprint/worker count (resuming under changed options would
  // silently mix two incompatible campaigns), and with kNotFound when
  // resume_required and the directory holds no prior state.
  static Result<std::unique_ptr<CampaignPersistence>> Open(
      const PersistOptions& options, uint8_t kind, uint64_t fingerprint,
      uint32_t workers);

  // True when Open found durable state to resume from.
  bool resumed() const { return resumed_; }

  // Snapshot of the recovered/running durable mirror.
  CampaignDurableState state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  // Acknowledge one fuzz batch: fold into the mirror, journal, fsync,
  // maybe compact. On return the batch is durable.
  Status AckFuzzBatch(const FuzzBatchAck& ack);

  // Acknowledge one completed symex worker report.
  Status AckSymexReport(uint32_t worker, const symex::Report& report);

  // Interns a worker's harness snapshot into the durable snapshot store
  // (content-deduped: identical harnesses across workers share chunks).
  // Becomes durable at the next checkpoint.
  Status RecordHarnessSnapshot(const sim::HardwareState& harness,
                               const std::string& label);

  // True when `content_hash` matches a harness snapshot recovered from
  // disk — the resume-time drift check (same firmware, same SoC).
  bool HarnessHashKnown(uint64_t content_hash) const;
  bool HasHarnessSnapshots() const { return store_.size() > 0; }

  // Force a compaction now (final flush / graceful shutdown).
  Status Checkpoint();

  PersistStats stats() const;

  const std::string& dir() const { return dir_; }
  snapshot::SnapshotStore& store() { return store_; }

 private:
  CampaignPersistence(const PersistOptions& options, std::string dir)
      : options_(options),
        dir_(std::move(dir)),
        journal_(dir_ + "/journal.wal") {}

  Status CheckpointLocked();

  PersistOptions options_;
  std::string dir_;
  mutable std::mutex mu_;
  Journal journal_;
  CampaignDurableState state_;
  snapshot::SnapshotStore store_{0};  // harness snapshots (durable)
  bool resumed_ = false;
  uint64_t next_checkpoint_seq_ = 1;
  uint64_t records_since_checkpoint_ = 0;
  PersistStats stats_;
};

}  // namespace hardsnap::persist
