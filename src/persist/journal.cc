#include "persist/journal.h"

#include "common/crc32.h"
#include "common/serde.h"
#include "persist/crash_point.h"
#include "persist/fs_util.h"

namespace hardsnap::persist {

Result<JournalReplay> Journal::Replay() {
  JournalReplay out;
  if (!FileExists(path_)) return out;
  auto bytes = ReadFileBytes(path_);
  if (!bytes.ok()) return bytes.status();
  const std::vector<uint8_t>& buf = bytes.value();

  size_t pos = 0;
  while (buf.size() - pos >= 8) {
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) len |= uint32_t{buf[pos + i]} << (8 * i);
    for (int i = 0; i < 4; ++i) crc |= uint32_t{buf[pos + 4 + i]} << (8 * i);
    if (len > kMaxJournalRecordBytes) break;      // garbage length: torn tail
    if (buf.size() - pos - 8 < len) break;        // payload cut short
    const uint8_t* payload = buf.data() + pos + 8;
    if (Crc32(payload, len) != crc) break;        // payload corrupted
    out.records.emplace_back(payload, payload + len);
    pos += 8 + size_t{len};
  }
  out.valid_bytes = pos;
  out.truncated_bytes = buf.size() - pos;
  if (out.truncated_bytes > 0) {
    // Amputate the torn tail so the next append produces a well-formed
    // file. The truncation must be durable before anything is appended
    // after it, or a second crash could resurrect half the old tail.
    HS_RETURN_IF_ERROR(TruncateFile(path_, out.valid_bytes));
    HS_RETURN_IF_ERROR(SyncFile(path_));
  }
  return out;
}

Status Journal::Append(const std::vector<uint8_t>& payload, bool sync) {
  if (payload.size() > kMaxJournalRecordBytes)
    return InvalidArgument("journal record exceeds the frame size limit");
  MaybeCrash("journal.append.before");
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data(), payload.size()));
  frame.PutBytes(payload.data(), payload.size());
  const std::vector<uint8_t>& bytes = frame.bytes();
  if (ShouldCrashAt("journal.append.torn")) {
    // Simulate a crash mid-write: half the frame reaches the disk. The
    // record was never acknowledged, so recovery must drop it.
    std::vector<uint8_t> half(bytes.begin(),
                              bytes.begin() + bytes.size() / 2);
    (void)AppendToFile(path_, half);
    CrashNow();
  }
  HS_RETURN_IF_ERROR(AppendToFile(path_, bytes));
  MaybeCrash("journal.append.after_write");
  if (sync) HS_RETURN_IF_ERROR(SyncFile(path_));
  MaybeCrash("journal.append.after_sync");
  appended_bytes_ += bytes.size();
  ++appended_records_;
  return Status::Ok();
}

Status Journal::Reset() {
  HS_RETURN_IF_ERROR(TruncateFile(path_, 0));
  return SyncFile(path_);
}

}  // namespace hardsnap::persist
