#include "persist/campaign_persistence.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "persist/crash_point.h"
#include "persist/fs_util.h"
#include "sim/simulator.h"

namespace hardsnap::persist {

namespace {

constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".hscp";

// checkpoint-<seq>.hscp -> seq; false for any other name.
bool ParseCheckpointName(const std::string& name, uint64_t* seq) {
  const std::string prefix = kCheckpointPrefix;
  const std::string suffix = kCheckpointSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

std::string CheckpointPath(const std::string& dir, uint64_t seq) {
  return dir + "/" + kCheckpointPrefix + std::to_string(seq) +
         kCheckpointSuffix;
}

// Accumulates the wall time a scope spends into *sink on exit — used to
// meter the durability path (PersistStats::durability_seconds).
class DurabilityTimer {
 public:
  explicit DurabilityTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~DurabilityTimer() {
    *sink_ += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Result<std::unique_ptr<CampaignPersistence>> CampaignPersistence::Open(
    const PersistOptions& options, uint8_t kind, uint64_t fingerprint,
    uint32_t workers) {
  if (options.dir.empty())
    return InvalidArgument("persistence directory must not be empty");
  if (workers == 0) return InvalidArgument("campaign needs at least 1 worker");
  HS_RETURN_IF_ERROR(EnsureDir(options.dir));

  std::unique_ptr<CampaignPersistence> p(
      new CampaignPersistence(options, options.dir));

  // Sweep the directory: collect checkpoints, drop stale tmp files (an
  // interrupted atomic write leaves them; they were never acknowledged).
  HS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(options.dir));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      (void)RemoveFile(options.dir + "/" + name);
      continue;
    }
    uint64_t seq = 0;
    if (ParseCheckpointName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());  // newest first

  // Newest checkpoint that deserializes cleanly wins; corrupt ones are
  // quarantined (renamed, never read again) and the next older one tried.
  bool have_checkpoint = false;
  for (uint64_t seq : seqs) {
    const std::string path = CheckpointPath(options.dir, seq);
    HS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
    Result<CampaignDurableState> state = DeserializeCheckpoint(bytes);
    if (state.ok()) {
      p->state_ = std::move(state).value();
      p->next_checkpoint_seq_ = seq + 1;
      have_checkpoint = true;
      break;
    }
    HS_RETURN_IF_ERROR(RenameFile(path, path + ".quarantined"));
    HS_RETURN_IF_ERROR(SyncDir(options.dir));
    ++p->stats_.quarantined_checkpoints;
  }

  if (have_checkpoint) {
    if (p->state_.kind != kind)
      return InvalidArgument(
          "persistence directory holds a different campaign kind");
    if (p->state_.fingerprint != fingerprint)
      return InvalidArgument(
          "refusing to resume: campaign options changed (fingerprint "
          "mismatch) — resume with the original seed/workers/options");
    if (p->state_.worker_done.size() != workers)
      return InvalidArgument("refusing to resume: worker count changed");
    if (!p->state_.store_blob.empty())
      HS_RETURN_IF_ERROR(p->store_.Restore(p->state_.store_blob));
    p->resumed_ = true;
  } else {
    p->state_.kind = kind;
    p->state_.fingerprint = fingerprint;
    p->state_.worker_done.assign(workers, 0);
    p->state_.worker_rng_digest.assign(workers, 0);
  }

  // Replay the journal over the checkpoint. ApplyRecord is idempotent, so
  // records the checkpoint already absorbed (crash between checkpoint
  // rename and journal reset) fold in as no-ops.
  HS_ASSIGN_OR_RETURN(JournalReplay replay, p->journal_.Replay());
  for (const auto& record : replay.records)
    HS_RETURN_IF_ERROR(ApplyRecord(record, &p->state_));
  p->stats_.recovered_records = replay.records.size();
  p->stats_.truncated_tail_bytes = replay.truncated_bytes;
  if (!replay.records.empty()) p->resumed_ = true;

  if (options.resume_required && !p->resumed_)
    return NotFound("no campaign state to resume in '" + options.dir + "'");
  return p;
}

Status CampaignPersistence::AckFuzzBatch(const FuzzBatchAck& ack) {
  std::lock_guard<std::mutex> lock(mu_);
  DurabilityTimer t(&stats_.durability_seconds);
  const std::vector<uint8_t> record = SerializeFuzzAckRecord(ack);
  // Same fold for live acks and recovery replay: one code path, one
  // semantics (idempotent), no drift between the two.
  HS_RETURN_IF_ERROR(ApplyRecord(record, &state_));
  HS_RETURN_IF_ERROR(journal_.Append(record, options_.sync));
  if (++records_since_checkpoint_ >= options_.checkpoint_every)
    return CheckpointLocked();
  return Status::Ok();
}

Status CampaignPersistence::AckSymexReport(uint32_t worker,
                                           const symex::Report& report) {
  std::lock_guard<std::mutex> lock(mu_);
  DurabilityTimer t(&stats_.durability_seconds);
  const std::vector<uint8_t> record = SerializeSymexReportRecord(worker, report);
  HS_RETURN_IF_ERROR(ApplyRecord(record, &state_));
  HS_RETURN_IF_ERROR(journal_.Append(record, options_.sync));
  if (++records_since_checkpoint_ >= options_.checkpoint_every)
    return CheckpointLocked();
  return Status::Ok();
}

Status CampaignPersistence::RecordHarnessSnapshot(
    const sim::HardwareState& harness, const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  DurabilityTimer t(&stats_.durability_seconds);
  const uint64_t hash = sim::HashState(harness);
  for (snapshot::SnapshotId id : store_.Ids()) {
    auto existing = store_.ContentHash(id);
    if (existing.ok() && existing.value() == hash) return Status::Ok();
  }
  store_.Put(harness, label);
  return Status::Ok();
}

bool CampaignPersistence::HarnessHashKnown(uint64_t content_hash) const {
  for (snapshot::SnapshotId id : store_.Ids()) {
    auto existing = store_.ContentHash(id);
    if (existing.ok() && existing.value() == content_hash) return true;
  }
  return false;
}

Status CampaignPersistence::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  DurabilityTimer t(&stats_.durability_seconds);
  return CheckpointLocked();
}

Status CampaignPersistence::CheckpointLocked() {
  MaybeCrash("checkpoint.before");
  HS_ASSIGN_OR_RETURN(state_.store_blob, store_.Serialize());
  const std::vector<uint8_t> bytes = SerializeCheckpoint(state_);
  const std::string path = CheckpointPath(dir_, next_checkpoint_seq_);
  const std::string tmp = path + ".tmp";

  if (ShouldCrashAt("checkpoint.torn_tmp")) {
    // Die with half a tmp file on disk: recovery must ignore and remove
    // it (it was never renamed into place, so it was never acknowledged).
    std::vector<uint8_t> half(bytes.begin(), bytes.begin() + bytes.size() / 2);
    (void)AppendToFile(tmp, half);
    CrashNow();
  }
  if (FileExists(tmp)) HS_RETURN_IF_ERROR(RemoveFile(tmp));
  HS_RETURN_IF_ERROR(AppendToFile(tmp, bytes));
  HS_RETURN_IF_ERROR(SyncFile(tmp));
  MaybeCrash("checkpoint.after_tmp");
  HS_RETURN_IF_ERROR(RenameFile(tmp, path));
  HS_RETURN_IF_ERROR(SyncDir(dir_));
  MaybeCrash("checkpoint.after_rename");
  // The journal's records are absorbed into the durable checkpoint; reset
  // it. A crash before the reset is safe: replay over the new checkpoint
  // is idempotent.
  HS_RETURN_IF_ERROR(journal_.Reset());
  MaybeCrash("checkpoint.after_journal_reset");

  // Retire older checkpoints (best effort — a leftover is re-tried or
  // superseded at the next Open, never read in preference to a newer one).
  auto names = ListDir(dir_);
  if (names.ok()) {
    for (const std::string& name : names.value()) {
      uint64_t seq = 0;
      if (ParseCheckpointName(name, &seq) && seq < next_checkpoint_seq_)
        (void)RemoveFile(dir_ + "/" + name);
    }
  }
  ++next_checkpoint_seq_;
  records_since_checkpoint_ = 0;
  ++stats_.checkpoints_written;
  return Status::Ok();
}

PersistStats CampaignPersistence::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PersistStats s = stats_;
  s.journal_records = journal_.appended_records();
  s.journal_bytes = journal_.appended_bytes();
  return s;
}

}  // namespace hardsnap::persist
