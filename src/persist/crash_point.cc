#include "persist/crash_point.h"

#include <unistd.h>

#include <mutex>

namespace hardsnap::persist {

namespace {

struct Registry {
  std::mutex mu;
  std::string armed;     // empty = disarmed
  uint64_t armed_nth = 1;
  uint64_t armed_hits = 0;
  bool counting = false;
  std::map<std::string, uint64_t> hits;
};

Registry& Reg() {
  static Registry* r = new Registry;  // leaked: must survive exit paths
  return *r;
}

}  // namespace

const std::vector<std::string>& AllCrashPoints() {
  static const std::vector<std::string> kPoints = {
      "journal.append.before",       // nothing written yet
      "journal.append.torn",         // half a record on disk
      "journal.append.after_write",  // full record, not yet fsynced
      "journal.append.after_sync",   // record durable, ack not yet returned
      "checkpoint.before",           // compaction about to start
      "checkpoint.torn_tmp",         // partial checkpoint.tmp, no rename
      "checkpoint.after_tmp",        // tmp durable, rename not yet done
      "checkpoint.after_rename",     // new checkpoint live, journal not reset
      "checkpoint.after_journal_reset",  // compaction fully complete
  };
  return kPoints;
}

void ArmCrashPoint(const std::string& name, uint64_t nth) {
  Registry& r = Reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.armed = name;
  r.armed_nth = nth == 0 ? 1 : nth;
  r.armed_hits = 0;
}

void DisarmCrashPoints() {
  Registry& r = Reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.armed.clear();
  r.armed_hits = 0;
}

void SetCrashPointCounting(bool on) {
  Registry& r = Reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.counting = on;
}

std::map<std::string, uint64_t> CrashPointHits() {
  Registry& r = Reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.hits;
}

void ClearCrashPointHits() {
  Registry& r = Reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.hits.clear();
}

bool ShouldCrashAt(const char* name) {
  Registry& r = Reg();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.counting) {
    ++r.hits[name];
    return false;
  }
  if (r.armed.empty() || r.armed != name) return false;
  return ++r.armed_hits == r.armed_nth;
}

void CrashNow() {
  // _exit, not exit/abort: no atexit handlers, no stream flushes, no
  // destructors — the closest a test can get to yanking the power cord.
  ::_exit(kCrashExitCode);
}

}  // namespace hardsnap::persist
