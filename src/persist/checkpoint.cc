#include "persist/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace hardsnap::persist {

namespace {

// Journal record types.
constexpr uint8_t kRecordFuzzAck = 1;
constexpr uint8_t kRecordSymexReport = 2;

void PutByteVector(ByteWriter* w, const std::vector<uint8_t>& v) {
  w->PutU32(static_cast<uint32_t>(v.size()));
  w->PutBytes(v.data(), v.size());
}

Result<std::vector<uint8_t>> GetByteVector(ByteReader* r) {
  auto n = r->GetU32();
  if (!n.ok()) return n.status();
  if (r->remaining() < n.value())
    return OutOfRange("byte vector truncated");
  std::vector<uint8_t> v(n.value());
  HS_RETURN_IF_ERROR(r->GetBytes(v.data(), v.size()));
  return v;
}

void PutDouble(ByteWriter* w, double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  w->PutU64(bits);
}

Result<double> GetDouble(ByteReader* r) {
  auto bits = r->GetU64();
  if (!bits.ok()) return bits.status();
  double d = 0;
  const uint64_t v = bits.value();
  std::memcpy(&d, &v, sizeof d);
  return d;
}

void PutTestCase(ByteWriter* w, const symex::TestCase& tc) {
  w->PutString(tc.origin);
  w->PutU32(static_cast<uint32_t>(tc.inputs.size()));
  for (const auto& [name, value] : tc.inputs) {
    w->PutString(name);
    w->PutU64(value);
  }
}

Result<symex::TestCase> GetTestCase(ByteReader* r) {
  symex::TestCase tc;
  HS_ASSIGN_OR_RETURN(tc.origin, r->GetString());
  auto n = r->GetU32();
  if (!n.ok()) return n.status();
  for (uint32_t i = 0; i < n.value(); ++i) {
    auto name = r->GetString();
    if (!name.ok()) return name.status();
    auto value = r->GetU64();
    if (!value.ok()) return value.status();
    tc.inputs[name.value()] = value.value();
  }
  return tc;
}

void PutLinkStats(ByteWriter* w, const bus::LinkStats& s) {
  w->PutU64(s.frames_sent);
  w->PutU64(s.retransmits);
  w->PutU64(s.drops);
  w->PutU64(s.corruptions);
  w->PutU64(s.crc_rejects);
  w->PutU64(s.stalls);
  w->PutU64(s.outages);
  w->PutU64(s.dedup_hits);
  w->PutU64(s.deadline_breaches);
  w->PutU64(s.failed_ops);
}

Result<bus::LinkStats> GetLinkStats(ByteReader* r) {
  bus::LinkStats s;
  for (uint64_t* field :
       {&s.frames_sent, &s.retransmits, &s.drops, &s.corruptions,
        &s.crc_rejects, &s.stalls, &s.outages, &s.dedup_hits,
        &s.deadline_breaches, &s.failed_ops}) {
    auto v = r->GetU64();
    if (!v.ok()) return v.status();
    *field = v.value();
  }
  return s;
}

// Container CRC discipline, identical to the snapshot blobs: trailer over
// everything before it, verified before any field is trusted.
void AppendCrc(ByteWriter* w) {
  w->PutU32(Crc32(w->bytes().data(), w->bytes().size()));
}

Status VerifyCrc(const std::vector<uint8_t>& bytes, const char* what) {
  if (bytes.size() < 4)
    return DataLoss(std::string(what) + ": too short for a CRC trailer");
  const size_t body = bytes.size() - 4;
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) stored |= uint32_t{bytes[body + i]} << (8 * i);
  if (stored != Crc32(bytes.data(), body))
    return DataLoss(std::string(what) + ": CRC mismatch (corrupt blob)");
  return Status::Ok();
}

}  // namespace

void PutFinding(ByteWriter* w, const campaign::CampaignFinding& finding) {
  w->PutU32(finding.crash.pc);
  w->PutString(finding.crash.reason);
  PutByteVector(w, finding.crash.input);
  w->PutU32(finding.worker);
  w->PutU64(finding.worker_seed);
  w->PutU64(finding.execs_at_find);
}

Result<campaign::CampaignFinding> GetFinding(ByteReader* r) {
  campaign::CampaignFinding f;
  auto pc = r->GetU32();
  if (!pc.ok()) return pc.status();
  f.crash.pc = pc.value();
  HS_ASSIGN_OR_RETURN(f.crash.reason, r->GetString());
  HS_ASSIGN_OR_RETURN(f.crash.input, GetByteVector(r));
  auto worker = r->GetU32();
  if (!worker.ok()) return worker.status();
  f.worker = worker.value();
  auto seed = r->GetU64();
  if (!seed.ok()) return seed.status();
  f.worker_seed = seed.value();
  auto execs = r->GetU64();
  if (!execs.ok()) return execs.status();
  f.execs_at_find = execs.value();
  return f;
}

void PutSymexReport(ByteWriter* w, const symex::Report& report) {
  w->PutU32(static_cast<uint32_t>(report.bugs.size()));
  for (const symex::Bug& bug : report.bugs) {
    w->PutU32(bug.pc);
    w->PutString(bug.kind);
    w->PutString(bug.detail);
    PutTestCase(w, bug.test_case);
  }
  w->PutU32(static_cast<uint32_t>(report.test_cases.size()));
  for (const symex::TestCase& tc : report.test_cases) PutTestCase(w, tc);
  w->PutU64(report.paths_completed);
  w->PutU64(report.paths_exited);
  w->PutU32(static_cast<uint32_t>(report.exit_codes.size()));
  for (uint32_t code : report.exit_codes) w->PutU32(code);
  w->PutU64(report.forks);
  w->PutU64(report.instructions);
  w->PutU64(report.interrupts_served);
  w->PutU64(report.hw_context_switches);
  w->PutU64(report.replayed_instructions);
  w->PutU64(report.reboots);
  w->PutU64(report.concretizations);
  w->PutU64(report.solver_queries);
  w->PutU64(report.covered_pcs);
  w->PutU64(report.snapshot_bytes_copied);
  w->PutU64(report.snapshot_bytes_shared);
  PutDouble(w, report.snapshot_dedup_ratio);
  w->PutU64(static_cast<uint64_t>(report.analysis_hw_time.picos()));
  w->PutU64(static_cast<uint64_t>(report.replay_overhead.picos()));
  PutLinkStats(w, report.link);
  w->PutString(report.console);
}

Result<symex::Report> GetSymexReport(ByteReader* r) {
  symex::Report report;
  auto nbugs = r->GetU32();
  if (!nbugs.ok()) return nbugs.status();
  for (uint32_t i = 0; i < nbugs.value(); ++i) {
    symex::Bug bug;
    auto pc = r->GetU32();
    if (!pc.ok()) return pc.status();
    bug.pc = pc.value();
    HS_ASSIGN_OR_RETURN(bug.kind, r->GetString());
    HS_ASSIGN_OR_RETURN(bug.detail, r->GetString());
    HS_ASSIGN_OR_RETURN(bug.test_case, GetTestCase(r));
    report.bugs.push_back(std::move(bug));
  }
  auto ntc = r->GetU32();
  if (!ntc.ok()) return ntc.status();
  for (uint32_t i = 0; i < ntc.value(); ++i) {
    HS_ASSIGN_OR_RETURN(symex::TestCase tc, GetTestCase(r));
    report.test_cases.push_back(std::move(tc));
  }
  for (uint64_t* field : {&report.paths_completed, &report.paths_exited}) {
    auto v = r->GetU64();
    if (!v.ok()) return v.status();
    *field = v.value();
  }
  auto ncodes = r->GetU32();
  if (!ncodes.ok()) return ncodes.status();
  if (r->remaining() < size_t{ncodes.value()} * 4)
    return OutOfRange("exit code list truncated");
  for (uint32_t i = 0; i < ncodes.value(); ++i) {
    auto code = r->GetU32();
    if (!code.ok()) return code.status();
    report.exit_codes.push_back(code.value());
  }
  for (uint64_t* field :
       {&report.forks, &report.instructions, &report.interrupts_served,
        &report.hw_context_switches, &report.replayed_instructions,
        &report.reboots, &report.concretizations, &report.solver_queries,
        &report.covered_pcs, &report.snapshot_bytes_copied,
        &report.snapshot_bytes_shared}) {
    auto v = r->GetU64();
    if (!v.ok()) return v.status();
    *field = v.value();
  }
  HS_ASSIGN_OR_RETURN(report.snapshot_dedup_ratio, GetDouble(r));
  auto hw_time = r->GetU64();
  if (!hw_time.ok()) return hw_time.status();
  report.analysis_hw_time =
      Duration::Picos(static_cast<int64_t>(hw_time.value()));
  auto overhead = r->GetU64();
  if (!overhead.ok()) return overhead.status();
  report.replay_overhead =
      Duration::Picos(static_cast<int64_t>(overhead.value()));
  HS_ASSIGN_OR_RETURN(report.link, GetLinkStats(r));
  HS_ASSIGN_OR_RETURN(report.console, r->GetString());
  return report;
}

std::vector<uint8_t> SerializeCheckpoint(const CampaignDurableState& state) {
  ByteWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU8(kCheckpointFormatVersion);
  w.PutU8(state.kind);
  w.PutU64(state.fingerprint);
  w.PutU32(static_cast<uint32_t>(state.worker_done.size()));
  w.PutU64Vector(state.worker_done);
  w.PutU64Vector(state.worker_rng_digest);
  w.PutU64Vector({state.edges.begin(), state.edges.end()});
  w.PutU32(static_cast<uint32_t>(state.offers.size()));
  for (const DurableOffer& offer : state.offers) {
    w.PutU32(offer.worker);
    PutByteVector(&w, offer.input);
  }
  w.PutU32(static_cast<uint32_t>(state.findings.size()));
  for (const auto& finding : state.findings) PutFinding(&w, finding);
  PutByteVector(&w, state.store_blob);
  w.PutU32(static_cast<uint32_t>(state.symex_reports.size()));
  for (const auto& [worker, report] : state.symex_reports) {
    w.PutU32(worker);
    PutSymexReport(&w, report);
  }
  AppendCrc(&w);
  return w.Take();
}

Result<CampaignDurableState> DeserializeCheckpoint(
    const std::vector<uint8_t>& bytes) {
  HS_RETURN_IF_ERROR(VerifyCrc(bytes, "checkpoint"));
  ByteReader r(bytes);
  auto magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != kCheckpointMagic)
    return InvalidArgument("not a HardSnap checkpoint (HSCP) blob");
  auto version = r.GetU8();
  if (!version.ok()) return version.status();
  if (version.value() != kCheckpointFormatVersion)
    return InvalidArgument("unsupported HSCP format version " +
                           std::to_string(version.value()));
  CampaignDurableState state;
  auto kind = r.GetU8();
  if (!kind.ok()) return kind.status();
  state.kind = kind.value();
  if (state.kind != kCampaignKindFuzz && state.kind != kCampaignKindSymex)
    return InvalidArgument("unknown campaign kind in checkpoint");
  auto fingerprint = r.GetU64();
  if (!fingerprint.ok()) return fingerprint.status();
  state.fingerprint = fingerprint.value();
  auto workers = r.GetU32();
  if (!workers.ok()) return workers.status();
  HS_ASSIGN_OR_RETURN(state.worker_done, r.GetU64Vector());
  HS_ASSIGN_OR_RETURN(state.worker_rng_digest, r.GetU64Vector());
  if (state.worker_done.size() != workers.value() ||
      state.worker_rng_digest.size() != workers.value())
    return InvalidArgument("checkpoint worker vectors disagree on count");
  HS_ASSIGN_OR_RETURN(std::vector<uint64_t> edges, r.GetU64Vector());
  state.edges.insert(edges.begin(), edges.end());
  auto noffers = r.GetU32();
  if (!noffers.ok()) return noffers.status();
  for (uint32_t i = 0; i < noffers.value(); ++i) {
    DurableOffer offer;
    auto worker = r.GetU32();
    if (!worker.ok()) return worker.status();
    offer.worker = worker.value();
    HS_ASSIGN_OR_RETURN(offer.input, GetByteVector(&r));
    state.seen_inputs.insert(offer.input);
    state.offers.push_back(std::move(offer));
  }
  auto nfindings = r.GetU32();
  if (!nfindings.ok()) return nfindings.status();
  for (uint32_t i = 0; i < nfindings.value(); ++i) {
    HS_ASSIGN_OR_RETURN(campaign::CampaignFinding f, GetFinding(&r));
    state.finding_pcs.insert(f.crash.pc);
    state.findings.push_back(std::move(f));
  }
  HS_ASSIGN_OR_RETURN(state.store_blob, GetByteVector(&r));
  auto nreports = r.GetU32();
  if (!nreports.ok()) return nreports.status();
  for (uint32_t i = 0; i < nreports.value(); ++i) {
    auto worker = r.GetU32();
    if (!worker.ok()) return worker.status();
    HS_ASSIGN_OR_RETURN(symex::Report report, GetSymexReport(&r));
    state.symex_reports.emplace(worker.value(), std::move(report));
  }
  if (r.remaining() != 4)  // exactly the CRC trailer must remain
    return InvalidArgument("trailing bytes in checkpoint blob");
  return state;
}

std::vector<uint8_t> SerializeFuzzAckRecord(const FuzzBatchAck& ack) {
  ByteWriter w;
  w.PutU8(kRecordFuzzAck);
  w.PutU32(ack.worker);
  w.PutU64(ack.done);
  w.PutU64(ack.rng_digest);
  w.PutU64Vector(ack.fresh_edges);
  w.PutU32(static_cast<uint32_t>(ack.new_inputs.size()));
  for (const auto& input : ack.new_inputs) PutByteVector(&w, input);
  w.PutU32(static_cast<uint32_t>(ack.new_findings.size()));
  for (const auto& finding : ack.new_findings) PutFinding(&w, finding);
  return w.Take();
}

std::vector<uint8_t> SerializeSymexReportRecord(uint32_t worker,
                                                const symex::Report& report) {
  ByteWriter w;
  w.PutU8(kRecordSymexReport);
  w.PutU32(worker);
  PutSymexReport(&w, report);
  return w.Take();
}

Status ApplyRecord(const std::vector<uint8_t>& record,
                   CampaignDurableState* state) {
  ByteReader r(record);
  auto type = r.GetU8();
  if (!type.ok()) return type.status();
  switch (type.value()) {
    case kRecordFuzzAck: {
      auto worker = r.GetU32();
      if (!worker.ok()) return worker.status();
      if (worker.value() >= state->worker_done.size())
        return InvalidArgument("journal record for out-of-range worker");
      auto done = r.GetU64();
      if (!done.ok()) return done.status();
      auto rng = r.GetU64();
      if (!rng.ok()) return rng.status();
      HS_ASSIGN_OR_RETURN(std::vector<uint64_t> edges, r.GetU64Vector());
      auto ninputs = r.GetU32();
      if (!ninputs.ok()) return ninputs.status();
      std::vector<std::vector<uint8_t>> inputs;
      for (uint32_t i = 0; i < ninputs.value(); ++i) {
        HS_ASSIGN_OR_RETURN(std::vector<uint8_t> input, GetByteVector(&r));
        inputs.push_back(std::move(input));
      }
      auto nfindings = r.GetU32();
      if (!nfindings.ok()) return nfindings.status();
      std::vector<campaign::CampaignFinding> findings;
      for (uint32_t i = 0; i < nfindings.value(); ++i) {
        HS_ASSIGN_OR_RETURN(campaign::CampaignFinding f, GetFinding(&r));
        findings.push_back(std::move(f));
      }
      if (!r.AtEnd()) return InvalidArgument("trailing bytes in ack record");
      // Idempotent fold: progress is a max, everything else dedups.
      if (done.value() >= state->worker_done[worker.value()]) {
        state->worker_done[worker.value()] = done.value();
        state->worker_rng_digest[worker.value()] = rng.value();
      }
      state->edges.insert(edges.begin(), edges.end());
      for (auto& input : inputs)
        if (state->seen_inputs.insert(input).second)
          state->offers.push_back({worker.value(), std::move(input)});
      for (auto& finding : findings)
        if (state->finding_pcs.insert(finding.crash.pc).second)
          state->findings.push_back(std::move(finding));
      return Status::Ok();
    }
    case kRecordSymexReport: {
      auto worker = r.GetU32();
      if (!worker.ok()) return worker.status();
      if (worker.value() >= state->worker_done.size())
        return InvalidArgument("journal record for out-of-range worker");
      HS_ASSIGN_OR_RETURN(symex::Report report, GetSymexReport(&r));
      if (!r.AtEnd())
        return InvalidArgument("trailing bytes in symex record");
      state->symex_reports.emplace(worker.value(), std::move(report));
      state->worker_done[worker.value()] = 1;  // completed marker
      return Status::Ok();
    }
    default:
      return InvalidArgument("unknown journal record type " +
                             std::to_string(type.value()));
  }
}

}  // namespace hardsnap::persist
