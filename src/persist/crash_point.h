// Crash-injection hooks for the durability layer.
//
// Every spot in the journal/checkpoint code where a host crash (power
// loss, OOM kill, kill -9) could leave persistent state half-written is
// marked with MaybeCrash("<point>"). In production the hooks are
// branch-predicted-away no-ops. The crash-matrix test
// (tests/checkpoint_resume_test.cc) forks a child per registered point,
// arms that point, runs a persisted campaign until the process dies at
// the hook (via _exit — no destructors, no flushes, exactly like a
// kill), then recovers in the parent and asserts that no acknowledged
// finding was lost, none was double-counted, and every surviving blob
// passes CRC verification.
//
// Torn writes are crash points too: the "torn" points make the caller
// write a deliberately truncated record/file before dying, so recovery's
// truncate-the-tail and ignore-the-tmp paths are exercised by the same
// matrix.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hardsnap::persist {

// Exit code of a process that died at an armed crash point. Distinct from
// every exit code the campaign itself can produce, so the test driver can
// tell "died at the hook" from "completed" or "failed for another reason".
inline constexpr int kCrashExitCode = 93;

// Canonical list of every crash point wired into the persistence code.
// The matrix test iterates this; CrashPointsAreAllReachable (counting
// mode) asserts each name is actually hit by a persisted campaign, so the
// list cannot silently drift from the code.
const std::vector<std::string>& AllCrashPoints();

// Arm: the `nth` time `name` is hit, the process _exits(kCrashExitCode).
// Only one point may be armed at a time (the matrix runs one per fork).
void ArmCrashPoint(const std::string& name, uint64_t nth = 1);
void DisarmCrashPoints();

// Counting mode: hooks never crash, they only tally hits (CrashPointHits).
void SetCrashPointCounting(bool on);
std::map<std::string, uint64_t> CrashPointHits();
void ClearCrashPointHits();

// True when this hit is the armed one and the caller should now die.
// Callers that simulate torn writes perform their partial write between
// ShouldCrashAt() and CrashNow().
bool ShouldCrashAt(const char* name);
[[noreturn]] void CrashNow();

// The common case: die here, now, with nothing half-done by the caller.
inline void MaybeCrash(const char* name) {
  if (ShouldCrashAt(name)) CrashNow();
}

}  // namespace hardsnap::persist
