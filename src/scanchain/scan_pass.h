// Scan-chain instrumentation pass (paper Sec. IV-A, path B.1).
//
// Rewrites an elaborated Design so that every flip-flop is threaded onto a
// serial scan chain, and every memory gains a word-granular test access
// port. The transformation is RTL-to-RTL and therefore independent of the
// downstream target (FPGA bitstream or simulator), exactly as in the paper
// ("the instrumentation is done directly at the RTL level, ... therefore
// independent from the FPGA toolchain").
//
// Added interface on the instrumented design:
//   input  scan_enable      1 = shift mode (functional FF updates frozen,
//                           functional memory writes gated off)
//   input  scan_in          serial data in
//   output scan_out         serial data out
//   input  scan_hold        1 = freeze all chained flip-flops (clock-gate
//                           equivalent); asserted by the controller during
//                           word-serial memory access so register state
//                           cannot drift while the arrays are dumped
// and per memory `m` (name dots flattened to '_'):
//   input  scan_<m>_en      1 = test port owns the memory
//   input  scan_<m>_addr    word address
//   input  scan_<m>_wdata   write data
//   input  scan_<m>_wen     write strobe (synchronous)
//   output scan_<m>_rdata   asynchronous read data
//
// Chain topology: flip-flops are chained in their declaration order; inside
// a W-bit register the bit path is q[0] -> q[1] -> ... -> q[W-1], and
// q[W-1] feeds the next register (or scan_out). One full save/restore is a
// single pass of `total_bits` shift cycles: the old state drains out of
// scan_out while the new state enters through scan_in.
//
// The pass can be scoped to a sub-component (paper: "User-defined
// parameters allow to limit the instrumentation to a sub-component"):
// only flops/memories whose hierarchical name starts with `scope_prefix`
// are instrumented; the rest keep functional behaviour but are not
// snapshotable.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "rtl/ir.h"

namespace hardsnap::scanchain {

struct ScanOptions {
  std::string scope_prefix;  // empty = instrument everything
};

// Describes one flip-flop on the chain, in shift order.
struct ChainSlot {
  std::string signal_name;
  unsigned width = 0;
  size_t flop_index = 0;  // index into Design::flops() of the instrumented
                          // design (same order as the original)
};

// Describes one memory with a test access port.
struct MemPort {
  std::string memory_name;
  std::string port_prefix;  // "scan_<sanitized>" signal name prefix
  unsigned width = 0;
  unsigned depth = 0;
  rtl::MemoryId memory = rtl::kInvalidId;
};

// The instrumentation report: everything a snapshot controller needs to
// drive the chain, plus the area-overhead numbers for experiment E3.
struct ScanChainMap {
  std::vector<ChainSlot> slots;     // shift order (scan_in side first)
  std::vector<MemPort> mem_ports;
  unsigned total_bits = 0;          // chain length in bits
  unsigned total_mem_words = 0;

  // Overhead accounting (instrumented vs original design).
  rtl::DesignStats original_stats;
  rtl::DesignStats instrumented_stats;
};

struct InstrumentedDesign {
  rtl::Design design;
  ScanChainMap map;
};

// Instrument `input` (which is not modified). Fails if the design already
// has signals named scan_enable/scan_in/scan_out.
Result<InstrumentedDesign> InsertScanChain(const rtl::Design& input,
                                           const ScanOptions& options = {});

}  // namespace hardsnap::scanchain
