#include "scanchain/scan_controller.h"

#include <vector>

#include "common/bitops.h"

namespace hardsnap::scanchain {

using sim::HardwareState;

ScanController::ScanController(sim::Simulator* sim, const ScanChainMap& map)
    : sim_(sim), map_(&map) {
  const auto& d = sim->design();
  scan_enable_ = d.FindSignal("scan_enable");
  scan_in_ = d.FindSignal("scan_in");
  scan_out_ = d.FindSignal("scan_out");
  scan_hold_ = d.FindSignal("scan_hold");
  HS_CHECK_MSG(scan_enable_ != rtl::kInvalidId &&
                   scan_in_ != rtl::kInvalidId &&
                   scan_out_ != rtl::kInvalidId &&
                   scan_hold_ != rtl::kInvalidId,
               "simulator is not running an instrumented design");
}

Status ScanController::CheckShape(const HardwareState& st) const {
  if (st.flops.size() != sim_->design().flops().size())
    return InvalidArgument("state flop count does not match design");
  if (st.memories.size() != sim_->design().memories().size())
    return InvalidArgument("state memory count does not match design");
  return Status::Ok();
}

Result<HardwareState> ScanController::SaveRestore(
    const HardwareState& new_state) {
  HS_RETURN_IF_ERROR(CheckShape(new_state));
  const unsigned n = map_->total_bits;

  // Chain position p holds: slot s bit j, where p = offset(s) + j.
  // To land desired bit v_p at position p we must feed v_{n-1-t} at shift
  // cycle t; symmetrically scan_out at cycle t emits old bit n-1-t.
  std::vector<uint8_t> feed(n), captured(n);
  {
    unsigned p = 0;
    for (const auto& slot : map_->slots) {
      uint64_t v = new_state.flops[slot.flop_index];
      for (unsigned j = 0; j < slot.width; ++j, ++p)
        feed[n - 1 - p] = static_cast<uint8_t>((v >> j) & 1);
    }
  }

  HS_RETURN_IF_ERROR(sim_->PokeInput(scan_enable_, 1));
  for (unsigned t = 0; t < n; ++t) {
    captured[t] = static_cast<uint8_t>(sim_->PeekId(scan_out_));
    HS_RETURN_IF_ERROR(sim_->PokeInput(scan_in_, feed[t]));
    sim_->Tick(1);
  }
  HS_RETURN_IF_ERROR(sim_->PokeInput(scan_enable_, 0));

  // Decode the captured old register state.
  HardwareState old = new_state;  // correct shape; values overwritten below
  for (auto& f : old.flops) f = 0;
  {
    unsigned p = 0;
    for (const auto& slot : map_->slots) {
      uint64_t v = 0;
      for (unsigned j = 0; j < slot.width; ++j, ++p)
        if (captured[n - 1 - p]) v |= uint64_t{1} << j;
      old.flops[slot.flop_index] = v;
    }
  }

  // Memories: word-at-a-time through the test port (save + swap in the new
  // contents in the same pass). scan_hold freezes the registers we just
  // loaded while the clock ticks for the word-serial phase.
  for (size_t m = 0; m < old.memories.size(); ++m)
    for (auto& w : old.memories[m]) w = 0;
  HS_RETURN_IF_ERROR(sim_->PokeInput(scan_hold_, 1));
  for (const auto& mp : map_->mem_ports) {
    HS_RETURN_IF_ERROR(sim_->PokeInput(mp.port_prefix + "_en", 1));
    HS_RETURN_IF_ERROR(sim_->PokeInput(mp.port_prefix + "_wen", 1));
    for (unsigned w = 0; w < mp.depth; ++w) {
      HS_RETURN_IF_ERROR(sim_->PokeInput(mp.port_prefix + "_addr", w));
      auto rd = sim_->Peek(mp.port_prefix + "_rdata");
      if (!rd.ok()) return rd.status();
      old.memories[mp.memory][w] = rd.value();
      HS_RETURN_IF_ERROR(sim_->PokeInput(mp.port_prefix + "_wdata",
                                         new_state.memories[mp.memory][w]));
      sim_->Tick(1);
    }
    HS_RETURN_IF_ERROR(sim_->PokeInput(mp.port_prefix + "_wen", 0));
    HS_RETURN_IF_ERROR(sim_->PokeInput(mp.port_prefix + "_en", 0));
  }
  HS_RETURN_IF_ERROR(sim_->PokeInput(scan_hold_, 0));
  return old;
}

Result<HardwareState> ScanController::Save() {
  const unsigned n = map_->total_bits;
  std::vector<uint8_t> captured(n);

  // Loop scan_out back into scan_in: after exactly n cycles every bit has
  // made a full round trip and the register file is unchanged.
  HS_RETURN_IF_ERROR(sim_->PokeInput(scan_enable_, 1));
  for (unsigned t = 0; t < n; ++t) {
    uint64_t bit = sim_->PeekId(scan_out_);
    captured[t] = static_cast<uint8_t>(bit);
    HS_RETURN_IF_ERROR(sim_->PokeInput(scan_in_, bit));
    sim_->Tick(1);
  }
  HS_RETURN_IF_ERROR(sim_->PokeInput(scan_enable_, 0));

  HardwareState st;
  st.flops.assign(sim_->design().flops().size(), 0);
  st.memories.resize(sim_->design().memories().size());
  for (size_t m = 0; m < st.memories.size(); ++m)
    st.memories[m].assign(sim_->design().memories()[m].depth, 0);

  unsigned p = 0;
  for (const auto& slot : map_->slots) {
    uint64_t v = 0;
    for (unsigned j = 0; j < slot.width; ++j, ++p)
      if (captured[n - 1 - p]) v |= uint64_t{1} << j;
    st.flops[slot.flop_index] = v;
  }

  // Memories: non-destructive reads through the test port (one cycle per
  // word of fabric time; the port write strobe stays low). Registers are
  // frozen via scan_hold while the clock ticks.
  HS_RETURN_IF_ERROR(sim_->PokeInput(scan_hold_, 1));
  for (const auto& mp : map_->mem_ports) {
    HS_RETURN_IF_ERROR(sim_->PokeInput(mp.port_prefix + "_en", 1));
    for (unsigned w = 0; w < mp.depth; ++w) {
      HS_RETURN_IF_ERROR(sim_->PokeInput(mp.port_prefix + "_addr", w));
      auto rd = sim_->Peek(mp.port_prefix + "_rdata");
      if (!rd.ok()) return rd.status();
      st.memories[mp.memory][w] = rd.value();
      sim_->Tick(1);
    }
    HS_RETURN_IF_ERROR(sim_->PokeInput(mp.port_prefix + "_en", 0));
  }
  HS_RETURN_IF_ERROR(sim_->PokeInput(scan_hold_, 0));
  return st;
}

Status ScanController::Restore(const HardwareState& state) {
  auto old = SaveRestore(state);
  return old.status();
}

}  // namespace hardsnap::scanchain
