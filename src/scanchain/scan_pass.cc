#include "scanchain/scan_pass.h"

#include <algorithm>

#include "common/bitops.h"

namespace hardsnap::scanchain {

using rtl::Design;
using rtl::ExprId;
using rtl::FlipFlop;
using rtl::MemWrite;
using rtl::Op;
using rtl::SignalId;
using rtl::SignalKind;

namespace {

std::string Sanitize(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

}  // namespace

Result<InstrumentedDesign> InsertScanChain(const Design& input,
                                           const ScanOptions& options) {
  HS_RETURN_IF_ERROR(input.Validate());
  for (const char* reserved :
       {"scan_enable", "scan_in", "scan_out", "scan_hold"}) {
    if (input.FindSignal(reserved) != rtl::kInvalidId)
      return FailedPrecondition(std::string("design already has a signal '") +
                                reserved + "'");
  }

  InstrumentedDesign out{input, {}};  // start from a copy
  Design& d = out.design;
  ScanChainMap& map = out.map;
  map.original_stats = input.Stats();

  const SignalId scan_enable =
      d.AddSignal("scan_enable", 1, SignalKind::kInput);
  const SignalId scan_in = d.AddSignal("scan_in", 1, SignalKind::kInput);
  const SignalId scan_out = d.AddSignal("scan_out", 1, SignalKind::kOutput);
  // scan_hold freezes every chained flip-flop (clock-gating equivalent);
  // the snapshot controller asserts it while it owns the memory test ports
  // so that register state cannot drift during the word-serial phase.
  const SignalId scan_hold = d.AddSignal("scan_hold", 1, SignalKind::kInput);

  auto in_scope = [&](const std::string& name) {
    return options.scope_prefix.empty() ||
           name.rfind(options.scope_prefix, 0) == 0;
  };

  // --- thread the flip-flop chain -----------------------------------------
  // prev = the serial bit arriving at the current chain position.
  ExprId prev = d.Sig(scan_in);
  ExprId se = d.Sig(scan_enable);
  ExprId hold = d.Sig(scan_hold);
  auto& flops = d.mutable_flops();
  for (size_t i = 0; i < flops.size(); ++i) {
    FlipFlop& ff = flops[i];
    const auto& sig = d.signal(ff.q);
    if (!in_scope(sig.name)) continue;

    const unsigned w = sig.width;
    ExprId q = d.Sig(ff.q);
    ExprId shifted;
    if (w == 1) {
      shifted = prev;
    } else {
      // {q[W-2:0], prev}: bits move toward the MSB each shift cycle.
      shifted = d.Concat({d.Slice(q, w - 2, 0), prev});
    }
    ff.next = d.Mux(hold, q, d.Mux(se, shifted, ff.next));
    prev = w == 1 ? q : d.Slice(q, w - 1, w - 1);

    map.slots.push_back(ChainSlot{sig.name, w, i});
    map.total_bits += w;
  }
  d.AddComb(scan_out, prev);

  // --- memory test ports ----------------------------------------------------
  // Gate all pre-existing functional memory writes off while the chain is
  // shifting: with scan_enable=1 the functional combinational logic sees
  // shifting garbage and must not corrupt the arrays.
  const size_t num_functional_writes = d.mem_writes().size();
  for (size_t i = 0; i < num_functional_writes; ++i) {
    auto& w = d.mutable_mem_writes()[i];
    ExprId quiesced = d.Binary(Op::kLogicOr, se, hold);
    w.enable = d.Binary(Op::kLogicAnd, w.enable,
                        d.Unary(Op::kLogicNot, quiesced));
  }

  for (rtl::MemoryId m = 0;
       m < static_cast<rtl::MemoryId>(d.memories().size()); ++m) {
    const auto& mem = d.memory(m);
    if (!in_scope(mem.name)) continue;
    const std::string prefix = "scan_" + Sanitize(mem.name);
    const unsigned abits = BitsFor(mem.depth);

    SignalId en = d.AddSignal(prefix + "_en", 1, SignalKind::kInput);
    SignalId addr = d.AddSignal(prefix + "_addr", abits, SignalKind::kInput);
    SignalId wdata =
        d.AddSignal(prefix + "_wdata", mem.width, SignalKind::kInput);
    SignalId wen = d.AddSignal(prefix + "_wen", 1, SignalKind::kInput);
    SignalId rdata =
        d.AddSignal(prefix + "_rdata", mem.width, SignalKind::kOutput);

    // Asynchronous read port for the snapshot controller.
    d.AddComb(rdata, d.MemRead(m, d.Sig(addr)));

    // Synchronous write port, active only when the test port owns the
    // memory.
    MemWrite mw;
    mw.memory = m;
    mw.enable = d.Binary(Op::kLogicAnd, d.Sig(en), d.Sig(wen));
    mw.addr = d.Sig(addr);
    mw.data = d.Sig(wdata);
    d.AddMemWrite(mw);

    // Functional writes to this memory are additionally disabled while the
    // test port owns it.
    for (size_t i = 0; i < num_functional_writes; ++i) {
      auto& w = d.mutable_mem_writes()[i];
      if (w.memory == m) {
        w.enable = d.Binary(Op::kLogicAnd, w.enable,
                            d.Unary(Op::kLogicNot, d.Sig(en)));
      }
    }

    map.mem_ports.push_back(
        MemPort{mem.name, prefix, mem.width, mem.depth, m});
    map.total_mem_words += mem.depth;
  }

  HS_RETURN_IF_ERROR(d.Validate());
  map.instrumented_stats = d.Stats();
  return out;
}

}  // namespace hardsnap::scanchain
