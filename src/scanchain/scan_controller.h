// Scan-chain controller: drives the serial chain inserted by
// InsertScanChain to save/restore hardware state.
//
// This is the software model of the paper's on-fabric snapshot "IP"
// (Sec. III-C): it owns the scan_enable/scan_in/scan_out pins and the
// per-memory test ports of an *instrumented* design and implements:
//
//   SaveRestore(new) -> old   one full pass: while the new state shifts in
//                             through scan_in, the old state drains out of
//                             scan_out. Cost: total_bits shift cycles +
//                             total_mem_words port cycles.
//   Save() -> state           non-destructive: scan_out is looped back into
//                             scan_in, so after exactly total_bits cycles
//                             the registers hold their original values.
//   Restore(state)            one pass, discarding the outgoing state.
//
// The controller operates on a Simulator executing the instrumented
// netlist. The emulated-FPGA target wraps this controller and charges the
// fabric-clock virtual time; the cycle counts here are therefore exactly
// the paper's scan-chain latency model (linear in state bits).
//
// Scoped instrumentation caveat: flip-flops outside the instrumented scope
// keep running functionally during the shift pass (their inputs see
// shifting garbage), just like on a real part. Only chained state is
// captured/restored.
#pragma once

#include "common/status.h"
#include "scanchain/scan_pass.h"
#include "sim/simulator.h"

namespace hardsnap::scanchain {

class ScanController {
 public:
  // `sim` must execute the instrumented design the map was produced for.
  ScanController(sim::Simulator* sim, const ScanChainMap& map);

  // Cycle cost of one full save/restore pass (registers + memories).
  uint64_t PassCycles() const {
    return map_->total_bits + map_->total_mem_words;
  }

  // Shift `new_state` in while capturing the outgoing state.
  // `new_state` must have the shape of the instrumented design's state.
  Result<sim::HardwareState> SaveRestore(const sim::HardwareState& new_state);

  // Capture the current state without disturbing it (loopback shifting).
  Result<sim::HardwareState> Save();

  // Load `state`, discarding whatever the hardware held.
  Status Restore(const sim::HardwareState& state);

 private:
  Status CheckShape(const sim::HardwareState& st) const;

  sim::Simulator* sim_;
  const ScanChainMap* map_;
  rtl::SignalId scan_enable_;
  rtl::SignalId scan_in_;
  rtl::SignalId scan_out_;
  rtl::SignalId scan_hold_;
};

}  // namespace hardsnap::scanchain
