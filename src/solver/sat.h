// CDCL SAT solver — the decision core under HardSnap's bitvector solver
// (the role STP/Z3 plays under KLEE in the paper's prototype).
//
// Scope: one-shot solving. The bit-blaster creates a fresh solver per
// query, adds variables and clauses, then calls Solve() once and reads the
// model. Implements the standard modern kernel: two-watched-literal
// propagation, first-UIP conflict learning, activity-driven branching
// (VSIDS-style with decay), phase saving and geometric restarts. No
// preprocessing or clause-database reduction — HardSnap's queries are
// 32-bit path conditions, small by SAT standards.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace hardsnap::solver {

using Var = int32_t;
using Lit = int32_t;  // 2*var + (negated ? 1 : 0)

inline Lit MkLit(Var v, bool negated = false) {
  return 2 * v + (negated ? 1 : 0);
}
inline Lit NegLit(Lit l) { return l ^ 1; }
inline Var VarOf(Lit l) { return l >> 1; }
inline bool IsNeg(Lit l) { return l & 1; }

enum class SatResult { kSat, kUnsat };

class SatSolver {
 public:
  SatSolver() = default;

  Var NewVar();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  // Add a clause over existing variables. Tautologies are dropped,
  // duplicate literals removed. An empty clause makes the instance
  // trivially unsatisfiable.
  void AddClause(std::vector<Lit> lits);

  SatResult Solve();

  // Model access, valid after Solve() returned kSat.
  bool ValueOf(Var v) const { return assigns_[v] == 1; }

  // Statistics (exposed for the solver benchmarks).
  uint64_t num_conflicts() const { return conflicts_; }
  uint64_t num_decisions() const { return decisions_; }
  uint64_t num_propagations() const { return propagations_; }

 private:
  static constexpr int kUndef = -1;

  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
  };

  struct Watcher {
    int32_t clause = -1;
    Lit blocker = 0;
  };

  // lbool encoding: -1 unassigned, 0 false, 1 true.
  int8_t LitValue(Lit l) const {
    int8_t v = assigns_[VarOf(l)];
    if (v < 0) return -1;
    return IsNeg(l) ? static_cast<int8_t>(1 - v) : v;
  }

  void Enqueue(Lit l, int32_t reason);
  int32_t Propagate();  // returns conflicting clause index or -1
  void Analyze(int32_t conflict, std::vector<Lit>* learned, int* bt_level);
  void Backtrack(int level);
  Lit Decide();
  void BumpVar(Var v);
  void DecayActivities();
  void AttachClause(int32_t idx);

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  std::vector<int8_t> assigns_;                // per var
  std::vector<int8_t> phase_;                  // saved polarity per var
  std::vector<int32_t> reason_;                // per var, clause index
  std::vector<int32_t> level_;                 // per var
  std::vector<double> activity_;               // per var
  std::vector<Lit> trail_;
  std::vector<int32_t> trail_lim_;
  size_t qhead_ = 0;
  double var_inc_ = 1.0;
  bool unsat_ = false;

  uint64_t conflicts_ = 0;
  uint64_t decisions_ = 0;
  uint64_t propagations_ = 0;

  std::vector<uint8_t> seen_;  // scratch for Analyze
};

}  // namespace hardsnap::solver
