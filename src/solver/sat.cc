#include "solver/sat.h"

#include <algorithm>
#include <cmath>

namespace hardsnap::solver {

Var SatSolver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(-1);
  phase_.push_back(0);
  reason_.push_back(kUndef);
  level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void SatSolver::AddClause(std::vector<Lit> lits) {
  if (unsat_) return;
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i] == NegLit(lits[i + 1])) return;  // tautology
  }
  // Remove literals already false at level 0; satisfied clause -> drop.
  std::vector<Lit> pruned;
  for (Lit l : lits) {
    int8_t v = LitValue(l);
    if (v == 1 && level_[VarOf(l)] == 0) return;
    if (v == 0 && level_[VarOf(l)] == 0) continue;
    pruned.push_back(l);
  }
  if (pruned.empty()) {
    unsat_ = true;
    return;
  }
  if (pruned.size() == 1) {
    if (LitValue(pruned[0]) == 0) {
      unsat_ = true;
      return;
    }
    if (LitValue(pruned[0]) == -1) {
      Enqueue(pruned[0], kUndef);
      if (Propagate() != -1) unsat_ = true;
    }
    return;
  }
  clauses_.push_back(Clause{std::move(pruned), false});
  AttachClause(static_cast<int32_t>(clauses_.size() - 1));
}

void SatSolver::AttachClause(int32_t idx) {
  const auto& c = clauses_[idx].lits;
  watches_[NegLit(c[0])].push_back(Watcher{idx, c[1]});
  watches_[NegLit(c[1])].push_back(Watcher{idx, c[0]});
}

void SatSolver::Enqueue(Lit l, int32_t reason) {
  const Var v = VarOf(l);
  assigns_[v] = IsNeg(l) ? 0 : 1;
  reason_[v] = reason;
  level_[v] = static_cast<int32_t>(trail_lim_.size());
  trail_.push_back(l);
}

int32_t SatSolver::Propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations_;
    auto& ws = watches_[p];
    size_t i = 0, j = 0;
    int32_t conflict = -1;
    while (i < ws.size()) {
      Watcher w = ws[i];
      if (LitValue(w.blocker) == 1) {
        ws[j++] = ws[i++];
        continue;
      }
      auto& lits = clauses_[w.clause].lits;
      // Make sure the false literal (~p) is lits[1].
      const Lit false_lit = NegLit(p);
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      // lits[1] == false_lit now.
      if (LitValue(lits[0]) == 1) {
        ws[j++] = Watcher{w.clause, lits[0]};
        ++i;
        continue;
      }
      // Look for a new watch.
      bool moved = false;
      for (size_t k = 2; k < lits.size(); ++k) {
        if (LitValue(lits[k]) != 0) {
          std::swap(lits[1], lits[k]);
          watches_[NegLit(lits[1])].push_back(Watcher{w.clause, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;  // watcher removed from this list
        continue;
      }
      // Unit or conflict.
      if (LitValue(lits[0]) == 0) {
        conflict = w.clause;
        // Copy the remaining watchers and stop.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = trail_.size();
        return conflict;
      }
      Enqueue(lits[0], w.clause);
      ws[j++] = ws[i++];
    }
    ws.resize(j);
  }
  return -1;
}

void SatSolver::Analyze(int32_t conflict, std::vector<Lit>* learned,
                        int* bt_level) {
  learned->clear();
  learned->push_back(0);  // slot for the asserting literal
  int counter = 0;
  Lit p = 0;
  bool have_p = false;
  size_t trail_index = trail_.size();
  const int current_level = static_cast<int>(trail_lim_.size());

  int32_t reason_clause = conflict;
  for (;;) {
    HS_CHECK(reason_clause != kUndef);
    const auto& lits = clauses_[reason_clause].lits;
    // Skip lits[0] when it is the literal we are resolving on.
    for (size_t i = have_p ? 1 : 0; i < lits.size(); ++i) {
      const Lit q = lits[i];
      const Var v = VarOf(q);
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      BumpVar(v);
      if (level_[v] == current_level) {
        ++counter;
      } else {
        learned->push_back(q);
      }
    }
    // Pick the next literal on the trail to resolve.
    do {
      --trail_index;
      p = trail_[trail_index];
    } while (!seen_[VarOf(p)]);
    seen_[VarOf(p)] = 0;
    --counter;
    if (counter == 0) break;
    reason_clause = reason_[VarOf(p)];
    have_p = true;
    HS_CHECK_MSG(reason_clause != kUndef, "UIP resolution hit a decision");
    // The reason clause's first literal is p itself (asserting literal);
    // ensure that invariant before skipping it.
    auto& rl = clauses_[reason_clause].lits;
    if (rl[0] != p) {
      for (size_t i = 1; i < rl.size(); ++i)
        if (rl[i] == p) std::swap(rl[0], rl[i]);
    }
  }
  (*learned)[0] = NegLit(p);

  // Backtrack level = highest level among the other literals.
  *bt_level = 0;
  for (size_t i = 1; i < learned->size(); ++i) {
    *bt_level = std::max(*bt_level, static_cast<int>(level_[VarOf((*learned)[i])]));
  }
  // Move a literal of bt_level into position 1 for watching.
  for (size_t i = 1; i < learned->size(); ++i) {
    if (level_[VarOf((*learned)[i])] == *bt_level) {
      std::swap((*learned)[1], (*learned)[i]);
      break;
    }
  }
  for (Lit l : *learned) seen_[VarOf(l)] = 0;
}

void SatSolver::Backtrack(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) return;
  const size_t keep = trail_lim_[target_level];
  for (size_t i = trail_.size(); i-- > keep;) {
    const Var v = VarOf(trail_[i]);
    phase_[v] = assigns_[v];
    assigns_[v] = -1;
    reason_[v] = kUndef;
  }
  trail_.resize(keep);
  trail_lim_.resize(target_level);
  qhead_ = keep;
}

Lit SatSolver::Decide() {
  Var best = kUndef;
  double best_act = -1.0;
  for (Var v = 0; v < num_vars(); ++v) {
    if (assigns_[v] == -1 && activity_[v] > best_act) {
      best = v;
      best_act = activity_[v];
    }
  }
  if (best == kUndef) return kUndef;
  ++decisions_;
  return MkLit(best, phase_[best] == 0);
}

void SatSolver::BumpVar(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void SatSolver::DecayActivities() { var_inc_ /= 0.95; }

SatResult SatSolver::Solve() {
  if (unsat_) return SatResult::kUnsat;
  if (Propagate() != -1) {
    unsat_ = true;
    return SatResult::kUnsat;
  }

  uint64_t restart_limit = 100;
  uint64_t conflicts_since_restart = 0;

  for (;;) {
    const int32_t conflict = Propagate();
    if (conflict != -1) {
      ++conflicts_;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return SatResult::kUnsat;
      }
      std::vector<Lit> learned;
      int bt_level = 0;
      Analyze(conflict, &learned, &bt_level);
      Backtrack(bt_level);
      if (learned.size() == 1) {
        Enqueue(learned[0], kUndef);
      } else {
        clauses_.push_back(Clause{learned, true});
        const int32_t idx = static_cast<int32_t>(clauses_.size() - 1);
        AttachClause(idx);
        Enqueue(learned[0], idx);
      }
      DecayActivities();
    } else {
      if (conflicts_since_restart >= restart_limit) {
        conflicts_since_restart = 0;
        restart_limit = restart_limit + restart_limit / 2;
        Backtrack(0);
      }
      const Lit next = Decide();
      if (next == kUndef) return SatResult::kSat;
      trail_lim_.push_back(static_cast<int32_t>(trail_.size()));
      Enqueue(next, kUndef);
    }
  }
}

}  // namespace hardsnap::solver
