// Bitvector term DAG (the solver-facing expression language, KLEE's
// "Expr" analogue). Terms are hash-consed and constant-folded at
// construction, so concrete-only firmware execution never reaches the SAT
// core: a term over constants IS a constant.
//
// Widths are 1..64 bits. Booleans are 1-bit vectors. Division follows
// RISC-V semantics (x/0 = all-ones, x%0 = x) to match the CPU model.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace hardsnap::solver {

using TermId = int32_t;
inline constexpr TermId kNoTerm = -1;

enum class TOp : uint8_t {
  kConst, kVar,
  kNot, kNeg,
  kAnd, kOr, kXor,
  kAdd, kSub, kMul, kUdiv, kUrem,
  kEq, kUlt, kUle, kSlt, kSle,
  kShl, kLshr, kAshr,
  kIte,            // args: cond(1), then, else
  kConcat,         // args high..low
  kExtract,        // arg0[hi:lo]
  kZext, kSext,
};

const char* TOpName(TOp op);

struct Term {
  TOp op = TOp::kConst;
  unsigned width = 1;
  uint64_t value = 0;       // kConst
  std::string name;         // kVar
  unsigned hi = 0, lo = 0;  // kExtract
  std::vector<TermId> args;
};

// Hash-consing term factory. One context per analysis; TermIds are stable
// for its lifetime, so states can share sub-DAGs freely.
class BvContext {
 public:
  BvContext();

  TermId Const(uint64_t value, unsigned width);
  TermId True() { return true_; }
  TermId False() { return false_; }
  // Fresh named variable (not hash-consed: two Vars are distinct even with
  // equal names; name is diagnostic).
  TermId Var(std::string name, unsigned width);

  TermId Not(TermId a);
  TermId Neg(TermId a);
  TermId And(TermId a, TermId b);
  TermId Or(TermId a, TermId b);
  TermId Xor(TermId a, TermId b);
  TermId Add(TermId a, TermId b);
  TermId Sub(TermId a, TermId b);
  TermId Mul(TermId a, TermId b);
  TermId Udiv(TermId a, TermId b);
  TermId Urem(TermId a, TermId b);
  TermId Eq(TermId a, TermId b);   // 1-bit result
  TermId Ne(TermId a, TermId b);
  TermId Ult(TermId a, TermId b);
  TermId Ule(TermId a, TermId b);
  TermId Ugt(TermId a, TermId b) { return Ult(b, a); }
  TermId Uge(TermId a, TermId b) { return Ule(b, a); }
  TermId Slt(TermId a, TermId b);
  TermId Sle(TermId a, TermId b);
  TermId Sgt(TermId a, TermId b) { return Slt(b, a); }
  TermId Sge(TermId a, TermId b) { return Sle(b, a); }
  TermId Shl(TermId a, TermId b);
  TermId Lshr(TermId a, TermId b);
  TermId Ashr(TermId a, TermId b);
  TermId Ite(TermId cond, TermId t, TermId e);
  TermId Concat(TermId hi_part, TermId lo_part);
  TermId Extract(TermId a, unsigned hi, unsigned lo);
  TermId Zext(TermId a, unsigned width);
  TermId Sext(TermId a, unsigned width);

  // Logical helpers over 1-bit terms.
  TermId BoolAnd(TermId a, TermId b) { return And(a, b); }
  TermId BoolOr(TermId a, TermId b) { return Or(a, b); }
  TermId BoolNot(TermId a) { return Xor(a, True()); }

  const Term& term(TermId id) const { return terms_[id]; }
  unsigned WidthOf(TermId id) const { return terms_[id].width; }
  bool IsConst(TermId id) const { return terms_[id].op == TOp::kConst; }
  bool IsConstValue(TermId id, uint64_t v) const {
    return IsConst(id) && terms_[id].value == v;
  }
  size_t num_terms() const { return terms_.size(); }

  // Render a term as an s-expression (diagnostics, test-case dumps).
  std::string ToString(TermId id) const;

 private:
  TermId Intern(Term term);

  std::vector<Term> terms_;
  std::unordered_map<uint64_t, std::vector<TermId>> cons_table_;
  TermId true_ = kNoTerm;
  TermId false_ = kNoTerm;
};

// Evaluate a term under a concrete assignment of variables. Unassigned
// variables evaluate as 0 (callers that care should pre-populate).
uint64_t EvalTerm(const BvContext& ctx, TermId id,
                  const std::map<TermId, uint64_t>& vars);

}  // namespace hardsnap::solver
