// Bit-blasting bitvector decision procedure.
//
// Translates a conjunction of 1-bit terms into CNF (Tseitin encoding over
// per-bit literals: ripple-carry adders, barrel shifters, shift-add
// multipliers, restoring dividers) and decides it with the CDCL core.
// Satisfiable queries return a model for every kVar term in the query.
//
// Each Check() builds a fresh SAT instance, but a query cache in front
// absorbs the heavy repetition symbolic execution produces: path
// conditions are re-checked with every fork, and branch feasibility
// queries repeat across sibling states (KLEE's counterexample cache, in
// minimal form). The cache is keyed on the canonicalized assertion set;
// models are replayed for SAT hits so callers still get assignments.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "solver/sat.h"
#include "solver/term.h"

namespace hardsnap::solver {

enum class BvResult { kSat, kUnsat };

struct BvModel {
  // Assignment for each kVar term reachable from the assertions.
  std::map<TermId, uint64_t> values;
};

struct BvStats {
  uint64_t queries = 0;
  uint64_t sat = 0;
  uint64_t unsat = 0;
  uint64_t cache_hits = 0;
  uint64_t sat_vars = 0;      // cumulative CNF variables created
  uint64_t sat_clauses = 0;   // (approximate) cumulative clauses
  uint64_t conflicts = 0;
};

class BvSolver {
 public:
  explicit BvSolver(const BvContext* ctx) : ctx_(ctx) {}

  // Decide the conjunction of `assertions` (all 1-bit terms). On kSat and
  // model != nullptr, fills the model.
  Result<BvResult> Check(const std::vector<TermId>& assertions,
                         BvModel* model = nullptr);

  const BvStats& stats() const { return stats_; }

  // Query caching (on by default). The cache keys on the sorted,
  // deduplicated TermId set — sound because terms are hash-consed.
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

 private:
  struct CacheEntry {
    BvResult result;
    BvModel model;  // valid for kSat entries
  };

  const BvContext* ctx_;
  BvStats stats_;
  bool cache_enabled_ = true;
  std::unordered_map<uint64_t, CacheEntry> cache_;
};

}  // namespace hardsnap::solver
