#include "solver/term.h"

#include <cstdio>

#include "common/bitops.h"

namespace hardsnap::solver {

const char* TOpName(TOp op) {
  switch (op) {
    case TOp::kConst: return "const";
    case TOp::kVar: return "var";
    case TOp::kNot: return "not";
    case TOp::kNeg: return "neg";
    case TOp::kAnd: return "and";
    case TOp::kOr: return "or";
    case TOp::kXor: return "xor";
    case TOp::kAdd: return "add";
    case TOp::kSub: return "sub";
    case TOp::kMul: return "mul";
    case TOp::kUdiv: return "udiv";
    case TOp::kUrem: return "urem";
    case TOp::kEq: return "eq";
    case TOp::kUlt: return "ult";
    case TOp::kUle: return "ule";
    case TOp::kSlt: return "slt";
    case TOp::kSle: return "sle";
    case TOp::kShl: return "shl";
    case TOp::kLshr: return "lshr";
    case TOp::kAshr: return "ashr";
    case TOp::kIte: return "ite";
    case TOp::kConcat: return "concat";
    case TOp::kExtract: return "extract";
    case TOp::kZext: return "zext";
    case TOp::kSext: return "sext";
  }
  return "?";
}

BvContext::BvContext() {
  true_ = Const(1, 1);
  false_ = Const(0, 1);
}

TermId BvContext::Intern(Term term) {
  // Hash over (op, width, value, hi, lo, args); variables are nominal and
  // never interned.
  if (term.op != TOp::kVar) {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(term.op));
    mix(term.width);
    mix(term.value);
    mix(term.hi);
    mix(term.lo);
    for (TermId a : term.args) mix(static_cast<uint64_t>(a));
    auto& bucket = cons_table_[h];
    for (TermId cand : bucket) {
      const Term& t = terms_[cand];
      if (t.op == term.op && t.width == term.width && t.value == term.value &&
          t.hi == term.hi && t.lo == term.lo && t.args == term.args) {
        return cand;
      }
    }
    terms_.push_back(std::move(term));
    const TermId id = static_cast<TermId>(terms_.size() - 1);
    bucket.push_back(id);
    return id;
  }
  terms_.push_back(std::move(term));
  return static_cast<TermId>(terms_.size() - 1);
}

TermId BvContext::Const(uint64_t value, unsigned width) {
  HS_CHECK(width >= 1 && width <= 64);
  Term t;
  t.op = TOp::kConst;
  t.width = width;
  t.value = TruncBits(value, width);
  return Intern(std::move(t));
}

TermId BvContext::Var(std::string name, unsigned width) {
  HS_CHECK(width >= 1 && width <= 64);
  Term t;
  t.op = TOp::kVar;
  t.width = width;
  t.name = std::move(name);
  return Intern(std::move(t));
}

TermId BvContext::Not(TermId a) {
  const Term& ta = terms_[a];
  if (ta.op == TOp::kConst) return Const(~ta.value, ta.width);
  if (ta.op == TOp::kNot) return ta.args[0];  // ~~x = x
  Term t;
  t.op = TOp::kNot;
  t.width = ta.width;
  t.args = {a};
  return Intern(std::move(t));
}

TermId BvContext::Neg(TermId a) {
  const Term& ta = terms_[a];
  if (ta.op == TOp::kConst) return Const(~ta.value + 1, ta.width);
  Term t;
  t.op = TOp::kNeg;
  t.width = ta.width;
  t.args = {a};
  return Intern(std::move(t));
}

TermId BvContext::And(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) return Const(terms_[a].value & terms_[b].value, w);
  if (IsConstValue(a, 0) || IsConstValue(b, 0)) return Const(0, w);
  if (IsConstValue(a, LowMask(w))) return b;
  if (IsConstValue(b, LowMask(w))) return a;
  if (a == b) return a;
  Term t;
  t.op = TOp::kAnd;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Or(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) return Const(terms_[a].value | terms_[b].value, w);
  if (IsConstValue(a, 0)) return b;
  if (IsConstValue(b, 0)) return a;
  if (IsConstValue(a, LowMask(w)) || IsConstValue(b, LowMask(w)))
    return Const(LowMask(w), w);
  if (a == b) return a;
  Term t;
  t.op = TOp::kOr;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Xor(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) return Const(terms_[a].value ^ terms_[b].value, w);
  if (IsConstValue(a, 0)) return b;
  if (IsConstValue(b, 0)) return a;
  if (a == b) return Const(0, w);
  Term t;
  t.op = TOp::kXor;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Add(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) return Const(terms_[a].value + terms_[b].value, w);
  if (IsConstValue(a, 0)) return b;
  if (IsConstValue(b, 0)) return a;
  Term t;
  t.op = TOp::kAdd;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Sub(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) return Const(terms_[a].value - terms_[b].value, w);
  if (IsConstValue(b, 0)) return a;
  if (a == b) return Const(0, w);
  Term t;
  t.op = TOp::kSub;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Mul(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) return Const(terms_[a].value * terms_[b].value, w);
  if (IsConstValue(a, 0) || IsConstValue(b, 0)) return Const(0, w);
  if (IsConstValue(a, 1)) return b;
  if (IsConstValue(b, 1)) return a;
  Term t;
  t.op = TOp::kMul;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Udiv(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) {
    const uint64_t vb = terms_[b].value;
    return Const(vb == 0 ? LowMask(w) : terms_[a].value / vb, w);
  }
  if (IsConstValue(b, 1)) return a;
  Term t;
  t.op = TOp::kUdiv;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Urem(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) {
    const uint64_t vb = terms_[b].value;
    return Const(vb == 0 ? terms_[a].value : terms_[a].value % vb, w);
  }
  if (IsConstValue(b, 1)) return Const(0, w);
  Term t;
  t.op = TOp::kUrem;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Eq(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  if (IsConst(a) && IsConst(b))
    return terms_[a].value == terms_[b].value ? True() : False();
  if (a == b) return True();
  Term t;
  t.op = TOp::kEq;
  t.width = 1;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Ne(TermId a, TermId b) { return BoolNot(Eq(a, b)); }

TermId BvContext::Ult(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  if (IsConst(a) && IsConst(b))
    return terms_[a].value < terms_[b].value ? True() : False();
  if (a == b) return False();
  if (IsConstValue(b, 0)) return False();
  Term t;
  t.op = TOp::kUlt;
  t.width = 1;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Ule(TermId a, TermId b) {
  HS_CHECK(terms_[a].width == terms_[b].width);
  if (IsConst(a) && IsConst(b))
    return terms_[a].value <= terms_[b].value ? True() : False();
  if (a == b) return True();
  if (IsConstValue(a, 0)) return True();
  Term t;
  t.op = TOp::kUle;
  t.width = 1;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Slt(TermId a, TermId b) {
  const unsigned w = terms_[a].width;
  HS_CHECK(w == terms_[b].width);
  if (IsConst(a) && IsConst(b))
    return SignExtend(terms_[a].value, w) < SignExtend(terms_[b].value, w)
               ? True()
               : False();
  if (a == b) return False();
  Term t;
  t.op = TOp::kSlt;
  t.width = 1;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Sle(TermId a, TermId b) {
  const unsigned w = terms_[a].width;
  HS_CHECK(w == terms_[b].width);
  if (IsConst(a) && IsConst(b))
    return SignExtend(terms_[a].value, w) <= SignExtend(terms_[b].value, w)
               ? True()
               : False();
  if (a == b) return True();
  Term t;
  t.op = TOp::kSle;
  t.width = 1;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Shl(TermId a, TermId b) {
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) {
    const uint64_t sh = terms_[b].value;
    return Const(sh >= w ? 0 : terms_[a].value << sh, w);
  }
  if (IsConstValue(b, 0)) return a;
  Term t;
  t.op = TOp::kShl;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Lshr(TermId a, TermId b) {
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) {
    const uint64_t sh = terms_[b].value;
    return Const(sh >= w ? 0 : terms_[a].value >> sh, w);
  }
  if (IsConstValue(b, 0)) return a;
  Term t;
  t.op = TOp::kLshr;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Ashr(TermId a, TermId b) {
  const unsigned w = terms_[a].width;
  if (IsConst(a) && IsConst(b)) {
    uint64_t sh = terms_[b].value;
    if (sh >= w) sh = w - 1;
    return Const(
        static_cast<uint64_t>(SignExtend(terms_[a].value, w) >>
                              static_cast<int64_t>(sh)),
        w);
  }
  if (IsConstValue(b, 0)) return a;
  Term t;
  t.op = TOp::kAshr;
  t.width = w;
  t.args = {a, b};
  return Intern(std::move(t));
}

TermId BvContext::Ite(TermId cond, TermId then_t, TermId else_t) {
  HS_CHECK(terms_[cond].width == 1);
  HS_CHECK(terms_[then_t].width == terms_[else_t].width);
  if (IsConst(cond)) return terms_[cond].value ? then_t : else_t;
  if (then_t == else_t) return then_t;
  Term t;
  t.op = TOp::kIte;
  t.width = terms_[then_t].width;
  t.args = {cond, then_t, else_t};
  return Intern(std::move(t));
}

TermId BvContext::Concat(TermId hi_part, TermId lo_part) {
  const unsigned w = terms_[hi_part].width + terms_[lo_part].width;
  HS_CHECK_MSG(w <= 64, "concat wider than 64 bits");
  if (IsConst(hi_part) && IsConst(lo_part)) {
    return Const((terms_[hi_part].value << terms_[lo_part].width) |
                     terms_[lo_part].value,
                 w);
  }
  Term t;
  t.op = TOp::kConcat;
  t.width = w;
  t.args = {hi_part, lo_part};
  return Intern(std::move(t));
}

TermId BvContext::Extract(TermId a, unsigned hi, unsigned lo) {
  const Term& ta = terms_[a];
  HS_CHECK(hi >= lo && hi < ta.width);
  if (hi == ta.width - 1 && lo == 0) return a;
  if (ta.op == TOp::kConst) return Const(ExtractBits(ta.value, hi, lo), hi - lo + 1);
  Term t;
  t.op = TOp::kExtract;
  t.width = hi - lo + 1;
  t.hi = hi;
  t.lo = lo;
  t.args = {a};
  return Intern(std::move(t));
}

TermId BvContext::Zext(TermId a, unsigned width) {
  const Term& ta = terms_[a];
  HS_CHECK(width >= ta.width && width <= 64);
  if (width == ta.width) return a;
  if (ta.op == TOp::kConst) return Const(ta.value, width);
  Term t;
  t.op = TOp::kZext;
  t.width = width;
  t.args = {a};
  return Intern(std::move(t));
}

TermId BvContext::Sext(TermId a, unsigned width) {
  const Term& ta = terms_[a];
  HS_CHECK(width >= ta.width && width <= 64);
  if (width == ta.width) return a;
  if (ta.op == TOp::kConst)
    return Const(static_cast<uint64_t>(SignExtend(ta.value, ta.width)), width);
  Term t;
  t.op = TOp::kSext;
  t.width = width;
  t.args = {a};
  return Intern(std::move(t));
}

std::string BvContext::ToString(TermId id) const {
  const Term& t = terms_[id];
  switch (t.op) {
    case TOp::kConst: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "0x%llx:%u",
                    static_cast<unsigned long long>(t.value), t.width);
      return buf;
    }
    case TOp::kVar:
      return t.name + ":" + std::to_string(t.width);
    case TOp::kExtract:
      return "(extract " + std::to_string(t.hi) + " " + std::to_string(t.lo) +
             " " + ToString(t.args[0]) + ")";
    default: {
      std::string out = "(";
      out += TOpName(t.op);
      for (TermId a : t.args) out += " " + ToString(a);
      out += ")";
      return out;
    }
  }
}

uint64_t EvalTerm(const BvContext& ctx, TermId id,
                  const std::map<TermId, uint64_t>& vars) {
  const Term& t = ctx.term(id);
  const unsigned w = t.width;
  auto arg = [&](int i) { return EvalTerm(ctx, t.args[i], vars); };
  auto aw = [&](int i) { return ctx.term(t.args[i]).width; };
  switch (t.op) {
    case TOp::kConst: return t.value;
    case TOp::kVar: {
      auto it = vars.find(id);
      return it == vars.end() ? 0 : TruncBits(it->second, w);
    }
    case TOp::kNot: return TruncBits(~arg(0), w);
    case TOp::kNeg: return TruncBits(~arg(0) + 1, w);
    case TOp::kAnd: return arg(0) & arg(1);
    case TOp::kOr: return arg(0) | arg(1);
    case TOp::kXor: return arg(0) ^ arg(1);
    case TOp::kAdd: return TruncBits(arg(0) + arg(1), w);
    case TOp::kSub: return TruncBits(arg(0) - arg(1), w);
    case TOp::kMul: return TruncBits(arg(0) * arg(1), w);
    case TOp::kUdiv: {
      const uint64_t b = arg(1);
      return b == 0 ? LowMask(w) : TruncBits(arg(0) / b, w);
    }
    case TOp::kUrem: {
      const uint64_t b = arg(1);
      const uint64_t a = arg(0);
      return b == 0 ? a : TruncBits(a % b, w);
    }
    case TOp::kEq: return arg(0) == arg(1) ? 1 : 0;
    case TOp::kUlt: return arg(0) < arg(1) ? 1 : 0;
    case TOp::kUle: return arg(0) <= arg(1) ? 1 : 0;
    case TOp::kSlt:
      return SignExtend(arg(0), aw(0)) < SignExtend(arg(1), aw(1)) ? 1 : 0;
    case TOp::kSle:
      return SignExtend(arg(0), aw(0)) <= SignExtend(arg(1), aw(1)) ? 1 : 0;
    case TOp::kShl: {
      const uint64_t sh = arg(1);
      return sh >= w ? 0 : TruncBits(arg(0) << sh, w);
    }
    case TOp::kLshr: {
      const uint64_t sh = arg(1);
      return sh >= w ? 0 : arg(0) >> sh;
    }
    case TOp::kAshr: {
      uint64_t sh = arg(1);
      if (sh >= w) sh = w - 1;
      return TruncBits(
          static_cast<uint64_t>(SignExtend(arg(0), aw(0)) >>
                                static_cast<int64_t>(sh)),
          w);
    }
    case TOp::kIte: return arg(0) ? arg(1) : arg(2);
    case TOp::kConcat:
      return TruncBits((arg(0) << aw(1)) | TruncBits(arg(1), aw(1)), w);
    case TOp::kExtract: return ExtractBits(arg(0), t.hi, t.lo);
    case TOp::kZext: return arg(0);
    case TOp::kSext:
      return TruncBits(static_cast<uint64_t>(SignExtend(arg(0), aw(0))), w);
  }
  return 0;
}

}  // namespace hardsnap::solver
