#include "solver/bitblast.h"

#include <algorithm>
#include <unordered_map>

#include "common/bitops.h"

namespace hardsnap::solver {

namespace {

// One bit-blasting session: term -> vector of literals (LSB first).
class Blaster {
 public:
  explicit Blaster(const BvContext* ctx, SatSolver* sat)
      : ctx_(ctx), sat_(sat) {
    const Var v = sat_->NewVar();
    true_lit_ = MkLit(v);
    sat_->AddClause({true_lit_});
  }

  Lit TrueLit() const { return true_lit_; }
  Lit FalseLit() const { return NegLit(true_lit_); }

  const std::vector<Lit>& Blast(TermId id) {
    auto it = cache_.find(id);
    if (it != cache_.end()) return it->second;
    std::vector<Lit> bits = BlastUncached(id);
    return cache_.emplace(id, std::move(bits)).first->second;
  }

  const std::map<TermId, std::vector<Lit>>& var_bits() const {
    return var_bits_;
  }

 private:
  Lit FreshLit() { return MkLit(sat_->NewVar()); }

  Lit ConstLit(bool b) { return b ? true_lit_ : FalseLit(); }

  // out <-> a AND b
  Lit AndGate(Lit a, Lit b) {
    if (a == FalseLit() || b == FalseLit()) return FalseLit();
    if (a == true_lit_) return b;
    if (b == true_lit_) return a;
    if (a == b) return a;
    if (a == NegLit(b)) return FalseLit();
    Lit o = FreshLit();
    sat_->AddClause({NegLit(o), a});
    sat_->AddClause({NegLit(o), b});
    sat_->AddClause({o, NegLit(a), NegLit(b)});
    return o;
  }

  Lit OrGate(Lit a, Lit b) { return NegLit(AndGate(NegLit(a), NegLit(b))); }

  // out <-> a XOR b
  Lit XorGate(Lit a, Lit b) {
    if (a == FalseLit()) return b;
    if (b == FalseLit()) return a;
    if (a == true_lit_) return NegLit(b);
    if (b == true_lit_) return NegLit(a);
    if (a == b) return FalseLit();
    if (a == NegLit(b)) return true_lit_;
    Lit o = FreshLit();
    sat_->AddClause({NegLit(o), a, b});
    sat_->AddClause({NegLit(o), NegLit(a), NegLit(b)});
    sat_->AddClause({o, NegLit(a), b});
    sat_->AddClause({o, a, NegLit(b)});
    return o;
  }

  // out <-> sel ? t : e
  Lit MuxGate(Lit sel, Lit t, Lit e) {
    if (sel == true_lit_) return t;
    if (sel == FalseLit()) return e;
    if (t == e) return t;
    Lit o = FreshLit();
    sat_->AddClause({NegLit(sel), NegLit(t), o});
    sat_->AddClause({NegLit(sel), t, NegLit(o)});
    sat_->AddClause({sel, NegLit(e), o});
    sat_->AddClause({sel, e, NegLit(o)});
    return o;
  }

  // Majority (carry) gate: out <-> at least two of {a,b,c}.
  Lit MajGate(Lit a, Lit b, Lit c) {
    if (a == b) return a;
    if (a == c) return a;
    if (b == c) return b;
    Lit o = FreshLit();
    sat_->AddClause({NegLit(a), NegLit(b), o});
    sat_->AddClause({NegLit(a), NegLit(c), o});
    sat_->AddClause({NegLit(b), NegLit(c), o});
    sat_->AddClause({a, b, NegLit(o)});
    sat_->AddClause({a, c, NegLit(o)});
    sat_->AddClause({b, c, NegLit(o)});
    return o;
  }

  // sum = a + b + cin; returns sum bits, sets *cout.
  std::vector<Lit> Adder(const std::vector<Lit>& a, const std::vector<Lit>& b,
                         Lit cin, Lit* cout) {
    HS_CHECK(a.size() == b.size());
    std::vector<Lit> sum(a.size());
    Lit carry = cin;
    for (size_t i = 0; i < a.size(); ++i) {
      const Lit axb = XorGate(a[i], b[i]);
      sum[i] = XorGate(axb, carry);
      carry = MajGate(a[i], b[i], carry);
    }
    if (cout) *cout = carry;
    return sum;
  }

  std::vector<Lit> Negated(const std::vector<Lit>& a) {
    std::vector<Lit> out(a.size());
    for (size_t i = 0; i < a.size(); ++i) out[i] = NegLit(a[i]);
    return out;
  }

  // a < b (unsigned) == NOT carry-out of a + ~b + 1.
  Lit UltGate(const std::vector<Lit>& a, const std::vector<Lit>& b) {
    Lit cout = FalseLit();
    Adder(a, Negated(b), true_lit_, &cout);
    return NegLit(cout);
  }

  Lit EqGate(const std::vector<Lit>& a, const std::vector<Lit>& b) {
    Lit acc = true_lit_;
    for (size_t i = 0; i < a.size(); ++i)
      acc = AndGate(acc, NegLit(XorGate(a[i], b[i])));
    return acc;
  }

  // Barrel shifter. dir > 0: left; dir < 0: logical right. `fill` is the
  // bit shifted in (sign bit for arithmetic right shifts).
  std::vector<Lit> Shifter(const std::vector<Lit>& a,
                           const std::vector<Lit>& sh, bool left, Lit fill) {
    const size_t w = a.size();
    std::vector<Lit> cur = a;
    // Stages for shift-amount bits that can matter.
    for (size_t s = 0; s < sh.size() && (size_t{1} << s) <= 2 * w; ++s) {
      const size_t dist = size_t{1} << s;
      std::vector<Lit> shifted(w);
      for (size_t i = 0; i < w; ++i) {
        if (left) {
          shifted[i] = i >= dist ? cur[i - dist] : fill;
        } else {
          shifted[i] = i + dist < w ? cur[i + dist] : fill;
        }
      }
      std::vector<Lit> next(w);
      for (size_t i = 0; i < w; ++i) next[i] = MuxGate(sh[s], shifted[i], cur[i]);
      cur = next;
    }
    // Any higher shift-amount bit forces a full shift-out.
    Lit overflow = FalseLit();
    for (size_t s = 0; s < sh.size(); ++s) {
      if ((size_t{1} << s) > 2 * w || s >= 63) {
        overflow = OrGate(overflow, sh[s]);
      }
    }
    // Shift amounts >= w also shift everything out; detect via comparison.
    {
      std::vector<Lit> wconst = ConstBits(w, sh.size());
      Lit ge_w = NegLit(UltGate(sh, wconst));  // sh >= w
      overflow = OrGate(overflow, ge_w);
    }
    std::vector<Lit> out(w);
    for (size_t i = 0; i < w; ++i) out[i] = MuxGate(overflow, fill, cur[i]);
    return out;
  }

  std::vector<Lit> ConstBits(uint64_t v, size_t width) {
    std::vector<Lit> bits(width);
    for (size_t i = 0; i < width; ++i) bits[i] = ConstLit((v >> i) & 1);
    return bits;
  }

  // Shift-add multiplier (modulo 2^w).
  std::vector<Lit> Multiplier(const std::vector<Lit>& a,
                              const std::vector<Lit>& b) {
    const size_t w = a.size();
    std::vector<Lit> acc = ConstBits(0, w);
    for (size_t i = 0; i < w; ++i) {
      // partial = (a << i) AND b[i]
      std::vector<Lit> partial(w);
      for (size_t j = 0; j < w; ++j)
        partial[j] = j >= i ? AndGate(a[j - i], b[i]) : FalseLit();
      acc = Adder(acc, partial, FalseLit(), nullptr);
    }
    return acc;
  }

  // Restoring divider; returns quotient, sets *rem. RISC-V semantics for
  // division by zero are imposed with a final mux.
  std::vector<Lit> Divider(const std::vector<Lit>& a,
                           const std::vector<Lit>& b, std::vector<Lit>* rem) {
    const size_t w = a.size();
    // r holds w+1 bits to survive the shift before comparison.
    std::vector<Lit> r = ConstBits(0, w + 1);
    std::vector<Lit> bx = b;
    bx.push_back(FalseLit());  // b zero-extended to w+1
    std::vector<Lit> q(w, FalseLit());
    for (size_t i = w; i-- > 0;) {
      // r = (r << 1) | a[i]
      for (size_t j = w; j > 0; --j) r[j] = r[j - 1];
      r[0] = a[i];
      // if (r >= b) { r -= b; q[i] = 1; }
      Lit ge = NegLit(UltGate(r, bx));
      Lit borrow_cout = FalseLit();
      std::vector<Lit> diff = Adder(r, Negated(bx), true_lit_, &borrow_cout);
      for (size_t j = 0; j < r.size(); ++j) r[j] = MuxGate(ge, diff[j], r[j]);
      q[i] = ge;
    }
    // Division by zero: q = all ones, r = a.
    Lit b_zero = EqGate(b, ConstBits(0, w));
    for (size_t i = 0; i < w; ++i) q[i] = MuxGate(b_zero, true_lit_, q[i]);
    rem->resize(w);
    for (size_t i = 0; i < w; ++i)
      (*rem)[i] = MuxGate(b_zero, a[i], r[i]);
    return q;
  }

  std::vector<Lit> BlastUncached(TermId id) {
    const Term& t = ctx_->term(id);
    const unsigned w = t.width;
    auto arg = [&](int i) -> const std::vector<Lit>& {
      return Blast(t.args[i]);
    };
    switch (t.op) {
      case TOp::kConst:
        return ConstBits(t.value, w);
      case TOp::kVar: {
        std::vector<Lit> bits(w);
        for (unsigned i = 0; i < w; ++i) bits[i] = FreshLit();
        var_bits_[id] = bits;
        return bits;
      }
      case TOp::kNot:
        return Negated(arg(0));
      case TOp::kNeg: {
        Lit cout;
        return Adder(Negated(arg(0)), ConstBits(0, w), true_lit_, &cout);
      }
      case TOp::kAnd: {
        std::vector<Lit> out(w);
        for (unsigned i = 0; i < w; ++i) out[i] = AndGate(arg(0)[i], arg(1)[i]);
        return out;
      }
      case TOp::kOr: {
        std::vector<Lit> out(w);
        for (unsigned i = 0; i < w; ++i) out[i] = OrGate(arg(0)[i], arg(1)[i]);
        return out;
      }
      case TOp::kXor: {
        std::vector<Lit> out(w);
        for (unsigned i = 0; i < w; ++i) out[i] = XorGate(arg(0)[i], arg(1)[i]);
        return out;
      }
      case TOp::kAdd:
        return Adder(arg(0), arg(1), FalseLit(), nullptr);
      case TOp::kSub:
        return Adder(arg(0), Negated(arg(1)), true_lit_, nullptr);
      case TOp::kMul:
        return Multiplier(arg(0), arg(1));
      case TOp::kUdiv: {
        std::vector<Lit> rem;
        return Divider(arg(0), arg(1), &rem);
      }
      case TOp::kUrem: {
        std::vector<Lit> rem;
        Divider(arg(0), arg(1), &rem);
        return rem;
      }
      case TOp::kEq:
        return {EqGate(arg(0), arg(1))};
      case TOp::kUlt:
        return {UltGate(arg(0), arg(1))};
      case TOp::kUle:
        return {NegLit(UltGate(arg(1), arg(0)))};
      case TOp::kSlt: {
        // Flip sign bits, compare unsigned.
        std::vector<Lit> a = arg(0), b = arg(1);
        a.back() = NegLit(a.back());
        b.back() = NegLit(b.back());
        return {UltGate(a, b)};
      }
      case TOp::kSle: {
        std::vector<Lit> a = arg(0), b = arg(1);
        a.back() = NegLit(a.back());
        b.back() = NegLit(b.back());
        return {NegLit(UltGate(b, a))};
      }
      case TOp::kShl:
        return Shifter(arg(0), arg(1), /*left=*/true, FalseLit());
      case TOp::kLshr:
        return Shifter(arg(0), arg(1), /*left=*/false, FalseLit());
      case TOp::kAshr: {
        const std::vector<Lit>& a = arg(0);
        return Shifter(a, arg(1), /*left=*/false, a.back());
      }
      case TOp::kIte: {
        const Lit sel = arg(0)[0];
        std::vector<Lit> out(w);
        for (unsigned i = 0; i < w; ++i)
          out[i] = MuxGate(sel, arg(1)[i], arg(2)[i]);
        return out;
      }
      case TOp::kConcat: {
        std::vector<Lit> out = arg(1);  // low part
        const auto& hi = arg(0);
        out.insert(out.end(), hi.begin(), hi.end());
        return out;
      }
      case TOp::kExtract: {
        const auto& a = arg(0);
        return std::vector<Lit>(a.begin() + t.lo, a.begin() + t.hi + 1);
      }
      case TOp::kZext: {
        std::vector<Lit> out = arg(0);
        out.resize(w, FalseLit());
        return out;
      }
      case TOp::kSext: {
        std::vector<Lit> out = arg(0);
        const Lit sign = out.back();
        out.resize(w, sign);
        return out;
      }
    }
    HS_CHECK_MSG(false, "unhandled op in bit blaster");
    return {};
  }

  const BvContext* ctx_;
  SatSolver* sat_;
  Lit true_lit_;
  std::unordered_map<TermId, std::vector<Lit>> cache_;
  std::map<TermId, std::vector<Lit>> var_bits_;
};

}  // namespace

Result<BvResult> BvSolver::Check(const std::vector<TermId>& assertions,
                                 BvModel* model) {
  ++stats_.queries;

  // Fast path: all-constant assertions.
  bool all_const = true;
  for (TermId a : assertions) {
    if (ctx_->WidthOf(a) != 1)
      return InvalidArgument("assertion is not a 1-bit term");
    if (!ctx_->IsConst(a)) {
      all_const = false;
    } else if (ctx_->term(a).value == 0) {
      ++stats_.unsat;
      return BvResult::kUnsat;
    }
  }
  if (all_const) {
    ++stats_.sat;
    if (model) model->values.clear();
    return BvResult::kSat;
  }

  // Cache lookup on the canonical assertion set (sorted unique TermIds,
  // constants-true dropped; hash-consing makes ids canonical).
  uint64_t cache_key = 0;
  if (cache_enabled_) {
    std::vector<TermId> canon;
    canon.reserve(assertions.size());
    for (TermId a : assertions)
      if (!ctx_->IsConst(a)) canon.push_back(a);
    std::sort(canon.begin(), canon.end());
    canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
    uint64_t h = 1469598103934665603ull;
    for (TermId a : canon) {
      h ^= static_cast<uint64_t>(a);
      h *= 1099511628211ull;
    }
    cache_key = h;
    auto it = cache_.find(cache_key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      it->second.result == BvResult::kSat ? ++stats_.sat : ++stats_.unsat;
      if (model) *model = it->second.model;
      return it->second.result;
    }
  }

  SatSolver sat;
  Blaster blaster(ctx_, &sat);
  for (TermId a : assertions) {
    const auto& bits = blaster.Blast(a);
    sat.AddClause({bits[0]});
  }
  const SatResult r = sat.Solve();
  stats_.sat_vars += static_cast<uint64_t>(sat.num_vars());
  stats_.conflicts += sat.num_conflicts();
  if (r == SatResult::kUnsat) {
    ++stats_.unsat;
    if (cache_enabled_) cache_[cache_key] = CacheEntry{BvResult::kUnsat, {}};
    return BvResult::kUnsat;
  }
  ++stats_.sat;
  BvModel extracted;
  for (const auto& [term, bits] : blaster.var_bits()) {
    uint64_t v = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
      if (sat.ValueOf(VarOf(bits[i])) != IsNeg(bits[i])) v |= uint64_t{1} << i;
    }
    extracted.values[term] = v;
  }
  if (model) *model = extracted;
  if (cache_enabled_)
    cache_[cache_key] = CacheEntry{BvResult::kSat, std::move(extracted)};
  return BvResult::kSat;
}

}  // namespace hardsnap::solver
