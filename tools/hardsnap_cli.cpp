// hardsnap — command-line front end.
//
//   hardsnap run <firmware.s> [options]      symbolic analysis
//   hardsnap fuzz <firmware.s> [options]     snapshot-based fuzzing
//   hardsnap exec <firmware.s> [options]     concrete execution
//   hardsnap info                            SoC + scan chain summary
//   hardsnap serve --serve=ADDR [options]    host targets for remote
//                                            clients (same core as the
//                                            hardsnapd binary)
//
// Common options:
//   --target=sim|fpga|both      hardware back-end (default sim)
//   --max-instr=N               instruction budget
// run options:
//   --mode=hardsnap|naive-consistent|naive-inconsistent
//   --search=bfs|dfs|random|coverage
//   --symbolic-reg=a0[:name]    make a register symbolic
//   --symbolic-mem=ADDR:LEN[:name]
//   --all-values                completeness concretization policy
// fuzz options:
//   --execs=N  --input-addr=A  --input-size=N  --reset=snapshot|reboot
//   --seed=N                    campaign seed (default 1)
//   --workers=N                 shard the campaign over N worker threads,
//                               each with its own simulated target; every
//                               finding reports the derived worker seed
//                               that replays it single-threaded
//   --share-corpus              let workers adopt each other's inputs
//                               (faster coverage, input-level replay only)
// durability options (fuzz campaigns and run portfolios):
//   --persist=DIR               journal findings/corpus to DIR and write
//                               periodic checkpoints; a killed campaign
//                               restarted with the same DIR resumes from
//                               its last acknowledged state
//   --resume=DIR                like --persist but REQUIRE existing state
//                               in DIR (refuses to silently start fresh)
//   --checkpoint-every=N        compact the journal into a checkpoint
//                               every N journal records (default 16)
//   --max-store-bytes=N         cap the host snapshot store; ingestion
//                               beyond the cap fails with
//                               RESOURCE_EXHAUSTED instead of OOM
// SIGINT/SIGTERM drain workers and flush a final checkpoint; a second
// signal aborts immediately.
// link options (any command that talks to hardware):
//   --fault-rate=P              inject frame drops AND corruptions, each
//                               with probability P (e.g. 0.01), on the
//                               host<->target link; retries mask them
//   --fault-seed=N              RNG seed for the injected fault schedule
//   --mmio-deadline=USEC        per-operation retry budget beyond the
//                               clean transfer cost, in microseconds
// remote options (docs/remote_targets.md):
//   --connect=ADDR[,ADDR...]    fuzz campaigns only: workers drive targets
//                               hosted by hardsnapd at these addresses
//                               (tcp:host:port or unix:/path) instead of
//                               in-process simulators; round-robin across
//                               addresses, automatic fail-over on a lost
//                               connection
//   --serve=ADDR                serve command: listen address
//   --targets=N                 serve command: max concurrent sessions
//   --stats-interval=SECS       periodic progress line to stderr (both a
//                               serving daemon and a running campaign)
//
// Example:
//   hardsnap run driver.s --symbolic-reg=a0 --mode=hardsnap --target=fpga
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bus/sim_target.h"
#include "campaign/campaign.h"
#include "campaign/symex_campaign.h"
#include "core/session.h"
#include "fpga/fpga_target.h"
#include "fuzz/fuzzer.h"
#include "net/address.h"
#include "periph/periph.h"
#include "remote/remote_target.h"
#include "rtl/elaborate.h"
#include "serve_common.h"
#include "vm/cpu.h"

using namespace hardsnap;

namespace {

// Graceful shutdown: the first SIGINT/SIGTERM asks running campaigns to
// drain (workers finish their current batch, the final checkpoint is
// flushed); the second aborts immediately. Only async-signal-safe
// operations here — the campaign prints the resume hint after draining.
std::atomic<bool> g_stop{false};
std::atomic<int> g_signal_count{0};

extern "C" void OnStopSignal(int /*signum*/) {
  if (g_signal_count.fetch_add(1) > 0) _exit(130);
  g_stop.store(true);
}

void InstallStopHandlers() {
  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
}

int Usage() {
  std::fprintf(stderr,
               "usage: hardsnap <run|fuzz|exec|info|serve> [firmware.s] "
               "[options]\n(see the header of tools/hardsnap_cli.cpp)\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::stringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

// "--key=value" option helper.
bool OptValue(const std::string& arg, const char* key, std::string* value) {
  const std::string prefix = std::string("--") + key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int RegByName(const std::string& name) {
  for (int i = 0; i < 32; ++i) {
    if (name == vm::RegName(static_cast<unsigned>(i))) return i;
    if (name == "x" + std::to_string(i)) return i;
  }
  return -1;
}

uint64_t ParseNum(const std::string& s) {
  return std::stoull(s, nullptr, 0);
}

struct Cli {
  std::string command;
  bool json = false;
  std::string firmware_path;
  core::SessionConfig::Target target = core::SessionConfig::Target::kSimulator;
  symex::ExecOptions exec;
  // symbolic inputs
  std::vector<std::pair<int, std::string>> sym_regs;
  struct MemRegion { uint32_t addr; unsigned len; std::string name; };
  std::vector<MemRegion> sym_mems;
  // fuzz
  uint64_t execs = 1000;
  fuzz::FuzzOptions fuzz;
  unsigned workers = 1;
  uint64_t seed = 1;
  bool share_corpus = false;
  // durable checkpoint/resume (--persist / --resume / --checkpoint-every)
  persist::PersistOptions persist;
  // host<->target transport (applied to every target the command builds)
  bus::LinkConfig link;
  // remote targets (--connect for campaigns, --serve/--targets for serve)
  std::vector<std::string> connect;
  std::string serve_listen;
  unsigned serve_targets = 8;
  unsigned stats_interval = 0;
};

bool ParseArgs(int argc, char** argv, Cli* cli) {
  if (argc < 2) return false;
  cli->command = argv[1];
  int i = 2;
  if (cli->command != "info" && cli->command != "serve") {
    if (argc < 3) return false;
    cli->firmware_path = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    std::string arg = argv[i], v;
    if (OptValue(arg, "target", &v)) {
      if (v == "sim") cli->target = core::SessionConfig::Target::kSimulator;
      else if (v == "fpga") cli->target = core::SessionConfig::Target::kFpga;
      else if (v == "both") cli->target = core::SessionConfig::Target::kBoth;
      else return false;
    } else if (OptValue(arg, "mode", &v)) {
      if (v == "hardsnap") cli->exec.mode = symex::ConsistencyMode::kHardSnap;
      else if (v == "naive-consistent")
        cli->exec.mode = symex::ConsistencyMode::kNaiveConsistent;
      else if (v == "naive-inconsistent")
        cli->exec.mode = symex::ConsistencyMode::kNaiveInconsistent;
      else return false;
    } else if (OptValue(arg, "search", &v)) {
      if (v == "bfs") cli->exec.search = symex::SearchStrategy::kBfs;
      else if (v == "dfs") cli->exec.search = symex::SearchStrategy::kDfs;
      else if (v == "random") cli->exec.search = symex::SearchStrategy::kRandom;
      else if (v == "coverage")
        cli->exec.search = symex::SearchStrategy::kCoverage;
      else return false;
    } else if (OptValue(arg, "max-instr", &v)) {
      cli->exec.max_instructions = ParseNum(v);
    } else if (arg == "--json") {
      cli->json = true;
    } else if (arg == "--all-values") {
      cli->exec.concretization = symex::ConcretizationPolicy::kAllValues;
    } else if (OptValue(arg, "symbolic-reg", &v)) {
      const size_t colon = v.find(':');
      const std::string reg = v.substr(0, colon);
      const std::string name =
          colon == std::string::npos ? reg : v.substr(colon + 1);
      const int r = RegByName(reg);
      if (r <= 0) {
        std::fprintf(stderr, "bad register '%s'\n", reg.c_str());
        return false;
      }
      cli->sym_regs.emplace_back(r, name);
    } else if (OptValue(arg, "symbolic-mem", &v)) {
      Cli::MemRegion region;
      const size_t c1 = v.find(':');
      if (c1 == std::string::npos) return false;
      const size_t c2 = v.find(':', c1 + 1);
      region.addr = static_cast<uint32_t>(ParseNum(v.substr(0, c1)));
      region.len = static_cast<unsigned>(
          ParseNum(v.substr(c1 + 1, c2 - c1 - 1)));
      region.name = c2 == std::string::npos ? "mem" : v.substr(c2 + 1);
      cli->sym_mems.push_back(region);
    } else if (OptValue(arg, "execs", &v)) {
      cli->execs = ParseNum(v);
    } else if (OptValue(arg, "input-addr", &v)) {
      cli->fuzz.input_addr = static_cast<uint32_t>(ParseNum(v));
    } else if (OptValue(arg, "input-size", &v)) {
      cli->fuzz.input_size = static_cast<unsigned>(ParseNum(v));
    } else if (OptValue(arg, "workers", &v)) {
      cli->workers = static_cast<unsigned>(ParseNum(v));
    } else if (OptValue(arg, "seed", &v)) {
      cli->seed = ParseNum(v);
    } else if (arg == "--share-corpus") {
      cli->share_corpus = true;
    } else if (OptValue(arg, "persist", &v)) {
      cli->persist.dir = v;
    } else if (OptValue(arg, "resume", &v)) {
      cli->persist.dir = v;
      cli->persist.resume_required = true;
    } else if (OptValue(arg, "checkpoint-every", &v)) {
      cli->persist.checkpoint_every = ParseNum(v);
    } else if (OptValue(arg, "max-store-bytes", &v)) {
      cli->exec.max_store_bytes = ParseNum(v);
    } else if (OptValue(arg, "fault-rate", &v)) {
      const double rate = std::stod(v);
      if (rate < 0.0 || rate > 1.0) {
        std::fprintf(stderr, "--fault-rate must be in [0,1]\n");
        return false;
      }
      cli->link.faults.drop_rate = rate;
      cli->link.faults.corrupt_rate = rate;
    } else if (OptValue(arg, "fault-seed", &v)) {
      cli->link.faults.seed = ParseNum(v);
    } else if (OptValue(arg, "mmio-deadline", &v)) {
      cli->link.retry.deadline = Duration::Micros(std::stod(v));
    } else if (OptValue(arg, "connect", &v)) {
      size_t start = 0;
      while (start <= v.size()) {
        const size_t comma = v.find(',', start);
        const std::string addr =
            v.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (!addr.empty()) cli->connect.push_back(addr);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (cli->connect.empty()) {
        std::fprintf(stderr, "--connect needs at least one address\n");
        return false;
      }
    } else if (OptValue(arg, "serve", &v)) {
      cli->serve_listen = v;
    } else if (OptValue(arg, "targets", &v)) {
      cli->serve_targets = static_cast<unsigned>(ParseNum(v));
    } else if (OptValue(arg, "stats-interval", &v)) {
      cli->stats_interval = static_cast<unsigned>(ParseNum(v));
    } else if (OptValue(arg, "reset", &v)) {
      if (v == "snapshot") cli->fuzz.reset = fuzz::ResetStrategy::kSnapshotReset;
      else if (v == "reboot") cli->fuzz.reset = fuzz::ResetStrategy::kRebootReset;
      else return false;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int CmdInfo() {
  core::SessionConfig cfg;
  cfg.target = core::SessionConfig::Target::kBoth;
  auto session = core::Session::Create(cfg);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  auto info = session.value()->hardware_info();
  std::printf("HardSnap SoC summary\n");
  std::printf("  peripherals:      timer, uart, aes128, sha256\n");
  std::printf("  signals:          %u\n", info.soc_stats.num_signals);
  std::printf("  flip-flops:       %u (%u bits)\n", info.soc_stats.num_flops,
              info.soc_stats.num_flop_bits);
  std::printf("  memories:         %u (%u bits)\n",
              info.soc_stats.num_memories, info.soc_stats.num_memory_bits);
  std::printf("  expression nodes: %u\n", info.soc_stats.num_expr_nodes);
  std::printf("  scan chain:       %u bits + %u memory words\n",
              info.scan_chain_bits, info.scan_mem_words);
  auto* f = session.value()->fpga_target();
  std::printf("  scan pass cost:   %s\n",
              f->ScanPassCost().ToString().c_str());
  std::printf("  readback cost:    %s\n",
              f->ReadbackCost().ToString().c_str());
  return 0;
}

int CmdRun(const Cli& cli) {
  std::string source;
  if (!ReadFile(cli.firmware_path, &source)) {
    std::fprintf(stderr, "cannot read %s\n", cli.firmware_path.c_str());
    return 1;
  }
  core::SessionConfig cfg;
  cfg.target = cli.target;
  cfg.exec = cli.exec;
  cfg.simulator_options.link = cli.link;
  cfg.fpga_options.link = cli.link;
  auto session = core::Session::Create(cfg);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  if (auto s = session.value()->LoadFirmwareAsm(source); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  for (const auto& [reg, name] : cli.sym_regs)
    session.value()->MakeSymbolicRegister(static_cast<unsigned>(reg), name);
  for (const auto& region : cli.sym_mems) {
    if (auto s = session.value()->MakeSymbolicRegion(region.addr, region.len,
                                                     region.name);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  // Portfolio path: N cloned sessions, optionally durable at worker
  // granularity (--persist/--resume journal completed worker reports).
  if (cli.workers > 1 || !cli.persist.dir.empty()) {
    campaign::SymexCampaignOptions sopts;
    sopts.workers = cli.workers;
    sopts.seed = cli.seed;
    sopts.persist = cli.persist;
    auto portfolio = campaign::RunSymexCampaign(*session.value(), sopts);
    if (!portfolio.ok()) {
      std::fprintf(stderr, "%s\n", portfolio.status().ToString().c_str());
      return 1;
    }
    if (portfolio.value().resumed)
      std::printf("resumed from %s (%llu worker reports recovered)\n",
                  cli.persist.dir.c_str(),
                  static_cast<unsigned long long>(
                      portfolio.value().resumed_workers));
    std::printf("%s\n", portfolio.value().Summary().c_str());
    for (const auto& bug : portfolio.value().bugs) {
      std::printf("BUG %-22s pc=0x%08x %s\n", bug.kind.c_str(), bug.pc,
                  bug.detail.c_str());
      for (const auto& [name, value] : bug.test_case.inputs)
        std::printf("    %s = 0x%llx\n", name.c_str(),
                    static_cast<unsigned long long>(value));
    }
    return 0;
  }
  auto report = session.value()->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  if (cli.json) {
    std::printf("%s\n", report.value().ToJson().c_str());
    return 0;
  }
  std::printf("%s\n", report.value().Summary().c_str());
  if (!report.value().console.empty())
    std::printf("console: %s\n", report.value().console.c_str());
  for (const auto& bug : report.value().bugs) {
    std::printf("BUG %-22s pc=0x%08x %s\n", bug.kind.c_str(), bug.pc,
                bug.detail.c_str());
    for (const auto& [name, value] : bug.test_case.inputs)
      std::printf("    %s = 0x%llx\n", name.c_str(),
                  static_cast<unsigned long long>(value));
  }
  return 0;
}

int CmdExec(const Cli& cli) {
  std::string source;
  if (!ReadFile(cli.firmware_path, &source)) {
    std::fprintf(stderr, "cannot read %s\n", cli.firmware_path.c_str());
    return 1;
  }
  auto img = vm::Assemble(source);
  if (!img.ok()) {
    std::fprintf(stderr, "%s\n", img.status().ToString().c_str());
    return 1;
  }
  core::SessionConfig cfg;
  cfg.target = cli.target;
  cfg.simulator_options.link = cli.link;
  cfg.fpga_options.link = cli.link;
  auto session = core::Session::Create(cfg);
  if (!session.ok()) return 1;
  vm::Cpu cpu(&session.value()->hardware());
  if (!cpu.LoadFirmware(img.value()).ok()) return 1;
  auto out = cpu.Run(cli.exec.max_instructions);
  std::printf("status: %s\n",
              out.status == vm::RunStatus::kExited ? "exited"
              : out.status == vm::RunStatus::kBug ? "BUG"
              : out.status == vm::RunStatus::kWaiting ? "waiting"
              : out.status == vm::RunStatus::kHardwareError ? "HW-ERROR"
                                                            : "budget");
  if (out.status == vm::RunStatus::kExited)
    std::printf("exit code: %u\n", out.exit_code);
  if (out.status == vm::RunStatus::kBug)
    std::printf("fault: %s at pc=0x%08x\n", out.reason.c_str(), out.fault_pc);
  if (out.status == vm::RunStatus::kHardwareError)
    std::printf("hardware: %s at pc=0x%08x\n", out.reason.c_str(),
                out.fault_pc);
  std::printf("instructions: %llu\n",
              static_cast<unsigned long long>(cpu.state().icount));
  if (!cpu.console().empty())
    std::printf("console: %s\n", cpu.console().c_str());
  if (out.status == vm::RunStatus::kHardwareError) return 1;
  return out.status == vm::RunStatus::kBug ? 1 : 0;
}

// Parallel campaign path: N workers, each on its own simulated target.
int CmdFuzzCampaign(const Cli& cli, const vm::FirmwareImage& image) {
  auto soc =
      rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()), "soc");
  if (!soc.ok()) {
    std::fprintf(stderr, "%s\n", soc.status().ToString().c_str());
    return 1;
  }
  campaign::FuzzCampaignOptions opts;
  opts.workers = cli.workers;
  opts.total_execs = cli.execs;
  opts.seed = cli.seed;
  opts.share_corpus = cli.share_corpus;
  opts.fuzz = cli.fuzz;
  opts.simulator_options.link = cli.link;
  opts.persist = cli.persist;
  opts.external_stop = &g_stop;
  opts.stats_interval_seconds = cli.stats_interval;
  if (!cli.connect.empty()) {
    // Remote mode: each worker slice is a session on one of the hardsnapd
    // servers, round-robined by (worker + incarnation) so a fail-over
    // naturally rotates to the next server in the pool.
    std::vector<net::Address> addrs;
    for (const std::string& spec : cli.connect) {
      auto addr = net::Address::Parse(spec);
      if (!addr.ok()) {
        std::fprintf(stderr, "%s\n", addr.status().ToString().c_str());
        return 1;
      }
      addrs.push_back(addr.value());
    }
    auto connections = std::make_shared<std::atomic<uint64_t>>(0);
    auto reconnects = std::make_shared<std::atomic<uint64_t>>(0);
    opts.target_factory = [addrs, connections, reconnects](
                              unsigned worker, uint64_t incarnation)
        -> Result<std::unique_ptr<bus::HardwareTarget>> {
      remote::RemoteTargetOptions ropts;
      ropts.client_name = "hardsnap-worker-" + std::to_string(worker);
      auto target = remote::RemoteTarget::Connect(
          addrs[(worker + incarnation) % addrs.size()], ropts);
      if (!target.ok()) return target.status();
      connections->fetch_add(1, std::memory_order_relaxed);
      if (incarnation > 0) reconnects->fetch_add(1, std::memory_order_relaxed);
      return std::unique_ptr<bus::HardwareTarget>(std::move(target).value());
    };
    opts.stats_extra = [connections, reconnects] {
      return "connections " +
             std::to_string(connections->load(std::memory_order_relaxed)) +
             ", reconnects " +
             std::to_string(reconnects->load(std::memory_order_relaxed));
    };
  }
  InstallStopHandlers();
  campaign::FuzzCampaign campaign(soc.value(), image, opts);
  auto report = campaign.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  if (report.value().resumed)
    std::printf("resumed from %s (%llu journal records recovered)\n",
                cli.persist.dir.c_str(),
                static_cast<unsigned long long>(
                    report.value().persist_stats.recovered_records));
  std::printf("%s\n", report.value().Summary().c_str());
  if (report.value().interrupted) {
    if (!cli.persist.dir.empty())
      std::printf("interrupted; all acknowledged findings are durable — "
                  "rerun with --resume=%s to continue\n",
                  cli.persist.dir.c_str());
    else
      std::printf("interrupted (use --persist=DIR to make runs "
                  "resumable)\n");
  }
  for (const auto& finding : report.value().findings) {
    std::printf(
        "CRASH pc=0x%08x %s (worker %u; replay: seed=%llu execs=%llu) "
        "input=[",
        finding.crash.pc, finding.crash.reason.c_str(), finding.worker,
        static_cast<unsigned long long>(finding.worker_seed),
        static_cast<unsigned long long>(finding.execs_at_find));
    for (size_t i = 0; i < finding.crash.input.size(); ++i)
      std::printf("%s0x%02x", i ? " " : "", finding.crash.input[i]);
    std::printf("]\n");
  }
  return 0;
}

int CmdFuzz(const Cli& cli) {
  std::string source;
  if (!ReadFile(cli.firmware_path, &source)) {
    std::fprintf(stderr, "cannot read %s\n", cli.firmware_path.c_str());
    return 1;
  }
  auto img = vm::Assemble(source);
  if (!img.ok()) {
    std::fprintf(stderr, "%s\n", img.status().ToString().c_str());
    return 1;
  }
  // Campaign path: multiple workers, any persisted run (durable
  // checkpointing lives in the campaign layer, so --persist/--resume
  // route even a single worker through it), or remote targets
  // (--connect puts every worker on a hardsnapd session).
  if (cli.workers > 1 || !cli.persist.dir.empty() || !cli.connect.empty()) {
    if (cli.connect.empty() &&
        cli.target != core::SessionConfig::Target::kSimulator) {
      std::fprintf(stderr,
                   "--workers/--persist need --target=sim (one simulated "
                   "device per worker) or --connect\n");
      return 1;
    }
    return CmdFuzzCampaign(cli, img.value());
  }
  core::SessionConfig cfg;
  cfg.target = cli.target;
  cfg.simulator_options.link = cli.link;
  cfg.fpga_options.link = cli.link;
  auto session = core::Session::Create(cfg);
  if (!session.ok()) return 1;
  fuzz::FuzzOptions fopts = cli.fuzz;
  fopts.seed = cli.seed;
  fuzz::Fuzzer fuzzer(&session.value()->hardware(), img.value(), fopts);
  auto stats = fuzzer.Run(cli.execs);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "execs=%llu corpus=%llu edges=%llu crashes=%llu reset-overhead=%s\n",
      static_cast<unsigned long long>(stats.value().execs),
      static_cast<unsigned long long>(stats.value().corpus_size),
      static_cast<unsigned long long>(stats.value().edges_covered),
      static_cast<unsigned long long>(stats.value().crashes),
      stats.value().reset_overhead.ToString().c_str());
  for (const auto& crash : fuzzer.crashes()) {
    std::printf("CRASH pc=0x%08x %s input=[", crash.pc, crash.reason.c_str());
    for (size_t i = 0; i < crash.input.size(); ++i)
      std::printf("%s0x%02x", i ? " " : "", crash.input[i]);
    std::printf("]\n");
  }
  return 0;
}

// Same serving core as the hardsnapd binary, reachable without a second
// install.
int CmdServe(const Cli& cli) {
  if (cli.serve_listen.empty()) {
    std::fprintf(stderr, "serve needs --serve=ADDR (tcp:host:port or "
                         "unix:/path)\n");
    return 2;
  }
  if (cli.target == core::SessionConfig::Target::kBoth) {
    std::fprintf(stderr, "serve hosts one back-end kind: --target=sim or "
                         "--target=fpga\n");
    return 2;
  }
  tools::ServeConfig config;
  config.listen = cli.serve_listen;
  config.targets = cli.serve_targets;
  config.fpga = cli.target == core::SessionConfig::Target::kFpga;
  config.stats_interval_seconds = cli.stats_interval;
  config.link = cli.link;
  InstallStopHandlers();
  return tools::RunServeLoop(config, g_stop);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!ParseArgs(argc, argv, &cli)) return Usage();
  if (cli.command == "info") return CmdInfo();
  if (cli.command == "run") return CmdRun(cli);
  if (cli.command == "exec") return CmdExec(cli);
  if (cli.command == "fuzz") return CmdFuzz(cli);
  if (cli.command == "serve") return CmdServe(cli);
  return Usage();
}
