// Shared implementation of the target-serving mode, used by the
// dedicated hardsnapd binary and by `hardsnap serve`.
//
// Builds the default HardSnap SoC, wraps it in a per-session target
// factory (simulator or FPGA back-end) and runs a remote::TargetServer
// until `stop` is raised — at which point it drains (in-flight requests
// finish, new sessions are refused with kUnavailable) and exits. With a
// stats interval set, one counters line goes to stderr per interval.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "bus/sim_target.h"
#include "fpga/fpga_target.h"
#include "net/address.h"
#include "periph/periph.h"
#include "remote/server.h"
#include "rtl/elaborate.h"
#include "snapshot/snapshot.h"

namespace hardsnap::tools {

struct ServeConfig {
  std::string listen;            // net::Address spec
  unsigned targets = 8;          // max concurrent sessions
  bool fpga = false;             // hosted back-end kind
  unsigned stats_interval_seconds = 0;
  bus::LinkConfig link;          // modeled-link config for hosted targets
};

inline void PrintServerStats(const remote::TargetServer& server) {
  const remote::ServerStats s = server.stats();
  const double avg_us =
      s.rpcs ? static_cast<double>(s.rpc_wall_micros) / s.rpcs : 0.0;
  std::fprintf(stderr,
               "[hardsnapd] sessions %u active (%llu accepted, %llu refused), "
               "rpcs %llu (%llu ops, %.1f us avg), in %llu B, out %llu B, "
               "protocol errors %llu\n",
               server.active_sessions(),
               static_cast<unsigned long long>(s.sessions_accepted),
               static_cast<unsigned long long>(s.sessions_refused),
               static_cast<unsigned long long>(s.rpcs),
               static_cast<unsigned long long>(s.batched_ops), avg_us,
               static_cast<unsigned long long>(s.bytes_received),
               static_cast<unsigned long long>(s.bytes_sent),
               static_cast<unsigned long long>(s.protocol_errors));
}

// Blocks until `stop`. Returns a process exit code.
inline int RunServeLoop(const ServeConfig& config,
                        const std::atomic<bool>& stop) {
  auto addr = net::Address::Parse(config.listen);
  if (!addr.ok()) {
    std::fprintf(stderr, "%s\n", addr.status().ToString().c_str());
    return 1;
  }
  auto soc =
      rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()), "soc");
  if (!soc.ok()) {
    std::fprintf(stderr, "%s\n", soc.status().ToString().c_str());
    return 1;
  }
  const rtl::Design& design = soc.value();

  remote::TargetServerOptions sopts;
  sopts.max_sessions = config.targets;
  sopts.shape_digest = snapshot::StateShapeDigest(design);

  remote::TargetFactory factory;
  if (config.fpga) {
    factory = [&design, link = config.link]()
        -> Result<std::unique_ptr<bus::HardwareTarget>> {
      fpga::FpgaTargetOptions topts;
      topts.link = link;
      auto t = fpga::FpgaTarget::Create(design, topts);
      if (!t.ok()) return t.status();
      return std::unique_ptr<bus::HardwareTarget>(std::move(t).value());
    };
  } else {
    factory = [&design, link = config.link]()
        -> Result<std::unique_ptr<bus::HardwareTarget>> {
      bus::SimulatorTargetOptions topts;
      topts.link = link;
      auto t = bus::SimulatorTarget::Create(design, topts);
      if (!t.ok()) return t.status();
      return std::unique_ptr<bus::HardwareTarget>(std::move(t).value());
    };
  }

  auto server = remote::TargetServer::Start(addr.value(), factory, sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("hardsnapd: %s target pool (%u sessions) on %s\n",
              config.fpga ? "fpga" : "sim", config.targets,
              server.value()->bound().ToString().c_str());
  std::fflush(stdout);

  auto last_stats = std::chrono::steady_clock::now();
  while (!stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (config.stats_interval_seconds == 0) continue;
    const auto now = std::chrono::steady_clock::now();
    if (now - last_stats >=
        std::chrono::seconds(config.stats_interval_seconds)) {
      PrintServerStats(*server.value());
      last_stats = now;
    }
  }

  std::fprintf(stderr, "[hardsnapd] draining...\n");
  server.value()->Drain();
  server.value()->Stop();
  PrintServerStats(*server.value());
  return 0;
}

}  // namespace hardsnap::tools
