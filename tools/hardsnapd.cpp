// hardsnapd — remote target daemon.
//
// Hosts a pool of HardSnap targets (simulated SoCs, or the modeled FPGA
// back-end) behind the framed RPC protocol in src/remote, one isolated
// target per client session. Campaign workers connect with
// `hardsnap fuzz ... --connect=ADDR`.
//
//   hardsnapd --serve=ADDR [options]
//
// Options:
//   --serve=ADDR            listen address: tcp:host:port or unix:/path
//                           (tcp port 0 picks a free port, printed on
//                           startup)
//   --targets=N             max concurrent sessions (default 8)
//   --target=sim|fpga       hosted back-end kind (default sim)
//   --stats-interval=SECS   periodic counters line to stderr (default off)
//   --fault-rate=P          inject faults on the modeled device link
//   --fault-seed=N          RNG seed for the fault schedule
//
// Lifecycle: SIGINT/SIGTERM drains — in-flight requests complete, new
// sessions are refused with kUnavailable (clients fail over), then the
// process exits. A second signal aborts immediately.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>

#include "serve_common.h"

using namespace hardsnap;

namespace {

std::atomic<bool> g_stop{false};
std::atomic<int> g_signal_count{0};

extern "C" void OnStopSignal(int /*signum*/) {
  if (g_signal_count.fetch_add(1) > 0) _exit(130);
  g_stop.store(true);
}

int Usage() {
  std::fprintf(stderr,
               "usage: hardsnapd --serve=ADDR [--targets=N] "
               "[--target=sim|fpga] [--stats-interval=SECS]\n"
               "(see the header of tools/hardsnapd.cpp)\n");
  return 2;
}

bool OptValue(const std::string& arg, const char* key, std::string* value) {
  const std::string prefix = std::string("--") + key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tools::ServeConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i], v;
    if (OptValue(arg, "serve", &v)) {
      config.listen = v;
    } else if (OptValue(arg, "targets", &v)) {
      config.targets = static_cast<unsigned>(std::stoul(v, nullptr, 0));
    } else if (OptValue(arg, "target", &v)) {
      if (v == "sim") config.fpga = false;
      else if (v == "fpga") config.fpga = true;
      else return Usage();
    } else if (OptValue(arg, "stats-interval", &v)) {
      config.stats_interval_seconds =
          static_cast<unsigned>(std::stoul(v, nullptr, 0));
    } else if (OptValue(arg, "fault-rate", &v)) {
      const double rate = std::stod(v);
      if (rate < 0.0 || rate > 1.0) {
        std::fprintf(stderr, "--fault-rate must be in [0,1]\n");
        return 2;
      }
      config.link.faults.drop_rate = rate;
      config.link.faults.corrupt_rate = rate;
    } else if (OptValue(arg, "fault-seed", &v)) {
      config.link.faults.seed = std::stoull(v, nullptr, 0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (config.listen.empty()) return Usage();

  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  return tools::RunServeLoop(config, g_stop);
}
