#include <gtest/gtest.h>

#include "core/property.h"
#include "core/session.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"

namespace hardsnap::core {
namespace {

rtl::Design& Soc() {
  static rtl::Design* d = [] {
    auto r = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
    HS_CHECK_MSG(r.ok(), r.status().ToString());
    return new rtl::Design(std::move(r).value());
  }();
  return *d;
}

sim::Simulator MakeSim() {
  auto s = sim::Simulator::Create(Soc());
  EXPECT_TRUE(s.ok());
  auto sim = std::move(s).value();
  EXPECT_TRUE(sim.PokeInput("uart_rx", 1).ok());
  EXPECT_TRUE(sim.Reset().ok());
  return sim;
}

SignalProperty MustCompile(const std::string& src) {
  auto p = SignalProperty::Compile(src, Soc());
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  HS_CHECK(p.ok());
  return std::move(p).value();
}

TEST(PropertyTest, ConstantsAndOperators) {
  auto sim = MakeSim();
  EXPECT_TRUE(MustCompile("1").Holds(sim));
  EXPECT_FALSE(MustCompile("0").Holds(sim));
  EXPECT_TRUE(MustCompile("1 + 1 == 2").Holds(sim));
  EXPECT_TRUE(MustCompile("0x10 == 16").Holds(sim));
  EXPECT_TRUE(MustCompile("3 < 5 && 5 <= 5").Holds(sim));
  EXPECT_TRUE(MustCompile("!(1 && 0)").Holds(sim));
  EXPECT_TRUE(MustCompile("(5 & 3) == 1").Holds(sim));
  EXPECT_TRUE(MustCompile("(5 ^ 3) == 6").Holds(sim));
  EXPECT_TRUE(MustCompile("0 -> 0").Holds(sim));   // vacuous implication
  EXPECT_TRUE(MustCompile("1 -> 1").Holds(sim));
  EXPECT_FALSE(MustCompile("1 -> 0").Holds(sim));
}

TEST(PropertyTest, HierarchicalSignalsResolve) {
  auto sim = MakeSim();
  auto prop = MustCompile("u_timer.enable == 0");
  EXPECT_TRUE(prop.Holds(sim));
}

TEST(PropertyTest, UnknownSignalIsCompileError) {
  auto p = SignalProperty::Compile("u_timer.bogus == 0", Soc());
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("u_timer.bogus"), std::string::npos);
}

TEST(PropertyTest, SyntaxErrorsReported) {
  EXPECT_FALSE(SignalProperty::Compile("1 +", Soc()).ok());
  EXPECT_FALSE(SignalProperty::Compile("(1", Soc()).ok());
  EXPECT_FALSE(SignalProperty::Compile("1 1", Soc()).ok());
}

TEST(PropertyTest, TracksLiveHardware) {
  auto sim = MakeSim();
  auto busy_done = MustCompile("!(u_aes.busy && u_aes.done)");
  EXPECT_TRUE(busy_done.Holds(sim));

  auto enabled = MustCompile("u_timer.enable == 1");
  EXPECT_FALSE(enabled.Holds(sim));
  // Enable the timer through the bus pins.
  ASSERT_TRUE(sim.PokeInput("sel", 1).ok());
  ASSERT_TRUE(sim.PokeInput("wr", 1).ok());
  ASSERT_TRUE(sim.PokeInput("addr", 0x0000).ok());
  ASSERT_TRUE(sim.PokeInput("wdata", 1).ok());
  sim.Tick(1);
  EXPECT_TRUE(enabled.Holds(sim));
}

TEST(PropertyTest, SessionInvariantCatchesViolation) {
  // Plant a violation: an assertion that the timer's counter never goes
  // below 95 — firmware programs 100 and lets it tick past.
  SessionConfig cfg;
  auto session = Session::Create(cfg);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->LoadFirmwareAsm(R"(
    _start:
      li t0, 0x40000000
      li t1, 100
      sw t1, 4(t0)
      li t1, 1
      sw t1, 0(t0)
      li t2, 30
    spin:
      addi t2, t2, -1
      bnez t2, spin
      li t0, 0x50000004
      sw zero, 0(t0)
  )").ok());
  ASSERT_TRUE(
      session.value()->AddHardwareInvariant("u_timer.value >= 95 || u_timer.enable == 0").ok());
  auto report = session.value()->Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GE(report.value().bugs.size(), 1u);
  EXPECT_EQ(report.value().bugs[0].kind, "assertion");
  EXPECT_NE(report.value().bugs[0].detail.find("u_timer.value"),
            std::string::npos);
}

TEST(PropertyTest, SessionInvariantHoldsQuietly) {
  SessionConfig cfg;
  auto session = Session::Create(cfg);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->LoadFirmwareAsm(R"(
    _start:
      li t0, 0x50000004
      sw zero, 0(t0)
  )").ok());
  ASSERT_TRUE(
      session.value()->AddHardwareInvariant("!(u_aes.busy && u_aes.done)").ok());
  auto report = session.value()->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().bugs.empty());
}

TEST(PropertyTest, FpgaOnlySessionRejectsInvariants) {
  SessionConfig cfg;
  cfg.target = SessionConfig::Target::kFpga;
  auto session = Session::Create(std::move(cfg));
  ASSERT_TRUE(session.ok());
  auto status = session.value()->AddHardwareInvariant("1");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace hardsnap::core
