#include <gtest/gtest.h>

#include "rtl/parser.h"

namespace hardsnap::rtl {
namespace {

using ast::SourceUnit;

SourceUnit MustParse(const std::string& src) {
  auto r = ParseVerilog(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : SourceUnit{};
}

TEST(ParserTest, MinimalModule) {
  auto unit = MustParse("module m(input clk); endmodule");
  ASSERT_EQ(unit.modules.size(), 1u);
  EXPECT_EQ(unit.modules[0].name, "m");
  ASSERT_EQ(unit.modules[0].nets.size(), 1u);
  EXPECT_EQ(unit.modules[0].nets[0].name, "clk");
  EXPECT_TRUE(unit.modules[0].nets[0].is_port);
}

TEST(ParserTest, AnsiPortsWithRanges) {
  auto unit = MustParse(R"(
    module m(input clk, input [7:0] data, output reg [31:0] result);
    endmodule
  )");
  const auto& nets = unit.modules[0].nets;
  ASSERT_EQ(nets.size(), 3u);
  EXPECT_EQ(nets[1].name, "data");
  ASSERT_NE(nets[1].msb, nullptr);
  EXPECT_EQ(nets[2].net, ast::NetKind::kReg);
  EXPECT_EQ(nets[2].dir, ast::PortDir::kOutput);
}

TEST(ParserTest, NetDeclarations) {
  auto unit = MustParse(R"(
    module m(input clk);
      wire [3:0] a, b;
      reg [7:0] state;
      reg [7:0] fifo [0:15];
    endmodule
  )");
  const auto& nets = unit.modules[0].nets;
  ASSERT_EQ(nets.size(), 5u);
  EXPECT_EQ(nets[1].name, "a");
  EXPECT_EQ(nets[2].name, "b");
  ASSERT_NE(nets[2].msb, nullptr);  // shared range cloned onto b
  EXPECT_EQ(nets[4].name, "fifo");
  EXPECT_NE(nets[4].mem_msb, nullptr);
}

TEST(ParserTest, Parameters) {
  auto unit = MustParse(R"(
    module m #(parameter WIDTH = 8, DEPTH = 16)(input clk);
      localparam HALF = WIDTH / 2;
    endmodule
  )");
  ASSERT_EQ(unit.modules[0].params.size(), 3u);
  EXPECT_EQ(unit.modules[0].params[0].name, "WIDTH");
  EXPECT_EQ(unit.modules[0].params[2].name, "HALF");
}

TEST(ParserTest, ContinuousAssign) {
  auto unit = MustParse(R"(
    module m(input clk, input [7:0] a, output [7:0] y);
      assign y = a + 8'h01;
    endmodule
  )");
  ASSERT_EQ(unit.modules[0].assigns.size(), 1u);
  EXPECT_EQ(unit.modules[0].assigns[0].lhs.name, "y");
}

TEST(ParserTest, AlwaysPosedge) {
  auto unit = MustParse(R"(
    module m(input clk, input rst);
      reg [7:0] count;
      always @(posedge clk) begin
        if (rst) count <= 8'h00;
        else count <= count + 8'h01;
      end
    endmodule
  )");
  ASSERT_EQ(unit.modules[0].always.size(), 1u);
  EXPECT_EQ(unit.modules[0].always[0].sens, ast::SensKind::kPosedgeClock);
  EXPECT_EQ(unit.modules[0].always[0].clock_name, "clk");
}

TEST(ParserTest, AlwaysCombinational) {
  auto unit = MustParse(R"(
    module m(input clk, input [1:0] sel, input [7:0] a, output reg [7:0] y);
      always @(*) begin
        case (sel)
          2'd0: y = a;
          2'd1: y = ~a;
          default: y = 8'h00;
        endcase
      end
    endmodule
  )");
  const auto& ab = unit.modules[0].always[0];
  EXPECT_EQ(ab.sens, ast::SensKind::kCombinational);
  ASSERT_EQ(ab.body->kind, ast::StmtKind::kBlock);
  ASSERT_EQ(ab.body->body[0]->kind, ast::StmtKind::kCase);
  EXPECT_EQ(ab.body->body[0]->items.size(), 3u);
  EXPECT_TRUE(ab.body->body[0]->items[2].labels.empty());  // default
}

TEST(ParserTest, AsyncResetRejected) {
  auto r = ParseVerilog(R"(
    module m(input clk, input rst);
      reg q;
      always @(posedge clk or posedge rst) q <= 1'b0;
    endmodule
  )");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("async"), std::string::npos);
}

TEST(ParserTest, NegedgeRejected) {
  EXPECT_FALSE(ParseVerilog(R"(
    module m(input clk);
      reg q;
      always @(negedge clk) q <= 1'b0;
    endmodule
  )").ok());
}

TEST(ParserTest, InitialBlockRejected) {
  EXPECT_FALSE(ParseVerilog(R"(
    module m(input clk);
      reg q;
      initial q = 0;
    endmodule
  )").ok());
}

TEST(ParserTest, InstanceWithParamsAndConnections) {
  auto unit = MustParse(R"(
    module child #(parameter W = 4)(input clk, input [3:0] d, output [3:0] q);
    endmodule
    module top(input clk);
      wire [3:0] q;
      child #(.W(8)) u_child (.clk(clk), .d(4'hf), .q(q));
    endmodule
  )");
  ASSERT_EQ(unit.modules.size(), 2u);
  const auto& inst = unit.modules[1].instances[0];
  EXPECT_EQ(inst.module_name, "child");
  EXPECT_EQ(inst.instance_name, "u_child");
  ASSERT_EQ(inst.param_overrides.size(), 1u);
  EXPECT_EQ(inst.param_overrides[0].name, "W");
  ASSERT_EQ(inst.conns.size(), 3u);
  EXPECT_EQ(inst.conns[1].port, "d");
}

TEST(ParserTest, ExpressionPrecedence) {
  // a | b & c must parse as a | (b & c)
  auto unit = MustParse(R"(
    module m(input clk, input a, input b, input c, output y);
      assign y = a | b & c;
    endmodule
  )");
  const auto& rhs = *unit.modules[0].assigns[0].rhs;
  ASSERT_EQ(rhs.kind, ast::ExprKind::kBinary);
  EXPECT_EQ(rhs.bin_op, ast::BinOp::kOr);
  EXPECT_EQ(rhs.args[1]->bin_op, ast::BinOp::kAnd);
}

TEST(ParserTest, TernaryAndConcat) {
  auto unit = MustParse(R"(
    module m(input clk, input s, input [3:0] a, output [7:0] y);
      assign y = s ? {a, a} : {2{a}};
    endmodule
  )");
  const auto& rhs = *unit.modules[0].assigns[0].rhs;
  ASSERT_EQ(rhs.kind, ast::ExprKind::kTernary);
  EXPECT_EQ(rhs.args[1]->kind, ast::ExprKind::kConcat);
  EXPECT_EQ(rhs.args[2]->kind, ast::ExprKind::kReplicate);
}

TEST(ParserTest, BitAndPartSelects) {
  auto unit = MustParse(R"(
    module m(input clk, input [7:0] a, input [2:0] i, output y, output [3:0] z);
      assign y = a[i];
      assign z = a[7:4];
    endmodule
  )");
  EXPECT_EQ(unit.modules[0].assigns[0].rhs->kind, ast::ExprKind::kIndex);
  EXPECT_EQ(unit.modules[0].assigns[1].rhs->kind, ast::ExprKind::kRange);
}

TEST(ParserTest, LessEqualInExpressionContext) {
  // `<=` must parse as comparison inside an if condition.
  auto unit = MustParse(R"(
    module m(input clk, input [7:0] a);
      reg flag;
      always @(posedge clk) begin
        if (a <= 8'd10) flag <= 1'b1;
      end
    endmodule
  )");
  const auto& ifs = *unit.modules[0].always[0].body->body[0];
  ASSERT_EQ(ifs.kind, ast::StmtKind::kIf);
  EXPECT_EQ(ifs.cond->bin_op, ast::BinOp::kLe);
}

TEST(ParserTest, SignedFunction) {
  auto unit = MustParse(R"(
    module m(input clk, input [7:0] a, input [7:0] b, output y);
      assign y = $signed(a) < $signed(b);
    endmodule
  )");
  const auto& rhs = *unit.modules[0].assigns[0].rhs;
  EXPECT_EQ(rhs.args[0]->kind, ast::ExprKind::kSigned);
}

TEST(ParserTest, MissingSemicolonRejected) {
  EXPECT_FALSE(ParseVerilog("module m(input clk) endmodule").ok());
}

TEST(ParserTest, UnbalancedBeginEndRejected) {
  EXPECT_FALSE(ParseVerilog(R"(
    module m(input clk);
      reg q;
      always @(posedge clk) begin q <= 1'b0;
    endmodule
  )").ok());
}

TEST(ParserTest, ErrorsIncludeLineNumbers) {
  auto r = ParseVerilog("module m(input clk);\n\n  bogus!\nendmodule");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(ParserTest, MultipleModules) {
  auto unit = MustParse(R"(
    module a(input clk); endmodule
    module b(input clk); endmodule
    module c(input clk); endmodule
  )");
  EXPECT_EQ(unit.modules.size(), 3u);
}

}  // namespace
}  // namespace hardsnap::rtl
