#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtl/elaborate.h"
#include "scanchain/scan_controller.h"
#include "scanchain/scan_pass.h"
#include "sim/simulator.h"

namespace hardsnap::scanchain {
namespace {

rtl::Design Compile(const std::string& src) {
  auto r = rtl::CompileVerilog(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

sim::Simulator MustSim(const rtl::Design& d) {
  auto r = sim::Simulator::Create(d);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

constexpr const char* kMixedDesign = R"(
  module mixed(input clk, input rst, input [7:0] in, input we,
               input [3:0] waddr, output [15:0] out);
    reg [15:0] lfsr;
    reg [7:0] acc;
    reg flag;
    reg [7:0] mem [0:15];
    always @(posedge clk) begin
      if (rst) begin
        lfsr <= 16'hace1;
        acc <= 8'h00;
        flag <= 1'b0;
      end else begin
        lfsr <= {lfsr[14:0], lfsr[15] ^ lfsr[13] ^ lfsr[12] ^ lfsr[10]};
        acc <= acc + in;
        flag <= ~flag;
      end
      if (we) mem[waddr] <= in;
    end
    assign out = lfsr ^ {acc, 7'h00, flag};
  endmodule
)";

InstrumentedDesign MustInstrument(const rtl::Design& d,
                                  const ScanOptions& opts = {}) {
  auto r = InsertScanChain(d, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ScanPassTest, AddsScanPins) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  EXPECT_NE(inst.design.FindSignal("scan_enable"), rtl::kInvalidId);
  EXPECT_NE(inst.design.FindSignal("scan_in"), rtl::kInvalidId);
  EXPECT_NE(inst.design.FindSignal("scan_out"), rtl::kInvalidId);
}

TEST(ScanPassTest, ChainCoversAllRegisterBits) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  EXPECT_EQ(inst.map.total_bits, 16u + 8u + 1u);
  EXPECT_EQ(inst.map.slots.size(), 3u);
  EXPECT_EQ(inst.map.total_mem_words, 16u);
  ASSERT_EQ(inst.map.mem_ports.size(), 1u);
  EXPECT_EQ(inst.map.mem_ports[0].memory_name, "mem");
}

TEST(ScanPassTest, MemoryPortsAdded) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  EXPECT_NE(inst.design.FindSignal("scan_mem_en"), rtl::kInvalidId);
  EXPECT_NE(inst.design.FindSignal("scan_mem_addr"), rtl::kInvalidId);
  EXPECT_NE(inst.design.FindSignal("scan_mem_wdata"), rtl::kInvalidId);
  EXPECT_NE(inst.design.FindSignal("scan_mem_rdata"), rtl::kInvalidId);
}

TEST(ScanPassTest, OverheadReported) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  // Same number of flops, more expression nodes and signals.
  EXPECT_EQ(inst.map.instrumented_stats.num_flops,
            inst.map.original_stats.num_flops);
  EXPECT_GT(inst.map.instrumented_stats.num_expr_nodes,
            inst.map.original_stats.num_expr_nodes);
  EXPECT_GT(inst.map.instrumented_stats.num_signals,
            inst.map.original_stats.num_signals);
}

TEST(ScanPassTest, ReservedNameCollisionRejected) {
  auto d = Compile(R"(
    module m(input clk, input scan_enable, output y);
      assign y = scan_enable;
    endmodule
  )");
  EXPECT_FALSE(InsertScanChain(d).ok());
}

TEST(ScanPassTest, InstrumentedDesignValidates) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  EXPECT_TRUE(inst.design.Validate().ok());
}

// Property: with scan_enable=0 the instrumented design is cycle-for-cycle
// equivalent to the original (the paper's non-interference requirement).
class ScanEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ScanEquivalenceTest, FunctionalBehaviourUnchanged) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);

  auto ref = MustSim(d);
  auto dut = MustSim(inst.design);
  ASSERT_TRUE(ref.Reset().ok());
  ASSERT_TRUE(dut.Reset().ok());
  ASSERT_TRUE(dut.PokeInput("scan_enable", 0).ok());

  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int cycle = 0; cycle < 200; ++cycle) {
    uint64_t in = rng.Bits(8), we = rng.Bits(1), waddr = rng.Bits(4);
    for (auto* s : {&ref, &dut}) {
      ASSERT_TRUE(s->PokeInput("in", in).ok());
      ASSERT_TRUE(s->PokeInput("we", we).ok());
      ASSERT_TRUE(s->PokeInput("waddr", waddr).ok());
      s->Tick(1);
    }
    ASSERT_EQ(dut.Peek("out").value(), ref.Peek("out").value())
        << "diverged at cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanEquivalenceTest, ::testing::Range(0, 8));

TEST(ScanControllerTest, SaveMatchesSimulatorDump) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  auto sim = MustSim(inst.design);
  ASSERT_TRUE(sim.Reset().ok());
  ASSERT_TRUE(sim.PokeInput("in", 0x5a).ok());
  ASSERT_TRUE(sim.PokeInput("we", 1).ok());
  ASSERT_TRUE(sim.PokeInput("waddr", 3).ok());
  sim.Tick(17);

  // Ground truth via the simulator's privileged access.
  auto truth = sim.DumpState();

  ScanController ctrl(&sim, inst.map);
  auto saved = ctrl.Save();
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(saved.value().flops, truth.flops);
  EXPECT_EQ(saved.value().memories, truth.memories);
}

TEST(ScanControllerTest, SaveIsNonDestructive) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  auto sim = MustSim(inst.design);
  ASSERT_TRUE(sim.Reset().ok());
  ASSERT_TRUE(sim.PokeInput("in", 0x11).ok());
  sim.Tick(9);
  auto before = sim.DumpState();

  ScanController ctrl(&sim, inst.map);
  ASSERT_TRUE(ctrl.Save().ok());
  auto after = sim.DumpState();
  EXPECT_EQ(before.flops, after.flops);
  EXPECT_EQ(before.memories, after.memories);
}

TEST(ScanControllerTest, RestoreLoadsState) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  auto sim = MustSim(inst.design);
  ASSERT_TRUE(sim.Reset().ok());
  ASSERT_TRUE(sim.PokeInput("in", 0x77).ok());
  ASSERT_TRUE(sim.PokeInput("we", 1).ok());
  ASSERT_TRUE(sim.PokeInput("waddr", 9).ok());
  sim.Tick(31);
  auto golden = sim.DumpState();

  sim.Tick(50);  // drift away
  ASSERT_NE(sim.DumpState().flops, golden.flops);

  ScanController ctrl(&sim, inst.map);
  ASSERT_TRUE(ctrl.Restore(golden).ok());
  auto now = sim.DumpState();
  EXPECT_EQ(now.flops, golden.flops);
  EXPECT_EQ(now.memories, golden.memories);
}

TEST(ScanControllerTest, SaveRestoreSwapsStates) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  auto sim = MustSim(inst.design);
  ASSERT_TRUE(sim.Reset().ok());
  sim.Tick(5);
  auto state_a = sim.DumpState();
  sim.Tick(23);
  auto state_b = sim.DumpState();

  // Hardware currently holds B; swap in A, should get B back out.
  ScanController ctrl(&sim, inst.map);
  auto out = ctrl.SaveRestore(state_a);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().flops, state_b.flops);
  EXPECT_EQ(sim.DumpState().flops, state_a.flops);
}

TEST(ScanControllerTest, RestoredStateResumesIdentically) {
  // After a scan-chain restore, execution must continue exactly as it
  // would have from the original state (the consistency property the
  // whole paper rests on).
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  auto sim = MustSim(inst.design);
  ASSERT_TRUE(sim.Reset().ok());
  ASSERT_TRUE(sim.PokeInput("in", 0x2d).ok());
  sim.Tick(11);
  auto snap = sim.DumpState();

  std::vector<uint64_t> expected;
  for (int i = 0; i < 30; ++i) {
    sim.Tick(1);
    expected.push_back(sim.Peek("out").value());
  }

  ScanController ctrl(&sim, inst.map);
  ASSERT_TRUE(ctrl.Restore(snap).ok());
  std::vector<uint64_t> replay;
  for (int i = 0; i < 30; ++i) {
    sim.Tick(1);
    replay.push_back(sim.Peek("out").value());
  }
  EXPECT_EQ(replay, expected);
}

TEST(ScanControllerTest, PassCyclesLinearInStateBits) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  auto sim = MustSim(inst.design);
  ScanController ctrl(&sim, inst.map);
  EXPECT_EQ(ctrl.PassCycles(), 25u + 16u);  // 25 FF bits + 16 memory words
}

TEST(ScanControllerTest, ScanShiftCostMeasuredInCycles) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  auto sim = MustSim(inst.design);
  ASSERT_TRUE(sim.Reset().ok());
  uint64_t before = sim.cycle_count();
  ScanController ctrl(&sim, inst.map);
  ASSERT_TRUE(ctrl.Save().ok());
  EXPECT_EQ(sim.cycle_count() - before, ctrl.PassCycles());
}

TEST(ScanScopeTest, ScopedInstrumentationOnlyChainsPrefix) {
  auto d = Compile(R"(
    module leaf(input clk, input [7:0] d, output [7:0] q);
      reg [7:0] state;
      always @(posedge clk) state <= d;
      assign q = state;
    endmodule
    module top(input clk, input [7:0] in, output [7:0] out);
      wire [7:0] mid;
      leaf u_a (.clk(clk), .d(in), .q(mid));
      leaf u_b (.clk(clk), .d(mid), .q(out));
    endmodule
  )");
  ScanOptions opts;
  opts.scope_prefix = "u_a.";
  auto inst = MustInstrument(d, opts);
  EXPECT_EQ(inst.map.total_bits, 8u);
  ASSERT_EQ(inst.map.slots.size(), 1u);
  EXPECT_EQ(inst.map.slots[0].signal_name, "u_a.state");
}

// Property test: random states shift in and out intact.
class ScanRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(ScanRoundTripTest, RandomStateRoundTrips) {
  auto d = Compile(kMixedDesign);
  auto inst = MustInstrument(d);
  auto sim = MustSim(inst.design);
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);

  sim::HardwareState target;
  target.flops.resize(inst.design.flops().size());
  for (size_t i = 0; i < target.flops.size(); ++i) {
    unsigned w = inst.design.signal(inst.design.flops()[i].q).width;
    target.flops[i] = rng.Bits(w);
  }
  target.memories.resize(inst.design.memories().size());
  for (size_t m = 0; m < target.memories.size(); ++m) {
    const auto& mem = inst.design.memories()[m];
    target.memories[m].resize(mem.depth);
    for (auto& word : target.memories[m]) word = rng.Bits(mem.width);
  }

  ScanController ctrl(&sim, inst.map);
  ASSERT_TRUE(ctrl.Restore(target).ok());
  auto back = ctrl.Save();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().flops, target.flops);
  EXPECT_EQ(back.value().memories, target.memories);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanRoundTripTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace hardsnap::scanchain
