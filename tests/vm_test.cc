#include <gtest/gtest.h>

#include "common/rng.h"
#include "vm/assembler.h"
#include "vm/isa.h"
#include "vm/memmap.h"

namespace hardsnap::vm {
namespace {

Instruction MustDecode(uint32_t word) {
  auto r = Decode(word);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value_or(Instruction{});
}

TEST(IsaTest, DecodeKnownWords) {
  // addi a0, a0, 1  = 0x00150513
  auto in = MustDecode(0x00150513);
  EXPECT_EQ(in.op, Opcode::kAddi);
  EXPECT_EQ(in.rd, 10);
  EXPECT_EQ(in.rs1, 10);
  EXPECT_EQ(in.imm, 1);

  // lui a0, 0x12345 = 0x12345537
  in = MustDecode(0x12345537);
  EXPECT_EQ(in.op, Opcode::kLui);
  EXPECT_EQ(static_cast<uint32_t>(in.imm), 0x12345000u);

  // sw a1, 8(sp) = 0x00b12423
  in = MustDecode(0x00b12423);
  EXPECT_EQ(in.op, Opcode::kSw);
  EXPECT_EQ(in.rs1, 2);
  EXPECT_EQ(in.rs2, 11);
  EXPECT_EQ(in.imm, 8);

  // ecall / ebreak / mret
  EXPECT_EQ(MustDecode(0x00000073).op, Opcode::kEcall);
  EXPECT_EQ(MustDecode(0x00100073).op, Opcode::kEbreak);
  EXPECT_EQ(MustDecode(0x30200073).op, Opcode::kMret);
}

TEST(IsaTest, DecodeNegativeImmediates) {
  // addi a0, a0, -1 = 0xfff50513
  auto in = MustDecode(0xfff50513);
  EXPECT_EQ(in.imm, -1);
  // beq a0, a1, -8: B-type negative displacement
  Instruction b{Opcode::kBeq, 0, 10, 11, -8, 0};
  auto word = Encode(b);
  ASSERT_TRUE(word.ok());
  auto back = MustDecode(word.value());
  EXPECT_EQ(back.op, Opcode::kBeq);
  EXPECT_EQ(back.imm, -8);
}

TEST(IsaTest, RejectsGarbageWords) {
  EXPECT_FALSE(Decode(0xffffffff).ok());
  EXPECT_FALSE(Decode(0x00000000).ok());
}

TEST(IsaTest, EncodeDecodeRoundTripAllOpcodes) {
  // Every opcode encodes then decodes to itself with representative fields.
  const Opcode all[] = {
      Opcode::kLui, Opcode::kAuipc, Opcode::kJal, Opcode::kJalr,
      Opcode::kBeq, Opcode::kBne, Opcode::kBlt, Opcode::kBge, Opcode::kBltu,
      Opcode::kBgeu, Opcode::kLb, Opcode::kLh, Opcode::kLw, Opcode::kLbu,
      Opcode::kLhu, Opcode::kSb, Opcode::kSh, Opcode::kSw, Opcode::kAddi,
      Opcode::kSlti, Opcode::kSltiu, Opcode::kXori, Opcode::kOri,
      Opcode::kAndi, Opcode::kSlli, Opcode::kSrli, Opcode::kSrai,
      Opcode::kAdd, Opcode::kSub, Opcode::kSll, Opcode::kSlt, Opcode::kSltu,
      Opcode::kXor, Opcode::kSrl, Opcode::kSra, Opcode::kOr, Opcode::kAnd,
      Opcode::kMul, Opcode::kMulh, Opcode::kMulhsu, Opcode::kMulhu,
      Opcode::kDiv, Opcode::kDivu, Opcode::kRem, Opcode::kRemu,
      Opcode::kCsrrw, Opcode::kCsrrs, Opcode::kCsrrc, Opcode::kEcall,
      Opcode::kEbreak, Opcode::kMret, Opcode::kWfi};
  for (Opcode op : all) {
    Instruction in;
    in.op = op;
    in.rd = 5;
    in.rs1 = 6;
    in.rs2 = 7;
    switch (op) {
      case Opcode::kLui: case Opcode::kAuipc:
        in.imm = 0x12345000; break;
      case Opcode::kJal: in.imm = 2048; break;
      case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
      case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
        in.imm = -16; break;
      case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai:
        in.imm = 13; break;
      case Opcode::kCsrrw: case Opcode::kCsrrs: case Opcode::kCsrrc:
        in.csr = kCsrMstatus; break;
      case Opcode::kEcall: case Opcode::kEbreak: case Opcode::kMret:
      case Opcode::kWfi:
        in.rd = in.rs1 = in.rs2 = 0; break;
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kSll:
      case Opcode::kSlt: case Opcode::kSltu: case Opcode::kXor:
      case Opcode::kSrl: case Opcode::kSra: case Opcode::kOr:
      case Opcode::kAnd: case Opcode::kMul: case Opcode::kMulh:
      case Opcode::kMulhsu: case Opcode::kMulhu: case Opcode::kDiv:
      case Opcode::kDivu: case Opcode::kRem: case Opcode::kRemu:
        in.imm = 0; break;  // R-type carries no immediate
      default:
        in.imm = -100; break;
    }
    auto word = Encode(in);
    ASSERT_TRUE(word.ok()) << OpcodeName(op);
    auto back = Decode(word.value());
    ASSERT_TRUE(back.ok()) << OpcodeName(op) << " word " << word.value();
    EXPECT_EQ(back.value().op, in.op) << OpcodeName(op);
    // Branches and stores have no rd field; system ops have none at all.
    const bool has_rd =
        !(op == Opcode::kBeq || op == Opcode::kBne || op == Opcode::kBlt ||
          op == Opcode::kBge || op == Opcode::kBltu || op == Opcode::kBgeu ||
          op == Opcode::kSb || op == Opcode::kSh || op == Opcode::kSw ||
          op == Opcode::kEcall || op == Opcode::kEbreak ||
          op == Opcode::kMret || op == Opcode::kWfi);
    if (has_rd) {
      EXPECT_EQ(back.value().rd, in.rd) << OpcodeName(op);
    }
    EXPECT_EQ(back.value().imm, in.imm) << OpcodeName(op);
  }
}

TEST(IsaTest, DisassembleProducesText) {
  EXPECT_EQ(Disassemble(MustDecode(0x00150513)), "addi a0, a0, 1");
  EXPECT_EQ(Disassemble(MustDecode(0x00000073)), "ecall");
}

TEST(AssemblerTest, EmptyProgram) {
  auto img = Assemble("");
  ASSERT_TRUE(img.ok());
  EXPECT_TRUE(img.value().bytes.empty());
}

TEST(AssemblerTest, SimpleArithmetic) {
  auto img = Assemble(R"(
    addi a0, zero, 5
    addi a1, zero, 7
    add a2, a0, a1
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  ASSERT_EQ(img.value().bytes.size(), 12u);
  uint32_t w0 = 0;
  for (int i = 0; i < 4; ++i) w0 |= uint32_t{img.value().bytes[i]} << (8 * i);
  auto in = MustDecode(w0);
  EXPECT_EQ(in.op, Opcode::kAddi);
  EXPECT_EQ(in.imm, 5);
}

TEST(AssemblerTest, LabelsAndBranches) {
  auto img = Assemble(R"(
    start:
      addi a0, zero, 10
    loop:
      addi a0, a0, -1
      bnez a0, loop
      j done
      nop
    done:
      ebreak
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  const auto& symbols = img.value().symbols;
  EXPECT_EQ(symbols.at("start"), 0u);
  EXPECT_EQ(symbols.at("loop"), 4u);
  EXPECT_EQ(symbols.at("done"), 20u);
}

TEST(AssemblerTest, LiExpandsTo32Bit) {
  auto img = Assemble(R"(
    li a0, 0x40000000
    li a1, -5
    li a2, 0x12345678
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  EXPECT_EQ(img.value().bytes.size(), 24u);  // 3 x (lui+addi or addi+pad)
}

TEST(AssemblerTest, MemoryOperands) {
  auto img = Assemble(R"(
    lw a0, 8(sp)
    sw a0, -4(s0)
    lbu a1, 0(a0)
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  uint32_t w1 = 0;
  for (int i = 0; i < 4; ++i)
    w1 |= uint32_t{img.value().bytes[4 + i]} << (8 * i);
  auto in = MustDecode(w1);
  EXPECT_EQ(in.op, Opcode::kSw);
  EXPECT_EQ(in.imm, -4);
  EXPECT_EQ(in.rs1, 8);  // s0
}

TEST(AssemblerTest, DirectivesWordSpaceOrg) {
  auto img = Assemble(R"(
      j entry
      nop
    table:
      .word 0x11111111, 0x22222222
      .space 8
    entry:
      nop
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  EXPECT_EQ(img.value().symbols.at("table"), 8u);
  EXPECT_EQ(img.value().symbols.at("entry"), 24u);
  EXPECT_EQ(img.value().bytes[8], 0x11);
  EXPECT_EQ(img.value().bytes[12], 0x22);
}

TEST(AssemblerTest, CsrPseudoOps) {
  auto img = Assemble(R"(
    csrw mtvec, a0
    csrr a1, mepc
    mret
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  uint32_t w0 = 0;
  for (int i = 0; i < 4; ++i) w0 |= uint32_t{img.value().bytes[i]} << (8 * i);
  auto in = MustDecode(w0);
  EXPECT_EQ(in.op, Opcode::kCsrrw);
  EXPECT_EQ(in.csr, kCsrMtvec);
}

TEST(AssemblerTest, CallAndRet) {
  auto img = Assemble(R"(
      call func
      ebreak
    func:
      ret
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  uint32_t w0 = 0;
  for (int i = 0; i < 4; ++i) w0 |= uint32_t{img.value().bytes[i]} << (8 * i);
  auto in = MustDecode(w0);
  EXPECT_EQ(in.op, Opcode::kJal);
  EXPECT_EQ(in.rd, 1);  // ra
  EXPECT_EQ(in.imm, 8);
}

TEST(AssemblerTest, UnknownMnemonicRejected) {
  auto r = Assemble("frobnicate a0, a1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("frobnicate"), std::string::npos);
}

TEST(AssemblerTest, UnknownSymbolRejected) {
  EXPECT_FALSE(Assemble("j nowhere").ok());
}

TEST(AssemblerTest, DuplicateLabelRejected) {
  EXPECT_FALSE(Assemble("a:\nnop\na:\nnop").ok());
}

TEST(AssemblerTest, BackwardOrgRejected) {
  EXPECT_FALSE(Assemble(".org 0x100\nnop\n.org 0x0").ok());
}

TEST(AssemblerTest, CommentsIgnored) {
  auto img = Assemble(R"(
    # full line comment
    nop        # trailing comment
    nop        // C style
  )");
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img.value().bytes.size(), 8u);
}

TEST(AssemblerTest, RandomInstructionsRoundTripThroughDecode) {
  // Assemble random R-type instructions; every emitted word must decode.
  Rng rng(2024);
  std::string src;
  const char* ops[] = {"add", "sub", "xor", "and", "or", "sll", "srl", "mul"};
  for (int i = 0; i < 100; ++i) {
    src += std::string(ops[rng.Below(8)]) + " x" +
           std::to_string(rng.Below(32)) + ", x" +
           std::to_string(rng.Below(32)) + ", x" +
           std::to_string(rng.Below(32)) + "\n";
  }
  auto img = Assemble(src);
  ASSERT_TRUE(img.ok());
  ASSERT_EQ(img.value().bytes.size(), 400u);
  for (size_t off = 0; off < 400; off += 4) {
    uint32_t w = 0;
    for (int i = 0; i < 4; ++i)
      w |= uint32_t{img.value().bytes[off + i]} << (8 * i);
    EXPECT_TRUE(Decode(w).ok()) << "offset " << off;
  }
}

TEST(MemMapTest, RegionPredicates) {
  EXPECT_TRUE(InRom(0));
  EXPECT_TRUE(InRom(kRomSize - 1));
  EXPECT_FALSE(InRom(kRomSize));
  EXPECT_TRUE(InRam(kRamBase));
  EXPECT_TRUE(InMmio(kMmioBase));
  EXPECT_FALSE(InMmio(kMmioBase + kMmioSize));
  EXPECT_EQ(PeripheralAddr(2, 0x10), 0x40000210u);
}

}  // namespace
}  // namespace hardsnap::vm
