// Networked campaigns: FuzzCampaign workers driving remote targets hosted
// by a TargetServer, exercised over a loopback Unix socket.
//
// The contract under test is the pure-function findings guarantee
// extended across the wire: with share_corpus=false a campaign's findings
// are a function of (seed, firmware) only — not of WHERE the targets run,
// and not of whether the server died and restarted mid-campaign (workers
// fail over, re-provision a fresh session and catch up by seed replay).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "campaign/campaign.h"
#include "firmware/corpus.h"
#include "net/address.h"
#include "periph/periph.h"
#include "remote/remote_target.h"
#include "remote/server.h"
#include "rtl/elaborate.h"
#include "vm/assembler.h"

namespace hardsnap::campaign {
namespace {

rtl::Design& Soc() {
  static rtl::Design* d = [] {
    auto r = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
    HS_CHECK_MSG(r.ok(), r.status().ToString());
    return new rtl::Design(std::move(r).value());
  }();
  return *d;
}

vm::FirmwareImage ParserImage() {
  auto img = vm::Assemble(firmware::VulnerableParserFirmware());
  HS_CHECK_MSG(img.ok(), img.status().ToString());
  return std::move(img).value();
}

FuzzCampaignOptions BaseOptions(uint64_t execs = 400) {
  FuzzCampaignOptions opts;
  opts.workers = 2;
  opts.total_execs = execs;
  opts.seed = 2026;
  opts.fuzz.input_size = 2;
  return opts;
}

remote::TargetFactory ServerSideSimFactory() {
  return []() -> Result<std::unique_ptr<bus::HardwareTarget>> {
    auto t = bus::SimulatorTarget::Create(Soc());
    if (!t.ok()) return t.status();
    return std::unique_ptr<bus::HardwareTarget>(std::move(t).value());
  };
}

// Worker-side factory: every (re-)provision dials the given address.
CampaignTargetFactory ConnectFactory(const net::Address& addr) {
  return [addr](unsigned worker, uint64_t /*incarnation*/)
             -> Result<std::unique_ptr<bus::HardwareTarget>> {
    remote::RemoteTargetOptions options;
    options.client_name = "test-worker-" + std::to_string(worker);
    options.connect_backoff_ms = 20;
    options.connect_backoff_cap_ms = 100;
    auto target = remote::RemoteTarget::Connect(addr, options);
    if (!target.ok()) return target.status();
    return std::unique_ptr<bus::HardwareTarget>(std::move(target).value());
  };
}

// A fresh per-test Unix socket path (short enough for sockaddr_un).
std::string SocketPath(const char* tag) {
  return "/tmp/hs_" + std::string(tag) + "_" + std::to_string(getpid()) +
         ".sock";
}

void ExpectSameFindings(const CampaignReport& a, const CampaignReport& b) {
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.edges_covered, b.edges_covered);
  EXPECT_EQ(a.unique_crashes, b.unique_crashes);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].crash.pc, b.findings[i].crash.pc);
    EXPECT_EQ(a.findings[i].crash.input, b.findings[i].crash.input);
    EXPECT_EQ(a.findings[i].worker, b.findings[i].worker);
    EXPECT_EQ(a.findings[i].worker_seed, b.findings[i].worker_seed);
    EXPECT_EQ(a.findings[i].execs_at_find, b.findings[i].execs_at_find);
  }
}

TEST(RemoteCampaignTest, FindingsMatchInProcessRunExactly) {
  const std::string path = SocketPath("eq");
  auto addr = net::Address::Parse("unix:" + path);
  ASSERT_TRUE(addr.ok());
  auto server =
      remote::TargetServer::Start(addr.value(), ServerSideSimFactory());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const vm::FirmwareImage image = ParserImage();
  FuzzCampaign local(Soc(), image, BaseOptions());
  auto local_report = local.Run();
  ASSERT_TRUE(local_report.ok()) << local_report.status().ToString();
  ASSERT_GE(local_report.value().unique_crashes, 1u);

  FuzzCampaignOptions remote_opts = BaseOptions();
  remote_opts.target_factory = ConnectFactory(addr.value());
  FuzzCampaign remote_campaign(Soc(), image, remote_opts);
  auto remote_report = remote_campaign.Run();
  ASSERT_TRUE(remote_report.ok()) << remote_report.status().ToString();

  ExpectSameFindings(local_report.value(), remote_report.value());
  server.value()->Stop();
}

TEST(RemoteCampaignTest, TargetFactoryDoesNotChangeTheFingerprint) {
  // Resume compatibility: pointing a persisted campaign at remote targets
  // must not invalidate its durable state — the factory determines WHERE
  // execs run, never WHAT they find.
  const vm::FirmwareImage image = ParserImage();
  FuzzCampaignOptions plain = BaseOptions();
  FuzzCampaignOptions wired = BaseOptions();
  auto addr = net::Address::Parse("unix:/tmp/nowhere.sock");
  ASSERT_TRUE(addr.ok());
  wired.target_factory = ConnectFactory(addr.value());
  wired.stats_interval_seconds = 5;
  EXPECT_EQ(FuzzCampaignFingerprint(plain, image),
            FuzzCampaignFingerprint(wired, image));
}

TEST(RemoteCampaignTest, ServerRestartMidCampaignKeepsFindingsIdentical) {
  const std::string path = SocketPath("restart");
  auto addr = net::Address::Parse("unix:" + path);
  ASSERT_TRUE(addr.ok());

  const vm::FirmwareImage image = ParserImage();
  // Clean reference run, entirely in-process.
  FuzzCampaignOptions ref_opts = BaseOptions(1200);
  FuzzCampaign reference(Soc(), image, ref_opts);
  auto ref_report = reference.Run();
  ASSERT_TRUE(ref_report.ok());

  auto first =
      remote::TargetServer::Start(addr.value(), ServerSideSimFactory());
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  FuzzCampaignOptions opts = BaseOptions(1200);
  opts.max_reprovisions = 8;
  opts.target_factory = ConnectFactory(addr.value());
  FuzzCampaign campaign(Soc(), image, opts);
  Result<CampaignReport> report = InvalidArgument("campaign never ran");
  std::thread runner([&] { report = campaign.Run(); });

  // Kill the server mid-campaign, then bring a replacement up on the same
  // address. Workers see kUnavailable, re-provision through the connect
  // retry window and catch up by seed replay.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  first.value()->Stop();
  auto second =
      remote::TargetServer::Start(addr.value(), ServerSideSimFactory());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  runner.join();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The kill must actually have been survived, not merely missed: at
  // least one worker lost its session and re-provisioned.
  EXPECT_GE(report.value().reprovisions, 1u);
  ExpectSameFindings(ref_report.value(), report.value());
  second.value()->Stop();
}

// Multi-process shape the CI soak job exercises via the CLI; here the
// in-process version: one server, two whole campaigns running
// concurrently against it, per-session isolation keeping them exact.
TEST(RemoteCampaignTest, TwoConcurrentCampaignsShareOneServer) {
  const std::string path = SocketPath("soak");
  auto addr = net::Address::Parse("unix:" + path);
  ASSERT_TRUE(addr.ok());
  remote::TargetServerOptions server_opts;
  server_opts.max_sessions = 8;
  auto server = remote::TargetServer::Start(
      addr.value(), ServerSideSimFactory(), server_opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const vm::FirmwareImage image = ParserImage();
  FuzzCampaign local(Soc(), image, BaseOptions());
  auto local_report = local.Run();
  ASSERT_TRUE(local_report.ok());

  Result<CampaignReport> reports[2] = {InvalidArgument("never ran"),
                                       InvalidArgument("never ran")};
  std::thread clients[2];
  for (int i = 0; i < 2; ++i) {
    clients[i] = std::thread([&, i] {
      FuzzCampaignOptions opts = BaseOptions();
      opts.target_factory = ConnectFactory(addr.value());
      FuzzCampaign campaign(Soc(), image, opts);
      reports[i] = campaign.Run();
    });
  }
  for (auto& t : clients) t.join();

  for (auto& report : reports) {
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // Same seed, isolated sessions: both campaigns reproduce the
    // in-process findings despite sharing the server.
    ExpectSameFindings(local_report.value(), report.value());
  }
  EXPECT_GE(server.value()->stats().sessions_accepted,
            4u);  // 2 campaigns x 2 workers
  server.value()->Stop();
}

}  // namespace
}  // namespace hardsnap::campaign
