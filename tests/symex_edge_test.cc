// Edge cases of the selective symbolic VM: interrupt atomicity, budget
// and state caps, symbolic memory/data flows, computed jumps, division.
#include <gtest/gtest.h>

#include "bus/sim_target.h"
#include "firmware/corpus.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "symex/executor.h"
#include "vm/memmap.h"

namespace hardsnap::symex {
namespace {

rtl::Design& Soc() {
  static rtl::Design* d = [] {
    auto r = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
    HS_CHECK_MSG(r.ok(), r.status().ToString());
    return new rtl::Design(std::move(r).value());
  }();
  return *d;
}

std::unique_ptr<bus::SimulatorTarget> MakeTarget() {
  auto t = bus::SimulatorTarget::Create(Soc());
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

vm::FirmwareImage Asm(const std::string& src) {
  auto img = vm::Assemble(src);
  EXPECT_TRUE(img.ok()) << img.status().ToString();
  return img.value_or(vm::FirmwareImage{});
}

TEST(SymexEdgeTest, BudgetExhaustionTerminatesCleanly) {
  auto target = MakeTarget();
  ExecOptions opts;
  opts.max_instructions = 500;
  Executor ex(target.get(), opts);
  ASSERT_TRUE(ex.LoadFirmware(Asm("_start:\n  j _start\n")).ok());
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().instructions, 500u);
  EXPECT_EQ(report.value().paths_completed, 1u);
  EXPECT_EQ(report.value().paths_exited, 0u);
}

TEST(SymexEdgeTest, StateCapBoundsForks) {
  auto target = MakeTarget();
  ExecOptions opts;
  opts.max_states = 4;  // branch tree wants 2^6 states
  opts.max_instructions = 300000;
  Executor ex(target.get(), opts);
  ASSERT_TRUE(ex.LoadFirmware(
      Asm(firmware::BranchTreeFirmware(6, 2))).ok());
  ex.MakeSymbolicRegister(10, "x");
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  // Capped: fewer than 64 paths, but every live state still completes.
  EXPECT_LT(report.value().paths_completed, 64u);
  EXPECT_GE(report.value().paths_completed, 4u);
}

TEST(SymexEdgeTest, SymbolicDataRoundTripsThroughRam) {
  auto target = MakeTarget();
  Executor ex(target.get(), {});
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      li t0, 0x10000040
      sw a0, 0(t0)
      lw a1, 0(t0)
      li t1, 0xcafe
      bne a1, t1, not_magic
      ebreak
    not_magic:
      li t0, 0x50000004
      sw zero, 0(t0)
  )")).ok());
  ex.MakeSymbolicRegister(10, "value");
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  // The stored-then-loaded symbolic value must still be symbolic: the
  // magic comparison forks and the ebreak is reachable exactly when
  // value == 0xcafe.
  ASSERT_EQ(report.value().bugs.size(), 1u);
  EXPECT_EQ(report.value().bugs[0].test_case.inputs.at("value"), 0xcafeu);
}

TEST(SymexEdgeTest, SignExtendingLoadOfSymbolicByte) {
  auto target = MakeTarget();
  Executor ex(target.get(), {});
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      li t0, 0x10000000
      lb a1, 0(t0)          # sign-extended symbolic byte
      bge a1, zero, positive
      li a2, 1
      j out
    positive:
      li a2, 0
    out:
      li t0, 0x50000004
      sw a2, 0(t0)
  )")).ok());
  ASSERT_TRUE(ex.MakeSymbolicRegion(vm::kRamBase, 1, "byte").ok());
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().paths_completed, 2u);
  // Negative path requires byte >= 0x80.
  bool saw_negative = false;
  for (const auto& tc : report.value().test_cases) {
    auto it = tc.inputs.find("byte[0]");
    if (it != tc.inputs.end() && it->second >= 0x80) saw_negative = true;
  }
  EXPECT_TRUE(saw_negative);
}

TEST(SymexEdgeTest, ComputedJumpViaJalrTable) {
  auto target = MakeTarget();
  Executor ex(target.get(), {});
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      andi a0, a0, 1
      slli t0, a0, 3        # 8 bytes per arm
      la t1, arm0
      add t1, t1, t0
      jalr zero, 0(t1)
    arm0:
      li a1, 10
      j out
    arm1:
      li a1, 20
      j out
    out:
      li t0, 0x50000004
      sw a1, 0(t0)
  )")).ok());
  ex.MakeSymbolicRegister(10, "sel");
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  // The jalr target is symbolic: the single-value policy concretizes one
  // arm; the branch fork before it still covers both selector values.
  EXPECT_GE(report.value().paths_completed, 1u);
  EXPECT_GE(report.value().concretizations, 1u);
  EXPECT_TRUE(report.value().bugs.empty());
}

TEST(SymexEdgeTest, ComputedJumpAllValuesPolicyCoversBothArms) {
  auto target = MakeTarget();
  ExecOptions opts;
  opts.concretization = ConcretizationPolicy::kAllValues;
  Executor ex(target.get(), opts);
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      andi a0, a0, 1
      slli t0, a0, 3
      la t1, arm0
      add t1, t1, t0
      jalr zero, 0(t1)
    arm0:
      li a1, 10
      j out
    arm1:
      li a1, 20
      j out
    out:
      li t0, 0x50000004
      sw a1, 0(t0)
  )")).ok());
  ex.MakeSymbolicRegister(10, "sel");
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  // Both exit codes... both arms exit 0, so check paths: with kAllValues
  // the boundary forks cover both arms.
  EXPECT_GE(report.value().paths_completed, 2u);
}

TEST(SymexEdgeTest, SymbolicDivisionAndRemainder) {
  auto target = MakeTarget();
  Executor ex(target.get(), {});
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      li t0, 10
      divu t1, a0, t0
      remu t2, a0, t0
      li t3, 7
      bne t1, t3, no
      li t3, 3
      bne t2, t3, no
      ebreak              # reachable iff a0/10==7 && a0%10==3 -> a0==73
    no:
      li t0, 0x50000004
      sw zero, 0(t0)
  )")).ok());
  ex.MakeSymbolicRegister(10, "x");
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().bugs.size(), 1u);
  EXPECT_EQ(report.value().bugs[0].test_case.inputs.at("x"), 73u);
}

TEST(SymexEdgeTest, MulhUpperBitsCorrect) {
  auto target = MakeTarget();
  Executor ex(target.get(), {});
  // 0x10000 * 0x10000 = 2^32: mulhu = 1.
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      li t0, 0x10000
      mulhu a0, t0, t0
      li t1, 0x50000004
      sw a0, 0(t1)
  )")).ok());
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().exit_codes.size(), 1u);
  EXPECT_EQ(report.value().exit_codes[0], 1u);
}

TEST(SymexEdgeTest, InterruptHandlerIsAtomicAcrossStates) {
  // Two states (from one symbolic branch) both run the timer-interrupt
  // firmware; interrupts must be served per state with no cross-state
  // corruption of the handler's counter.
  auto target = MakeTarget();
  ExecOptions opts;
  opts.max_instructions = 400000;
  opts.instructions_per_slice = 3;  // aggressive interleaving
  Executor ex(target.get(), opts);
  // Wrap the interrupt firmware behind a symbolic fork so two states run
  // the same interrupt-driven sequence concurrently.
  std::string src = firmware::TimerInterruptFirmware(2);
  src.replace(src.find("_start:"), 7, "entry:");
  std::string wrapper =
      "_start:\n  andi a0, a0, 1\n  beqz a0, entry\n  nop\n  j entry\n" + src;
  ASSERT_TRUE(ex.LoadFirmware(Asm(wrapper)).ok());
  ex.MakeSymbolicRegister(10, "fork");
  auto report = ex.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().paths_completed, 2u) << report.value().Summary();
  EXPECT_EQ(report.value().paths_exited, 2u);
  EXPECT_GE(report.value().interrupts_served, 4u);  // 2 per state
}

TEST(SymexEdgeTest, MisalignedFetchIsBug) {
  auto target = MakeTarget();
  Executor ex(target.get(), {});
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      la t0, _start
      addi t0, t0, 2
      jalr zero, 0(t0)
  )")).ok());
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().bugs.size(), 1u);
  EXPECT_EQ(report.value().bugs[0].kind, "bad instruction fetch");
}

TEST(SymexEdgeTest, SymbolicExitCodeConcretized) {
  auto target = MakeTarget();
  Executor ex(target.get(), {});
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      andi a0, a0, 0xff
      li t0, 0x50000004
      sw a0, 0(t0)
  )")).ok());
  ex.MakeSymbolicRegister(10, "code");
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().exit_codes.size(), 1u);
  EXPECT_LE(report.value().exit_codes[0], 0xffu);
  EXPECT_GE(report.value().concretizations, 1u);
}

TEST(SymexEdgeTest, UnsatisfiablePathPruned) {
  auto target = MakeTarget();
  Executor ex(target.get(), {});
  // Contradictory conditions: the second branch is infeasible once the
  // first constrains a0 < 5, so only 2 paths exist, not 4.
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      li t0, 5
      bltu a0, t0, small
      j out
    small:
      li t0, 100
      bltu t0, a0, impossible    # a0 > 100 contradicts a0 < 5
      j out
    impossible:
      ebreak
    out:
      li t0, 0x50000004
      sw zero, 0(t0)
  )")).ok());
  ex.MakeSymbolicRegister(10, "x");
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().paths_completed, 2u);
  EXPECT_TRUE(report.value().bugs.empty());
}

TEST(SymexEdgeTest, PartialWordStoresMergeInMemory) {
  auto target = MakeTarget();
  Executor ex(target.get(), {});
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      li t0, 0x10000020
      li t1, 0x11223344
      sw t1, 0(t0)
      li t2, 0xaa
      sb t2, 1(t0)        # word becomes 0x1122aa44
      lw a0, 0(t0)
      li t3, 0x50000004
      sw a0, 0(t3)
  )")).ok());
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().exit_codes.size(), 1u);
  EXPECT_EQ(report.value().exit_codes[0], 0x1122aa44u);
}

TEST(SymexEdgeTest, StepHookObservesEveryInstruction) {
  auto target = MakeTarget();
  ExecOptions opts;
  uint64_t hook_calls = 0;
  uint32_t last_pc = 0;
  opts.step_hook = [&](const State& s) {
    ++hook_calls;
    last_pc = s.pc;
  };
  Executor ex(target.get(), opts);
  ASSERT_TRUE(ex.LoadFirmware(Asm(R"(
    _start:
      li a0, 1
      li a1, 2
      add a0, a0, a1
      li t0, 0x50000004
      sw a0, 0(t0)
  )")).ok());
  auto r = ex.Run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(hook_calls, r.value().instructions);
  EXPECT_GT(hook_calls, 0u);
  (void)last_pc;
}

}  // namespace
}  // namespace hardsnap::symex
