#include <gtest/gtest.h>

#include <set>

#include "campaign/campaign.h"
#include "campaign/shared_corpus.h"
#include "campaign/symex_campaign.h"
#include "common/rng.h"
#include "core/session.h"
#include "firmware/corpus.h"
#include "fuzz/fuzzer.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "vm/assembler.h"
#include "vm/memmap.h"

namespace hardsnap::campaign {
namespace {

rtl::Design& Soc() {
  static rtl::Design* d = [] {
    auto r = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
    HS_CHECK_MSG(r.ok(), r.status().ToString());
    return new rtl::Design(std::move(r).value());
  }();
  return *d;
}

vm::FirmwareImage ParserImage() {
  auto img = vm::Assemble(firmware::VulnerableParserFirmware());
  EXPECT_TRUE(img.ok());
  return img.value_or(vm::FirmwareImage{});
}

FuzzCampaignOptions ParserOptions(unsigned workers, uint64_t execs = 800) {
  FuzzCampaignOptions opts;
  opts.workers = workers;
  opts.total_execs = execs;
  opts.seed = 2026;
  opts.fuzz.input_size = 2;
  return opts;
}

// --- SharedCorpus ----------------------------------------------------------

TEST(SharedCorpusTest, MergeEdgesCountsOnlyGloballyNew) {
  SharedCorpus shared;
  EXPECT_EQ(shared.MergeEdges({1, 2, 3}), 3u);
  EXPECT_EQ(shared.MergeEdges({2, 3, 4}), 1u);
  EXPECT_EQ(shared.edges_covered(), 4u);
}

TEST(SharedCorpusTest, CrashesDeduplicatedAcrossWorkers) {
  SharedCorpus shared;
  CampaignFinding a;
  a.crash.pc = 0x2c;
  a.worker = 0;
  CampaignFinding b;
  b.crash.pc = 0x2c;
  b.worker = 3;  // same bug found by another worker
  CampaignFinding c;
  c.crash.pc = 0x40;
  EXPECT_TRUE(shared.ReportCrash(a));
  EXPECT_FALSE(shared.ReportCrash(b));
  EXPECT_TRUE(shared.ReportCrash(c));
  ASSERT_EQ(shared.findings().size(), 2u);
  EXPECT_EQ(shared.findings()[0].worker, 0u);
}

TEST(SharedCorpusTest, WorkersNeverTakeTheirOwnOffers) {
  SharedCorpus shared;
  shared.OfferInput(0, {1, 2});
  shared.OfferInput(1, {3, 4});
  shared.OfferInput(0, {1, 2});  // duplicate content: dropped
  size_t cursor0 = 0, cursor1 = 0;
  auto for0 = shared.TakeNewInputs(0, &cursor0);
  ASSERT_EQ(for0.size(), 1u);
  EXPECT_EQ(for0[0], (std::vector<uint8_t>{3, 4}));
  auto for1 = shared.TakeNewInputs(1, &cursor1);
  ASSERT_EQ(for1.size(), 1u);
  EXPECT_EQ(for1[0], (std::vector<uint8_t>{1, 2}));
  // Cursors advanced: nothing new on a second take.
  EXPECT_TRUE(shared.TakeNewInputs(0, &cursor0).empty());
}

// --- campaign end-to-end ---------------------------------------------------

TEST(FuzzCampaignTest, ParallelWorkersFindTheOverflow) {
  FuzzCampaign campaign(Soc(), ParserImage(), ParserOptions(4));
  auto report = campaign.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().execs, 800u);
  ASSERT_GE(report.value().unique_crashes, 1u);
  EXPECT_EQ(report.value().findings[0].crash.reason, "out-of-bounds store");
  EXPECT_EQ(report.value().per_worker.size(), 4u);
  // N devices in parallel: campaign time is the max, serial the sum.
  EXPECT_LT(report.value().modeled_campaign_time.picos(),
            report.value().modeled_serial_time.picos());
  EXPECT_GT(report.value().modeled_speedup, 2.0);
}

TEST(FuzzCampaignTest, SameSeedSameResults) {
  auto run = [] {
    FuzzCampaign campaign(Soc(), ParserImage(), ParserOptions(3));
    auto report = campaign.Run();
    EXPECT_TRUE(report.ok());
    return std::move(report).value();
  };
  CampaignReport a = run();
  CampaignReport b = run();
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.edges_covered, b.edges_covered);
  EXPECT_EQ(a.unique_crashes, b.unique_crashes);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].crash.pc, b.findings[i].crash.pc);
    EXPECT_EQ(a.findings[i].crash.input, b.findings[i].crash.input);
    EXPECT_EQ(a.findings[i].worker_seed, b.findings[i].worker_seed);
  }
}

// The determinism contract: every finding of an N-worker campaign names
// a derived seed + exec count that reproduce the crash in a plain
// single-threaded Fuzzer.
TEST(FuzzCampaignTest, FindingsReplaySingleThreaded) {
  const auto opts = ParserOptions(4);
  FuzzCampaign campaign(Soc(), ParserImage(), opts);
  auto report = campaign.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report.value().findings.size(), 1u);
  for (const auto& finding : report.value().findings) {
    auto replay = ReplayFinding(Soc(), ParserImage(), opts, finding);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_EQ(replay.value().pc, finding.crash.pc);
    EXPECT_EQ(replay.value().input, finding.crash.input);
  }
}

TEST(FuzzCampaignTest, WorkerCountDoesNotChangeWhatIsFound) {
  auto crash_pcs = [](unsigned workers) {
    FuzzCampaign campaign(Soc(), ParserImage(), ParserOptions(workers));
    auto report = campaign.Run();
    EXPECT_TRUE(report.ok());
    std::set<uint32_t> pcs;
    for (const auto& f : report.value().findings) pcs.insert(f.crash.pc);
    return pcs;
  };
  // Same budget, same total coverage target: the parser's one overflow
  // must surface regardless of sharding.
  EXPECT_EQ(crash_pcs(1), crash_pcs(4));
}

TEST(FuzzCampaignTest, SharedCorpusModeRunsButForbidsSeedReplay) {
  auto opts = ParserOptions(3);
  opts.share_corpus = true;
  FuzzCampaign campaign(Soc(), ParserImage(), opts);
  auto report = campaign.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GE(report.value().findings.size(), 1u);
  auto replay =
      ReplayFinding(Soc(), ParserImage(), opts, report.value().findings[0]);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FuzzCampaignTest, StopOnFirstCrashEndsEarly) {
  auto opts = ParserOptions(2, 100000);  // far more budget than needed
  opts.stop_on_first_crash = true;
  FuzzCampaign campaign(Soc(), ParserImage(), opts);
  auto report = campaign.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report.value().unique_crashes, 1u);
  EXPECT_LT(report.value().execs, opts.total_execs);
}

// --- option validation (regression: zero-size inputs used to reach
// Rng::Below(0) — undefined behaviour — inside Mutate) -----------------------

TEST(FuzzCampaignTest, ZeroInputSizeIsAnErrorNotACrash) {
  auto opts = ParserOptions(2);
  opts.fuzz.input_size = 0;
  FuzzCampaign campaign(Soc(), ParserImage(), opts);
  auto report = campaign.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(FuzzCampaignTest, ZeroWorkersRejected) {
  auto opts = ParserOptions(1);
  opts.workers = 0;
  EXPECT_EQ(ValidateFuzzCampaignOptions(opts).code(),
            StatusCode::kInvalidArgument);
  opts = ParserOptions(1);
  opts.batch_execs = 0;
  EXPECT_EQ(ValidateFuzzCampaignOptions(opts).code(),
            StatusCode::kInvalidArgument);
}

// --- symex portfolio -------------------------------------------------------

TEST(SymexCampaignTest, PortfolioFindsTheBugAndDeduplicates) {
  core::SessionConfig cfg;
  auto base = core::Session::Create(cfg);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(base.value()
                  ->LoadFirmwareAsm(firmware::VulnerableParserFirmware())
                  .ok());
  ASSERT_TRUE(
      base.value()->MakeSymbolicRegion(vm::kRamBase, 2, "packet").ok());

  SymexCampaignOptions opts;
  opts.workers = 3;  // BFS, DFS and random searchers over the same space
  opts.seed = 7;
  auto report = RunSymexCampaign(*base.value(), opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().per_worker.size(), 3u);
  // Every worker finds the overflow; the merged report carries it once.
  ASSERT_GE(report.value().bugs.size(), 1u);
  std::set<std::pair<uint32_t, std::string>> keys;
  for (const auto& bug : report.value().bugs)
    EXPECT_TRUE(keys.insert({bug.pc, bug.kind}).second)
        << "duplicate bug in merged report";
  EXPECT_EQ(report.value().bugs[0].kind, "out-of-bounds store");
  EXPECT_GE(report.value().modeled_serial_time.picos(),
            report.value().modeled_campaign_time.picos());
}

}  // namespace
}  // namespace hardsnap::campaign
