// End-to-end support for USER-supplied peripherals: a downstream project
// drops its own Verilog into a SessionConfig and gets the full HardSnap
// treatment (simulation, scan chain, snapshots, symbolic co-testing)
// with no framework changes — the paper's "designed to support new
// peripherals automatically" claim.
#include <gtest/gtest.h>

#include "core/session.h"
#include "fpga/fpga_target.h"
#include "rtl/elaborate.h"

namespace hardsnap {
namespace {

// A user's custom MAC (multiply-accumulate) accelerator.
//   0x00 CTRL   [0] start  [1] clear
//   0x04 A, 0x08 B  operands
//   0x0c ACC    accumulator (read-only)
//   0x10 STATUS [0] done; write clears
const char* kMacVerilog = R"(
module user_mac(
  input clk, input rst,
  input sel, input wr, input rd,
  input [7:0] addr, input [31:0] wdata,
  output [31:0] rdata, output irq
);
  reg [31:0] opa;
  reg [31:0] opb;
  reg [31:0] acc;
  reg done;
  reg busy;

  always @(posedge clk) begin
    if (rst) begin
      opa <= 32'h0;
      opb <= 32'h0;
      acc <= 32'h0;
      done <= 1'b0;
      busy <= 1'b0;
    end else begin
      if (busy) begin
        acc <= acc + opa * opb;
        busy <= 1'b0;
        done <= 1'b1;
      end
      if (sel && wr) begin
        case (addr)
          8'h00: begin
            if (wdata[0]) busy <= 1'b1;
            if (wdata[1]) acc <= 32'h0;
          end
          8'h04: opa <= wdata;
          8'h08: opb <= wdata;
          8'h10: done <= 1'b0;
        endcase
      end
    end
  end

  reg [31:0] rdata_mux;
  always @(*) begin
    case (addr)
      8'h04: rdata_mux = opa;
      8'h08: rdata_mux = opb;
      8'h0c: rdata_mux = acc;
      8'h10: rdata_mux = {31'h0, done};
      default: rdata_mux = 32'h0;
    endcase
  end
  assign rdata = rdata_mux;
  assign irq = done;
endmodule
)";

periph::PeripheralInfo MacPeripheral() {
  return periph::PeripheralInfo{"user_mac", "u_mac", kMacVerilog, 0, 0};
}

TEST(CustomPeripheralTest, DrivesThroughSession) {
  core::SessionConfig cfg;
  cfg.peripherals = {MacPeripheral()};
  auto session = core::Session::Create(std::move(cfg));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto& hw = session.value()->hardware();
  ASSERT_TRUE(hw.Write32(0x04, 6).ok());
  ASSERT_TRUE(hw.Write32(0x08, 7).ok());
  ASSERT_TRUE(hw.Write32(0x00, 0b01).ok());  // start
  ASSERT_TRUE(hw.Run(2).ok());
  EXPECT_EQ(hw.Read32(0x0c).value(), 42u);
  // Accumulate again.
  ASSERT_TRUE(hw.Write32(0x00, 0b01).ok());
  ASSERT_TRUE(hw.Run(2).ok());
  EXPECT_EQ(hw.Read32(0x0c).value(), 84u);
}

TEST(CustomPeripheralTest, ScanChainSnapshotsCoverIt) {
  auto soc = rtl::CompileVerilog(periph::BuildSoc({MacPeripheral()}), "soc");
  ASSERT_TRUE(soc.ok()) << soc.status().ToString();
  auto fpga = fpga::FpgaTarget::Create(soc.value());
  ASSERT_TRUE(fpga.ok());
  auto& t = *fpga.value();
  ASSERT_TRUE(t.ResetHardware().ok());
  ASSERT_TRUE(t.Write32(0x04, 100).ok());
  ASSERT_TRUE(t.Write32(0x08, 3).ok());
  ASSERT_TRUE(t.Write32(0x00, 1).ok());
  ASSERT_TRUE(t.Run(2).ok());
  ASSERT_EQ(t.Read32(0x0c).value(), 300u);

  // Snapshot mid-life, diverge, restore through the scan chain.
  ASSERT_TRUE(t.SaveToSlot(0).ok());
  ASSERT_TRUE(t.Write32(0x00, 0b10).ok());  // clear acc
  ASSERT_TRUE(t.Run(1).ok());
  ASSERT_EQ(t.Read32(0x0c).value(), 0u);
  ASSERT_TRUE(t.RestoreFromSlot(0).ok());
  EXPECT_EQ(t.Read32(0x0c).value(), 300u);
}

// Drive the user accelerator with a symbolic operand. This doubles as the
// paper's concretization-policy trade-off demo (Sec. III-B): the value
// crosses the VM boundary into concrete hardware, so with kSingleValue
// only one operand is ever tried (performance), while kAllValues forks a
// state per boundary value and provably reaches the acc==54 trap
// (completeness).
symex::Report RunMacCoTest(symex::ConcretizationPolicy policy) {
  core::SessionConfig cfg;
  cfg.peripherals = {MacPeripheral()};
  cfg.exec.max_instructions = 400000;
  cfg.exec.concretization = policy;
  cfg.exec.max_concretization_fanout = 16;
  auto session = core::Session::Create(std::move(cfg));
  HS_CHECK(session.ok());
  HS_CHECK(session.value()->LoadFirmwareAsm(R"(
    _start:
      li t0, 0x40000000
      andi a0, a0, 0xf
      sw a0, 4(t0)        # A = input & 0xf
      li t1, 6
      sw t1, 8(t0)        # B = 6
      li t1, 1
      sw t1, 0(t0)        # start
      nop
      nop
    poll:
      lw t2, 0x10(t0)
      beqz t2, poll
      lw t3, 0xc(t0)
      li t4, 54           # 9 * 6
      bne t3, t4, fine
      ebreak              # "bug" when acc == 54, i.e. input & 0xf == 9
    fine:
      li t0, 0x50000004
      sw zero, 0(t0)
  )").ok());
  session.value()->MakeSymbolicRegister(10, "operand");
  auto report = session.value()->Run();
  HS_CHECK_MSG(report.ok(), report.status().ToString());
  return report.value();
}

TEST(CustomPeripheralTest, SingleValuePolicyMissesBoundaryBug) {
  auto report = RunMacCoTest(symex::ConcretizationPolicy::kSingleValue);
  // One concrete operand crosses the boundary; the trap is (very likely)
  // missed and only one path exists.
  EXPECT_EQ(report.paths_completed, 1u);
}

TEST(CustomPeripheralTest, AllValuesPolicyFindsBoundaryBug) {
  auto report = RunMacCoTest(symex::ConcretizationPolicy::kAllValues);
  EXPECT_GT(report.paths_completed, 1u);
  ASSERT_GE(report.bugs.size(), 1u) << report.Summary();
  EXPECT_EQ(report.bugs[0].test_case.inputs.at("operand") & 0xf, 9u);
}

}  // namespace
}  // namespace hardsnap
