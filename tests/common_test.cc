#include <gtest/gtest.h>

#include <set>

#include "common/bitops.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/virtual_clock.h"

namespace hardsnap {
namespace {

TEST(BitopsTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(8), 0xffu);
  EXPECT_EQ(LowMask(32), 0xffffffffu);
  EXPECT_EQ(LowMask(64), ~uint64_t{0});
}

TEST(BitopsTest, TruncBits) {
  EXPECT_EQ(TruncBits(0x1ff, 8), 0xffu);
  EXPECT_EQ(TruncBits(0x100, 8), 0u);
  EXPECT_EQ(TruncBits(~uint64_t{0}, 64), ~uint64_t{0});
}

TEST(BitopsTest, SignExtend) {
  EXPECT_EQ(SignExtend(0xff, 8), -1);
  EXPECT_EQ(SignExtend(0x7f, 8), 127);
  EXPECT_EQ(SignExtend(0x80, 8), -128);
  EXPECT_EQ(SignExtend(1, 1), -1);
  EXPECT_EQ(SignExtend(0, 1), 0);
}

TEST(BitopsTest, ExtractBits) {
  EXPECT_EQ(ExtractBits(0xabcd, 15, 8), 0xabu);
  EXPECT_EQ(ExtractBits(0xabcd, 7, 0), 0xcdu);
  EXPECT_EQ(ExtractBits(0xabcd, 3, 0), 0xdu);
  EXPECT_EQ(ExtractBits(0x8, 3, 3), 1u);
}

TEST(BitopsTest, BitsFor) {
  EXPECT_EQ(BitsFor(1), 1u);
  EXPECT_EQ(BitsFor(2), 1u);
  EXPECT_EQ(BitsFor(3), 2u);
  EXPECT_EQ(BitsFor(256), 8u);
  EXPECT_EQ(BitsFor(257), 9u);
}

TEST(BitopsTest, XorReduce) {
  EXPECT_EQ(XorReduce(0b1011, 4), 1u);
  EXPECT_EQ(XorReduce(0b1010, 4), 0u);
  EXPECT_EQ(XorReduce(0xff00, 8), 0u);  // only low 8 bits considered
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("missing widget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing widget");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, BitsStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.Bits(8), 0xffu);
    EXPECT_LE(rng.Bits(1), 1u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// Regression: Below(0) used to compute Next() % 0 (UB); now it aborts
// with a diagnostic instead of returning garbage.
TEST(RngDeathTest, BelowZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.Below(0), "empty range");
}

// Regression: Range(lo, hi) with hi < lo used to wrap the span and draw
// from an unrelated range.
TEST(RngDeathTest, RangeInvertedBoundsAbort) {
  Rng rng(1);
  EXPECT_DEATH(rng.Range(5, 3), "hi");
}

TEST(RngTest, RangeFullSpanCoversExtremes) {
  // lo=0, hi=UINT64_MAX makes span wrap to 0 — must mean "any value",
  // not a modulo-zero draw.
  Rng rng(11);
  for (int i = 0; i < 100; ++i)
    (void)rng.Range(0, ~uint64_t{0});
  uint64_t v = rng.Range(7, 7);
  EXPECT_EQ(v, 7u);  // degenerate range is a constant
}

TEST(RngTest, WorkerSeedsAreDistinctStreams) {
  // Campaign workers derive their seed from (campaign seed, worker id);
  // streams must differ from each other AND from the undecorated seed
  // (worker 0 is not the single-threaded stream).
  const uint64_t seed = 2026;
  std::set<uint64_t> seeds{seed};
  for (uint64_t w = 0; w < 16; ++w)
    EXPECT_TRUE(seeds.insert(DeriveWorkerSeed(seed, w)).second)
        << "collision at worker " << w;
  EXPECT_NE(DeriveWorkerSeed(seed, 0), DeriveWorkerSeed(seed + 1, 0));

  Rng a(DeriveWorkerSeed(seed, 0)), b(DeriveWorkerSeed(seed, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(DurationTest, Conversions) {
  EXPECT_EQ(Duration::Nanos(5).picos(), 5000);
  EXPECT_EQ(Duration::Micros(1).nanos(), 1000.0);
  EXPECT_EQ(Duration::Millis(2).micros(), 2000.0);
  EXPECT_DOUBLE_EQ(Duration::Seconds(1.5).millis(), 1500.0);
}

TEST(DurationTest, Arithmetic) {
  Duration d = Duration::Nanos(10) + Duration::Nanos(5);
  EXPECT_EQ(d.picos(), 15000);
  d += Duration::Nanos(1);
  EXPECT_EQ(d.picos(), 16000);
  EXPECT_EQ((Duration::Nanos(10) * 3).picos(), 30000);
  EXPECT_LT(Duration::Nanos(1), Duration::Micros(1));
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ(Duration::Picos(500).ToString(), "500 ps");
  EXPECT_EQ(Duration::Nanos(12).ToString(), "12.00 ns");
  EXPECT_EQ(Duration::Micros(3).ToString(), "3.00 us");
  EXPECT_EQ(Duration::Millis(7).ToString(), "7.00 ms");
}

TEST(VirtualClockTest, Accumulates) {
  VirtualClock clk;
  EXPECT_EQ(clk.now().picos(), 0);
  clk.Advance(Duration::Nanos(10));
  clk.Advance(Duration::Nanos(5));
  EXPECT_EQ(clk.now().picos(), 15000);
  clk.Reset();
  EXPECT_EQ(clk.now().picos(), 0);
}

TEST(VirtualClockTest, PeriodOfHz) {
  EXPECT_EQ(PeriodOfHz(100e6).picos(), 10000);   // 100 MHz -> 10 ns
  EXPECT_EQ(PeriodOfHz(1e9).picos(), 1000);      // 1 GHz -> 1 ns
}

TEST(SerdeTest, RoundTripScalars) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutString("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, RoundTripVector) {
  ByteWriter w;
  std::vector<uint64_t> v = {1, 2, 3, ~uint64_t{0}};
  w.PutU64Vector(v);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU64Vector().value(), v);
}

TEST(SerdeTest, TruncatedReadFails) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.GetU32().status().code() == StatusCode::kOutOfRange);
}

TEST(SerdeTest, TruncatedStringBodyFails) {
  ByteWriter w;
  w.PutU32(100);  // claims 100 bytes, none present
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.GetString().ok());
}

}  // namespace
}  // namespace hardsnap
