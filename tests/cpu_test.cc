#include <gtest/gtest.h>

#include "bus/sim_target.h"
#include "common/rng.h"
#include "firmware/corpus.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "symex/executor.h"
#include "vm/cpu.h"

namespace hardsnap::vm {
namespace {

rtl::Design& Soc() {
  static rtl::Design* d = [] {
    auto r = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
    HS_CHECK_MSG(r.ok(), r.status().ToString());
    return new rtl::Design(std::move(r).value());
  }();
  return *d;
}

std::unique_ptr<bus::SimulatorTarget> MakeTarget() {
  auto t = bus::SimulatorTarget::Create(Soc());
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

FirmwareImage Asm(const std::string& src) {
  auto img = Assemble(src);
  EXPECT_TRUE(img.ok()) << img.status().ToString();
  return img.value_or(FirmwareImage{});
}

TEST(CpuTest, ArithmeticAndExit) {
  auto target = MakeTarget();
  Cpu cpu(target.get());
  ASSERT_TRUE(cpu.LoadFirmware(Asm(R"(
    _start:
      li a0, 100
      li a1, 58
      sub a0, a0, a1
      li t0, 0x50000004
      sw a0, 0(t0)
  )")).ok());
  auto out = cpu.Run(100);
  EXPECT_EQ(out.status, RunStatus::kExited);
  EXPECT_EQ(out.exit_code, 42u);
}

TEST(CpuTest, ConsoleAndRam) {
  auto target = MakeTarget();
  Cpu cpu(target.get());
  ASSERT_TRUE(cpu.LoadFirmware(Asm(R"(
    _start:
      li t0, 0x50000000
      li t1, 65
      sw t1, 0(t0)
      li t2, 0x10000010
      li t3, 0xbeef
      sw t3, 0(t2)
      lhu a0, 0(t2)
      li t0, 0x50000004
      sw a0, 0(t0)
  )")).ok());
  auto out = cpu.Run(100);
  EXPECT_EQ(out.status, RunStatus::kExited);
  EXPECT_EQ(out.exit_code, 0xbeefu);
  EXPECT_EQ(cpu.console(), "A");
}

TEST(CpuTest, MmioDrivesPeripherals) {
  auto target = MakeTarget();
  Cpu cpu(target.get());
  ASSERT_TRUE(cpu.LoadFirmware(Asm(firmware::AesSelfTestFirmware())).ok());
  auto out = cpu.Run(100000);
  EXPECT_EQ(out.status, RunStatus::kExited) << out.reason;
  EXPECT_EQ(out.exit_code, 0u);
}

TEST(CpuTest, InterruptsServed) {
  auto target = MakeTarget();
  Cpu cpu(target.get());
  ASSERT_TRUE(
      cpu.LoadFirmware(Asm(firmware::TimerInterruptFirmware(2))).ok());
  auto out = cpu.Run(50000);
  EXPECT_EQ(out.status, RunStatus::kExited) << out.reason;
}

TEST(CpuTest, FaultsAreReported) {
  auto target = MakeTarget();
  Cpu cpu(target.get());
  ASSERT_TRUE(cpu.LoadFirmware(Asm(R"(
    _start:
      li t0, 0x30000000
      sw zero, 0(t0)
  )")).ok());
  auto out = cpu.Run(100);
  EXPECT_EQ(out.status, RunStatus::kBug);
  EXPECT_EQ(out.reason, "out-of-bounds store");
}

TEST(CpuTest, SnapshotRestoreReplays) {
  auto target = MakeTarget();
  Cpu cpu(target.get());
  ASSERT_TRUE(cpu.LoadFirmware(Asm(R"(
    _start:
      li t0, 0x40000000
      li t1, 50
      sw t1, 4(t0)       # timer LOAD
      li t1, 1
      sw t1, 0(t0)       # enable
    spin:
      lw t2, 0x10(t0)
      bnez t2, spin
      li t0, 0x50000004
      sw zero, 0(t0)
  )")).ok());
  // Run a while, snapshot SW+HW, run to completion, restore, re-run.
  auto out = cpu.Run(40);
  ASSERT_EQ(out.status, RunStatus::kRunning);
  auto sw = cpu.SnapshotSoftware();
  auto hw = target->SaveState();
  ASSERT_TRUE(hw.ok());

  auto out1 = cpu.Run(100000);
  EXPECT_EQ(out1.status, RunStatus::kExited);
  const uint64_t icount1 = cpu.state().icount;

  cpu.RestoreSoftware(sw);
  ASSERT_TRUE(target->RestoreState(hw.value()).ok());
  auto out2 = cpu.Run(100000);
  EXPECT_EQ(out2.status, RunStatus::kExited);
  EXPECT_EQ(cpu.state().icount, icount1);  // identical replay length
}

TEST(CpuTest, CoverageLogRecordsEdges) {
  auto target = MakeTarget();
  Cpu cpu(target.get());
  ASSERT_TRUE(cpu.LoadFirmware(Asm(R"(
    _start:
      li t0, 3
    loop:
      addi t0, t0, -1
      bnez t0, loop
      li t0, 0x50000004
      sw zero, 0(t0)
  )")).ok());
  auto out = cpu.Run(100);
  EXPECT_EQ(out.status, RunStatus::kExited);
  EXPECT_EQ(cpu.coverage_log().size(), 2u);  // two taken back-edges
}

// Differential test: concrete CPU vs symbolic executor with no symbolic
// inputs must agree on exit codes and console output.
class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, CpuAgreesWithSymbolicExecutor) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 9176 + 5);
  // Random straight-line arithmetic program over a few registers, ending
  // by exiting with a hash of the register file.
  std::string src = "_start:\n";
  const char* regs[] = {"s0", "s1", "s2", "s3"};
  for (const char* r : regs)
    src += std::string("  li ") + r + ", " +
           std::to_string(rng.Bits(16)) + "\n";
  const char* ops[] = {"add", "sub", "xor", "and", "or", "mul", "sll",
                       "srl", "sltu"};
  for (int i = 0; i < 30; ++i) {
    const char* op = ops[rng.Below(9)];
    const char* rd = regs[rng.Below(4)];
    const char* ra = regs[rng.Below(4)];
    const char* rb = regs[rng.Below(4)];
    if (std::string(op) == "sll" || std::string(op) == "srl") {
      src += std::string("  andi t0, ") + rb + ", 31\n";
      src += std::string("  ") + op + " " + rd + ", " + ra + ", t0\n";
    } else {
      src += std::string("  ") + op + " " + rd + ", " + ra + ", " + rb + "\n";
    }
  }
  src += "  xor a0, s0, s1\n  add a0, a0, s2\n  xor a0, a0, s3\n";
  src += "  li t0, 0x50000004\n  sw a0, 0(t0)\n";

  auto img = Asm(src);

  auto t1 = MakeTarget();
  Cpu cpu(t1.get());
  ASSERT_TRUE(cpu.LoadFirmware(img).ok());
  auto concrete = cpu.Run(10000);
  ASSERT_EQ(concrete.status, RunStatus::kExited);

  auto t2 = MakeTarget();
  symex::Executor ex(t2.get(), {});
  ASSERT_TRUE(ex.LoadFirmware(img).ok());
  auto report = ex.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().exit_codes.size(), 1u);
  EXPECT_EQ(report.value().exit_codes[0], concrete.exit_code);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace hardsnap::vm
