// Deserializer robustness: a snapshot blob that was truncated, bit-flipped
// or forged in transit must come back as an error — never a crash, never a
// silently wrong state. Exercises every byte offset of both wire formats
// (HSSS full states, HSSD deltas) plus the ByteReader primitives the
// decoders are built on.
#include <gtest/gtest.h>

#include <vector>

#include "common/crc32.h"
#include "common/serde.h"
#include "remote/protocol.h"
#include "sim/delta.h"
#include "snapshot/snapshot.h"

namespace hardsnap::snapshot {
namespace {

sim::HardwareState SampleState() {
  sim::HardwareState st;
  st.flops = {1, 2, 3, 0xdeadbeef, 0x12345678};
  st.memories = {{10, 20, 30, 40}, {}, {7}};
  return st;
}

sim::StateDelta SampleDelta() {
  auto base = SampleState();
  auto next = base;
  next.flops[0] = 0xfeedface;
  next.memories[0][3] = 99;
  auto delta = sim::DiffStates(base, next);
  HS_CHECK_MSG(delta.ok(), delta.status().ToString());
  return std::move(delta).value();
}

// --- full-state blobs ------------------------------------------------------

TEST(SerdeRobustnessTest, StateSurvivesTruncationAtEveryLength) {
  const auto bytes = SerializeState(SampleState());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    auto r = DeserializeState(cut);
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
  }
}

TEST(SerdeRobustnessTest, StateDetectsEverySingleBitFlip) {
  const auto bytes = SerializeState(SampleState());
  const auto original = DeserializeState(bytes);
  ASSERT_TRUE(original.ok());
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = DeserializeState(corrupt);
    // CRC-32 detects every single-bit error, so no flip may decode — not
    // even to the correct state, and especially not to a different one.
    EXPECT_FALSE(r.ok()) << "bit flip at " << bit << " accepted";
  }
}

TEST(SerdeRobustnessTest, StateRejectsTrailingBytes) {
  auto bytes = SerializeState(SampleState());
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeState(bytes).ok());
}

// A forged blob that advertises a huge element count (with a CRC computed
// over the forgery so the integrity check passes) must fail as truncated
// instead of OOM-ing the host on the advertised allocation.
TEST(SerdeRobustnessTest, ForgedHugeLengthFailsWithoutAllocating) {
  ByteWriter w;
  w.PutU32(0x48535353);             // HSSS magic
  w.PutU8(kStateFormatVersion);
  w.PutU32(0xffffffffu);            // forged flop count: ~34 GB of u64s
  auto body = w.Take();
  const uint32_t crc = Crc32(body.data(), body.size());
  ByteWriter t;
  t.PutU32(crc);
  for (uint8_t b : t.Take()) body.push_back(b);
  auto r = DeserializeState(body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange)
      << r.status().ToString();
}

// --- delta blobs -----------------------------------------------------------

TEST(SerdeRobustnessTest, DeltaSurvivesTruncationAtEveryLength) {
  const auto bytes = SerializeStateDelta(SampleDelta());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    auto r = DeserializeStateDelta(cut);
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
  }
}

TEST(SerdeRobustnessTest, DeltaDetectsEverySingleBitFlip) {
  const auto bytes = SerializeStateDelta(SampleDelta());
  ASSERT_TRUE(DeserializeStateDelta(bytes).ok());
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(DeserializeStateDelta(corrupt).ok())
        << "bit flip at " << bit << " accepted";
  }
}

TEST(SerdeRobustnessTest, CorruptBlobsReportDataLoss) {
  auto bytes = SerializeState(SampleState());
  bytes[bytes.size() / 2] ^= 0x01;
  auto r = DeserializeState(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

// --- ByteReader primitives -------------------------------------------------

TEST(SerdeRobustnessTest, ByteReaderBoundsChecksVectorLengthBeforeAlloc) {
  ByteWriter w;
  w.PutU32(0xffffffffu);  // declared count far beyond the payload
  w.PutU64(1);
  auto bytes = w.Take();
  ByteReader r(bytes);
  auto v = r.GetU64Vector();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeRobustnessTest, ByteReaderBoundsChecksStringLength) {
  ByteWriter w;
  w.PutU32(100);  // declared string length, only 2 bytes follow
  w.PutU8('h');
  w.PutU8('i');
  auto bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_FALSE(r.GetString().ok());
}

// --- format versioning -----------------------------------------------------

// Rewrites the CRC trailer after a deliberate mutation so the integrity
// check passes and the semantic validation behind it is exercised.
std::vector<uint8_t> WithFixedCrc(std::vector<uint8_t> bytes) {
  HS_CHECK(bytes.size() >= 4);
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>((crc >> (8 * i)) & 0xff);
  return bytes;
}

// A blob from a FUTURE format version (version byte follows the magic in
// every container) must be rejected as kInvalidArgument — decoding it
// with today's schema would produce silently wrong state, which is worse
// than failing.
TEST(SerdeRobustnessTest, StateRejectsUnknownFormatVersion) {
  auto bytes = SerializeState(SampleState());
  bytes[4] = kStateFormatVersion + 1;
  auto r = DeserializeState(WithFixedCrc(bytes));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST(SerdeRobustnessTest, DeltaRejectsUnknownFormatVersion) {
  auto bytes = SerializeStateDelta(SampleDelta());
  bytes[4] = kStateFormatVersion + 1;
  auto r = DeserializeStateDelta(WithFixedCrc(bytes));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST(SerdeRobustnessTest, StoreRejectsUnknownFormatVersion) {
  SnapshotStore store(42);
  store.Put(SampleState(), "a");
  auto blob = store.Serialize();
  ASSERT_TRUE(blob.ok());
  auto bytes = blob.value();
  bytes[4] = kStateFormatVersion + 1;  // HSST shares the snapshot version
  SnapshotStore back(42);
  auto s = back.Restore(WithFixedCrc(bytes));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_EQ(back.size(), 0u);
}

TEST(SerdeRobustnessTest, CurrentVersionBlobsStillDecode) {
  // Guard against the version check rejecting version 1 itself.
  EXPECT_TRUE(DeserializeState(SerializeState(SampleState())).ok());
  EXPECT_TRUE(DeserializeStateDelta(SerializeStateDelta(SampleDelta())).ok());
}

// --- remote RPC payloads ---------------------------------------------------
//
// The hardsnapd request/reply decoders face the network, so they get the
// same treatment as the snapshot containers: truncate at every length,
// flip every bit, forge every declared count. Framing CRCs live a layer
// below (net/frame_stream.h); here the decoders must hold on their own —
// a hostile payload may fail, or decode to some other VALID message, but
// it must never crash, over-allocate or leave a half-built object. These
// run under the CI sanitizer matrix, which is what gives the "no memory
// error" half of the claim teeth.

remote::Request SampleBatchRequest() {
  remote::Request req;
  req.op = remote::Op::kBatch;
  req.ops = {bus::MmioOp::Write(0x104, 5), bus::MmioOp::Run(20),
             bus::MmioOp::Read(0x10c)};
  return req;
}

remote::Reply SampleReply() {
  remote::Reply reply;
  reply.message = "ok";
  reply.irq_vector = 3;
  reply.elapsed_ps = 123456;
  reply.read_values = {7, 8, 9};
  reply.blob = {1, 2, 3, 4};
  return reply;
}

TEST(SerdeRobustnessTest, RequestSurvivesTruncationAtEveryLength) {
  const remote::Op ops_with_payload[] = {
      remote::Op::kHello, remote::Op::kBatch, remote::Op::kSlotSave,
      remote::Op::kRestoreState, remote::Op::kRestoreDelta};
  for (remote::Op op : ops_with_payload) {
    remote::Request req;
    req.op = op;
    req.client_name = "fuzz";
    req.ops = SampleBatchRequest().ops;
    req.slot = 2;
    req.blob = {1, 2, 3, 4, 5, 6, 7, 8};
    const auto bytes = remote::EncodeRequest(req);
    ASSERT_TRUE(remote::DecodeRequest(op, bytes).ok());
    for (size_t len = 0; len < bytes.size(); ++len) {
      std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
      EXPECT_FALSE(remote::DecodeRequest(op, cut).ok())
          << remote::OpName(op) << " truncated to " << len
          << " bytes accepted";
    }
  }
}

TEST(SerdeRobustnessTest, RequestToleratesEverySingleBitFlip) {
  const auto bytes = remote::EncodeRequest(SampleBatchRequest());
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    // May decode (to a different batch) or fail — must not crash. A
    // successful decode must carry only well-formed ops.
    auto r = remote::DecodeRequest(remote::Op::kBatch, corrupt);
    if (!r.ok()) continue;
    for (const bus::MmioOp& op : r.value().ops) {
      EXPECT_GE(op.kind, bus::MmioOp::kRead);
      EXPECT_LE(op.kind, bus::MmioOp::kRun);
    }
  }
}

TEST(SerdeRobustnessTest, ReplySurvivesTruncationAtEveryLength) {
  const auto bytes = remote::EncodeReply(SampleReply());
  ASSERT_TRUE(remote::DecodeReply(bytes).ok());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(remote::DecodeReply(cut).ok())
        << "reply truncated to " << len << " bytes accepted";
  }
}

TEST(SerdeRobustnessTest, ReplyToleratesEverySingleBitFlip) {
  const auto bytes = remote::EncodeReply(SampleReply());
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = remote::DecodeReply(corrupt);
    if (!r.ok()) continue;  // rejection is fine; crashing is not
    // An accepted status byte must still be a known code.
    EXPECT_LE(static_cast<uint8_t>(r.value().code),
              static_cast<uint8_t>(StatusCode::kDataLoss));
  }
}

TEST(SerdeRobustnessTest, ForgedBatchCountFailsWithoutAllocating) {
  ByteWriter w;
  w.PutU32(0xffffffffu);  // ~56 GB of MmioOps declared, none present
  auto r = remote::DecodeRequest(remote::Op::kBatch, w.Take());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST(SerdeRobustnessTest, ForgedRestoreBlobLengthFailsWithoutAllocating) {
  ByteWriter w;
  w.PutU32(0xfffffff0u);
  w.PutU8(0);  // one actual byte behind a ~4 GB declaration
  auto r = remote::DecodeRequest(remote::Op::kRestoreState, w.Take());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerdeRobustnessTest, ForgedReplyReadCountFailsWithoutAllocating) {
  remote::Reply reply = SampleReply();
  reply.read_values.clear();
  auto bytes = remote::EncodeReply(reply);
  // The read-count u32 sits after code(1) + message(4+2) + irq(4) +
  // elapsed(8) + run(8) + value64(8): forge it to the maximum.
  const size_t count_at = 1 + 4 + reply.message.size() + 4 + 8 + 8 + 8;
  ASSERT_LT(count_at + 4, bytes.size());
  for (int i = 0; i < 4; ++i) bytes[count_at + static_cast<size_t>(i)] = 0xff;
  auto r = remote::DecodeReply(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST(SerdeRobustnessTest, RequestRejectsTrailingBytes) {
  auto bytes = remote::EncodeRequest(SampleBatchRequest());
  bytes.push_back(0);
  EXPECT_FALSE(remote::DecodeRequest(remote::Op::kBatch, bytes).ok());
  // Opcodes with empty payloads must insist on exactly that.
  EXPECT_TRUE(remote::DecodeRequest(remote::Op::kReset, {}).ok());
  EXPECT_FALSE(remote::DecodeRequest(remote::Op::kReset, {0}).ok());
}

TEST(SerdeRobustnessTest, RequestRejectsHostileEnumValues) {
  // Unknown opcode.
  EXPECT_FALSE(remote::DecodeRequest(static_cast<remote::Op>(99), {}).ok());
  // Batch op with an invalid kind byte.
  ByteWriter w;
  w.PutU32(1);
  w.PutU8(0xee);  // MmioOp kind
  w.PutU32(0);
  w.PutU64(0);
  EXPECT_FALSE(remote::DecodeRequest(remote::Op::kBatch, w.Take()).ok());
  // Hello with the wrong magic.
  remote::Request hello;
  hello.op = remote::Op::kHello;
  hello.magic = 0x12345678;
  EXPECT_FALSE(
      remote::DecodeRequest(remote::Op::kHello, remote::EncodeRequest(hello))
          .ok());
  // Reply carrying an out-of-range status code.
  remote::Reply reply = SampleReply();
  auto bytes = remote::EncodeReply(reply);
  bytes[0] = 0xfe;
  EXPECT_FALSE(remote::DecodeReply(bytes).ok());
}

}  // namespace
}  // namespace hardsnap::snapshot
