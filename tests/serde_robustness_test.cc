// Deserializer robustness: a snapshot blob that was truncated, bit-flipped
// or forged in transit must come back as an error — never a crash, never a
// silently wrong state. Exercises every byte offset of both wire formats
// (HSSS full states, HSSD deltas) plus the ByteReader primitives the
// decoders are built on.
#include <gtest/gtest.h>

#include <vector>

#include "common/crc32.h"
#include "common/serde.h"
#include "sim/delta.h"
#include "snapshot/snapshot.h"

namespace hardsnap::snapshot {
namespace {

sim::HardwareState SampleState() {
  sim::HardwareState st;
  st.flops = {1, 2, 3, 0xdeadbeef, 0x12345678};
  st.memories = {{10, 20, 30, 40}, {}, {7}};
  return st;
}

sim::StateDelta SampleDelta() {
  auto base = SampleState();
  auto next = base;
  next.flops[0] = 0xfeedface;
  next.memories[0][3] = 99;
  auto delta = sim::DiffStates(base, next);
  HS_CHECK_MSG(delta.ok(), delta.status().ToString());
  return std::move(delta).value();
}

// --- full-state blobs ------------------------------------------------------

TEST(SerdeRobustnessTest, StateSurvivesTruncationAtEveryLength) {
  const auto bytes = SerializeState(SampleState());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    auto r = DeserializeState(cut);
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
  }
}

TEST(SerdeRobustnessTest, StateDetectsEverySingleBitFlip) {
  const auto bytes = SerializeState(SampleState());
  const auto original = DeserializeState(bytes);
  ASSERT_TRUE(original.ok());
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto r = DeserializeState(corrupt);
    // CRC-32 detects every single-bit error, so no flip may decode — not
    // even to the correct state, and especially not to a different one.
    EXPECT_FALSE(r.ok()) << "bit flip at " << bit << " accepted";
  }
}

TEST(SerdeRobustnessTest, StateRejectsTrailingBytes) {
  auto bytes = SerializeState(SampleState());
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeState(bytes).ok());
}

// A forged blob that advertises a huge element count (with a CRC computed
// over the forgery so the integrity check passes) must fail as truncated
// instead of OOM-ing the host on the advertised allocation.
TEST(SerdeRobustnessTest, ForgedHugeLengthFailsWithoutAllocating) {
  ByteWriter w;
  w.PutU32(0x48535353);             // HSSS magic
  w.PutU8(kStateFormatVersion);
  w.PutU32(0xffffffffu);            // forged flop count: ~34 GB of u64s
  auto body = w.Take();
  const uint32_t crc = Crc32(body.data(), body.size());
  ByteWriter t;
  t.PutU32(crc);
  for (uint8_t b : t.Take()) body.push_back(b);
  auto r = DeserializeState(body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange)
      << r.status().ToString();
}

// --- delta blobs -----------------------------------------------------------

TEST(SerdeRobustnessTest, DeltaSurvivesTruncationAtEveryLength) {
  const auto bytes = SerializeStateDelta(SampleDelta());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    auto r = DeserializeStateDelta(cut);
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
  }
}

TEST(SerdeRobustnessTest, DeltaDetectsEverySingleBitFlip) {
  const auto bytes = SerializeStateDelta(SampleDelta());
  ASSERT_TRUE(DeserializeStateDelta(bytes).ok());
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(DeserializeStateDelta(corrupt).ok())
        << "bit flip at " << bit << " accepted";
  }
}

TEST(SerdeRobustnessTest, CorruptBlobsReportDataLoss) {
  auto bytes = SerializeState(SampleState());
  bytes[bytes.size() / 2] ^= 0x01;
  auto r = DeserializeState(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

// --- ByteReader primitives -------------------------------------------------

TEST(SerdeRobustnessTest, ByteReaderBoundsChecksVectorLengthBeforeAlloc) {
  ByteWriter w;
  w.PutU32(0xffffffffu);  // declared count far beyond the payload
  w.PutU64(1);
  auto bytes = w.Take();
  ByteReader r(bytes);
  auto v = r.GetU64Vector();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeRobustnessTest, ByteReaderBoundsChecksStringLength) {
  ByteWriter w;
  w.PutU32(100);  // declared string length, only 2 bytes follow
  w.PutU8('h');
  w.PutU8('i');
  auto bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_FALSE(r.GetString().ok());
}

// --- format versioning -----------------------------------------------------

// Rewrites the CRC trailer after a deliberate mutation so the integrity
// check passes and the semantic validation behind it is exercised.
std::vector<uint8_t> WithFixedCrc(std::vector<uint8_t> bytes) {
  HS_CHECK(bytes.size() >= 4);
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>((crc >> (8 * i)) & 0xff);
  return bytes;
}

// A blob from a FUTURE format version (version byte follows the magic in
// every container) must be rejected as kInvalidArgument — decoding it
// with today's schema would produce silently wrong state, which is worse
// than failing.
TEST(SerdeRobustnessTest, StateRejectsUnknownFormatVersion) {
  auto bytes = SerializeState(SampleState());
  bytes[4] = kStateFormatVersion + 1;
  auto r = DeserializeState(WithFixedCrc(bytes));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST(SerdeRobustnessTest, DeltaRejectsUnknownFormatVersion) {
  auto bytes = SerializeStateDelta(SampleDelta());
  bytes[4] = kStateFormatVersion + 1;
  auto r = DeserializeStateDelta(WithFixedCrc(bytes));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST(SerdeRobustnessTest, StoreRejectsUnknownFormatVersion) {
  SnapshotStore store(42);
  store.Put(SampleState(), "a");
  auto blob = store.Serialize();
  ASSERT_TRUE(blob.ok());
  auto bytes = blob.value();
  bytes[4] = kStateFormatVersion + 1;  // HSST shares the snapshot version
  SnapshotStore back(42);
  auto s = back.Restore(WithFixedCrc(bytes));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_EQ(back.size(), 0u);
}

TEST(SerdeRobustnessTest, CurrentVersionBlobsStillDecode) {
  // Guard against the version check rejecting version 1 itself.
  EXPECT_TRUE(DeserializeState(SerializeState(SampleState())).ok());
  EXPECT_TRUE(DeserializeStateDelta(SerializeStateDelta(SampleDelta())).ok());
}

}  // namespace
}  // namespace hardsnap::snapshot
