// Deeper solver properties: width extremes, signed semantics, algebraic
// identities checked by the decision procedure itself, and randomized
// differential testing of every operator against concrete evaluation.
#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "solver/bitblast.h"
#include "solver/term.h"

namespace hardsnap::solver {
namespace {

// Prove `prop` (a 1-bit term) valid by checking its negation UNSAT.
::testing::AssertionResult Valid(BvContext* ctx, TermId prop) {
  BvSolver solver(ctx);
  auto r = solver.Check({ctx->BoolNot(prop)});
  if (!r.ok()) return ::testing::AssertionFailure() << r.status().ToString();
  if (r.value() == BvResult::kSat) {
    return ::testing::AssertionFailure()
           << "property falsifiable: " << ctx->ToString(prop);
  }
  return ::testing::AssertionSuccess();
}

TEST(SolverProofTest, AdditionCommutes) {
  BvContext ctx;
  TermId x = ctx.Var("x", 16), y = ctx.Var("y", 16);
  EXPECT_TRUE(Valid(&ctx, ctx.Eq(ctx.Add(x, y), ctx.Add(y, x))));
}

TEST(SolverProofTest, SubIsAddNeg) {
  BvContext ctx;
  TermId x = ctx.Var("x", 12), y = ctx.Var("y", 12);
  EXPECT_TRUE(Valid(&ctx, ctx.Eq(ctx.Sub(x, y), ctx.Add(x, ctx.Neg(y)))));
}

TEST(SolverProofTest, DeMorgan) {
  BvContext ctx;
  TermId x = ctx.Var("x", 8), y = ctx.Var("y", 8);
  EXPECT_TRUE(Valid(&ctx, ctx.Eq(ctx.Not(ctx.And(x, y)),
                                 ctx.Or(ctx.Not(x), ctx.Not(y)))));
}

TEST(SolverProofTest, MulByTwoIsShift) {
  BvContext ctx;
  TermId x = ctx.Var("x", 16);
  EXPECT_TRUE(Valid(&ctx, ctx.Eq(ctx.Mul(x, ctx.Const(2, 16)),
                                 ctx.Shl(x, ctx.Const(1, 16)))));
}

TEST(SolverProofTest, DivModReconstruction) {
  // For b != 0: a == (a/b)*b + a%b.
  BvContext ctx;
  TermId a = ctx.Var("a", 8), b = ctx.Var("b", 8);
  TermId reconstruct =
      ctx.Add(ctx.Mul(ctx.Udiv(a, b), b), ctx.Urem(a, b));
  TermId prop = ctx.Or(ctx.Eq(b, ctx.Const(0, 8)),
                       ctx.Eq(a, reconstruct));
  EXPECT_TRUE(Valid(&ctx, prop));
}

TEST(SolverProofTest, SignedUnsignedLtAgreeOnSmallValues) {
  // When both operands have a clear top bit, slt == ult.
  BvContext ctx;
  TermId a = ctx.Var("a", 8), b = ctx.Var("b", 8);
  TermId small = ctx.And(ctx.Ult(a, ctx.Const(0x80, 8)),
                         ctx.Ult(b, ctx.Const(0x80, 8)));
  TermId agree = ctx.Eq(ctx.Slt(a, b), ctx.Ult(a, b));
  EXPECT_TRUE(Valid(&ctx, ctx.Or(ctx.BoolNot(small), agree)));
}

TEST(SolverProofTest, SextPreservesSignedOrder) {
  BvContext ctx;
  TermId a = ctx.Var("a", 8), b = ctx.Var("b", 8);
  TermId prop = ctx.Eq(ctx.Slt(a, b),
                       ctx.Slt(ctx.Sext(a, 16), ctx.Sext(b, 16)));
  EXPECT_TRUE(Valid(&ctx, prop));
}

TEST(SolverProofTest, ConcatExtractRoundTrip) {
  BvContext ctx;
  TermId hi = ctx.Var("hi", 8), lo = ctx.Var("lo", 8);
  TermId cat = ctx.Concat(hi, lo);
  EXPECT_TRUE(Valid(&ctx, ctx.Eq(ctx.Extract(cat, 15, 8), hi)));
  EXPECT_TRUE(Valid(&ctx, ctx.Eq(ctx.Extract(cat, 7, 0), lo)));
}

TEST(SolverProofTest, AshrOfNegativeStaysNegative) {
  BvContext ctx;
  TermId x = ctx.Var("x", 8);
  TermId neg = ctx.Slt(x, ctx.Const(0, 8));
  TermId shifted_neg =
      ctx.Slt(ctx.Ashr(x, ctx.Const(3, 8)), ctx.Const(0, 8));
  EXPECT_TRUE(Valid(&ctx, ctx.Or(ctx.BoolNot(neg), shifted_neg)));
}

TEST(SolverEdgeTest, OneBitArithmetic) {
  BvContext ctx;
  BvSolver solver(&ctx);
  TermId x = ctx.Var("x", 1);
  // x + x == 0 for 1-bit x (mod 2).
  auto r = solver.Check(
      {ctx.Ne(ctx.Add(x, x), ctx.Const(0, 1))});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), BvResult::kUnsat);
}

TEST(SolverEdgeTest, SixtyFourBitModel) {
  BvContext ctx;
  BvSolver solver(&ctx);
  TermId x = ctx.Var("x", 64);
  BvModel model;
  auto r = solver.Check(
      {ctx.Eq(ctx.Add(x, ctx.Const(1, 64)), ctx.Const(0, 64))}, &model);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value(), BvResult::kSat);
  EXPECT_EQ(model.values.at(x), ~uint64_t{0});
}

TEST(SolverEdgeTest, ManyVariablesChainedEqualities) {
  BvContext ctx;
  BvSolver solver(&ctx);
  std::vector<TermId> vars;
  std::vector<TermId> assertions;
  for (int i = 0; i < 20; ++i) vars.push_back(ctx.Var("v", 16));
  for (int i = 0; i + 1 < 20; ++i)
    assertions.push_back(
        ctx.Eq(vars[i + 1], ctx.Add(vars[i], ctx.Const(1, 16))));
  assertions.push_back(ctx.Eq(vars[0], ctx.Const(100, 16)));
  BvModel model;
  auto r = solver.Check(assertions, &model);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value(), BvResult::kSat);
  EXPECT_EQ(model.values.at(vars[19]), 119u);
}

TEST(SolverEdgeTest, UnsatCoreOfTightBounds) {
  BvContext ctx;
  BvSolver solver(&ctx);
  TermId x = ctx.Var("x", 32);
  auto r = solver.Check({
      ctx.Ugt(x, ctx.Const(1000, 32)),
      ctx.Ult(x, ctx.Const(1002, 32)),
      ctx.Ne(x, ctx.Const(1001, 32)),
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), BvResult::kUnsat);
}

// Randomized differential test: every operator against EvalTerm under a
// random concrete assignment; assert (ops(vars) == concrete_result) SAT
// with vars pinned, and UNSAT when the result is perturbed.
class OperatorDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(OperatorDifferentialTest, BlastedSemanticsMatchEvaluator) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48611 + 19);
  BvContext ctx;
  BvSolver solver(&ctx);

  const unsigned w = 1 + static_cast<unsigned>(rng.Below(16));
  TermId a = ctx.Var("a", w);
  TermId b = ctx.Var("b", w);
  const uint64_t va = rng.Bits(w), vb = rng.Bits(w);

  std::vector<TermId> exprs = {
      ctx.Add(a, b), ctx.Sub(a, b), ctx.Mul(a, b), ctx.And(a, b),
      ctx.Or(a, b), ctx.Xor(a, b), ctx.Not(a), ctx.Neg(b),
      ctx.Udiv(a, b), ctx.Urem(a, b), ctx.Shl(a, b), ctx.Lshr(a, b),
      ctx.Ashr(a, b), ctx.Zext(ctx.Ult(a, b), w), ctx.Zext(ctx.Slt(a, b), w),
      ctx.Ite(ctx.Eq(a, b), a, ctx.Xor(a, b)),
  };
  std::map<TermId, uint64_t> env{{a, va}, {b, vb}};
  for (TermId e : exprs) {
    const uint64_t expect = EvalTerm(ctx, e, env);
    std::vector<TermId> pinned = {
        ctx.Eq(a, ctx.Const(va, w)),
        ctx.Eq(b, ctx.Const(vb, w)),
        ctx.Eq(e, ctx.Const(expect, w)),
    };
    auto sat = solver.Check(pinned);
    ASSERT_TRUE(sat.ok());
    EXPECT_EQ(sat.value(), BvResult::kSat)
        << ctx.ToString(e) << " with a=" << va << " b=" << vb;

    pinned.back() = ctx.Ne(e, ctx.Const(expect, w));
    auto unsat = solver.Check(pinned);
    ASSERT_TRUE(unsat.ok());
    EXPECT_EQ(unsat.value(), BvResult::kUnsat)
        << ctx.ToString(e) << " should be uniquely " << expect;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorDifferentialTest,
                         ::testing::Range(0, 12));

TEST(SolverCacheTest, RepeatedQueriesHitTheCache) {
  BvContext ctx;
  BvSolver solver(&ctx);
  TermId x = ctx.Var("x", 32);
  TermId a1 = ctx.Ult(x, ctx.Const(10, 32));
  TermId a2 = ctx.Ugt(x, ctx.Const(3, 32));
  BvModel m1, m2;
  ASSERT_TRUE(solver.Check({a1, a2}, &m1).ok());
  EXPECT_EQ(solver.stats().cache_hits, 0u);
  // Same assertion set, different order: canonicalization must hit.
  ASSERT_TRUE(solver.Check({a2, a1}, &m2).ok());
  EXPECT_EQ(solver.stats().cache_hits, 1u);
  EXPECT_EQ(m1.values.at(x), m2.values.at(x));
}

TEST(SolverCacheTest, DisabledCacheNeverHits) {
  BvContext ctx;
  BvSolver solver(&ctx);
  solver.set_cache_enabled(false);
  TermId x = ctx.Var("x", 8);
  TermId a = ctx.Eq(x, ctx.Const(5, 8));
  ASSERT_TRUE(solver.Check({a}).ok());
  ASSERT_TRUE(solver.Check({a}).ok());
  EXPECT_EQ(solver.stats().cache_hits, 0u);
}

TEST(SolverCacheTest, CachedUnsatStaysUnsat) {
  BvContext ctx;
  BvSolver solver(&ctx);
  TermId x = ctx.Var("x", 8);
  std::vector<TermId> as = {ctx.Ult(x, ctx.Const(3, 8)),
                            ctx.Ugt(x, ctx.Const(200, 8))};
  auto r1 = solver.Check(as);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value(), BvResult::kUnsat);
  auto r2 = solver.Check(as);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), BvResult::kUnsat);
  EXPECT_EQ(solver.stats().cache_hits, 1u);
}

}  // namespace
}  // namespace hardsnap::solver
