// Unit tests for the durability layer: filesystem discipline, the
// CRC-framed write-ahead journal (torn-tail recovery), the HSCP
// checkpoint container, idempotent journal-record application, recovery
// with quarantine, and the crash-point registry.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/serde.h"
#include "persist/campaign_persistence.h"
#include "persist/checkpoint.h"
#include "persist/crash_point.h"
#include "persist/fs_util.h"
#include "persist/journal.h"

namespace hardsnap::persist {
namespace {

// Fresh scratch directory per test (removed on teardown best-effort).
class ScratchDir {
 public:
  ScratchDir() {
    char tmpl[] = "/tmp/hs_persist_test_XXXXXX";
    char* d = mkdtemp(tmpl);
    HS_CHECK(d != nullptr);
    path_ = d;
  }
  ~ScratchDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      // best-effort cleanup; leak the scratch dir rather than abort
    }
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> b) { return b; }

// --- filesystem discipline -------------------------------------------------

TEST(FsUtilTest, AtomicWriteThenReadRoundTrips) {
  ScratchDir dir;
  const auto payload = Bytes({1, 2, 3, 4, 5});
  ASSERT_TRUE(AtomicWriteFile(dir.file("a.bin"), payload).ok());
  auto back = ReadFileBytes(dir.file("a.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
  // No tmp residue after a successful atomic write.
  auto names = ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), std::vector<std::string>{"a.bin"});
}

TEST(FsUtilTest, AtomicWriteReplacesExistingContentCompletely) {
  ScratchDir dir;
  ASSERT_TRUE(AtomicWriteFile(dir.file("a.bin"), Bytes({9, 9, 9, 9})).ok());
  ASSERT_TRUE(AtomicWriteFile(dir.file("a.bin"), Bytes({1})).ok());
  auto back = ReadFileBytes(dir.file("a.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), Bytes({1}));
}

TEST(FsUtilTest, TruncateAmputatesTail) {
  ScratchDir dir;
  ASSERT_TRUE(AtomicWriteFile(dir.file("a.bin"), Bytes({1, 2, 3, 4})).ok());
  ASSERT_TRUE(TruncateFile(dir.file("a.bin"), 2).ok());
  auto back = ReadFileBytes(dir.file("a.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), Bytes({1, 2}));
}

TEST(FsUtilTest, EnsureDirIsIdempotent) {
  ScratchDir dir;
  const std::string sub = dir.file("sub");
  EXPECT_TRUE(EnsureDir(sub).ok());
  EXPECT_TRUE(EnsureDir(sub).ok());
  ASSERT_TRUE(AtomicWriteFile(sub + "/x", Bytes({1})).ok());
  EXPECT_TRUE(FileExists(sub + "/x"));
}

TEST(FsUtilTest, ReadMissingFileIsNotFound) {
  ScratchDir dir;
  auto r = ReadFileBytes(dir.file("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// --- write-ahead journal ---------------------------------------------------

TEST(JournalTest, AppendReplayRoundTripsInOrder) {
  ScratchDir dir;
  Journal j(dir.file("j.wal"));
  ASSERT_TRUE(j.Append(Bytes({1, 2, 3})).ok());
  ASSERT_TRUE(j.Append(Bytes({})).ok());  // empty payloads are legal
  ASSERT_TRUE(j.Append(Bytes({42})).ok());
  Journal reader(dir.file("j.wal"));
  auto replay = reader.Replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 3u);
  EXPECT_EQ(replay.value().records[0], Bytes({1, 2, 3}));
  EXPECT_EQ(replay.value().records[1], Bytes({}));
  EXPECT_EQ(replay.value().records[2], Bytes({42}));
  EXPECT_EQ(replay.value().truncated_bytes, 0u);
}

TEST(JournalTest, MissingFileReplaysEmpty) {
  ScratchDir dir;
  Journal j(dir.file("never-written.wal"));
  auto replay = j.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().records.empty());
}

TEST(JournalTest, TornTailIsTruncatedAtEveryCutPoint) {
  ScratchDir dir;
  // Build a clean 3-record journal, remember its bytes.
  Journal writer(dir.file("j.wal"));
  ASSERT_TRUE(writer.Append(Bytes({1, 2, 3})).ok());
  ASSERT_TRUE(writer.Append(Bytes({4, 5})).ok());
  ASSERT_TRUE(writer.Append(Bytes({6})).ok());
  auto full = ReadFileBytes(dir.file("j.wal"));
  ASSERT_TRUE(full.ok());
  const auto& bytes = full.value();
  // Record boundaries: 8-byte frame header + payload.
  const size_t b1 = 8 + 3, b2 = b1 + 8 + 2, b3 = b2 + 8 + 1;
  ASSERT_EQ(bytes.size(), b3);
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::vector<uint8_t> torn(bytes.begin(), bytes.begin() + cut);
    ASSERT_TRUE(AtomicWriteFile(dir.file("torn.wal"), torn).ok());
    Journal j(dir.file("torn.wal"));
    auto replay = j.Replay();
    ASSERT_TRUE(replay.ok()) << "cut at " << cut;
    const size_t expect = cut >= b3 ? 3 : cut >= b2 ? 2 : cut >= b1 ? 1 : 0;
    EXPECT_EQ(replay.value().records.size(), expect) << "cut at " << cut;
    const size_t valid = expect == 3 ? b3 : expect == 2 ? b2
                         : expect == 1 ? b1 : 0;
    EXPECT_EQ(replay.value().truncated_bytes, cut - valid) << "cut " << cut;
    // Recovery truncated in place: the file now holds only valid records.
    auto after = ReadFileBytes(dir.file("torn.wal"));
    if (valid == 0) {
      // A fully-torn journal may be truncated to zero bytes.
      EXPECT_TRUE(!after.ok() || after.value().empty());
    } else {
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(after.value().size(), valid);
    }
    // Appending after recovery extends the valid prefix cleanly.
    ASSERT_TRUE(j.Append(Bytes({0xaa})).ok());
    auto replay2 = Journal(dir.file("torn.wal")).Replay();
    ASSERT_TRUE(replay2.ok());
    EXPECT_EQ(replay2.value().records.size(), expect + 1);
  }
}

TEST(JournalTest, CorruptPayloadByteMakesRecordTailGarbage) {
  ScratchDir dir;
  Journal writer(dir.file("j.wal"));
  ASSERT_TRUE(writer.Append(Bytes({1, 2, 3})).ok());
  ASSERT_TRUE(writer.Append(Bytes({4, 5, 6})).ok());
  auto full = ReadFileBytes(dir.file("j.wal"));
  ASSERT_TRUE(full.ok());
  auto corrupt = full.value();
  corrupt[8 + 1] ^= 0xff;  // flip a byte of record 0's payload
  ASSERT_TRUE(AtomicWriteFile(dir.file("j.wal"), corrupt).ok());
  auto replay = Journal(dir.file("j.wal")).Replay();
  ASSERT_TRUE(replay.ok());
  // The corrupt record and EVERYTHING after it is tail garbage: frames are
  // self-delimiting only while the CRCs hold.
  EXPECT_EQ(replay.value().records.size(), 0u);
  EXPECT_EQ(replay.value().truncated_bytes, corrupt.size());
}

TEST(JournalTest, ForgedHugeLengthIsTailGarbageNotAllocation) {
  ScratchDir dir;
  ByteWriter w;
  w.PutU32(0xfffffff0u);  // forged length far past kMaxJournalRecordBytes
  w.PutU32(0);            // crc (never checked: length is rejected first)
  ASSERT_TRUE(AtomicWriteFile(dir.file("j.wal"), w.Take()).ok());
  auto replay = Journal(dir.file("j.wal")).Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().records.empty());
  EXPECT_EQ(replay.value().truncated_bytes, 8u);
}

TEST(JournalTest, ResetEmptiesDurably) {
  ScratchDir dir;
  Journal j(dir.file("j.wal"));
  ASSERT_TRUE(j.Append(Bytes({1})).ok());
  ASSERT_TRUE(j.Reset().ok());
  auto replay = Journal(dir.file("j.wal")).Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().records.empty());
}

// --- checkpoint container --------------------------------------------------

CampaignDurableState SampleFuzzState() {
  CampaignDurableState st;
  st.kind = kCampaignKindFuzz;
  st.fingerprint = 0x1234abcd5678ef00ull;
  st.worker_done = {800, 640};
  st.worker_rng_digest = {111, 222};
  st.edges = {3, 5, 8};
  DurableOffer offer;
  offer.worker = 1;
  offer.input = {0xde, 0xad};
  st.offers.push_back(offer);
  st.seen_inputs.insert(offer.input);
  campaign::CampaignFinding f;
  f.crash.pc = 0x2c;
  f.crash.reason = "out-of-bounds store";
  f.crash.input = {0xe7, 0x00};
  f.worker = 1;
  f.worker_seed = 42;
  f.execs_at_find = 64;
  st.findings.push_back(f);
  st.finding_pcs.insert(f.crash.pc);
  return st;
}

void ExpectStatesEqual(const CampaignDurableState& a,
                       const CampaignDurableState& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.worker_done, b.worker_done);
  EXPECT_EQ(a.worker_rng_digest, b.worker_rng_digest);
  EXPECT_EQ(a.edges, b.edges);
  ASSERT_EQ(a.offers.size(), b.offers.size());
  for (size_t i = 0; i < a.offers.size(); ++i) {
    EXPECT_EQ(a.offers[i].worker, b.offers[i].worker);
    EXPECT_EQ(a.offers[i].input, b.offers[i].input);
  }
  EXPECT_EQ(a.seen_inputs, b.seen_inputs);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].crash.pc, b.findings[i].crash.pc);
    EXPECT_EQ(a.findings[i].crash.reason, b.findings[i].crash.reason);
    EXPECT_EQ(a.findings[i].crash.input, b.findings[i].crash.input);
    EXPECT_EQ(a.findings[i].worker, b.findings[i].worker);
    EXPECT_EQ(a.findings[i].worker_seed, b.findings[i].worker_seed);
    EXPECT_EQ(a.findings[i].execs_at_find, b.findings[i].execs_at_find);
  }
  EXPECT_EQ(a.finding_pcs, b.finding_pcs);
  EXPECT_EQ(a.store_blob, b.store_blob);
}

TEST(CheckpointSerdeTest, RoundTripsFuzzState) {
  const auto st = SampleFuzzState();
  auto back = DeserializeCheckpoint(SerializeCheckpoint(st));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectStatesEqual(st, back.value());
}

TEST(CheckpointSerdeTest, RoundTripsSymexReports) {
  CampaignDurableState st;
  st.kind = kCampaignKindSymex;
  st.fingerprint = 7;
  st.worker_done = {1, 0};
  st.worker_rng_digest = {0, 0};
  symex::Report rep;
  rep.paths_completed = 5;
  rep.instructions = 1234;
  rep.solver_queries = 17;
  symex::Bug bug;
  bug.pc = 0x40;
  bug.kind = "ebreak";
  bug.detail = "assertion";
  bug.test_case.origin = "bug: ebreak";
  bug.test_case.inputs["input"] = 0xe7;
  rep.bugs.push_back(bug);
  rep.analysis_hw_time = Duration::Micros(19);
  rep.snapshot_dedup_ratio = 0.75;
  st.symex_reports[0] = rep;
  auto back = DeserializeCheckpoint(SerializeCheckpoint(st));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().symex_reports.size(), 1u);
  const symex::Report& r = back.value().symex_reports.at(0);
  EXPECT_EQ(r.paths_completed, 5u);
  EXPECT_EQ(r.instructions, 1234u);
  EXPECT_EQ(r.solver_queries, 17u);
  ASSERT_EQ(r.bugs.size(), 1u);
  EXPECT_EQ(r.bugs[0].pc, 0x40u);
  EXPECT_EQ(r.bugs[0].kind, "ebreak");
  EXPECT_EQ(r.bugs[0].test_case.inputs.at("input"), 0xe7u);
  EXPECT_EQ(r.analysis_hw_time, Duration::Micros(19));
  EXPECT_DOUBLE_EQ(r.snapshot_dedup_ratio, 0.75);
}

TEST(CheckpointSerdeTest, TruncationAtEveryLengthFails) {
  const auto bytes = SerializeCheckpoint(SampleFuzzState());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DeserializeCheckpoint(cut).ok()) << "len " << len;
  }
}

TEST(CheckpointSerdeTest, BitFlipAnywhereFails) {
  const auto bytes = SerializeCheckpoint(SampleFuzzState());
  for (size_t bit = 0; bit < bytes.size() * 8; bit += 7) {
    auto corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(DeserializeCheckpoint(corrupt).ok()) << "bit " << bit;
  }
}

// Rewrites the CRC trailer so a deliberate mutation passes the integrity
// check and exercises the semantic validation behind it.
std::vector<uint8_t> WithFixedCrc(std::vector<uint8_t> bytes) {
  HS_CHECK(bytes.size() >= 4);
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  bytes[bytes.size() - 4] = static_cast<uint8_t>(crc & 0xff);
  bytes[bytes.size() - 3] = static_cast<uint8_t>((crc >> 8) & 0xff);
  bytes[bytes.size() - 2] = static_cast<uint8_t>((crc >> 16) & 0xff);
  bytes[bytes.size() - 1] = static_cast<uint8_t>((crc >> 24) & 0xff);
  return bytes;
}

TEST(CheckpointSerdeTest, UnknownFormatVersionIsInvalidArgument) {
  auto bytes = SerializeCheckpoint(SampleFuzzState());
  bytes[4] = kCheckpointFormatVersion + 1;  // version byte follows magic
  auto r = DeserializeCheckpoint(WithFixedCrc(bytes));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST(CheckpointSerdeTest, UnknownCampaignKindFails) {
  auto bytes = SerializeCheckpoint(SampleFuzzState());
  bytes[5] = 99;  // kind byte follows version
  EXPECT_FALSE(DeserializeCheckpoint(WithFixedCrc(bytes)).ok());
}

// --- journal record application --------------------------------------------

FuzzBatchAck SampleAck() {
  FuzzBatchAck ack;
  ack.worker = 1;
  ack.done = 128;
  ack.rng_digest = 777;
  ack.fresh_edges = {10, 11};
  ack.new_inputs = {{0xaa}, {0xbb, 0xcc}};
  campaign::CampaignFinding f;
  f.crash.pc = 0x2c;
  f.crash.reason = "out-of-bounds store";
  f.crash.input = {0xe7, 0x00};
  f.worker = 1;
  f.worker_seed = 42;
  f.execs_at_find = 64;
  ack.new_findings.push_back(f);
  return ack;
}

CampaignDurableState EmptyState(uint32_t workers) {
  CampaignDurableState st;
  st.worker_done.assign(workers, 0);
  st.worker_rng_digest.assign(workers, 0);
  return st;
}

TEST(ApplyRecordTest, ReplayingTheSameRecordTwiceChangesNothing) {
  auto st = EmptyState(2);
  const auto rec = SerializeFuzzAckRecord(SampleAck());
  ASSERT_TRUE(ApplyRecord(rec, &st).ok());
  const auto once = st;
  ASSERT_TRUE(ApplyRecord(rec, &st).ok());
  ExpectStatesEqual(once, st);
  EXPECT_EQ(st.findings.size(), 1u);
  EXPECT_EQ(st.offers.size(), 2u);
  EXPECT_EQ(st.worker_done[1], 128u);
  EXPECT_EQ(st.worker_rng_digest[1], 777u);
}

TEST(ApplyRecordTest, StaleRecordNeverRewindsTheFrontier) {
  auto st = EmptyState(2);
  auto newer = SampleAck();
  newer.done = 512;
  newer.rng_digest = 999;
  ASSERT_TRUE(ApplyRecord(SerializeFuzzAckRecord(newer), &st).ok());
  ASSERT_TRUE(ApplyRecord(SerializeFuzzAckRecord(SampleAck()), &st).ok());
  EXPECT_EQ(st.worker_done[1], 512u);
  EXPECT_EQ(st.worker_rng_digest[1], 999u);
}

TEST(ApplyRecordTest, OutOfRangeWorkerIsRejected) {
  auto st = EmptyState(1);  // ack.worker == 1 is out of range
  auto r = ApplyRecord(SerializeFuzzAckRecord(SampleAck()), &st);
  EXPECT_FALSE(r.ok());
}

TEST(ApplyRecordTest, SymexReportRecordMarksWorkerComplete) {
  auto st = EmptyState(2);
  st.kind = kCampaignKindSymex;
  symex::Report rep;
  rep.paths_completed = 3;
  const auto rec = SerializeSymexReportRecord(1, rep);
  ASSERT_TRUE(ApplyRecord(rec, &st).ok());
  ASSERT_TRUE(ApplyRecord(rec, &st).ok());  // idempotent
  ASSERT_EQ(st.symex_reports.size(), 1u);
  EXPECT_EQ(st.symex_reports.at(1).paths_completed, 3u);
  EXPECT_EQ(st.worker_done[1], 1u);
}

TEST(ApplyRecordTest, GarbageRecordIsRejected) {
  auto st = EmptyState(1);
  EXPECT_FALSE(ApplyRecord(Bytes({0xff, 0x00, 0x12}), &st).ok());
  EXPECT_FALSE(ApplyRecord(Bytes({}), &st).ok());
}

// --- CampaignPersistence recovery ------------------------------------------

PersistOptions Opts(const std::string& dir, uint64_t every = 16) {
  PersistOptions o;
  o.dir = dir;
  o.checkpoint_every = every;
  return o;
}

TEST(CampaignPersistenceTest, FreshDirectoryStartsEmpty) {
  ScratchDir dir;
  auto p = CampaignPersistence::Open(Opts(dir.path()), kCampaignKindFuzz,
                                     123, 2);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_FALSE(p.value()->resumed());
  EXPECT_EQ(p.value()->state().worker_done, (std::vector<uint64_t>{0, 0}));
}

TEST(CampaignPersistenceTest, AcksSurviveReopenViaJournalAlone) {
  ScratchDir dir;
  {
    auto p = CampaignPersistence::Open(Opts(dir.path()), kCampaignKindFuzz,
                                       123, 2);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(p.value()->AckFuzzBatch(SampleAck()).ok());
    // No Checkpoint() call: the journal alone must carry the ack.
  }
  auto p = CampaignPersistence::Open(Opts(dir.path()), kCampaignKindFuzz,
                                     123, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value()->resumed());
  const auto st = p.value()->state();
  ASSERT_EQ(st.findings.size(), 1u);
  EXPECT_EQ(st.findings[0].crash.pc, 0x2cu);
  EXPECT_EQ(st.worker_done[1], 128u);
  EXPECT_EQ(p.value()->stats().recovered_records, 1u);
}

TEST(CampaignPersistenceTest, CompactionThenMoreAcksRecoversBoth) {
  ScratchDir dir;
  {
    auto p = CampaignPersistence::Open(Opts(dir.path(), 1),
                                       kCampaignKindFuzz, 123, 2);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(p.value()->AckFuzzBatch(SampleAck()).ok());  // compacts
    auto second = SampleAck();
    second.worker = 0;
    second.done = 64;
    second.new_findings.clear();
    second.fresh_edges = {20};
    second.new_inputs.clear();
    ASSERT_TRUE(p.value()->AckFuzzBatch(second).ok());  // compacts again
    EXPECT_GE(p.value()->stats().checkpoints_written, 2u);
  }
  auto p = CampaignPersistence::Open(Opts(dir.path(), 1), kCampaignKindFuzz,
                                     123, 2);
  ASSERT_TRUE(p.ok());
  const auto st = p.value()->state();
  EXPECT_EQ(st.worker_done, (std::vector<uint64_t>{64, 128}));
  EXPECT_EQ(st.edges, (std::set<uint64_t>{10, 11, 20}));
  EXPECT_EQ(st.findings.size(), 1u);
}

TEST(CampaignPersistenceTest, CorruptNewestCheckpointIsQuarantined) {
  ScratchDir dir;
  {
    auto p = CampaignPersistence::Open(Opts(dir.path(), 1),
                                       kCampaignKindFuzz, 123, 2);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(p.value()->AckFuzzBatch(SampleAck()).ok());
  }
  // Plant a corrupt checkpoint with a NEWER sequence number.
  ASSERT_TRUE(AtomicWriteFile(dir.file("checkpoint-99.hscp"),
                              Bytes({0xde, 0xad, 0xbe, 0xef}))
                  .ok());
  auto p = CampaignPersistence::Open(Opts(dir.path(), 1), kCampaignKindFuzz,
                                     123, 2);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(p.value()->resumed());
  EXPECT_EQ(p.value()->state().findings.size(), 1u);
  EXPECT_EQ(p.value()->stats().quarantined_checkpoints, 1u);
  auto names = ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  bool quarantined = false, live99 = false;
  for (const auto& n : names.value()) {
    if (n == "checkpoint-99.hscp.quarantined") quarantined = true;
    if (n == "checkpoint-99.hscp") live99 = true;
  }
  EXPECT_TRUE(quarantined);
  EXPECT_FALSE(live99);
}

TEST(CampaignPersistenceTest, StaleTmpFilesAreSweptAtOpen) {
  ScratchDir dir;
  ASSERT_TRUE(EnsureDir(dir.path()).ok());
  ASSERT_TRUE(
      AppendToFile(dir.file("checkpoint-7.hscp.tmp"), Bytes({1, 2})).ok());
  auto p = CampaignPersistence::Open(Opts(dir.path()), kCampaignKindFuzz,
                                     123, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(FileExists(dir.file("checkpoint-7.hscp.tmp")));
}

TEST(CampaignPersistenceTest, FingerprintMismatchFailsLoudly) {
  ScratchDir dir;
  {
    auto p = CampaignPersistence::Open(Opts(dir.path(), 1),
                                       kCampaignKindFuzz, 123, 2);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(p.value()->AckFuzzBatch(SampleAck()).ok());
  }
  auto p = CampaignPersistence::Open(Opts(dir.path(), 1), kCampaignKindFuzz,
                                     456, 2);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(CampaignPersistenceTest, WorkerCountMismatchFailsLoudly) {
  ScratchDir dir;
  {
    auto p = CampaignPersistence::Open(Opts(dir.path(), 1),
                                       kCampaignKindFuzz, 123, 2);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(p.value()->AckFuzzBatch(SampleAck()).ok());
  }
  auto p = CampaignPersistence::Open(Opts(dir.path(), 1), kCampaignKindFuzz,
                                     123, 4);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(CampaignPersistenceTest, ResumeRequiredOnEmptyDirIsNotFound) {
  ScratchDir dir;
  auto opts = Opts(dir.path());
  opts.resume_required = true;
  auto p = CampaignPersistence::Open(opts, kCampaignKindFuzz, 123, 2);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

// --- crash-point registry --------------------------------------------------

TEST(CrashPointTest, RegistryListsTheCanonicalPoints) {
  const auto& points = AllCrashPoints();
  EXPECT_GE(points.size(), 9u);
  for (const char* expected :
       {"journal.append.before", "journal.append.torn",
        "journal.append.after_write", "journal.append.after_sync",
        "checkpoint.before", "checkpoint.torn_tmp", "checkpoint.after_tmp",
        "checkpoint.after_rename", "checkpoint.after_journal_reset"}) {
    bool found = false;
    for (const auto& p : points)
      if (p == expected) found = true;
    EXPECT_TRUE(found) << "missing crash point " << expected;
  }
}

TEST(CrashPointTest, CountingModeTalliesWithoutCrashing) {
  SetCrashPointCounting(true);
  ClearCrashPointHits();
  ScratchDir dir;
  {
    auto p = CampaignPersistence::Open(Opts(dir.path(), 1),
                                       kCampaignKindFuzz, 123, 2);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(p.value()->AckFuzzBatch(SampleAck()).ok());
    ASSERT_TRUE(p.value()->Checkpoint().ok());
  }
  SetCrashPointCounting(false);
  const auto hits = CrashPointHits();
  ClearCrashPointHits();
  for (const char* point :
       {"journal.append.before", "journal.append.after_sync",
        "checkpoint.before", "checkpoint.after_rename"}) {
    auto it = hits.find(point);
    ASSERT_NE(it, hits.end()) << point << " never hit";
    EXPECT_GE(it->second, 1u) << point;
  }
}

}  // namespace
}  // namespace hardsnap::persist
