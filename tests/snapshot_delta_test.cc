// Delta snapshot correctness: the copy-on-write paths must be bit-for-bit
// equivalent to the full DumpState/RestoreState paths under randomized
// stimulus, for every peripheral in the corpus and for random fork trees
// through the chunked snapshot store.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bus/sim_target.h"
#include "common/rng.h"
#include "firmware/corpus.h"
#include "fpga/fpga_target.h"
#include "fuzz/fuzzer.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "sim/delta.h"
#include "snapshot/snapshot.h"
#include "symex/executor.h"
#include "vm/assembler.h"

namespace hardsnap {
namespace {

using sim::HardwareState;
using sim::StateDelta;

rtl::Design Compile(const std::string& verilog, const std::string& top) {
  auto d = rtl::CompileVerilog(verilog, top);
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return std::move(d).value();
}

rtl::Design& Soc() {
  static rtl::Design* d = [] {
    auto r =
        rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()), "soc");
    HS_CHECK_MSG(r.ok(), r.status().ToString());
    return new rtl::Design(std::move(r).value());
  }();
  return *d;
}

// Drive random bus traffic and clock cycles into a simulator. `addr_limit`
// bounds the address space: 0x100 for a lone peripheral (8-bit addr),
// 0x400 for the 4-region SoC (addr[15:8] selects the peripheral).
void RandomStimulus(sim::Simulator* sim, Rng* rng, unsigned ops,
                    uint64_t addr_limit = 0x100) {
  for (unsigned i = 0; i < ops; ++i) {
    switch (rng->Below(4)) {
      case 0:
        sim->Tick(1 + static_cast<unsigned>(rng->Below(8)));
        break;
      case 1: {  // random register-bus write
        (void)sim->PokeInput("sel", 1);
        (void)sim->PokeInput("wr", 1);
        (void)sim->PokeInput("rd", 0);
        (void)sim->PokeInput("addr", rng->Below(addr_limit));
        (void)sim->PokeInput("wdata", rng->Bits(32));
        sim->Tick(1);
        (void)sim->PokeInput("sel", 0);
        (void)sim->PokeInput("wr", 0);
        break;
      }
      case 2: {  // random register-bus read (side effects: FIFO pops)
        (void)sim->PokeInput("sel", 1);
        (void)sim->PokeInput("rd", 1);
        (void)sim->PokeInput("wr", 0);
        (void)sim->PokeInput("addr", rng->Below(addr_limit));
        sim->Tick(1);
        (void)sim->PokeInput("sel", 0);
        (void)sim->PokeInput("rd", 0);
        break;
      }
      default:
        sim->Tick(1);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Delta primitives.

TEST(DeltaPrimitivesTest, FullDeltaCoversEveryChunkAndApplies) {
  HardwareState a;
  a.flops = {1, 2, 3, 4, 5, 6, 7, 8, 9};  // 3 chunks (4 + 4 + 1)
  a.memories = {{10, 20, 30}, {}};
  StateDelta full = sim::FullDelta(a);
  EXPECT_EQ(full.chunks.size(), 4u);  // 3 flop chunks + 1 mem chunk
  EXPECT_EQ(full.PayloadWords(), 12u);

  HardwareState b;
  b.flops.assign(9, 0);
  b.memories = {{0, 0, 0}, {}};
  ASSERT_TRUE(sim::ApplyDeltaToState(&b, full).ok());
  EXPECT_EQ(a, b);
}

TEST(DeltaPrimitivesTest, DiffStatesEmitsOnlyChangedChunks) {
  HardwareState a;
  a.flops.assign(20, 7);  // 5 chunks
  a.memories = {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};  // 3 chunks
  HardwareState b = a;
  b.flops[17] = 99;      // flop chunk 4
  b.memories[0][0] = 0;  // mem chunk 0
  auto d = sim::DiffStates(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().chunks.size(), 2u);
  EXPECT_EQ(d.value().base_hash, sim::HashState(a));

  HardwareState c = a;
  ASSERT_TRUE(sim::ApplyDeltaToState(&c, d.value()).ok());
  EXPECT_EQ(c, b);
}

TEST(DeltaPrimitivesTest, ApplyRejectsWrongBase) {
  HardwareState a;
  a.flops.assign(4, 1);
  HardwareState b = a;
  b.flops[0] = 2;
  auto d = sim::DiffStates(a, b);
  ASSERT_TRUE(d.ok());
  HardwareState not_a = a;
  not_a.flops[3] = 42;  // differs from the delta's base
  EXPECT_FALSE(sim::ApplyDeltaToState(&not_a, d.value()).ok());
}

TEST(DeltaPrimitivesTest, ApplyRejectsShapeMismatch) {
  HardwareState a;
  a.flops.assign(4, 1);
  StateDelta d = sim::FullDelta(a);
  HardwareState wrong;
  wrong.flops.assign(5, 1);
  EXPECT_FALSE(sim::ApplyDeltaToState(&wrong, d).ok());
  HardwareState wrong_mem = a;
  wrong_mem.memories.push_back({1, 2});
  EXPECT_FALSE(sim::ApplyDeltaToState(&wrong_mem, d).ok());
}

// ---------------------------------------------------------------------------
// Property: CaptureDelta against the last sync point reconstructs
// DumpState exactly, for every peripheral under randomized stimulus.

TEST(DeltaPropertyTest, CaptureDeltaEqualsFullDumpOnAllPeripherals) {
  struct Core {
    const char* top;
    std::string verilog;
  };
  const Core cores[] = {
      {"hs_timer", periph::TimerVerilog()},
      {"hs_uart", periph::UartVerilog()},
      {"hs_aes128", periph::Aes128Verilog()},
      {"hs_sha256", periph::Sha256Verilog()},
      {"hs_watchdog", periph::WatchdogVerilog()},
  };
  for (const auto& core : cores) {
    SCOPED_TRACE(core.top);
    auto sim_or = sim::Simulator::Create(Compile(core.verilog, core.top));
    ASSERT_TRUE(sim_or.ok());
    sim::Simulator sim = std::move(sim_or).value();
    ASSERT_TRUE(sim.Reset().ok());
    Rng rng(0xC0FFEE ^ std::hash<std::string>{}(core.top));

    HardwareState synced = sim.DumpState();
    sim.MarkSynced();
    for (unsigned round = 0; round < 12; ++round) {
      RandomStimulus(&sim, &rng, 10);
      const HardwareState expect = sim.DumpState();
      StateDelta d = sim.CaptureDelta();
      // The delta applied to the previous sync state must equal the dump.
      ASSERT_TRUE(sim::ApplyDeltaToState(&synced, d).ok());
      EXPECT_EQ(synced, expect) << "round " << round;
    }
  }
}

TEST(DeltaPropertyTest, RestoreDeltaRevertsToSyncPoint) {
  auto sim_or = sim::Simulator::Create(Soc());
  ASSERT_TRUE(sim_or.ok());
  sim::Simulator sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Reset().ok());
  Rng rng(99);

  for (unsigned round = 0; round < 8; ++round) {
    sim.MarkSynced();
    const HardwareState at_sync = sim.DumpState();
    RandomStimulus(&sim, &rng, 15, 0x400);
    // Empty delta = "revert to the sync point".
    StateDelta empty = sim::EmptyDeltaFor(at_sync);
    empty.base_hash = sim::HashState(at_sync);
    ASSERT_TRUE(sim.RestoreDelta(empty).ok());
    EXPECT_EQ(sim.DumpState(), at_sync) << "round " << round;
  }
}

TEST(DeltaPropertyTest, RestoreDeltaMovesToSiblingState) {
  auto sim_or = sim::Simulator::Create(Soc());
  ASSERT_TRUE(sim_or.ok());
  sim::Simulator sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Reset().ok());
  Rng rng(1234);

  sim.MarkSynced();
  const HardwareState a = sim.DumpState();
  RandomStimulus(&sim, &rng, 10, 0x400);
  const HardwareState b = sim.DumpState();
  sim.CaptureDelta();  // sync point now = b
  RandomStimulus(&sim, &rng, 10, 0x400);  // drift away from b (dirty)

  // A sibling delta (b -> a) both reverts the drift and lands on a.
  auto to_a = sim::DiffStates(b, a);
  ASSERT_TRUE(to_a.ok());
  ASSERT_TRUE(sim.RestoreDelta(to_a.value()).ok());
  EXPECT_EQ(sim.DumpState(), a);

  // RestoreDelta is itself a sync point: another sibling hop (a -> b).
  auto to_b = sim::DiffStates(a, b);
  ASSERT_TRUE(to_b.ok());
  ASSERT_TRUE(sim.RestoreDelta(to_b.value()).ok());
  EXPECT_EQ(sim.DumpState(), b);
}

TEST(DeltaPropertyTest, RestoreDeltaRejectsWrongBaseHash) {
  auto sim_or = sim::Simulator::Create(Soc());
  ASSERT_TRUE(sim_or.ok());
  sim::Simulator sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Reset().ok());
  sim.MarkSynced();
  StateDelta empty = sim::EmptyDeltaFor(sim.DumpState());
  empty.base_hash = 0xdeadbeefdeadbeefull;  // not the sync point's hash
  EXPECT_FALSE(sim.RestoreDelta(empty).ok());
}

// ---------------------------------------------------------------------------
// Targets: delta save/restore must be bit-identical to the full path.

TEST(TargetDeltaTest, SimulatorTargetDeltaMatchesFull) {
  auto t = bus::SimulatorTarget::Create(Soc());
  ASSERT_TRUE(t.ok());
  auto* target = t.value().get();
  ASSERT_TRUE(target->ResetHardware().ok());

  auto base = target->SaveState();  // sync point
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(target->Write32(periph::timer_regs::kLoad, 555).ok());
  ASSERT_TRUE(target->Run(50).ok());

  const HardwareState full = target->simulator()->DumpState();
  auto d = target->SaveStateDelta();
  ASSERT_TRUE(d.ok());
  HardwareState rebuilt = base.value();
  ASSERT_TRUE(sim::ApplyDeltaToState(&rebuilt, d.value()).ok());
  EXPECT_EQ(rebuilt, full);
  EXPECT_LT(d.value().PayloadWords(), sim::StateWords(full));

  // Delta restore back to the earlier sync point content.
  auto back = sim::DiffStates(rebuilt, base.value());
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(target->RestoreStateDelta(back.value()).ok());
  EXPECT_EQ(target->simulator()->DumpState(), base.value());
}

TEST(TargetDeltaTest, FpgaTargetDeltaMatchesFull) {
  auto t = fpga::FpgaTarget::Create(Soc());
  ASSERT_TRUE(t.ok());
  auto* target = t.value().get();
  ASSERT_TRUE(target->ResetHardware().ok());

  auto base = target->SaveState();  // establishes the host mirror
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(target->Write32((2u << 8) | periph::aes_regs::kKey0, 42).ok());
  ASSERT_TRUE(target->Run(30).ok());

  auto d = target->SaveStateDelta();
  ASSERT_TRUE(d.ok());
  HardwareState rebuilt = base.value();
  ASSERT_TRUE(sim::ApplyDeltaToState(&rebuilt, d.value()).ok());
  // The rebuilt state restored via the FULL path must round-trip.
  ASSERT_TRUE(target->RestoreState(rebuilt).ok());
  auto again = target->SaveState();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), rebuilt);

  // Delta restore: revert to `base` by shipping only the difference.
  auto back = sim::DiffStates(rebuilt, base.value());
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(target->RestoreStateDelta(back.value()).ok());
  auto readback = target->SaveState();
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value(), base.value());
}

TEST(TargetDeltaTest, FpgaDeltaRestoreNeedsSyncPoint) {
  auto t = fpga::FpgaTarget::Create(Soc());
  ASSERT_TRUE(t.ok());
  auto* target = t.value().get();
  ASSERT_TRUE(target->ResetHardware().ok());
  StateDelta empty;
  EXPECT_FALSE(target->RestoreStateDelta(empty).ok());
}

TEST(TargetDeltaTest, FpgaSlotRestoreInvalidatesMirror) {
  auto t = fpga::FpgaTarget::Create(Soc());
  ASSERT_TRUE(t.ok());
  auto* target = t.value().get();
  ASSERT_TRUE(target->ResetHardware().ok());
  auto base = target->SaveState();
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(target->SaveToSlot(1).ok());
  ASSERT_TRUE(target->Run(20).ok());
  ASSERT_TRUE(target->RestoreFromSlot(1).ok());
  // Mirror is gone: the next delta save must degrade to a full payload.
  auto d = target->SaveStateDelta();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().PayloadWords(), sim::StateWords(base.value()));
  EXPECT_EQ(d.value().base_hash, 0u);  // base-free delta
}

// ---------------------------------------------------------------------------
// Chunked store: structural sharing + random fork trees.

HardwareState RandomState(Rng* rng, size_t flops, std::vector<size_t> mems) {
  HardwareState st;
  st.flops.reserve(flops);
  for (size_t i = 0; i < flops; ++i) st.flops.push_back(rng->Bits(32));
  for (size_t depth : mems) {
    std::vector<uint64_t> mem;
    mem.reserve(depth);
    for (size_t i = 0; i < depth; ++i) mem.push_back(rng->Bits(32));
    st.memories.push_back(std::move(mem));
  }
  return st;
}

TEST(ChunkedStoreTest, SiblingSnapshotsShareChunks) {
  snapshot::SnapshotStore store(1);
  Rng rng(5);
  HardwareState a = RandomState(&rng, 100, {64});
  auto id_a = store.Put(a, "a");
  HardwareState b = a;
  b.flops[3] ^= 1;  // one chunk differs
  store.Put(b, "b");
  // b shares all but one flop chunk and all memory chunks with a.
  const auto& st = store.stats();
  EXPECT_GT(st.chunks_shared, 0u);
  EXPECT_GT(st.bytes_shared, st.bytes_copied / 2);
  EXPECT_LT(store.ResidentBytes(), store.TotalBytes());
  EXPECT_EQ(store.TotalBytes(), 2 * (100 + 64) * 8u);
  (void)id_a;
}

TEST(ChunkedStoreTest, PutDeltaAndDeltaBetweenRoundTrip) {
  snapshot::SnapshotStore store(1);
  Rng rng(6);
  HardwareState a = RandomState(&rng, 40, {16});
  auto id_a = store.Put(a, "a");

  HardwareState b = a;
  b.flops[0] = 111;
  b.memories[0][15] = 222;
  auto d = sim::DiffStates(a, b);
  ASSERT_TRUE(d.ok());
  auto id_b = store.PutDelta(id_a, d.value(), "b");
  ASSERT_TRUE(id_b.ok());
  EXPECT_EQ(store.Get(id_b.value()).value()->state, b);

  auto back = store.DeltaBetween(id_b.value(), id_a);
  ASSERT_TRUE(back.ok());
  HardwareState rebuilt = b;
  ASSERT_TRUE(sim::ApplyDeltaToState(&rebuilt, back.value()).ok());
  EXPECT_EQ(rebuilt, a);
}

TEST(ChunkedStoreTest, PutDeltaRejectsWrongBaseHash) {
  snapshot::SnapshotStore store(1);
  Rng rng(7);
  HardwareState a = RandomState(&rng, 16, {});
  auto id_a = store.Put(a, "a");
  StateDelta d = sim::EmptyDeltaFor(a);
  d.base_hash = 0x1234;  // not a's content hash
  EXPECT_FALSE(store.PutDelta(id_a, d).ok());
}

TEST(ChunkedStoreTest, RandomForkTreeMatchesReferenceStore) {
  // Random fork tree over the store's delta API, checked against a naive
  // map of full states.
  snapshot::SnapshotStore store(1);
  Rng rng(0xF0F0);
  const size_t kFlops = 64;
  const std::vector<size_t> kMems = {32, 8};

  std::map<snapshot::SnapshotId, HardwareState> reference;
  HardwareState root = RandomState(&rng, kFlops, kMems);
  auto root_id = store.Put(root, "root");
  reference[root_id] = root;
  std::vector<snapshot::SnapshotId> ids = {root_id};

  for (unsigned step = 0; step < 60; ++step) {
    const auto base_id = ids[rng.Below(ids.size())];
    HardwareState next = reference[base_id];
    // Mutate a few random words.
    for (unsigned m = 0; m < 1 + rng.Below(4); ++m) {
      if (rng.Below(2) == 0) {
        next.flops[rng.Below(kFlops)] = rng.Bits(32);
      } else {
        auto& mem = next.memories[rng.Below(kMems.size())];
        if (!mem.empty()) mem[rng.Below(mem.size())] = rng.Bits(32);
      }
    }
    auto d = sim::DiffStates(reference[base_id], next);
    ASSERT_TRUE(d.ok());
    switch (rng.Below(3)) {
      case 0: {  // fork: new snapshot from base + delta
        auto id = store.PutDelta(base_id, d.value());
        ASSERT_TRUE(id.ok());
        reference[id.value()] = next;
        ids.push_back(id.value());
        break;
      }
      case 1: {  // update an existing snapshot to base + delta
        const auto victim = ids[rng.Below(ids.size())];
        ASSERT_TRUE(store.UpdateDelta(victim, base_id, d.value()).ok());
        reference[victim] = next;
        break;
      }
      default: {  // full put (mixes full and delta ingestion)
        auto id = store.Put(next);
        reference[id] = next;
        ids.push_back(id);
        break;
      }
    }
    // Occasionally drop a non-root snapshot.
    if (ids.size() > 4 && rng.Below(4) == 0) {
      const size_t victim = 1 + rng.Below(ids.size() - 1);
      ASSERT_TRUE(store.Drop(ids[victim]).ok());
      reference.erase(ids[victim]);
      ids.erase(ids.begin() + static_cast<long>(victim));
    }
  }

  // Every surviving snapshot materializes exactly to its reference state,
  // and DeltaBetween between random pairs reconstructs correctly.
  for (auto id : ids) {
    auto snap = store.Get(id);
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(snap.value()->state, reference[id]) << "id " << id;
  }
  for (unsigned probe = 0; probe < 20; ++probe) {
    const auto from = ids[rng.Below(ids.size())];
    const auto to = ids[rng.Below(ids.size())];
    auto d = store.DeltaBetween(from, to);
    ASSERT_TRUE(d.ok());
    HardwareState rebuilt = reference[from];
    ASSERT_TRUE(sim::ApplyDeltaToState(&rebuilt, d.value()).ok());
    EXPECT_EQ(rebuilt, reference[to]);
  }
  EXPECT_LE(store.ResidentBytes(), store.TotalBytes());
}

// ---------------------------------------------------------------------------
// Delta blob serialization edges.

StateDelta SampleDelta() {
  StateDelta d;
  d.base_hash = 0xabcdef;
  d.num_flops = 20;
  d.mem_depths = {10, 3};
  static_assert(sim::kChunkWords == 4, "fixture hardcodes 4-word chunks");
  d.chunks.push_back({0, 1, {1, 2, 3, 4}});   // full flop chunk
  d.chunks.push_back({0, 4, {9, 10, 11, 12}});  // last flop chunk (words 16..19)
  d.chunks.push_back({1, 2, {13, 14}});       // mem 0 tail chunk (10 - 8)
  d.chunks.push_back({2, 0, {15, 16, 17}});   // mem 1 (whole space, short)
  return d;
}

TEST(DeltaSerializeTest, RoundTrip) {
  StateDelta d = SampleDelta();
  auto blob = snapshot::SerializeStateDelta(d);
  auto back = snapshot::DeserializeStateDelta(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), d);
}

TEST(DeltaSerializeTest, RejectsGarbageAndWrongMagic) {
  EXPECT_FALSE(snapshot::DeserializeStateDelta({1, 2, 3}).ok());
  auto blob = snapshot::SerializeStateDelta(SampleDelta());
  blob[0] ^= 0xff;  // corrupt the magic
  EXPECT_FALSE(snapshot::DeserializeStateDelta(blob).ok());
  // A full-state blob is not a delta blob.
  HardwareState st;
  st.flops = {1, 2};
  EXPECT_FALSE(
      snapshot::DeserializeStateDelta(snapshot::SerializeState(st)).ok());
}

TEST(DeltaSerializeTest, RejectsTruncationAtEveryLength) {
  auto blob = snapshot::SerializeStateDelta(SampleDelta());
  for (size_t len = 0; len < blob.size(); len += 7) {
    std::vector<uint8_t> cut(blob.begin(), blob.begin() + len);
    EXPECT_FALSE(snapshot::DeserializeStateDelta(cut).ok()) << len;
  }
}

TEST(DeltaSerializeTest, RejectsTrailingBytes) {
  auto blob = snapshot::SerializeStateDelta(SampleDelta());
  blob.push_back(0);
  EXPECT_FALSE(snapshot::DeserializeStateDelta(blob).ok());
}

TEST(DeltaSerializeTest, RejectsBadChunkGeometry) {
  StateDelta bad = SampleDelta();
  bad.chunks[0].space = 7;  // no such space
  EXPECT_FALSE(
      snapshot::DeserializeStateDelta(snapshot::SerializeStateDelta(bad))
          .ok());
  bad = SampleDelta();
  bad.chunks[0].index = 40;  // chunk index past the flop space
  EXPECT_FALSE(
      snapshot::DeserializeStateDelta(snapshot::SerializeStateDelta(bad))
          .ok());
  bad = SampleDelta();
  bad.chunks[0].words.pop_back();  // payload shorter than the chunk
  EXPECT_FALSE(
      snapshot::DeserializeStateDelta(snapshot::SerializeStateDelta(bad))
          .ok());
}

TEST(DeltaSerializeTest, MismatchedBaseRejectedAtApply) {
  // A valid blob applied to the wrong base state fails the hash check.
  Rng rng(11);
  HardwareState a = RandomState(&rng, 20, {10, 3});
  HardwareState b = a;
  b.flops[5] ^= 0xff;
  auto d = sim::DiffStates(a, b);
  ASSERT_TRUE(d.ok());
  auto blob = snapshot::SerializeStateDelta(d.value());
  auto decoded = snapshot::DeserializeStateDelta(blob);
  ASSERT_TRUE(decoded.ok());
  HardwareState wrong_base = a;
  wrong_base.memories[0][0] ^= 1;
  EXPECT_FALSE(sim::ApplyDeltaToState(&wrong_base, decoded.value()).ok());
  HardwareState right_base = a;
  ASSERT_TRUE(sim::ApplyDeltaToState(&right_base, decoded.value()).ok());
  EXPECT_EQ(right_base, b);
}

// ---------------------------------------------------------------------------
// End-to-end behavioral equivalence: delta routing on vs off.

symex::Report RunSymex(bus::HardwareTarget* target, bool use_delta) {
  symex::ExecOptions opts;
  opts.mode = symex::ConsistencyMode::kHardSnap;
  opts.use_device_slots = false;  // force host-side snapshot traffic
  opts.use_delta_snapshots = use_delta;
  opts.max_instructions = 400'000;
  symex::Executor ex(target, opts);
  auto img = vm::Assemble(firmware::BranchTreeFirmware(4, 20));
  HS_CHECK(img.ok());
  HS_CHECK(ex.LoadFirmware(img.value()).ok());
  ex.MakeSymbolicRegister(10, "input");
  auto report = ex.Run();
  HS_CHECK_MSG(report.ok(), report.status().ToString());
  return std::move(report).value();
}

TEST(DeltaEquivalenceTest, SymexDeltaOnOffIdenticalResults) {
  auto t_full = bus::SimulatorTarget::Create(Soc());
  auto t_delta = bus::SimulatorTarget::Create(Soc());
  ASSERT_TRUE(t_full.ok() && t_delta.ok());
  auto full = RunSymex(t_full.value().get(), false);
  auto delta = RunSymex(t_delta.value().get(), true);

  EXPECT_EQ(full.paths_completed, delta.paths_completed);
  EXPECT_EQ(full.paths_exited, delta.paths_exited);
  EXPECT_EQ(full.exit_codes, delta.exit_codes);
  EXPECT_EQ(full.forks, delta.forks);
  EXPECT_EQ(full.instructions, delta.instructions);
  EXPECT_EQ(full.covered_pcs, delta.covered_pcs);
  EXPECT_EQ(full.bugs.size(), delta.bugs.size());
  // And the delta path moved strictly fewer bytes over the link.
  EXPECT_LT(delta.snapshot_bytes_copied, full.snapshot_bytes_copied);
}

TEST(DeltaEquivalenceTest, SymexDeltaOnFpgaIdenticalResults) {
  auto t_full = fpga::FpgaTarget::Create(Soc());
  auto t_delta = fpga::FpgaTarget::Create(Soc());
  ASSERT_TRUE(t_full.ok() && t_delta.ok());
  auto full = RunSymex(t_full.value().get(), false);
  auto delta = RunSymex(t_delta.value().get(), true);
  EXPECT_EQ(full.paths_completed, delta.paths_completed);
  EXPECT_EQ(full.exit_codes, delta.exit_codes);
  EXPECT_EQ(full.covered_pcs, delta.covered_pcs);
  EXPECT_LT(delta.snapshot_bytes_copied, full.snapshot_bytes_copied);
}

TEST(DeltaEquivalenceTest, FuzzerDeltaOnOffIdenticalResults) {
  auto img = vm::Assemble(firmware::VulnerableParserFirmware());
  ASSERT_TRUE(img.ok());
  fuzz::FuzzStats stats[2];
  std::vector<fuzz::Crash> crashes[2];
  for (int use_delta = 0; use_delta < 2; ++use_delta) {
    auto target = bus::SimulatorTarget::Create(Soc());
    ASSERT_TRUE(target.ok());
    fuzz::FuzzOptions opts;
    opts.reset = fuzz::ResetStrategy::kSnapshotReset;
    opts.input_size = 2;
    opts.seed = 7;
    opts.use_delta_snapshots = use_delta != 0;
    fuzz::Fuzzer fuzzer(target.value().get(), img.value(), opts);
    auto st = fuzzer.Run(300);
    ASSERT_TRUE(st.ok());
    stats[use_delta] = st.value();
    crashes[use_delta] = fuzzer.crashes();
  }
  EXPECT_EQ(stats[0].edges_covered, stats[1].edges_covered);
  EXPECT_EQ(stats[0].corpus_size, stats[1].corpus_size);
  EXPECT_EQ(stats[0].total_instructions, stats[1].total_instructions);
  ASSERT_EQ(crashes[0].size(), crashes[1].size());
  for (size_t i = 0; i < crashes[0].size(); ++i) {
    EXPECT_EQ(crashes[0][i].pc, crashes[1][i].pc);
    EXPECT_EQ(crashes[0][i].input, crashes[1][i].input);
  }
  EXPECT_EQ(stats[1].delta_restores, stats[1].snapshot_restores);
  EXPECT_EQ(stats[0].delta_restores, 0u);
  EXPECT_LT(stats[1].snapshot_bytes_copied, stats[0].snapshot_bytes_copied);
}

}  // namespace
}  // namespace hardsnap
