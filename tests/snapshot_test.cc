#include <gtest/gtest.h>

#include "bus/sim_target.h"
#include "fpga/fpga_target.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "snapshot/orchestrator.h"
#include "snapshot/snapshot.h"

namespace hardsnap::snapshot {
namespace {

rtl::Design SocDesign() {
  auto d = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()), "soc");
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return std::move(d).value();
}

sim::HardwareState SampleState() {
  sim::HardwareState st;
  st.flops = {1, 2, 3, 0xdeadbeef};
  st.memories = {{10, 20, 30}, {}};
  return st;
}

TEST(SerializeTest, RoundTrip) {
  auto st = SampleState();
  auto bytes = SerializeState(st);
  auto back = DeserializeState(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), st);
}

TEST(SerializeTest, RejectsGarbage) {
  std::vector<uint8_t> junk = {1, 2, 3, 4, 5};
  EXPECT_FALSE(DeserializeState(junk).ok());
}

TEST(SerializeTest, RejectsTruncation) {
  auto bytes = SerializeState(SampleState());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeState(bytes).ok());
}

TEST(SerializeTest, RejectsTrailingBytes) {
  auto bytes = SerializeState(SampleState());
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeState(bytes).ok());
}

TEST(StoreTest, PutGetUpdateDrop) {
  SnapshotStore store(42);
  SnapshotId id = store.Put(SampleState(), "initial");
  EXPECT_NE(id, kNoSnapshot);
  auto snap = store.Get(id);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value()->label, "initial");
  EXPECT_EQ(snap.value()->state, SampleState());

  auto st2 = SampleState();
  st2.flops[0] = 99;
  ASSERT_TRUE(store.Update(id, st2).ok());
  EXPECT_EQ(store.Get(id).value()->state.flops[0], 99u);

  ASSERT_TRUE(store.Drop(id).ok());
  EXPECT_FALSE(store.Get(id).ok());
  EXPECT_FALSE(store.Drop(id).ok());
}

TEST(StoreTest, IdsAreUniqueAndNonZero) {
  SnapshotStore store(1);
  SnapshotId a = store.Put(SampleState());
  SnapshotId b = store.Put(SampleState());
  EXPECT_NE(a, b);
  EXPECT_NE(a, kNoSnapshot);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_GT(store.TotalBytes(), 0u);
}

TEST(ShapeDigestTest, DiffersAcrossDesigns) {
  auto soc = SocDesign();
  auto timer = rtl::CompileVerilog(periph::TimerVerilog(), "hs_timer");
  ASSERT_TRUE(timer.ok());
  EXPECT_NE(StateShapeDigest(soc), StateShapeDigest(timer.value()));
  EXPECT_EQ(StateShapeDigest(soc), StateShapeDigest(SocDesign()));
}

TEST(OrchestratorTest, MoveToTransfersLiveState) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  auto ft = fpga::FpgaTarget::Create(soc);
  ASSERT_TRUE(st.ok() && ft.ok());
  TargetOrchestrator orch({st.value().get(), ft.value().get()});
  ASSERT_TRUE(orch.active().ResetHardware().ok());

  const uint32_t timer_load = (0u << 8) | periph::timer_regs::kLoad;
  ASSERT_TRUE(orch.active().Write32(timer_load, 777).ok());
  EXPECT_EQ(orch.active().kind(), bus::TargetKind::kSimulator);

  auto fpga_idx = orch.IndexOf(bus::TargetKind::kFpga);
  ASSERT_TRUE(fpga_idx.ok());
  ASSERT_TRUE(orch.MoveTo(fpga_idx.value()).ok());
  EXPECT_EQ(orch.active().kind(), bus::TargetKind::kFpga);
  EXPECT_EQ(orch.active().Read32(timer_load).value(), 777u);

  // And back again.
  ASSERT_TRUE(orch.MoveTo(0).ok());
  EXPECT_EQ(orch.active().Read32(timer_load).value(), 777u);
}

TEST(SerializeTest, SerializedStateBytesMatchesEncoding) {
  // The orchestrator accounts full-ship costs arithmetically; the formula
  // must track the real encoder exactly.
  EXPECT_EQ(SerializedStateBytes(SampleState()),
            SerializeState(SampleState()).size());
  sim::HardwareState empty;
  EXPECT_EQ(SerializedStateBytes(empty), SerializeState(empty).size());
  sim::HardwareState odd;
  odd.flops = {1};
  odd.memories = {{}, {5}, {6, 7, 8, 9, 10}};
  EXPECT_EQ(SerializedStateBytes(odd), SerializeState(odd).size());
}

// Regression: repeat migrations used to ship a delta whenever the
// host-side mirror existed, without checking what the destination
// actually holds. A destination driven behind the orchestrator's back
// has a diverged base, so the migration must fall back to a full ship.
TEST(OrchestratorTest, StaleDestinationBaseForcesFullShip) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  auto ft = fpga::FpgaTarget::Create(soc);
  ASSERT_TRUE(st.ok() && ft.ok());
  TargetOrchestrator orch({st.value().get(), ft.value().get()});
  ASSERT_TRUE(orch.active().ResetHardware().ok());

  const uint32_t timer_load = (0u << 8) | periph::timer_regs::kLoad;
  ASSERT_TRUE(orch.active().Write32(timer_load, 777).ok());
  ASSERT_TRUE(orch.MoveTo(1).ok());  // full ship sim -> fpga
  ASSERT_TRUE(orch.MoveTo(0).ok());  // sim still on base: delta ship
  {
    const auto& ts = orch.transfer_stats();
    EXPECT_LT(ts.shipped_bytes, ts.full_bytes)
        << "second migration should have shipped a delta";
  }

  // Drive the INACTIVE destination directly — its state diverges from
  // the mirror the orchestrator would delta against.
  ASSERT_TRUE(orch.target(1).Write32(timer_load, 9999).ok());
  ASSERT_TRUE(orch.target(1).Run(16).ok());

  const auto before = orch.transfer_stats();
  ASSERT_TRUE(orch.active().Write32(timer_load, 777).ok());
  ASSERT_TRUE(orch.MoveTo(1).ok());
  const auto after = orch.transfer_stats();
  // The probe must have detected the diverged base and full-shipped:
  // bytes on the wire equal the full-blob accounting for this transfer.
  EXPECT_EQ(after.shipped_bytes - before.shipped_bytes,
            after.full_bytes - before.full_bytes);
  // And the destination holds the migrated state, not delta-corrupted mush.
  EXPECT_EQ(orch.active().Read32(timer_load).value(), 777u);
}

TEST(OrchestratorTest, InvalidateMirrorForcesFullShip) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  auto ft = fpga::FpgaTarget::Create(soc);
  ASSERT_TRUE(st.ok() && ft.ok());
  TargetOrchestrator orch({st.value().get(), ft.value().get()});
  ASSERT_TRUE(orch.active().ResetHardware().ok());

  const uint32_t timer_load = (0u << 8) | periph::timer_regs::kLoad;
  ASSERT_TRUE(orch.active().Write32(timer_load, 42).ok());
  ASSERT_TRUE(orch.MoveTo(1).ok());
  ASSERT_TRUE(orch.MoveTo(0).ok());

  orch.InvalidateMirror(1);
  const auto before = orch.transfer_stats();
  ASSERT_TRUE(orch.MoveTo(1).ok());
  const auto after = orch.transfer_stats();
  EXPECT_EQ(after.shipped_bytes - before.shipped_bytes,
            after.full_bytes - before.full_bytes);
  EXPECT_EQ(orch.active().Read32(timer_load).value(), 42u);
}

TEST(OrchestratorTest, MoveToSelfIsFree) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  ASSERT_TRUE(st.ok());
  TargetOrchestrator orch({st.value().get()});
  auto before = orch.TotalTime();
  ASSERT_TRUE(orch.MoveTo(0).ok());
  EXPECT_EQ(orch.TotalTime().picos(), before.picos());
}

TEST(OrchestratorTest, BadIndexRejected) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  ASSERT_TRUE(st.ok());
  TargetOrchestrator orch({st.value().get()});
  EXPECT_FALSE(orch.MoveTo(5).ok());
  EXPECT_FALSE(orch.IndexOf(bus::TargetKind::kFpga).ok());
}

}  // namespace
}  // namespace hardsnap::snapshot
