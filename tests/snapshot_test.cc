#include <gtest/gtest.h>

#include "bus/sim_target.h"
#include "fpga/fpga_target.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "snapshot/orchestrator.h"
#include "snapshot/snapshot.h"

namespace hardsnap::snapshot {
namespace {

rtl::Design SocDesign() {
  auto d = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()), "soc");
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return std::move(d).value();
}

sim::HardwareState SampleState() {
  sim::HardwareState st;
  st.flops = {1, 2, 3, 0xdeadbeef};
  st.memories = {{10, 20, 30}, {}};
  return st;
}

TEST(SerializeTest, RoundTrip) {
  auto st = SampleState();
  auto bytes = SerializeState(st);
  auto back = DeserializeState(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), st);
}

TEST(SerializeTest, RejectsGarbage) {
  std::vector<uint8_t> junk = {1, 2, 3, 4, 5};
  EXPECT_FALSE(DeserializeState(junk).ok());
}

TEST(SerializeTest, RejectsTruncation) {
  auto bytes = SerializeState(SampleState());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeState(bytes).ok());
}

TEST(SerializeTest, RejectsTrailingBytes) {
  auto bytes = SerializeState(SampleState());
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeState(bytes).ok());
}

TEST(StoreTest, PutGetUpdateDrop) {
  SnapshotStore store(42);
  SnapshotId id = store.Put(SampleState(), "initial");
  EXPECT_NE(id, kNoSnapshot);
  auto snap = store.Get(id);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value()->label, "initial");
  EXPECT_EQ(snap.value()->state, SampleState());

  auto st2 = SampleState();
  st2.flops[0] = 99;
  ASSERT_TRUE(store.Update(id, st2).ok());
  EXPECT_EQ(store.Get(id).value()->state.flops[0], 99u);

  ASSERT_TRUE(store.Drop(id).ok());
  EXPECT_FALSE(store.Get(id).ok());
  EXPECT_FALSE(store.Drop(id).ok());
}

TEST(StoreTest, IdsAreUniqueAndNonZero) {
  SnapshotStore store(1);
  SnapshotId a = store.Put(SampleState());
  SnapshotId b = store.Put(SampleState());
  EXPECT_NE(a, b);
  EXPECT_NE(a, kNoSnapshot);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_GT(store.TotalBytes(), 0u);
}

TEST(ShapeDigestTest, DiffersAcrossDesigns) {
  auto soc = SocDesign();
  auto timer = rtl::CompileVerilog(periph::TimerVerilog(), "hs_timer");
  ASSERT_TRUE(timer.ok());
  EXPECT_NE(StateShapeDigest(soc), StateShapeDigest(timer.value()));
  EXPECT_EQ(StateShapeDigest(soc), StateShapeDigest(SocDesign()));
}

TEST(OrchestratorTest, MoveToTransfersLiveState) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  auto ft = fpga::FpgaTarget::Create(soc);
  ASSERT_TRUE(st.ok() && ft.ok());
  TargetOrchestrator orch({st.value().get(), ft.value().get()});
  ASSERT_TRUE(orch.active().ResetHardware().ok());

  const uint32_t timer_load = (0u << 8) | periph::timer_regs::kLoad;
  ASSERT_TRUE(orch.active().Write32(timer_load, 777).ok());
  EXPECT_EQ(orch.active().kind(), bus::TargetKind::kSimulator);

  auto fpga_idx = orch.IndexOf(bus::TargetKind::kFpga);
  ASSERT_TRUE(fpga_idx.ok());
  ASSERT_TRUE(orch.MoveTo(fpga_idx.value()).ok());
  EXPECT_EQ(orch.active().kind(), bus::TargetKind::kFpga);
  EXPECT_EQ(orch.active().Read32(timer_load).value(), 777u);

  // And back again.
  ASSERT_TRUE(orch.MoveTo(0).ok());
  EXPECT_EQ(orch.active().Read32(timer_load).value(), 777u);
}

TEST(SerializeTest, SerializedStateBytesMatchesEncoding) {
  // The orchestrator accounts full-ship costs arithmetically; the formula
  // must track the real encoder exactly.
  EXPECT_EQ(SerializedStateBytes(SampleState()),
            SerializeState(SampleState()).size());
  sim::HardwareState empty;
  EXPECT_EQ(SerializedStateBytes(empty), SerializeState(empty).size());
  sim::HardwareState odd;
  odd.flops = {1};
  odd.memories = {{}, {5}, {6, 7, 8, 9, 10}};
  EXPECT_EQ(SerializedStateBytes(odd), SerializeState(odd).size());
}

// Regression: repeat migrations used to ship a delta whenever the
// host-side mirror existed, without checking what the destination
// actually holds. A destination driven behind the orchestrator's back
// has a diverged base, so the migration must fall back to a full ship.
TEST(OrchestratorTest, StaleDestinationBaseForcesFullShip) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  auto ft = fpga::FpgaTarget::Create(soc);
  ASSERT_TRUE(st.ok() && ft.ok());
  TargetOrchestrator orch({st.value().get(), ft.value().get()});
  ASSERT_TRUE(orch.active().ResetHardware().ok());

  const uint32_t timer_load = (0u << 8) | periph::timer_regs::kLoad;
  ASSERT_TRUE(orch.active().Write32(timer_load, 777).ok());
  ASSERT_TRUE(orch.MoveTo(1).ok());  // full ship sim -> fpga
  ASSERT_TRUE(orch.MoveTo(0).ok());  // sim still on base: delta ship
  {
    const auto& ts = orch.transfer_stats();
    EXPECT_LT(ts.shipped_bytes, ts.full_bytes)
        << "second migration should have shipped a delta";
  }

  // Drive the INACTIVE destination directly — its state diverges from
  // the mirror the orchestrator would delta against.
  ASSERT_TRUE(orch.target(1).Write32(timer_load, 9999).ok());
  ASSERT_TRUE(orch.target(1).Run(16).ok());

  const auto before = orch.transfer_stats();
  ASSERT_TRUE(orch.active().Write32(timer_load, 777).ok());
  ASSERT_TRUE(orch.MoveTo(1).ok());
  const auto after = orch.transfer_stats();
  // The probe must have detected the diverged base and full-shipped:
  // bytes on the wire equal the full-blob accounting for this transfer.
  EXPECT_EQ(after.shipped_bytes - before.shipped_bytes,
            after.full_bytes - before.full_bytes);
  // And the destination holds the migrated state, not delta-corrupted mush.
  EXPECT_EQ(orch.active().Read32(timer_load).value(), 777u);
}

TEST(OrchestratorTest, InvalidateMirrorForcesFullShip) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  auto ft = fpga::FpgaTarget::Create(soc);
  ASSERT_TRUE(st.ok() && ft.ok());
  TargetOrchestrator orch({st.value().get(), ft.value().get()});
  ASSERT_TRUE(orch.active().ResetHardware().ok());

  const uint32_t timer_load = (0u << 8) | periph::timer_regs::kLoad;
  ASSERT_TRUE(orch.active().Write32(timer_load, 42).ok());
  ASSERT_TRUE(orch.MoveTo(1).ok());
  ASSERT_TRUE(orch.MoveTo(0).ok());

  orch.InvalidateMirror(1);
  const auto before = orch.transfer_stats();
  ASSERT_TRUE(orch.MoveTo(1).ok());
  const auto after = orch.transfer_stats();
  EXPECT_EQ(after.shipped_bytes - before.shipped_bytes,
            after.full_bytes - before.full_bytes);
  EXPECT_EQ(orch.active().Read32(timer_load).value(), 42u);
}

TEST(OrchestratorTest, MoveToSelfIsFree) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  ASSERT_TRUE(st.ok());
  TargetOrchestrator orch({st.value().get()});
  auto before = orch.TotalTime();
  ASSERT_TRUE(orch.MoveTo(0).ok());
  EXPECT_EQ(orch.TotalTime().picos(), before.picos());
}

TEST(OrchestratorTest, BadIndexRejected) {
  auto soc = SocDesign();
  auto st = bus::SimulatorTarget::Create(soc);
  ASSERT_TRUE(st.ok());
  TargetOrchestrator orch({st.value().get()});
  EXPECT_FALSE(orch.MoveTo(5).ok());
  EXPECT_FALSE(orch.IndexOf(bus::TargetKind::kFpga).ok());
}


// --- memory accounting & byte cap ------------------------------------------

TEST(StoreAccountingTest, LiveBytesTracksResidentChunksAndCaches) {
  SnapshotStore store(42);
  EXPECT_EQ(store.LiveBytes(), 0u);
  SnapshotId a = store.Put(SampleState(), "a");
  const auto s1 = store.stats();
  EXPECT_GT(s1.live_bytes, 0u);
  EXPECT_GT(s1.cache_bytes, 0u);  // Put caches the ingested state
  EXPECT_EQ(s1.live_bytes, store.LiveBytes());
  ASSERT_TRUE(store.Drop(a).ok());
  EXPECT_EQ(store.LiveBytes(), 0u);
}

TEST(StoreAccountingTest, SetMaxBytesEvictsCachesImmediately) {
  SnapshotStore store(42);
  store.Put(SampleState(), "a");
  ASSERT_GT(store.stats().cache_bytes, 0u);
  // Resident chunks alone fit in any cap the caches overflow.
  const uint64_t resident =
      store.stats().live_bytes - store.stats().cache_bytes;
  store.SetMaxBytes(resident);
  const auto s = store.stats();
  EXPECT_EQ(s.cache_bytes, 0u);
  EXPECT_GE(s.cache_evictions, 1u);
  EXPECT_LE(s.live_bytes, resident);
}

TEST(StoreCapTest, TryPutFailsCleanlyWhenNothingCanBeEvicted) {
  SnapshotStore store(42);
  store.SetMaxBytes(1);  // smaller than any snapshot's resident bytes
  auto r = store.TryPut(SampleState(), "too big");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // The failed ingestion left nothing behind.
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.LiveBytes(), 0u);
}

TEST(StoreCapTest, TryPutSucceedsByEvictingColdCaches) {
  SnapshotStore store(42);
  SnapshotId a = store.Put(SampleState(), "a");
  auto st2 = SampleState();
  st2.flops[0] = 0x12345678;
  // Cap = current live + the new snapshot's resident need, but NOT its
  // cache: ingestion must evict caches (the cold ones first) to fit.
  SnapshotId b = store.Put(st2, "b");
  const uint64_t resident_two =
      store.stats().live_bytes - store.stats().cache_bytes;
  ASSERT_TRUE(store.Drop(b).ok());
  store.SetMaxBytes(resident_two);
  auto r = store.TryPut(st2, "b2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(store.stats().cache_evictions, 1u);
  // Both snapshots still materialize correctly after eviction.
  auto ga = store.Get(a);
  ASSERT_TRUE(ga.ok());
  EXPECT_EQ(ga.value()->state, SampleState());
  auto gb = store.Get(r.value());
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(gb.value()->state, st2);
}

TEST(StoreCapTest, UnlimitedByDefault) {
  SnapshotStore store(42);
  for (int i = 0; i < 16; ++i) {
    auto st = SampleState();
    st.flops[0] = static_cast<uint64_t>(i);
    EXPECT_NE(store.Put(st), kNoSnapshot);
  }
  EXPECT_EQ(store.size(), 16u);
  EXPECT_EQ(store.stats().cache_evictions, 0u);
}

// --- whole-store serialization (HSST) --------------------------------------

TEST(StoreSerdeTest, SerializeRestoreRoundTripsContentAndIds) {
  SnapshotStore store(42);
  SnapshotId a = store.Put(SampleState(), "base");
  auto st2 = SampleState();
  st2.flops[1] = 0xfeedface;
  SnapshotId b = store.Put(st2, "variant");
  auto blob = store.Serialize();
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();

  SnapshotStore back(42);
  ASSERT_TRUE(back.Restore(blob.value()).ok());
  EXPECT_EQ(back.size(), 2u);
  auto ga = back.Get(a);
  ASSERT_TRUE(ga.ok());
  EXPECT_EQ(ga.value()->state, SampleState());
  EXPECT_EQ(ga.value()->label, "base");
  auto gb = back.Get(b);
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(gb.value()->state, st2);
  EXPECT_EQ(gb.value()->label, "variant");
  // Content hashes survive the round trip (resume drift checks rely on
  // them).
  EXPECT_EQ(back.ContentHash(a).value(), store.ContentHash(a).value());
  // New ids keep ascending past the restored ones.
  auto st3 = SampleState();
  st3.flops[2] = 7;
  SnapshotId c = back.Put(st3);
  EXPECT_GT(c, b);
}

TEST(StoreSerdeTest, EmptyStoreRoundTrips) {
  SnapshotStore store(42);
  auto blob = store.Serialize();
  ASSERT_TRUE(blob.ok());
  SnapshotStore back(42);
  ASSERT_TRUE(back.Restore(blob.value()).ok());
  EXPECT_EQ(back.size(), 0u);
  EXPECT_NE(back.Put(SampleState()), kNoSnapshot);
}

TEST(StoreSerdeTest, RestoreRejectsWrongShapeDigest) {
  SnapshotStore store(42);
  store.Put(SampleState());
  auto blob = store.Serialize();
  ASSERT_TRUE(blob.ok());
  SnapshotStore other(43);
  EXPECT_FALSE(other.Restore(blob.value()).ok());
  EXPECT_EQ(other.size(), 0u);  // failed restore leaves the store empty
}

TEST(StoreSerdeTest, RestoreRejectsTruncationAndBitFlips) {
  SnapshotStore store(42);
  store.Put(SampleState(), "a");
  auto st2 = SampleState();
  st2.flops[0] = 5;
  store.Put(st2, "b");
  auto blob = store.Serialize();
  ASSERT_TRUE(blob.ok());
  const auto& bytes = blob.value();
  for (size_t len = 0; len < bytes.size(); len += 3) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    SnapshotStore back(42);
    EXPECT_FALSE(back.Restore(cut).ok()) << "truncation to " << len;
    EXPECT_EQ(back.size(), 0u);
  }
  for (size_t bit = 0; bit < bytes.size() * 8; bit += 11) {
    auto corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    SnapshotStore back(42);
    EXPECT_FALSE(back.Restore(corrupt).ok()) << "bit flip at " << bit;
  }
}

TEST(StoreSerdeTest, RestoreReplacesPriorContents) {
  SnapshotStore store(42);
  store.Put(SampleState(), "kept");
  auto blob = store.Serialize();
  ASSERT_TRUE(blob.ok());
  SnapshotStore back(42);
  back.Put(SampleState(), "overwritten");
  back.Put(SampleState(), "also gone");
  ASSERT_TRUE(back.Restore(blob.value()).ok());
  EXPECT_EQ(back.size(), 1u);
  auto ids = back.Ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(back.Get(ids[0]).value()->label, "kept");
}

}  // namespace
}  // namespace hardsnap::snapshot
