#include <gtest/gtest.h>

#include "bus/sim_target.h"
#include "fpga/fpga_target.h"
#include "firmware/corpus.h"
#include "fuzz/fuzzer.h"
#include "periph/periph.h"
#include "rtl/elaborate.h"
#include "vm/assembler.h"

namespace hardsnap::fuzz {
namespace {

rtl::Design& Soc() {
  static rtl::Design* d = [] {
    auto r = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
    HS_CHECK_MSG(r.ok(), r.status().ToString());
    return new rtl::Design(std::move(r).value());
  }();
  return *d;
}

std::unique_ptr<bus::SimulatorTarget> MakeTarget() {
  auto t = bus::SimulatorTarget::Create(Soc());
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

vm::FirmwareImage ParserImage() {
  auto img = vm::Assemble(firmware::VulnerableParserFirmware());
  EXPECT_TRUE(img.ok());
  return img.value_or(vm::FirmwareImage{});
}

TEST(FuzzerTest, FindsTheOverflowBySnapshotFuzzing) {
  auto target = MakeTarget();
  FuzzOptions opts;
  opts.reset = ResetStrategy::kSnapshotReset;
  opts.input_size = 2;
  opts.seed = 7;
  Fuzzer fuzzer(target.get(), ParserImage(), opts);
  auto stats = fuzzer.Run(400);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GE(fuzzer.crashes().size(), 1u);
  EXPECT_EQ(fuzzer.crashes()[0].reason, "out-of-bounds store");
  // The crashing input's length byte overflows the 16-byte buffer.
  EXPECT_GE(fuzzer.crashes()[0].input[0], 16u);
}

// Regression: input_size == 0 used to reach Rng::Below(0) inside
// Mutate — undefined behaviour (modulo by zero). It must surface as a
// reported configuration error, not a crash or an abort.
TEST(FuzzerTest, ZeroInputSizeIsAnErrorNotACrash) {
  auto target = MakeTarget();
  FuzzOptions opts;
  opts.input_size = 0;
  Fuzzer fuzzer(target.get(), ParserImage(), opts);
  auto stats = fuzzer.Run(10);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(FuzzerTest, ValidateFuzzOptionsRejectsZeroBudgets) {
  FuzzOptions opts;
  EXPECT_TRUE(ValidateFuzzOptions(opts).ok());
  opts.input_size = 0;
  EXPECT_FALSE(ValidateFuzzOptions(opts).ok());
  opts = FuzzOptions{};
  opts.max_instructions_per_exec = 0;
  EXPECT_FALSE(ValidateFuzzOptions(opts).ok());
  opts = FuzzOptions{};
  opts.cycles_per_instruction = 0;
  EXPECT_FALSE(ValidateFuzzOptions(opts).ok());
}

TEST(FuzzerTest, RebootStrategyFindsItTooButPaysReboots) {
  auto target = MakeTarget();
  FuzzOptions opts;
  opts.reset = ResetStrategy::kRebootReset;
  opts.input_size = 2;
  opts.seed = 7;
  Fuzzer fuzzer(target.get(), ParserImage(), opts);
  auto stats = fuzzer.Run(200);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().reboots, 200u);
  EXPECT_EQ(stats.value().snapshot_restores, 0u);
  EXPECT_GT(stats.value().reset_overhead.millis(), 200 * 200.0);
}

TEST(FuzzerTest, SnapshotResetOverheadIsFarSmaller) {
  FuzzOptions base;
  base.input_size = 2;
  base.seed = 3;

  auto t1 = MakeTarget();
  FuzzOptions snap = base;
  snap.reset = ResetStrategy::kSnapshotReset;
  Fuzzer f1(t1.get(), ParserImage(), snap);
  auto s1 = f1.Run(100);
  ASSERT_TRUE(s1.ok());

  auto t2 = MakeTarget();
  FuzzOptions reboot = base;
  reboot.reset = ResetStrategy::kRebootReset;
  Fuzzer f2(t2.get(), ParserImage(), reboot);
  auto s2 = f2.Run(100);
  ASSERT_TRUE(s2.ok());

  // Both strategies run the same number of test cases, but the reboot
  // baseline pays ~250 ms per exec (the paper's motivation).
  EXPECT_GT(s2.value().reset_overhead.picos(),
            s1.value().reset_overhead.picos());
}

TEST(FuzzerTest, CoverageGrowsCorpus) {
  auto target = MakeTarget();
  FuzzOptions opts;
  opts.input_size = 2;
  opts.seed = 11;
  Fuzzer fuzzer(target.get(), ParserImage(), opts);
  auto stats = fuzzer.Run(300);
  ASSERT_TRUE(stats.ok());
  // The copy loop yields a new edge count per length value: corpus and
  // edge set must both grow beyond the seed.
  EXPECT_GT(stats.value().corpus_size, 1u);
  EXPECT_GT(stats.value().edges_covered, 2u);
}

TEST(FuzzerTest, CrashesDeduplicatedByPc) {
  auto target = MakeTarget();
  FuzzOptions opts;
  opts.input_size = 2;
  opts.seed = 5;
  Fuzzer fuzzer(target.get(), ParserImage(), opts);
  ASSERT_TRUE(fuzzer.Run(500).ok());
  // Many crashing inputs exist (any len >= 16) but one unique crash pc.
  EXPECT_EQ(fuzzer.crashes().size(), 1u);
}

TEST(FuzzerTest, InitInstructionsRunBeforeHarness) {
  // Firmware: an init phase writes a marker, then reads input and loops.
  auto img = vm::Assemble(R"(
    _start:
      li t0, 0x10000100
      li t1, 0x77
      sb t1, 0(t0)        # init marker
    harness:
      li t2, 0x10000000
      lbu t3, 0(t2)       # input byte
      li t4, 0xfe
      bne t3, t4, fine
      ebreak              # crash on magic byte
    fine:
      li t0, 0x50000004
      sw zero, 0(t0)
  )");
  ASSERT_TRUE(img.ok());
  auto target = MakeTarget();
  FuzzOptions opts;
  opts.input_size = 1;
  opts.init_instructions = 4;  // the init phase: li(2) + li(2)... sb lands at 4
  opts.seed = 2;
  Fuzzer fuzzer(target.get(), img.value(), opts);
  auto stats = fuzzer.Run(600);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(fuzzer.crashes().size(), 1u);
  EXPECT_EQ(fuzzer.crashes()[0].input[0], 0xfe);
}

TEST(FuzzerTest, RunsOnFpgaTargetWithScanResets) {
  auto soc = rtl::CompileVerilog(periph::BuildSoc(periph::DefaultCorpus()),
                                 "soc");
  ASSERT_TRUE(soc.ok());
  auto target = fpga::FpgaTarget::Create(soc.value());
  ASSERT_TRUE(target.ok());
  FuzzOptions opts;
  opts.reset = ResetStrategy::kSnapshotReset;
  opts.input_size = 2;
  opts.seed = 13;
  Fuzzer fuzzer(target.value().get(), ParserImage(), opts);
  auto stats = fuzzer.Run(150);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GE(fuzzer.crashes().size(), 1u);
  // Scan-chain resets on the FPGA are microseconds each; 150 execs cost
  // far less than a single reboot would.
  EXPECT_LT(stats.value().reset_overhead.millis(), 250.0);
}

}  // namespace
}  // namespace hardsnap::fuzz
